type config = {
  rate_per_ms : float;
  scope : int option;
  timeout_ms : float option;
}

let default = { rate_per_ms = 1.; scope = None; timeout_ms = None }

let validate c =
  if not (Float.is_finite c.rate_per_ms) || c.rate_per_ms <= 0. then
    invalid_arg "Flood: rate_per_ms must be positive";
  match c.timeout_ms with
  | Some ms when (not (Float.is_finite ms)) || ms <= 0. ->
    invalid_arg "Flood: timeout_ms must be positive"
  | _ -> ()

type t = {
  config : config;
  engine : Sim.Engine.t;
  node : Ndn.Node.t;
  prefix : Ndn.Name.t;
  rng : Sim.Rng.t;
  until : float option;
  mutable active : bool;
  mutable seq : int;
  mutable interests_issued : int;
  mutable nacks_received : int;
  mutable timeouts : int;
}

(* One flood interest: a never-before-used name under the flood
   namespace.  Sequence numbers (not random draws) keep names unique —
   uniqueness is what defeats both collapsing and the victim's Content
   Store, and it costs no randomness, so the RNG stream is exactly the
   Poisson arrival process. *)
let issue t =
  let name = Ndn.Name.append t.prefix (string_of_int t.seq) in
  t.seq <- t.seq + 1;
  t.interests_issued <- t.interests_issued + 1;
  Ndn.Node.express_interest t.node ?scope:t.config.scope
    ?timeout_ms:t.config.timeout_ms
    ~on_data:(fun ~rtt_ms:_ _ -> ())
    ~on_timeout:(fun () -> t.timeouts <- t.timeouts + 1)
    ~on_nack:(fun _ -> t.nacks_received <- t.nacks_received + 1)
    name

let rec schedule_next t =
  if t.active then begin
    let dt = Sim.Rng.exponential t.rng ~rate:t.config.rate_per_ms in
    let fire = Sim.Engine.now t.engine +. dt in
    match t.until with
    | Some stop_at when fire > stop_at -> t.active <- false
    | _ ->
      Ndn.Node.schedule_app t.node ~delay:dt (fun () ->
          if t.active then begin
            issue t;
            schedule_next t
          end)
  end

let attach config ~node ~prefix ~rng ?until () =
  validate config;
  let t =
    {
      config;
      engine = Ndn.Node.engine node;
      node;
      prefix;
      rng;
      until;
      active = true;
      seq = 0;
      interests_issued = 0;
      nacks_received = 0;
      timeouts = 0;
    }
  in
  schedule_next t;
  t

let stop t = t.active <- false

let interests_issued t = t.interests_issued

let nacks_received t = t.nacks_received

let timeouts t = t.timeouts
