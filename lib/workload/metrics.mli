(** Parameter sweeps and tabulation for the Figure 5 reproduction. *)

type row = {
  policy_label : string;
  cache_capacity : int;  (** 0 = unbounded. *)
  private_fraction : float;
  outcome : Replay.outcome;
}

val sweep :
  Trace.t ->
  cache_sizes:int list ->
  policies:Core.Policy.kind list ->
  ?private_fraction:float ->
  ?grouping:Core.Grouping.t ->
  ?seed:int ->
  ?jobs:int ->
  unit ->
  row list
(** Figure 5(a): one replay per (policy, cache size); per-content
    private marking at [private_fraction] (default 0.2).  The grid is
    evaluated on [jobs] domains via {!Sim.Parallel} (each cell is
    deterministic in [seed]); the returned rows are in grid order, so
    the output is identical for any [jobs]. *)

val sweep_private_fraction :
  Trace.t ->
  cache_sizes:int list ->
  policy:Core.Policy.kind ->
  fractions:float list ->
  ?grouping:Core.Grouping.t ->
  ?seed:int ->
  ?jobs:int ->
  unit ->
  row list
(** Figure 5(b): one policy, varying the private fraction.  Parallel
    and deterministic as in {!sweep}. *)

(** {2 Mergeable multi-trial aggregates}

    A commutative-monoid summary of replay outcomes, so trial ensembles
    computed on different domains (or machines) can be combined without
    re-touching the raw outcomes.  [merge (aggregate xs) (aggregate ys)]
    equals [aggregate (xs @ ys)] exactly on the integer counters and to
    floating-point accuracy (Chan's parallel update) on the per-trial
    hit-rate moments. *)

type agg = {
  trials : int;
  requests : int;
  observable_hits : int;
  real_hits : int;
  hidden_hits : int;
  private_requests : int;
  agg_evictions : int;
  hit_rate_stats : Sim.Stats.t;
      (** Distribution of per-trial observable hit rates. *)
}

val agg_empty : unit -> agg
(** Identity element of {!merge}. *)

val agg_of_outcome : Replay.outcome -> agg
(** Single-trial aggregate. *)

val merge : agg -> agg -> agg
(** Combine two disjoint trial ensembles; neither input is mutated. *)

val agg_observable_hit_rate : agg -> float
(** Request-weighted (pooled) observable hit rate of the ensemble. *)

val replay_trials :
  Trace.t -> Replay.config -> trials:int -> ?jobs:int -> unit -> agg
(** Replay [trials] independent trials of [config] (trial [i] uses seed
    [config.seed + i]) on [jobs] domains and merge the outcomes in
    trial order.  Identical result for any [jobs]. *)

val pp_agg : Format.formatter -> agg -> unit

val pp_table :
  series_of:(row -> string) -> Format.formatter -> row list -> unit
(** Render rows as a cache-size × series table of observable hit rates
    (percent), with series picked by [series_of] (policy label for
    5(a), private fraction for 5(b)). *)

val cache_size_label : int -> string
(** ["Inf"] for 0, the number otherwise. *)
