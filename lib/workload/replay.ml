type private_mode = Per_content of float | Per_request of float

type config = {
  cache_capacity : int;
  eviction : Ndn.Eviction.t;
  policy : Core.Policy.kind;
  grouping : Core.Grouping.t;
  private_mode : private_mode;
  seed : int;
}

let default_config =
  {
    cache_capacity = 8000;
    eviction = Ndn.Eviction.Lru;
    policy = Core.Policy.No_privacy;
    grouping = Core.Grouping.By_content;
    private_mode = Per_content 0.2;
    seed = 99;
  }

type outcome = {
  requests : int;
  observable_hits : int;
  real_hits : int;
  hidden_hits : int;
  private_requests : int;
  evictions : int;
  distinct_contents : int;
}

let observable_hit_rate o =
  if o.requests = 0 then 0.
  else float_of_int o.observable_hits /. float_of_int o.requests

let real_hit_rate o =
  if o.requests = 0 then 0. else float_of_int o.real_hits /. float_of_int o.requests

(* Deterministic per-content privacy coin: a splitmix64 draw keyed by
   content id and seed, so the same content is private in every
   configuration sharing a seed. *)
let content_private ~seed ~fraction content =
  let rng = Sim.Rng.create ((content * 0x9E3779B1) lxor (seed * 0x85EBCA77)) in
  Sim.Rng.bernoulli rng fraction

let replay trace config =
  let rng = Sim.Rng.create config.seed in
  let cs_rng = Sim.Rng.split rng in
  let cs =
    Ndn.Content_store.create ~policy:config.eviction ~rng:cs_rng
      ~capacity:config.cache_capacity ()
  in
  (* ndnlint: allow G1 -- historical stream layout: the policy draws from the root handle between the two splits; reordering the splits or re-deriving would change every replay byte-for-byte *)
  let policy = Core.Policy.create ~grouping:config.grouping ~rng config.policy in
  let request_privacy_rng = Sim.Rng.split rng in
  let is_private content =
    match config.private_mode with
    | Per_content fraction -> content_private ~seed:config.seed ~fraction content
    | Per_request fraction -> Sim.Rng.bernoulli request_privacy_rng fraction
  in
  (* Data objects for catalog contents are interned: replaying 3.2M
     requests must not re-sign a popular object on every re-insertion. *)
  let interned = Hashtbl.create 4096 in
  let data_of content name =
    match Hashtbl.find_opt interned content with
    | Some d -> d
    | None ->
      let d =
        Ndn.Data.create ~producer:"trace-origin" ~key:"trace-origin-key"
          ~payload:"" name
      in
      (* One-timers never come back: interning them would only grow the
         table. A content is worth interning once it repeats, which we
         approximate by interning everything below the first one-timer
         id seen; simpler and safe: intern unconditionally up to a cap. *)
      if Hashtbl.length interned < 300_000 then Hashtbl.add interned content d;
      d
  in
  let observable_hits = ref 0
  and real_hits = ref 0
  and hidden_hits = ref 0
  and private_requests = ref 0 in
  Trace.iter trace ~f:(fun r ->
      let name = Trace.name_of r.Trace.content in
      let now = r.Trace.time_s *. 1000. in
      let cached =
        match Ndn.Content_store.lookup cs ~now ~exact:true name with
        | Some _ -> true
        | None -> false
      in
      let priv = is_private r.Trace.content in
      if priv then incr private_requests;
      if cached then incr real_hits;
      let out =
        Core.Policy.on_request policy ~name ~is_private:priv ~cached
      in
      (match out with
      | Core.Random_cache.Hit -> incr observable_hits
      | Core.Random_cache.Miss -> if cached then incr hidden_hits);
      if not cached then
        (* Fetched from upstream and cached (the router caches all
           content, per Section VII). *)
        Ndn.Content_store.insert cs ~now (data_of r.Trace.content name) ());
  let counters = Ndn.Content_store.counters cs in
  {
    requests = Trace.length trace;
    observable_hits = !observable_hits;
    real_hits = !real_hits;
    hidden_hits = !hidden_hits;
    private_requests = !private_requests;
    evictions = counters.Ndn.Content_store.evictions;
    distinct_contents = Trace.distinct_contents trace;
  }

let pp_outcome ppf o =
  Format.fprintf ppf
    "requests=%d observable-hit-rate=%.2f%% real-hit-rate=%.2f%% hidden=%d \
     private=%d evictions=%d distinct=%d"
    o.requests
    (100. *. observable_hit_rate o)
    (100. *. real_hit_rate o)
    o.hidden_hits o.private_requests o.evictions o.distinct_contents
