(** A seeded interest-flooding adversary.

    Floods a chosen forwarder with interests for {e unsatisfiable}
    names — each one unique, so neither interest collapsing nor any
    Content Store absorbs it, and no producer ever answers.  Every such
    interest pins a PIT entry at each router on its path for the full
    entry lifetime: the classic PIT-exhaustion attack that motivates
    finite {!Ndn.Pit} capacities, admission policies and NACKs.

    Aim the flood by routing: install FIB routes for the flood prefix
    from the attached node toward the victim router(s) and {e no}
    producer for that prefix.  Interests then traverse (and load) the
    victims and die of no-route or PIT-lifetime expiry beyond them.

    Determinism: Poisson arrivals drawn from the caller's {!Sim.Rng.t};
    names are sequence-numbered, consuming no randomness.  Arrivals are
    scheduled through {!Ndn.Node.schedule_app}, so a flood inside a
    [Sim.Shard] partition stays shard-count-invariant, and it composes
    freely with {!Aggregate} background traffic and {!Sim.Fault}
    schedules. *)

type config = {
  rate_per_ms : float;  (** Mean interest injection rate. *)
  scope : int option;  (** Optional interest scope (hop bound). *)
  timeout_ms : float option;
      (** Per-interest expression timeout at the attacking host
          (default: the host PIT's lifetime). *)
}

val default : config
(** 1 interest/ms, no scope, default timeout. *)

type t

val attach :
  config ->
  node:Ndn.Node.t ->
  prefix:Ndn.Name.t ->
  rng:Sim.Rng.t ->
  ?until:float ->
  unit ->
  t
(** Start flooding [prefix/0], [prefix/1], … from [node].  [until]
    (virtual ms) stops injection; without it the flood never drains, so
    bound the run or call {!stop}. *)

val stop : t -> unit

val interests_issued : t -> int

val nacks_received : t -> int
(** NACKs that answered flood interests (the plane pushing back). *)

val timeouts : t -> int
(** Flood interests that expired unanswered at the attacking host. *)
