type t = { n : int; s : float; cdf : float array }

(* The CDF embeds the harmonic normalizer H(n, s) = sum r^-s; computing
   it is the O(n) part of [create].  At aggregate-consumer scale every
   edge router wants the same law — 10k routers x a 100k-entry catalog
   would recompute the same 100k-term harmonic sum 10k times — so the
   table is memoized per (n, s).  The memo is per-domain (Domain.DLS),
   the same pattern as the Name intern table: Sim.Parallel trial
   domains each build their own copy, so no cross-domain sharing, no
   locks, and byte-identical results for any --jobs.  Entries are
   immutable after construction, which is what makes handing the same
   array to every caller sound. *)
let memo_cap = 64

let memo : (int * float, float array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let compute_cdf ~n ~s =
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for r = 1 to n do
    acc := !acc +. (1. /. (float_of_int r ** s));
    cdf.(r - 1) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  cdf

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: negative exponent";
  let tbl = Domain.DLS.get memo in
  let key = (n, s) in
  let cdf =
    match Hashtbl.find_opt tbl key with
    | Some cdf -> cdf
    | None ->
      let cdf = compute_cdf ~n ~s in
      (* Bound the memo so pathological churn over many distinct laws
         (property tests, parameter sweeps) cannot leak arrays forever;
         dropping the memo only costs recomputation, never changes a
         result. *)
      if Hashtbl.length tbl >= memo_cap then Hashtbl.reset tbl;
      Hashtbl.add tbl key cdf;
      cdf
  in
  { n; s; cdf }

let n t = t.n
let s t = t.s

let sample t rng =
  let u = Sim.Rng.float rng 1. in
  (* Smallest index with cdf >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1) + 1

let prob t rank =
  if rank < 1 || rank > t.n then invalid_arg "Zipf.prob: rank out of range";
  if rank = 1 then t.cdf.(0) else t.cdf.(rank - 1) -. t.cdf.(rank - 2)

let head_mass t k =
  if k <= 0 then 0. else if k >= t.n then 1. else t.cdf.(k - 1)
