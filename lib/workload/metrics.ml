type row = {
  policy_label : string;
  cache_capacity : int;
  private_fraction : float;
  outcome : Replay.outcome;
}

let label_of_kind kind =
  (* Build a throwaway policy purely to reuse its display name. *)
  Core.Policy.label (Core.Policy.create ~rng:(Sim.Rng.create 0) kind)

let run_one trace ~kind ~capacity ~fraction ~grouping ~seed =
  let config =
    {
      Replay.cache_capacity = capacity;
      eviction = Ndn.Eviction.Lru;
      policy = kind;
      grouping;
      private_mode = Replay.Per_content fraction;
      seed;
    }
  in
  {
    policy_label = label_of_kind kind;
    cache_capacity = capacity;
    private_fraction = fraction;
    outcome = Replay.replay trace config;
  }

(* Sweeps fan the independent (config, capacity) replays out over
   domains; each cell is fully determined by its own seed, and results
   are re-assembled in grid order, so the table is identical for any
   [jobs]. *)
let grid_map ?jobs outer inner f =
  let outer = Array.of_list outer and inner = Array.of_list inner in
  let n_inner = Array.length inner in
  Sim.Parallel.map ?jobs
    (Array.length outer * n_inner)
    (fun i -> f outer.(i / n_inner) inner.(i mod n_inner))
  |> Array.to_list

let sweep trace ~cache_sizes ~policies ?(private_fraction = 0.2)
    ?(grouping = Core.Grouping.By_content) ?(seed = 99) ?jobs () =
  grid_map ?jobs policies cache_sizes (fun kind capacity ->
      run_one trace ~kind ~capacity ~fraction:private_fraction ~grouping ~seed)

let sweep_private_fraction trace ~cache_sizes ~policy ~fractions
    ?(grouping = Core.Grouping.By_content) ?(seed = 99) ?jobs () =
  grid_map ?jobs fractions cache_sizes (fun fraction capacity ->
      run_one trace ~kind:policy ~capacity ~fraction ~grouping ~seed)

(* --- mergeable multi-trial aggregate --- *)

type agg = {
  trials : int;
  requests : int;
  observable_hits : int;
  real_hits : int;
  hidden_hits : int;
  private_requests : int;
  agg_evictions : int;
  hit_rate_stats : Sim.Stats.t;
}

let agg_empty () =
  {
    trials = 0;
    requests = 0;
    observable_hits = 0;
    real_hits = 0;
    hidden_hits = 0;
    private_requests = 0;
    agg_evictions = 0;
    hit_rate_stats = Sim.Stats.create ();
  }

let agg_of_outcome (o : Replay.outcome) =
  let hit_rate_stats = Sim.Stats.create () in
  Sim.Stats.add hit_rate_stats (Replay.observable_hit_rate o);
  {
    trials = 1;
    requests = o.Replay.requests;
    observable_hits = o.Replay.observable_hits;
    real_hits = o.Replay.real_hits;
    hidden_hits = o.Replay.hidden_hits;
    private_requests = o.Replay.private_requests;
    agg_evictions = o.Replay.evictions;
    hit_rate_stats;
  }

let merge a b =
  {
    trials = a.trials + b.trials;
    requests = a.requests + b.requests;
    observable_hits = a.observable_hits + b.observable_hits;
    real_hits = a.real_hits + b.real_hits;
    hidden_hits = a.hidden_hits + b.hidden_hits;
    private_requests = a.private_requests + b.private_requests;
    agg_evictions = a.agg_evictions + b.agg_evictions;
    hit_rate_stats = Sim.Stats.merge a.hit_rate_stats b.hit_rate_stats;
  }

let agg_observable_hit_rate a =
  if a.requests = 0 then 0.
  else float_of_int a.observable_hits /. float_of_int a.requests

let replay_trials trace config ~trials ?jobs () =
  (* Trial [i] replays under seed [config.seed + i]: the ensemble is a
     pure function of the base seed, independent of [jobs]. *)
  Sim.Parallel.map ?jobs trials (fun i ->
      agg_of_outcome
        (Replay.replay trace { config with Replay.seed = config.Replay.seed + i }))
  |> Array.fold_left merge (agg_empty ())

let pp_agg ppf a =
  Format.fprintf ppf
    "trials=%d requests=%d pooled-hit-rate=%.4f per-trial mean=%.4f sd=%.4f"
    a.trials a.requests (agg_observable_hit_rate a)
    (Sim.Stats.mean a.hit_rate_stats)
    (Sim.Stats.stddev a.hit_rate_stats)

let cache_size_label = function 0 -> "Inf" | n -> string_of_int n

let pp_table ~series_of ppf rows =
  let series =
    List.fold_left
      (fun acc row ->
        let s = series_of row in
        if List.mem s acc then acc else acc @ [ s ])
      [] rows
  in
  let sizes =
    List.fold_left
      (fun acc row ->
        if List.mem row.cache_capacity acc then acc else acc @ [ row.cache_capacity ])
      [] rows
  in
  let width =
    List.fold_left (fun acc s -> max acc (String.length s)) 10 series
  in
  Format.fprintf ppf "%-10s" "CacheSize";
  List.iter (fun s -> Format.fprintf ppf " | %*s" width s) series;
  Format.fprintf ppf "@.";
  List.iter
    (fun size ->
      Format.fprintf ppf "%-10s" (cache_size_label size);
      List.iter
        (fun s ->
          match
            List.find_opt
              (fun row -> row.cache_capacity = size && series_of row = s)
              rows
          with
          | Some row ->
            Format.fprintf ppf " | %*.2f" width
              (100. *. Replay.observable_hit_rate row.outcome)
          | None -> Format.fprintf ppf " | %*s" width "-")
        series;
      Format.fprintf ppf "@.")
    sizes
