type config = {
  users : int;
  req_per_user_per_hour : float;
  catalog : int;
  zipf_s : float;
  diurnal_amplitude : float;
  diurnal_period_ms : float;
  diurnal_phase_ms : float;
  consumer_private : bool;
  max_retries : int;
  record_ranks : bool;
}

let default =
  {
    users = 10_000;
    req_per_user_per_hour = 6.;
    catalog = 10_000;
    zipf_s = 0.85;
    diurnal_amplitude = 0.5;
    diurnal_period_ms = 86_400_000.;
    diurnal_phase_ms = 0.;
    consumer_private = false;
    max_retries = 2;
    record_ranks = false;
  }

let base_rate_per_ms c =
  float_of_int c.users *. c.req_per_user_per_hour /. 3_600_000.

let expected_requests c ~duration_ms = base_rate_per_ms c *. duration_ms

type t = {
  config : config;
  engine : Sim.Engine.t;
  node : Ndn.Node.t;
  prefix : Ndn.Name.t;
  rng : Sim.Rng.t;
  zipf : Zipf.t;
  estimator : Ndn.Consumer.Rtt_estimator.t;
  until : float option;
  mutable active : bool;
  mutable requests_issued : int;
  mutable responses : int;
  mutable timeouts : int;
  rank_counts : int array option;
}

let validate c =
  if c.users <= 0 then invalid_arg "Aggregate: users must be positive";
  if not (Float.is_finite c.req_per_user_per_hour)
     || c.req_per_user_per_hour <= 0.
  then invalid_arg "Aggregate: req_per_user_per_hour must be positive";
  if c.catalog <= 0 then invalid_arg "Aggregate: catalog must be positive";
  if not (Float.is_finite c.diurnal_amplitude)
     || c.diurnal_amplitude < 0.
     || c.diurnal_amplitude > 1.
  then invalid_arg "Aggregate: diurnal_amplitude must lie in [0, 1]";
  if not (Float.is_finite c.diurnal_period_ms) || c.diurnal_period_ms <= 0.
  then invalid_arg "Aggregate: diurnal_period_ms must be positive"

let two_pi = 8. *. Float.atan 1.

(* Instantaneous arrival rate of the modulated process. *)
let rate_at c now =
  base_rate_per_ms c
  *. (1.
      +. c.diurnal_amplitude
         *. Float.sin
              (two_pi *. (now -. c.diurnal_phase_ms) /. c.diurnal_period_ms))

let issue t =
  let rank = Zipf.sample t.zipf t.rng in
  (match t.rank_counts with
  | Some counts -> counts.(rank - 1) <- counts.(rank - 1) + 1
  | None -> ());
  let name = Ndn.Name.append t.prefix (string_of_int rank) in
  t.requests_issued <- t.requests_issued + 1;
  Ndn.Consumer.fetch t.node ~max_retries:t.config.max_retries
    ~estimator:t.estimator ~consumer_private:t.config.consumer_private
    ~on_done:(fun (outcome : Ndn.Consumer.outcome) ->
      match outcome.data with
      | Some _ -> t.responses <- t.responses + 1
      | None -> t.timeouts <- t.timeouts + 1)
    name

(* Ogata thinning: candidate arrivals at the constant peak rate
   [base × (1 + A)], each accepted with probability [rate(t)/peak].
   Candidate times and the accept draw are consumed unconditionally, so
   the RNG stream advances identically whatever the modulation does —
   amplitude changes which candidates become requests, never how much
   randomness the stream eats. *)
let rec schedule_next t =
  if t.active then begin
    let peak = base_rate_per_ms t.config *. (1. +. t.config.diurnal_amplitude) in
    let dt = Sim.Rng.exponential t.rng ~rate:peak in
    let fire = Sim.Engine.now t.engine +. dt in
    match t.until with
    | Some stop_at when fire > stop_at -> t.active <- false
    | _ ->
      (* Keyed through the node so the arrival events stay ordered
         shard-count-invariantly when the node lives in a Sim.Shard
         partition (a plain engine FIFO tie-break would depend on what
         else shares the engine). *)
      Ndn.Node.schedule_app t.node ~delay:dt (fun () ->
          if t.active then begin
            let u = Sim.Rng.float t.rng 1. in
            if u *. peak <= rate_at t.config (Sim.Engine.now t.engine) then
              issue t;
            schedule_next t
          end)
  end

let attach config ~node ~prefix ~rng ?until () =
  validate config;
  let t =
    {
      config;
      engine = Ndn.Node.engine node;
      node;
      prefix;
      rng;
      zipf = Zipf.create ~n:config.catalog ~s:config.zipf_s;
      estimator = Ndn.Consumer.Rtt_estimator.create ();
      until;
      active = true;
      requests_issued = 0;
      responses = 0;
      timeouts = 0;
      rank_counts =
        (if config.record_ranks then Some (Array.make config.catalog 0)
         else None);
    }
  in
  schedule_next t;
  t

let stop t = t.active <- false

let requests_issued t = t.requests_issued

let responses t = t.responses

let timeouts t = t.timeouts

let rank_counts t = t.rank_counts
