(** Zipf(ian) popularity sampling.

    Web-object popularity is classically Zipf-like; the IRCache proxy
    trace the paper replays has this shape, which is what makes small
    LRU caches achieve double-digit hit rates. *)

type t

val create : n:int -> s:float -> t
(** Popularity law over ranks [1..n] with exponent [s]:
    [Pr(rank = r) ∝ r^{-s}].  Precomputes the CDF (O(n) memory,
    O(log n) sampling).  The harmonic normalizer and CDF table are
    memoized per [(n, s)] in a per-domain cache, so creating the same
    law for each of 10k aggregate edge consumers costs the O(n) sum
    once, not 10k times; the shared table is immutable.
    @raise Invalid_argument if [n <= 0] or [s < 0.]. *)

val n : t -> int

val s : t -> float

val sample : t -> Sim.Rng.t -> int
(** A rank in [1..n]. *)

val prob : t -> int -> float
(** Probability of a rank.
    @raise Invalid_argument if the rank is outside [1..n]. *)

val head_mass : t -> int -> float
(** Total probability of ranks [1..k] — the best possible hit rate of
    a size-[k] cache under independent requests. *)
