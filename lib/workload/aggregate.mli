(** Aggregate edge consumers: one entity standing for a population.

    Simulating a million individual consumers as engine entities is
    pointless for cache-privacy questions — caches see the {e merged}
    arrival process at each edge router, not the per-user streams.  An
    [Aggregate.t] is that merged process: a single non-homogeneous
    Poisson request stream whose rate is [users ×
    req_per_user_per_hour], modulated by a diurnal sine, with object
    ranks drawn Zipf — statistically representing 10k–1M users with
    zero per-user state.

    Determinism: every random draw (arrival thinning, Zipf rank) comes
    from the caller-supplied {!Sim.Rng.t}.  Pre-split one stream per
    edge router and runs are byte-identical for any [--jobs], the same
    discipline as {!Sim.Parallel}. *)

type config = {
  users : int;  (** Population size this entity stands for. *)
  req_per_user_per_hour : float;
  catalog : int;  (** Number of distinct objects (Zipf ranks 1..catalog). *)
  zipf_s : float;  (** Popularity exponent. *)
  diurnal_amplitude : float;
      (** [A] in [\[0, 1\]]: the request rate is
          [base × (1 + A·sin(2π(t − phase)/period))].  [0] disables
          modulation. *)
  diurnal_period_ms : float;
  diurnal_phase_ms : float;
  consumer_private : bool;  (** Mark requests private (Section V-B). *)
  max_retries : int;  (** Retransmissions per fetch (see {!Consumer}). *)
  record_ranks : bool;
      (** Keep a per-rank issue histogram (O(catalog) memory) — used by
          the statistical tests; off for 10k-router sweeps. *)
}

val default : config
(** 10_000 users, 6 requests/user/hour, catalog 10_000 at [s = 0.85]
    (the IRCache-like regime), amplitude 0.5 over a 24 h period, public
    interests, 2 retries, no rank recording. *)

val base_rate_per_ms : config -> float
(** The unmodulated arrival rate [users × req_per_user_per_hour /
    3.6e6], requests per virtual millisecond. *)

val expected_requests : config -> duration_ms:float -> float
(** Mean number of arrivals in a window starting at phase 0 — the sine
    integrates away over whole periods, so this is
    [base_rate × duration] for sizing runs. *)

type t

val attach :
  config ->
  node:Ndn.Node.t ->
  prefix:Ndn.Name.t ->
  rng:Sim.Rng.t ->
  ?until:float ->
  unit ->
  t
(** Start the stream: schedules the first candidate arrival on
    [node]'s engine — through {!Ndn.Node.schedule_app}, so the stream
    is shard-count-invariant when the node lives in a [Sim.Shard]
    partition — and thereafter self-perpetuates via Ogata thinning
    (candidates at the peak rate, accepted with probability
    [rate(t)/peak]) — so the sequence of RNG draws is independent of
    how many candidates are rejected, and two configs differing only
    in amplitude consume identical randomness.  Each accepted arrival
    fetches [prefix/RANK] from [node] through {!Ndn.Consumer.fetch}
    with one shared RTT estimator.  [until] (virtual ms) stops the
    stream — without it the stream never drains, so bound the run via
    [Sim.Engine.run ~until] or call {!stop}. *)

val stop : t -> unit
(** Stop issuing new requests (in-flight fetches still complete). *)

val requests_issued : t -> int

val responses : t -> int

val timeouts : t -> int
(** Fetches that exhausted their retries. *)

val rank_counts : t -> int array option
(** With [record_ranks]: index [r-1] counts issues of rank [r]. *)
