(* Fold-as-you-go trace analyzers (DESIGN §16).

   One accumulator ingests events one at a time — from a live tracer,
   a binary stream or a JSONL stream — and produces the summary the
   old jq pipelines computed from materialized traces: per-kind
   counts, per-tier cache hit rates, the timing-attack confusion
   matrix, and link-delay Stats/Histogram.

   Accumulators obey the mergeable-accumulator law [Sim.Parallel]
   tests: feeding a stream into one accumulator and feeding disjoint
   splits into several then merging agree (exactly for every counter;
   within float tolerance for the Welford statistics, whose parallel
   merge reassociates additions).  Per-shard or per-trial partial
   folds therefore combine deterministically.

   Times are microsecond-quantized through [Trace.time_to_us] — the
   binary wire precision and the JSONL [%.6f] precision — so both
   pipelines yield byte-identical summaries. *)

type node_acc = { mutable hits : int; mutable misses : int }

type probe = { warm : bool; mutable hit_seen : bool }

type t = {
  mutable n_events : int;
  mutable first_us : int;
  mutable last_us : int;
  kind_counts : int array;
  nodes : (string, node_acc) Hashtbl.t;
  probes : (string, probe) Hashtbl.t;
  names : (string, unit) Hashtbl.t;
  delay : Stats.t;
  delay_hist : Histogram.t;
}

(* Fixed histogram layout so partial folds always merge; link latency
   draws beyond [hist_hi] ms clamp into the last bin. *)
let hist_lo = 0.

let hist_hi = 100.

let hist_bins = 20

let create () =
  {
    n_events = 0;
    first_us = max_int;
    last_us = min_int;
    kind_counts = Array.make (List.length Trace.all_kinds) 0;
    nodes = Hashtbl.create 64;
    probes = Hashtbl.create 64;
    names = Hashtbl.create 256;
    delay = Stats.create ();
    delay_hist = Histogram.create ~lo:hist_lo ~hi:hist_hi ~bins:hist_bins;
  }

let has_sub s sub =
  let ls = String.length s and lsub = String.length sub in
  let rec go i =
    if i + lsub > ls then false
    else if String.sub s i lsub = sub then true
    else go (i + 1)
  in
  go 0

(* The timing experiment probes names under "/warm/" (cached by a user
   fetch before the adversary's probe) and "/cold/" (probed blind). *)
let classify name =
  if has_sub name "/warm/" then Some true
  else if has_sub name "/cold/" then Some false
  else None

(* Generated ISP topologies label routers "<prefix>-t<tier>-n<i>";
   anything else ("U", "R", "engine", …) is untiered. *)
let tier_of_node label =
  let n = String.length label in
  let digit c = c >= '0' && c <= '9' in
  let rec find i =
    if i + 2 >= n then None
    else if label.[i] = '-' && label.[i + 1] = 't' && digit label.[i + 2] then begin
      let j = ref (i + 2) in
      while !j < n && digit label.[!j] do
        incr j
      done;
      if !j < n && label.[!j] = '-' then
        Some (int_of_string (String.sub label (i + 2) (!j - i - 2)))
      else find (i + 1)
    end
    else find (i + 1)
  in
  find 0

(* Deterministic hashtable traversal: every consumer below is either
   order-insensitive (commutative sums) or sorts anyway; going through
   one sorted view keeps hash order out of every output. *)
let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let node_acc t label =
  match Hashtbl.find_opt t.nodes label with
  | Some acc -> acc
  | None ->
    let acc = { hits = 0; misses = 0 } in
    Hashtbl.add t.nodes label acc;
    acc

let feed t (e : Trace.event) =
  t.n_events <- t.n_events + 1;
  let us = Trace.time_to_us e.time in
  if us < t.first_us then t.first_us <- us;
  if us > t.last_us then t.last_us <- us;
  let kid = Trace.kind_id e.kind in
  t.kind_counts.(kid) <- t.kind_counts.(kid) + 1;
  ignore (node_acc t e.node);
  if e.name <> "" then begin
    if not (Hashtbl.mem t.names e.name) then Hashtbl.add t.names e.name ();
    match classify e.name with
    | Some warm ->
      if not (Hashtbl.mem t.probes e.name) then
        Hashtbl.add t.probes e.name { warm; hit_seen = false }
    | None -> ()
  end;
  match e.kind with
  | Cs_hit ->
    let acc = node_acc t e.node in
    acc.hits <- acc.hits + 1;
    (match Hashtbl.find_opt t.probes e.name with
    | Some p -> p.hit_seen <- true
    | None -> ())
  | Cs_miss ->
    let acc = node_acc t e.node in
    acc.misses <- acc.misses + 1
  | Link_transmit -> (
    match List.assoc_opt "delay_ms" e.attrs with
    | Some v -> (
      match float_of_string_opt v with
      | Some d ->
        Stats.add t.delay d;
        Histogram.add t.delay_hist d
      | None -> ())
    | None -> ())
  | _ -> ()

let merge a b =
  let t = create () in
  t.n_events <- a.n_events + b.n_events;
  t.first_us <- (if a.first_us < b.first_us then a.first_us else b.first_us);
  t.last_us <- (if a.last_us > b.last_us then a.last_us else b.last_us);
  Array.iteri
    (fun i _ -> t.kind_counts.(i) <- a.kind_counts.(i) + b.kind_counts.(i))
    t.kind_counts;
  let add_nodes src =
    List.iter
      (fun (label, (acc : node_acc)) ->
        let into = node_acc t label in
        into.hits <- into.hits + acc.hits;
        into.misses <- into.misses + acc.misses)
      (sorted_bindings src.nodes)
  in
  add_nodes a;
  add_nodes b;
  let add_probes src =
    List.iter
      (fun (name, (p : probe)) ->
        match Hashtbl.find_opt t.probes name with
        | Some into -> if p.hit_seen then into.hit_seen <- true
        | None -> Hashtbl.add t.probes name { warm = p.warm; hit_seen = p.hit_seen })
      (sorted_bindings src.probes)
  in
  add_probes a;
  add_probes b;
  let add_names src =
    List.iter
      (fun (name, ()) ->
        if not (Hashtbl.mem t.names name) then Hashtbl.add t.names name ())
      (sorted_bindings src.names)
  in
  add_names a;
  add_names b;
  let delay = Stats.merge a.delay b.delay in
  Histogram.merge_into ~into:t.delay_hist a.delay_hist;
  Histogram.merge_into ~into:t.delay_hist b.delay_hist;
  {
    t with
    delay;
  }

(* --- summaries --- *)

let events t = t.n_events

let kind_count t k = t.kind_counts.(Trace.kind_id k)

let span_us t = if t.n_events = 0 then 0 else t.last_us - t.first_us

let distinct_nodes t = Hashtbl.length t.nodes

let distinct_names t = Hashtbl.length t.names

let delay t = t.delay

let delay_hist t = t.delay_hist

type attack = {
  warm : int;
  cold : int;
  tp : int;
  tn : int;
  tpr : float;
  tnr : float;
  accuracy : float;
}

let attack t =
  let warm = ref 0 and cold = ref 0 and tp = ref 0 and tn = ref 0 in
  List.iter
    (fun (_, (p : probe)) ->
      if p.warm then begin
        incr warm;
        if p.hit_seen then incr tp
      end
      else begin
        incr cold;
        if not p.hit_seen then incr tn
      end)
    (sorted_bindings t.probes);
  if !warm = 0 && !cold = 0 then None
  else begin
    let tpr = if !warm = 0 then Float.nan else float_of_int !tp /. float_of_int !warm in
    let tnr = if !cold = 0 then Float.nan else float_of_int !tn /. float_of_int !cold in
    let accuracy =
      if !warm = 0 then tnr else if !cold = 0 then tpr else (tpr +. tnr) /. 2.
    in
    Some { warm = !warm; cold = !cold; tp = !tp; tn = !tn; tpr; tnr; accuracy }
  end

type tier_row = {
  tier : int option;  (** [None] = untiered nodes. *)
  routers : int;
  hits : int;
  misses : int;
}

let tiers t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (label, (acc : node_acc)) ->
      let key = tier_of_node label in
      let row =
        match Hashtbl.find_opt table key with
        | Some r -> r
        | None ->
          let r = { tier = key; routers = 0; hits = 0; misses = 0 } in
          Hashtbl.add table key r;
          r
      in
      Hashtbl.replace table key
        {
          row with
          routers = row.routers + 1;
          hits = row.hits + acc.hits;
          misses = row.misses + acc.misses;
        })
    (sorted_bindings t.nodes);
  Hashtbl.fold (fun _ row acc -> row :: acc) table []
  |> List.sort (fun a b ->
         match (a.tier, b.tier) with
         | Some x, Some y -> Int.compare x y
         | Some _, None -> -1
         | None, Some _ -> 1
         | None, None -> 0)

let hit_rate ~hits ~misses =
  let total = hits + misses in
  if total = 0 then Float.nan else float_of_int hits /. float_of_int total

(* --- rendering --- *)

(* %.17g round-trips doubles exactly, so equal summaries are equal
   bytes — the bit-for-bit contract between the binary and JSONL
   analyzer pipelines. *)
let jfloat x = if Float.is_nan x then "null" else Printf.sprintf "%.17g" x

let tier_label = function None -> "untiered" | Some k -> string_of_int k

let render_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"events\": %d,\n" t.n_events);
  Buffer.add_string b (Printf.sprintf "  \"span_us\": %d,\n" (span_us t));
  Buffer.add_string b
    (Printf.sprintf "  \"first_us\": %d,\n" (if t.n_events = 0 then 0 else t.first_us));
  Buffer.add_string b
    (Printf.sprintf "  \"last_us\": %d,\n" (if t.n_events = 0 then 0 else t.last_us));
  Buffer.add_string b (Printf.sprintf "  \"nodes\": %d,\n" (distinct_nodes t));
  Buffer.add_string b (Printf.sprintf "  \"names\": %d,\n" (distinct_names t));
  Buffer.add_string b "  \"kinds\": {";
  let first = ref true in
  List.iter
    (fun k ->
      let c = kind_count t k in
      if c > 0 then begin
        if not !first then Buffer.add_string b ", ";
        first := false;
        Buffer.add_string b (Printf.sprintf "\"%s\": %d" (Trace.kind_to_string k) c)
      end)
    Trace.all_kinds;
  Buffer.add_string b "},\n";
  (match attack t with
  | None -> Buffer.add_string b "  \"attack\": null,\n"
  | Some a ->
    Buffer.add_string b
      (Printf.sprintf
         "  \"attack\": {\"warm\": %d, \"cold\": %d, \"tp\": %d, \"tn\": %d, \
          \"tpr\": %s, \"tnr\": %s, \"accuracy\": %s},\n"
         a.warm a.cold a.tp a.tn (jfloat a.tpr) (jfloat a.tnr) (jfloat a.accuracy)));
  Buffer.add_string b "  \"tiers\": [";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"tier\": \"%s\", \"routers\": %d, \"hits\": %d, \"misses\": %d, \
            \"hit_rate\": %s}"
           (tier_label row.tier) row.routers row.hits row.misses
           (jfloat (hit_rate ~hits:row.hits ~misses:row.misses))))
    (tiers t);
  Buffer.add_string b "],\n";
  if Stats.count t.delay = 0 then Buffer.add_string b "  \"delay_ms\": null\n"
  else begin
    Buffer.add_string b
      (Printf.sprintf
         "  \"delay_ms\": {\"count\": %d, \"mean\": %s, \"stddev\": %s, \
          \"min\": %s, \"max\": %s,\n"
         (Stats.count t.delay)
         (jfloat (Stats.mean t.delay))
         (jfloat (Stats.stddev t.delay))
         (jfloat (Stats.min t.delay))
         (jfloat (Stats.max t.delay)));
    Buffer.add_string b
      (Printf.sprintf "    \"hist\": {\"lo\": %s, \"hi\": %s, \"bins\": %d, \"counts\": ["
         (jfloat hist_lo) (jfloat hist_hi) hist_bins);
    Array.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b (string_of_int c))
      (Histogram.counts t.delay_hist);
    Buffer.add_string b "]}}\n"
  end;
  Buffer.add_string b "}\n";
  Buffer.contents b

let render_text t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "events        %d\n" t.n_events);
  Buffer.add_string b
    (Printf.sprintf "span          %.6f ms\n" (float_of_int (span_us t) /. 1000.));
  Buffer.add_string b
    (Printf.sprintf "nodes/names   %d / %d\n" (distinct_nodes t) (distinct_names t));
  Buffer.add_string b "kinds:\n";
  List.iter
    (fun k ->
      let c = kind_count t k in
      if c > 0 then
        Buffer.add_string b
          (Printf.sprintf "  %-20s %d\n" (Trace.kind_to_string k) c))
    Trace.all_kinds;
  (match attack t with
  | None -> ()
  | Some a ->
    Buffer.add_string b
      (Printf.sprintf
         "attack:       warm %d cold %d  tp %d tn %d  tpr %.4f tnr %.4f  \
          accuracy %.4f\n"
         a.warm a.cold a.tp a.tn a.tpr a.tnr a.accuracy));
  List.iter
    (fun row ->
      Buffer.add_string b
        (Printf.sprintf "tier %-9s %d routers  hits %d  misses %d  hit_rate %.4f\n"
           (tier_label row.tier) row.routers row.hits row.misses
           (hit_rate ~hits:row.hits ~misses:row.misses)))
    (tiers t);
  if Stats.count t.delay > 0 then
    Buffer.add_string b
      (Printf.sprintf "delay_ms:     n %d  mean %.4f  stddev %.4f  min %.4f  max %.4f\n"
         (Stats.count t.delay)
         (Stats.mean t.delay)
         (Stats.stddev t.delay)
         (Stats.min t.delay)
         (Stats.max t.delay));
  Buffer.contents b

let of_source src =
  let t = create () in
  match Trace_reader.fold_auto src ~init:() ~f:(fun () e -> feed t e) with
  | Ok () -> Ok t
  | Error e -> Error e
