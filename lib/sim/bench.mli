(** Micro-benchmark measurement harness for the perf-regression suite.

    One discipline shared by [bench core] and any future benchmark:
    warmup rounds, then measured rounds bracketed by a caller-injected
    nanosecond clock and [Gc.minor_words], reporting the {e minimum}
    time and allocation per operation across rounds (a microbenchmark's
    noise is one-sided — interference only adds — so the minimum
    estimates intrinsic cost).

    This module never reads a clock itself: the repo's determinism lint
    forbids wall-clock access outside [bin/]-like executables, so
    callers pass [clock_ns] in (e.g. bechamel's monotonic clock). *)

type result = {
  label : string;
  ns_per_op : float;  (** Best-of-runs wall time per operation. *)
  allocs_per_op : float;
      (** Best-of-runs minor-heap {e words} allocated per operation
          (from [Gc.minor_words]).  [0.] means the operation touches
          the minor heap not at all — the zero-allocation contract the
          CS hit-path benchmark enforces. *)
  ops : int;  (** Operations per measured run. *)
  runs : int;  (** Measured runs (excluding warmup). *)
}

val measure :
  clock_ns:(unit -> float) ->
  ?warmup:int ->
  ?runs:int ->
  label:string ->
  ops:int ->
  (int -> unit) ->
  result
(** [measure ~clock_ns ~label ~ops f] calls [f ops] — [f] must perform
    [ops] iterations of the operation internally, so per-call overhead
    amortizes away — [warmup] (default 2) unmeasured times, then [runs]
    (default 5) measured times.  A [Gc.full_major] before each measured
    run keeps earlier runs' promotion debt from billing its minor
    collections here.
    @raise Invalid_argument if [ops <= 0] or [runs <= 0]. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

val result_to_json : result -> string
(** One flat JSON object:
    [{"op": label, "ns_per_op": _, "allocs_per_op": _, "ops": _,
    "runs": _}] — the per-operation record embedded in
    [BENCH_core.json]. *)

val pp_result : Format.formatter -> result -> unit
(** Human-oriented one-line rendering for terminal output. *)
