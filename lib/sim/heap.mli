(** 4-ary min-heap keyed by [(float, int)] pairs, stored
    struct-of-arrays with slot indirection.

    The event queue of the simulator: the float key is virtual time, the
    integer key is an insertion sequence number used to break ties so
    that events scheduled for the same instant fire in FIFO order.
    Because [(time, seq)] is a total order, pop order is independent of
    the internal layout (arity included) — any correct heap yields the
    same event sequence.

    Layout: parallel arrays — a flat (unboxed) [float array] of times,
    an [int array] of sequence numbers, and an [int array] mapping heap
    positions to stable element slots — grown by amortized doubling.
    Elements live in a slot-indexed array and are never moved by a
    sift, so the sift loops permute only unboxed floats and ints (no
    write barriers, no polymorphic-array dispatch).  [add],
    [pop_min_elt], [min_time]/[min_before], and
    [pop_min_elt_writing_time] allocate nothing; only the
    tuple-returning conveniences ([pop_min], [peek_min]) box their
    result.  A popped element may remain reachable from its retired
    slot until the slot is reused by a later [add] or [clear]. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int
(** Number of queued elements. *)

val is_empty : 'a t -> bool

val add : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert an element with the given priority key.  Allocation-free
    except when the backing arrays double. *)

val min_time : 'a t -> float
(** Time key of the minimum element.
    @raise Invalid_argument when empty. *)

val min_before : 'a t -> float -> bool
(** [min_before t limit] is [true] iff the heap is non-empty and the
    minimum element's time key is [<= limit].  The unboxed bound test
    behind [Engine.run ~until]'s stopping rule — no boxed-float return
    as with {!min_time}, no [option] as with {!peek_min}. *)

val min_seq : 'a t -> int
(** Sequence key of the minimum element.
    @raise Invalid_argument when empty. *)

val pop_min_elt : 'a t -> 'a
(** Remove and return the element with the smallest key, without boxing
    the key (read it first via {!min_time}/{!min_seq} if needed).
    @raise Invalid_argument when empty. *)

val pop_min_elt_writing_time : 'a t -> time_into:float array -> 'a
(** {!pop_min_elt}, fused with writing the popped key's time into
    [time_into.(0)].  Lets a caller whose clock is a one-element float
    array (the engine) receive the time without a cross-module
    boxed-float hand-off.
    @raise Invalid_argument when empty.  [time_into] must have length
    [>= 1]. *)

val pop_min : 'a t -> (float * int * 'a) option
(** Remove and return the element with the smallest key, or [None] when
    empty. *)

val peek_min : 'a t -> (float * int * 'a) option
(** Return the smallest-keyed element without removing it. *)

val pop_if_min_before : 'a t -> float -> 'a option
(** [pop_if_min_before t limit] pops and returns the minimum element if
    its time key is [<= limit], in one traversal — the
    [Engine.run ~until] stopping rule without a separate peek/pop
    pair.  [None] when the heap is empty or the head is later than
    [limit] (the heap is left untouched). *)

val clear : 'a t -> unit
(** Remove all elements and release the backing arrays. *)
