(* Conservative intra-trial sharding: K shard-local engines that
   exchange cross-shard deliveries through per-(src,dst) queues and
   advance in lookahead windows.

   Window protocol (per round, all shards in lockstep):

     1. drain  — each shard moves every inbound queued message into its
        heap (in fixed source-shard order; arrival order inside a heap
        is irrelevant because pop order is total on [(time, key)]);
     2. agree  — each shard publishes its earliest event time; a
        barrier later, everyone computes the same global minimum
        [gnext].  [infinity] means globally quiescent: stop.
     3. window — everyone runs its engine up to (but excluding)
        [gnext + lookahead].  Any message sent during the window
        carries a delivery time [>= send_time + min cross-shard link
        delay >= gnext + lookahead], i.e. outside the window — so no
        shard can receive a message "in its past".  A second barrier
        publishes the sends, and the next round's drain picks them up.

   Determinism does not come from the windows (they only bound
   *when* work may run) but from the event keys: every event in shard
   mode is keyed with a globally unique [(node id, per-node counter)]
   pair packed into an int, the heap pops in [(time, key)] order, and a
   node's full event sequence is therefore independent of which engine
   hosts it.  Trace records are tagged with the key of the event that
   emitted them and stitched across shards by [(time, tag)], giving one
   byte stream for any shard count. *)

type msg = { mt : float; mk : int; mf : unit -> unit }

let nop () = ()

let dummy_msg = { mt = 0.; mk = 0; mf = nop }

(* Growable per-(src,dst) message queue.  No lock: between two window
   barriers only the source shard's domain appends, and the destination
   drains strictly after the barrier that published the appends. *)
type queue = { mutable arr : msg array; mutable len : int }

(* Per-shard tagged trace buffer: (stitch key, event) in emission
   order. *)
type tbuf = { mutable ev : (int * Trace.event) array; mutable tlen : int }

let dummy_tagged =
  ( 0,
    { Trace.time = 0.; node = ""; kind = Trace.Engine_step; name = ""; attrs = [] }
  )

type t = {
  k : int;
  engines : Engine.t array;
  tracers : Trace.t array;
  tbufs : tbuf array;
  queues : queue array; (* length k*k, index src*k + dst *)
  mutable min_link_delay : float; (* infinity until a link is noted *)
  mutable latency_factor : float; (* min fault degradation factor seen *)
  mutable watchdog : (float * (unit -> float)) option;
      (* (stall bound ms, wall-clock) — None = no watchdog (default) *)
}

(* One lookahead window can hold at most [queue_bound] messages per
   directed shard pair; beyond that the simulation is almost certainly
   in a feedback loop, and unbounded queues would only defer the OOM. *)
let queue_bound = 1 lsl 22

let create ?(traced = false) ~shards () =
  if shards < 1 then invalid_arg "Sim.Shard.create: shards < 1";
  let engines = Array.init shards (fun _ -> Engine.create ()) in
  let tbufs = Array.init shards (fun _ -> { ev = [||]; tlen = 0 }) in
  let tracers =
    if not traced then Array.make shards Trace.disabled
    else
      Array.init shards (fun i ->
          let buf = tbufs.(i) and eng = engines.(i) in
          Trace.with_sink (fun e ->
              if buf.tlen = Array.length buf.ev then begin
                let cap = max 64 (2 * Array.length buf.ev) in
                let ev = Array.make cap dummy_tagged in
                Array.blit buf.ev 0 ev 0 buf.tlen;
                buf.ev <- ev
              end;
              buf.ev.(buf.tlen) <- (Engine.cur_key eng, e);
              buf.tlen <- buf.tlen + 1))
  in
  {
    k = shards;
    engines;
    tracers;
    tbufs;
    queues = Array.init (shards * shards) (fun _ -> { arr = [||]; len = 0 });
    min_link_delay = Float.infinity;
    latency_factor = 1.;
    watchdog = None;
  }

let set_watchdog t ?(stall_ms = 30_000.) ~clock_ms () =
  if not (stall_ms > 0. && Float.is_finite stall_ms) then
    invalid_arg "Sim.Shard.set_watchdog: stall_ms must be positive and finite";
  t.watchdog <- Some (stall_ms, clock_ms)

let clear_watchdog t = t.watchdog <- None

let shards t = t.k

let engine t i = t.engines.(i)

let tracer t i = t.tracers.(i)

(* FNV-1a (32-bit) over the label: a fixed, platform-independent shard
   assignment — [Hashtbl.hash] would tie the partition (and thus which
   code path every packet takes) to the runtime's hash implementation. *)
let assign t label =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    label;
  !h mod t.k

let note_min_link_delay t d =
  if d < t.min_link_delay then t.min_link_delay <- d

let note_latency_factor t f =
  let f = if f < 0. then 0. else f in
  if f < t.latency_factor then t.latency_factor <- f

let lookahead t = t.min_link_delay *. Float.min 1. t.latency_factor

let send t ~src ~dst ~time ~key f =
  let q = t.queues.((src * t.k) + dst) in
  if q.len >= queue_bound then
    failwith
      (Printf.sprintf
         "Sim.Shard: cross-shard queue %d->%d overflowed its %d-message \
          bound within one lookahead window"
         src dst queue_bound);
  if q.len = Array.length q.arr then begin
    let cap = max 8 (2 * Array.length q.arr) in
    let arr = Array.make cap dummy_msg in
    Array.blit q.arr 0 arr 0 q.len;
    q.arr <- arr
  end;
  q.arr.(q.len) <- { mt = time; mk = key; mf = f };
  q.len <- q.len + 1

(* The windowed parallel loop for k >= 2.  Every worker executes the
   exact same barrier sequence: the stop/continue decision is a pure
   function of data published before the deciding barrier (local_next),
   so workers can never disagree on it.  A worker whose window raises
   publishes [neg_infinity] as its next event time, which stops
   everyone on the following round; the exception is re-raised on the
   caller after the joins. *)
(* No cross-shard link was ever registered, so [send] can never be
   called (every cross-shard connect closure notes its link's delay at
   wiring time): the shards are fully independent event streams and can
   simply run to completion one after the other on the calling domain. *)
let run_disconnected t ~until =
  Array.iter (fun eng -> Engine.run ?until eng) t.engines

let run_windows_connected t ~until ~la =
  let k = t.k in
  if la <= 0. then
    failwith
      "Sim.Shard: cross-shard lookahead is not positive — every cross-shard \
       link must have a positive minimum latency (and fault schedules must \
       not degrade one to zero)";
  let limit = match until with Some l -> l | None -> Float.infinity in
  let local_next = Array.make k Float.infinity in
  let bcount = Atomic.make 0 in
  let bsense = Atomic.make false in
  let bmutex = Mutex.create () in
  let bcond = Condition.create () in
  let fail = Atomic.make None in
  (* Which sense each worker last signed in with: a straggler is a slot
     still carrying the previous sense.  Plain (non-atomic) bools — the
     array is only read to build the stall diagnostic, where a torn
     read at worst misnames a shard that arrived at the last instant. *)
  let arrived = Array.make k false in
  (* Snapshot of the stalled partition, racy by design (the point is
     that somebody is NOT making progress).  Names the shards that
     never reached the barrier, how much work each engine still holds,
     and any backed-up cross-shard queues. *)
  let stall_diagnostic ~waiter ~stall_ms s =
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "Sim.Shard: stall watchdog — no barrier progress in %.0f ms (shard %d \
          waiting); stuck shard(s):"
         stall_ms waiter);
    for j = 0 to k - 1 do
      if arrived.(j) <> s then Buffer.add_string buf (Printf.sprintf " %d" j)
    done;
    Buffer.add_string buf "; pending events:";
    Array.iteri
      (fun j eng ->
        Buffer.add_string buf (Printf.sprintf " %d:%d" j (Engine.pending eng)))
      t.engines;
    Buffer.add_string buf "; cross-shard queue depths:";
    let any = ref false in
    Array.iteri
      (fun idx q ->
        if q.len > 0 then begin
          any := true;
          Buffer.add_string buf
            (Printf.sprintf " %d->%d:%d" (idx / k) (idx mod k) q.len)
        end)
      t.queues;
    if not !any then Buffer.add_string buf " none";
    Buffer.contents buf
  in
  (* Sense-reversing barrier, hybrid wait: spin briefly (fast path when
     every shard has its own core), then block on the condition
     variable — pure spinning on an oversubscribed host (fewer cores
     than shards) burns whole scheduler quanta per window and collapses
     throughput.  The releaser flips [bsense] while holding the mutex,
     so a waiter that saw the old sense before locking cannot miss the
     broadcast.

     With a watchdog armed, the block phase polls instead of sleeping
     (OCaml's [Condition] has no timed wait): the waiter checks the
     injected wall-clock every 4096 relaxations and raises a diagnostic
     once the stall bound passes without release.  That failure is not
     recoverable — peers blocked at the same barrier raise their own
     copies, and the stuck shard keeps running until its window ends —
     it exists to turn a silent hang into an actionable error. *)
  let barrier i sense =
    let s = not !sense in
    sense := s;
    arrived.(i) <- s;
    if Atomic.fetch_and_add bcount 1 = k - 1 then begin
      Atomic.set bcount 0;
      Mutex.lock bmutex;
      Atomic.set bsense s;
      Condition.broadcast bcond;
      Mutex.unlock bmutex
    end
    else begin
      let spins = ref 0 in
      while Atomic.get bsense <> s && !spins < 2048 do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get bsense <> s then begin
        match t.watchdog with
        | None ->
          Mutex.lock bmutex;
          while Atomic.get bsense <> s do
            Condition.wait bcond bmutex
          done;
          Mutex.unlock bmutex
        | Some (stall_ms, clock_ms) ->
          let t0 = clock_ms () in
          let polls = ref 0 in
          while Atomic.get bsense <> s do
            Domain.cpu_relax ();
            incr polls;
            if !polls land 4095 = 0 && clock_ms () -. t0 > stall_ms then
              failwith (stall_diagnostic ~waiter:i ~stall_ms s)
          done
      end
    end
  in
  let worker i =
    let eng = t.engines.(i) in
    let sense = ref false in
    let poisoned = ref false in
    let rec round () =
      if not !poisoned then
        for src = 0 to k - 1 do
          let q = t.queues.((src * k) + i) in
          for j = 0 to q.len - 1 do
            let m = q.arr.(j) in
            ignore (Engine.schedule_key_at eng ~time:m.mt ~key:m.mk m.mf);
            q.arr.(j) <- dummy_msg
          done;
          q.len <- 0
        done;
      local_next.(i) <-
        (if !poisoned then Float.neg_infinity else Engine.next_event_time eng);
      barrier i sense;
      let gnext = ref Float.infinity in
      for s = 0 to k - 1 do
        if local_next.(s) < !gnext then gnext := local_next.(s)
      done;
      (* -inf: a peer failed; +inf: globally quiescent (and note
         inf <= inf, so the bound test alone would spin forever on an
         unbounded run); > limit: nothing left inside the horizon
         (inbound messages were already drained into the heaps above,
         so none are stranded). *)
      if Float.is_finite !gnext && !gnext <= limit then begin
        let window_end = !gnext +. la in
        (try
           if window_end > limit then
             (* Final horizon window, inclusive: arrivals land at
                [>= gnext + la > limit], so none can be missed. *)
             Engine.run ~until:limit eng
           else
             (* Exclusive bound ([min_before] is <=): a cross-shard
                arrival at exactly [window_end] must get to tie-break
                by key against local events at that instant, so the
                boundary itself belongs to the next round. *)
             Engine.run ~until:(Float.pred window_end) eng
         with exn ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set fail None (Some (exn, bt)));
           poisoned := true);
        barrier i sense;
        round ()
      end
    in
    round ()
  in
  let domains =
    Array.init (k - 1) (fun j -> Domain.spawn (fun () -> worker (j + 1)))
  in
  worker 0;
  Array.iter Domain.join domains;
  match Atomic.get fail with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()

let run_windows t ~until =
  let la = lookahead t in
  if Float.is_finite la then run_windows_connected t ~until ~la
  else run_disconnected t ~until

(* Shard-count-invariant finish time, applied to every engine so that
   [now] (and anything a driver schedules relative to it) cannot depend
   on per-shard window clamps:

   - with events still queued under a horizon [l]: every window bound
     was capped at [l], so [l] itself (or the pre-run clock, if the
     horizon was already in the past) is the invariant answer — exactly
     what a sequential [Engine.run ~until] leaves behind;
   - otherwise: the latest instant any engine reached by actually
     popping an event.  Which events exist is partition-independent, so
     the global maximum is too. *)
let align_finish t ~until ~pre =
  let base = ref pre in
  Array.iter
    (fun e ->
      if Engine.now e > !base then base := Engine.now e;
      if Engine.last_fire_time e > !base then base := Engine.last_fire_time e)
    t.engines;
  let queued = Array.exists Engine.has_queued t.engines in
  let finish =
    match until with Some l when queued -> Float.max l !base | _ -> !base
  in
  Array.iter (fun e -> Engine.advance_clock_to e finish) t.engines

let run ?until t =
  let pre = Engine.now t.engines.(0) in
  if t.k = 1 then Engine.run ?until t.engines.(0) else run_windows t ~until;
  align_finish t ~until ~pre

let flush_trace t ~into =
  let total = Array.fold_left (fun acc b -> acc + b.tlen) 0 t.tbufs in
  if total > 0 then begin
    let all = Array.make total dummy_tagged in
    let off = ref 0 in
    Array.iter
      (fun b ->
        Array.blit b.ev 0 all !off b.tlen;
        off := !off + b.tlen;
        b.ev <- [||];
        b.tlen <- 0)
      t.tbufs;
    (* Stable: records sharing a stitch tag come from one firing context
       on one shard and stay in their emission order. *)
    Array.stable_sort
      (fun (k1, e1) (k2, e2) ->
        let c = Float.compare e1.Trace.time e2.Trace.time in
        if c <> 0 then c else Int.compare k1 k2)
      all;
    Array.iter (fun (_, e) -> Trace.emit into e) all
  end

let now t = Engine.now t.engines.(0)

let events_processed t =
  Array.fold_left (fun acc e -> acc + Engine.events_processed e) 0 t.engines

let pending t = Array.fold_left (fun acc e -> acc + Engine.pending e) 0 t.engines
