type state = Pending | Fired | Cancelled

type t = {
  queue : handle Heap.t;
  (* The virtual clock lives in a float array rather than a mutable
     float field: a mixed record's float field is a pointer to a box,
     so every assignment would allocate a fresh box and pay a write
     barrier — once per event.  A float-array store is unboxed and
     barrier-free.  Slot 0 is the clock; slot 1 is the time of the last
     event that actually executed (used by [Sim.Shard] to compute a
     shard-count-invariant finish time). *)
  clock : float array;
  mutable next_seq : int;
  (* Heap key of the event currently being dispatched (or, between
     events, of whatever root context last claimed the key via
     [set_cur_key]).  [Sim.Shard]'s trace stitcher tags every trace
     record with this so records can be merged across shards in a
     shard-count-invariant total order. *)
  mutable cur_key : int;
  mutable processed : int;
  (* Live events: scheduled, not yet fired, not cancelled.  Maintained
     at schedule/fire/cancel time, so the pop path drops lazily
     cancelled events without any counter churn. *)
  mutable live : int;
  (* Intrusive free-list of recycled handle records ([free == nil] means
     empty); [nil] is a per-engine sentinel whose [next_free] is
     itself.  Handles threaded here keep their terminal state (Fired or
     Cancelled) until reused by a later [schedule].  [next_free] is
     only meaningful while the record sits in the free list; it is left
     stale once the record is rescheduled (resetting it would cost a
     write barrier per schedule for nothing — at worst it keeps one
     retired record reachable, and every record here is long-lived
     anyway). *)
  mutable free : handle;
  nil : handle;
  tracer : Trace.t;
}

and handle = {
  mutable state : state;
  mutable action : unit -> unit;
  owner : t;
  mutable next_free : handle;
}

let nop () = ()

let create ?(tracer = Trace.disabled) () =
  let rec eng =
    {
      queue = Heap.create ();
      clock = [| 0.; 0. |];
      next_seq = 0;
      cur_key = 0;
      processed = 0;
      live = 0;
      free = nil;
      nil;
      tracer;
    }
  and nil = { state = Fired; action = nop; owner = eng; next_free = nil } in
  eng

let now t = Array.unsafe_get t.clock 0

let last_fire_time t = Array.unsafe_get t.clock 1

let advance_clock_to t time =
  if time > Array.unsafe_get t.clock 0 then Array.unsafe_set t.clock 0 time

let cur_key t = t.cur_key

let set_cur_key t key = t.cur_key <- key

let tracer t = t.tracer

(* Return a popped record to the free-list.  The closure is dropped
   immediately so it does not outlive its event; the state is left at
   its terminal value so [is_cancelled] keeps answering for the old
   event until the record is reused. *)
let recycle t h =
  h.action <- nop;
  h.next_free <- t.free;
  t.free <- h

(* ndnlint: hot *)
let add_event t ~time ~seq f =
  let clk = Array.unsafe_get t.clock 0 in
  let time = if time < clk then clk else time in
  let h =
    (* Physical identity against the per-engine sentinel is the
       free-list emptiness test. *)
    if t.free != t.nil then begin
      let h = t.free in
      t.free <- h.next_free;
      h.state <- Pending;
      h.action <- f;
      h
    end
    else
      (* Pool-growth path: a fresh handle is built only when the free
         list is empty; steady-state scheduling recycles and never
         reaches this allocation. *)
      (* ndnlint: allow A1 -- pool growth only; steady state recycles *)
      { state = Pending; action = f; owner = t; next_free = t.nil }
  in
  Heap.add t.queue ~time ~seq h;
  t.live <- t.live + 1;
  h

let schedule_at t ~time f =
  let h = add_event t ~time ~seq:t.next_seq f in
  t.next_seq <- t.next_seq + 1;
  h

let schedule t ~delay f =
  let delay = if delay < 0. then 0. else delay in
  schedule_at t ~time:(Array.unsafe_get t.clock 0 +. delay) f

let schedule_key_at t ~time ~key f = add_event t ~time ~seq:key f

let schedule_key t ~delay ~key f =
  let delay = if delay < 0. then 0. else delay in
  schedule_key_at t ~time:(Array.unsafe_get t.clock 0 +. delay) ~key f

let cancel h =
  match h.state with
  | Pending ->
    h.state <- Cancelled;
    h.owner.live <- h.owner.live - 1
  | Fired | Cancelled -> ()

let is_cancelled h = h.state = Cancelled

(* Dispatch a popped pending event: mark, count, trace, recycle, run.
   The record is recycled before the action runs (the closure was saved
   out), so events scheduled from inside the action reuse it at once.
   The clock has already been advanced to the event's time by the fused
   pop, so the (cold) trace branch reads it back from there. *)
(* ndnlint: hot *)
let fire t h =
  h.state <- Fired;
  t.processed <- t.processed + 1;
  t.live <- t.live - 1;
  Array.unsafe_set t.clock 1 (Array.unsafe_get t.clock 0);
  let action = h.action in
  recycle t h;
  if Trace.enabled t.tracer then
    Trace.emit t.tracer
      {
        Trace.time = Array.unsafe_get t.clock 0;
        node = "engine";
        kind = Trace.Engine_step;
        name = "";
        attrs =
          [
            ("depth", string_of_int (Heap.length t.queue));
            ("processed", string_of_int t.processed);
          ];
      };
  action ()

(* ndnlint: hot *)
let step t =
  if Heap.is_empty t.queue then false
  else begin
    t.cur_key <- Heap.min_seq t.queue;
    let h = Heap.pop_min_elt_writing_time t.queue ~time_into:t.clock in
    (match h.state with
    | Cancelled -> recycle t h
    | Fired -> assert false
    | Pending -> fire t h);
    true
  end

(* ndnlint: hot *)
let run ?until ?max_events t =
  let limit = match until with Some l -> l | None -> Float.infinity in
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    (* [min_before] + the fused pop replace the old peek/pop double
       traversal: one unboxed bound test, one sift, and the clock
       written in place of a boxed-float hand-off. *)
    if Heap.min_before t.queue limit then begin
      t.cur_key <- Heap.min_seq t.queue;
      let h = Heap.pop_min_elt_writing_time t.queue ~time_into:t.clock in
      match h.state with
      | Cancelled ->
        (* Lazily dropped; consumes no [max_events] budget — the
           budget counts executed events, matching
           [events_processed]. *)
        recycle t h
      | Fired -> assert false
      | Pending ->
        fire t h;
        decr budget
    end
    else begin
      (* Queue empty, or the next event is beyond [until].  In the
         latter case leave future events queued and advance the clock
         to the limit so that a subsequent [run ~until] picks up where
         we stopped. *)
      if (not (Heap.is_empty t.queue)) && limit < Float.infinity then
        Array.unsafe_set t.clock 0 limit;
      continue := false
    end
  done

let pending t = t.live

let has_queued t = not (Heap.is_empty t.queue)

let next_event_time t =
  if Heap.is_empty t.queue then Float.infinity else Heap.min_time t.queue

let events_processed t = t.processed
