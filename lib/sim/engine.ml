type state = Pending | Fired | Cancelled

type t = {
  queue : handle Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  (* Events cancelled while still sitting in the queue; [pending]
     subtracts them so it reports live events only. *)
  mutable cancelled_queued : int;
  tracer : Trace.t;
}

and handle = { mutable state : state; action : unit -> unit; owner : t }

let create ?(tracer = Trace.disabled) () =
  {
    queue = Heap.create ();
    clock = 0.;
    next_seq = 0;
    processed = 0;
    cancelled_queued = 0;
    tracer;
  }

let now t = t.clock

let tracer t = t.tracer

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  let h = { state = Pending; action = f; owner = t } in
  Heap.add t.queue ~time ~seq:t.next_seq h;
  t.next_seq <- t.next_seq + 1;
  h

let schedule t ~delay f =
  let delay = if delay < 0. then 0. else delay in
  schedule_at t ~time:(t.clock +. delay) f

let cancel h =
  match h.state with
  | Pending ->
    h.state <- Cancelled;
    h.owner.cancelled_queued <- h.owner.cancelled_queued + 1
  | Fired | Cancelled -> ()

let is_cancelled h = h.state = Cancelled

let step t =
  match Heap.pop_min t.queue with
  | None -> false
  | Some (time, _seq, h) ->
    t.clock <- time;
    (match h.state with
    | Cancelled -> t.cancelled_queued <- t.cancelled_queued - 1
    | Fired -> assert false
    | Pending ->
      h.state <- Fired;
      t.processed <- t.processed + 1;
      if Trace.enabled t.tracer then
        Trace.emit t.tracer
          {
            Trace.time;
            node = "engine";
            kind = Trace.Engine_step;
            name = "";
            attrs =
              [
                ("depth", string_of_int (Heap.length t.queue));
                ("processed", string_of_int t.processed);
              ];
          };
      h.action ());
    true

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.peek_min t.queue with
    | None -> continue := false
    | Some (time, _, _) -> (
      match until with
      | Some limit when time > limit ->
        (* Leave future events queued; advance the clock to the limit so
           that a subsequent [run ~until] picks up where we stopped. *)
        t.clock <- limit;
        continue := false
      | _ ->
        ignore (step t);
        decr budget)
  done

let pending t = Heap.length t.queue - t.cancelled_queued

let events_processed t = t.processed
