(** Streaming trace decoders: fold over a trace file event by event
    without ever materializing the trace.

    Two formats are understood — the binary wire format written by
    {!Trace.render}[ Binary] (DESIGN §16) and the JSONL rendering —
    plus a sniffing entry point that picks the right decoder from the
    stream prefix.  Heavy-traffic traces (10⁸–10⁹ events at item-1/2
    scale) are read in 64 KiB windows; memory stays proportional to
    the string table, never to the event count.

    {b Error discipline.}  Malformed input never raises: every decoder
    returns a positioned {!error} in the style of
    [Ndn.Topology_spec] — byte offsets for binary streams (framing
    violations, truncated tails, bad varints, out-of-range string
    references), line numbers for JSONL. *)

type position =
  | Byte of int  (** Byte offset into a binary stream. *)
  | Line of int  (** 1-based line number of a JSONL stream. *)

type error = { position : position; reason : string }

val pp_error : Format.formatter -> error -> unit
(** ["byte 123: record truncated: …"] / ["line 17: unknown trace kind …"]. *)

val error_to_string : error -> string

(** {1 Byte sources} *)

type source
(** A chunked byte stream: an in-memory string or a channel read in
    64 KiB windows.  Sources are single-shot — a fold consumes one. *)

val of_string : string -> source

val of_channel : in_channel -> source

(** {1 Folds} *)

val fold_binary :
  source -> init:'a -> f:('a -> Trace.event -> 'a) -> ('a, error) result
(** Validate the header (magic, version, registry snapshot) and fold
    [f] over every event record in stream order.  Framing is fully
    checked: record lengths, string-table discipline, payload bounds,
    and end-of-stream landing exactly on a record boundary. *)

val fold_jsonl :
  source -> init:'a -> f:('a -> Trace.event -> 'a) -> ('a, error) result
(** Fold over a JSONL trace (the exporter's own schema:
    time/node/kind/name/attrs per line; blank lines tolerated). *)

type detected = Binary | Jsonl | Csv

val detect : source -> detected
(** Sniff the stream prefix without consuming it: the binary magic,
    the CSV header line, else JSONL. *)

val fold_auto :
  source -> init:'a -> f:('a -> Trace.event -> 'a) -> ('a, error) result
(** {!detect}, then dispatch to the matching fold.  CSV is rejected
    with an actionable error (the streaming analyzers read binary or
    JSONL). *)
