(** Conservative intra-trial multicore sharding.

    {!Parallel} runs independent trials on separate domains; this
    module parallelizes {e one} trial: the caller partitions its node
    set into [K] shard-local {!Engine}s (one OCaml domain each), keys
    every event with a globally unique [(node id, per-node counter)]
    pair via {!Engine.schedule_key}, and routes cross-shard deliveries
    through {!send}.  {!run} then advances all shards in conservative
    lookahead windows (classic null-message/time-bucket design): the
    window width is the minimum {!Latency.lower_bound} over cross-shard
    links (as registered with {!note_min_link_delay}), so no shard can
    ever receive a message dated inside a window it already executed.

    {b Determinism.}  Pop order on each engine is total on
    [(time, key)] and the keys are partition-independent, so every
    node processes the identical event sequence for any shard count;
    trace records are tagged with the emitting event's key and
    {!flush_trace} stitches the per-shard buffers by [(time, tag)] into
    one byte stream.  [Ndn.Network] builds on this to make
    [--shards N] byte-identical to [--shards 1].

    {b Threading rules.}  Between two {!run} calls everything belongs
    to the calling domain.  During {!run}, shard [i]'s engine (and the
    nodes living on it) must only be touched from shard [i]'s events;
    the only legal cross-shard channel is {!send}. *)

type t

val create : ?traced:bool -> shards:int -> unit -> t
(** [shards] engines with fresh clocks.  When [traced] (default
    [false]), each shard gets an enabled sink {!tracer} that buffers
    tagged records for {!flush_trace}; otherwise all shard tracers are
    {!Trace.disabled}.  Engine-level [engine.step] records are never
    emitted in shard mode: queue depth and processed counts are
    per-engine quantities and would differ across shard counts.
    @raise Invalid_argument when [shards < 1]. *)

val shards : t -> int

val engine : t -> int -> Engine.t
(** The engine hosting shard [i]. *)

val tracer : t -> int -> Trace.t
(** The tracer to hand to every node assigned to shard [i]. *)

val assign : t -> string -> int
(** Fixed hash-based shard assignment (FNV-1a of the label, mod
    shard count) — platform- and run-independent. *)

val note_min_link_delay : t -> float -> unit
(** Register a cross-shard link's minimum one-way delay
    ({!Latency.lower_bound}).  The lookahead window is the minimum over
    all registered delays.  While it is unregistered ([infinity]) no
    cross-shard link exists, so {!run} executes the shards one after
    the other on the calling domain; {!run} refuses to start when the
    registered lookahead is not positive. *)

val note_latency_factor : t -> float -> unit
(** Register a fault-schedule latency degradation factor [< 1.]: a
    [Link_degrade] that {e speeds up} a link shrinks the soundness
    bound, so the lookahead is scaled down by the smallest factor ever
    registered. *)

val set_watchdog : t -> ?stall_ms:float -> clock_ms:(unit -> float) -> unit -> unit
(** Arm the barrier stall watchdog for subsequent {!run}s: a shard that
    waits more than [stall_ms] (default 30_000) of wall-clock time at a
    window barrier without release raises [Failure] with a diagnostic
    naming the shard(s) that never arrived, every engine's pending
    event count and the cross-shard queue depths — turning a hung run
    (an event-loop livelock, a deadlocked callback) into an actionable
    error.  [clock_ms] supplies wall-clock milliseconds; the library
    deliberately takes it as an argument (the simulator core reads no
    wall clocks — see lint rule D3), e.g. from [Unix.gettimeofday] in a
    binary.  While armed, blocked waiters poll (the stdlib [Condition]
    has no timed wait) checking the clock every few thousand spins, so
    leave it off — the default — for oversubscribed perf runs.  A fired
    watchdog does not stop the stuck shard; the run is unrecoverable
    and the process should exit.
    @raise Invalid_argument unless [stall_ms] is positive and finite. *)

val clear_watchdog : t -> unit
(** Disarm: return the barrier to its hybrid spin-then-block wait. *)

val send :
  t -> src:int -> dst:int -> time:float -> key:int -> (unit -> unit) -> unit
(** Enqueue a cross-shard delivery: [f] will execute on shard [dst]'s
    engine at [time] with heap tie-break [key].  Must only be called
    from shard [src]'s domain (or from the calling domain between
    runs), with [time >= sender's now + the registered minimum link
    delay].  Queues are bounded; overflowing one lookahead window
    raises [Failure]. *)

val run : ?until:float -> t -> unit
(** Advance all shards in lookahead windows until globally quiescent
    (or until the horizon, leaving later events queued).  Spawns
    [shards - 1] domains for the duration of the call; combined with
    {!Parallel} trial workers, budget them via
    {!Parallel.check_domains}.  On return all shard clocks are aligned
    to one shard-count-invariant finish time.  An exception raised by
    any shard's event stops every shard at the next window boundary and
    is re-raised here. *)

val flush_trace : t -> into:Trace.t -> unit
(** Stitch and clear all per-shard tagged trace buffers: records are
    emitted into [into] sorted by [(time, tag)] — a total order
    independent of the shard count.  Call between {!run}s (never during
    one). *)

val now : t -> float
(** The aligned clock (all shards agree between runs). *)

val events_processed : t -> int
(** Total events executed across all shard engines. *)

val pending : t -> int
(** Live queued events across all shard engines (cross-shard messages
    still in flight between runs are not counted). *)
