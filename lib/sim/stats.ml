type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; total = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x

let add_list t xs = List.iter (add t) xs

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean

let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = t.min

let max t = t.max

let total t = t.total

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      total = a.total +. b.total;
    }
  end

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f" t.n (mean t)
      (stddev t) t.min t.max

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let median xs = percentile xs 50.

let mean_of xs =
  let t = create () in
  Array.iter (add t) xs;
  mean t

let stddev_of xs =
  let t = create () in
  Array.iter (add t) xs;
  stddev t
