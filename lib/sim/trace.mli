(** Structured event tracing for the simulator.

    The paper's attacks are observations of cache state through timing;
    this module makes the {e simulator's} internal state observable to
    us: every layer (engine dispatch, Content Store, forwarding plane,
    Algorithm 1) can emit typed event records into a tracer, and
    exporters render them as JSONL or CSV for offline analysis.

    {b Cost model.}  A tracer is either {!disabled} — a shared inert
    handle — or enabled.  Instrumented hot paths guard every emission
    with [if Trace.enabled t then Trace.emit t …], so a disabled tracer
    costs one load-and-branch per site and allocates nothing.  All
    constructors default to {!disabled}; tracing is strictly opt-in.

    {b Determinism.}  Events carry only virtual time, component labels
    and content names — never wall-clock time or domain identity — and
    are buffered in emission order.  Per-trial tracers produced under
    {!Parallel} are combined with {!merge_into} in trial order, so the
    exported byte stream is identical for any [--jobs N]. *)

(** What happened.  The rendered wire names (see {!kind_to_string})
    form the stable schema: ["engine.step"], ["cs.hit"], ["cs.miss"],
    ["cs.insert"], ["cs.evict"], ["cs.expire"], ["interest.recv"],
    ["interest.fwd"], ["interest.collapsed"], ["data.recv"],
    ["data.sent"], ["pit.timeout"], ["link.tx"], ["link.drop"],
    ["rc.draw"], ["rc.fake_miss"], ["rc.hit"], ["cs.flush"],
    ["fault.link"], ["fault.crash"], ["fault.restart"],
    ["fault.producer"], ["pit.drop"], ["queue.drop"],
    ["nack.congested"], ["nack.no_route"], ["nack.pit_full"],
    ["nack.duplicate"], ["consumer.give_up"]. *)
type kind =
  | Engine_step  (** One event executed by {!Engine}. *)
  | Cs_hit
  | Cs_miss
  | Cs_insert
  | Cs_evict
  | Cs_expire
  | Interest_received
  | Interest_forwarded
  | Interest_collapsed  (** PIT aggregation suppressed an upstream send. *)
  | Data_received
  | Data_sent
  | Pit_timeout  (** A PIT sweep dropped expired entries. *)
  | Link_transmit  (** A packet put on a wire, with its latency draw. *)
  | Link_drop  (** A packet lost on a wire. *)
  | Rc_draw  (** Algorithm 1 drew a fresh per-content threshold k_C. *)
  | Rc_fake_miss  (** Algorithm 1 disguised a request as a miss. *)
  | Rc_hit  (** Algorithm 1 revealed the content. *)
  | Cs_flush  (** A Content Store dropped its whole population at once. *)
  | Fault_link  (** Injected link fault (attrs: peer, dir, state). *)
  | Fault_crash  (** Injected router crash (attrs: preserve_cs). *)
  | Fault_restart  (** Injected router restart. *)
  | Fault_producer  (** Injected producer outage/slowdown (attrs: state). *)
  | Pit_drop
      (** A finite PIT rejected or evicted an entry (attrs: policy,
          reason). *)
  | Queue_drop
      (** A bounded link transmission queue dropped a packet (attrs:
          peer, policy, depth). *)
  | Nack_congested  (** NACK sent/propagated: transmission queue full. *)
  | Nack_no_route  (** NACK sent/propagated: no FIB route. *)
  | Nack_pit_full  (** NACK sent/propagated: PIT admission refused. *)
  | Nack_duplicate  (** NACK sent/propagated: looping duplicate nonce. *)
  | Consumer_give_up
      (** A consumer fetch exhausted its retry budget (attrs:
          attempts, nacks). *)

type event = {
  time : float;  (** Virtual time (ms) at emission. *)
  node : string;  (** Component label: node name, ["engine"], … *)
  kind : kind;
  name : string;  (** Content name, [""] when not applicable. *)
  attrs : (string * string) list;
      (** Auxiliary key/value pairs (policy label, face id, latency
          draw, k_C, …) in a fixed per-kind order. *)
}

val kind_to_string : kind -> string

val kind_of_string : string -> kind option

val all_kinds : kind list
(** Every kind, in declaration order. *)

val all_kind_names : string list
(** Wire names of {!all_kinds}, same order — the programmatic twin of
    the checked-in registry [lib/sim/trace_kinds.txt].  ndnlint's
    T-rules fail the build if the registry and {!kind_to_string} drift
    apart, and [test_ndnlint] checks this list equals the registry, so
    exporters, docs and the linter all share one source of truth. *)

val kind_id : kind -> int
(** Stable binary id of a kind: its 0-based position in the registry
    [lib/sim/trace_kinds.txt].  The binary trace header snapshots the
    registry, so id [i] on the wire means the [i]-th name of that
    snapshot; ndnlint rule T4 fails the build when this table and the
    registry disagree. *)

val kind_of_id : int -> kind option
(** Inverse of {!kind_id}; [None] for ids outside the registry. *)

val pp_event : Format.formatter -> event -> unit

(** {1 Tracers} *)

type t

val disabled : t
(** The inert tracer: {!enabled} is [false], {!emit} is a no-op, the
    buffer is always empty.  Shared and immutable, hence safe to hand
    to every domain. *)

val create : unit -> t
(** Fresh enabled tracer buffering events in emission order. *)

val with_sink : (event -> unit) -> t
(** Enabled tracer that streams events to the sink {e without}
    buffering them — for exporters that write as they go and for
    overhead measurements. *)

val enabled : t -> bool

val emit : t -> event -> unit
(** Append to the buffer (if any) and call every subscribed sink.
    A no-op on {!disabled}; hot paths should still guard with
    {!enabled} to skip constructing the event record. *)

val subscribe : t -> (event -> unit) -> unit
(** Register an additional sink, called synchronously on each {!emit}.
    @raise Invalid_argument on {!disabled}. *)

val events : t -> event array
(** Buffered events in emission order (a copy). *)

val length : t -> int

val clear : t -> unit
(** Drop buffered events (sinks stay subscribed). *)

val iter : t -> (event -> unit) -> unit

val merge_into : into:t -> t -> unit
(** Append [t]'s buffered events to [into]'s buffer, preserving order.
    The deterministic combinator for per-trial tracers: merging in
    trial order makes the result independent of domain scheduling.
    @raise Invalid_argument if [into] is {!disabled}. *)

val tally : t -> ((string * kind) * int) list
(** Per-(node, kind) event counts, sorted — a quick per-node telemetry
    snapshot of a buffered trace. *)

val events_per_ms : t -> float
(** Buffered events divided by the virtual-time span they cover
    (events/sec of simulated work; [nan] on fewer than 2 events). *)

(** {1 Exporters} *)

type format = Jsonl | Csv | Binary

val format_of_string : string -> format option
(** ["jsonl"]/["json"], ["csv"], ["binary"]/["bin"]
    (case-insensitive). *)

val format_to_string : format -> string

val event_to_jsonl : event -> string
(** One JSON object per event, no trailing newline:
    [{"time":1.234567,"node":"R","kind":"cs.hit","name":"/prod/a","attrs":{"policy":"lru"}}].
    Times use a fixed [%.6f] rendering so equal traces are equal bytes. *)

val csv_header : string
(** ["time,node,kind,name,attrs"]. *)

val event_to_csv : event -> string
(** One CSV row (RFC-4180 quoting); [attrs] flattened as
    [k1=v1;k2=v2]. *)

val render : format -> t -> string
(** The whole buffered trace as one string (CSV includes the header
    line; {!Binary} includes the stream header).  Text lines are
    newline-terminated. *)

val write : format -> out_channel -> t -> unit
(** Stream the buffered trace to a channel — line by line for the text
    formats, in 64 KiB chunks for {!Binary}, so the export never holds
    the whole byte stream. *)

(** {1 Binary wire format}

    A compact length-prefixed encoding for heavy-traffic runs (DESIGN
    §16): 8-byte magic ["ndntrace"], varint format version, a registry
    snapshot (each kind's wire name, in {!kind_id} order), then
    length-prefixed records.  Node labels, content names and attr keys
    are interned into a per-stream string table; timestamps are
    microsecond-quantized zigzag deltas — exactly the [%.6f] precision
    of the JSONL rendering, so both pipelines carry identical data.
    {!Trace_reader} is the streaming decoder; the exporter is exposed
    at encoder granularity so the bench harness can measure the emit
    path in isolation. *)

val binary_magic : string
(** ["ndntrace"] — the 8-byte stream prefix. *)

val binary_version : int
(** Current format version (readers reject others). *)

val time_to_us : float -> int
(** The microsecond quantization used on the wire:
    [round (t *. 1e6)].  {!Analyze} quantizes through the same
    function, so summaries computed from binary and JSONL pipelines
    agree bit-for-bit. *)

type encoder
(** Incremental binary exporter: an output buffer plus the string
    intern table and previous-timestamp state. *)

val encoder_create : unit -> encoder

val encoder_reset : encoder -> unit
(** Forget buffered bytes, interned strings and timestamp state, but
    keep the allocated capacity — the steady-state emit path allocates
    nothing (enforced by the bench alloc ceiling and by ndntype's
    A1/A2 rules on the [(* ndnlint: hot *)] annotations). *)

val encoder_add_header : encoder -> unit
(** Append magic + version + registry snapshot.  Call exactly once,
    before the first {!encode_event}. *)

val encode_event : encoder -> event -> unit
(** Append one event record (preceded by string-definition records for
    any strings seen for the first time). *)

val encoder_length : encoder -> int
(** Bytes currently buffered. *)

val encoder_contents : encoder -> string

val encoder_output : out_channel -> encoder -> unit
(** Write the buffered bytes and clear the buffer (capacity and string
    table are retained, so encoding can continue). *)
