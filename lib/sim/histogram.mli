(** Fixed-width histograms and empirical PDFs.

    Used to regenerate the probability-density plots of the paper's
    Figure 3 (cache-hit vs. cache-miss delay distributions) and to feed
    the Bayes-optimal distinguisher in [Attack.Detector]. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Histogram over [\[lo, hi)] with [bins] equal-width bins.  Samples
    outside the range are clamped into the first/last bin (they are
    still real observations; clamping keeps total mass 1).
    @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

val of_samples : ?bins:int -> float array -> t
(** Histogram spanning the sample range ([bins] defaults to 40).
    @raise Invalid_argument on an empty array. *)

val add : t -> float -> unit

val count : t -> int

val bins : t -> int

val bin_edges : t -> (float * float) array
(** Per-bin [(left, right)] edges. *)

val bin_center : t -> int -> float

val counts : t -> int array

val pdf : t -> float array
(** Empirical density: bin probability divided by bin width, so the
    curve integrates to 1 (matching the paper's PDF plots). *)

val probability : t -> int -> float
(** Mass of one bin. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram whose bins are the element-wise
    sums of [a] and [b] — the counts obtained by adding both sample
    sets into one histogram.  Both inputs are left untouched, so
    parallel trial shards can be folded in any grouping.
    @raise Invalid_argument if layouts differ. *)

val merge_into : into:t -> t -> unit
(** In-place variant of {!merge}: accumulate [b]'s counts into [into].
    @raise Invalid_argument if layouts differ. *)

val equal : t -> t -> bool
(** Same layout and identical per-bin counts. *)

val pp_ascii : ?width:int -> Format.formatter -> t -> unit
(** Terminal rendering: one row per bin with a proportional bar. *)

val pp_two : ?width:int -> labels:string * string -> Format.formatter -> t * t -> unit
(** Render two histograms (e.g. hit vs. miss) over a shared bin layout;
    both must have the same [lo], [hi], [bins].
    @raise Invalid_argument if layouts differ. *)

val overlap : t -> t -> float
(** Bhattacharyya-style overlap: sum over bins of
    [min (p1 bin) (p2 bin)] — the Bayes error (times 2) of an optimal
    single-sample distinguisher restricted to this binning.  Both
    histograms must share a layout.
    @raise Invalid_argument if layouts differ. *)
