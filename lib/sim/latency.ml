type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Normal of { mean : float; stddev : float; min : float }
  | Shifted_exponential of { shift : float; rate : float }
  | Sum of t list

let rec sample t rng =
  let v =
    match t with
    | Constant d -> d
    | Uniform { lo; hi } -> lo +. Rng.float rng (hi -. lo)
    | Normal { mean; stddev; min } ->
      let rec draw () =
        let x = Rng.gaussian rng ~mean ~stddev in
        if x >= min then x else draw ()
      in
      draw ()
    | Shifted_exponential { shift; rate } -> shift +. Rng.exponential rng ~rate
    | Sum parts -> List.fold_left (fun acc p -> acc +. sample p rng) 0. parts
  in
  if v < 0. then 0. else v

(* Greatest lower bound of [sample]: no draw can come out below this.
   [Sim.Shard] derives its conservative lookahead window from the
   minimum over all cross-shard links, so the bound must be sound
   (never above any possible sample) — mirroring [sample]'s final
   clamp, it is never negative. *)
let lower_bound t =
  let rec lb = function
    | Constant d -> d
    | Uniform { lo; _ } -> lo
    | Normal { min; _ } -> min
    | Shifted_exponential { shift; _ } -> shift
    | Sum parts -> List.fold_left (fun acc p -> acc +. lb p) 0. parts
  in
  let v = lb t in
  if v < 0. then 0. else v

let rec mean = function
  | Constant d -> d
  | Uniform { lo; hi } -> (lo +. hi) /. 2.
  | Normal { mean = m; _ } -> m
  | Shifted_exponential { shift; rate } -> shift +. (1. /. rate)
  | Sum parts -> List.fold_left (fun acc p -> acc +. mean p) 0. parts

let rec pp ppf = function
  | Constant d -> Format.fprintf ppf "const(%.3fms)" d
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform[%.3f,%.3f]ms" lo hi
  | Normal { mean; stddev; min } ->
    Format.fprintf ppf "normal(mu=%.3f,sigma=%.3f,min=%.3f)ms" mean stddev min
  | Shifted_exponential { shift; rate } ->
    Format.fprintf ppf "%.3fms+exp(rate=%.3f)" shift rate
  | Sum parts ->
    Format.fprintf ppf "sum(%a)" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "+") pp) parts

(* The constants below are chosen so that the Figure 3 topologies built in
   [Ndn.Network] produce RTT histograms spanning the same ranges as the
   paper's measurements. *)

let fast_ethernet = Normal { mean = 0.25; stddev = 0.06; min = 0.05 }

let lan_hop = Normal { mean = 1.7; stddev = 0.3; min = 0.4 }

let wan_hop = Shifted_exponential { shift = 0.9; rate = 1.6 }

let local_ipc = Normal { mean = 0.11; stddev = 0.03; min = 0.02 }
