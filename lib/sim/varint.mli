(** LEB128 variable-length integer coding for the binary trace format.

    Unsigned values use the little-endian base-128 coding (seven
    payload bits per byte, continuation bit 0x80); signed values are
    zigzag-mapped first so small negative numbers stay short.  OCaml
    ints are 63-bit, so a valid encoding is at most 9 bytes.

    The [add_*] encoders are on the trace emit hot path and perform no
    allocation beyond the buffer they append to. *)

exception Truncated of int
(** [Truncated pos]: the input ended inside the varint that starts at
    byte offset [pos]. *)

exception Overflow of int
(** [Overflow pos]: the varint starting at byte offset [pos] encodes a
    value wider than OCaml's 63-bit native int. *)

val max_bytes : int
(** Longest legal encoding (9 bytes for 63-bit ints). *)

val add_uint : Buffer.t -> int -> unit
(** Append the unsigned LEB128 coding of [n].
    @raise Invalid_argument if [n < 0]. *)

val add_int : Buffer.t -> int -> unit
(** Append the zigzag-then-LEB128 coding of a signed [n]. *)

val uint_size : int -> int
(** Encoded byte length of a non-negative value, without writing it. *)

val int_size : int -> int
(** Encoded byte length of a signed value, without writing it. *)

val zigzag : int -> int
val unzigzag : int -> int
(** The sign-folding bijection: 0, -1, 1, -2, ... maps to 0, 1, 2, 3, ... *)

val read_uint : string -> int -> int * int
(** [read_uint s pos] decodes the varint at byte [pos] of [s],
    returning [(value, next_pos)].  The value is the raw 63-bit
    pattern; encodings produced by {!add_int} must go through
    {!read_int} instead.
    @raise Truncated if [s] ends mid-varint (payload cut short).
    @raise Overflow on an encoding wider than 9 bytes. *)

val read_int : string -> int -> int * int
(** Signed variant of {!read_uint} (zigzag-decoded). *)
