(** Deterministic fan-out of independent trials over OCaml 5 domains.

    Every evaluation in the paper is an ensemble of independent trials
    — Figure 3's RTT campaigns, Figure 5's trace replays, the
    Monte-Carlo checks of Theorems VI.1-VI.4.  This module runs such
    ensembles on a fixed-size pool of domains while keeping the results
    {e bit-identical} to a sequential run:

    - randomness is derived {e before} dispatch: a root generator seeded
      from [seed] is {!Rng.split} once per trial, in trial order, so
      trial [i] sees the same stream no matter which domain executes it
      or in which order trials complete;
    - results land in a per-trial slot and are combined in trial order,
      so merge order is scheduling-independent.

    Consequently [run ~jobs:1] and [run ~jobs:64] produce identical
    output, and a fixed [seed] reproduces a run exactly — the property
    the determinism regression tests in [test/test_parallel.ml] pin
    down.  Exceptions raised by a trial are re-raised in the caller
    after the pool drains. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: one worker per hardware
    thread the runtime believes is available (at least 1). *)

val check_domains : jobs:int -> shards:int -> (unit, string) result
(** Guard against multiplying the two fan-out axes past the hardware:
    [jobs] trial workers each running a [shards]-domain {!Sim.Shard}
    network occupy [jobs * shards] domains at once, and the shard
    workers busy-wait at window barriers, so oversubscribing collapses
    throughput instead of merely time-slicing.  Returns [Error msg]
    when the product exceeds [max (default_jobs ()) (max jobs shards)]
    — either axis alone may reach the hardware count (or exceed it when
    the caller explicitly asked for that axis), but not both
    multiplied.  Raises [Invalid_argument] if either count is [< 1]. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] computes [|f 0; ...; f (n-1)|] on a pool of at most
    [jobs] domains ([jobs] defaults to {!default_jobs}; values [< 1]
    and [> n] are clamped).  [f] must be safe to call from any domain
    and must not share mutable state across calls.  With [jobs = 1]
    (or [n <= 1]) everything runs in the calling domain. *)

val run :
  ?jobs:int -> seed:int -> trials:int -> (trial:int -> rng:Rng.t -> 'a) ->
  'a array
(** [run ~jobs ~seed ~trials f] executes [f ~trial ~rng] for each
    [trial] in [\[0, trials)], handing trial [i] the [i]-th generator
    split off a root seeded with [seed].  The result array is in trial
    order and is identical for any [jobs]. *)

val map_reduce :
  ?jobs:int -> merge:('b -> 'a -> 'b) -> init:'b -> int -> (int -> 'a) -> 'b
(** [map_reduce ~jobs ~merge ~init n f] is
    [Array.fold_left merge init (map ~jobs n f)]: the fold runs in the
    calling domain, left-to-right in index order, so non-commutative
    merges (histograms, formatted rows, Chan-merged moments) are still
    deterministic. *)

val run_reduce :
  ?jobs:int -> seed:int -> trials:int -> merge:('b -> 'a -> 'b) -> init:'b ->
  (trial:int -> rng:Rng.t -> 'a) -> 'b
(** {!run} followed by an in-order left fold, as in {!map_reduce}. *)
