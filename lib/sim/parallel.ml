(* Deterministic trial fan-out over a fixed pool of OCaml 5 domains.

   Determinism strategy: all per-trial randomness is derived on the
   calling domain before any worker starts (one [Rng.split] per trial,
   in trial order), and each trial writes its result into its own slot
   of a pre-sized array.  Workers claim trial indices from an atomic
   counter, so scheduling affects only *when* a slot is filled, never
   *what* it contains or where it lands. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Both fan-out axes — trial workers here, shard domains in
   [Sim.Shard] — multiply, and each sharded trial spins its shard
   domains concurrently with every other trial's.  [Shard.run] worker
   domains busy-wait at window barriers, so oversubscription does not
   just time-slice: spinning domains steal the cycles the simulating
   domains need, and throughput collapses.  The budget below allows
   either axis alone to reach the hardware count (a lone sharded trial
   may legitimately use every core, whatever [jobs] clamping already
   did), but refuses combinations whose product exceeds it. *)
let check_domains ~jobs ~shards =
  if jobs < 1 then invalid_arg "Parallel.check_domains: jobs < 1";
  if shards < 1 then invalid_arg "Parallel.check_domains: shards < 1";
  let avail = default_jobs () in
  let budget = max avail (max jobs shards) in
  if jobs * shards > budget then
    Error
      (Printf.sprintf
         "domain budget exceeded: %d trial worker(s) x %d shard(s) = %d \
          domains, but only %d hardware thread(s) are available; lower \
          --jobs or --shards so their product fits"
         jobs shards (jobs * shards) avail)
  else Ok ()

(* Worker protocol: claim the next unclaimed index until none remain.
   The first exception (by claim order on that worker) is captured and
   re-raised on the caller once every domain has been joined, so no
   domain is left running when [map] returns. *)
let pooled_map ~jobs n f =
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f i with
        | v -> results.(i) <- Some v
        | exception exn ->
          let bt = Printexc.get_raw_backtrace () in
          (* Keep the first failure; later ones lose the race. *)
          ignore (Atomic.compare_and_set failure None (Some (exn, bt))));
        if Atomic.get failure = None then loop ()
      end
    in
    loop ()
  in
  let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  (match Atomic.get failure with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ());
  Array.map
    (function
      | Some v -> v
      | None ->
        (* Unreachable: every index below [n] is claimed exactly once
           and either filled or recorded as a failure. *)
        assert false)
    results

let map ?jobs n f =
  if n < 0 then invalid_arg "Parallel.map: negative size";
  let jobs =
    match jobs with Some j -> max 1 (min j n) | None -> max 1 (min (default_jobs ()) n)
  in
  if n = 0 then [||]
  else if jobs = 1 || n = 1 then Array.init n f
  else pooled_map ~jobs n f

let run ?jobs ~seed ~trials f =
  if trials < 0 then invalid_arg "Parallel.run: negative trials";
  (* Split every trial generator up front, in trial order, on the
     calling domain: trial [i]'s stream depends only on [seed] and [i]. *)
  let root = Rng.create seed in
  let rngs = Array.init trials (fun _ -> Rng.split root) in
  map ?jobs trials (fun i -> f ~trial:i ~rng:rngs.(i))

let map_reduce ?jobs ~merge ~init n f = Array.fold_left merge init (map ?jobs n f)

let run_reduce ?jobs ~seed ~trials ~merge ~init f =
  Array.fold_left merge init (run ?jobs ~seed ~trials f)
