type direction = Ab | Ba | Both

type kind =
  | Link_down of { a : string; b : string; dir : direction }
  | Link_up of { a : string; b : string; dir : direction }
  | Link_degrade of {
      a : string;
      b : string;
      dir : direction;
      loss : float;
      latency_factor : float;
      until : float;
    }
  | Node_crash of { node : string; preserve_cs : bool }
  | Node_restart of { node : string }
  | Producer_outage of { node : string; until : float }
  | Producer_slowdown of { node : string; factor : float; until : float }

type event = { at : float; kind : kind }

type schedule = event list

let empty = []

let sort events = List.stable_sort (fun e1 e2 -> Float.compare e1.at e2.at) events

let validate e =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if not (Float.is_finite e.at) || e.at < 0. then
    err "fault time %g: expected a non-negative finite time" e.at
  else
    match e.kind with
    | Link_down _ | Link_up _ | Node_crash _ | Node_restart _ -> Ok ()
    | Link_degrade { loss; latency_factor; until; _ } ->
      if loss < 0. || loss > 1. || not (Float.is_finite loss) then
        err "degrade: loss %g out of range [0, 1]" loss
      else if latency_factor <= 0. || not (Float.is_finite latency_factor) then
        err "degrade: latency_factor %g must be positive" latency_factor
      else if not (until > e.at) then
        err "degrade: until=%g must exceed the fault time %g" until e.at
      else Ok ()
    | Producer_outage { until; _ } ->
      if not (until > e.at) then
        err "producer_down: until=%g must exceed the fault time %g" until e.at
      else Ok ()
    | Producer_slowdown { factor; until; _ } ->
      if factor <= 0. || not (Float.is_finite factor) then
        err "producer_slow: factor %g must be positive" factor
      else if not (until > e.at) then
        err "producer_slow: until=%g must exceed the fault time %g" until e.at
      else Ok ()

(* --- random schedules --- *)

(* One on/off renewal process per target, each consuming its slice of
   the RNG stream in target order: the schedule is a pure function of
   (seed, parameters). *)
let renewal_process ~rng ~mean_uptime_ms ~downtime_ms ~horizon_ms ~down ~up =
  if mean_uptime_ms <= 0. || horizon_ms <= 0. then []
  else begin
    let rate = 1. /. mean_uptime_ms in
    let rec go t acc =
      let t = t +. Rng.exponential rng ~rate in
      if t >= horizon_ms then List.rev acc
      else
        go (t +. downtime_ms)
          ({ at = t +. downtime_ms; kind = up } :: { at = t; kind = down } :: acc)
    in
    go 0. []
  end

let random_restarts ~rng ~nodes ~mean_uptime_ms ~downtime_ms ~horizon_ms
    ?(preserve_cs = false) () =
  List.concat_map
    (fun node ->
      renewal_process ~rng ~mean_uptime_ms ~downtime_ms ~horizon_ms
        ~down:(Node_crash { node; preserve_cs })
        ~up:(Node_restart { node }))
    nodes
  |> sort

let random_link_flaps ~rng ~links ~mean_uptime_ms ~downtime_ms ~horizon_ms () =
  List.concat_map
    (fun (a, b) ->
      renewal_process ~rng ~mean_uptime_ms ~downtime_ms ~horizon_ms
        ~down:(Link_down { a; b; dir = Both })
        ~up:(Link_up { a; b; dir = Both }))
    links
  |> sort

(* --- installation --- *)

let install ~engine ~apply schedule =
  List.iter
    (fun e -> ignore (Engine.schedule_at engine ~time:e.at (fun () -> apply e)))
    schedule

let phase_boundaries schedule =
  let times =
    List.concat_map
      (fun e ->
        match e.kind with
        | Link_degrade { until; _ }
        | Producer_outage { until; _ }
        | Producer_slowdown { until; _ } -> [ e.at; until ]
        | Link_down _ | Link_up _ | Node_crash _ | Node_restart _ -> [ e.at ])
      schedule
  in
  List.sort_uniq Float.compare times

(* --- text format --- *)

let ( let* ) = Result.bind

let float_field name s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: expected a number, got %S" name s)

let bool_field name s =
  match String.lowercase_ascii s with
  | "true" | "yes" | "1" -> Ok true
  | "false" | "no" | "0" -> Ok false
  | _ -> Error (Printf.sprintf "%s: expected a boolean, got %S" name s)

let direction_field name s =
  match String.lowercase_ascii s with
  | "ab" -> Ok Ab
  | "ba" -> Ok Ba
  | "both" -> Ok Both
  | _ -> Error (Printf.sprintf "%s: expected ab, ba or both, got %S" name s)

let parse_attrs ~directive ~allowed tokens =
  List.fold_left
    (fun acc token ->
      let* acc = acc in
      match String.index_opt token '=' with
      | Some i ->
        let key = String.sub token 0 i in
        let value = String.sub token (i + 1) (String.length token - i - 1) in
        if List.mem key allowed then Ok ((key, value) :: acc)
        else
          Error
            (Printf.sprintf "%s: unknown attribute %S (allowed: %s)" directive
               key
               (String.concat ", " allowed))
      | None ->
        Error (Printf.sprintf "%s: expected key=value, got %S" directive token))
    (Ok []) tokens

let attr attrs key = List.assoc_opt key attrs

let is_attr token = String.contains token '='

let endpoints ~directive = function
  | a :: b :: rest when not (is_attr a || is_attr b) -> Ok (a, b, rest)
  | _ ->
    Error
      (Printf.sprintf "%s: expected two endpoint names, as in '%s U R'"
         directive directive)

let one_node ~directive = function
  | node :: rest when not (is_attr node) -> Ok (node, rest)
  | _ -> Error (Printf.sprintf "%s: expected a node name" directive)

let dir_attr ~directive attrs =
  match attr attrs "dir" with
  | Some v -> direction_field (directive ^ " dir") v
  | None -> Ok Both

let required_float ~directive attrs key =
  match attr attrs key with
  | Some v -> float_field key v
  | None -> Error (Printf.sprintf "%s: missing required %s=MS" directive key)

let parse_kind_tokens tokens =
  match tokens with
  | "link_down" :: rest ->
    let* a, b, rest = endpoints ~directive:"link_down" rest in
    let* attrs = parse_attrs ~directive:"link_down" ~allowed:[ "dir" ] rest in
    let* dir = dir_attr ~directive:"link_down" attrs in
    Ok (Link_down { a; b; dir })
  | "link_up" :: rest ->
    let* a, b, rest = endpoints ~directive:"link_up" rest in
    let* attrs = parse_attrs ~directive:"link_up" ~allowed:[ "dir" ] rest in
    let* dir = dir_attr ~directive:"link_up" attrs in
    Ok (Link_up { a; b; dir })
  | "degrade" :: rest ->
    let* a, b, rest = endpoints ~directive:"degrade" rest in
    let* attrs =
      parse_attrs ~directive:"degrade"
        ~allowed:[ "dir"; "loss"; "latency_factor"; "until" ]
        rest
    in
    let* dir = dir_attr ~directive:"degrade" attrs in
    let* loss =
      match attr attrs "loss" with Some v -> float_field "loss" v | None -> Ok 0.
    in
    let* latency_factor =
      match attr attrs "latency_factor" with
      | Some v -> float_field "latency_factor" v
      | None -> Ok 1.
    in
    let* until = required_float ~directive:"degrade" attrs "until" in
    Ok (Link_degrade { a; b; dir; loss; latency_factor; until })
  | "crash" :: rest ->
    let* node, rest = one_node ~directive:"crash" rest in
    let* attrs = parse_attrs ~directive:"crash" ~allowed:[ "preserve_cs" ] rest in
    let* preserve_cs =
      match attr attrs "preserve_cs" with
      | Some v -> bool_field "preserve_cs" v
      | None -> Ok false
    in
    Ok (Node_crash { node; preserve_cs })
  | "restart" :: rest ->
    let* node, rest = one_node ~directive:"restart" rest in
    let* attrs = parse_attrs ~directive:"restart" ~allowed:[] rest in
    let () = ignore attrs in
    Ok (Node_restart { node })
  | "producer_down" :: rest ->
    let* node, rest = one_node ~directive:"producer_down" rest in
    let* attrs = parse_attrs ~directive:"producer_down" ~allowed:[ "until" ] rest in
    let* until = required_float ~directive:"producer_down" attrs "until" in
    Ok (Producer_outage { node; until })
  | "producer_slow" :: rest ->
    let* node, rest = one_node ~directive:"producer_slow" rest in
    let* attrs =
      parse_attrs ~directive:"producer_slow" ~allowed:[ "factor"; "until" ] rest
    in
    let* factor =
      match attr attrs "factor" with
      | Some v -> float_field "factor" v
      | None -> Ok 2.
    in
    let* until = required_float ~directive:"producer_slow" attrs "until" in
    Ok (Producer_slowdown { node; factor; until })
  | directive :: _ ->
    Error
      (Printf.sprintf
         "unknown fault kind %S (expected link_down, link_up, degrade, crash, \
          restart, producer_down or producer_slow)"
         directive)
  | [] -> Error "expected a fault kind after the time"

let parse_event_tokens tokens =
  match tokens with
  | [] -> Error "expected 'TIME KIND ...'"
  | time :: rest ->
    let* at = float_field "fault time" time in
    let* kind = parse_kind_tokens rest in
    let e = { at; kind } in
    let* () = validate e in
    Ok e

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (sort (List.rev acc))
    | line :: rest -> (
      let tokens =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun tok -> tok <> "")
      in
      match tokens with
      | [] -> go (lineno + 1) acc rest
      | comment :: _ when String.length comment > 0 && comment.[0] = '#' ->
        go (lineno + 1) acc rest
      | tokens -> (
        match parse_event_tokens tokens with
        | Ok e -> go (lineno + 1) (e :: acc) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)))
  in
  go 1 [] lines

let load ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = in_channel_length ic in
        really_input_string ic n)
  with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let direction_str = function Ab -> "ab" | Ba -> "ba" | Both -> "both"

let print_event e =
  let time = float_str e.at in
  match e.kind with
  | Link_down { a; b; dir } ->
    Printf.sprintf "%s link_down %s %s dir=%s" time a b (direction_str dir)
  | Link_up { a; b; dir } ->
    Printf.sprintf "%s link_up %s %s dir=%s" time a b (direction_str dir)
  | Link_degrade { a; b; dir; loss; latency_factor; until } ->
    Printf.sprintf "%s degrade %s %s dir=%s loss=%s latency_factor=%s until=%s"
      time a b (direction_str dir) (float_str loss) (float_str latency_factor)
      (float_str until)
  | Node_crash { node; preserve_cs } ->
    Printf.sprintf "%s crash %s preserve_cs=%b" time node preserve_cs
  | Node_restart { node } -> Printf.sprintf "%s restart %s" time node
  | Producer_outage { node; until } ->
    Printf.sprintf "%s producer_down %s until=%s" time node (float_str until)
  | Producer_slowdown { node; factor; until } ->
    Printf.sprintf "%s producer_slow %s factor=%s until=%s" time node
      (float_str factor) (float_str until)

let print schedule =
  String.concat "" (List.map (fun e -> print_event e ^ "\n") schedule)

let pp_event ppf e = Format.pp_print_string ppf (print_event e)
