(** One-way link latency models.

    The paper's timing attacks work because cache-hit and cache-miss
    paths have distinguishable round-trip-time distributions; the
    countermeasure analysis depends on how much those distributions
    overlap.  These models let topologies reproduce the LAN / WAN /
    local-host RTT histograms of the paper's Figure 3. *)

type t =
  | Constant of float
      (** Fixed delay in milliseconds. *)
  | Uniform of { lo : float; hi : float }
      (** Uniform jitter on [\[lo, hi\]]. *)
  | Normal of { mean : float; stddev : float; min : float }
      (** Gaussian jitter truncated below at [min] (latencies cannot be
          negative or below the propagation floor). *)
  | Shifted_exponential of { shift : float; rate : float }
      (** [shift + Exp(rate)]: a propagation floor plus queueing tail —
          the classic shape of measured Internet one-way delays. *)
  | Sum of t list
      (** Independent sum, e.g. propagation + queueing components. *)

val sample : t -> Rng.t -> float
(** Draw one latency in milliseconds.  Always [>= 0.]. *)

val lower_bound : t -> float
(** Greatest lower bound of {!sample}: no draw is ever below it, and it
    is never negative.  {!Sim.Shard} computes its conservative
    lookahead window as the minimum [lower_bound] over cross-shard
    links, so a model whose bound is [0.] (e.g. [Constant 0.]) cannot
    cross shards. *)

val mean : t -> float
(** Analytic mean of the model (truncation of [Normal] is ignored: with
    sensible parameters its effect is negligible, and the value is used
    only for reporting). *)

val pp : Format.formatter -> t -> unit

(* Convenience constructors for the scenarios in the paper's testbed. *)

val fast_ethernet : t
(** Sub-millisecond switched-LAN hop. *)

val lan_hop : t
(** Local-network NDN hop including forwarding cost (≈ 1.5–2 ms). *)

val wan_hop : t
(** One wide-area hop with moderate jitter (≈ 10–30 ms one way is split
    across several of these). *)

val local_ipc : t
(** Same-host interprocess hop (application to local NDN daemon). *)
