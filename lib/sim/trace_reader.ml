(* Streaming decoders for trace files: the binary wire format of
   [Trace] (DESIGN §16) and the JSONL rendering, both folded event by
   event without materializing the trace.

   Error discipline follows [Ndn.Topology_spec]: every malformed input
   is reported as a positioned, actionable [error] value — byte offsets
   for the binary format, line numbers for JSONL — never a bare
   exception escaping to the caller. *)

type position = Byte of int | Line of int

type error = { position : position; reason : string }

let pp_error ppf e =
  match e.position with
  | Byte n -> Format.fprintf ppf "byte %d: %s" n e.reason
  | Line n -> Format.fprintf ppf "line %d: %s" n e.reason

let error_to_string e = Format.asprintf "%a" pp_error e

exception Fail of error

let fail position reason = raise (Fail { position; reason })

let failf position fmt = Printf.ksprintf (fail position) fmt

(* --- chunked byte source --- *)

type source = {
  refill : bytes -> int -> int -> int;
      (* [refill buf off len] reads at most [len] bytes into [buf] at
         [off]; 0 means end of stream. *)
  mutable buf : Bytes.t;
  mutable lo : int;  (* first unconsumed byte *)
  mutable hi : int;  (* end of valid bytes *)
  mutable base : int;  (* stream offset of [buf.(0)] *)
  mutable eof : bool;
}

let of_string s =
  {
    refill = (fun _ _ _ -> 0);
    buf = Bytes.of_string s;
    lo = 0;
    hi = String.length s;
    base = 0;
    eof = true;
  }

let of_channel ic =
  {
    refill = input ic;
    buf = Bytes.create 65536;
    lo = 0;
    hi = 0;
    base = 0;
    eof = false;
  }

let offset src = src.base + src.lo

let available src = src.hi - src.lo

(* Try to make [n] bytes available; at end of stream fewer may remain.
   Compacts the window and grows the buffer as needed. *)
let ensure src n =
  if available src < n && not src.eof then begin
    if src.lo > 0 then begin
      let live = available src in
      Bytes.blit src.buf src.lo src.buf 0 live;
      src.base <- src.base + src.lo;
      src.lo <- 0;
      src.hi <- live
    end;
    if n > Bytes.length src.buf then begin
      let nb = Bytes.create (max n (2 * Bytes.length src.buf)) in
      Bytes.blit src.buf 0 nb 0 src.hi;
      src.buf <- nb
    end;
    let continue = ref true in
    while !continue && src.hi - src.lo < n do
      let got = src.refill src.buf src.hi (Bytes.length src.buf - src.hi) in
      if got = 0 then begin
        src.eof <- true;
        continue := false
      end
      else src.hi <- src.hi + got
    done
  end

let take src n =
  let s = Bytes.sub_string src.buf src.lo n in
  src.lo <- src.lo + n;
  s

(* Read one varint straight off the stream (used for the header fields
   and record length prefixes; record payloads are decoded from their
   extracted string). *)
let read_uint src ~what =
  ensure src Varint.max_bytes;
  let avail = available src in
  if avail = 0 then failf (Byte (offset src)) "stream ends where %s is expected" what;
  let window = Bytes.sub_string src.buf src.lo (min avail (Varint.max_bytes + 1)) in
  match Varint.read_uint window 0 with
  | v, consumed ->
    src.lo <- src.lo + consumed;
    v
  | exception Varint.Truncated _ ->
    failf (Byte (offset src)) "stream ends inside the varint encoding %s" what
  | exception Varint.Overflow _ ->
    failf (Byte (offset src)) "varint encoding %s exceeds 9 bytes (corrupt stream?)" what

(* --- growable string table --- *)

type strtab = { mutable arr : string array; mutable n : int }

let strtab_create () = { arr = Array.make 64 ""; n = 0 }

let strtab_push t s =
  if t.n = Array.length t.arr then begin
    let nb = Array.make (2 * t.n) "" in
    Array.blit t.arr 0 nb 0 t.n;
    t.arr <- nb
  end;
  t.arr.(t.n) <- s;
  t.n <- t.n + 1

(* --- binary decoding --- *)

let max_record_bytes = 1 lsl 24

(* Decode helpers over an extracted record payload; [base] is the
   record's stream offset so errors stay absolute. *)
let payload_uint ~base payload pos ~what =
  match Varint.read_uint payload pos with
  | v, pos' -> (v, pos')
  | exception Varint.Truncated p ->
    failf (Byte (base + p)) "record payload ends inside the varint encoding %s" what
  | exception Varint.Overflow p ->
    failf (Byte (base + p)) "varint encoding %s exceeds 9 bytes (corrupt record?)" what

let payload_int ~base payload pos ~what =
  let v, pos' = payload_uint ~base payload pos ~what in
  (Varint.unzigzag v, pos')

let payload_bytes ~base payload pos len ~what =
  if pos + len > String.length payload then
    failf (Byte (base + pos))
      "record payload ends inside %s (%d bytes declared, %d remain)" what len
      (String.length payload - pos)
  else (String.sub payload pos len, pos + len)

let check_header src =
  ensure src 8;
  if available src = 0 then fail (Byte 0) "empty stream: not a binary trace";
  if available src < 8 then
    failf (Byte 0) "stream shorter than the 8-byte magic: not a binary trace";
  let magic = take src 8 in
  if magic <> Trace.binary_magic then
    failf (Byte 0)
      "bad magic %S (expected %S): not a binary ndn trace — JSONL traces go \
       through the jsonl reader"
      magic Trace.binary_magic;
  let version = read_uint src ~what:"the format version" in
  if version <> Trace.binary_version then
    failf (Byte (offset src))
      "unsupported binary trace version %d (this reader implements version %d)"
      version Trace.binary_version;
  let count = read_uint src ~what:"the registry snapshot size" in
  if count = 0 || count > 4096 then
    failf (Byte (offset src)) "implausible registry snapshot size %d" count;
  let kinds = Array.make count Trace.Engine_step in
  for i = 0 to count - 1 do
    let len = read_uint src ~what:"a registry name length" in
    if len > 256 then
      failf (Byte (offset src)) "implausible registry name length %d" len;
    ensure src len;
    if available src < len then
      failf (Byte (offset src)) "stream ends inside the registry snapshot";
    let name = take src len in
    match Trace.kind_of_string name with
    | Some k -> kinds.(i) <- k
    | None ->
      failf
        (Byte (offset src - len))
        "registry snapshot entry %d names unknown trace kind %S — the trace \
         was written by a newer build; regenerate it or upgrade this reader"
        i name
  done;
  kinds

type binary_state = {
  kinds : Trace.kind array;
  tab : strtab;
  mutable prev_us : int;
}

let resolve_ref ~base st r ~at ~what =
  if r < 0 || r >= st.tab.n then
    failf (Byte (base + at))
      "%s references string #%d but only %d strings are defined so far" what r
      st.tab.n
  else st.tab.arr.(r)

let decode_record st acc f ~base payload =
  let len = String.length payload in
  match payload.[0] with
  | '\x01' ->
    let id, pos = payload_uint ~base payload 1 ~what:"a string id" in
    if id <> st.tab.n then
      failf (Byte (base + 1))
        "string definition id %d out of order (expected %d)" id st.tab.n;
    let slen, pos = payload_uint ~base payload pos ~what:"a string length" in
    let s, pos = payload_bytes ~base payload pos slen ~what:"a string body" in
    if pos <> len then
      failf (Byte (base + pos)) "string record has %d trailing bytes" (len - pos);
    strtab_push st.tab s;
    acc
  | '\x02' ->
    let kid, pos = payload_uint ~base payload 1 ~what:"a kind id" in
    if kid >= Array.length st.kinds then
      failf (Byte (base + 1))
        "kind id %d outside the registry snapshot (%d kinds)" kid
        (Array.length st.kinds);
    let dt, pos = payload_int ~base payload pos ~what:"a time delta" in
    let node_at = pos in
    let node_ref, pos = payload_uint ~base payload pos ~what:"a node ref" in
    let name_at = pos in
    let name_ref, pos = payload_uint ~base payload pos ~what:"a name ref" in
    let nattrs, pos = payload_uint ~base payload pos ~what:"an attr count" in
    let node = resolve_ref ~base st node_ref ~at:node_at ~what:"node" in
    let name = resolve_ref ~base st name_ref ~at:name_at ~what:"name" in
    let attrs = ref [] in
    let pos = ref pos in
    for _ = 1 to nattrs do
      let key_at = !pos in
      let key_ref, p = payload_uint ~base payload !pos ~what:"an attr key ref" in
      let vlen, p = payload_uint ~base payload p ~what:"an attr value length" in
      let v, p = payload_bytes ~base payload p vlen ~what:"an attr value" in
      let key = resolve_ref ~base st key_ref ~at:key_at ~what:"attr key" in
      attrs := (key, v) :: !attrs;
      pos := p
    done;
    if !pos <> len then
      failf (Byte (base + !pos)) "event record has %d trailing bytes" (len - !pos);
    let us = st.prev_us + dt in
    st.prev_us <- us;
    let event =
      {
        Trace.time = float_of_int us /. 1e6;
        node;
        kind = st.kinds.(kid);
        name;
        attrs = List.rev !attrs;
      }
    in
    f acc event
  | c -> failf (Byte base) "unknown record tag 0x%02x" (Char.code c)

let fold_binary src ~init ~f =
  try
    let kinds = check_header src in
    let st = { kinds; tab = strtab_create (); prev_us = 0 } in
    let acc = ref init in
    let running = ref true in
    while !running do
      ensure src 1;
      if available src = 0 then running := false
      else begin
        let record_at = offset src in
        let len = read_uint src ~what:"a record length" in
        if len = 0 || len > max_record_bytes then
          failf (Byte record_at) "implausible record length %d" len;
        ensure src len;
        if available src < len then
          failf (Byte record_at)
            "record truncated: %d payload bytes declared at byte %d but the \
             stream ends after %d"
            len record_at (available src);
        let base = offset src in
        let payload = take src len in
        acc := decode_record st !acc f ~base payload
      end
    done;
    Ok !acc
  with Fail e -> Error e

(* --- JSONL decoding --- *)

(* A minimal parser for the exporter's own JSONL schema: one object per
   line with keys time/node/kind/name/attrs.  Accepts the keys in any
   order; rejects anything else with a line-numbered reason. *)

let read_line_opt src =
  ensure src 1;
  if available src = 0 then None
  else begin
    (* [rel] is relative to [src.lo]; [ensure] compacts the window but
       preserves lo-relative positions, so the scan survives refills. *)
    let rec scan rel =
      if src.lo + rel >= src.hi then
        if src.eof then -1
        else begin
          ensure src (rel + 4096);
          if src.lo + rel >= src.hi then -1 else scan rel
        end
      else if Bytes.get src.buf (src.lo + rel) = '\n' then rel
      else scan (rel + 1)
    in
    match scan 0 with
    | -1 ->
      (* final unterminated line *)
      Some (take src (available src))
    | rel ->
      let line = Bytes.sub_string src.buf src.lo rel in
      src.lo <- src.lo + rel + 1;
      Some line
  end

let parse_jsonl_event ~line_no line =
  let err reason = fail (Line line_no) reason in
  let errf fmt = failf (Line line_no) fmt in
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then line.[!pos] else err "unexpected end of line" in
  let advance () = incr pos in
  let expect c =
    if !pos >= n || line.[!pos] <> c then
      errf "expected '%c' at column %d" c (!pos + 1)
    else advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "unterminated string"
      else
        match line.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then err "unterminated escape"
           else
             match line.[!pos] with
             | '"' -> Buffer.add_char b '"'; advance ()
             | '\\' -> Buffer.add_char b '\\'; advance ()
             | '/' -> Buffer.add_char b '/'; advance ()
             | 'n' -> Buffer.add_char b '\n'; advance ()
             | 'r' -> Buffer.add_char b '\r'; advance ()
             | 't' -> Buffer.add_char b '\t'; advance ()
             | 'b' -> Buffer.add_char b '\b'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then err "truncated \\u escape"
               else begin
                 let hex = String.sub line !pos 4 in
                 let code =
                   try int_of_string ("0x" ^ hex)
                   with Failure _ -> errf "bad \\u escape %S" hex
                 in
                 if code > 0xff then
                   errf "\\u escape %S outside the exporter's byte range" hex
                 else Buffer.add_char b (Char.chr code);
                 pos := !pos + 4
               end
             | c -> errf "unsupported escape '\\%c'" c);
          go ()
        | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num line.[!pos] do
      advance ()
    done;
    if !pos = start then err "expected a number";
    let s = String.sub line start (!pos - start) in
    try float_of_string s with Failure _ -> errf "malformed number %S" s
  in
  let parse_attrs () =
    expect '{';
    if peek () = '}' then begin
      advance ();
      []
    end
    else begin
      let rec go acc =
        let k = parse_string () in
        expect ':';
        let v = parse_string () in
        let acc = (k, v) :: acc in
        match peek () with
        | ',' -> advance (); go acc
        | '}' -> advance (); List.rev acc
        | c -> errf "expected ',' or '}' in attrs, got '%c'" c
      in
      go []
    end
  in
  let time = ref None and node = ref None and kind = ref None in
  let name = ref None and attrs = ref None in
  expect '{';
  let rec members () =
    let key = parse_string () in
    expect ':';
    (match key with
    | "time" -> time := Some (parse_number ())
    | "node" -> node := Some (parse_string ())
    | "kind" ->
      let s = parse_string () in
      (match Trace.kind_of_string s with
      | Some k -> kind := Some k
      | None -> errf "unknown trace kind %S (registry: lib/sim/trace_kinds.txt)" s)
    | "name" -> name := Some (parse_string ())
    | "attrs" -> attrs := Some (parse_attrs ())
    | k -> errf "unexpected key %S (schema: time,node,kind,name,attrs)" k);
    match peek () with
    | ',' -> advance (); members ()
    | '}' -> advance ()
    | c -> errf "expected ',' or '}', got '%c'" c
  in
  members ();
  if !pos <> n then errf "trailing bytes after the JSON object at column %d" (!pos + 1);
  let req what = function
    | Some v -> v
    | None -> errf "missing key %S" what
  in
  {
    Trace.time = req "time" !time;
    node = req "node" !node;
    kind = req "kind" !kind;
    name = req "name" !name;
    attrs = req "attrs" !attrs;
  }

let fold_jsonl src ~init ~f =
  try
    let acc = ref init in
    let line_no = ref 0 in
    let running = ref true in
    while !running do
      match read_line_opt src with
      | None -> running := false
      | Some "" -> incr line_no (* tolerate blank lines *)
      | Some line ->
        incr line_no;
        acc := f !acc (parse_jsonl_event ~line_no:!line_no line)
    done;
    Ok !acc
  with Fail e -> Error e

(* --- format sniffing --- *)

type detected = Binary | Jsonl | Csv

let detect src =
  ensure src 10;
  let avail = available src in
  let prefix = Bytes.sub_string src.buf src.lo (if avail < 10 then avail else 10) in
  let starts_with p =
    String.length prefix >= String.length p
    && String.sub prefix 0 (String.length p) = p
  in
  if starts_with Trace.binary_magic then Binary
  else if starts_with Trace.csv_header || starts_with "time,node" then Csv
  else Jsonl

let fold_auto src ~init ~f =
  match detect src with
  | Binary -> fold_binary src ~init ~f
  | Csv ->
    Error
      {
        position = Line 1;
        reason =
          "this is a CSV trace; the streaming analyzers read binary or JSONL \
           traces — re-run with --trace-format binary (or jsonl)";
      }
  | Jsonl -> fold_jsonl src ~init ~f
