(** Deterministic fault injection.

    The paper's attacks and bounds assume a stable network: the only
    thing that evicts content is cache policy.  This module perturbs
    that assumption {e reproducibly}: a fault schedule is an ordinary
    piece of data (scripted by hand, parsed from a file, or generated
    from a seeded {!Rng}), and {!install} turns it into ordinary engine
    events — so a faulty run is exactly as deterministic as a healthy
    one, and byte-identical for any [--jobs N].

    This layer is network-agnostic: faults name their targets by
    string label and the embedding (see [Ndn.Network.install_faults])
    supplies the semantics — link state flips, Content-Store flushes,
    producer outages. *)

(** Which direction of a (bidirectional) link a fault applies to.
    [Ab] is the a→b direction as the endpoints are named in the
    fault. *)
type direction = Ab | Ba | Both

type kind =
  | Link_down of { a : string; b : string; dir : direction }
      (** Packets sent in the affected direction(s) are dropped. *)
  | Link_up of { a : string; b : string; dir : direction }
      (** Undo a {!Link_down}. *)
  | Link_degrade of {
      a : string;
      b : string;
      dir : direction;
      loss : float;  (** Loss probability while degraded, in [\[0,1\]]. *)
      latency_factor : float;  (** Multiplies every sampled latency. *)
      until : float;  (** Absolute restore time (ms); must exceed [at]. *)
    }
  | Node_crash of { node : string; preserve_cs : bool }
      (** The forwarder dies: PIT drained (pending local expressions
          time out immediately), Content Store flushed unless
          [preserve_cs] (a persistent cache surviving the reboot), and
          all packets are dropped until the matching {!Node_restart}. *)
  | Node_restart of { node : string }
  | Producer_outage of { node : string; until : float }
      (** The node's producer applications return no content until
          [until] (absolute ms). *)
  | Producer_slowdown of { node : string; factor : float; until : float }
      (** Production delays are multiplied by [factor] until [until]. *)

type event = { at : float; kind : kind }
(** A fault firing at absolute virtual time [at] (ms). *)

type schedule = event list
(** Sorted by [at] (stable: same-time events keep construction order).
    Build with {!sort}, {!parse} or a generator — all establish the
    invariant. *)

val empty : schedule

val sort : event list -> schedule
(** Stable sort by firing time. *)

val validate : event -> (unit, string) result
(** Structural checks that need no network: non-negative time, [loss]
    in [\[0,1\]], positive factors, windowed faults with
    [until > at]. *)

(** {1 Random schedules}

    Generators draw from an explicit {!Rng}, so a (seed, parameters)
    pair names a schedule exactly.  Targets are processed in list
    order and each consumes a deterministic slice of the stream. *)

val random_restarts :
  rng:Rng.t ->
  nodes:string list ->
  mean_uptime_ms:float ->
  downtime_ms:float ->
  horizon_ms:float ->
  ?preserve_cs:bool ->
  unit ->
  schedule
(** Crash/restart pairs per node: uptimes are exponential with mean
    [mean_uptime_ms], each crash is followed by its restart exactly
    [downtime_ms] later (the restart is emitted even when it lands past
    the horizon, so every crash is bracketed).  Empty on non-positive
    [mean_uptime_ms] or [horizon_ms]. *)

val random_link_flaps :
  rng:Rng.t ->
  links:(string * string) list ->
  mean_uptime_ms:float ->
  downtime_ms:float ->
  horizon_ms:float ->
  unit ->
  schedule
(** Same process over links: [Link_down]/[Link_up] pairs (both
    directions). *)

(** {1 Installation} *)

val install : engine:Engine.t -> apply:(event -> unit) -> schedule -> unit
(** Schedule every event on the engine ([schedule_at], so times in the
    past clamp to "now"), calling [apply] when it fires.  Faults become
    ordinary engine events: they interleave with protocol events by
    virtual time and the run stays deterministic. *)

val phase_boundaries : schedule -> float list
(** The strictly increasing virtual times at which the network changes:
    every [at], plus every windowed fault's [until].  Experiments use
    these to segment their measurements into phases. *)

(** {1 Text format}

    One fault per line: [TIME KIND ARGS...]; ['#'] comments and blank
    lines are skipped.  {!print} emits the canonical form — every
    default written out, floats rendered with just enough digits to
    parse back exactly — so print/parse is a fixpoint.

    {v
    # time(ms)  kind          arguments
    120   link_down U R dir=ab
    180   link_up   U R dir=ab
    150   degrade   R P loss=0.3 latency_factor=2 until=400
    300   crash     R preserve_cs=false
    450   restart   R
    500   producer_down P until=800
    900   producer_slow P factor=4 until=1200
    v} *)

val parse_event_tokens : string list -> (event, string) result
(** Parse one fault from its whitespace-split tokens
    ([TIME :: KIND :: args]); used by both {!parse} and the
    [fault] directive of [Ndn.Topology_spec]. *)

val parse : string -> (schedule, string) result
(** Parse a whole schedule; errors are prefixed with [line N:].  The
    result is sorted. *)

val load : path:string -> (schedule, string) result

val print_event : event -> string
(** Canonical one-line rendering (no newline). *)

val print : schedule -> string
(** Canonical rendering, one event per line, each newline-terminated.
    [parse (print s) = Ok s] for any valid schedule. *)

val pp_event : Format.formatter -> event -> unit
