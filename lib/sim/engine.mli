(** Discrete-event simulation engine.

    A virtual clock (milliseconds, [float]) and an event queue.  Events
    are thunks executed at their scheduled time; events scheduled for
    the same instant run in scheduling order.  Nothing here is
    concurrent — the engine is a deterministic single-threaded loop,
    which is what makes experiments exactly reproducible.

    The hot path is allocation-free: the queue is a struct-of-arrays
    {!Heap}, and handle records are recycled through a free-list once
    their event has fired (or a cancelled event's instant has passed).
    Consequence of recycling: a handle is meaningful from [schedule]
    until its event fires or its cancelled slot is drained; after that
    the record may be reused by a later [schedule], at which point
    {!cancel}/{!is_cancelled} on the stale handle refer to the new
    event.  Cancel an event only while it is still pending — which is
    the only useful time to do so. *)

type t

type handle
(** A scheduled event, usable for cancellation (e.g. a PIT-entry
    timeout that is disarmed when the Data packet arrives).  Recycled
    after the event fires — do not retain handles past their event's
    lifetime (see the module preamble). *)

val create : ?tracer:Trace.t -> unit -> t
(** Fresh engine with the clock at [0.].  When [tracer] (default
    {!Trace.disabled}) is enabled, every executed event emits an
    [engine.step] record carrying the queue depth after dispatch and
    the running processed count — queue dynamics and events-per-ms
    become observable without touching the hot path when disabled. *)

val now : t -> float
(** Current virtual time in milliseconds. *)

val tracer : t -> Trace.t
(** The tracer passed at creation ({!Trace.disabled} by default). *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].  Negative delays
    are clamped to [0.] (the event runs "now", after currently pending
    same-instant events).  Allocation-free when a recycled handle
    record is available. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant of {!schedule}.  Times in the past are clamped
    to the current instant. *)

val schedule_key : t -> delay:float -> key:int -> (unit -> unit) -> handle
(** {!schedule} with an explicit heap tie-break key instead of the
    engine's private insertion counter.  Same-instant events fire in
    ascending [key] order.  Used by {!Sim.Shard}-mode networks, which
    key every event with a globally unique [(node id, per-node counter)]
    pair so that pop order — and therefore the whole simulation — is
    invariant under the partitioning of nodes into shards.  Callers
    must never mix keyed and unkeyed scheduling on one engine: the
    engine's internal counter would collide with packed keys. *)

val schedule_key_at : t -> time:float -> key:int -> (unit -> unit) -> handle
(** Absolute-time variant of {!schedule_key}. *)

val cur_key : t -> int
(** Heap key of the event currently being dispatched (or the value most
    recently installed with {!set_cur_key}).  {!Sim.Shard} tags trace
    records with this to stitch per-shard buffers into a
    shard-count-invariant total order. *)

val set_cur_key : t -> int -> unit
(** Claim the current key from a root context (code running between
    events, e.g. a driver expressing an interest directly), so trace
    records it causes sort under a fresh unique key rather than under
    whatever event happened to run last. *)

val cancel : handle -> unit
(** Disarm a scheduled event.  Cancelling an already-fired or
    already-cancelled event is a no-op — but see the recycling caveat
    in the module preamble: once the event has fired, the handle may
    have been reused by a later [schedule]. *)

val is_cancelled : handle -> bool

val step : t -> bool
(** Execute the next pending event.  Returns [false] when the queue is
    empty (clock unchanged).  A popped cancelled event advances the
    clock but executes nothing. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue.  [until] stops the clock at the given time
    (events scheduled later stay queued); [max_events] bounds the number
    of events {e executed} — cancelled events drained from the queue do
    not consume the budget, so the bound matches what
    {!events_processed} reports — a guard against non-terminating
    protocols. *)

val pending : t -> int
(** Number of {e live} queued events: scheduled, not yet fired and not
    cancelled.  (Cancelled events physically stay in the queue until
    their instant passes, but they are not counted here.) *)

val has_queued : t -> bool
(** Whether any event (live or lazily cancelled) is still physically
    queued.  This is the condition legacy [run ~until] uses to decide
    whether to advance the clock to the limit; {!Sim.Shard} needs the
    same predicate across all shard engines to compute a
    shard-count-invariant finish time. *)

val next_event_time : t -> float
(** Time key of the earliest queued event, or [infinity] when the queue
    is empty.  Read by {!Sim.Shard} to agree on the next global
    lookahead window. *)

val last_fire_time : t -> float
(** Time of the last event that actually executed ([0.] before any
    has).  Unlike {!now}, this is not disturbed by [run ~until] clamping
    the clock, which makes it the shard-count-invariant ingredient of
    {!Sim.Shard}'s finish-time rule. *)

val advance_clock_to : t -> float -> unit
(** Push the clock forward to the given time if it is ahead of {!now}
    (never backwards).  {!Sim.Shard} realigns all shard engines to one
    agreed finish time after a windowed run. *)

val events_processed : t -> int
(** Total events executed since creation. *)
