(** Discrete-event simulation engine.

    A virtual clock (milliseconds, [float]) and an event queue.  Events
    are thunks executed at their scheduled time; events scheduled for
    the same instant run in scheduling order.  Nothing here is
    concurrent — the engine is a deterministic single-threaded loop,
    which is what makes experiments exactly reproducible.

    The hot path is allocation-free: the queue is a struct-of-arrays
    {!Heap}, and handle records are recycled through a free-list once
    their event has fired (or a cancelled event's instant has passed).
    Consequence of recycling: a handle is meaningful from [schedule]
    until its event fires or its cancelled slot is drained; after that
    the record may be reused by a later [schedule], at which point
    {!cancel}/{!is_cancelled} on the stale handle refer to the new
    event.  Cancel an event only while it is still pending — which is
    the only useful time to do so. *)

type t

type handle
(** A scheduled event, usable for cancellation (e.g. a PIT-entry
    timeout that is disarmed when the Data packet arrives).  Recycled
    after the event fires — do not retain handles past their event's
    lifetime (see the module preamble). *)

val create : ?tracer:Trace.t -> unit -> t
(** Fresh engine with the clock at [0.].  When [tracer] (default
    {!Trace.disabled}) is enabled, every executed event emits an
    [engine.step] record carrying the queue depth after dispatch and
    the running processed count — queue dynamics and events-per-ms
    become observable without touching the hot path when disabled. *)

val now : t -> float
(** Current virtual time in milliseconds. *)

val tracer : t -> Trace.t
(** The tracer passed at creation ({!Trace.disabled} by default). *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].  Negative delays
    are clamped to [0.] (the event runs "now", after currently pending
    same-instant events).  Allocation-free when a recycled handle
    record is available. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant of {!schedule}.  Times in the past are clamped
    to the current instant. *)

val cancel : handle -> unit
(** Disarm a scheduled event.  Cancelling an already-fired or
    already-cancelled event is a no-op — but see the recycling caveat
    in the module preamble: once the event has fired, the handle may
    have been reused by a later [schedule]. *)

val is_cancelled : handle -> bool

val step : t -> bool
(** Execute the next pending event.  Returns [false] when the queue is
    empty (clock unchanged).  A popped cancelled event advances the
    clock but executes nothing. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue.  [until] stops the clock at the given time
    (events scheduled later stay queued); [max_events] bounds the number
    of events {e executed} — cancelled events drained from the queue do
    not consume the budget, so the bound matches what
    {!events_processed} reports — a guard against non-terminating
    protocols. *)

val pending : t -> int
(** Number of {e live} queued events: scheduled, not yet fired and not
    cancelled.  (Cancelled events physically stay in the queue until
    their instant passes, but they are not counted here.) *)

val events_processed : t -> int
(** Total events executed since creation. *)
