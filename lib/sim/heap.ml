(* Struct-of-arrays 4-ary min-heap.  Keys are (time, seq); [seq] breaks
   ties deterministically — and because (time, seq) is a total order,
   pop order is independent of the internal layout (arity included):
   any correct heap yields the same event sequence, which is what the
   byte-identity trace suites pin down.

   Layout.  Four parallel arrays replace the old boxed
   [(float * int * 'a)] entry records:

     times   : float array   -- unboxed keys, the array the sifts read
     seqs    : int array     -- tie-breakers
     slot_of : int array     -- heap position -> element slot
     elts    : 'a array      -- slot -> element, NEVER moved by a sift

   The extra [slot_of] indirection is the load-bearing trick: a sift
   permutes only floats and ints, so the inner loops compile to pure
   unboxed arithmetic — no write barrier ([caml_modify]) and no
   polymorphic-array representation dispatch per level, which is where
   a pointer-carrying heap spends most of its pop.  An element is
   written into [elts] once at [add] (one generic-array store) and read
   once at pop; its slot is recycled through [free_slots], an int
   stack.  [size] slots are always live, so a fresh slot is available
   at index [size] whenever the free stack is empty.

   Why 4-ary: a pop sifts the displaced last key down ~log_d(n) levels.
   Quadrupling the fan-out halves the level count for the same total
   number of comparisons (4-ary: up to 3 child-vs-child + 1
   child-vs-item per level, binary: 1 + 1 over twice the levels), and
   the four children's keys share a cache line of [times].

   The sift loops use unsafe array accesses: every index is either a
   parent ((i-1)/4 <= i), a child bounded by an explicit [l >= size] /
   [hi] clamp, or [size - 1] after a non-empty check, and all parallel
   arrays share one capacity ([grow] resizes them together) — the
   bounds checks the compiler would insert are provably dead, and at
   several accesses per level they are measurable.

   [elts] needs a filler value for unused slots; the first element ever
   added serves as the witness.  One consequence, accepted
   deliberately: a popped element stays reachable from its retired slot
   until the slot is reused by a later [add] (or [clear] is called).
   For the simulator's recycled event handles this retention is
   harmless. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable slot_of : int array;
  mutable elts : 'a array;
  mutable free_slots : int array;
  mutable free_len : int;
  mutable size : int;
}

let create () =
  {
    times = [||];
    seqs = [||];
    slot_of = [||];
    elts = [||];
    free_slots = [||];
    free_len = 0;
    size = 0;
  }

let length t = t.size

let is_empty t = t.size = 0

let grow t witness =
  let cap = Array.length t.times in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let ntimes = Array.make ncap 0. in
    let nseqs = Array.make ncap 0 in
    let nslot_of = Array.make ncap 0 in
    let nelts = Array.make ncap witness in
    let nfree = Array.make ncap 0 in
    Array.blit t.times 0 ntimes 0 t.size;
    Array.blit t.seqs 0 nseqs 0 t.size;
    Array.blit t.slot_of 0 nslot_of 0 t.size;
    Array.blit t.elts 0 nelts 0 cap;
    Array.blit t.free_slots 0 nfree 0 t.free_len;
    t.times <- ntimes;
    t.seqs <- nseqs;
    t.slot_of <- nslot_of;
    t.elts <- nelts;
    t.free_slots <- nfree
  end

(* Hole-based sift-up: shift larger parents down into the hole, then
   store (time, seq, slot) once at its final position. *)
(* ndnlint: hot *)
let add t ~time ~seq x =
  grow t x;
  (* [size] live slots + [free_len] retired ones never exceeds the
     high-water mark, so when the free stack is empty slot [size] is
     fresh. *)
  let slot =
    if t.free_len > 0 then begin
      let fl = t.free_len - 1 in
      t.free_len <- fl;
      Array.unsafe_get t.free_slots fl
    end
    else t.size
  in
  Array.unsafe_set t.elts slot x;
  let times = t.times and seqs = t.seqs and slot_of = t.slot_of in
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref (!i > 0) in
  while !continue do
    let parent = (!i - 1) lsr 2 in
    let pt = Array.unsafe_get times parent in
    if time < pt || (time = pt && seq < Array.unsafe_get seqs parent) then begin
      Array.unsafe_set times !i pt;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set slot_of !i (Array.unsafe_get slot_of parent);
      i := parent;
      continue := !i > 0
    end
    else continue := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set slot_of !i slot

(* Hole-based sift-down of the (time, seq, slot) displaced from the
   last position after a pop. *)
(* ndnlint: hot *)
let sift_down_from_root t time seq slot =
  let times = t.times and seqs = t.seqs and slot_of = t.slot_of in
  let size = t.size in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (!i lsl 2) + 1 in
    if l >= size then continue := false
    else begin
      (* Smallest of the up-to-four children. *)
      let c = ref l in
      let hi = l + 3 in
      let hi = if hi < size then hi else size - 1 in
      for j = l + 1 to hi do
        let jt = Array.unsafe_get times j in
        let ct = Array.unsafe_get times !c in
        if
          jt < ct
          || (jt = ct && Array.unsafe_get seqs j < Array.unsafe_get seqs !c)
        then c := j
      done;
      let c = !c in
      let ct = Array.unsafe_get times c in
      if ct < time || (ct = time && Array.unsafe_get seqs c < seq) then begin
        Array.unsafe_set times !i ct;
        Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
        Array.unsafe_set slot_of !i (Array.unsafe_get slot_of c);
        i := c
      end
      else continue := false
    end
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set slot_of !i slot

let min_time t =
  if t.size = 0 then invalid_arg "Heap.min_time: empty heap";
  Array.unsafe_get t.times 0

(* Bound test without the boxed-float return of [min_time]: does the
   minimum key's time lie at or before [limit]?  [false] on an empty
   heap. *)
(* ndnlint: hot *)
let min_before t limit = t.size > 0 && Array.unsafe_get t.times 0 <= limit

let min_seq t =
  if t.size = 0 then invalid_arg "Heap.min_seq: empty heap";
  Array.unsafe_get t.seqs 0

(* ndnlint: hot *)
let pop_min_elt t =
  if t.size = 0 then invalid_arg "Heap.pop_min_elt: empty heap";
  let slot = Array.unsafe_get t.slot_of 0 in
  let x = Array.unsafe_get t.elts slot in
  Array.unsafe_set t.free_slots t.free_len slot;
  t.free_len <- t.free_len + 1;
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then
    sift_down_from_root t
      (Array.unsafe_get t.times last)
      (Array.unsafe_get t.seqs last)
      (Array.unsafe_get t.slot_of last);
  x

(* [pop_min_elt], fused with delivering the popped key's time through a
   caller-provided one-element float array (index 0).  The engine's
   dispatch loop is the reason this exists: its virtual clock is such
   an array, and the fused store moves the time without a cross-module
   boxed-float return on the hottest path in the simulator. *)
(* ndnlint: hot *)
let pop_min_elt_writing_time t ~time_into =
  if t.size = 0 then invalid_arg "Heap.pop_min_elt_writing_time: empty heap";
  time_into.(0) <- Array.unsafe_get t.times 0;
  let slot = Array.unsafe_get t.slot_of 0 in
  let x = Array.unsafe_get t.elts slot in
  Array.unsafe_set t.free_slots t.free_len slot;
  t.free_len <- t.free_len + 1;
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then
    sift_down_from_root t
      (Array.unsafe_get t.times last)
      (Array.unsafe_get t.seqs last)
      (Array.unsafe_get t.slot_of last);
  x

let peek_min t =
  if t.size = 0 then None
  else Some (t.times.(0), t.seqs.(0), t.elts.(t.slot_of.(0)))

let pop_min t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) in
    let x = pop_min_elt t in
    Some (time, seq, x)
  end

let pop_if_min_before t limit =
  if t.size = 0 || t.times.(0) > limit then None
  else Some (pop_min_elt t)

let clear t =
  t.times <- [||];
  t.seqs <- [||];
  t.slot_of <- [||];
  t.elts <- [||];
  t.free_slots <- [||];
  t.free_len <- 0;
  t.size <- 0
