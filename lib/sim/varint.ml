(* LEB128 variable-length integers for the binary trace wire format.

   Unsigned varints are the standard little-endian base-128 coding:
   seven payload bits per byte, high bit set on every byte except the
   last.  Signed values go through the zigzag map first so that small
   negative deltas (backwards time steps between merged trial streams)
   stay short on the wire.

   OCaml ints are 63-bit on 64-bit platforms, so a varint is at most
   9 bytes; a tenth continuation byte is rejected instead of silently
   wrapping.  The encoders are on the trace emit hot path and must not
   allocate: no closures, no refs, no boxing. *)

exception Truncated of int
exception Overflow of int

let max_bytes = 9

(* Raw encoder over the full 63-bit pattern: [lsr] terminates even for
   negative inputs, which zigzag produces for very negative values. *)
(* ndnlint: hot *)
let rec add_raw b n =
  if n >= 0 && n < 0x80 then Buffer.add_char b (Char.unsafe_chr n)
  else begin
    Buffer.add_char b (Char.unsafe_chr (0x80 lor (n land 0x7f)));
    add_raw b (n lsr 7)
  end

(* ndnlint: hot *)
let add_uint b n =
  if n < 0 then invalid_arg "Varint.add_uint: negative";
  add_raw b n

(* ndnlint: hot *)
let zigzag n = (n lsl 1) lxor (n asr 62)

(* ndnlint: hot *)
let unzigzag n = (n lsr 1) lxor (- (n land 1))

(* ndnlint: hot *)
let add_int b n = add_raw b (zigzag n)

(* ndnlint: hot *)
let rec raw_size n = if n >= 0 && n < 0x80 then 1 else 1 + raw_size (n lsr 7)

(* ndnlint: hot *)
let uint_size n =
  if n < 0 then invalid_arg "Varint.uint_size: negative";
  raw_size n

(* ndnlint: hot *)
let int_size n = raw_size (zigzag n)

let rec read_loop s len pos shift acc start =
  if pos >= len then raise (Truncated start)
  else if pos - start >= max_bytes then raise (Overflow start)
  else begin
    let byte = Char.code (String.unsafe_get s pos) in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte < 0x80 then (acc, pos + 1)
    else read_loop s len (pos + 1) (shift + 7) acc start
  end

let read_uint s pos =
  if pos < 0 || pos >= String.length s then raise (Truncated pos);
  read_loop s (String.length s) pos 0 0 pos

let read_int s pos =
  let v, pos' = read_uint s pos in
  (unzigzag v, pos')
