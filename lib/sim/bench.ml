(* Micro-benchmark harness for the perf-regression suite (bench core).

   Lives in lib/ so benchmark executables and tests share one
   measurement discipline, but — per the repo's determinism rules
   (ndnlint D3: no wall-clock reads outside bin/) — it never reads a
   clock itself: callers inject [clock_ns], typically
   [Bechamel.Monotonic_clock] or [Unix.gettimeofday] scaled, from their
   executable. *)

type result = {
  label : string;
  ns_per_op : float;
  allocs_per_op : float;
      (* minor-heap words allocated per operation (Gc.minor_words) *)
  ops : int;
  runs : int;
}

let measure ~clock_ns ?(warmup = 2) ?(runs = 5) ~label ~ops f =
  if ops <= 0 then invalid_arg "Bench.measure: ops must be positive";
  if runs <= 0 then invalid_arg "Bench.measure: runs must be positive";
  for _ = 1 to warmup do
    f ops
  done;
  let best_ns = ref infinity in
  let best_words = ref infinity in
  for _ = 1 to runs do
    (* Settle the heap so a promotion triggered by earlier runs does not
       bill its minor collections to this one. *)
    Gc.full_major ();
    let t0 = clock_ns () in
    let w0 = Gc.minor_words () in
    f ops;
    let w1 = Gc.minor_words () in
    let t1 = clock_ns () in
    let per = 1.0 /. float_of_int ops in
    let ns = (t1 -. t0) *. per in
    let words = (w1 -. w0) *. per in
    if ns < !best_ns then best_ns := ns;
    if words < !best_words then best_words := words
  done;
  { label; ns_per_op = !best_ns; allocs_per_op = !best_words; ops; runs }

(* Minimum across runs, not mean: the distribution of a microbenchmark
   is one-sided (preemption, collections only ever add time), so the
   minimum is the best estimate of the code's intrinsic cost, and the
   allocation minimum discards first-run lazy initialization. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let result_to_json r =
  Printf.sprintf
    {|{"op": "%s", "ns_per_op": %.3f, "allocs_per_op": %.6f, "ops": %d, "runs": %d}|}
    (json_escape r.label) r.ns_per_op r.allocs_per_op r.ops r.runs

let pp_result ppf r =
  Format.fprintf ppf "%-28s %12.1f ns/op %12.3f words/op" r.label r.ns_per_op
    r.allocs_per_op
