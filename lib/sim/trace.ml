type kind =
  | Engine_step
  | Cs_hit
  | Cs_miss
  | Cs_insert
  | Cs_evict
  | Cs_expire
  | Interest_received
  | Interest_forwarded
  | Interest_collapsed
  | Data_received
  | Data_sent
  | Pit_timeout
  | Link_transmit
  | Link_drop
  | Rc_draw
  | Rc_fake_miss
  | Rc_hit
  | Cs_flush
  | Fault_link
  | Fault_crash
  | Fault_restart
  | Fault_producer
  | Pit_drop
  | Queue_drop
  | Nack_congested
  | Nack_no_route
  | Nack_pit_full
  | Nack_duplicate
  | Consumer_give_up

type event = {
  time : float;
  node : string;
  kind : kind;
  name : string;
  attrs : (string * string) list;
}

let kind_to_string = function
  | Engine_step -> "engine.step"
  | Cs_hit -> "cs.hit"
  | Cs_miss -> "cs.miss"
  | Cs_insert -> "cs.insert"
  | Cs_evict -> "cs.evict"
  | Cs_expire -> "cs.expire"
  | Interest_received -> "interest.recv"
  | Interest_forwarded -> "interest.fwd"
  | Interest_collapsed -> "interest.collapsed"
  | Data_received -> "data.recv"
  | Data_sent -> "data.sent"
  | Pit_timeout -> "pit.timeout"
  | Link_transmit -> "link.tx"
  | Link_drop -> "link.drop"
  | Rc_draw -> "rc.draw"
  | Rc_fake_miss -> "rc.fake_miss"
  | Rc_hit -> "rc.hit"
  | Cs_flush -> "cs.flush"
  | Fault_link -> "fault.link"
  | Fault_crash -> "fault.crash"
  | Fault_restart -> "fault.restart"
  | Fault_producer -> "fault.producer"
  | Pit_drop -> "pit.drop"
  | Queue_drop -> "queue.drop"
  | Nack_congested -> "nack.congested"
  | Nack_no_route -> "nack.no_route"
  | Nack_pit_full -> "nack.pit_full"
  | Nack_duplicate -> "nack.duplicate"
  | Consumer_give_up -> "consumer.give_up"

let all_kinds =
  [
    Engine_step; Cs_hit; Cs_miss; Cs_insert; Cs_evict; Cs_expire;
    Interest_received; Interest_forwarded; Interest_collapsed; Data_received;
    Data_sent; Pit_timeout; Link_transmit; Link_drop; Rc_draw; Rc_fake_miss;
    Rc_hit; Cs_flush; Fault_link; Fault_crash; Fault_restart; Fault_producer;
    Pit_drop; Queue_drop; Nack_congested; Nack_no_route; Nack_pit_full;
    Nack_duplicate; Consumer_give_up;
  ]

let all_kind_names = List.map kind_to_string all_kinds

(* Stable binary kind ids: the position of each kind's wire name in the
   checked-in registry [lib/sim/trace_kinds.txt].  ndnlint rule T4
   fails the build if a registered kind is missing here or if an id
   disagrees with the registry order, so the binary format and the
   registry cannot drift apart silently. *)
(* ndnlint: hot *)
let kind_id = function
  | Engine_step -> 0
  | Cs_hit -> 1
  | Cs_miss -> 2
  | Cs_insert -> 3
  | Cs_evict -> 4
  | Cs_expire -> 5
  | Interest_received -> 6
  | Interest_forwarded -> 7
  | Interest_collapsed -> 8
  | Data_received -> 9
  | Data_sent -> 10
  | Pit_timeout -> 11
  | Link_transmit -> 12
  | Link_drop -> 13
  | Rc_draw -> 14
  | Rc_fake_miss -> 15
  | Rc_hit -> 16
  | Cs_flush -> 17
  | Fault_link -> 18
  | Fault_crash -> 19
  | Fault_restart -> 20
  | Fault_producer -> 21
  | Pit_drop -> 22
  | Queue_drop -> 23
  | Nack_congested -> 24
  | Nack_no_route -> 25
  | Nack_pit_full -> 26
  | Nack_duplicate -> 27
  | Consumer_give_up -> 28

let kind_table = Array.of_list all_kinds

let kind_of_id i =
  if i < 0 || i >= Array.length kind_table then None else Some kind_table.(i)

let kind_of_string s = List.find_opt (fun k -> kind_to_string k = s) all_kinds

let pp_event ppf e =
  Format.fprintf ppf "[%.6f] %s %s" e.time e.node (kind_to_string e.kind);
  if e.name <> "" then Format.fprintf ppf " %s" e.name;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) e.attrs

(* --- tracers --- *)

type t = {
  on : bool;
  (* Growable buffer; [None] for sink-only tracers. *)
  mutable buf : event array option;
  mutable len : int;
  mutable sinks : (event -> unit) list;
}

let disabled = { on = false; buf = None; len = 0; sinks = [] }

let dummy_event = { time = 0.; node = ""; kind = Engine_step; name = ""; attrs = [] }

let create () = { on = true; buf = Some [||]; len = 0; sinks = [] }

let with_sink sink = { on = true; buf = None; len = 0; sinks = [ sink ] }

let enabled t = t.on

let push t e =
  match t.buf with
  | None -> ()
  | Some buf ->
    let buf =
      if t.len = Array.length buf then begin
        let nb = Array.make (max 64 (2 * t.len)) dummy_event in
        Array.blit buf 0 nb 0 t.len;
        t.buf <- Some nb;
        nb
      end
      else buf
    in
    buf.(t.len) <- e;
    t.len <- t.len + 1

let emit t e =
  if t.on then begin
    push t e;
    List.iter (fun sink -> sink e) t.sinks
  end

let subscribe t sink =
  if not t.on then invalid_arg "Trace.subscribe: tracer is disabled";
  t.sinks <- t.sinks @ [ sink ]

let length t = t.len

let events t =
  match t.buf with
  | None -> [||]
  | Some buf -> Array.sub buf 0 t.len

let clear t =
  (* No-op on [disabled], which must never be written (it is shared
     across domains). *)
  if t.on then begin
    t.len <- 0;
    match t.buf with None -> () | Some _ -> t.buf <- Some [||]
  end

let iter t f =
  match t.buf with
  | None -> ()
  | Some buf ->
    for i = 0 to t.len - 1 do
      f buf.(i)
    done

let merge_into ~into t =
  if not into.on then invalid_arg "Trace.merge_into: target tracer is disabled";
  iter t (emit into)

let tally t =
  let counts = Hashtbl.create 32 in
  iter t (fun e ->
      let key = (e.node, e.kind) in
      Hashtbl.replace counts key
        (1 + Option.value (Hashtbl.find_opt counts key) ~default:0));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun ((n1, k1), _) ((n2, k2), _) ->
         match String.compare n1 n2 with
         | 0 -> String.compare (kind_to_string k1) (kind_to_string k2)
         | c -> c)

let events_per_ms t =
  if t.len < 2 then Float.nan
  else
    match t.buf with
    | None -> Float.nan
    | Some buf ->
      let span = buf.(t.len - 1).time -. buf.(0).time in
      if span <= 0. then Float.nan else float_of_int t.len /. span

(* --- exporters --- *)

type format = Jsonl | Csv | Binary

let format_of_string s =
  match String.lowercase_ascii s with
  | "jsonl" | "json" -> Some Jsonl
  | "csv" -> Some Csv
  | "binary" | "bin" -> Some Binary
  | _ -> None

let format_to_string = function Jsonl -> "jsonl" | Csv -> "csv" | Binary -> "binary"

let json_escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let event_to_jsonl e =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "{\"time\":%.6f,\"node\":\"" e.time);
  json_escape_into b e.node;
  Buffer.add_string b "\",\"kind\":\"";
  Buffer.add_string b (kind_to_string e.kind);
  Buffer.add_string b "\",\"name\":\"";
  json_escape_into b e.name;
  Buffer.add_string b "\",\"attrs\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      json_escape_into b k;
      Buffer.add_string b "\":\"";
      json_escape_into b v;
      Buffer.add_char b '"')
    e.attrs;
  Buffer.add_string b "}}";
  Buffer.contents b

let csv_header = "time,node,kind,name,attrs"

let csv_field s =
  if
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let event_to_csv e =
  let attrs =
    String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) e.attrs)
  in
  String.concat ","
    [
      Printf.sprintf "%.6f" e.time;
      csv_field e.node;
      kind_to_string e.kind;
      csv_field e.name;
      csv_field attrs;
    ]

(* --- binary wire format (DESIGN §16) ---

   Stream layout: an 8-byte magic, a varint format version, a snapshot
   of the trace-kind registry (count, then each wire name
   length-prefixed; the snapshot index {e is} the kind id), then
   length-prefixed records.  Each record is a varint payload length
   followed by that many payload bytes, so a reader can validate
   framing and detect truncation without understanding every tag.

   Record payloads start with a tag byte:
   - [0x01] string definition: varint id (must equal the current table
     size), varint byte length, raw bytes.  Node labels, content names
     and attr {e keys} are interned this way — each distinct string
     crosses the wire once.
   - [0x02] event: varint kind id, zigzag-varint delta of the
     microsecond-quantized timestamp against the previous event, varint
     node string ref, varint name string ref, varint attr count, then
     per attr a varint key ref + varint value length + raw value bytes
     (values are not interned: latency draws and counters rarely
     repeat).

   Timestamps are rounded to integer microseconds — exactly the
   precision of the [%.6f] JSONL rendering — so the binary and text
   pipelines describe the same trace bit-for-bit.  Deltas may be
   negative (merged per-trial streams restart virtual time); zigzag
   keeps them short. *)

let binary_magic = "ndntrace"

let binary_version = 1

type encoder = {
  ebuf : Buffer.t;
  strings : (string, int) Hashtbl.t;
  mutable next_ref : int;
  mutable prev_us : int;
}

let encoder_create () =
  {
    ebuf = Buffer.create 65536;
    strings = Hashtbl.create 256;
    next_ref = 0;
    prev_us = 0;
  }

let encoder_reset enc =
  Buffer.clear enc.ebuf;
  Hashtbl.reset enc.strings;
  enc.next_ref <- 0;
  enc.prev_us <- 0

let encoder_length enc = Buffer.length enc.ebuf

let encoder_contents enc = Buffer.contents enc.ebuf

let encoder_output oc enc =
  Buffer.output_buffer oc enc.ebuf;
  Buffer.clear enc.ebuf

let encoder_add_header enc =
  Buffer.add_string enc.ebuf binary_magic;
  Varint.add_uint enc.ebuf binary_version;
  Varint.add_uint enc.ebuf (List.length all_kind_names);
  List.iter
    (fun n ->
      Varint.add_uint enc.ebuf (String.length n);
      Buffer.add_string enc.ebuf n)
    all_kind_names

(* Intern a string, emitting its definition record on first sight.
   Steady state is the [Hashtbl.find] hit — no option boxing. *)
(* ndnlint: hot *)
let intern enc s =
  try Hashtbl.find enc.strings s
  with Not_found ->
    let id = enc.next_ref in
    enc.next_ref <- id + 1;
    Hashtbl.add enc.strings s id;
    let slen = String.length s in
    let payload = 1 + Varint.uint_size id + Varint.uint_size slen + slen in
    Varint.add_uint enc.ebuf payload;
    Buffer.add_char enc.ebuf '\x01';
    Varint.add_uint enc.ebuf id;
    Varint.add_uint enc.ebuf slen;
    Buffer.add_string enc.ebuf s;
    id

(* Measure the attrs' payload bytes, interning keys as a side effect so
   their definition records precede the event record. *)
(* ndnlint: hot *)
let rec attrs_size enc acc l =
  match l with
  | [] -> acc
  | (k, v) :: rest ->
    let kr = intern enc k in
    let vlen = String.length v in
    attrs_size enc (acc + Varint.uint_size kr + Varint.uint_size vlen + vlen) rest

(* ndnlint: hot *)
let rec add_attrs enc l =
  match l with
  | [] -> ()
  | (k, v) :: rest ->
    Varint.add_uint enc.ebuf (Hashtbl.find enc.strings k);
    Varint.add_uint enc.ebuf (String.length v);
    Buffer.add_string enc.ebuf v;
    add_attrs enc rest

(* ndnlint: hot *)
let time_to_us t = int_of_float (Float.round (t *. 1e6))

(* ndnlint: hot *)
let encode_event enc e =
  let node_ref = intern enc e.node in
  let name_ref = intern enc e.name in
  let us = time_to_us e.time in
  let dt = us - enc.prev_us in
  let nattrs = List.length e.attrs in
  let kid = kind_id e.kind in
  let attr_bytes = attrs_size enc 0 e.attrs in
  let payload =
    1 + Varint.uint_size kid + Varint.int_size dt
    + Varint.uint_size node_ref + Varint.uint_size name_ref
    + Varint.uint_size nattrs + attr_bytes
  in
  Varint.add_uint enc.ebuf payload;
  Buffer.add_char enc.ebuf '\x02';
  Varint.add_uint enc.ebuf kid;
  Varint.add_int enc.ebuf dt;
  Varint.add_uint enc.ebuf node_ref;
  Varint.add_uint enc.ebuf name_ref;
  Varint.add_uint enc.ebuf nattrs;
  add_attrs enc e.attrs;
  enc.prev_us <- us

let render_binary t =
  let enc = encoder_create () in
  encoder_add_header enc;
  iter t (encode_event enc);
  Buffer.contents enc.ebuf

(* Flush at 64 KiB so a heavy-traffic export never holds the whole
   byte stream in memory. *)
let binary_flush_threshold = 65536

let write_binary oc t =
  let enc = encoder_create () in
  encoder_add_header enc;
  iter t (fun e ->
      encode_event enc e;
      if Buffer.length enc.ebuf >= binary_flush_threshold then
        encoder_output oc enc);
  encoder_output oc enc

let render fmt t =
  match fmt with
  | Binary -> render_binary t
  | Jsonl | Csv ->
    let b = Buffer.create (64 * (t.len + 1)) in
    (match fmt with
    | Jsonl | Binary -> ()
    | Csv ->
      Buffer.add_string b csv_header;
      Buffer.add_char b '\n');
    let line =
      match fmt with Jsonl | Binary -> event_to_jsonl | Csv -> event_to_csv
    in
    iter t (fun e ->
        Buffer.add_string b (line e);
        Buffer.add_char b '\n');
    Buffer.contents b

let write fmt oc t =
  match fmt with
  | Binary -> write_binary oc t
  | Jsonl | Csv ->
    (match fmt with
    | Jsonl | Binary -> ()
    | Csv ->
      output_string oc csv_header;
      output_char oc '\n');
    let line =
      match fmt with Jsonl | Binary -> event_to_jsonl | Csv -> event_to_csv
    in
    iter t (fun e ->
        output_string oc (line e);
        output_char oc '\n')
