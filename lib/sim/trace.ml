type kind =
  | Engine_step
  | Cs_hit
  | Cs_miss
  | Cs_insert
  | Cs_evict
  | Cs_expire
  | Interest_received
  | Interest_forwarded
  | Interest_collapsed
  | Data_received
  | Data_sent
  | Pit_timeout
  | Link_transmit
  | Link_drop
  | Rc_draw
  | Rc_fake_miss
  | Rc_hit
  | Cs_flush
  | Fault_link
  | Fault_crash
  | Fault_restart
  | Fault_producer
  | Pit_drop
  | Queue_drop
  | Nack_congested
  | Nack_no_route
  | Nack_pit_full
  | Nack_duplicate
  | Consumer_give_up

type event = {
  time : float;
  node : string;
  kind : kind;
  name : string;
  attrs : (string * string) list;
}

let kind_to_string = function
  | Engine_step -> "engine.step"
  | Cs_hit -> "cs.hit"
  | Cs_miss -> "cs.miss"
  | Cs_insert -> "cs.insert"
  | Cs_evict -> "cs.evict"
  | Cs_expire -> "cs.expire"
  | Interest_received -> "interest.recv"
  | Interest_forwarded -> "interest.fwd"
  | Interest_collapsed -> "interest.collapsed"
  | Data_received -> "data.recv"
  | Data_sent -> "data.sent"
  | Pit_timeout -> "pit.timeout"
  | Link_transmit -> "link.tx"
  | Link_drop -> "link.drop"
  | Rc_draw -> "rc.draw"
  | Rc_fake_miss -> "rc.fake_miss"
  | Rc_hit -> "rc.hit"
  | Cs_flush -> "cs.flush"
  | Fault_link -> "fault.link"
  | Fault_crash -> "fault.crash"
  | Fault_restart -> "fault.restart"
  | Fault_producer -> "fault.producer"
  | Pit_drop -> "pit.drop"
  | Queue_drop -> "queue.drop"
  | Nack_congested -> "nack.congested"
  | Nack_no_route -> "nack.no_route"
  | Nack_pit_full -> "nack.pit_full"
  | Nack_duplicate -> "nack.duplicate"
  | Consumer_give_up -> "consumer.give_up"

let all_kinds =
  [
    Engine_step; Cs_hit; Cs_miss; Cs_insert; Cs_evict; Cs_expire;
    Interest_received; Interest_forwarded; Interest_collapsed; Data_received;
    Data_sent; Pit_timeout; Link_transmit; Link_drop; Rc_draw; Rc_fake_miss;
    Rc_hit; Cs_flush; Fault_link; Fault_crash; Fault_restart; Fault_producer;
    Pit_drop; Queue_drop; Nack_congested; Nack_no_route; Nack_pit_full;
    Nack_duplicate; Consumer_give_up;
  ]

let all_kind_names = List.map kind_to_string all_kinds

let kind_of_string s = List.find_opt (fun k -> kind_to_string k = s) all_kinds

let pp_event ppf e =
  Format.fprintf ppf "[%.6f] %s %s" e.time e.node (kind_to_string e.kind);
  if e.name <> "" then Format.fprintf ppf " %s" e.name;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) e.attrs

(* --- tracers --- *)

type t = {
  on : bool;
  (* Growable buffer; [None] for sink-only tracers. *)
  mutable buf : event array option;
  mutable len : int;
  mutable sinks : (event -> unit) list;
}

let disabled = { on = false; buf = None; len = 0; sinks = [] }

let dummy_event = { time = 0.; node = ""; kind = Engine_step; name = ""; attrs = [] }

let create () = { on = true; buf = Some [||]; len = 0; sinks = [] }

let with_sink sink = { on = true; buf = None; len = 0; sinks = [ sink ] }

let enabled t = t.on

let push t e =
  match t.buf with
  | None -> ()
  | Some buf ->
    let buf =
      if t.len = Array.length buf then begin
        let nb = Array.make (max 64 (2 * t.len)) dummy_event in
        Array.blit buf 0 nb 0 t.len;
        t.buf <- Some nb;
        nb
      end
      else buf
    in
    buf.(t.len) <- e;
    t.len <- t.len + 1

let emit t e =
  if t.on then begin
    push t e;
    List.iter (fun sink -> sink e) t.sinks
  end

let subscribe t sink =
  if not t.on then invalid_arg "Trace.subscribe: tracer is disabled";
  t.sinks <- t.sinks @ [ sink ]

let length t = t.len

let events t =
  match t.buf with
  | None -> [||]
  | Some buf -> Array.sub buf 0 t.len

let clear t =
  (* No-op on [disabled], which must never be written (it is shared
     across domains). *)
  if t.on then begin
    t.len <- 0;
    match t.buf with None -> () | Some _ -> t.buf <- Some [||]
  end

let iter t f =
  match t.buf with
  | None -> ()
  | Some buf ->
    for i = 0 to t.len - 1 do
      f buf.(i)
    done

let merge_into ~into t =
  if not into.on then invalid_arg "Trace.merge_into: target tracer is disabled";
  iter t (emit into)

let tally t =
  let counts = Hashtbl.create 32 in
  iter t (fun e ->
      let key = (e.node, e.kind) in
      Hashtbl.replace counts key
        (1 + Option.value (Hashtbl.find_opt counts key) ~default:0));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun ((n1, k1), _) ((n2, k2), _) ->
         match String.compare n1 n2 with
         | 0 -> String.compare (kind_to_string k1) (kind_to_string k2)
         | c -> c)

let events_per_ms t =
  if t.len < 2 then Float.nan
  else
    match t.buf with
    | None -> Float.nan
    | Some buf ->
      let span = buf.(t.len - 1).time -. buf.(0).time in
      if span <= 0. then Float.nan else float_of_int t.len /. span

(* --- exporters --- *)

type format = Jsonl | Csv

let format_of_string s =
  match String.lowercase_ascii s with
  | "jsonl" | "json" -> Some Jsonl
  | "csv" -> Some Csv
  | _ -> None

let format_to_string = function Jsonl -> "jsonl" | Csv -> "csv"

let json_escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let event_to_jsonl e =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "{\"time\":%.6f,\"node\":\"" e.time);
  json_escape_into b e.node;
  Buffer.add_string b "\",\"kind\":\"";
  Buffer.add_string b (kind_to_string e.kind);
  Buffer.add_string b "\",\"name\":\"";
  json_escape_into b e.name;
  Buffer.add_string b "\",\"attrs\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      json_escape_into b k;
      Buffer.add_string b "\":\"";
      json_escape_into b v;
      Buffer.add_char b '"')
    e.attrs;
  Buffer.add_string b "}}";
  Buffer.contents b

let csv_header = "time,node,kind,name,attrs"

let csv_field s =
  if
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let event_to_csv e =
  let attrs =
    String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) e.attrs)
  in
  String.concat ","
    [
      Printf.sprintf "%.6f" e.time;
      csv_field e.node;
      kind_to_string e.kind;
      csv_field e.name;
      csv_field attrs;
    ]

let render fmt t =
  let b = Buffer.create (64 * (t.len + 1)) in
  (match fmt with
  | Jsonl -> ()
  | Csv ->
    Buffer.add_string b csv_header;
    Buffer.add_char b '\n');
  let line = match fmt with Jsonl -> event_to_jsonl | Csv -> event_to_csv in
  iter t (fun e ->
      Buffer.add_string b (line e);
      Buffer.add_char b '\n');
  Buffer.contents b

let write fmt oc t =
  (match fmt with
  | Jsonl -> ()
  | Csv ->
    output_string oc csv_header;
    output_char oc '\n');
  let line = match fmt with Jsonl -> event_to_jsonl | Csv -> event_to_csv in
  iter t (fun e ->
      output_string oc (line e);
      output_char oc '\n')
