type t = {
  lo : float;
  hi : float;
  nbins : int;
  width : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: empty range";
  {
    lo;
    hi;
    nbins = bins;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    total = 0;
  }

let add t x =
  let idx = int_of_float (Float.floor ((x -. t.lo) /. t.width)) in
  let idx = if idx < 0 then 0 else if idx >= t.nbins then t.nbins - 1 else idx in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.total <- t.total + 1

let of_samples ?(bins = 40) xs =
  if Array.length xs = 0 then invalid_arg "Histogram.of_samples: empty array";
  let lo = Array.fold_left Float.min infinity xs in
  let hi = Array.fold_left Float.max neg_infinity xs in
  (* Widen degenerate ranges so every sample has a bin. *)
  let hi = if hi <= lo then lo +. 1. else hi +. (1e-9 *. (hi -. lo)) in
  let t = create ~lo ~hi ~bins in
  Array.iter (add t) xs;
  t

let count t = t.total

let bins t = t.nbins

let bin_edges t =
  Array.init t.nbins (fun i ->
      let l = t.lo +. (float_of_int i *. t.width) in
      (l, l +. t.width))

let bin_center t i = t.lo +. ((float_of_int i +. 0.5) *. t.width)

let counts t = Array.copy t.counts

let probability t i =
  if t.total = 0 then 0. else float_of_int t.counts.(i) /. float_of_int t.total

let pdf t = Array.init t.nbins (fun i -> probability t i /. t.width)

let same_layout a b = a.lo = b.lo && a.hi = b.hi && a.nbins = b.nbins

let merge a b =
  if not (same_layout a b) then invalid_arg "Histogram.merge: layouts differ";
  let t = create ~lo:a.lo ~hi:a.hi ~bins:a.nbins in
  for i = 0 to a.nbins - 1 do
    t.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  t.total <- a.total + b.total;
  t

let merge_into ~into b =
  if not (same_layout into b) then invalid_arg "Histogram.merge_into: layouts differ";
  for i = 0 to into.nbins - 1 do
    into.counts.(i) <- into.counts.(i) + b.counts.(i)
  done;
  into.total <- into.total + b.total

let equal a b = same_layout a b && a.counts = b.counts && a.total = b.total

let pp_ascii ?(width = 50) ppf t =
  let maxc = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      let bar = c * width / maxc in
      Format.fprintf ppf "%8.3f |%s %d@." (bin_center t i) (String.make bar '#') c)
    t.counts

let pp_two ?(width = 30) ~labels ppf (a, b) =
  if not (same_layout a b) then invalid_arg "Histogram.pp_two: layouts differ";
  let la, lb = labels in
  let maxa = Array.fold_left max 1 a.counts and maxb = Array.fold_left max 1 b.counts in
  Format.fprintf ppf "%10s  %-*s | %-*s@." "center" width la width lb;
  for i = 0 to a.nbins - 1 do
    let bar_a = a.counts.(i) * width / maxa in
    let bar_b = b.counts.(i) * width / maxb in
    Format.fprintf ppf "%10.3f  %-*s | %-*s@." (bin_center a i)
      width (String.make bar_a '#')
      width (String.make bar_b '*')
  done

let overlap a b =
  if not (same_layout a b) then invalid_arg "Histogram.overlap: layouts differ";
  let acc = ref 0. in
  for i = 0 to a.nbins - 1 do
    acc := !acc +. Float.min (probability a i) (probability b i)
  done;
  !acc
