(** Fold-as-you-go trace analyzers: one pass, no materialized trace.

    An accumulator ingests {!Trace.event}s one at a time — from a live
    tracer, a binary stream or a JSONL stream — and summarizes what
    the old jq pipelines computed offline: per-kind counts, the
    timing-attack confusion matrix, per-tier cache hit rates, and
    link-delay {!Stats}/{!Histogram}.

    {b Merge law.}  Accumulators are mergeable in the sense
    [Sim.Parallel] tests: feeding a stream into one accumulator and
    feeding disjoint splits into several then {!merge}-ing agree —
    exactly for every counter, and within float tolerance for the
    Welford statistics (whose parallel merge reassociates additions).
    Per-shard or per-trial partial folds therefore combine
    deterministically.

    {b Bit-for-bit.}  Times are quantized through {!Trace.time_to_us}
    (the binary wire precision, which equals the JSONL [%.6f]
    precision), and attr values cross both formats verbatim, so a
    binary trace and its JSONL rendering produce byte-identical
    {!render_json} summaries. *)

type t
(** A mutable streaming accumulator. *)

val create : unit -> t

val feed : t -> Trace.event -> unit

val merge : t -> t -> t
(** Combine two partial folds into a fresh accumulator (inputs are
    left usable). *)

val of_source : Trace_reader.source -> (t, Trace_reader.error) result
(** Sniff the stream format and fold the whole trace into a fresh
    accumulator. *)

(** {1 Summaries} *)

val events : t -> int

val span_us : t -> int
(** Microseconds between the earliest and latest event (0 when empty). *)

val kind_count : t -> Trace.kind -> int

val distinct_nodes : t -> int

val distinct_names : t -> int

type attack = {
  warm : int;  (** Probed names previously cached by a user fetch. *)
  cold : int;  (** Probed names never requested before. *)
  tp : int;  (** Warm names on which the cache revealed a hit. *)
  tn : int;  (** Cold names on which it did not. *)
  tpr : float;
  tnr : float;
  accuracy : float;  (** [(tpr + tnr) / 2] — the paper's balanced accuracy. *)
}

val attack : t -> attack option
(** The timing-attack confusion matrix over [/warm/]- and
    [/cold/]-tagged content names; [None] when the trace contains no
    such probes. *)

type tier_row = {
  tier : int option;  (** [None] = untiered nodes ("U", "R", "engine", …). *)
  routers : int;
  hits : int;
  misses : int;
}

val tiers : t -> tier_row list
(** Cache hits/misses per topology tier (parsed from the generated
    router labels ["<prefix>-t<tier>-n<i>"]), sorted by tier with the
    untiered bucket last. *)

val delay : t -> Stats.t
(** Streaming stats over [link.tx] [delay_ms] attrs.  The returned
    accumulator is live — do not mutate it. *)

val delay_hist : t -> Histogram.t
(** Fixed-layout histogram (0–100 ms, 20 bins, out-of-range clamped)
    of the same samples, so partial folds always merge. *)

val render_json : t -> string
(** Deterministic multi-line JSON summary.  Floats are rendered with
    [%.17g] (exact double round-trip), so two equal summaries are
    equal bytes — the contract the CI smoke job diffs across the
    binary and JSONL pipelines. *)

val render_text : t -> string
(** Human-readable summary (same content, looser formatting). *)
