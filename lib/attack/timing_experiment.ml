type phase = {
  phase_start : float;
  phase_end : float;
  phase_warm : int;
  phase_cold : int;
  phase_accuracy : float;
  phase_fnr : float;
}

type result = {
  hit_samples : float array;
  miss_samples : float array;
  hit_hist : Sim.Histogram.t;
  miss_hist : Sim.Histogram.t;
  success_rate : float;
  timeouts : int;
  trace : Sim.Trace.t;
  phases : phase list;
}

(* One measurement run over a fresh setup = the paper's "every time
   starting with an empty cache for R".  Runs are mutually independent
   (run [r] is a pure function of [seed + r]), which is what lets
   [collect] fan them out over domains below.

   Each observation is (issue time, rtt option): the timestamp costs
   nothing behavioural — no extra RNG draws or engine events — and lets
   faulted campaigns attribute every probe to a fault phase. *)
let collect_run ~make_setup ~contents ~seed ~trace run =
  let warm_obs = ref [] and cold_obs = ref [] in
  (* A per-run tracer keeps each domain writing to its own buffer; the
     buffers are merged in run order afterwards. *)
  let tracer = if trace then Sim.Trace.create () else Sim.Trace.disabled in
  let setup = make_setup ~seed:(seed + run) ~tracer in
  let net = setup.Ndn.Network.net in
  for i = 0 to contents - 1 do
    let warm_name =
      Ndn.Name.of_string (Printf.sprintf "/prod/run%d/warm/%d" run i)
    in
    let cold_name =
      Ndn.Name.of_string (Printf.sprintf "/prod/run%d/cold/%d" run i)
    in
    Probe.warm setup warm_name;
    let issued = Ndn.Network.now net in
    warm_obs :=
      (issued, Probe.measure setup ~from:setup.Ndn.Network.adversary warm_name)
      :: !warm_obs;
    let issued = Ndn.Network.now net in
    cold_obs :=
      (issued, Probe.measure setup ~from:setup.Ndn.Network.adversary cold_name)
      :: !cold_obs
  done;
  (List.rev !warm_obs, List.rev !cold_obs, tracer)

(* The faulted variant.  [Probe.measure] drains the whole event queue,
   which with a schedule installed would fire every fault during the
   first probe; instead each warm-probe-probe triple is scheduled at a
   fixed virtual time and the engine runs once, so probes genuinely
   interleave with the fault timeline. *)
let collect_run_faulted ~make_setup ~contents ~seed ~trace ~faults ~interval
    ~lag run =
  let warm_obs = ref [] and cold_obs = ref [] in
  let tracer = if trace then Sim.Trace.create () else Sim.Trace.disabled in
  let setup = make_setup ~seed:(seed + run) ~tracer in
  let net = setup.Ndn.Network.net in
  (match Ndn.Network.install_faults net faults with
  | Ok () -> ()
  | Error msg ->
    invalid_arg ("Timing_experiment: fault schedule rejected: " ^ msg));
  let user = setup.Ndn.Network.user in
  let adversary = setup.Ndn.Network.adversary in
  (* The adversary's own engine: identical to the network engine in
     legacy mode, the adversary's shard engine in shard mode — where
     reading any other shard's clock from inside a callback would race. *)
  let adv_engine = Ndn.Node.engine adversary in
  for i = 0 to contents - 1 do
    let warm_name =
      Ndn.Name.of_string (Printf.sprintf "/prod/run%d/warm/%d" run i)
    in
    let cold_name =
      Ndn.Name.of_string (Printf.sprintf "/prod/run%d/cold/%d" run i)
    in
    let at = float_of_int i *. interval in
    (* The user's request and the adversary's probe are [lag] apart, as
       in the real attack (the adversary does not observe the user's
       fetch).  A router reboot landing inside that window flushes the
       cache and turns the warm probe into a false negative — exactly
       the signal-degradation mechanism churn buys.  Scheduled through
       the issuing node so the events stay keyed (and therefore
       shard-count-invariant) in shard mode. *)
    Ndn.Node.schedule_app_at user ~time:at (fun () ->
        Ndn.Node.express_interest user
          ~on_data:(fun ~rtt_ms:_ _ -> ())
          warm_name);
    Ndn.Node.schedule_app_at adversary ~time:(at +. lag) (fun () ->
        let probe obs name k =
          let issued = Sim.Engine.now adv_engine in
          Ndn.Node.express_interest adversary
            ~on_data:(fun ~rtt_ms _ ->
              obs := (issued, Some rtt_ms) :: !obs;
              k ())
            ~on_timeout:(fun () ->
              obs := (issued, None) :: !obs;
              k ())
            name
        in
        (* probe warm (hit sample) then cold (miss sample), the
           cold chained so its RTT is not polluted by the warm
           probe's own traffic. *)
        probe warm_obs warm_name (fun () ->
            probe cold_obs cold_name (fun () -> ())))
  done;
  Ndn.Network.run net;
  (List.rev !warm_obs, List.rev !cold_obs, tracer)

let default_interval ~faults ~contents =
  let horizon =
    List.fold_left Float.max 0. (Sim.Fault.phase_boundaries faults)
  in
  Float.max 50. ((horizon +. 1000.) /. float_of_int (max 1 contents))

let collect ?jobs ?(shards = 1) ?(trace = false) ?(faults = [])
    ?probe_interval_ms ?probe_lag_ms ~make_setup ~contents ~runs ~seed () =
  (* Per-run sample lists (and trace buffers) are concatenated in run
     order, so the merged arrays — and the exported trace bytes — are
     identical to a sequential (jobs = 1) campaign. *)
  let jobs =
    (* Both fan-out axes multiply: [jobs] trial workers each spinning a
       [shards]-domain partition.  An unspecified [jobs] is derated so
       the product stays within the hardware; an explicit one is only
       validated. *)
    match jobs with
    | Some j -> j
    | None -> max 1 (Sim.Parallel.default_jobs () / max 1 shards)
  in
  (match Sim.Parallel.check_domains ~jobs:(max 1 (min jobs runs)) ~shards with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Timing_experiment: " ^ msg));
  let runner =
    if faults = [] then collect_run ~make_setup ~contents ~seed ~trace
    else
      let interval =
        match probe_interval_ms with
        | Some i -> i
        | None -> default_interval ~faults ~contents
      in
      let lag =
        match probe_lag_ms with Some l -> l | None -> interval /. 2.
      in
      collect_run_faulted ~make_setup ~contents ~seed ~trace ~faults ~interval
        ~lag
  in
  let per_run = Sim.Parallel.map ~jobs runs runner in
  let warm_obs =
    List.concat_map (fun (w, _, _) -> w) (Array.to_list per_run)
  in
  let cold_obs =
    List.concat_map (fun (_, c, _) -> c) (Array.to_list per_run)
  in
  let merged =
    if trace then begin
      let into = Sim.Trace.create () in
      Array.iter (fun (_, _, tr) -> Sim.Trace.merge_into ~into tr) per_run;
      into
    end
    else Sim.Trace.disabled
  in
  (Array.of_list warm_obs, Array.of_list cold_obs, merged)

(* [0, b1), [b1, b2), …, [bn, ∞): one segment per network regime. *)
let segments faults =
  let rec go start = function
    | [] -> [ (start, infinity) ]
    | b :: rest -> if b <= start then go start rest else (start, b) :: go b rest
  in
  go 0. (Sim.Fault.phase_boundaries faults)

let phase_metrics ~detector ~warm_obs ~cold_obs (phase_start, phase_end) =
  let in_window (t, _) = t >= phase_start && t < phase_end in
  let warm = Array.to_list warm_obs |> List.filter in_window in
  let cold = Array.to_list cold_obs |> List.filter in_window in
  (* A warm probe answered slower than the threshold — or not at all —
     is a false negative: the adversary concludes the user did not
     request the content. *)
  let classified_hit = function
    | _, Some rtt -> Detector.classify detector rtt = Detector.Hit
    | _, None -> false
  in
  let count p l = List.length (List.filter p l) in
  let warm_hits = count classified_hit warm in
  let cold_misses = count (fun o -> not (classified_hit o)) cold in
  let ratio num den =
    if den = 0 then Float.nan else float_of_int num /. float_of_int den
  in
  let tpr = ratio warm_hits (List.length warm) in
  let tnr = ratio cold_misses (List.length cold) in
  {
    phase_start;
    phase_end;
    phase_warm = List.length warm;
    phase_cold = List.length cold;
    phase_accuracy = (tpr +. tnr) /. 2.;
    phase_fnr = 1. -. tpr;
  }

let summarize ~bins ~faults (warm_obs, cold_obs, trace) =
  let successes obs =
    Array.to_list obs
    |> List.filter_map (fun (_, rtt) -> rtt)
    |> Array.of_list
  in
  let hit_samples = successes warm_obs in
  let miss_samples = successes cold_obs in
  let timeouts =
    let missing obs =
      Array.fold_left
        (fun acc (_, rtt) -> if rtt = None then acc + 1 else acc)
        0 obs
    in
    missing warm_obs + missing cold_obs
  in
  let lo =
    Float.min
      (Array.fold_left Float.min infinity hit_samples)
      (Array.fold_left Float.min infinity miss_samples)
  in
  let hi =
    Float.max
      (Array.fold_left Float.max neg_infinity hit_samples)
      (Array.fold_left Float.max neg_infinity miss_samples)
  in
  let hi = if hi <= lo then lo +. 1. else hi +. 1e-6 in
  let hit_hist = Sim.Histogram.create ~lo ~hi ~bins in
  let miss_hist = Sim.Histogram.create ~lo ~hi ~bins in
  Array.iter (Sim.Histogram.add hit_hist) hit_samples;
  Array.iter (Sim.Histogram.add miss_hist) miss_samples;
  let success_rate = Detector.success_rate ~hit_samples ~miss_samples () in
  let phases =
    if
      faults = []
      || Array.length hit_samples = 0
      || Array.length miss_samples = 0
    then []
    else
      let detector = Detector.train ~hit_samples ~miss_samples in
      List.map
        (phase_metrics ~detector ~warm_obs ~cold_obs)
        (segments faults)
  in
  {
    hit_samples;
    miss_samples;
    hit_hist;
    miss_hist;
    success_rate;
    timeouts;
    trace;
    phases;
  }

let run ~make_setup ?(contents = 100) ?(runs = 10) ?(seed = 7) ?(bins = 40)
    ?jobs ?shards ?trace ?(faults = []) ?probe_interval_ms ?probe_lag_ms () =
  summarize ~bins ~faults
    (collect ?jobs ?shards ?trace ~faults ?probe_interval_ms ?probe_lag_ms
       ~make_setup ~contents ~runs ~seed ())

let run_producer_privacy = run

let false_negative_rate r =
  (* Warm-probe-weighted average of the per-phase rates; [nan] when the
     campaign ran without faults (no phases). *)
  match List.filter (fun p -> p.phase_warm > 0) r.phases with
  | [] -> Float.nan
  | ps ->
    let n = List.fold_left (fun acc p -> acc + p.phase_warm) 0 ps in
    List.fold_left
      (fun acc p -> acc +. (p.phase_fnr *. float_of_int p.phase_warm))
      0. ps
    /. float_of_int n

let pp_result ppf r =
  Format.fprintf ppf
    "hits: n=%d mean=%.3fms  misses: n=%d mean=%.3fms  timeouts=%d@."
    (Array.length r.hit_samples)
    (Sim.Stats.mean_of r.hit_samples)
    (Array.length r.miss_samples)
    (Sim.Stats.mean_of r.miss_samples)
    r.timeouts;
  Sim.Histogram.pp_two ~labels:("cache hit", "cache miss") ppf
    (r.hit_hist, r.miss_hist);
  Format.fprintf ppf "distinguisher success rate: %.2f%%@."
    (100. *. r.success_rate);
  if r.phases <> [] then begin
    Format.fprintf ppf
      "per-phase separability (phases delimited by fault events):@.";
    List.iter
      (fun p ->
        let fmt_end =
          if Float.is_integer p.phase_end && Float.is_finite p.phase_end then
            Printf.sprintf "%.0f" p.phase_end
          else if Float.is_finite p.phase_end then
            Printf.sprintf "%.1f" p.phase_end
          else "end"
        in
        Format.fprintf ppf
          "  [%8.0f, %8s) ms  warm=%-4d cold=%-4d accuracy=%s fnr=%s@."
          p.phase_start fmt_end p.phase_warm p.phase_cold
          (if Float.is_nan p.phase_accuracy then "  n/a"
           else Printf.sprintf "%5.1f%%" (100. *. p.phase_accuracy))
          (if Float.is_nan p.phase_fnr then "  n/a"
           else Printf.sprintf "%5.1f%%" (100. *. p.phase_fnr)))
      r.phases
  end
