type result = {
  hit_samples : float array;
  miss_samples : float array;
  hit_hist : Sim.Histogram.t;
  miss_hist : Sim.Histogram.t;
  success_rate : float;
  timeouts : int;
  trace : Sim.Trace.t;
}

(* One measurement run over a fresh setup = the paper's "every time
   starting with an empty cache for R".  Runs are mutually independent
   (run [r] is a pure function of [seed + r]), which is what lets
   [collect] fan them out over domains below. *)
let collect_run ~make_setup ~contents ~seed ~trace run =
  let hits = ref [] and misses = ref [] and timeouts = ref 0 in
  (* A per-run tracer keeps each domain writing to its own buffer; the
     buffers are merged in run order afterwards. *)
  let tracer = if trace then Sim.Trace.create () else Sim.Trace.disabled in
  let setup = make_setup ~seed:(seed + run) ~tracer in
  for i = 0 to contents - 1 do
    let warm_name =
      Ndn.Name.of_string (Printf.sprintf "/prod/run%d/warm/%d" run i)
    in
    let cold_name =
      Ndn.Name.of_string (Printf.sprintf "/prod/run%d/cold/%d" run i)
    in
    Probe.warm setup warm_name;
    (match Probe.measure setup ~from:setup.Ndn.Network.adversary warm_name with
    | Some rtt -> hits := rtt :: !hits
    | None -> incr timeouts);
    match Probe.measure setup ~from:setup.Ndn.Network.adversary cold_name with
    | Some rtt -> misses := rtt :: !misses
    | None -> incr timeouts
  done;
  (List.rev !hits, List.rev !misses, !timeouts, tracer)

let collect ?jobs ?(trace = false) ~make_setup ~contents ~runs ~seed () =
  (* Per-run sample lists (and trace buffers) are concatenated in run
     order, so the merged arrays — and the exported trace bytes — are
     identical to a sequential (jobs = 1) campaign. *)
  let per_run =
    Sim.Parallel.map ?jobs runs (collect_run ~make_setup ~contents ~seed ~trace)
  in
  let hits = List.concat_map (fun (h, _, _, _) -> h) (Array.to_list per_run) in
  let misses = List.concat_map (fun (_, m, _, _) -> m) (Array.to_list per_run) in
  let timeouts = Array.fold_left (fun acc (_, _, t, _) -> acc + t) 0 per_run in
  let merged =
    if trace then begin
      let into = Sim.Trace.create () in
      Array.iter (fun (_, _, _, tr) -> Sim.Trace.merge_into ~into tr) per_run;
      into
    end
    else Sim.Trace.disabled
  in
  (Array.of_list hits, Array.of_list misses, timeouts, merged)

let summarize ~bins (hit_samples, miss_samples, timeouts, trace) =
  let lo =
    Float.min
      (Array.fold_left Float.min infinity hit_samples)
      (Array.fold_left Float.min infinity miss_samples)
  in
  let hi =
    Float.max
      (Array.fold_left Float.max neg_infinity hit_samples)
      (Array.fold_left Float.max neg_infinity miss_samples)
  in
  let hi = if hi <= lo then lo +. 1. else hi +. 1e-6 in
  let hit_hist = Sim.Histogram.create ~lo ~hi ~bins in
  let miss_hist = Sim.Histogram.create ~lo ~hi ~bins in
  Array.iter (Sim.Histogram.add hit_hist) hit_samples;
  Array.iter (Sim.Histogram.add miss_hist) miss_samples;
  let success_rate =
    Detector.success_rate ~hit_samples ~miss_samples ()
  in
  { hit_samples; miss_samples; hit_hist; miss_hist; success_rate; timeouts; trace }

let run ~make_setup ?(contents = 100) ?(runs = 10) ?(seed = 7) ?(bins = 40)
    ?jobs ?trace () =
  summarize ~bins (collect ?jobs ?trace ~make_setup ~contents ~runs ~seed ())

let run_producer_privacy = run

let pp_result ppf r =
  Format.fprintf ppf
    "hits: n=%d mean=%.3fms  misses: n=%d mean=%.3fms  timeouts=%d@."
    (Array.length r.hit_samples)
    (Sim.Stats.mean_of r.hit_samples)
    (Array.length r.miss_samples)
    (Sim.Stats.mean_of r.miss_samples)
    r.timeouts;
  Sim.Histogram.pp_two ~labels:("cache hit", "cache miss") ppf
    (r.hit_hist, r.miss_hist);
  Format.fprintf ppf "distinguisher success rate: %.2f%%@."
    (100. *. r.success_rate)
