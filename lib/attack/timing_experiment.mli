(** The measurement campaigns behind Figure 3: collect hit-vs-miss RTT
    distributions in a given topology and quantify how well the
    adversary distinguishes them. *)

type result = {
  hit_samples : float array;  (** RTTs of probes served from the probed cache. *)
  miss_samples : float array;  (** RTTs of probes served from beyond it. *)
  hit_hist : Sim.Histogram.t;
  miss_hist : Sim.Histogram.t;  (** Shared bin layout with [hit_hist]. *)
  success_rate : float;
      (** Held-out balanced accuracy of the trained {!Detector} — the
          number the paper reports (99.9% LAN, >99% WAN, 59%
          producer). *)
  timeouts : int;
  trace : Sim.Trace.t;
      (** Per-run traces merged in run order; {!Sim.Trace.disabled}
          unless the campaign ran with [trace:true]. *)
}

val run :
  make_setup:(seed:int -> tracer:Sim.Trace.t -> Ndn.Network.probe_setup) ->
  ?contents:int ->
  ?runs:int ->
  ?seed:int ->
  ?bins:int ->
  ?jobs:int ->
  ?trace:bool ->
  unit ->
  result
(** Reproduce the paper's procedure: per run (fresh caches), the
    producer publishes [contents] objects, the honest user U fetches
    the "warm" half, and the adversary then probes warm names (hit
    samples) and never-requested names (miss samples).  Defaults:
    [contents = 100] per run, [runs = 10], 40 histogram [bins].

    Runs execute on [jobs] domains via {!Sim.Parallel} — run [r] is a
    pure function of [seed + r] and per-run samples are concatenated in
    run order, so the result is identical for any [jobs].

    [make_setup] receives a per-run [tracer]: {!Sim.Trace.disabled}
    unless [trace] (default [false]) is set, in which case each run
    buffers its events privately and the buffers are merged in run
    order into [result.trace] — rendering that trace yields the same
    bytes for any [jobs]. *)

val run_producer_privacy :
  make_setup:(seed:int -> tracer:Sim.Trace.t -> Ndn.Network.probe_setup) ->
  ?contents:int ->
  ?runs:int ->
  ?seed:int ->
  ?bins:int ->
  ?jobs:int ->
  ?trace:bool ->
  unit ->
  result
(** Variant for Figure 3(c): "hit" means {e some consumer} recently
    requested the content (it sits in R's cache), "miss" means only
    the producer has it.  Identical mechanics, different
    interpretation; kept separate so call sites document which claim
    they reproduce. *)

val pp_result : Format.formatter -> result -> unit
(** Histograms side by side plus the distinguisher success rate. *)
