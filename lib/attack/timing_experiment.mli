(** The measurement campaigns behind Figure 3: collect hit-vs-miss RTT
    distributions in a given topology and quantify how well the
    adversary distinguishes them. *)

type phase = {
  phase_start : float;  (** Inclusive start (virtual ms within a run). *)
  phase_end : float;  (** Exclusive end; [infinity] for the last phase. *)
  phase_warm : int;  (** Warm (should-be-hit) probes issued in the window. *)
  phase_cold : int;
  phase_accuracy : float;
      (** Balanced accuracy of the campaign-wide detector restricted to
          this window's probes (timeouts classified as misses); [nan]
          when a side is empty. *)
  phase_fnr : float;
      (** False-negative rate: warm probes the adversary classified as
          "not cached" (slow answer or timeout).  This is the headline
          churn metric — every router restart flushes the cache, so the
          user's requests stop being observable until re-warmed. *)
}

type result = {
  hit_samples : float array;  (** RTTs of probes served from the probed cache. *)
  miss_samples : float array;  (** RTTs of probes served from beyond it. *)
  hit_hist : Sim.Histogram.t;
  miss_hist : Sim.Histogram.t;  (** Shared bin layout with [hit_hist]. *)
  success_rate : float;
      (** Held-out balanced accuracy of the trained {!Detector} — the
          number the paper reports (99.9% LAN, >99% WAN, 59%
          producer). *)
  timeouts : int;
  trace : Sim.Trace.t;
      (** Per-run traces merged in run order; {!Sim.Trace.disabled}
          unless the campaign ran with [trace:true]. *)
  phases : phase list;
      (** Separability per fault phase (segments of
          {!Sim.Fault.phase_boundaries}); empty without [faults]. *)
}

val run :
  make_setup:(seed:int -> tracer:Sim.Trace.t -> Ndn.Network.probe_setup) ->
  ?contents:int ->
  ?runs:int ->
  ?seed:int ->
  ?bins:int ->
  ?jobs:int ->
  ?shards:int ->
  ?trace:bool ->
  ?faults:Sim.Fault.schedule ->
  ?probe_interval_ms:float ->
  ?probe_lag_ms:float ->
  unit ->
  result
(** Reproduce the paper's procedure: per run (fresh caches), the
    producer publishes [contents] objects, the honest user U fetches
    the "warm" half, and the adversary then probes warm names (hit
    samples) and never-requested names (miss samples).  Defaults:
    [contents = 100] per run, [runs = 10], 40 histogram [bins].

    Runs execute on [jobs] domains via {!Sim.Parallel} — run [r] is a
    pure function of [seed + r] and per-run samples are concatenated in
    run order, so the result is identical for any [jobs].

    [shards] (default 1) declares how many {!Sim.Shard} domains each
    run's network spins up — the campaign does not shard networks
    itself; pass a [make_setup] that builds them (e.g.
    [Ndn.Network.lan ~shards]) and declare the count here so the two
    fan-out axes can be budgeted together.  When [jobs] is omitted it
    is derated to [default_jobs () / shards] (at least 1); an explicit
    [jobs] is validated with {!Sim.Parallel.check_domains}, and the
    campaign raises [Invalid_argument] when [jobs * shards] exceeds the
    domain budget.

    [make_setup] receives a per-run [tracer]: {!Sim.Trace.disabled}
    unless [trace] (default [false]) is set, in which case each run
    buffers its events privately and the buffers are merged in run
    order into [result.trace] — rendering that trace yields the same
    bytes for any [jobs].

    [faults] (default empty — byte-identical to the unfaulted
    procedure) installs the schedule into every run's fresh network and
    paces the warm/probe/probe triples across the fault horizon, one
    triple every [probe_interval_ms] (default: the horizon plus a tail,
    divided by [contents], floored at 50 ms), so probes sample every
    network regime; [result.phases] then reports per-phase
    separability.  Within each triple the adversary probes
    [probe_lag_ms] (default: half the interval) after the user's fetch
    — the adversary cannot observe the fetch, so a router reboot inside
    that window flushes the cache and produces a false negative.
    @raise Invalid_argument if the schedule names unknown nodes or
    links. *)

val run_producer_privacy :
  make_setup:(seed:int -> tracer:Sim.Trace.t -> Ndn.Network.probe_setup) ->
  ?contents:int ->
  ?runs:int ->
  ?seed:int ->
  ?bins:int ->
  ?jobs:int ->
  ?shards:int ->
  ?trace:bool ->
  ?faults:Sim.Fault.schedule ->
  ?probe_interval_ms:float ->
  ?probe_lag_ms:float ->
  unit ->
  result
(** Variant for Figure 3(c): "hit" means {e some consumer} recently
    requested the content (it sits in R's cache), "miss" means only
    the producer has it.  Identical mechanics, different
    interpretation; kept separate so call sites document which claim
    they reproduce. *)

val false_negative_rate : result -> float
(** Warm-probe-weighted average of the per-phase false-negative rates;
    [nan] for an unfaulted campaign (no phases). *)

val pp_result : Format.formatter -> result -> unit
(** Histograms side by side plus the distinguisher success rate, and —
    for faulted campaigns — a per-phase separability table. *)
