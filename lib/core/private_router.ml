type countermeasure =
  | No_countermeasure
  | Delay_private of Delay.t
  | Random_cache_mimic of { kdist : Kdist.t; grouping : Grouping.t }

type stats = {
  public_hits : int;
  private_hits_served : int;
  private_hits_hidden : int;
  misses_padded : int;
}

type internal_stats = {
  mutable public_hits : int;
  mutable private_hits_served : int;
  mutable private_hits_hidden : int;
  mutable misses_padded : int;
}

type t = {
  node : Ndn.Node.t;
  cm : countermeasure;
  marking : Marking.t;
  fetch_delays : float Ndn.Name.Tbl.t;
  hit_counts : int ref Ndn.Name.Tbl.t;
  pending_private : unit Ndn.Name.Tbl.t;
  registry : Ndn.Name.t Ndn.Name.Tbl.t;
  algorithm : Random_cache.t option;
  s : internal_stats;
}

let node t = t.node
let countermeasure t = t.cm
let marking t = t.marking

let fetch_delay t name = Ndn.Name.Tbl.find_opt t.fetch_delays name

let stats t : stats =
  {
    public_hits = t.s.public_hits;
    private_hits_served = t.s.private_hits_served;
    private_hits_hidden = t.s.private_hits_hidden;
    misses_padded = t.s.misses_padded;
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "public_hits=%d private_served=%d private_hidden=%d misses_padded=%d"
    s.public_hits s.private_hits_served s.private_hits_hidden s.misses_padded

(* Fallback when a hit arrives for content whose fetch we never
   observed (e.g. pre-seeded caches): a conservative, clearly
   miss-like delay. *)
let default_gamma = 20.

let recorded_gamma t name =
  Option.value (Ndn.Name.Tbl.find_opt t.fetch_delays name) ~default:default_gamma

let bump_hits t name =
  match Ndn.Name.Tbl.find_opt t.hit_counts name with
  | Some r ->
    incr r;
    !r
  | None ->
    Ndn.Name.Tbl.replace t.hit_counts name (ref 1);
    1

let group_key t name =
  match t.cm with
  | Random_cache_mimic { grouping; _ } ->
    Grouping.key grouping ~registry:t.registry name
  | No_countermeasure | Delay_private _ -> name

let on_cache_hit t ~now:_ (interest : Ndn.Interest.t) (data : Ndn.Data.t) =
  let verdict =
    Marking.classify t.marking ~name:data.Ndn.Data.name
      ~producer_private:data.Ndn.Data.producer_private
      ~consumer_private:interest.Ndn.Interest.consumer_private
  in
  (* A hidden hit must mimic a miss COMPLETELY: a scope-limited probe
     (the Section III scope=2 oracle) would still receive the delayed
     content and learn it was cached, so such interests take the true
     miss path — the forwarder then drops them when the scope budget
     runs out, exactly as if the content were absent. *)
  let hide () =
    match interest.Ndn.Interest.scope with
    | Some _ ->
      t.s.private_hits_hidden <- t.s.private_hits_hidden + 1;
      Some Ndn.Node.Treat_as_miss
    | None -> None
  in
  match verdict with
  | Marking.Public ->
    t.s.public_hits <- t.s.public_hits + 1;
    Ndn.Node.Respond
  | Marking.Private -> (
    match t.cm with
    | No_countermeasure ->
      t.s.private_hits_served <- t.s.private_hits_served + 1;
      Ndn.Node.Respond
    | Delay_private policy -> (
      match hide () with
      | Some action -> action
      | None ->
        t.s.private_hits_hidden <- t.s.private_hits_hidden + 1;
        let hits_so_far = bump_hits t data.Ndn.Data.name in
        let gamma = recorded_gamma t data.Ndn.Data.name in
        Ndn.Node.Respond_after
          (Delay.hit_delay policy ~fetch_delay:gamma ~hits_so_far))
    | Random_cache_mimic _ -> (
      let algorithm = Option.get t.algorithm in
      match Random_cache.on_request algorithm (group_key t data.Ndn.Data.name) with
      | Random_cache.Hit ->
        t.s.private_hits_served <- t.s.private_hits_served + 1;
        Ndn.Node.Respond
      | Random_cache.Miss -> (
        match hide () with
        | Some action -> action
        | None ->
          t.s.private_hits_hidden <- t.s.private_hits_hidden + 1;
          Ndn.Node.Respond_after (recorded_gamma t data.Ndn.Data.name))))

let should_cache t ~now:_ (data : Ndn.Data.t) ~fetch_delay =
  Ndn.Name.Tbl.replace t.fetch_delays data.Ndn.Data.name fetch_delay;
  (* Producer-declared correlation groups (Section VI's content-id
     field) feed the grouping registry as objects flow through. *)
  (match data.Ndn.Data.content_id with
  | Some id -> Grouping.register_id ~registry:t.registry ~name:data.Ndn.Data.name ~id
  | None -> ());
  (* A new cache residency begins: the first-non-private trigger only
     holds "as long as [the object] remains in R's cache". *)
  Marking.on_evicted t.marking data.Ndn.Data.name;
  (match Ndn.Name.Tbl.find_opt t.hit_counts data.Ndn.Data.name with
  | Some r -> r := 0
  | None -> ());
  true

let note_miss t ~now:_ (interest : Ndn.Interest.t) =
  let name = interest.Ndn.Interest.name in
  if interest.Ndn.Interest.consumer_private then
    Ndn.Name.Tbl.replace t.pending_private name ();
  (* Algorithm 1 counts every forwarded request, hits and misses alike. *)
  match t.algorithm with
  | Some algorithm when interest.Ndn.Interest.consumer_private ->
    ignore (Random_cache.on_request algorithm (group_key t name))
  | Some _ | None -> ()

let forward_delay t ~now:_ (data : Ndn.Data.t) ~fetch_delay =
  let was_pending_private = Ndn.Name.Tbl.mem t.pending_private data.Ndn.Data.name in
  Ndn.Name.Tbl.remove t.pending_private data.Ndn.Data.name;
  let is_private = data.Ndn.Data.producer_private || was_pending_private in
  match t.cm with
  | Delay_private policy when is_private ->
    let pad = Delay.miss_padding policy ~actual_delay:fetch_delay in
    if pad > 0. then t.s.misses_padded <- t.s.misses_padded + 1;
    pad
  | Delay_private _ | No_countermeasure | Random_cache_mimic _ -> 0.

let attach ?tracer node ~rng cm =
  let algorithm =
    match cm with
    | Random_cache_mimic { kdist; _ } ->
      let engine = Ndn.Node.engine node in
      Some
        (Random_cache.create ?tracer ~label:(Ndn.Node.label node)
           ~clock:(fun () -> Sim.Engine.now engine)
           ~kdist ~rng ())
    | No_countermeasure | Delay_private _ -> None
  in
  let t =
    {
      node;
      cm;
      marking = Marking.create ();
      fetch_delays = Ndn.Name.Tbl.create 256;
      hit_counts = Ndn.Name.Tbl.create 256;
      pending_private = Ndn.Name.Tbl.create 64;
      registry = Ndn.Name.Tbl.create 64;
      algorithm;
      s =
        {
          public_hits = 0;
          private_hits_served = 0;
          private_hits_hidden = 0;
          misses_padded = 0;
        };
    }
  in
  Ndn.Node.set_strategy node
    {
      Ndn.Node.on_cache_hit = (fun ~now i d -> on_cache_hit t ~now i d);
      should_cache = (fun ~now d ~fetch_delay -> should_cache t ~now d ~fetch_delay);
      note_miss = (fun ~now i -> note_miss t ~now i);
      forward_delay = (fun ~now d ~fetch_delay -> forward_delay t ~now d ~fetch_delay);
    };
  t
