type output = Hit | Miss

type state = { k_c : int; mutable c_c : int }

type t = {
  kdist : Kdist.t;
  rng : Sim.Rng.t;
  table : state Ndn.Name.Tbl.t;
  tracer : Sim.Trace.t;
  label : string;
  clock : unit -> float;
}

let create ?(tracer = Sim.Trace.disabled) ?(label = "")
    ?(clock = fun () -> 0.) ~kdist ~rng () =
  { kdist; rng; table = Ndn.Name.Tbl.create 256; tracer; label; clock }

let kdist t = t.kdist

let trace t kind key attrs =
  if Sim.Trace.enabled t.tracer then
    Sim.Trace.emit t.tracer
      {
        Sim.Trace.time = t.clock ();
        node = t.label;
        kind;
        name = Ndn.Name.to_string key;
        attrs;
      }

let on_request t key =
  match Ndn.Name.Tbl.find_opt t.table key with
  | None ->
    (* Algorithm 1, lines 4-8. *)
    let k_c = Kdist.sample t.kdist t.rng in
    Ndn.Name.Tbl.replace t.table key { k_c; c_c = 0 };
    trace t Sim.Trace.Rc_draw key [ ("k", string_of_int k_c) ];
    Miss
  | Some st ->
    (* Algorithm 1, lines 10-14. *)
    st.c_c <- st.c_c + 1;
    if st.c_c <= st.k_c then begin
      trace t Sim.Trace.Rc_fake_miss key
        [ ("count", string_of_int st.c_c); ("k", string_of_int st.k_c) ];
      Miss
    end
    else begin
      trace t Sim.Trace.Rc_hit key
        [ ("count", string_of_int st.c_c); ("k", string_of_int st.k_c) ];
      Hit
    end

let request_count t key =
  match Ndn.Name.Tbl.find_opt t.table key with
  | None -> 0
  | Some st -> st.c_c

let threshold t key =
  match Ndn.Name.Tbl.find_opt t.table key with
  | None -> None
  | Some st -> Some st.k_c

let tracked t = Ndn.Name.Tbl.length t.table

let forget t key = Ndn.Name.Tbl.remove t.table key

let reset t = Ndn.Name.Tbl.reset t.table

let pp_output ppf = function
  | Hit -> Format.pp_print_string ppf "hit"
  | Miss -> Format.pp_print_string ppf "miss"

let output_equal a b =
  match (a, b) with Hit, Hit | Miss, Miss -> true | Hit, Miss | Miss, Hit -> false
