(** Privacy-aware NDN router: wires the paper's countermeasures into a
    live {!Ndn.Node} forwarder via its cache-response strategy.

    This is the network-level realization of the policies: hidden hits
    become artificially delayed responses (served from the cache —
    bandwidth is preserved), private misses can be padded, marking
    rules combine producer and consumer privacy bits, and Algorithm 1
    state is keyed by content group. *)

type countermeasure =
  | No_countermeasure
      (** Plain NDN (the attackable baseline). *)
  | Delay_private of Delay.t
      (** Section V-B: every hit on private content is delayed per the
          given delay policy; with {!Delay.Constant} the miss path is
          padded to the same total γ. *)
  | Random_cache_mimic of { kdist : Kdist.t; grouping : Grouping.t }
      (** Section VI: Algorithm 1 decides hit/miss; a "miss" decision
          on cached private content is served from the cache after the
          recorded first-fetch delay γ_C, so it is indistinguishable
          from a real miss in timing. *)

type stats = {
  public_hits : int;  (** Cache hits served immediately (public). *)
  private_hits_served : int;  (** Private hits Algorithm 1 revealed. *)
  private_hits_hidden : int;  (** Private hits disguised as misses. *)
  misses_padded : int;  (** Miss responses padded to the target delay. *)
}

type t

val attach :
  ?tracer:Sim.Trace.t -> Ndn.Node.t -> rng:Sim.Rng.t -> countermeasure -> t
(** Install the countermeasure on a node (replacing its strategy).
    [tracer] (default {!Sim.Trace.disabled}) feeds the Algorithm 1
    instance, which then emits [rc.draw]/[rc.fake_miss]/[rc.hit]
    records labelled with the node and timestamped by its engine.

    Hidden hits mimic misses against {e every} observation channel:
    timing (artificial delay), and the scope=2 oracle — a scope-limited
    interest for a hidden hit takes the true miss path, so it dies at
    the scope boundary exactly as if the content were absent. *)

val node : t -> Ndn.Node.t

val countermeasure : t -> countermeasure

val stats : t -> stats

val marking : t -> Marking.t
(** The router's marking/trigger state (exposed for tests). *)

val fetch_delay : t -> Ndn.Name.t -> float option
(** The recorded γ_C for a name, if the router fetched it. *)

val pp_stats : Format.formatter -> stats -> unit
