(** Algorithm 1 of the paper: Random-Caching.

    Per content (or content group), the router draws a secret random
    threshold [k_C] from a configurable distribution; the first
    [k_C + 1] requests are answered as cache misses and every later
    request as a hit.  A hit therefore reveals only that the request
    count exceeded a random threshold, which Theorems VI.1/VI.3 turn
    into (k, ε, δ)-privacy guarantees. *)

type output = Hit | Miss

type t

val create :
  ?tracer:Sim.Trace.t ->
  ?label:string ->
  ?clock:(unit -> float) ->
  kdist:Kdist.t ->
  rng:Sim.Rng.t ->
  unit ->
  t
(** When [tracer] (default {!Sim.Trace.disabled}) is enabled,
    {!on_request} emits [rc.draw] (fresh threshold, with its [k]),
    [rc.fake_miss] (request disguised as a miss) and [rc.hit] records
    tagged with [label] (typically the owning node) and timestamped by
    [clock] (typically the simulation engine's clock; defaults to a
    constant [0.]). *)

val kdist : t -> Kdist.t

val on_request : t -> Ndn.Name.t -> output
(** Process one request for a content key and return the observable
    outcome per Algorithm 1.  The first request for a key draws its
    threshold and is always a miss. *)

val request_count : t -> Ndn.Name.t -> int
(** The counter [c_C]: number of requests seen so far (0 if never
    requested; the first request leaves the counter at 0, matching
    Algorithm 1 lines 7–8). *)

val threshold : t -> Ndn.Name.t -> int option
(** The drawn [k_C], if the key has been requested ([None] otherwise).
    Secret router state — exposed for tests and attack analysis only. *)

val tracked : t -> int
(** Number of distinct keys in T. *)

val forget : t -> Ndn.Name.t -> unit
(** Drop a key's state entirely: its next request re-enters Algorithm 1
    from scratch with a fresh threshold. *)

val reset : t -> unit

val pp_output : Format.formatter -> output -> unit

val output_equal : output -> output -> bool
