(* Children are stored in a sorted association map keyed by component
   string (stdlib Map) so that subtree folds produce names in canonical
   order. *)

module Smap = Map.Make (String)

type 'a node = { mutable value : 'a option; mutable children : 'a node Smap.t }

type 'a t = { root : 'a node; mutable size : int }

let new_node () = { value = None; children = Smap.empty }

let create () = { root = new_node (); size = 0 }

let size t = t.size

let is_empty t = t.size = 0

let add t name v =
  let rec go node = function
    | [] ->
      if node.value = None then t.size <- t.size + 1;
      node.value <- Some v
    | c :: rest ->
      let child =
        match Smap.find_opt c node.children with
        | Some child -> child
        | None ->
          let child = new_node () in
          node.children <- Smap.add c child node.children;
          child
      in
      go child rest
  in
  go t.root (Name.components name)

let remove t name =
  (* Returns [true] when the child became empty and can be pruned. *)
  let rec go node = function
    | [] ->
      if node.value <> None then begin
        node.value <- None;
        t.size <- t.size - 1
      end;
      node.value = None && Smap.is_empty node.children
    | c :: rest -> (
      match Smap.find_opt c node.children with
      | None -> false
      | Some child ->
        if go child rest then node.children <- Smap.remove c node.children;
        node.value = None && Smap.is_empty node.children)
  in
  ignore (go t.root (Name.components name))

(* [Smap.find] + [Not_found] instead of [find_opt]: the per-level [Some]
   wrappers are the only allocations a trie descent would otherwise make. *)
let find t name =
  let rec go node = function
    | [] -> node.value
    | c :: rest -> (
      match Smap.find c node.children with
      | exception Not_found -> None
      | child -> go child rest)
  in
  go t.root (Name.components name)

let mem t name = find t name <> None

(* Track the best depth during the descent and build the winning prefix
   name once at the end, instead of materializing a candidate name at
   every bound node along the path. *)
let longest_prefix t name =
  let rec go node depth best_depth best = function
    | comps ->
      let best_depth, best =
        match node.value with
        | Some v -> (depth, Some v)
        | None -> (best_depth, best)
      in
      (match comps with
      | [] -> (best_depth, best)
      | c :: rest -> (
        match Smap.find c node.children with
        | exception Not_found -> (best_depth, best)
        | child -> go child (depth + 1) best_depth best rest))
  in
  match go t.root 0 0 None (Name.components name) with
  | _, None -> None
  | depth, Some v -> Some (Name.prefix name depth, v)

let fold_prefixes t name ~init ~f =
  let rec go node depth acc = function
    | comps ->
      let acc =
        match node.value with
        | Some v -> f acc (Name.prefix name depth) v
        | None -> acc
      in
      (match comps with
      | [] -> acc
      | c :: rest -> (
        match Smap.find_opt c node.children with
        | None -> acc
        | Some child -> go child (depth + 1) acc rest))
  in
  go t.root 0 init (Name.components name)

let descend t name =
  let rec go node = function
    | [] -> Some node
    | c :: rest -> (
      match Smap.find c node.children with
      | exception Not_found -> None
      | child -> go child rest)
  in
  go t.root (Name.components name)

exception Found_binding of Name.t

let first_extension t name =
  match descend t name with
  | None -> None
  | Some node ->
    (* DFS in component order; the first binding found is the smallest. *)
    let rec dfs prefix node =
      (match node.value with Some _ -> raise (Found_binding prefix) | None -> ());
      Smap.iter (fun c child -> dfs (Name.append prefix c) child) node.children
    in
    (try
       dfs name node;
       None
     with Found_binding n -> (
       match find t n with Some v -> Some (n, v) | None -> None))

let fold_subtree t name ~init ~f =
  match descend t name with
  | None -> init
  | Some node ->
    let rec dfs prefix node acc =
      let acc = match node.value with Some v -> f acc prefix v | None -> acc in
      Smap.fold (fun c child acc -> dfs (Name.append prefix c) child acc) node.children acc
    in
    dfs name node init

let iter t ~f = ignore (fold_subtree t Name.root ~init:() ~f:(fun () n v -> f n v))

let to_list t =
  List.rev (fold_subtree t Name.root ~init:[] ~f:(fun acc n v -> (n, v) :: acc))

let clear t =
  t.root.value <- None;
  t.root.children <- Smap.empty;
  t.size <- 0
