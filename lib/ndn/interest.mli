(** Interest packets.

    An interest requests content by name.  NDN interests carry no
    source address — delivery of the matching Data packet relies purely
    on PIT state along the reverse path (paper, Section II). *)

type t = private {
  name : Name.t;
  nonce : int64;  (** Duplicate-suppression tag, unique per expression. *)
  scope : int option;
      (** Maximum number of NDN entities the interest may traverse,
          source included; the probing attack of Section III sets
          [Some 2].  [None] means unlimited.  Routers are allowed to
          ignore this field. *)
  consumer_private : bool;
      (** Consumer-driven privacy bit (Section V): the consumer asks
          routers to treat the matched content as private. *)
}

val create : ?scope:int -> ?consumer_private:bool -> nonce:int64 -> Name.t -> t
(** @raise Invalid_argument if [scope < 1] (a scope of 1 would not even
    reach the local forwarder's peer). *)

val with_scope : t -> int option -> t

val decrement_scope : t -> t option
(** Consume one hop of scope budget: [None] when the budget is
    exhausted and the interest must not be forwarded further;
    unlimited-scope interests pass through unchanged. *)

val import : t -> t
(** Re-intern the name in the current domain's hash-cons table
    ({!Name.import}) — applied to packets crossing shards in
    [Sim.Shard] mode so equality fast paths keep firing on the
    receiving domain.  Semantically the identity. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
