(** Text format for describing experiment topologies.

    Lets studies beyond the paper's built-in setups be defined in a
    file instead of OCaml:

    {v
    # nodes first; attributes are optional
    node R  cs=10000 policy=lru proc=normal:0.55:0.12:0.15
    node U  caching=false
    node P

    # bidirectional links
    link U R latency=normal:0.25:0.06:0.05
    link R P latency=const:1.8 loss=0.01

    # interest routing (via a directly linked neighbour)
    route U /prod via R
    route R /prod via P

    # a producer application serving a namespace
    producer P /prod key=pkey payload=1024 private=false delay=0.4

    # optional fault injection (see {!Sim.Fault}): TIME KIND ARGS
    fault 500 crash R preserve_cs=false
    fault 700 restart R
    fault 900 degrade R P loss=0.2 latency_factor=3 until=1500
    v}

    Latency grammar: [const:MS], [uniform:LO:HI],
    [normal:MEAN:SD:MIN], [shifted_exp:SHIFT:RATE], or a [+]-joined sum
    of those.  All latency parameters must be non-negative
    ([shifted_exp] rate strictly positive, [uniform] hi ≥ lo) and link
    [loss] must lie in [\[0,1\]]; violations are parse errors carrying
    the line number.

    Parsing is two-phase: {!parse_spec} reads the text into an AST of
    directives (defaults resolved), {!build} turns directives into a
    live network.  {!print} renders a spec canonically, and
    [parse_spec (print s)] yields [s]'s directives again — the
    round-trip is a fixpoint, which keeps generated topologies
    diffable and machine-editable. *)

type t = {
  network : Network.t;
  nodes : (string * Node.t) list;  (** Declaration order. *)
  faults : Sim.Fault.schedule;
      (** The spec's [fault] directives, sorted by firing time.  They
          are already installed on the network by {!build}; exposed so
          callers can segment measurements with
          {!Sim.Fault.phase_boundaries}. *)
}

val node : t -> string -> Node.t
(** @raise Not_found for undeclared names. *)

(** {1 The directive AST} *)

type node_decl = {
  node_name : string;
  cs_capacity : int;  (** [0] = unbounded. *)
  cs_policy : Eviction.t;
  forwarding_delay : Sim.Latency.t;
  honor_scope : bool;
  caching : bool;
}

type link_decl = {
  link_a : string;
  link_b : string;
  latency : Sim.Latency.t;  (** a→b model. *)
  latency_back : Sim.Latency.t option;  (** b→a; defaults to [latency]. *)
  loss : float;
}

type route_decl = {
  route_node : string;
  route_prefix : string;
  route_via : string;  (** Must name a linked neighbour. *)
}

type producer_decl = {
  producer_node : string;
  producer_prefix : string;
  producer_key : string;  (** Defaults to ["NODE-key"]. *)
  payload_size : int;
  producer_private : bool;
  production_delay_ms : float;
}

(** {2 Generated topologies}

    A [generate] directive expands at build time into an entire router
    graph — nodes, links, shortest-path routes toward a producer host
    attached at the graph root — drawn by a seeded deterministic
    generator.  Three models:

    {v
    # ISP hierarchy: tiers core→access; per-tier lists are ','-joined
    generate tree name=isp arity=10 tiers=5 cs=100000,10000,1000,1000,500 latency=const:8,const:4,const:2,const:1,const:1
    # Watts–Strogatz small world (k even; the ring backbone is kept, so
    # the graph is connected for every seed and beta)
    generate ws name=sw n=200 k=6 beta=0.2 cs=2048 latency=const:2
    # Barabási–Albert preferential attachment (m edges per new node)
    generate ba name=pa n=200 m=3 cs=2048 latency=const:2
    v}

    Common attributes: [name] (required; node-label prefix, namespace
    [/NAME]), [seed] (default 42), [policy] (default lru), [payload]
    (default 1024).  Single-value [cs]/[latency] on [tree] replicate
    across tiers; [tiers] defaults to the longer of the two lists (or
    3).  Identical directives produce identical graphs; the canonical
    print is the directive itself, one line however large the graph. *)

type tier_spec = { tier_cs : int; tier_latency : Sim.Latency.t }

type gen_model =
  | Gen_tree of { arity : int; tiers : tier_spec list }
      (** Tier 0 is the core root; tier [t] has [arity^t] routers, each
          linked to one parent in tier [t-1] with tier [t]'s latency. *)
  | Gen_ws of {
      ws_n : int;
      ws_k : int;
      ws_beta : float;
      ws_cs : int;
      ws_latency : Sim.Latency.t;
    }
  | Gen_ba of {
      ba_n : int;
      ba_m : int;
      ba_cs : int;
      ba_latency : Sim.Latency.t;
    }

type generate_decl = {
  gen_name : string;
  gen_model : gen_model;
  gen_seed : int;
  gen_policy : Eviction.t;
  gen_payload : int;
}

type directive =
  | Node_decl of node_decl
  | Link_decl of link_decl
  | Route_decl of route_decl
  | Producer_decl of producer_decl
  | Generate_decl of generate_decl
  | Fault_decl of Sim.Fault.event
      (** A fault to install at build time; must name nodes/links
          declared on earlier lines. *)

type spec = (int * directive) list
(** Directives paired with their 1-based source line numbers, in file
    order — {!build} reuses the numbers in semantic error messages. *)

val directives : spec -> directive list
(** The directives without line numbers. *)

val parse_spec : string -> (spec, string) result
(** Read a specification text into directives.  Errors carry the line
    number and say what the directive expected (missing node name,
    unknown attribute, malformed latency, …). *)

val print : spec -> string
(** Canonical rendering: one directive per line, every attribute
    explicit, floats printed with just enough digits to re-parse to the
    identical value.  [parse_spec (print s) = Ok s] up to line
    numbers. *)

val build :
  ?seed:int -> ?tracer:Sim.Trace.t -> ?shards:int -> spec -> (t, string) result
(** Instantiate the network ([seed] defaults to 42; [tracer] — default
    {!Sim.Trace.disabled} — is threaded to the engine, every node and
    every link; [shards] is forwarded to {!Network.create}, putting the
    whole build in shard mode).  Semantic errors (duplicate node,
    undeclared endpoint, route without a link) carry the offending
    directive's line number. *)

val parse :
  ?seed:int -> ?tracer:Sim.Trace.t -> ?shards:int -> string ->
  (t, string) result
(** [parse_spec] followed by [build]. *)

val parse_file :
  ?seed:int -> ?tracer:Sim.Trace.t -> ?shards:int -> path:string -> unit ->
  (t, string) result

val parse_latency : string -> (Sim.Latency.t, string) result
(** The latency sub-grammar, exposed for reuse and tests. *)

(** {1 The generated graphs themselves}

    The pure graph layer behind [generate] directives, exposed so tests
    can check structural invariants and benches can address generated
    nodes without re-deriving the labelling. *)
module Gen : sig
  type graph = {
    node_count : int;
    edges : (int * int) list;
        (** Canonical: [a < b], sorted lexicographically, no duplicates
            or self-loops. *)
    tier : int array;  (** Per node; all [0] for ws/ba. *)
    root : int;  (** Where the producer host attaches. *)
    edge_routers : int list;
        (** Consumer attachment points, ascending: the leaf tier of a
            tree, every non-root node of ws/ba. *)
    diameter : int;
        (** Two-sweep BFS estimate — exact on trees, a lower bound in
            general (consumers of this field add slack). *)
  }

  val graph_of : generate_decl -> graph
  (** Deterministic: equal decls (same seed included) yield structurally
      equal graphs.  Always connected, by construction, for all three
      models. *)

  val parents : graph -> int array
  (** BFS parent toward [root] ([-1] at the root); the tree along which
      [build] installs routes. *)

  val node_label : generate_decl -> graph -> int -> string
  (** ["NAME-tT-nI"] for trees (tier [T], id [I]), ["NAME-nI"]
      otherwise — the labels [build] registers with {!Network}. *)

  val producer_label : generate_decl -> string
  (** ["NAME-P"], the producer host linked to the root. *)

  val prefix : generate_decl -> Name.t
  (** [/NAME], the namespace the generated producer serves. *)

  val hop_limit : graph -> int
  (** A scope bound ample for any probe across the graph:
      [2 * diameter + 4]. *)

  val interest_lifetime_ms : generate_decl -> graph -> float
  (** The PIT lifetime [build] gives every generated node: at least the
      stack's 4000 ms default, scaled up with diameter and mean link
      latency so interests survive a full round trip in deep graphs. *)
end

val print_latency : Sim.Latency.t -> string
(** Canonical latency rendering ([Sum]s flattened to [+]-joins);
    [parse_latency (print_latency l)] re-parses to an equivalent
    model. *)
