(** NDN packet types.

    "Interest and content are the only types of packets in NDN"
    (paper, Section II) — plus the {!Nack.t} deployed forwarders added
    for explicit failure signalling, which this plane only generates
    when NACKs are switched on (see {!Nack}). *)

type t =
  | Interest of Interest.t
  | Data of Data.t
  | Nack of Nack.t

val name : t -> Name.t

val size_bytes : t -> int
(** Wire-size estimate for bandwidth accounting (interests and NACKs
    are small and fixed-cost; Data defers to {!Data.size_bytes}). *)

val pp : Format.formatter -> t -> unit
