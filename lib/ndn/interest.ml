type t = {
  name : Name.t;
  nonce : int64;
  scope : int option;
  consumer_private : bool;
}

let create ?scope ?(consumer_private = false) ~nonce name =
  (match scope with
  | Some s when s < 1 -> invalid_arg "Interest.create: scope must be >= 1"
  | _ -> ());
  { name; nonce; scope; consumer_private }

let with_scope t scope = { t with scope }

let decrement_scope t =
  match t.scope with
  | None -> Some t
  | Some s when s <= 1 -> None
  | Some s -> Some { t with scope = Some (s - 1) }

let pp ppf t =
  Format.fprintf ppf "Interest(%a nonce=%Ld%s%s)" Name.pp t.name t.nonce
    (match t.scope with Some s -> Printf.sprintf " scope=%d" s | None -> "")
    (if t.consumer_private then " private" else "")

let equal a b =
  Name.equal a.name b.name && Int64.equal a.nonce b.nonce && a.scope = b.scope
  && a.consumer_private = b.consumer_private

let import t = { t with name = Name.import t.name }
