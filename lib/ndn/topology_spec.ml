type t = {
  network : Network.t;
  nodes : (string * Node.t) list;
  faults : Sim.Fault.schedule;
}

let node t name = List.assoc name t.nodes

(* --- AST ---

   Parsing and building are separate passes: a spec is first read into
   directives (with defaults resolved, so printing is canonical), then
   [build] turns directives into a live network.  Each directive keeps
   its source line so semantic errors still point into the file. *)

type node_decl = {
  node_name : string;
  cs_capacity : int;
  cs_policy : Eviction.t;
  forwarding_delay : Sim.Latency.t;
  honor_scope : bool;
  caching : bool;
}

type link_decl = {
  link_a : string;
  link_b : string;
  latency : Sim.Latency.t;
  latency_back : Sim.Latency.t option;
  loss : float;
}

type route_decl = {
  route_node : string;
  route_prefix : string;
  route_via : string;
}

type producer_decl = {
  producer_node : string;
  producer_prefix : string;
  producer_key : string;
  payload_size : int;
  producer_private : bool;
  production_delay_ms : float;
}

(* --- generated topologies ---

   A [generate] directive expands, at build time, into an entire
   router graph (nodes, links, shortest-path routes toward a producer
   attached at the graph root) drawn by a seeded deterministic
   generator.  The directive itself is what is printed canonically —
   an 11k-router ISP hierarchy stays a one-line spec — while the
   concrete graph is exposed to tests and benches through {!Gen}. *)

type tier_spec = { tier_cs : int; tier_latency : Sim.Latency.t }

type gen_model =
  | Gen_tree of { arity : int; tiers : tier_spec list }
      (** ISP hierarchy: tier 0 is the core root, the last tier the
          access edge; tier [t] has [arity^t] routers, each linked to
          one parent in tier [t-1] with that tier's latency model. *)
  | Gen_ws of {
      ws_n : int;
      ws_k : int;  (** Even; ring-lattice base degree. *)
      ws_beta : float;
      ws_cs : int;
      ws_latency : Sim.Latency.t;
    }
  | Gen_ba of {
      ba_n : int;
      ba_m : int;  (** Edges added per arriving node. *)
      ba_cs : int;
      ba_latency : Sim.Latency.t;
    }

type generate_decl = {
  gen_name : string;  (** Node-label prefix; namespace is ["/" ^ name]. *)
  gen_model : gen_model;
  gen_seed : int;
  gen_policy : Eviction.t;
  gen_payload : int;
}

type directive =
  | Node_decl of node_decl
  | Link_decl of link_decl
  | Route_decl of route_decl
  | Producer_decl of producer_decl
  | Generate_decl of generate_decl
  | Fault_decl of Sim.Fault.event

type spec = (int * directive) list

let directives spec = List.map snd spec

(* --- small parsing helpers --- *)

let ( let* ) = Result.bind

let float_field name s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: expected a number, got %S" name s)

let int_field name s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

let bool_field name s =
  match String.lowercase_ascii s with
  | "true" | "yes" | "1" -> Ok true
  | "false" | "no" | "0" -> Ok false
  | _ -> Error (Printf.sprintf "%s: expected a boolean, got %S" name s)

(* Range checks run at parse time so a bad parameter is reported with
   its line number, not discovered as a NaN latency mid-run. *)
let non_negative name v =
  if Float.is_finite v && v >= 0. then Ok v
  else Error (Printf.sprintf "%s: expected a non-negative number, got %g" name v)

let positive name v =
  if Float.is_finite v && v > 0. then Ok v
  else Error (Printf.sprintf "%s: expected a positive number, got %g" name v)

let probability name v =
  if Float.is_finite v && v >= 0. && v <= 1. then Ok v
  else Error (Printf.sprintf "%s: expected a probability in [0, 1], got %g" name v)

let rec parse_latency_term s =
  match String.split_on_char ':' s with
  | [ "const"; ms ] ->
    let* ms = float_field "const" ms in
    let* ms = non_negative "const" ms in
    Ok (Sim.Latency.Constant ms)
  | [ "uniform"; lo; hi ] ->
    let* lo = float_field "uniform lo" lo in
    let* hi = float_field "uniform hi" hi in
    let* lo = non_negative "uniform lo" lo in
    let* hi = non_negative "uniform hi" hi in
    if hi < lo then
      Error (Printf.sprintf "uniform: hi %g below lo %g" hi lo)
    else Ok (Sim.Latency.Uniform { lo; hi })
  | [ "normal"; mean; stddev; min ] ->
    let* mean = float_field "normal mean" mean in
    let* stddev = float_field "normal stddev" stddev in
    let* min = float_field "normal min" min in
    let* mean = non_negative "normal mean" mean in
    let* stddev = non_negative "normal stddev" stddev in
    let* min = non_negative "normal min" min in
    Ok (Sim.Latency.Normal { mean; stddev; min })
  | [ "shifted_exp"; shift; rate ] ->
    let* shift = float_field "shifted_exp shift" shift in
    let* rate = float_field "shifted_exp rate" rate in
    let* shift = non_negative "shifted_exp shift" shift in
    let* rate = positive "shifted_exp rate" rate in
    Ok (Sim.Latency.Shifted_exponential { shift; rate })
  | _ ->
    Error
      (Printf.sprintf
         "unknown latency model %S (expected const:MS, uniform:LO:HI, \
          normal:MEAN:SD:MIN, shifted_exp:SHIFT:RATE, or a +-joined sum)"
         s)

and parse_latency s =
  match String.split_on_char '+' s with
  | [ single ] -> parse_latency_term single
  | parts ->
    let* terms =
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          let* term = parse_latency_term part in
          Ok (term :: acc))
        (Ok []) parts
    in
    Ok (Sim.Latency.Sum (List.rev terms))

(* key=value attribute lists, validated against the directive's schema
   so a typo'd key is reported rather than silently ignored *)
let parse_attrs ~directive ~allowed tokens =
  List.fold_left
    (fun acc token ->
      let* acc = acc in
      match String.index_opt token '=' with
      | Some i ->
        let key = String.sub token 0 i in
        let value = String.sub token (i + 1) (String.length token - i - 1) in
        if List.mem key allowed then Ok ((key, value) :: acc)
        else
          Error
            (Printf.sprintf "%s: unknown attribute %S (allowed: %s)" directive
               key
               (String.concat ", " allowed))
      | None ->
        Error
          (Printf.sprintf "%s: expected key=value, got %S" directive token))
    (Ok []) tokens

let attr attrs key = List.assoc_opt key attrs

let is_attr token = String.contains token '='

(* --- directive parsers --- *)

let parse_node_decl tokens =
  match tokens with
  | [] ->
    Error "node: expected a node name, as in 'node R cs=10000 policy=lru'"
  | name :: _ when is_attr name ->
    Error
      (Printf.sprintf
         "node: expected a node name before attributes, got %S" name)
  | name :: attrs ->
    let* attrs =
      parse_attrs ~directive:"node"
        ~allowed:[ "cs"; "policy"; "proc"; "honor_scope"; "caching" ]
        attrs
    in
    let* cs_capacity =
      match attr attrs "cs" with Some v -> int_field "cs" v | None -> Ok 0
    in
    let* cs_policy =
      match attr attrs "policy" with
      | Some v -> (
        match Eviction.of_string v with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "unknown eviction policy %S" v))
      | None -> Ok Eviction.Lru
    in
    let* forwarding_delay =
      match attr attrs "proc" with
      | Some v -> parse_latency v
      | None -> Ok (Sim.Latency.Constant 0.02)
    in
    let* honor_scope =
      match attr attrs "honor_scope" with
      | Some v -> bool_field "honor_scope" v
      | None -> Ok true
    in
    let* caching =
      match attr attrs "caching" with
      | Some v -> bool_field "caching" v
      | None -> Ok true
    in
    Ok
      (Node_decl
         { node_name = name; cs_capacity; cs_policy; forwarding_delay;
           honor_scope; caching })

let parse_link_decl tokens =
  match tokens with
  | [] | [ _ ] ->
    Error
      "link: expected two endpoint names, as in 'link U R latency=const:1'"
  | a :: b :: _ when is_attr a || is_attr b ->
    Error "link: expected two endpoint names before attributes"
  | a :: b :: attrs ->
    let* attrs =
      parse_attrs ~directive:"link"
        ~allowed:[ "latency"; "latency_back"; "loss" ]
        attrs
    in
    let* latency =
      match attr attrs "latency" with
      | Some v -> parse_latency v
      | None -> Ok (Sim.Latency.Constant 1.)
    in
    let* latency_back =
      match attr attrs "latency_back" with
      | Some v ->
        let* l = parse_latency v in
        Ok (Some l)
      | None -> Ok None
    in
    let* loss =
      match attr attrs "loss" with
      | Some v ->
        let* l = float_field "loss" v in
        probability "loss" l
      | None -> Ok 0.
    in
    Ok (Link_decl { link_a = a; link_b = b; latency; latency_back; loss })

let parse_route_decl tokens =
  match tokens with
  | [ node; prefix; "via"; via ] ->
    Ok (Route_decl { route_node = node; route_prefix = prefix; route_via = via })
  | _ ->
    Error
      "route: expected 'route NODE PREFIX via NEIGHBOUR', as in \
       'route U /prod via R'"

let parse_producer_decl tokens =
  match tokens with
  | [] | [ _ ] ->
    Error
      "producer: expected 'producer NODE PREFIX [key=K payload=N \
       private=BOOL delay=MS]'"
  | node :: prefix :: _ when is_attr node || is_attr prefix ->
    Error "producer: expected a node name and a prefix before attributes"
  | node :: prefix :: attrs ->
    let* attrs =
      parse_attrs ~directive:"producer"
        ~allowed:[ "key"; "payload"; "private"; "delay" ]
        attrs
    in
    let producer_key =
      match attr attrs "key" with Some k -> k | None -> node ^ "-key"
    in
    let* payload_size =
      match attr attrs "payload" with
      | Some v -> int_field "payload" v
      | None -> Ok 1024
    in
    let* producer_private =
      match attr attrs "private" with
      | Some v -> bool_field "private" v
      | None -> Ok false
    in
    let* production_delay_ms =
      match attr attrs "delay" with
      | Some v ->
        let* d = float_field "delay" v in
        non_negative "delay" d
      | None -> Ok 0.4
    in
    Ok
      (Producer_decl
         { producer_node = node; producer_prefix = prefix; producer_key;
           payload_size; producer_private; production_delay_ms })

(* Per-tier attributes are ','-separated lists (':' belongs to the
   latency grammar): [cs=100000,10000,1000].  A single value is
   replicated across tiers at parse time so the canonical print always
   writes one value per tier. *)
let list_field name parse_one s =
  match String.split_on_char ',' s with
  | [] | [ "" ] -> Error (Printf.sprintf "%s: empty list" name)
  | parts ->
    let* rev =
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          let* v = parse_one part in
          Ok (v :: acc))
        (Ok []) parts
    in
    Ok (List.rev rev)

let stretch_list name k l =
  match l with
  | [ v ] -> Ok (List.init k (fun _ -> v))
  | l when List.length l = k -> Ok l
  | l ->
    Error
      (Printf.sprintf "%s: expected 1 or %d (= tiers) values, got %d" name k
         (List.length l))

let parse_policy v =
  match Eviction.of_string v with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "unknown eviction policy %S" v)

(* Refuse parameter combinations whose expansion would not fit in
   memory; the bound is far above the paper-scale runs (an 11k-router
   five-tier hierarchy) but catches a mistyped exponent at parse time. *)
let max_generated_nodes = 2_000_000

let parse_generate_decl tokens =
  match tokens with
  | [] ->
    Error
      "generate: expected a model, as in 'generate tree name=isp arity=10 \
       tiers=5' (models: tree, ws, ba)"
  | model :: attrs ->
    let* allowed =
      match model with
      | "tree" ->
        Ok [ "name"; "arity"; "tiers"; "cs"; "latency"; "policy"; "payload";
             "seed" ]
      | "ws" ->
        Ok [ "name"; "n"; "k"; "beta"; "cs"; "latency"; "policy"; "payload";
             "seed" ]
      | "ba" ->
        Ok [ "name"; "n"; "m"; "cs"; "latency"; "policy"; "payload"; "seed" ]
      | m ->
        Error
          (Printf.sprintf "generate: unknown model %S (expected tree, ws or ba)"
             m)
    in
    let* attrs = parse_attrs ~directive:("generate " ^ model) ~allowed attrs in
    let* gen_name =
      match attr attrs "name" with
      | Some n
        when n <> ""
             && not (String.contains n '/')
             && not (String.contains n ' ') ->
        Ok n
      | Some n -> Error (Printf.sprintf "generate: invalid name %S" n)
      | None ->
        Error
          "generate: missing name=PREFIX (node-label prefix; the producer \
           serves /PREFIX)"
    in
    let* gen_seed =
      match attr attrs "seed" with
      | Some v -> int_field "seed" v
      | None -> Ok 42
    in
    let* gen_policy =
      match attr attrs "policy" with
      | Some v -> parse_policy v
      | None -> Ok Eviction.Lru
    in
    let* gen_payload =
      match attr attrs "payload" with
      | Some v ->
        let* p = int_field "payload" v in
        if p > 0 then Ok p else Error "payload: expected a positive size"
      | None -> Ok 1024
    in
    let int_attr key default =
      match attr attrs key with
      | Some v -> int_field key v
      | None -> Ok default
    in
    let* gen_model =
      match model with
      | "tree" ->
        let* arity = int_attr "arity" 4 in
        let* () =
          if arity >= 2 then Ok ()
          else Error "arity: expected at least 2"
        in
        let* cs_list =
          match attr attrs "cs" with
          | Some v -> list_field "cs" (int_field "cs") v
          | None -> Ok [ 1024 ]
        in
        let* () =
          if List.for_all (fun c -> c >= 0) cs_list then Ok ()
          else Error "cs: expected non-negative capacities"
        in
        let* lat_list =
          match attr attrs "latency" with
          | Some v -> list_field "latency" parse_latency v
          | None -> Ok [ Sim.Latency.Constant 1. ]
        in
        let* ntiers =
          match attr attrs "tiers" with
          | Some v -> int_field "tiers" v
          | None ->
            let m = max (List.length cs_list) (List.length lat_list) in
            Ok (if m > 1 then m else 3)
        in
        let* () =
          if ntiers >= 2 then Ok ()
          else Error "tiers: expected at least 2 (a core root and an edge)"
        in
        let* () =
          let count = ref 1 and total = ref 1 in
          let ok = ref true in
          for _ = 2 to ntiers do
            count := !count * arity;
            total := !total + !count;
            if !total > max_generated_nodes || !total < 0 then ok := false
          done;
          if !ok then Ok ()
          else
            Error
              (Printf.sprintf
                 "tree: arity=%d tiers=%d expands past %d routers" arity ntiers
                 max_generated_nodes)
        in
        let* cs_list = stretch_list "cs" ntiers cs_list in
        let* lat_list = stretch_list "latency" ntiers lat_list in
        let tiers =
          List.map2
            (fun tier_cs tier_latency -> { tier_cs; tier_latency })
            cs_list lat_list
        in
        Ok (Gen_tree { arity; tiers })
      | "ws" ->
        let* ws_n = int_attr "n" 64 in
        let* ws_k = int_attr "k" 4 in
        let* ws_beta =
          match attr attrs "beta" with
          | Some v ->
            let* b = float_field "beta" v in
            probability "beta" b
          | None -> Ok 0.1
        in
        let* ws_cs = int_attr "cs" 1024 in
        let* ws_latency =
          match attr attrs "latency" with
          | Some v -> parse_latency v
          | None -> Ok (Sim.Latency.Constant 1.)
        in
        let* () =
          if ws_n < 4 then Error "ws: expected n >= 4"
          else if ws_n > max_generated_nodes then
            Error (Printf.sprintf "ws: n past %d routers" max_generated_nodes)
          else if ws_k < 2 || ws_k mod 2 <> 0 then
            Error "ws: k must be even and at least 2"
          else if ws_k >= ws_n then Error "ws: k must be below n"
          else if ws_cs < 0 then Error "cs: expected a non-negative capacity"
          else Ok ()
        in
        Ok (Gen_ws { ws_n; ws_k; ws_beta; ws_cs; ws_latency })
      | _ ->
        let* ba_n = int_attr "n" 64 in
        let* ba_m = int_attr "m" 2 in
        let* ba_cs = int_attr "cs" 1024 in
        let* ba_latency =
          match attr attrs "latency" with
          | Some v -> parse_latency v
          | None -> Ok (Sim.Latency.Constant 1.)
        in
        let* () =
          if ba_m < 1 then Error "ba: expected m >= 1"
          else if ba_n <= ba_m + 1 then Error "ba: expected n > m + 1"
          else if ba_n > max_generated_nodes then
            Error (Printf.sprintf "ba: n past %d routers" max_generated_nodes)
          else if ba_cs < 0 then Error "cs: expected a non-negative capacity"
          else Ok ()
        in
        Ok (Gen_ba { ba_n; ba_m; ba_cs; ba_latency })
    in
    Ok (Generate_decl { gen_name; gen_model; gen_seed; gen_policy; gen_payload })

let parse_fault_decl tokens =
  let* event = Sim.Fault.parse_event_tokens tokens in
  let* () = Sim.Fault.validate event in
  Ok (Fault_decl event)

let parse_directive tokens =
  match tokens with
  | "node" :: rest -> parse_node_decl rest
  | "link" :: rest -> parse_link_decl rest
  | "route" :: rest -> parse_route_decl rest
  | "producer" :: rest -> parse_producer_decl rest
  | "generate" :: rest -> parse_generate_decl rest
  | "fault" :: rest -> parse_fault_decl rest
  | directive :: _ ->
    Error
      (Printf.sprintf
         "unknown directive %S (expected node, link, route, producer, \
          generate or fault)"
         directive)
  | [] -> assert false

let parse_spec text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let tokens =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun tok -> tok <> "")
      in
      match tokens with
      | [] -> go (lineno + 1) acc rest
      | comment :: _ when String.length comment > 0 && comment.[0] = '#' ->
        go (lineno + 1) acc rest
      | tokens -> (
        match parse_directive tokens with
        | Ok d -> go (lineno + 1) ((lineno, d) :: acc) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)))
  in
  go 1 [] lines

(* --- printing ---

   The canonical form: one directive per line, every attribute written
   out explicitly (defaults resolved), floats rendered with just enough
   digits to parse back to the identical value.  [parse_spec] of the
   output yields the same directives, so print/parse is a fixpoint. *)

let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec latency_terms = function
  | Sim.Latency.Sum ts -> List.concat_map latency_terms ts
  | t -> [ t ]

let print_latency_term = function
  | Sim.Latency.Constant ms -> "const:" ^ float_str ms
  | Sim.Latency.Uniform { lo; hi } ->
    Printf.sprintf "uniform:%s:%s" (float_str lo) (float_str hi)
  | Sim.Latency.Normal { mean; stddev; min } ->
    Printf.sprintf "normal:%s:%s:%s" (float_str mean) (float_str stddev)
      (float_str min)
  | Sim.Latency.Shifted_exponential { shift; rate } ->
    Printf.sprintf "shifted_exp:%s:%s" (float_str shift) (float_str rate)
  | Sim.Latency.Sum _ -> assert false (* flattened by latency_terms *)

let print_latency l =
  match latency_terms l with
  | [] -> "const:0"
  | terms -> String.concat "+" (List.map print_latency_term terms)

let print_directive = function
  | Node_decl d ->
    Printf.sprintf "node %s cs=%d policy=%s proc=%s honor_scope=%b caching=%b"
      d.node_name d.cs_capacity
      (Eviction.to_string d.cs_policy)
      (print_latency d.forwarding_delay)
      d.honor_scope d.caching
  | Link_decl d ->
    let back =
      match d.latency_back with
      | Some l -> Printf.sprintf " latency_back=%s" (print_latency l)
      | None -> ""
    in
    Printf.sprintf "link %s %s latency=%s%s loss=%s" d.link_a d.link_b
      (print_latency d.latency) back (float_str d.loss)
  | Route_decl d ->
    Printf.sprintf "route %s %s via %s" d.route_node d.route_prefix d.route_via
  | Producer_decl d ->
    Printf.sprintf "producer %s %s key=%s payload=%d private=%b delay=%s"
      d.producer_node d.producer_prefix d.producer_key d.payload_size
      d.producer_private
      (float_str d.production_delay_ms)
  | Generate_decl d -> (
    let tail =
      Printf.sprintf "policy=%s payload=%d seed=%d"
        (Eviction.to_string d.gen_policy)
        d.gen_payload d.gen_seed
    in
    match d.gen_model with
    | Gen_tree { arity; tiers } ->
      Printf.sprintf "generate tree name=%s arity=%d cs=%s latency=%s %s"
        d.gen_name arity
        (String.concat ","
           (List.map (fun t -> string_of_int t.tier_cs) tiers))
        (String.concat ","
           (List.map (fun t -> print_latency t.tier_latency) tiers))
        tail
    | Gen_ws { ws_n; ws_k; ws_beta; ws_cs; ws_latency } ->
      Printf.sprintf "generate ws name=%s n=%d k=%d beta=%s cs=%d latency=%s %s"
        d.gen_name ws_n ws_k (float_str ws_beta) ws_cs
        (print_latency ws_latency) tail
    | Gen_ba { ba_n; ba_m; ba_cs; ba_latency } ->
      Printf.sprintf "generate ba name=%s n=%d m=%d cs=%d latency=%s %s"
        d.gen_name ba_n ba_m ba_cs (print_latency ba_latency) tail)
  | Fault_decl e -> "fault " ^ Sim.Fault.print_event e

let print spec =
  String.concat "" (List.map (fun (_, d) -> print_directive d ^ "\n") spec)

(* --- deterministic graph generation --- *)

module Gen = struct
  type graph = {
    node_count : int;
    edges : (int * int) list;
    tier : int array;
    root : int;
    edge_routers : int list;
    diameter : int;
  }

  let edge_compare (a1, b1) (a2, b2) =
    match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

  let canonical (a, b) = if a < b then (a, b) else (b, a)

  (* CSR adjacency with each neighbour segment sorted ascending, so
     traversals visit neighbours in id order — parent choice in BFS is
     then a pure function of the edge set, independent of construction
     order. *)
  let adjacency n edges =
    let deg = Array.make n 0 in
    List.iter
      (fun (a, b) ->
        deg.(a) <- deg.(a) + 1;
        deg.(b) <- deg.(b) + 1)
      edges;
    let off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      off.(i + 1) <- off.(i) + deg.(i)
    done;
    let adj = Array.make (max 1 off.(n)) 0 in
    let cursor = Array.copy off in
    List.iter
      (fun (a, b) ->
        adj.(cursor.(a)) <- b;
        cursor.(a) <- cursor.(a) + 1;
        adj.(cursor.(b)) <- a;
        cursor.(b) <- cursor.(b) + 1)
      edges;
    for i = 0 to n - 1 do
      let len = off.(i + 1) - off.(i) in
      if len > 1 then begin
        let seg = Array.sub adj off.(i) len in
        Array.sort Int.compare seg;
        Array.blit seg 0 adj off.(i) len
      end
    done;
    (off, adj)

  let bfs (off, adj) n src =
    let dist = Array.make n (-1) in
    let parent = Array.make n (-1) in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      for i = off.(u) to off.(u + 1) - 1 do
        let v = adj.(i) in
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v q
        end
      done
    done;
    (dist, parent)

  (* Two-sweep BFS: exact on trees, a sharp lower-bound estimate on
     general graphs — which is the safe direction for everything we
     derive from it (hop limits and lifetimes get slack added). *)
  let two_sweep_diameter csr n root =
    let dist, _ = bfs csr n root in
    let far = ref root in
    Array.iteri (fun i d -> if d > dist.(!far) then far := i) dist;
    let dist2, _ = bfs csr n !far in
    Array.fold_left (fun m d -> if d > m then d else m) 0 dist2

  let tree_graph ~arity ~ntiers =
    let counts = Array.make ntiers 1 in
    for t = 1 to ntiers - 1 do
      counts.(t) <- counts.(t - 1) * arity
    done;
    let off = Array.make (ntiers + 1) 0 in
    for t = 0 to ntiers - 1 do
      off.(t + 1) <- off.(t) + counts.(t)
    done;
    let n = off.(ntiers) in
    let tier = Array.make n 0 in
    for t = 0 to ntiers - 1 do
      for i = off.(t) to off.(t + 1) - 1 do
        tier.(i) <- t
      done
    done;
    let edges = ref [] in
    for t = ntiers - 1 downto 1 do
      for i = counts.(t) - 1 downto 0 do
        let child = off.(t) + i in
        let parent = off.(t - 1) + (i / arity) in
        edges := (parent, child) :: !edges
      done
    done;
    let leaves = List.init counts.(ntiers - 1) (fun i -> off.(ntiers - 1) + i) in
    (n, !edges, tier, 0, leaves)

  (* Watts–Strogatz with a kept ring: the j = 1 ring edges are never
     rewired, so the graph stays connected for every seed and beta —
     a property the qcheck suite relies on.  Only the longer chords
     (j >= 2) rewire, each with probability beta, to a uniform
     non-duplicate target (bounded retries; the original chord is kept
     if 32 draws fail).  Edge count, and hence mean degree k, is
     invariant. *)
  let ws_graph ~n ~k ~beta ~seed =
    let rng = Sim.Rng.create seed in
    let tbl = Hashtbl.create (n * k) in
    let mem a b = Hashtbl.mem tbl (canonical (a, b)) in
    let add a b = Hashtbl.replace tbl (canonical (a, b)) () in
    let remove a b = Hashtbl.remove tbl (canonical (a, b)) in
    for i = 0 to n - 1 do
      for j = 1 to k / 2 do
        add i ((i + j) mod n)
      done
    done;
    for i = 0 to n - 1 do
      for j = 2 to k / 2 do
        let b = (i + j) mod n in
        if mem i b && Sim.Rng.bernoulli rng beta then begin
          let rec rewire attempts =
            if attempts > 0 then begin
              let c = Sim.Rng.int rng n in
              if c <> i && not (mem i c) then begin
                remove i b;
                add i c
              end
              else rewire (attempts - 1)
            end
          in
          rewire 32
        end
      done
    done;
    let edges =
      Hashtbl.fold (fun e () acc -> e :: acc) tbl []
      |> List.sort edge_compare
    in
    (n, edges, Array.make n 0, 0, List.init (n - 1) (fun i -> i + 1))

  (* Barabási–Albert by the repeated-endpoints trick: every edge pushes
     both endpoints into [ep], so a uniform draw from [ep] is a draw
     proportional to degree.  Seed graph is a clique on m+1 nodes;
     every arriving node is connected, so the graph is connected by
     construction. *)
  let ba_graph ~n ~m ~seed =
    let rng = Sim.Rng.create seed in
    let m0 = m + 1 in
    let total_edges = (m0 * (m0 - 1) / 2) + ((n - m0) * m) in
    let ep = Array.make (2 * total_edges) 0 in
    let ep_len = ref 0 in
    let edges = ref [] in
    let push_edge a b =
      edges := (a, b) :: !edges;
      ep.(!ep_len) <- a;
      ep.(!ep_len + 1) <- b;
      ep_len := !ep_len + 2
    in
    for a = 0 to m0 - 1 do
      for b = a + 1 to m0 - 1 do
        push_edge a b
      done
    done;
    let targets = Array.make m 0 in
    for v = m0 to n - 1 do
      let chosen = ref 0 in
      while !chosen < m do
        let t = ep.(Sim.Rng.int rng !ep_len) in
        let dup = ref false in
        for i = 0 to !chosen - 1 do
          if targets.(i) = t then dup := true
        done;
        if not !dup then begin
          targets.(!chosen) <- t;
          incr chosen
        end
      done;
      for i = 0 to m - 1 do
        push_edge targets.(i) v
      done
    done;
    let graph_edges = List.rev !edges in
    (* Root at the highest-degree hub (lowest id on ties) — for BA that
       is where a producer would peer. *)
    let deg = Array.make n 0 in
    List.iter
      (fun (a, b) ->
        deg.(a) <- deg.(a) + 1;
        deg.(b) <- deg.(b) + 1)
      graph_edges;
    let root = ref 0 in
    Array.iteri (fun i d -> if d > deg.(!root) then root := i) deg;
    let edge_routers =
      List.filter (fun i -> i <> !root) (List.init n (fun i -> i))
    in
    (n, graph_edges, Array.make n 0, !root, edge_routers)

  let graph_of (d : generate_decl) =
    let n, raw_edges, tier, root, edge_routers =
      match d.gen_model with
      | Gen_tree { arity; tiers } ->
        tree_graph ~arity ~ntiers:(List.length tiers)
      | Gen_ws { ws_n; ws_k; ws_beta; _ } ->
        ws_graph ~n:ws_n ~k:ws_k ~beta:ws_beta ~seed:d.gen_seed
      | Gen_ba { ba_n; ba_m; _ } -> ba_graph ~n:ba_n ~m:ba_m ~seed:d.gen_seed
    in
    let edges =
      List.map canonical raw_edges |> List.sort_uniq edge_compare
    in
    let csr = adjacency n edges in
    let dist, _ = bfs csr n root in
    Array.iter (fun d -> assert (d >= 0)) dist;
    let diameter = two_sweep_diameter csr n root in
    { node_count = n; edges; tier; root; edge_routers; diameter }

  let parents g =
    let csr = adjacency g.node_count g.edges in
    let _, parent = bfs csr g.node_count g.root in
    parent

  let node_label (d : generate_decl) g i =
    match d.gen_model with
    | Gen_tree _ -> Printf.sprintf "%s-t%d-n%d" d.gen_name g.tier.(i) i
    | Gen_ws _ | Gen_ba _ -> Printf.sprintf "%s-n%d" d.gen_name i

  let producer_label (d : generate_decl) = d.gen_name ^ "-P"

  let prefix (d : generate_decl) = Name.of_string ("/" ^ d.gen_name)

  (* One traversal can cross at most diameter routers plus the producer
     host and the consumer's own node; doubling leaves room for the
     lower-bound nature of the two-sweep estimate on non-trees. *)
  let hop_limit g = (2 * g.diameter) + 4

  let mean_link_latency (d : generate_decl) =
    match d.gen_model with
    | Gen_tree { tiers; _ } ->
      let sum =
        List.fold_left
          (fun acc t -> acc +. Sim.Latency.mean t.tier_latency)
          0. tiers
      in
      sum /. float_of_int (List.length tiers)
    | Gen_ws { ws_latency; _ } -> Sim.Latency.mean ws_latency
    | Gen_ba { ba_latency; _ } -> Sim.Latency.mean ba_latency

  (* PIT lifetime / default interest timeout, scaled so an interest
     survives a full round trip across the generated graph with a
     generous per-hop processing allowance and retransmission slack;
     never below the stack's 4 s default. *)
  let interest_lifetime_ms (d : generate_decl) g =
    let per_hop = mean_link_latency d +. 1. in
    let rtt = 2. *. float_of_int (g.diameter + 2) *. per_hop in
    Float.max 4000. (8. *. rtt)
end

(* --- building --- *)

type builder = {
  net : Network.t;
  (* Declarations in reverse order plus a name index: generated
     topologies declare tens of thousands of nodes, so membership and
     append must both be O(1), not the list scans a hand-written spec
     never noticed. *)
  mutable decls_rev : (string * Node.t) list;
  names : (string, Node.t) Hashtbl.t;
  (* (a, b) -> face id on a toward b *)
  faces : (string * string, int) Hashtbl.t;
}

let find_node b name =
  match Hashtbl.find_opt b.names name with
  | Some node -> Ok node
  | None ->
    Error
      (Printf.sprintf "undeclared node %S (node lines must come first)" name)

let declare_node b name node =
  b.decls_rev <- (name, node) :: b.decls_rev;
  Hashtbl.replace b.names name node

let build_node b (d : node_decl) =
  if Hashtbl.mem b.names d.node_name then
    Error (Printf.sprintf "duplicate node %S" d.node_name)
  else begin
    let node =
      Network.add_node b.net ~cs_capacity:d.cs_capacity ~cs_policy:d.cs_policy
        ~forwarding_delay:d.forwarding_delay ~honor_scope:d.honor_scope
        ~caching:d.caching d.node_name
    in
    declare_node b d.node_name node;
    Ok ()
  end

let build_link b (d : link_decl) =
  let* a = find_node b d.link_a in
  let* bn = find_node b d.link_b in
  if Hashtbl.mem b.faces (d.link_a, d.link_b) then
    Error (Printf.sprintf "duplicate link %s-%s" d.link_a d.link_b)
  else begin
    let fa, fb =
      Network.connect b.net ~loss:d.loss ?latency_ba:d.latency_back
        ~latency:d.latency a bn
    in
    Hashtbl.replace b.faces (d.link_a, d.link_b) fa;
    Hashtbl.replace b.faces (d.link_b, d.link_a) fb;
    Ok ()
  end

let build_route b (d : route_decl) =
  let* node = find_node b d.route_node in
  let* _ = find_node b d.route_via in
  match Hashtbl.find_opt b.faces (d.route_node, d.route_via) with
  | Some face ->
    Network.route b.net node ~prefix:(Name.of_string d.route_prefix) ~via:face;
    Ok ()
  | None ->
    Error
      (Printf.sprintf "route %s via %s: no such link (declare it with 'link')"
         d.route_node d.route_via)

let register_producer node (d : producer_decl) =
  let prefix = Name.of_string d.producer_prefix in
  let payload_of name =
    let h = Ndn_crypto.Sha256.hex_digest (Name.to_string name) in
    let buf = Buffer.create d.payload_size in
    while Buffer.length buf < d.payload_size do
      Buffer.add_string buf h
    done;
    Buffer.sub buf 0 d.payload_size
  in
  Node.add_producer node ~prefix ~production_delay_ms:d.production_delay_ms
    (fun interest ->
      let name = interest.Interest.name in
      if Name.is_prefix ~prefix name then
        Some
          (Data.create ~producer_private:d.producer_private
             ~producer:d.producer_node ~key:d.producer_key
             ~payload:(payload_of name) name)
      else None)

let build_producer b (d : producer_decl) =
  let* node = find_node b d.producer_node in
  register_producer node d;
  Ok ()

(* Expand a [generate] directive into live nodes, links, and
   shortest-path routes toward a producer host attached at the graph
   root.  Everything is derived from the decl (via {!Gen}), so the
   directive prints canonically as the one line it came from while the
   network holds the full graph. *)
let build_generate b (d : generate_decl) =
  let g = Gen.graph_of d in
  let labels = Array.init g.node_count (fun i -> Gen.node_label d g i) in
  let plabel = Gen.producer_label d in
  let clash =
    if Hashtbl.mem b.names plabel then Some plabel
    else
      Array.fold_left
        (fun acc l -> if acc = None && Hashtbl.mem b.names l then Some l else acc)
        None labels
  in
  match clash with
  | Some l ->
    Error (Printf.sprintf "generate %s: node %S already declared" d.gen_name l)
  | None ->
    let lifetime = Gen.interest_lifetime_ms d g in
    let tier_arr =
      match d.gen_model with
      | Gen_tree { tiers; _ } -> Array.of_list tiers
      | Gen_ws { ws_cs; ws_latency; _ } ->
        [| { tier_cs = ws_cs; tier_latency = ws_latency } |]
      | Gen_ba { ba_cs; ba_latency; _ } ->
        [| { tier_cs = ba_cs; tier_latency = ba_latency } |]
    in
    let tier_of i = if g.tier.(i) < Array.length tier_arr then g.tier.(i) else 0 in
    for i = 0 to g.node_count - 1 do
      let spec = tier_arr.(tier_of i) in
      let node =
        Network.add_node b.net ~cs_capacity:spec.tier_cs
          ~cs_policy:d.gen_policy ~pit_lifetime_ms:lifetime labels.(i)
      in
      declare_node b labels.(i) node
    done;
    List.iter
      (fun (a, bb) ->
        (* A link takes the latency model of its deeper endpoint's tier
           (identical for ws/ba, where there is a single tier). *)
        let t = max (tier_of a) (tier_of bb) in
        let latency = tier_arr.(t).tier_latency in
        let na = Hashtbl.find b.names labels.(a) in
        let nb = Hashtbl.find b.names labels.(bb) in
        let fa, fb = Network.connect b.net ~latency na nb in
        Hashtbl.replace b.faces (labels.(a), labels.(bb)) fa;
        Hashtbl.replace b.faces (labels.(bb), labels.(a)) fb)
      g.edges;
    let pnode =
      Network.add_node b.net ~cs_capacity:0 ~pit_lifetime_ms:lifetime plabel
    in
    declare_node b plabel pnode;
    let root_node = Hashtbl.find b.names labels.(g.root) in
    let froot, fp =
      Network.connect b.net ~latency:tier_arr.(0).tier_latency root_node pnode
    in
    Hashtbl.replace b.faces (labels.(g.root), plabel) froot;
    Hashtbl.replace b.faces (plabel, labels.(g.root)) fp;
    let prefix = Gen.prefix d in
    let parent = Gen.parents g in
    for i = 0 to g.node_count - 1 do
      if i <> g.root then begin
        let face = Hashtbl.find b.faces (labels.(i), labels.(parent.(i))) in
        Network.route b.net (Hashtbl.find b.names labels.(i)) ~prefix ~via:face
      end
    done;
    Network.route b.net root_node ~prefix ~via:froot;
    register_producer pnode
      {
        producer_node = plabel;
        producer_prefix = "/" ^ d.gen_name;
        producer_key = plabel ^ "-key";
        payload_size = d.gen_payload;
        producer_private = false;
        production_delay_ms = 0.4;
      };
    Ok ()

(* Fault lines must follow the nodes/links they name — the same
   declaration-order rule as routes — so install errors stay local. *)
let build_fault b e = Network.install_faults b.net [ e ]

let build ?(seed = 42) ?tracer ?shards spec =
  let b =
    {
      net = Network.create ~seed ?tracer ?shards ();
      decls_rev = [];
      names = Hashtbl.create 64;
      faces = Hashtbl.create 16;
    }
  in
  let faults = ref [] in
  let rec go = function
    | [] ->
      Ok
        {
          network = b.net;
          nodes = List.rev b.decls_rev;
          faults = Sim.Fault.sort !faults;
        }
    | (lineno, d) :: rest -> (
      let result =
        match d with
        | Node_decl d -> build_node b d
        | Link_decl d -> build_link b d
        | Route_decl d -> build_route b d
        | Producer_decl d -> build_producer b d
        | Generate_decl d -> build_generate b d
        | Fault_decl e ->
          let* () = build_fault b e in
          faults := e :: !faults;
          Ok ()
      in
      match result with
      | Ok () -> go rest
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go spec

let parse ?seed ?tracer ?shards text =
  let* spec = parse_spec text in
  build ?seed ?tracer ?shards spec

let parse_file ?seed ?tracer ?shards ~path () =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      parse ?seed ?tracer ?shards text)

let parse_latency s = parse_latency s
