type t = {
  network : Network.t;
  nodes : (string * Node.t) list;
  faults : Sim.Fault.schedule;
}

let node t name = List.assoc name t.nodes

(* --- AST ---

   Parsing and building are separate passes: a spec is first read into
   directives (with defaults resolved, so printing is canonical), then
   [build] turns directives into a live network.  Each directive keeps
   its source line so semantic errors still point into the file. *)

type node_decl = {
  node_name : string;
  cs_capacity : int;
  cs_policy : Eviction.t;
  forwarding_delay : Sim.Latency.t;
  honor_scope : bool;
  caching : bool;
}

type link_decl = {
  link_a : string;
  link_b : string;
  latency : Sim.Latency.t;
  latency_back : Sim.Latency.t option;
  loss : float;
}

type route_decl = {
  route_node : string;
  route_prefix : string;
  route_via : string;
}

type producer_decl = {
  producer_node : string;
  producer_prefix : string;
  producer_key : string;
  payload_size : int;
  producer_private : bool;
  production_delay_ms : float;
}

type directive =
  | Node_decl of node_decl
  | Link_decl of link_decl
  | Route_decl of route_decl
  | Producer_decl of producer_decl
  | Fault_decl of Sim.Fault.event

type spec = (int * directive) list

let directives spec = List.map snd spec

(* --- small parsing helpers --- *)

let ( let* ) = Result.bind

let float_field name s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: expected a number, got %S" name s)

let int_field name s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

let bool_field name s =
  match String.lowercase_ascii s with
  | "true" | "yes" | "1" -> Ok true
  | "false" | "no" | "0" -> Ok false
  | _ -> Error (Printf.sprintf "%s: expected a boolean, got %S" name s)

(* Range checks run at parse time so a bad parameter is reported with
   its line number, not discovered as a NaN latency mid-run. *)
let non_negative name v =
  if Float.is_finite v && v >= 0. then Ok v
  else Error (Printf.sprintf "%s: expected a non-negative number, got %g" name v)

let positive name v =
  if Float.is_finite v && v > 0. then Ok v
  else Error (Printf.sprintf "%s: expected a positive number, got %g" name v)

let probability name v =
  if Float.is_finite v && v >= 0. && v <= 1. then Ok v
  else Error (Printf.sprintf "%s: expected a probability in [0, 1], got %g" name v)

let rec parse_latency_term s =
  match String.split_on_char ':' s with
  | [ "const"; ms ] ->
    let* ms = float_field "const" ms in
    let* ms = non_negative "const" ms in
    Ok (Sim.Latency.Constant ms)
  | [ "uniform"; lo; hi ] ->
    let* lo = float_field "uniform lo" lo in
    let* hi = float_field "uniform hi" hi in
    let* lo = non_negative "uniform lo" lo in
    let* hi = non_negative "uniform hi" hi in
    if hi < lo then
      Error (Printf.sprintf "uniform: hi %g below lo %g" hi lo)
    else Ok (Sim.Latency.Uniform { lo; hi })
  | [ "normal"; mean; stddev; min ] ->
    let* mean = float_field "normal mean" mean in
    let* stddev = float_field "normal stddev" stddev in
    let* min = float_field "normal min" min in
    let* mean = non_negative "normal mean" mean in
    let* stddev = non_negative "normal stddev" stddev in
    let* min = non_negative "normal min" min in
    Ok (Sim.Latency.Normal { mean; stddev; min })
  | [ "shifted_exp"; shift; rate ] ->
    let* shift = float_field "shifted_exp shift" shift in
    let* rate = float_field "shifted_exp rate" rate in
    let* shift = non_negative "shifted_exp shift" shift in
    let* rate = positive "shifted_exp rate" rate in
    Ok (Sim.Latency.Shifted_exponential { shift; rate })
  | _ ->
    Error
      (Printf.sprintf
         "unknown latency model %S (expected const:MS, uniform:LO:HI, \
          normal:MEAN:SD:MIN, shifted_exp:SHIFT:RATE, or a +-joined sum)"
         s)

and parse_latency s =
  match String.split_on_char '+' s with
  | [ single ] -> parse_latency_term single
  | parts ->
    let* terms =
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          let* term = parse_latency_term part in
          Ok (term :: acc))
        (Ok []) parts
    in
    Ok (Sim.Latency.Sum (List.rev terms))

(* key=value attribute lists, validated against the directive's schema
   so a typo'd key is reported rather than silently ignored *)
let parse_attrs ~directive ~allowed tokens =
  List.fold_left
    (fun acc token ->
      let* acc = acc in
      match String.index_opt token '=' with
      | Some i ->
        let key = String.sub token 0 i in
        let value = String.sub token (i + 1) (String.length token - i - 1) in
        if List.mem key allowed then Ok ((key, value) :: acc)
        else
          Error
            (Printf.sprintf "%s: unknown attribute %S (allowed: %s)" directive
               key
               (String.concat ", " allowed))
      | None ->
        Error
          (Printf.sprintf "%s: expected key=value, got %S" directive token))
    (Ok []) tokens

let attr attrs key = List.assoc_opt key attrs

let is_attr token = String.contains token '='

(* --- directive parsers --- *)

let parse_node_decl tokens =
  match tokens with
  | [] ->
    Error "node: expected a node name, as in 'node R cs=10000 policy=lru'"
  | name :: _ when is_attr name ->
    Error
      (Printf.sprintf
         "node: expected a node name before attributes, got %S" name)
  | name :: attrs ->
    let* attrs =
      parse_attrs ~directive:"node"
        ~allowed:[ "cs"; "policy"; "proc"; "honor_scope"; "caching" ]
        attrs
    in
    let* cs_capacity =
      match attr attrs "cs" with Some v -> int_field "cs" v | None -> Ok 0
    in
    let* cs_policy =
      match attr attrs "policy" with
      | Some v -> (
        match Eviction.of_string v with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "unknown eviction policy %S" v))
      | None -> Ok Eviction.Lru
    in
    let* forwarding_delay =
      match attr attrs "proc" with
      | Some v -> parse_latency v
      | None -> Ok (Sim.Latency.Constant 0.02)
    in
    let* honor_scope =
      match attr attrs "honor_scope" with
      | Some v -> bool_field "honor_scope" v
      | None -> Ok true
    in
    let* caching =
      match attr attrs "caching" with
      | Some v -> bool_field "caching" v
      | None -> Ok true
    in
    Ok
      (Node_decl
         { node_name = name; cs_capacity; cs_policy; forwarding_delay;
           honor_scope; caching })

let parse_link_decl tokens =
  match tokens with
  | [] | [ _ ] ->
    Error
      "link: expected two endpoint names, as in 'link U R latency=const:1'"
  | a :: b :: _ when is_attr a || is_attr b ->
    Error "link: expected two endpoint names before attributes"
  | a :: b :: attrs ->
    let* attrs =
      parse_attrs ~directive:"link"
        ~allowed:[ "latency"; "latency_back"; "loss" ]
        attrs
    in
    let* latency =
      match attr attrs "latency" with
      | Some v -> parse_latency v
      | None -> Ok (Sim.Latency.Constant 1.)
    in
    let* latency_back =
      match attr attrs "latency_back" with
      | Some v ->
        let* l = parse_latency v in
        Ok (Some l)
      | None -> Ok None
    in
    let* loss =
      match attr attrs "loss" with
      | Some v ->
        let* l = float_field "loss" v in
        probability "loss" l
      | None -> Ok 0.
    in
    Ok (Link_decl { link_a = a; link_b = b; latency; latency_back; loss })

let parse_route_decl tokens =
  match tokens with
  | [ node; prefix; "via"; via ] ->
    Ok (Route_decl { route_node = node; route_prefix = prefix; route_via = via })
  | _ ->
    Error
      "route: expected 'route NODE PREFIX via NEIGHBOUR', as in \
       'route U /prod via R'"

let parse_producer_decl tokens =
  match tokens with
  | [] | [ _ ] ->
    Error
      "producer: expected 'producer NODE PREFIX [key=K payload=N \
       private=BOOL delay=MS]'"
  | node :: prefix :: _ when is_attr node || is_attr prefix ->
    Error "producer: expected a node name and a prefix before attributes"
  | node :: prefix :: attrs ->
    let* attrs =
      parse_attrs ~directive:"producer"
        ~allowed:[ "key"; "payload"; "private"; "delay" ]
        attrs
    in
    let producer_key =
      match attr attrs "key" with Some k -> k | None -> node ^ "-key"
    in
    let* payload_size =
      match attr attrs "payload" with
      | Some v -> int_field "payload" v
      | None -> Ok 1024
    in
    let* producer_private =
      match attr attrs "private" with
      | Some v -> bool_field "private" v
      | None -> Ok false
    in
    let* production_delay_ms =
      match attr attrs "delay" with
      | Some v ->
        let* d = float_field "delay" v in
        non_negative "delay" d
      | None -> Ok 0.4
    in
    Ok
      (Producer_decl
         { producer_node = node; producer_prefix = prefix; producer_key;
           payload_size; producer_private; production_delay_ms })

let parse_fault_decl tokens =
  let* event = Sim.Fault.parse_event_tokens tokens in
  let* () = Sim.Fault.validate event in
  Ok (Fault_decl event)

let parse_directive tokens =
  match tokens with
  | "node" :: rest -> parse_node_decl rest
  | "link" :: rest -> parse_link_decl rest
  | "route" :: rest -> parse_route_decl rest
  | "producer" :: rest -> parse_producer_decl rest
  | "fault" :: rest -> parse_fault_decl rest
  | directive :: _ ->
    Error
      (Printf.sprintf
         "unknown directive %S (expected node, link, route, producer or fault)"
         directive)
  | [] -> assert false

let parse_spec text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let tokens =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun tok -> tok <> "")
      in
      match tokens with
      | [] -> go (lineno + 1) acc rest
      | comment :: _ when String.length comment > 0 && comment.[0] = '#' ->
        go (lineno + 1) acc rest
      | tokens -> (
        match parse_directive tokens with
        | Ok d -> go (lineno + 1) ((lineno, d) :: acc) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)))
  in
  go 1 [] lines

(* --- printing ---

   The canonical form: one directive per line, every attribute written
   out explicitly (defaults resolved), floats rendered with just enough
   digits to parse back to the identical value.  [parse_spec] of the
   output yields the same directives, so print/parse is a fixpoint. *)

let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec latency_terms = function
  | Sim.Latency.Sum ts -> List.concat_map latency_terms ts
  | t -> [ t ]

let print_latency_term = function
  | Sim.Latency.Constant ms -> "const:" ^ float_str ms
  | Sim.Latency.Uniform { lo; hi } ->
    Printf.sprintf "uniform:%s:%s" (float_str lo) (float_str hi)
  | Sim.Latency.Normal { mean; stddev; min } ->
    Printf.sprintf "normal:%s:%s:%s" (float_str mean) (float_str stddev)
      (float_str min)
  | Sim.Latency.Shifted_exponential { shift; rate } ->
    Printf.sprintf "shifted_exp:%s:%s" (float_str shift) (float_str rate)
  | Sim.Latency.Sum _ -> assert false (* flattened by latency_terms *)

let print_latency l =
  match latency_terms l with
  | [] -> "const:0"
  | terms -> String.concat "+" (List.map print_latency_term terms)

let print_directive = function
  | Node_decl d ->
    Printf.sprintf "node %s cs=%d policy=%s proc=%s honor_scope=%b caching=%b"
      d.node_name d.cs_capacity
      (Eviction.to_string d.cs_policy)
      (print_latency d.forwarding_delay)
      d.honor_scope d.caching
  | Link_decl d ->
    let back =
      match d.latency_back with
      | Some l -> Printf.sprintf " latency_back=%s" (print_latency l)
      | None -> ""
    in
    Printf.sprintf "link %s %s latency=%s%s loss=%s" d.link_a d.link_b
      (print_latency d.latency) back (float_str d.loss)
  | Route_decl d ->
    Printf.sprintf "route %s %s via %s" d.route_node d.route_prefix d.route_via
  | Producer_decl d ->
    Printf.sprintf "producer %s %s key=%s payload=%d private=%b delay=%s"
      d.producer_node d.producer_prefix d.producer_key d.payload_size
      d.producer_private
      (float_str d.production_delay_ms)
  | Fault_decl e -> "fault " ^ Sim.Fault.print_event e

let print spec =
  String.concat "" (List.map (fun (_, d) -> print_directive d ^ "\n") spec)

(* --- building --- *)

type builder = {
  net : Network.t;
  mutable decls : (string * Node.t) list;
  (* (a, b) -> face id on a toward b *)
  faces : (string * string, int) Hashtbl.t;
}

let find_node b name =
  match List.assoc_opt name b.decls with
  | Some node -> Ok node
  | None ->
    Error
      (Printf.sprintf "undeclared node %S (node lines must come first)" name)

let build_node b (d : node_decl) =
  if List.mem_assoc d.node_name b.decls then
    Error (Printf.sprintf "duplicate node %S" d.node_name)
  else begin
    let node =
      Network.add_node b.net ~cs_capacity:d.cs_capacity ~cs_policy:d.cs_policy
        ~forwarding_delay:d.forwarding_delay ~honor_scope:d.honor_scope
        ~caching:d.caching d.node_name
    in
    b.decls <- b.decls @ [ (d.node_name, node) ];
    Ok ()
  end

let build_link b (d : link_decl) =
  let* a = find_node b d.link_a in
  let* bn = find_node b d.link_b in
  if Hashtbl.mem b.faces (d.link_a, d.link_b) then
    Error (Printf.sprintf "duplicate link %s-%s" d.link_a d.link_b)
  else begin
    let fa, fb =
      Network.connect b.net ~loss:d.loss ?latency_ba:d.latency_back
        ~latency:d.latency a bn
    in
    Hashtbl.replace b.faces (d.link_a, d.link_b) fa;
    Hashtbl.replace b.faces (d.link_b, d.link_a) fb;
    Ok ()
  end

let build_route b (d : route_decl) =
  let* node = find_node b d.route_node in
  let* _ = find_node b d.route_via in
  match Hashtbl.find_opt b.faces (d.route_node, d.route_via) with
  | Some face ->
    Network.route b.net node ~prefix:(Name.of_string d.route_prefix) ~via:face;
    Ok ()
  | None ->
    Error
      (Printf.sprintf "route %s via %s: no such link (declare it with 'link')"
         d.route_node d.route_via)

let build_producer b (d : producer_decl) =
  let* node = find_node b d.producer_node in
  let prefix = Name.of_string d.producer_prefix in
  let payload_of name =
    let h = Ndn_crypto.Sha256.hex_digest (Name.to_string name) in
    let buf = Buffer.create d.payload_size in
    while Buffer.length buf < d.payload_size do
      Buffer.add_string buf h
    done;
    Buffer.sub buf 0 d.payload_size
  in
  Node.add_producer node ~prefix ~production_delay_ms:d.production_delay_ms
    (fun interest ->
      let name = interest.Interest.name in
      if Name.is_prefix ~prefix name then
        Some
          (Data.create ~producer_private:d.producer_private
             ~producer:d.producer_node ~key:d.producer_key
             ~payload:(payload_of name) name)
      else None);
  Ok ()

(* Fault lines must follow the nodes/links they name — the same
   declaration-order rule as routes — so install errors stay local. *)
let build_fault b e = Network.install_faults b.net [ e ]

let build ?(seed = 42) ?tracer spec =
  let b =
    {
      net = Network.create ~seed ?tracer ();
      decls = [];
      faces = Hashtbl.create 16;
    }
  in
  let faults = ref [] in
  let rec go = function
    | [] ->
      Ok { network = b.net; nodes = b.decls; faults = Sim.Fault.sort !faults }
    | (lineno, d) :: rest -> (
      let result =
        match d with
        | Node_decl d -> build_node b d
        | Link_decl d -> build_link b d
        | Route_decl d -> build_route b d
        | Producer_decl d -> build_producer b d
        | Fault_decl e ->
          let* () = build_fault b e in
          faults := e :: !faults;
          Ok ()
      in
      match result with
      | Ok () -> go rest
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go spec

let parse ?seed ?tracer text =
  let* spec = parse_spec text in
  build ?seed ?tracer spec

let parse_file ?seed ?tracer ~path () =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      parse ?seed ?tracer text)

let parse_latency s = parse_latency s
