(** Negative acknowledgements.

    The original NDN wire has only interests and content; deployed
    forwarders (NFD) added NACKs so that a router which {e cannot}
    satisfy or forward an interest can say so instead of letting the
    downstream consumer discover the failure by timeout.  Under
    interest-flooding overload this matters twice: honest consumers
    recover in an RTT instead of a PIT lifetime, and the NACK stream
    itself is part of the side channel the overload experiments
    measure.

    A NACK travels the reverse path of the interest it answers, like
    Data but without satisfying anything: PIT state is consumed so
    later retransmissions re-forward.  Generation and propagation are
    disabled by default ([Ndn.Node] ignores the feature unless
    switched on), keeping legacy runs byte-identical. *)

type reason =
  | Congested  (** A bounded link transmission queue refused the hop. *)
  | No_route  (** No FIB entry matched at some upstream router. *)
  | Pit_full  (** A finite PIT's admission policy refused the entry. *)
  | Duplicate  (** The nonce was already pending (forwarding loop). *)

type t = private {
  name : Name.t;  (** Name of the interest being refused. *)
  nonce : int64;  (** Nonce of the refused interest. *)
  reason : reason;
}

val create : nonce:int64 -> reason:reason -> Name.t -> t

val reason_to_string : reason -> string
(** ["congested"], ["no_route"], ["pit_full"], ["duplicate"] — also
    the suffixes of the registered [nack.*] trace kinds. *)

val reason_of_string : string -> reason option

val trace_kind : reason -> Sim.Trace.kind
(** The registered [Sim.Trace] kind for this reason ([nack.congested],
    [nack.no_route], [nack.pit_full], [nack.duplicate]).  ndnlint rule
    T3 fails the build if a constructor is added here without a
    matching registry entry. *)

val import : t -> t
(** Re-intern the name in the current domain's hash-cons table
    ({!Name.import}), for packets crossing shards.  Semantically the
    identity. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
