type reason = Congested | No_route | Pit_full | Duplicate

type t = { name : Name.t; nonce : int64; reason : reason }

let create ~nonce ~reason name = { name; nonce; reason }

let reason_to_string = function
  | Congested -> "congested"
  | No_route -> "no_route"
  | Pit_full -> "pit_full"
  | Duplicate -> "duplicate"

let reason_of_string s =
  match String.lowercase_ascii s with
  | "congested" -> Some Congested
  | "no_route" -> Some No_route
  | "pit_full" -> Some Pit_full
  | "duplicate" -> Some Duplicate
  | _ -> None

(* One registered trace kind per reason — ndnlint rule T3 checks this
   mapping stays total against lib/sim/trace_kinds.txt. *)
let trace_kind = function
  | Congested -> Sim.Trace.Nack_congested
  | No_route -> Sim.Trace.Nack_no_route
  | Pit_full -> Sim.Trace.Nack_pit_full
  | Duplicate -> Sim.Trace.Nack_duplicate

let pp ppf t =
  Format.fprintf ppf "Nack(%a nonce=%Ld reason=%s)" Name.pp t.name t.nonce
    (reason_to_string t.reason)

let equal a b =
  Name.equal a.name b.name && Int64.equal a.nonce b.nonce && a.reason = b.reason

let import t = { t with name = Name.import t.name }
