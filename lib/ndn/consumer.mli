(** A robust consumer endpoint: retransmission and RTT estimation.

    The paper leans on retransmission twice: re-issued interests after
    packet loss are satisfied "by content cached closest to the
    location of actual loss" (Section V-A), and loss-recovery speed is
    the consumers' incentive not to mark everything private (Section
    V-B).  This module provides the retransmitting fetch loop and a
    TCP-style smoothed RTT estimator used to set its timeouts. *)

module Rtt_estimator : sig
  (** Jacobson/Karels smoothed RTT estimation (the classic
      [srtt + 4·rttvar] retransmission timeout). *)

  type t

  val create : ?initial_rto_ms:float -> unit -> t
  (** [initial_rto_ms] defaults to 1000. *)

  val observe : t -> rtt_ms:float -> unit
  (** Feed one RTT sample. *)

  val srtt : t -> float option
  (** Smoothed RTT; [None] before the first sample. *)

  val rto : t -> float
  (** Current retransmission timeout, clamped to [\[10 ms, 60 s\]]. *)

  val backoff : t -> unit
  (** Double the timeout after a loss (exponential backoff). *)

  val samples : t -> int
end

type outcome = {
  data : Data.t option;  (** [None] after exhausting retries. *)
  attempts : int;  (** Interests expressed (1 = no retransmission). *)
  elapsed_ms : float;
}

val fetch :
  Node.t ->
  ?max_retries:int ->
  ?estimator:Rtt_estimator.t ->
  ?consumer_private:bool ->
  on_done:(outcome -> unit) ->
  Name.t ->
  unit
(** Express an interest and retransmit on timeout, up to [max_retries]
    (default 3) additional attempts, with exponentially backed-off
    timeouts from the estimator (a fresh one per call when omitted).
    Per Karn's algorithm only first-attempt RTTs feed the estimator —
    a sample measured across a retransmission is ambiguous and would
    corrupt [srtt] — while the backed-off RTO is retained either way.
    Drive the engine to observe [on_done]. *)

val fetch_sequence :
  Node.t ->
  ?max_retries:int ->
  ?consumer_private:bool ->
  names:Name.t list ->
  on_done:(outcome list -> unit) ->
  unit ->
  unit
(** Fetch names one after another (each completing before the next is
    expressed), sharing one RTT estimator — a miniature reliable
    stream. *)
