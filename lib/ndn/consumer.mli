(** A robust consumer endpoint: retransmission and RTT estimation.

    The paper leans on retransmission twice: re-issued interests after
    packet loss are satisfied "by content cached closest to the
    location of actual loss" (Section V-A), and loss-recovery speed is
    the consumers' incentive not to mark everything private (Section
    V-B).  This module provides the retransmitting fetch loop and a
    TCP-style smoothed RTT estimator used to set its timeouts. *)

module Rtt_estimator : sig
  (** Jacobson/Karels smoothed RTT estimation (the classic
      [srtt + 4·rttvar] retransmission timeout). *)

  type t

  val create : ?initial_rto_ms:float -> unit -> t
  (** [initial_rto_ms] defaults to 1000. *)

  val observe : t -> rtt_ms:float -> unit
  (** Feed one RTT sample. *)

  val srtt : t -> float option
  (** Smoothed RTT; [None] before the first sample. *)

  val rto : t -> float
  (** Current retransmission timeout, clamped to [\[10 ms, 60 s\]]. *)

  val backoff : t -> unit
  (** Double the timeout after a loss (exponential backoff). *)

  val samples : t -> int
end

(** {1 Retry backoff policy}

    Layered {e between} attempts, on top of Karn/RTO: after a failed
    attempt the next interest waits an exponentially growing, jittered
    extra delay, so a population of consumers recovering from the same
    congestion event does not re-synchronize into the very burst that
    congested it. *)

type backoff

val backoff :
  ?base_ms:float ->
  ?factor:float ->
  ?jitter:float ->
  ?max_delay_ms:float ->
  Sim.Rng.t ->
  backoff
(** Delay before re-attempt [n+1] (after 1-based attempt [n] failed):
    [min max_delay_ms (base_ms * factor^(n-1))], then spread uniformly
    by at most [±jitter] (a fraction, drawn from the given generator —
    the policy's own stream, so fetches never perturb node or network
    randomness).  Defaults: 10 ms base, factor 2, jitter 0.1, cap 10 s.
    With [jitter = 0.] the generator is never consulted and the delays
    are exactly the deterministic exponential schedule.
    @raise Invalid_argument unless [base_ms > 0], [factor >= 1],
    [0 <= jitter < 1] and [max_delay_ms >= base_ms]. *)

val backoff_delay : backoff -> attempt:int -> float
(** The delay the policy would impose after 1-based [attempt] failed,
    consuming one jitter draw (none when [jitter = 0.]).  Exposed for
    property tests; {!fetch} calls it internally. *)

type outcome = {
  data : Data.t option;  (** [None] after exhausting retries. *)
  attempts : int;  (** Interests expressed (1 = no retransmission). *)
  elapsed_ms : float;
  nacks : int;  (** Attempts answered by a NACK (always 0 without a
                    backoff policy — plain fetches ignore NACKs). *)
}

val fetch :
  Node.t ->
  ?max_retries:int ->
  ?estimator:Rtt_estimator.t ->
  ?backoff:backoff ->
  ?consumer_private:bool ->
  on_done:(outcome -> unit) ->
  Name.t ->
  unit
(** Express an interest and retransmit on timeout, up to [max_retries]
    (default 3) additional attempts, with exponentially backed-off
    timeouts from the estimator (a fresh one per call when omitted).
    Per Karn's algorithm only first-attempt RTTs feed the estimator —
    a sample measured across a retransmission is ambiguous and would
    corrupt [srtt] — while the backed-off RTO is retained either way.
    Drive the engine to observe [on_done].

    [backoff] (default: none) arms the robust plane: retries wait the
    policy's jittered delay, an arriving NACK (requires
    {!Node.set_nacks_enabled} on the expressing forwarder) fails the
    attempt immediately instead of waiting out the RTO — the fast
    recovery path — and exhausting the budget emits a
    [consumer.give_up] trace record with the attempt and NACK counts.
    Without it, behavior is byte-identical to the historical fetch:
    NACKs are ignored and retries fire exactly at the RTO. *)

val fetch_sequence :
  Node.t ->
  ?max_retries:int ->
  ?backoff:backoff ->
  ?consumer_private:bool ->
  names:Name.t list ->
  on_done:(outcome list -> unit) ->
  unit ->
  unit
(** Fetch names one after another (each completing before the next is
    expressed), sharing one RTT estimator — a miniature reliable
    stream. *)
