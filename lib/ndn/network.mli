(** Topology construction and the paper's experimental setups.

    A network owns the simulation engine and RNG, wires {!Node}s with
    latency/loss links, and provides the four measurement topologies of
    the paper's Figure 3.  Link and processing latencies are calibrated
    so the simulated RTT histograms span the same ranges as the paper's
    testbed measurements (see DESIGN.md §5). *)

type t

val create : ?seed:int -> ?tracer:Sim.Trace.t -> ?shards:int -> unit -> t
(** Fresh network with its own engine and a deterministic RNG
    ([seed] defaults to 42).  [tracer] (default {!Sim.Trace.disabled})
    is shared by the engine, every node created via {!add_node} and the
    links built by {!connect}: enabling it makes the whole stack emit —
    engine dispatch, CS operations, interest/data hops and per-link
    latency draws ([link.tx] records carry the sampled [delay_ms]).

    [shards]: when given (even [~shards:1]), the network runs in
    {e shard mode} on a {!Sim.Shard} partition of [shards] shard-local
    engines.  Nodes are assigned to shards by a platform-independent
    hash of their label, every event is keyed with a
    shard-count-invariant [(node, counter)] pair, link directions draw
    from per-direction split RNGs, and {!run} advances the partition in
    conservative lookahead windows — so traces, counters and
    measurements are byte-identical for {e any} shard count, but differ
    (by design) from legacy mode's single global event order.  Omitting
    [shards] keeps the legacy single-engine path byte-for-byte
    unchanged.  [engine t] is shard 0's engine; drivers in shard mode
    must schedule through {!Node.schedule_app} rather than directly on
    an engine.  Shard-mode traces omit per-engine [engine.step] records
    (they are partition-dependent bookkeeping, not simulation
    semantics).
    @raise Invalid_argument if [shards < 1]. *)

val is_sharded : t -> bool

val set_stall_watchdog :
  t -> ?stall_ms:float -> clock_ms:(unit -> float) -> unit -> unit
(** Arm {!Sim.Shard.set_watchdog} on the underlying partition: a shard
    stalled at a window barrier for [stall_ms] wall-clock ms (default
    30 s, measured by the injected [clock_ms]) raises a diagnostic
    [Failure] naming the stuck shard and the pending queue depths.
    No-op in legacy (unsharded) mode. *)

val shard_count : t -> int
(** Number of shard engines ([1] in legacy mode). *)

val events_processed : t -> int
(** Total events fired — across all shard engines in shard mode. *)

val engine : t -> Sim.Engine.t

val rng : t -> Sim.Rng.t

val tracer : t -> Sim.Trace.t
(** The tracer passed at creation ({!Sim.Trace.disabled} by default). *)

val now : t -> float

val add_node :
  t ->
  ?cs_capacity:int ->
  ?cs_policy:Eviction.t ->
  ?pit_lifetime_ms:float ->
  ?forwarding_delay:Sim.Latency.t ->
  ?honor_scope:bool ->
  ?caching:bool ->
  string ->
  Node.t
(** Create a node managed by this network's engine.  [pit_lifetime_ms]
    (default 4000) is the node's PIT entry lifetime and default
    interest timeout — generated topologies scale it with network
    diameter so deep hierarchies do not time interests out mid-path. *)

val connect :
  t ->
  ?loss:float ->
  ?latency_ba:Sim.Latency.t ->
  latency:Sim.Latency.t ->
  Node.t ->
  Node.t ->
  int * int
(** [connect t a b ~latency] joins two nodes with a bidirectional link
    and returns [(face_of_a, face_of_b)].  [latency] is the a→b model;
    [latency_ba] defaults to it.  [loss] (default 0) drops each packet
    independently in either direction. *)

val route : t -> Node.t -> prefix:Name.t -> via:int -> unit
(** Install a FIB route on a node. *)

val node : t -> string -> Node.t option
(** Look a node up by the label it was created with via {!add_node}. *)

val nodes : t -> (string * Node.t) list
(** Every node created via {!add_node}, in creation order. *)

(** {1 Fault injection}

    Link and producer state can be perturbed mid-run, either directly
    or by installing a {!Sim.Fault.schedule}.  All mutations are
    executed as ordinary engine events at deterministic virtual times,
    and a direction that is down consumes no randomness — so a faulted
    run is byte-reproducible and a run with an empty schedule is
    byte-identical to one with no fault machinery at all. *)

val set_link_state :
  t -> a:string -> b:string -> ?dir:Sim.Fault.direction -> up:bool -> unit ->
  (unit, string) result
(** Bring the [a]–[b] link (created by {!connect}, either orientation)
    down or up; [dir] (default [Both]) selects which direction(s), with
    [Ab] meaning [a]→[b] as named {e in this call}.  Packets offered to
    a downed direction are dropped silently (traced as [link.drop] with
    [reason=down]).  [Error _] if no such link exists. *)

val degrade_link :
  t -> a:string -> b:string -> ?dir:Sim.Fault.direction -> ?loss:float ->
  ?latency_factor:float -> unit -> (unit, string) result
(** Override a link direction's loss probability and/or multiply its
    sampled latencies.  Omitted parameters are left untouched. *)

val restore_link :
  t -> a:string -> b:string -> ?dir:Sim.Fault.direction -> unit ->
  (unit, string) result
(** Reset a link direction to its base parameters from {!connect}:
    configured loss, latency factor 1.  Does not change up/down state. *)

(** {1 Bounded link queues}

    By default links have infinite capacity: every offered packet is
    scheduled for delivery immediately (after its sampled latency) and
    the plane cannot congest — the legacy model.  Giving a direction a
    {e transmission queue} makes packets serialize at a finite rate
    behind the backlog, with a bounded number waiting; the excess is
    dropped, which is what an interest-flooding adversary exploits and
    what NACKs ({!Node.set_nacks_enabled}) report downstream. *)

type queue_policy =
  | Drop_tail  (** Drop the arriving packet when the queue is full. *)
  | Early_drop
      (** Additionally drop arrivals with probability
          [backlog / depth] while filling — a RED-style early signal
          that spreads drops across flows instead of bursting them at
          the tail. *)

val set_link_queue :
  t -> a:string -> b:string -> ?dir:Sim.Fault.direction -> rate_mbps:float ->
  depth:int -> ?policy:queue_policy -> unit -> (unit, string) result
(** Give the [a]–[b] link (either orientation; [dir] defaults [Both])
    a bounded transmission queue: packets serialize at [rate_mbps]
    (Mbit/s, using {!Wire.encoded_size} bytes per packet) and at most
    [depth] may be backlogged; [policy] (default {!Drop_tail}) decides
    the excess.  A dropped packet is traced as [queue.drop]; a dropped
    {e Interest} is answered with a [Congested] NACK to the sending
    forwarder when that forwarder has NACKs enabled.  Configure before
    traffic runs.  [Error _] if the link does not exist, the rate is
    not positive and finite, or [depth <= 0]. *)

val clear_link_queue :
  t -> a:string -> b:string -> ?dir:Sim.Fault.direction -> unit ->
  (unit, string) result
(** Return a direction to the unbounded legacy model (and forget any
    backlog state). *)

val install_faults : t -> Sim.Fault.schedule -> (unit, string) result
(** Validate the schedule ({!Sim.Fault.validate} plus an upfront check
    that every named node and link exists in this network) and schedule
    each event with the engine.  Applying an event emits a [fault.*]
    trace record and then performs its semantics: link events drive
    {!set_link_state}/{!degrade_link}, [Node_crash]/[Node_restart] call
    {!Node.crash}/{!Node.restart}, producer faults toggle
    {!Node.set_producers_enabled}/{!Node.set_production_factor}.
    Windowed faults ([Link_degrade], [Producer_outage],
    [Producer_slowdown]) schedule their own restore at [until] (traced
    with [state=restored]).  On [Error _] nothing was scheduled. *)

val run : ?until:float -> t -> unit
(** Drain the event queue (bounded by [until] when given).  In shard
    mode this advances the {!Sim.Shard} partition — spawning
    [shards - 1] domains for the duration of the call — and then
    stitches the shard trace buffers into the network tracer in global
    [(time, key)] order. *)

val fetch_rtt :
  t ->
  from:Node.t ->
  ?scope:int ->
  ?consumer_private:bool ->
  ?timeout_ms:float ->
  Name.t ->
  float option
(** Express an interest from a node's local application, run the
    simulation until the exchange settles, and return the measured RTT
    in milliseconds ([None] on timeout).  This is the probe primitive
    of every attack in the paper. *)

(** {1 The paper's measurement topologies (Figure 3)} *)

type probe_setup = {
  net : t;
  user : Node.t;  (** Honest consumer U. *)
  adversary : Node.t;  (** Adv; in the local-host setup, equal to [user]'s host. *)
  router : Node.t;  (** The shared first-hop router R whose cache is probed. *)
  producer_host : Node.t;  (** Host of producer P. *)
  prefix : Name.t;  (** Namespace served by P. *)
  producer_key : string;  (** P's signing key. *)
}

type producer_config = {
  producer_private : bool;  (** Mark all produced content private. *)
  strict_match : bool;
  payload_size : int;
  production_delay_ms : float;
}

val default_producer_config : producer_config

val lan :
  ?seed:int -> ?tracer:Sim.Trace.t -> ?shards:int -> ?producer:producer_config ->
  unit -> probe_setup
(** Figure 3(a): U and Adv on Fast Ethernet to R; P behind R.  [shards]
    (here and on every builder below) is forwarded to {!create}. *)

val wan :
  ?seed:int -> ?tracer:Sim.Trace.t -> ?shards:int -> ?producer:producer_config ->
  unit -> probe_setup
(** Figure 3(b): U and Adv several (2) hops from the shared R; P three
    hops from R.  Intermediate hops are caching NDN routers. *)

val wan_producer :
  ?seed:int -> ?tracer:Sim.Trace.t -> ?shards:int -> ?producer:producer_config ->
  unit -> probe_setup
(** Figure 3(c): P directly connected to R; U and Adv three long-haul
    hops away — the producer-privacy setting where hit and miss
    distributions overlap heavily. *)

val local_host :
  ?seed:int -> ?tracer:Sim.Trace.t -> ?shards:int -> ?producer:producer_config ->
  unit -> probe_setup
(** Figure 3(d): honest applications and a malicious application share
    one host's forwarder; [user == adversary] is the host node and
    [router] is that same host (its local Content Store is the probed
    cache). *)

(** {1 Two-party interactive topology}

    For the combined attack of Section I: learning whether two parties
    are (or were recently) involved in two-way interactive
    communication, by probing the shared router for both parties'
    content. *)

type conversation_setup = {
  cnet : t;
  alice : Node.t;  (** Endpoint A: produces under [alice_prefix], consumes B's. *)
  bob : Node.t;
  eavesdropper : Node.t;  (** The adversary host, also behind the router. *)
  shared_router : Node.t;
  alice_prefix : Name.t;
  bob_prefix : Name.t;
  alice_key : string;
  bob_key : string;
}

val conversation :
  ?seed:int -> ?tracer:Sim.Trace.t -> ?shards:int -> unit -> conversation_setup
(** Alice, Bob and the adversary all attached to one router over
    Fast Ethernet; routes installed for both parties' prefixes.  No
    producers are registered — callers attach session endpoints (see
    {!Core.Interactive_session} in the core library). *)

(** {1 Edge/core deployment topology}

    For the question the paper defers in footnote 6: {e which} routers
    should run the countermeasure?  Two edge routers serve disjoint
    consumer populations; both reach the producer through one core
    router whose cache serves cross-population hits. *)

type edge_core_setup = {
  ecnet : t;
  victim : Node.t;  (** Consumer behind [edge1] whose privacy is at stake. *)
  local_adversary : Node.t;  (** Adversary sharing [edge1] with the victim. *)
  remote_consumer : Node.t;  (** Honest consumer behind [edge2]. *)
  edge1 : Node.t;
  edge2 : Node.t;
  core : Node.t;
  ec_producer_host : Node.t;  (** Far from the core (slow link). *)
  ec_prefix : Name.t;
  ec_producer_key : string;
}

val edge_core :
  ?seed:int -> ?tracer:Sim.Trace.t -> ?shards:int -> ?producer:producer_config ->
  unit -> edge_core_setup
(** victim, adversary — edge1 — core — P; remote consumer — edge2 —
    core.  The core-to-producer link is slow (tens of ms), so core
    caching matters to remote consumers — which is exactly what an
    indiscriminately-deployed delay countermeasure destroys. *)
