(** TLV wire encoding of NDN packets.

    A compact type–length–value format in the spirit of the NDN packet
    spec (types are one byte, lengths are big-endian 32-bit).  Gives
    the simulator byte-accurate packet sizes for bandwidth accounting
    and lets traces be written/read as real bytes; the codec is total:
    every packet round-trips, and every byte string either decodes or
    yields a descriptive error. *)

type error = {
  offset : int;  (** Byte offset where decoding failed. *)
  reason : string;
}

val pp_error : Format.formatter -> error -> unit

val encode_interest : Interest.t -> string

val encode_data : Data.t -> string

val encode_nack : Nack.t -> string

val encode_packet : Packet.t -> string

val decode_interest : string -> (Interest.t, error) result

val decode_data : string -> (Data.t, error) result

val decode_nack : string -> (Nack.t, error) result

val decode_packet : string -> (Packet.t, error) result
(** Dispatches on the outer TLV type. *)

val encoded_size : Packet.t -> int
(** [String.length (encode_packet p)] without building the string
    twice. *)

(** {1 Varint helpers}

    Re-exports of [Sim.Varint]'s LEB128/zigzag coding (the binary
    trace format's integer coding, DESIGN §16), so packet-level code
    shares one implementation.  Unlike [Sim.Varint], the readers
    return positioned {!error}s instead of raising. *)

val add_varint : Buffer.t -> int -> unit
(** Append the unsigned LEB128 coding.
    @raise Invalid_argument on a negative value. *)

val add_signed_varint : Buffer.t -> int -> unit
(** Append the zigzag-then-LEB128 coding of a signed value. *)

val varint_size : int -> int
(** Encoded byte length of a non-negative value. *)

val read_varint : string -> int -> (int * int, error) result
(** [(value, next_pos)], or a positioned error on a truncated or
    over-long encoding. *)

val read_signed_varint : string -> int -> (int * int, error) result
