type entry = {
  created : float;
  mutable arrivals : (int * int64) list; (* (face, nonce), newest first *)
}

type insert_result = Forward | Collapsed | Duplicate

type t = { lifetime_ms : float; trie : entry Name_trie.t }

let create ?(lifetime_ms = 4000.) () = { lifetime_ms; trie = Name_trie.create () }

let insert t ~now ~face ~nonce name =
  match Name_trie.find t.trie name with
  | None ->
    Name_trie.add t.trie name { created = now; arrivals = [ (face, nonce) ] };
    Forward
  | Some entry ->
    if List.exists (fun (f, n) -> f = face && Int64.equal n nonce) entry.arrivals
    then Duplicate
    else begin
      let retransmission = List.mem_assoc face entry.arrivals in
      entry.arrivals <- (face, nonce) :: entry.arrivals;
      (* A new nonce from a face already waiting is the consumer
         retransmitting after loss: forward again so recovery does not
         stall for the rest of the entry's lifetime.  A new face is the
         classic collapse. *)
      if retransmission then Forward else Collapsed
    end

let dedup_keep_order xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let satisfy_timed t name =
  (* Every pending name that is a prefix of the Data name is satisfied. *)
  let matched =
    Name_trie.fold_prefixes t.trie name ~init:[] ~f:(fun acc n entry ->
        (n, entry) :: acc)
  in
  let faces =
    List.concat_map
      (fun (_, entry) -> List.rev_map fst entry.arrivals)
      (List.rev matched)
  in
  let oldest =
    List.fold_left
      (fun acc (_, entry) ->
        match acc with
        | None -> Some entry.created
        | Some c -> Some (Float.min c entry.created))
      None matched
  in
  List.iter (fun (n, _) -> Name_trie.remove t.trie n) matched;
  (dedup_keep_order faces, oldest)

let satisfy t name = fst (satisfy_timed t name)

let pending t name = Name_trie.mem t.trie name

let faces t name =
  match Name_trie.find t.trie name with
  | None -> []
  | Some entry -> dedup_keep_order (List.rev_map fst entry.arrivals)

let expire t ~now =
  let stale =
    List.filter_map
      (fun (name, entry) ->
        if now -. entry.created > t.lifetime_ms then Some name else None)
      (Name_trie.to_list t.trie)
  in
  List.iter (Name_trie.remove t.trie) stale;
  stale

let size t = Name_trie.size t.trie

let clear t = Name_trie.clear t.trie
