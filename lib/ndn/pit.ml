type admission = Drop_new | Evict_oldest | Per_face_fair

let admission_to_string = function
  | Drop_new -> "drop-new"
  | Evict_oldest -> "evict-oldest"
  | Per_face_fair -> "per-face-fair"

let admission_of_string s =
  match String.lowercase_ascii s with
  | "drop-new" | "drop_new" -> Some Drop_new
  | "evict-oldest" | "evict_oldest" -> Some Evict_oldest
  | "per-face-fair" | "per_face_fair" -> Some Per_face_fair
  | _ -> None

type entry = {
  created : float;
  stamp : int; (* pairs the trie binding with its expiry-index slot *)
  face0 : int; (* creating face, charged under Per_face_fair *)
  mutable arrivals : (int * int64) list; (* (face, nonce), newest first *)
}

type insert_result = Forward | Collapsed | Duplicate | Rejected

type t = {
  lifetime_ms : float;
  capacity : int option;
  admission : admission;
  on_evict : Name.t -> unit;
  trie : entry Name_trie.t;
  (* Time-ordered expiry index: the per-PIT lifetime is a constant and
     [created] is the monotone engine clock, so insertion order is
     expiry order and a FIFO suffices.  Entries removed early (satisfy,
     eviction) leave a stale slot behind; the [stamp] check skips it
     when popped, so [expire] costs O(popped), never a trie rescan. *)
  expiry : (int * float * Name.t) Queue.t;
  face_live : (int, int) Hashtbl.t; (* live entries per creating face *)
  face_ever : (int, unit) Hashtbl.t;
  mutable faces_seen : int;
  mutable next_stamp : int;
  mutable evictions : int;
  mutable rejections : int;
}

let create ?(lifetime_ms = 4000.) ?capacity ?(admission = Drop_new)
    ?(on_evict = fun _ -> ()) () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Pit.create: capacity must be positive"
  | _ -> ());
  {
    lifetime_ms;
    capacity;
    admission;
    on_evict;
    trie = Name_trie.create ();
    expiry = Queue.create ();
    face_live = Hashtbl.create 8;
    face_ever = Hashtbl.create 8;
    faces_seen = 0;
    next_stamp = 0;
    evictions = 0;
    rejections = 0;
  }

let capacity t = t.capacity

let admission_policy t = t.admission

let evictions t = t.evictions

let rejections t = t.rejections

let charging = function
  | { capacity = Some _; admission = Per_face_fair; _ } -> true
  | _ -> false

let charge t face =
  if charging t then begin
    if not (Hashtbl.mem t.face_ever face) then begin
      Hashtbl.add t.face_ever face ();
      t.faces_seen <- t.faces_seen + 1
    end;
    Hashtbl.replace t.face_live face
      (1 + Option.value (Hashtbl.find_opt t.face_live face) ~default:0)
  end

let discharge t face =
  if charging t then
    match Hashtbl.find_opt t.face_live face with
    | Some n when n > 1 -> Hashtbl.replace t.face_live face (n - 1)
    | Some _ -> Hashtbl.remove t.face_live face
    | None -> ()

let remove_entry t name entry =
  Name_trie.remove t.trie name;
  discharge t entry.face0

(* Drop the oldest live entry: pop the index front, skipping stale
   slots, until a stamp still bound in the trie turns up. *)
let rec evict_oldest t =
  match Queue.take_opt t.expiry with
  | None -> false
  | Some (stamp, _, name) -> (
    match Name_trie.find t.trie name with
    | Some e when e.stamp = stamp ->
      remove_entry t name e;
      t.evictions <- t.evictions + 1;
      t.on_evict name;
      true
    | _ -> evict_oldest t)

(* Per-face quota: an equal share of the table, at least one slot, over
   every face that has ever created an entry here.  The divisor is
   monotone, so a flooding face's share only shrinks as victims show
   up; honest faces keep [capacity / faces] slots however hard one
   attacker pushes. *)
let face_quota t cap face =
  let share = max 1 (cap / max 1 t.faces_seen) in
  let live = Option.value (Hashtbl.find_opt t.face_live face) ~default:0 in
  live < share

let admit t ~face =
  match t.capacity with
  | None -> true
  | Some cap -> (
    match t.admission with
    | Drop_new -> Name_trie.size t.trie < cap
    | Evict_oldest -> Name_trie.size t.trie < cap || evict_oldest t
    | Per_face_fair ->
      (* Count this face among the claimants before computing shares,
         so the very first interest from a previously unseen face is
         judged against the post-arrival divisor. *)
      if not (Hashtbl.mem t.face_ever face) then begin
        Hashtbl.add t.face_ever face ();
        t.faces_seen <- t.faces_seen + 1
      end;
      Name_trie.size t.trie < cap && face_quota t cap face)

let insert t ~now ~face ~nonce name =
  match Name_trie.find t.trie name with
  | None ->
    if admit t ~face then begin
      let stamp = t.next_stamp in
      t.next_stamp <- stamp + 1;
      Name_trie.add t.trie name
        { created = now; stamp; face0 = face; arrivals = [ (face, nonce) ] };
      charge t face;
      Queue.add (stamp, now, name) t.expiry;
      Forward
    end
    else begin
      t.rejections <- t.rejections + 1;
      Rejected
    end
  | Some entry ->
    if List.exists (fun (f, n) -> f = face && Int64.equal n nonce) entry.arrivals
    then Duplicate
    else begin
      let retransmission = List.mem_assoc face entry.arrivals in
      entry.arrivals <- (face, nonce) :: entry.arrivals;
      (* A new nonce from a face already waiting is the consumer
         retransmitting after loss: forward again so recovery does not
         stall for the rest of the entry's lifetime.  A new face is the
         classic collapse. *)
      if retransmission then Forward else Collapsed
    end

let dedup_keep_order xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let satisfy_timed t name =
  (* Every pending name that is a prefix of the Data name is satisfied. *)
  let matched =
    Name_trie.fold_prefixes t.trie name ~init:[] ~f:(fun acc n entry ->
        (n, entry) :: acc)
  in
  let faces =
    List.concat_map
      (fun (_, entry) -> List.rev_map fst entry.arrivals)
      (List.rev matched)
  in
  let oldest =
    List.fold_left
      (fun acc (_, entry) ->
        match acc with
        | None -> Some entry.created
        | Some c -> Some (Float.min c entry.created))
      None matched
  in
  List.iter (fun (n, e) -> remove_entry t n e) matched;
  (dedup_keep_order faces, oldest)

let satisfy t name = fst (satisfy_timed t name)

let take t name =
  match Name_trie.find t.trie name with
  | None -> []
  | Some entry ->
    remove_entry t name entry;
    dedup_keep_order (List.rev_map fst entry.arrivals)

let pending t name = Name_trie.mem t.trie name

let faces t name =
  match Name_trie.find t.trie name with
  | None -> []
  | Some entry -> dedup_keep_order (List.rev_map fst entry.arrivals)

(* ndnlint: hot *)
let expire t ~now =
  (* Pop the index front while it is stale; each slot is either a live
     expired entry (drop and report) or a leftover from an early
     removal (skip).  Names are reported in canonical trie order, as
     the historical full-rescan implementation did, so traced sweeps
     render identically.  A while-loop rather than a local [let rec]:
     the recursive closure would capture [t]/[now] and allocate on
     every sweep, and this runs once per engine step. *)
  let stale = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match Queue.peek_opt t.expiry with
    | Some (stamp, created, name) when now -. created > t.lifetime_ms ->
      ignore (Queue.pop t.expiry);
      (match Name_trie.find t.trie name with
      | Some e when e.stamp = stamp ->
        remove_entry t name e;
        stale := name :: !stale
      | _ -> ())
    | _ -> continue_ := false
  done;
  List.sort Name.compare !stale

let size t = Name_trie.size t.trie

let clear t =
  Name_trie.clear t.trie;
  Queue.clear t.expiry;
  Hashtbl.reset t.face_live;
  Hashtbl.reset t.face_ever;
  t.faces_seen <- 0
