(* A name is stored as its component list, a canonical NUL-joined key
   (one string comparison instead of a list walk for Map/Set/Hashtbl
   operations), a memoized hash of that key, and its component count.

   Names are hash-consed: every constructor funnels through a weak
   intern table keyed on the canonical key, so equal names built in the
   same domain share one allocation, [equal] short-circuits on physical
   identity, and [hash] is a field read.  The table is weak — names no
   longer referenced elsewhere are collected normally — and per-domain
   ([Domain.DLS]), so Sim.Parallel trial domains intern independently
   without locks; names interned in different domains (or unmarshalled
   from elsewhere) are physically distinct but still equal through the
   key-string fallback, which keeps marshalling and cross-domain result
   merging safe. *)

type t = { comps : string list; key : string; h : int; len : int }

let check_component c =
  if String.length c = 0 then invalid_arg "Name: empty component";
  if String.contains c '\000' then invalid_arg "Name: NUL byte in component"

module Raw = struct
  type nonrec t = t

  let equal a b = a.h = b.h && String.equal a.key b.key
  let hash t = t.h
end

module W = Weak.Make (Raw)

let intern_tbl = Domain.DLS.new_key (fun () -> W.create 4096)

let intern cand = W.merge (Domain.DLS.get intern_tbl) cand

(* Re-intern a name built on another domain into this domain's table,
   so that hash-consed physical-equality fast paths keep firing after a
   cross-shard hand-off.  The fields are immutable and the invariants
   already hold, so merging the record itself is enough: either this
   domain already has an equal canonical copy (returned), or the
   foreign record becomes the canonical copy here. *)
let import t = intern t

(* All construction funnels through [mk]; [key] must be the NUL-join of
   [comps] and [len] their count — the invariants every accessor relies
   on. *)
let mk comps ~len key =
  (* ndnlint: allow D5 -- the canonical flat key string is hashed once per interned name; the memoized field makes every later Name.hash representation-independent and free *)
  intern { comps; key; h = Hashtbl.hash key; len }

let make comps =
  List.iter check_component comps;
  mk comps ~len:(List.length comps) (String.concat "\000" comps)

let root = make []

let of_components comps = make comps

let of_string s =
  let comps = String.split_on_char '/' s |> List.filter (fun c -> c <> "") in
  make comps

let to_string t =
  match t.comps with [] -> "/" | comps -> "/" ^ String.concat "/" comps

let components t = t.comps

let length t = t.len

let append t c =
  check_component c;
  (* Only the new component needs validation, and the key extends the
     parent's key — no re-walk of the existing components. *)
  let key = if t.len = 0 then c else t.key ^ "\000" ^ c in
  mk (t.comps @ [ c ]) ~len:(t.len + 1) key

(* Both arguments are [t] values, so their components were validated by
   [make]/[append] when they were built: gluing the canonical keys with
   a single NUL preserves the key invariant without re-validating. *)
let concat a b =
  if a.len = 0 then b
  else if b.len = 0 then a
  else
    mk (a.comps @ b.comps) ~len:(a.len + b.len) (a.key ^ "\000" ^ b.key)

let parent t =
  match t.comps with
  | [] -> None
  | comps ->
    let rec drop_last = function
      | [] -> []
      | [ _ ] -> []
      | c :: rest -> c :: drop_last rest
    in
    let key =
      match String.rindex_opt t.key '\000' with
      | None -> ""
      | Some i -> String.sub t.key 0 i
    in
    Some (mk (drop_last comps) ~len:(t.len - 1) key)

let last t =
  let rec go = function [] -> None | [ c ] -> Some c | _ :: rest -> go rest in
  go t.comps

(* Byte index of the [n]-th NUL separator of [key] (1-based); callers
   guarantee it exists. *)
let nth_nul key n =
  let rec go from remaining =
    let i = String.index_from key from '\000' in
    if remaining = 1 then i else go (i + 1) (remaining - 1)
  in
  go 0 n

let prefix t n =
  if n < 0 || n > t.len then invalid_arg "Name.prefix: bad length";
  if n = t.len then t
  else if n = 0 then root
  else begin
    let rec take k = function
      | _ when k = 0 -> []
      | [] -> []
      | c :: rest -> c :: take (k - 1) rest
    in
    (* The first [n] components end right before the n-th separator, so
       the sliced key stays canonical without re-joining. *)
    mk (take n t.comps) ~len:n (String.sub t.key 0 (nth_nul t.key n))
  end

let rec list_is_prefix p t =
  match (p, t) with
  | [], _ -> true
  | _, [] -> false
  | a :: p', b :: t' -> String.equal a b && list_is_prefix p' t'

let is_prefix ~prefix t = list_is_prefix prefix.comps t.comps

let is_strict_prefix ~prefix t = is_prefix ~prefix t && prefix.len < t.len

let namespace t ~depth =
  if depth < 0 then invalid_arg "Name.namespace: negative depth";
  if depth >= t.len then t else prefix t depth

let compare a b = String.compare a.key b.key

(* Physical-equality-first: interned names that are equal within a
   domain are the same allocation, so the common case is one pointer
   comparison.  The hash-then-key fallback keeps equality correct for
   names from other domains or from unmarshalling. *)
let equal a b = a == b || (a.h = b.h && String.equal a.key b.key)

let hash t = t.h

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Tbl = Hashtbl.Make (Hashed)
