(* A name is stored both as its component list and as a canonical
   NUL-joined key used for hashing and ordered comparison, so Map/Set
   and Hashtbl operations cost one string comparison instead of a list
   walk. *)

type t = { comps : string list; key : string }

let check_component c =
  if String.length c = 0 then invalid_arg "Name: empty component";
  if String.contains c '\000' then invalid_arg "Name: NUL byte in component"

let make comps =
  List.iter check_component comps;
  { comps; key = String.concat "\000" comps }

let root = { comps = []; key = "" }

let of_components comps = make comps

let of_string s =
  let comps = String.split_on_char '/' s |> List.filter (fun c -> c <> "") in
  make comps

let to_string t =
  match t.comps with [] -> "/" | comps -> "/" ^ String.concat "/" comps

let components t = t.comps

let length t = List.length t.comps

let append t c =
  check_component c;
  make (t.comps @ [ c ])

let concat a b = { comps = a.comps @ b.comps; key = (match (a.comps, b.comps) with
  | [], _ -> b.key
  | _, [] -> a.key
  | _ -> a.key ^ "\000" ^ b.key) }

let parent t =
  match t.comps with
  | [] -> None
  | comps ->
    let rec drop_last = function
      | [] -> []
      | [ _ ] -> []
      | c :: rest -> c :: drop_last rest
    in
    Some (make (drop_last comps))

let last t =
  let rec go = function [] -> None | [ c ] -> Some c | _ :: rest -> go rest in
  go t.comps

let prefix t n =
  if n < 0 || n > length t then invalid_arg "Name.prefix: bad length";
  let rec take k = function
    | _ when k = 0 -> []
    | [] -> []
    | c :: rest -> c :: take (k - 1) rest
  in
  make (take n t.comps)

let rec list_is_prefix p t =
  match (p, t) with
  | [], _ -> true
  | _, [] -> false
  | a :: p', b :: t' -> String.equal a b && list_is_prefix p' t'

let is_prefix ~prefix t = list_is_prefix prefix.comps t.comps

let is_strict_prefix ~prefix t =
  is_prefix ~prefix t && List.length prefix.comps < List.length t.comps

let namespace t ~depth =
  if depth < 0 then invalid_arg "Name.namespace: negative depth";
  if depth >= length t then t else prefix t depth

let compare a b = String.compare a.key b.key

let equal a b = String.equal a.key b.key

(* ndnlint: allow D5 -- t.key is the canonical flat string, so the structural hash is stable and representation-independent *)
let hash t = Hashtbl.hash t.key

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Tbl = Hashtbl.Make (Hashed)
