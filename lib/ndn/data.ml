type t = {
  name : Name.t;
  payload : string;
  producer : string;
  signature : string;
  producer_private : bool;
  strict_match : bool;
  content_id : string option;
  freshness_ms : float option;
}

let signed_bytes ~name ~payload ~producer ~producer_private ~strict_match
    ~content_id =
  String.concat "\x00"
    [
      Name.to_string name;
      payload;
      producer;
      (if producer_private then "1" else "0");
      (if strict_match then "1" else "0");
      Option.value content_id ~default:"";
    ]

let create ?(producer_private = false) ?(strict_match = false) ?content_id
    ?freshness_ms ~producer ~key ~payload name =
  let signature =
    Ndn_crypto.Hmac.mac ~key
      (signed_bytes ~name ~payload ~producer ~producer_private ~strict_match
         ~content_id)
  in
  {
    name;
    payload;
    producer;
    signature;
    producer_private;
    strict_match;
    content_id;
    freshness_ms;
  }

let of_wire ~name ~payload ~producer ~signature ~producer_private ~strict_match
    ~content_id ~freshness_ms =
  {
    name;
    payload;
    producer;
    signature;
    producer_private;
    strict_match;
    content_id;
    freshness_ms;
  }

let verify t ~key =
  Ndn_crypto.Hmac.verify ~key
    ~msg:
      (signed_bytes ~name:t.name ~payload:t.payload ~producer:t.producer
         ~producer_private:t.producer_private ~strict_match:t.strict_match
         ~content_id:t.content_id)
    ~tag:t.signature

let size_bytes t =
  (* 64 bytes of fixed header + signature is a reasonable wire estimate. *)
  String.length (Name.to_string t.name) + String.length t.payload + 64

let is_fresh t ~age_ms =
  match t.freshness_ms with None -> true | Some f -> age_ms <= f

let import t = { t with name = Name.import t.name }

let pp ppf t =
  Format.fprintf ppf "Data(%a by=%s%s%s %dB)" Name.pp t.name t.producer
    (if t.producer_private then " private" else "")
    (if t.strict_match then " strict" else "")
    (String.length t.payload)
