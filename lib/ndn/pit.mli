(** Pending Interest Table.

    Records, per interest name, the downstream faces awaiting content.
    A second interest for a name already pending is *collapsed*: only
    the new arrival face is recorded and nothing is forwarded upstream
    (paper, Section II).  Collapsing is itself privacy-relevant: it is
    the reason a cache miss cannot be hidden, and it is observable by
    the timing adversary.

    The table may be given a finite {e capacity} — the resource an
    interest-flooding adversary exhausts — together with an admission
    policy deciding what happens when a new name arrives at a full
    table.  Without a capacity the table is unbounded and behaves
    exactly as it always has. *)

type t

(** What a full table does with a genuinely new name. *)
type admission =
  | Drop_new  (** Reject the newcomer; established entries survive. *)
  | Evict_oldest
      (** Displace the oldest live entry to admit the newcomer — the
          evicted downstream faces recover via their own timers. *)
  | Per_face_fair
      (** Each creating face gets an equal share of the table (at
          least one slot, [capacity / faces-seen]); a newcomer over
          its face's share is rejected.  Confines a single-face
          flooder to its quota. *)

val admission_to_string : admission -> string
(** ["drop-new"], ["evict-oldest"], ["per-face-fair"]. *)

val admission_of_string : string -> admission option
(** Inverse of {!admission_to_string} (also accepts underscores). *)

type insert_result =
  | Forward
      (** Forward the interest upstream: either no pending entry
          existed, or the arrival is a {e retransmission} — a new nonce
          from a face already waiting, i.e. a downstream consumer
          recovering from loss — which must be re-forwarded or recovery
          would stall for the rest of the entry's lifetime. *)
  | Collapsed  (** An entry existed: new face recorded, do not forward. *)
  | Duplicate
      (** Same face and nonce already pending (forwarding loop):
          drop. *)
  | Rejected
      (** The admission policy refused the new entry (finite table
          only): drop, optionally answering with a [Pit_full] NACK. *)

val create :
  ?lifetime_ms:float ->
  ?capacity:int ->
  ?admission:admission ->
  ?on_evict:(Name.t -> unit) ->
  unit ->
  t
(** [lifetime_ms] (default [4000.]) bounds how long an entry may stay
    pending before {!expire} removes it.  [capacity] (default:
    unbounded) bounds the live entry count; [admission] (default
    {!Drop_new}) only matters with a capacity.  [on_evict] fires once
    per entry displaced by {!Evict_oldest}, with the victim's name —
    the forwarder's tracing hook.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int option

val admission_policy : t -> admission

val insert : t -> now:float -> face:int -> nonce:int64 -> Name.t -> insert_result
(** [now] must be monotone non-decreasing across calls (it is the
    engine clock) — the expiry index relies on insertion order being
    expiry order. *)

val satisfy : t -> Name.t -> int list
(** Faces awaiting an arriving Data packet with the given name — the
    union over every pending name that is a prefix of it — removing
    those entries.  Order: registration order, duplicates removed. *)

val satisfy_timed : t -> Name.t -> int list * float option
(** Like {!satisfy} but also returns the creation time of the oldest
    satisfied entry — the forwarder uses [now - created] as the
    measured fetch delay feeding the content-specific-delay
    countermeasure. *)

val take : t -> Name.t -> int list
(** Remove the exact-name entry, returning its faces (registration
    order, duplicates removed; [[]] if none).  Unlike {!satisfy} this
    touches no other entry — the NACK path consumes exactly the entry
    being refused, so an unrelated pending prefix keeps waiting. *)

val pending : t -> Name.t -> bool
(** Is there an entry for exactly this name? *)

val faces : t -> Name.t -> int list
(** Faces of the exact-name entry, registration order ([[]] if none). *)

val expire : t -> now:float -> Name.t list
(** Drop entries older than the lifetime; returns their names in
    canonical (trie) order.  Cost is O(expired + stale index slots
    popped), {e not} a scan of the live table: a FIFO expiry index
    (insertion order = expiry order, since the lifetime is fixed and
    the clock monotone) is popped while its front is old enough, with
    stamp checks skipping slots whose entries were satisfied or
    evicted early. *)

val evictions : t -> int
(** Entries displaced by {!Evict_oldest} since creation. *)

val rejections : t -> int
(** Inserts refused by the admission policy since creation. *)

val size : t -> int

val clear : t -> unit
