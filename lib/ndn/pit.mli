(** Pending Interest Table.

    Records, per interest name, the downstream faces awaiting content.
    A second interest for a name already pending is *collapsed*: only
    the new arrival face is recorded and nothing is forwarded upstream
    (paper, Section II).  Collapsing is itself privacy-relevant: it is
    the reason a cache miss cannot be hidden, and it is observable by
    the timing adversary. *)

type t

type insert_result =
  | Forward
      (** Forward the interest upstream: either no pending entry
          existed, or the arrival is a {e retransmission} — a new nonce
          from a face already waiting, i.e. a downstream consumer
          recovering from loss — which must be re-forwarded or recovery
          would stall for the rest of the entry's lifetime. *)
  | Collapsed  (** An entry existed: new face recorded, do not forward. *)
  | Duplicate
      (** Same face and nonce already pending (forwarding loop):
          drop. *)

val create : ?lifetime_ms:float -> unit -> t
(** [lifetime_ms] (default [4000.]) bounds how long an entry may stay
    pending before {!expire} removes it. *)

val insert : t -> now:float -> face:int -> nonce:int64 -> Name.t -> insert_result

val satisfy : t -> Name.t -> int list
(** Faces awaiting an arriving Data packet with the given name — the
    union over every pending name that is a prefix of it — removing
    those entries.  Order: registration order, duplicates removed. *)

val satisfy_timed : t -> Name.t -> int list * float option
(** Like {!satisfy} but also returns the creation time of the oldest
    satisfied entry — the forwarder uses [now - created] as the
    measured fetch delay feeding the content-specific-delay
    countermeasure. *)

val pending : t -> Name.t -> bool
(** Is there an entry for exactly this name? *)

val faces : t -> Name.t -> int list
(** Faces of the exact-name entry, registration order ([[]] if none). *)

val expire : t -> now:float -> Name.t list
(** Drop entries older than the lifetime; returns their names. *)

val size : t -> int

val clear : t -> unit
