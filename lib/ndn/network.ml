type t = { engine : Sim.Engine.t; rng : Sim.Rng.t; tracer : Sim.Trace.t }

let create ?(seed = 42) ?(tracer = Sim.Trace.disabled) () =
  { engine = Sim.Engine.create ~tracer (); rng = Sim.Rng.create seed; tracer }

let engine t = t.engine
let rng t = t.rng
let tracer t = t.tracer
let now t = Sim.Engine.now t.engine

let add_node t ?(cs_capacity = 0) ?cs_policy ?forwarding_delay ?honor_scope
    ?caching label =
  Node.create t.engine ~rng:(Sim.Rng.split t.rng) ~label ~tracer:t.tracer
    ~cs_capacity ?cs_policy ?forwarding_delay ?honor_scope ?caching ()

let connect t ?(loss = 0.) ?latency_ba ~latency a b =
  let lat_ab = latency in
  let lat_ba = Option.value latency_ba ~default:latency in
  let face_b = ref (-1) in
  let deliver ~src node face_ref lat pkt =
    (* Sample loss, then latency, in a fixed order for determinism.
       Both draws happen whether or not tracing is on, so enabling a
       tracer never perturbs the RNG stream. *)
    let lost = loss > 0. && Sim.Rng.bernoulli t.rng loss in
    let d = Sim.Latency.sample lat t.rng in
    if Sim.Trace.enabled t.tracer then begin
      let pkt_type, name =
        match pkt with
        | Packet.Interest i -> ("interest", i.Interest.name)
        | Packet.Data data -> ("data", data.Data.name)
      in
      Sim.Trace.emit t.tracer
        {
          Sim.Trace.time = Sim.Engine.now t.engine;
          node = src;
          kind = (if lost then Sim.Trace.Link_drop else Sim.Trace.Link_transmit);
          name = Name.to_string name;
          attrs =
            [
              ("dst", Node.label node);
              ("pkt", pkt_type);
              ("delay_ms", Printf.sprintf "%.6f" d);
            ];
        }
    end;
    if not lost then
      ignore
        (Sim.Engine.schedule t.engine ~delay:d (fun () ->
             Node.receive node ~face:!face_ref pkt))
  in
  let face_a_ref = ref (-1) in
  let face_a =
    Node.add_wire_face a (fun pkt ->
        deliver ~src:(Node.label a) b face_b lat_ab pkt)
  in
  face_a_ref := face_a;
  let fb =
    Node.add_wire_face b (fun pkt ->
        deliver ~src:(Node.label b) a face_a_ref lat_ba pkt)
  in
  face_b := fb;
  (face_a, fb)

let route _t node ~prefix ~via = Fib.add_route (Node.fib node) ~prefix ~face:via

let run ?until t = Sim.Engine.run ?until t.engine

let fetch_rtt t ~from ?scope ?consumer_private ?timeout_ms name =
  let result = ref None in
  Node.express_interest from ?scope ?consumer_private ?timeout_ms
    ~on_data:(fun ~rtt_ms _data -> result := Some rtt_ms)
    ~on_timeout:(fun () -> ())
    name;
  (* Run until the exchange (or its timeout) has fully played out. *)
  Sim.Engine.run t.engine;
  !result

(* --- Figure 3 topologies --- *)

type probe_setup = {
  net : t;
  user : Node.t;
  adversary : Node.t;
  router : Node.t;
  producer_host : Node.t;
  prefix : Name.t;
  producer_key : string;
}

type producer_config = {
  producer_private : bool;
  strict_match : bool;
  payload_size : int;
  production_delay_ms : float;
}

let default_producer_config =
  {
    producer_private = false;
    strict_match = false;
    payload_size = 1024;
    production_delay_ms = 0.4;
  }

let install_producer ~config ~prefix ~key node =
  let payload_of name =
    (* Deterministic pseudo-payload so repeated runs are identical. *)
    let h = Ndn_crypto.Sha256.hex_digest (Name.to_string name) in
    let buf = Buffer.create config.payload_size in
    while Buffer.length buf < config.payload_size do
      Buffer.add_string buf h
    done;
    Buffer.sub buf 0 config.payload_size
  in
  Node.add_producer node ~prefix ~production_delay_ms:config.production_delay_ms
    (fun interest ->
      let name = interest.Interest.name in
      if Name.is_prefix ~prefix name then
        Some
          (Data.create ~producer_private:config.producer_private
             ~strict_match:config.strict_match ~producer:(Node.label node) ~key
             ~payload:(payload_of name) name)
      else None)

(* Per-node packet-processing cost: dominated by the NDN daemon's
   name lookup and signing checks; roughly half a millisecond in the
   2013 CCNx codebase.  The LAN testbed machines in the paper show a
   somewhat higher per-packet cost, hence the separate constant. *)
let ccnd_processing = Sim.Latency.Normal { mean = 0.55; stddev = 0.12; min = 0.15 }
let lan_ccnd_processing = Sim.Latency.Normal { mean = 0.9; stddev = 0.18; min = 0.3 }

let lan ?(seed = 42) ?tracer ?(producer = default_producer_config) () =
  let net = create ~seed ?tracer () in
  let user = add_node net ~forwarding_delay:lan_ccnd_processing ~caching:false "U" in
  let adversary =
    add_node net ~forwarding_delay:lan_ccnd_processing ~caching:false "Adv"
  in
  let router = add_node net ~forwarding_delay:lan_ccnd_processing "R" in
  let producer_host = add_node net ~forwarding_delay:lan_ccnd_processing "P" in
  let fe = Sim.Latency.fast_ethernet in
  let u_r, _ = connect net ~latency:fe user router in
  let a_r, _ = connect net ~latency:fe adversary router in
  let r_p, _ =
    connect net ~latency:(Sim.Latency.Normal { mean = 1.8; stddev = 0.35; min = 0.5 })
      router producer_host
  in
  let prefix = Name.of_string "/prod" in
  let producer_key = "lan-producer-key" in
  install_producer ~config:producer ~prefix ~key:producer_key producer_host;
  route net user ~prefix ~via:u_r;
  route net adversary ~prefix ~via:a_r;
  route net router ~prefix ~via:r_p;
  { net; user; adversary; router; producer_host; prefix; producer_key }

(* Builds consumer --[hop]*n-- router chains where every intermediate
   hop is itself a caching NDN router, and returns the consumer's
   egress face. *)
let attach_via_hops net ~hop_latency ~hops ~prefix consumer router =
  let rec build upstream_of i =
    (* [upstream_of] is the node closer to the consumer. *)
    if i = 0 then begin
      let f, _ = connect net ~latency:hop_latency upstream_of router in
      route net upstream_of ~prefix ~via:f
    end
    else begin
      let mid = add_node net ~forwarding_delay:ccnd_processing
          (Printf.sprintf "%s-hop%d" (Node.label consumer) i)
      in
      let f, _ = connect net ~latency:hop_latency upstream_of mid in
      route net upstream_of ~prefix ~via:f;
      build mid (i - 1)
    end
  in
  build consumer (hops - 1)

let wan ?(seed = 42) ?tracer ?(producer = default_producer_config) () =
  let net = create ~seed ?tracer () in
  let user = add_node net ~forwarding_delay:ccnd_processing ~caching:false "U" in
  let adversary =
    add_node net ~forwarding_delay:ccnd_processing ~caching:false "Adv"
  in
  let router = add_node net ~forwarding_delay:ccnd_processing "R" in
  let producer_host = add_node net ~forwarding_delay:ccnd_processing "P" in
  let prefix = Name.of_string "/prod" in
  let producer_key = "wan-producer-key" in
  install_producer ~config:producer ~prefix ~key:producer_key producer_host;
  let hop = Sim.Latency.Shifted_exponential { shift = 0.35; rate = 3.0 } in
  (* "U and Adv are connected to the same first-hop NDN router R, which
     is several hops away from both, while P is 3 hops away from R." *)
  attach_via_hops net ~hop_latency:hop ~hops:2 ~prefix user router;
  attach_via_hops net ~hop_latency:hop ~hops:2 ~prefix adversary router;
  attach_via_hops net ~hop_latency:hop ~hops:3 ~prefix router producer_host;
  { net; user; adversary; router; producer_host; prefix; producer_key }

let wan_producer ?(seed = 42) ?tracer ?(producer = default_producer_config) () =
  let net = create ~seed ?tracer () in
  let user = add_node net ~forwarding_delay:ccnd_processing ~caching:false "U" in
  let adversary =
    add_node net ~forwarding_delay:ccnd_processing ~caching:false "Adv"
  in
  let router = add_node net ~forwarding_delay:ccnd_processing "R" in
  let producer_host = add_node net ~forwarding_delay:ccnd_processing "P" in
  let prefix = Name.of_string "/prod" in
  let producer_key = "wanp-producer-key" in
  install_producer ~config:producer ~prefix ~key:producer_key producer_host;
  (* Long-haul hops with moderate jitter: the total consumer-to-R RTT
     is ~190 ms, so the extra R-to-P round trip on a miss is only a few
     ms — which is why a single probe distinguishes with probability
     barely above 1/2 (paper: 59%). *)
  let long_haul = Sim.Latency.Normal { mean = 31.0; stddev = 2.55; min = 20. } in
  attach_via_hops net ~hop_latency:long_haul ~hops:3 ~prefix user router;
  attach_via_hops net ~hop_latency:long_haul ~hops:3 ~prefix adversary router;
  let r_p, _ =
    connect net ~latency:(Sim.Latency.Normal { mean = 0.8; stddev = 0.15; min = 0.3 })
      router producer_host
  in
  route net router ~prefix ~via:r_p;
  { net; user; adversary; router; producer_host; prefix; producer_key }

let local_host ?(seed = 42) ?tracer ?(producer = default_producer_config) () =
  let net = create ~seed ?tracer () in
  (* One host runs both honest and malicious applications; its own
     forwarder's Content Store is the probed cache. *)
  let host =
    add_node net
      ~forwarding_delay:(Sim.Latency.Normal { mean = 0.6; stddev = 0.12; min = 0.3 })
      "host"
  in
  let router = add_node net ~forwarding_delay:ccnd_processing "R" in
  let producer_host = add_node net ~forwarding_delay:ccnd_processing "P" in
  let prefix = Name.of_string "/prod" in
  let producer_key = "local-producer-key" in
  install_producer ~config:producer ~prefix ~key:producer_key producer_host;
  let h_r, _ = connect net ~latency:Sim.Latency.fast_ethernet host router in
  let r_p, _ =
    connect net ~latency:(Sim.Latency.Normal { mean = 0.9; stddev = 0.5; min = 0.2 })
      router producer_host
  in
  route net host ~prefix ~via:h_r;
  route net router ~prefix ~via:r_p;
  { net; user = host; adversary = host; router = host; producer_host; prefix; producer_key }

(* --- two-party interactive topology --- *)

type conversation_setup = {
  cnet : t;
  alice : Node.t;
  bob : Node.t;
  eavesdropper : Node.t;
  shared_router : Node.t;
  alice_prefix : Name.t;
  bob_prefix : Name.t;
  alice_key : string;
  bob_key : string;
}

let conversation ?(seed = 42) ?tracer () =
  let net = create ~seed ?tracer () in
  let alice = add_node net ~forwarding_delay:lan_ccnd_processing ~caching:false "alice" in
  let bob = add_node net ~forwarding_delay:lan_ccnd_processing ~caching:false "bob" in
  let eavesdropper =
    add_node net ~forwarding_delay:lan_ccnd_processing ~caching:false "eve"
  in
  let shared_router = add_node net ~forwarding_delay:lan_ccnd_processing "R" in
  let fe = Sim.Latency.fast_ethernet in
  let a_r, r_a = connect net ~latency:fe alice shared_router in
  let b_r, r_b = connect net ~latency:fe bob shared_router in
  let e_r, _ = connect net ~latency:fe eavesdropper shared_router in
  let alice_prefix = Name.of_string "/alice/call" in
  let bob_prefix = Name.of_string "/bob/call" in
  (* Interests for a party's namespace route toward that party. *)
  route net shared_router ~prefix:alice_prefix ~via:r_a;
  route net shared_router ~prefix:bob_prefix ~via:r_b;
  route net alice ~prefix:bob_prefix ~via:a_r;
  route net bob ~prefix:alice_prefix ~via:b_r;
  route net eavesdropper ~prefix:alice_prefix ~via:e_r;
  route net eavesdropper ~prefix:bob_prefix ~via:e_r;
  {
    cnet = net;
    alice;
    bob;
    eavesdropper;
    shared_router;
    alice_prefix;
    bob_prefix;
    alice_key = "alice-signing-key";
    bob_key = "bob-signing-key";
  }

(* --- edge/core deployment topology --- *)

type edge_core_setup = {
  ecnet : t;
  victim : Node.t;
  local_adversary : Node.t;
  remote_consumer : Node.t;
  edge1 : Node.t;
  edge2 : Node.t;
  core : Node.t;
  ec_producer_host : Node.t;
  ec_prefix : Name.t;
  ec_producer_key : string;
}

let edge_core ?(seed = 42) ?tracer ?(producer = default_producer_config) () =
  let net = create ~seed ?tracer () in
  let victim = add_node net ~forwarding_delay:ccnd_processing ~caching:false "victim" in
  let local_adversary =
    add_node net ~forwarding_delay:ccnd_processing ~caching:false "adv"
  in
  let remote_consumer =
    add_node net ~forwarding_delay:ccnd_processing ~caching:false "remote"
  in
  let edge1 = add_node net ~forwarding_delay:ccnd_processing "edge1" in
  let edge2 = add_node net ~forwarding_delay:ccnd_processing "edge2" in
  let core = add_node net ~forwarding_delay:ccnd_processing "core" in
  let producer_host = add_node net ~forwarding_delay:ccnd_processing "P" in
  let fe = Sim.Latency.fast_ethernet in
  let metro = Sim.Latency.Normal { mean = 5.0; stddev = 0.6; min = 2. } in
  let long_haul = Sim.Latency.Normal { mean = 40.0; stddev = 3.0; min = 25. } in
  let v_e1, _ = connect net ~latency:fe victim edge1 in
  let a_e1, _ = connect net ~latency:fe local_adversary edge1 in
  let r_e2, _ = connect net ~latency:fe remote_consumer edge2 in
  let e1_c, _ = connect net ~latency:metro edge1 core in
  let e2_c, _ = connect net ~latency:metro edge2 core in
  let c_p, _ = connect net ~latency:long_haul core producer_host in
  let ec_prefix = Name.of_string "/prod" in
  let ec_producer_key = "edge-core-producer-key" in
  install_producer ~config:producer ~prefix:ec_prefix ~key:ec_producer_key
    producer_host;
  route net victim ~prefix:ec_prefix ~via:v_e1;
  route net local_adversary ~prefix:ec_prefix ~via:a_e1;
  route net remote_consumer ~prefix:ec_prefix ~via:r_e2;
  route net edge1 ~prefix:ec_prefix ~via:e1_c;
  route net edge2 ~prefix:ec_prefix ~via:e2_c;
  route net core ~prefix:ec_prefix ~via:c_p;
  {
    ecnet = net;
    victim;
    local_adversary;
    remote_consumer;
    edge1;
    edge2;
    core;
    ec_producer_host = producer_host;
    ec_prefix;
    ec_producer_key;
  }
