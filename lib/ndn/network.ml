(* One direction of a link.  [loss] and [latency_factor] start at their
   base values and are perturbed by fault injection; a restore resets
   them to base.  The hot-path invariant: with no faults ever applied,
   [up = true], [loss = base_loss] and [latency_factor = 1.] — so the
   delivery code below draws exactly the same RNG stream as it would
   without any fault machinery (multiplying a latency by 1.0 is an
   exact float identity). *)
(* Bounded transmission queue discipline for one link direction. *)
type queue_policy =
  | Drop_tail
  | Early_drop

let queue_policy_to_string = function
  | Drop_tail -> "drop-tail"
  | Early_drop -> "early-drop"

type link_dir = {
  base_loss : float;
  mutable up : bool;
  mutable loss : float;
  mutable latency_factor : float;
  (* Transmission-queue state.  [q_rate] is the serialization rate in
     bytes per millisecond; [<= 0.] (the default) means "no queue": the
     delivery path is the exact legacy one and none of these fields is
     ever read on it.  With a rate set, each offered packet serializes
     for [size / q_rate] ms behind the packets already queued
     ([busy_until]); at most [q_depth] packets may be backlogged, the
     rest are dropped by [q_policy]. *)
  mutable q_rate : float;
  mutable q_depth : int;
  mutable q_policy : queue_policy;
  mutable busy_until : float;
  mutable qlen : int;
}

type link = {
  l_a : string;
  l_b : string;
  ab : link_dir;  (** The [l_a] → [l_b] direction. *)
  ba : link_dir;
}

(* Node and link collections are kept twice: a reverse-order list for
   creation-order iteration (reversed on demand) and a hash index for
   O(1) lookup.  Generated ISP-scale topologies create tens of
   thousands of nodes and links; the previous append-to-the-end lists
   made construction quadratic and every label/link lookup linear. *)
(* Shard-mode state: the [Sim.Shard] runtime plus the creation-order
   node counter that feeds every node's partition-invariant event-key
   space. *)
type sharded = { sh : Sim.Shard.t; mutable next_sid : int }

type t = {
  engine : Sim.Engine.t;  (* shard 0's engine in shard mode *)
  rng : Sim.Rng.t;
  tracer : Sim.Trace.t;
  sharded : sharded option;
  mutable nodes_rev : (string * Node.t) list;  (* reverse creation order *)
  node_tbl : (string, Node.t) Hashtbl.t;
  mutable links_rev : link list;
  (* Keyed by the (l_a, l_b) orientation of [connect]; first link wins
     for a duplicate pair, matching the old first-match list scan. *)
  link_tbl : (string * string, link) Hashtbl.t;
}

let create ?(seed = 42) ?(tracer = Sim.Trace.disabled) ?shards () =
  let engine, sharded =
    match shards with
    | None -> (Sim.Engine.create ~tracer (), None)
    | Some k ->
      (* Shard engines never carry the user tracer themselves:
         [engine.step] records are per-engine (queue depth, processed
         count) and would differ across shard counts.  Nodes get the
         per-shard stitch tracers instead. *)
      let sh = Sim.Shard.create ~traced:(Sim.Trace.enabled tracer) ~shards:k () in
      (Sim.Shard.engine sh 0, Some { sh; next_sid = 0 })
  in
  {
    engine;
    rng = Sim.Rng.create seed;
    tracer;
    sharded;
    nodes_rev = [];
    node_tbl = Hashtbl.create 64;
    links_rev = [];
    link_tbl = Hashtbl.create 64;
  }

let engine t = t.engine
let rng t = t.rng
let tracer t = t.tracer
let now t = Sim.Engine.now t.engine
let nodes t = List.rev t.nodes_rev
let node t label = Hashtbl.find_opt t.node_tbl label
let is_sharded t = t.sharded <> None

let shard_count t =
  match t.sharded with None -> 1 | Some s -> Sim.Shard.shards s.sh

let set_stall_watchdog t ?stall_ms ~clock_ms () =
  match t.sharded with
  | None -> ()
  | Some s -> Sim.Shard.set_watchdog s.sh ?stall_ms ~clock_ms ()

let add_node t ?(cs_capacity = 0) ?cs_policy ?pit_lifetime_ms ?forwarding_delay
    ?honor_scope ?caching label =
  let n =
    match t.sharded with
    | None ->
      Node.create t.engine ~rng:(Sim.Rng.split t.rng) ~label ~tracer:t.tracer
        ~cs_capacity ?cs_policy ?pit_lifetime_ms ?forwarding_delay ?honor_scope
        ?caching ()
    | Some s ->
      let shard = Sim.Shard.assign s.sh label in
      let sid = s.next_sid in
      s.next_sid <- sid + 1;
      Node.create
        (Sim.Shard.engine s.sh shard)
        ~rng:(Sim.Rng.split t.rng) ~label
        ~tracer:(Sim.Shard.tracer s.sh shard)
        ~cs_capacity ?cs_policy ?pit_lifetime_ms ?forwarding_delay ?honor_scope
        ?caching ~sid ~shard ()
  in
  t.nodes_rev <- (label, n) :: t.nodes_rev;
  (* First node wins for a duplicate label, like the old assoc-list scan. *)
  if not (Hashtbl.mem t.node_tbl label) then Hashtbl.add t.node_tbl label n;
  n

(* Cross-shard packets re-intern their hash-consed name on the
   receiving domain, restoring the physical-equality fast paths there;
   the other fields are immutable plain data and cross as-is. *)
let import_packet pkt =
  match pkt with
  | Packet.Interest i -> Packet.Interest (Interest.import i)
  | Packet.Data d -> Packet.Data (Data.import d)
  | Packet.Nack n -> Packet.Nack (Nack.import n)

let pkt_name pkt =
  match pkt with
  | Packet.Interest i -> ("interest", i.Interest.name)
  | Packet.Data data -> ("data", data.Data.name)
  | Packet.Nack n -> ("nack", n.Nack.name)

let connect t ?(loss = 0.) ?latency_ba ~latency a b =
  let lat_ab = latency in
  let lat_ba = Option.value latency_ba ~default:latency in
  let fresh_dir () =
    {
      base_loss = loss;
      up = true;
      loss;
      latency_factor = 1.;
      q_rate = 0.;
      q_depth = 0;
      q_policy = Drop_tail;
      busy_until = 0.;
      qlen = 0;
    }
  in
  let link =
    { l_a = Node.label a; l_b = Node.label b; ab = fresh_dir (); ba = fresh_dir () }
  in
  t.links_rev <- link :: t.links_rev;
  if
    (not (Hashtbl.mem t.link_tbl (link.l_a, link.l_b)))
    && not (Hashtbl.mem t.link_tbl (link.l_b, link.l_a))
  then Hashtbl.add t.link_tbl (link.l_a, link.l_b) link;
  match t.sharded with
  | None ->
    let face_b = ref (-1) in
    let deliver ~src ~dir dst face_ref back_ref lat pkt =
      let src_label = Node.label src in
      if not dir.up then begin
        (* A downed direction consumes no randomness: when the link comes
           back the RNG stream continues exactly where it left off. *)
        if Sim.Trace.enabled t.tracer then begin
          let pkt_type, name = pkt_name pkt in
          Sim.Trace.emit t.tracer
            {
              Sim.Trace.time = Sim.Engine.now t.engine;
              node = src_label;
              kind = Sim.Trace.Link_drop;
              name = Name.to_string name;
              attrs =
                [ ("dst", Node.label dst); ("pkt", pkt_type); ("reason", "down") ];
            }
        end
      end
      else begin
        (* Sample loss, then latency, in a fixed order for determinism.
           Both draws happen whether or not tracing is on, so enabling a
           tracer never perturbs the RNG stream. *)
        let transmit () =
          let lost = dir.loss > 0. && Sim.Rng.bernoulli t.rng dir.loss in
          let d = Sim.Latency.sample lat t.rng *. dir.latency_factor in
          if Sim.Trace.enabled t.tracer then begin
            let pkt_type, name = pkt_name pkt in
            Sim.Trace.emit t.tracer
              {
                Sim.Trace.time = Sim.Engine.now t.engine;
                node = src_label;
                kind =
                  (if lost then Sim.Trace.Link_drop else Sim.Trace.Link_transmit);
                name = Name.to_string name;
                attrs =
                  [
                    ("dst", Node.label dst);
                    ("pkt", pkt_type);
                    ("delay_ms", Printf.sprintf "%.6f" d);
                  ];
              }
          end;
          if not lost then
            ignore
              (Sim.Engine.schedule t.engine ~delay:d (fun () ->
                   Node.receive dst ~face:!face_ref pkt))
        in
        if dir.q_rate <= 0. then transmit ()
        else begin
          (* Bounded transmission queue: the packet serializes at
             [q_rate] bytes/ms behind the current backlog; a full queue
             (or an early-drop coin) drops it at the tail.  The drop of
             an Interest is answered with a Congested NACK handed back
             to the sending forwarder, which relays it downstream along
             its PIT entry — if its NACK plane is enabled. *)
          let now_t = Sim.Engine.now t.engine in
          let full = dir.qlen >= dir.q_depth in
          let early =
            (not full)
            && dir.q_policy = Early_drop
            && dir.qlen > 0
            && Sim.Rng.bernoulli t.rng
                 (float_of_int dir.qlen /. float_of_int dir.q_depth)
          in
          if full || early then begin
            if Sim.Trace.enabled t.tracer then begin
              let pkt_type, name = pkt_name pkt in
              Sim.Trace.emit t.tracer
                {
                  Sim.Trace.time = now_t;
                  node = src_label;
                  kind = Sim.Trace.Queue_drop;
                  name = Name.to_string name;
                  attrs =
                    [
                      ("dst", Node.label dst);
                      ("pkt", pkt_type);
                      ("policy", queue_policy_to_string dir.q_policy);
                      ("depth", string_of_int dir.qlen);
                    ];
                }
            end;
            match pkt with
            | Packet.Interest i when Node.nacks_enabled src ->
              let nack =
                Nack.create ~nonce:i.Interest.nonce ~reason:Nack.Congested
                  i.Interest.name
              in
              ignore
                (Sim.Engine.schedule t.engine ~delay:0. (fun () ->
                     Node.receive src ~face:!back_ref (Packet.Nack nack)))
            | _ -> ()
          end
          else begin
            dir.qlen <- dir.qlen + 1;
            let start = Float.max now_t dir.busy_until in
            let depart =
              start +. (float_of_int (Wire.encoded_size pkt) /. dir.q_rate)
            in
            dir.busy_until <- depart;
            ignore
              (Sim.Engine.schedule t.engine ~delay:(depart -. now_t) (fun () ->
                   dir.qlen <- dir.qlen - 1;
                   transmit ()))
          end
        end
      end
    in
    let face_a_ref = ref (-1) in
    let face_a =
      Node.add_wire_face a (fun pkt ->
          deliver ~src:a ~dir:link.ab b face_b face_a_ref lat_ab pkt)
    in
    face_a_ref := face_a;
    let fb =
      Node.add_wire_face b (fun pkt ->
          deliver ~src:b ~dir:link.ba a face_a_ref face_b lat_ba pkt)
    in
    face_b := fb;
    (face_a, fb)
  | Some s ->
    (* Shard mode.  Loss/latency randomness moves from the network's
       global stream (whose draw order would depend on the partition)
       to one pre-split generator per link {e direction}: the draw
       sequence then depends only on that direction's send history,
       which is partition-invariant.  Split order = connect order, ab
       before ba, so builds are reproducible. *)
    let rng_ab = Sim.Rng.split t.rng in
    let rng_ba = Sim.Rng.split t.rng in
    if Node.shard a <> Node.shard b then begin
      Sim.Shard.note_min_link_delay s.sh (Sim.Latency.lower_bound lat_ab);
      Sim.Shard.note_min_link_delay s.sh (Sim.Latency.lower_bound lat_ba)
    end;
    let face_b = ref (-1) in
    let deliver ~src ~rng ~dir dst face_ref back_ref lat pkt =
      (* Runs on [src]'s shard: reads/draws only src-shard state.  The
         trace goes to src's shard buffer; the delivery event is keyed
         by src and either scheduled locally or handed to [Sim.Shard]'s
         cross-shard queue, where the receiving domain re-interns the
         packet's name.  Queue state, too, lives entirely on the sending
         side: serialization only ever {e delays} the start of a
         delivery, so the cross-shard lookahead bound (the latency lower
         bound) stays sound. *)
      let eng = Node.engine src in
      let tr = Node.tracer src in
      if not dir.up then begin
        if Sim.Trace.enabled tr then begin
          let pkt_type, name = pkt_name pkt in
          Sim.Trace.emit tr
            {
              Sim.Trace.time = Sim.Engine.now eng;
              node = Node.label src;
              kind = Sim.Trace.Link_drop;
              name = Name.to_string name;
              attrs =
                [ ("dst", Node.label dst); ("pkt", pkt_type); ("reason", "down") ];
            }
        end
      end
      else begin
        let transmit () =
          let lost = dir.loss > 0. && Sim.Rng.bernoulli rng dir.loss in
          let d = Sim.Latency.sample lat rng *. dir.latency_factor in
          if Sim.Trace.enabled tr then begin
            let pkt_type, name = pkt_name pkt in
            Sim.Trace.emit tr
              {
                Sim.Trace.time = Sim.Engine.now eng;
                node = Node.label src;
                kind =
                  (if lost then Sim.Trace.Link_drop else Sim.Trace.Link_transmit);
                name = Name.to_string name;
                attrs =
                  [
                    ("dst", Node.label dst);
                    ("pkt", pkt_type);
                    ("delay_ms", Printf.sprintf "%.6f" d);
                  ];
              }
          end;
          if not lost then begin
            let key = Node.fresh_event_key src in
            if Node.shard src = Node.shard dst then
              ignore
                (Sim.Engine.schedule_key eng ~delay:d ~key (fun () ->
                     Node.receive dst ~face:!face_ref pkt))
            else
              Sim.Shard.send s.sh ~src:(Node.shard src) ~dst:(Node.shard dst)
                ~time:(Sim.Engine.now eng +. d)
                ~key
                (fun () -> Node.receive dst ~face:!face_ref (import_packet pkt))
          end
        in
        if dir.q_rate <= 0. then transmit ()
        else begin
          let now_t = Sim.Engine.now eng in
          let full = dir.qlen >= dir.q_depth in
          let early =
            (not full)
            && dir.q_policy = Early_drop
            && dir.qlen > 0
            && Sim.Rng.bernoulli rng
                 (float_of_int dir.qlen /. float_of_int dir.q_depth)
          in
          if full || early then begin
            if Sim.Trace.enabled tr then begin
              let pkt_type, name = pkt_name pkt in
              Sim.Trace.emit tr
                {
                  Sim.Trace.time = now_t;
                  node = Node.label src;
                  kind = Sim.Trace.Queue_drop;
                  name = Name.to_string name;
                  attrs =
                    [
                      ("dst", Node.label dst);
                      ("pkt", pkt_type);
                      ("policy", queue_policy_to_string dir.q_policy);
                      ("depth", string_of_int dir.qlen);
                    ];
                }
            end;
            match pkt with
            | Packet.Interest i when Node.nacks_enabled src ->
              let nack =
                Nack.create ~nonce:i.Interest.nonce ~reason:Nack.Congested
                  i.Interest.name
              in
              let key = Node.fresh_event_key src in
              ignore
                (Sim.Engine.schedule_key eng ~delay:0. ~key (fun () ->
                     Node.receive src ~face:!back_ref (Packet.Nack nack)))
            | _ -> ()
          end
          else begin
            dir.qlen <- dir.qlen + 1;
            let start = Float.max now_t dir.busy_until in
            let depart =
              start +. (float_of_int (Wire.encoded_size pkt) /. dir.q_rate)
            in
            dir.busy_until <- depart;
            let key = Node.fresh_event_key src in
            ignore
              (Sim.Engine.schedule_key eng ~delay:(depart -. now_t) ~key
                 (fun () ->
                   dir.qlen <- dir.qlen - 1;
                   transmit ()))
          end
        end
      end
    in
    let face_a_ref = ref (-1) in
    let face_a =
      Node.add_wire_face a (fun pkt ->
          deliver ~src:a ~rng:rng_ab ~dir:link.ab b face_b face_a_ref lat_ab pkt)
    in
    face_a_ref := face_a;
    let fb =
      Node.add_wire_face b (fun pkt ->
          deliver ~src:b ~rng:rng_ba ~dir:link.ba a face_a_ref face_b lat_ba pkt)
    in
    face_b := fb;
    (face_a, fb)

(* --- fault injection --- *)

(* Find the link joining [a] and [b] in either orientation; the bool is
   [true] when it is stored as (b, a), in which case the caller's "ab"
   direction is the stored [ba] one. *)
let find_link t a b =
  match Hashtbl.find_opt t.link_tbl (a, b) with
  | Some l -> Ok (l, false)
  | None -> (
    match Hashtbl.find_opt t.link_tbl (b, a) with
    | Some l -> Ok (l, true)
    | None -> Error (Printf.sprintf "no link between %s and %s" a b))

let dirs_of link ~flipped (dir : Sim.Fault.direction) =
  match (dir, flipped) with
  | Sim.Fault.Both, _ -> [ link.ab; link.ba ]
  | Ab, false | Ba, true -> [ link.ab ]
  | Ba, false | Ab, true -> [ link.ba ]

(* Shard mode reads a direction's state from the sending node's domain,
   so fault application must happen there too: pair each affected
   direction with the node whose sends read it (the stored [ab]
   direction is read by [l_a]'s deliveries, [ba] by [l_b]'s). *)
let dirs_with_owners t link ~flipped (dir : Sim.Fault.direction) =
  let owner_a = Hashtbl.find t.node_tbl link.l_a in
  let owner_b = Hashtbl.find t.node_tbl link.l_b in
  match (dir, flipped) with
  | Sim.Fault.Both, _ -> [ (owner_a, link.ab); (owner_b, link.ba) ]
  | Ab, false | Ba, true -> [ (owner_a, link.ab) ]
  | Ba, false | Ab, true -> [ (owner_b, link.ba) ]

let direction_label = function
  | Sim.Fault.Ab -> "ab"
  | Sim.Fault.Ba -> "ba"
  | Sim.Fault.Both -> "both"

let set_link_state t ~a ~b ?(dir = Sim.Fault.Both) ~up () =
  Result.map
    (fun (link, flipped) ->
      List.iter (fun d -> d.up <- up) (dirs_of link ~flipped dir))
    (find_link t a b)

let degrade_link t ~a ~b ?(dir = Sim.Fault.Both) ?loss ?latency_factor () =
  Result.map
    (fun (link, flipped) ->
      List.iter
        (fun d ->
          (match loss with Some l -> d.loss <- l | None -> ());
          match latency_factor with
          | Some f -> d.latency_factor <- f
          | None -> ())
        (dirs_of link ~flipped dir))
    (find_link t a b)

let restore_link t ~a ~b ?(dir = Sim.Fault.Both) () =
  Result.map
    (fun (link, flipped) ->
      List.iter
        (fun d ->
          d.loss <- d.base_loss;
          d.latency_factor <- 1.)
        (dirs_of link ~flipped dir))
    (find_link t a b)

let set_link_queue t ~a ~b ?(dir = Sim.Fault.Both) ~rate_mbps ~depth
    ?(policy = Drop_tail) () =
  if not (rate_mbps > 0. && Float.is_finite rate_mbps) then
    Error "link queue: rate_mbps must be positive and finite"
  else if depth <= 0 then Error "link queue: depth must be positive"
  else
    Result.map
      (fun (link, flipped) ->
        List.iter
          (fun d ->
            (* Mbit/s -> bytes/ms. *)
            d.q_rate <- rate_mbps *. 125.;
            d.q_depth <- depth;
            d.q_policy <- policy)
          (dirs_of link ~flipped dir))
      (find_link t a b)

let clear_link_queue t ~a ~b ?(dir = Sim.Fault.Both) () =
  Result.map
    (fun (link, flipped) ->
      List.iter
        (fun d ->
          d.q_rate <- 0.;
          d.q_depth <- 0;
          d.busy_until <- 0.;
          d.qlen <- 0)
        (dirs_of link ~flipped dir))
    (find_link t a b)

let trace_fault t ~node kind attrs =
  if Sim.Trace.enabled t.tracer then
    Sim.Trace.emit t.tracer
      {
        Sim.Trace.time = Sim.Engine.now t.engine;
        node;
        kind;
        name = "";
        attrs;
      }

let f6 = Printf.sprintf "%.6f"

(* Execute one fault event at its scheduled instant.  Targets were
   validated by [install_faults], so lookups here cannot fail; the
   [Error _] branches are unreachable belt-and-braces. *)
let apply_fault t (e : Sim.Fault.event) =
  let ignore_result (_ : (unit, string) result) = () in
  match e.Sim.Fault.kind with
  | Sim.Fault.Link_down { a; b; dir } ->
    trace_fault t ~node:a Sim.Trace.Fault_link
      [ ("peer", b); ("dir", direction_label dir); ("state", "down") ];
    ignore_result (set_link_state t ~a ~b ~dir ~up:false ())
  | Link_up { a; b; dir } ->
    trace_fault t ~node:a Sim.Trace.Fault_link
      [ ("peer", b); ("dir", direction_label dir); ("state", "up") ];
    ignore_result (set_link_state t ~a ~b ~dir ~up:true ())
  | Link_degrade { a; b; dir; loss; latency_factor; until } ->
    trace_fault t ~node:a Sim.Trace.Fault_link
      [
        ("peer", b);
        ("dir", direction_label dir);
        ("state", "degraded");
        ("loss", f6 loss);
        ("latency_factor", f6 latency_factor);
        ("until", f6 until);
      ];
    ignore_result (degrade_link t ~a ~b ~dir ~loss ~latency_factor ());
    ignore
      (Sim.Engine.schedule_at t.engine ~time:until (fun () ->
           trace_fault t ~node:a Sim.Trace.Fault_link
             [ ("peer", b); ("dir", direction_label dir); ("state", "restored") ];
           ignore_result (restore_link t ~a ~b ~dir ())))
  | Node_crash { node = label; preserve_cs } ->
    trace_fault t ~node:label Sim.Trace.Fault_crash
      [ ("preserve_cs", string_of_bool preserve_cs) ];
    Option.iter (Node.crash ~preserve_cs) (node t label)
  | Node_restart { node = label } ->
    trace_fault t ~node:label Sim.Trace.Fault_restart [];
    Option.iter Node.restart (node t label)
  | Producer_outage { node = label; until } ->
    trace_fault t ~node:label Sim.Trace.Fault_producer
      [ ("state", "down"); ("until", f6 until) ];
    Option.iter
      (fun n ->
        Node.set_producers_enabled n false;
        ignore
          (Sim.Engine.schedule_at t.engine ~time:until (fun () ->
               trace_fault t ~node:label Sim.Trace.Fault_producer
                 [ ("state", "restored") ];
               Node.set_producers_enabled n true)))
      (node t label)
  | Producer_slowdown { node = label; factor; until } ->
    trace_fault t ~node:label Sim.Trace.Fault_producer
      [ ("state", "slow"); ("factor", f6 factor); ("until", f6 until) ];
    Option.iter
      (fun n ->
        Node.set_production_factor n factor;
        ignore
          (Sim.Engine.schedule_at t.engine ~time:until (fun () ->
               trace_fault t ~node:label Sim.Trace.Fault_producer
                 [ ("state", "restored") ];
               Node.set_production_factor n 1.)))
      (node t label)

(* Shard-mode fault application.  Every piece of a fault event is
   scheduled as a node-keyed event on the domain that owns the state it
   mutates: link-direction pieces on the sending endpoint, node pieces
   on the node itself.  Splitting a Both-direction link fault into two
   pieces is partition-invariant (the split depends on the endpoints,
   never on the shard count); the trace record is emitted once, from
   the first piece, to mirror the legacy single emission. *)
let trace_fault_on owner ~node kind attrs =
  let tr = Node.tracer owner in
  if Sim.Trace.enabled tr then
    Sim.Trace.emit tr
      {
        Sim.Trace.time = Sim.Engine.now (Node.engine owner);
        node;
        kind;
        name = "";
        attrs;
      }

let schedule_fault_sharded t (e : Sim.Fault.event) =
  let at = e.Sim.Fault.at in
  let link_pieces a b dir f =
    match find_link t a b with
    | Error _ -> () (* validated by install_faults; unreachable *)
    | Ok (link, flipped) ->
      List.iteri
        (fun i (owner, d) ->
          Node.schedule_app_at owner ~time:at (fun () -> f ~first:(i = 0) owner d))
        (dirs_with_owners t link ~flipped dir)
  in
  match e.Sim.Fault.kind with
  | Sim.Fault.Link_down { a; b; dir } ->
    link_pieces a b dir (fun ~first owner d ->
        if first then
          trace_fault_on owner ~node:a Sim.Trace.Fault_link
            [ ("peer", b); ("dir", direction_label dir); ("state", "down") ];
        d.up <- false)
  | Link_up { a; b; dir } ->
    link_pieces a b dir (fun ~first owner d ->
        if first then
          trace_fault_on owner ~node:a Sim.Trace.Fault_link
            [ ("peer", b); ("dir", direction_label dir); ("state", "up") ];
        d.up <- true)
  | Link_degrade { a; b; dir; loss; latency_factor; until } ->
    link_pieces a b dir (fun ~first owner d ->
        if first then
          trace_fault_on owner ~node:a Sim.Trace.Fault_link
            [
              ("peer", b);
              ("dir", direction_label dir);
              ("state", "degraded");
              ("loss", f6 loss);
              ("latency_factor", f6 latency_factor);
              ("until", f6 until);
            ];
        d.loss <- loss;
        d.latency_factor <- latency_factor;
        (* Each piece restores its own direction on its own shard. *)
        Node.schedule_app_at owner ~time:until (fun () ->
            if first then
              trace_fault_on owner ~node:a Sim.Trace.Fault_link
                [ ("peer", b); ("dir", direction_label dir); ("state", "restored") ];
            d.loss <- d.base_loss;
            d.latency_factor <- 1.))
  | Node_crash { node = label; preserve_cs } ->
    Option.iter
      (fun n ->
        Node.schedule_app_at n ~time:at (fun () ->
            trace_fault_on n ~node:label Sim.Trace.Fault_crash
              [ ("preserve_cs", string_of_bool preserve_cs) ];
            Node.crash ~preserve_cs n))
      (node t label)
  | Node_restart { node = label } ->
    Option.iter
      (fun n ->
        Node.schedule_app_at n ~time:at (fun () ->
            trace_fault_on n ~node:label Sim.Trace.Fault_restart [];
            Node.restart n))
      (node t label)
  | Producer_outage { node = label; until } ->
    Option.iter
      (fun n ->
        Node.schedule_app_at n ~time:at (fun () ->
            trace_fault_on n ~node:label Sim.Trace.Fault_producer
              [ ("state", "down"); ("until", f6 until) ];
            Node.set_producers_enabled n false;
            Node.schedule_app_at n ~time:until (fun () ->
                trace_fault_on n ~node:label Sim.Trace.Fault_producer
                  [ ("state", "restored") ];
                Node.set_producers_enabled n true)))
      (node t label)
  | Producer_slowdown { node = label; factor; until } ->
    Option.iter
      (fun n ->
        Node.schedule_app_at n ~time:at (fun () ->
            trace_fault_on n ~node:label Sim.Trace.Fault_producer
              [ ("state", "slow"); ("factor", f6 factor); ("until", f6 until) ];
            Node.set_production_factor n factor;
            Node.schedule_app_at n ~time:until (fun () ->
                trace_fault_on n ~node:label Sim.Trace.Fault_producer
                  [ ("state", "restored") ];
                Node.set_production_factor n 1.)))
      (node t label)

(* Check that every event's targets exist before anything is scheduled,
   so a typo in a schedule fails loudly instead of silently no-opping
   halfway through a run. *)
let check_targets t (e : Sim.Fault.event) =
  let need_node label =
    match node t label with
    | Some _ -> Ok ()
    | None -> Error (Printf.sprintf "unknown node %S" label)
  in
  let need_link a b = Result.map (fun _ -> ()) (find_link t a b) in
  let r =
    match e.Sim.Fault.kind with
    | Sim.Fault.Link_down { a; b; _ }
    | Link_up { a; b; _ }
    | Link_degrade { a; b; _ } -> need_link a b
    | Node_crash { node; _ } | Node_restart { node } -> need_node node
    | Producer_outage { node; _ } | Producer_slowdown { node; _ } ->
      need_node node
  in
  Result.map_error
    (fun msg -> Printf.sprintf "fault at t=%g: %s" e.Sim.Fault.at msg)
    r

let install_faults t schedule =
  let rec check = function
    | [] -> Ok ()
    | e :: rest -> (
      match Sim.Fault.validate e with
      | Error _ as err -> err
      | Ok () -> (
        match check_targets t e with
        | Ok () -> check rest
        | Error _ as err -> err))
  in
  Result.map
    (fun () ->
      match t.sharded with
      | None ->
        Sim.Fault.install ~engine:t.engine ~apply:(apply_fault t) schedule
      | Some s ->
        (* A degrade that speeds a link up undercuts the lookahead
           bound; registering the factor before anything runs keeps
           every window of the whole run sound. *)
        List.iter
          (fun (e : Sim.Fault.event) ->
            match e.Sim.Fault.kind with
            | Sim.Fault.Link_degrade { latency_factor; _ }
              when latency_factor < 1. ->
              Sim.Shard.note_latency_factor s.sh latency_factor
            | _ -> ())
          schedule;
        List.iter (schedule_fault_sharded t) schedule)
    (check schedule)

let route _t node ~prefix ~via = Fib.add_route (Node.fib node) ~prefix ~face:via

let run ?until t =
  match t.sharded with
  | None -> Sim.Engine.run ?until t.engine
  | Some s ->
    Sim.Shard.run ?until s.sh;
    if Sim.Trace.enabled t.tracer then Sim.Shard.flush_trace s.sh ~into:t.tracer

let events_processed t =
  match t.sharded with
  | None -> Sim.Engine.events_processed t.engine
  | Some s -> Sim.Shard.events_processed s.sh

let fetch_rtt t ~from ?scope ?consumer_private ?timeout_ms name =
  let result = ref None in
  Node.express_interest from ?scope ?consumer_private ?timeout_ms
    ~on_data:(fun ~rtt_ms _data -> result := Some rtt_ms)
    ~on_timeout:(fun () -> ())
    name;
  (* Run until the exchange (or its timeout) has fully played out. *)
  run t;
  !result

(* --- Figure 3 topologies --- *)

type probe_setup = {
  net : t;
  user : Node.t;
  adversary : Node.t;
  router : Node.t;
  producer_host : Node.t;
  prefix : Name.t;
  producer_key : string;
}

type producer_config = {
  producer_private : bool;
  strict_match : bool;
  payload_size : int;
  production_delay_ms : float;
}

let default_producer_config =
  {
    producer_private = false;
    strict_match = false;
    payload_size = 1024;
    production_delay_ms = 0.4;
  }

let install_producer ~config ~prefix ~key node =
  let payload_of name =
    (* Deterministic pseudo-payload so repeated runs are identical. *)
    let h = Ndn_crypto.Sha256.hex_digest (Name.to_string name) in
    let buf = Buffer.create config.payload_size in
    while Buffer.length buf < config.payload_size do
      Buffer.add_string buf h
    done;
    Buffer.sub buf 0 config.payload_size
  in
  Node.add_producer node ~prefix ~production_delay_ms:config.production_delay_ms
    (fun interest ->
      let name = interest.Interest.name in
      if Name.is_prefix ~prefix name then
        Some
          (Data.create ~producer_private:config.producer_private
             ~strict_match:config.strict_match ~producer:(Node.label node) ~key
             ~payload:(payload_of name) name)
      else None)

(* Per-node packet-processing cost: dominated by the NDN daemon's
   name lookup and signing checks; roughly half a millisecond in the
   2013 CCNx codebase.  The LAN testbed machines in the paper show a
   somewhat higher per-packet cost, hence the separate constant. *)
let ccnd_processing = Sim.Latency.Normal { mean = 0.55; stddev = 0.12; min = 0.15 }
let lan_ccnd_processing = Sim.Latency.Normal { mean = 0.9; stddev = 0.18; min = 0.3 }

let lan ?(seed = 42) ?tracer ?shards ?(producer = default_producer_config) () =
  let net = create ~seed ?tracer ?shards () in
  let user = add_node net ~forwarding_delay:lan_ccnd_processing ~caching:false "U" in
  let adversary =
    add_node net ~forwarding_delay:lan_ccnd_processing ~caching:false "Adv"
  in
  let router = add_node net ~forwarding_delay:lan_ccnd_processing "R" in
  let producer_host = add_node net ~forwarding_delay:lan_ccnd_processing "P" in
  let fe = Sim.Latency.fast_ethernet in
  let u_r, _ = connect net ~latency:fe user router in
  let a_r, _ = connect net ~latency:fe adversary router in
  let r_p, _ =
    connect net ~latency:(Sim.Latency.Normal { mean = 1.8; stddev = 0.35; min = 0.5 })
      router producer_host
  in
  let prefix = Name.of_string "/prod" in
  let producer_key = "lan-producer-key" in
  install_producer ~config:producer ~prefix ~key:producer_key producer_host;
  route net user ~prefix ~via:u_r;
  route net adversary ~prefix ~via:a_r;
  route net router ~prefix ~via:r_p;
  { net; user; adversary; router; producer_host; prefix; producer_key }

(* Builds consumer --[hop]*n-- router chains where every intermediate
   hop is itself a caching NDN router, and returns the consumer's
   egress face. *)
let attach_via_hops net ~hop_latency ~hops ~prefix consumer router =
  let rec build upstream_of i =
    (* [upstream_of] is the node closer to the consumer. *)
    if i = 0 then begin
      let f, _ = connect net ~latency:hop_latency upstream_of router in
      route net upstream_of ~prefix ~via:f
    end
    else begin
      let mid = add_node net ~forwarding_delay:ccnd_processing
          (Printf.sprintf "%s-hop%d" (Node.label consumer) i)
      in
      let f, _ = connect net ~latency:hop_latency upstream_of mid in
      route net upstream_of ~prefix ~via:f;
      build mid (i - 1)
    end
  in
  build consumer (hops - 1)

let wan ?(seed = 42) ?tracer ?shards ?(producer = default_producer_config) () =
  let net = create ~seed ?tracer ?shards () in
  let user = add_node net ~forwarding_delay:ccnd_processing ~caching:false "U" in
  let adversary =
    add_node net ~forwarding_delay:ccnd_processing ~caching:false "Adv"
  in
  let router = add_node net ~forwarding_delay:ccnd_processing "R" in
  let producer_host = add_node net ~forwarding_delay:ccnd_processing "P" in
  let prefix = Name.of_string "/prod" in
  let producer_key = "wan-producer-key" in
  install_producer ~config:producer ~prefix ~key:producer_key producer_host;
  let hop = Sim.Latency.Shifted_exponential { shift = 0.35; rate = 3.0 } in
  (* "U and Adv are connected to the same first-hop NDN router R, which
     is several hops away from both, while P is 3 hops away from R." *)
  attach_via_hops net ~hop_latency:hop ~hops:2 ~prefix user router;
  attach_via_hops net ~hop_latency:hop ~hops:2 ~prefix adversary router;
  attach_via_hops net ~hop_latency:hop ~hops:3 ~prefix router producer_host;
  { net; user; adversary; router; producer_host; prefix; producer_key }

let wan_producer ?(seed = 42) ?tracer ?shards ?(producer = default_producer_config)
    () =
  let net = create ~seed ?tracer ?shards () in
  let user = add_node net ~forwarding_delay:ccnd_processing ~caching:false "U" in
  let adversary =
    add_node net ~forwarding_delay:ccnd_processing ~caching:false "Adv"
  in
  let router = add_node net ~forwarding_delay:ccnd_processing "R" in
  let producer_host = add_node net ~forwarding_delay:ccnd_processing "P" in
  let prefix = Name.of_string "/prod" in
  let producer_key = "wanp-producer-key" in
  install_producer ~config:producer ~prefix ~key:producer_key producer_host;
  (* Long-haul hops with moderate jitter: the total consumer-to-R RTT
     is ~190 ms, so the extra R-to-P round trip on a miss is only a few
     ms — which is why a single probe distinguishes with probability
     barely above 1/2 (paper: 59%). *)
  let long_haul = Sim.Latency.Normal { mean = 31.0; stddev = 2.55; min = 20. } in
  attach_via_hops net ~hop_latency:long_haul ~hops:3 ~prefix user router;
  attach_via_hops net ~hop_latency:long_haul ~hops:3 ~prefix adversary router;
  let r_p, _ =
    connect net ~latency:(Sim.Latency.Normal { mean = 0.8; stddev = 0.15; min = 0.3 })
      router producer_host
  in
  route net router ~prefix ~via:r_p;
  { net; user; adversary; router; producer_host; prefix; producer_key }

let local_host ?(seed = 42) ?tracer ?shards ?(producer = default_producer_config)
    () =
  let net = create ~seed ?tracer ?shards () in
  (* One host runs both honest and malicious applications; its own
     forwarder's Content Store is the probed cache. *)
  let host =
    add_node net
      ~forwarding_delay:(Sim.Latency.Normal { mean = 0.6; stddev = 0.12; min = 0.3 })
      "host"
  in
  let router = add_node net ~forwarding_delay:ccnd_processing "R" in
  let producer_host = add_node net ~forwarding_delay:ccnd_processing "P" in
  let prefix = Name.of_string "/prod" in
  let producer_key = "local-producer-key" in
  install_producer ~config:producer ~prefix ~key:producer_key producer_host;
  let h_r, _ = connect net ~latency:Sim.Latency.fast_ethernet host router in
  let r_p, _ =
    connect net ~latency:(Sim.Latency.Normal { mean = 0.9; stddev = 0.5; min = 0.2 })
      router producer_host
  in
  route net host ~prefix ~via:h_r;
  route net router ~prefix ~via:r_p;
  { net; user = host; adversary = host; router = host; producer_host; prefix; producer_key }

(* --- two-party interactive topology --- *)

type conversation_setup = {
  cnet : t;
  alice : Node.t;
  bob : Node.t;
  eavesdropper : Node.t;
  shared_router : Node.t;
  alice_prefix : Name.t;
  bob_prefix : Name.t;
  alice_key : string;
  bob_key : string;
}

let conversation ?(seed = 42) ?tracer ?shards () =
  let net = create ~seed ?tracer ?shards () in
  let alice = add_node net ~forwarding_delay:lan_ccnd_processing ~caching:false "alice" in
  let bob = add_node net ~forwarding_delay:lan_ccnd_processing ~caching:false "bob" in
  let eavesdropper =
    add_node net ~forwarding_delay:lan_ccnd_processing ~caching:false "eve"
  in
  let shared_router = add_node net ~forwarding_delay:lan_ccnd_processing "R" in
  let fe = Sim.Latency.fast_ethernet in
  let a_r, r_a = connect net ~latency:fe alice shared_router in
  let b_r, r_b = connect net ~latency:fe bob shared_router in
  let e_r, _ = connect net ~latency:fe eavesdropper shared_router in
  let alice_prefix = Name.of_string "/alice/call" in
  let bob_prefix = Name.of_string "/bob/call" in
  (* Interests for a party's namespace route toward that party. *)
  route net shared_router ~prefix:alice_prefix ~via:r_a;
  route net shared_router ~prefix:bob_prefix ~via:r_b;
  route net alice ~prefix:bob_prefix ~via:a_r;
  route net bob ~prefix:alice_prefix ~via:b_r;
  route net eavesdropper ~prefix:alice_prefix ~via:e_r;
  route net eavesdropper ~prefix:bob_prefix ~via:e_r;
  {
    cnet = net;
    alice;
    bob;
    eavesdropper;
    shared_router;
    alice_prefix;
    bob_prefix;
    alice_key = "alice-signing-key";
    bob_key = "bob-signing-key";
  }

(* --- edge/core deployment topology --- *)

type edge_core_setup = {
  ecnet : t;
  victim : Node.t;
  local_adversary : Node.t;
  remote_consumer : Node.t;
  edge1 : Node.t;
  edge2 : Node.t;
  core : Node.t;
  ec_producer_host : Node.t;
  ec_prefix : Name.t;
  ec_producer_key : string;
}

let edge_core ?(seed = 42) ?tracer ?shards ?(producer = default_producer_config)
    () =
  let net = create ~seed ?tracer ?shards () in
  let victim = add_node net ~forwarding_delay:ccnd_processing ~caching:false "victim" in
  let local_adversary =
    add_node net ~forwarding_delay:ccnd_processing ~caching:false "adv"
  in
  let remote_consumer =
    add_node net ~forwarding_delay:ccnd_processing ~caching:false "remote"
  in
  let edge1 = add_node net ~forwarding_delay:ccnd_processing "edge1" in
  let edge2 = add_node net ~forwarding_delay:ccnd_processing "edge2" in
  let core = add_node net ~forwarding_delay:ccnd_processing "core" in
  let producer_host = add_node net ~forwarding_delay:ccnd_processing "P" in
  let fe = Sim.Latency.fast_ethernet in
  let metro = Sim.Latency.Normal { mean = 5.0; stddev = 0.6; min = 2. } in
  let long_haul = Sim.Latency.Normal { mean = 40.0; stddev = 3.0; min = 25. } in
  let v_e1, _ = connect net ~latency:fe victim edge1 in
  let a_e1, _ = connect net ~latency:fe local_adversary edge1 in
  let r_e2, _ = connect net ~latency:fe remote_consumer edge2 in
  let e1_c, _ = connect net ~latency:metro edge1 core in
  let e2_c, _ = connect net ~latency:metro edge2 core in
  let c_p, _ = connect net ~latency:long_haul core producer_host in
  let ec_prefix = Name.of_string "/prod" in
  let ec_producer_key = "edge-core-producer-key" in
  install_producer ~config:producer ~prefix:ec_prefix ~key:ec_producer_key
    producer_host;
  route net victim ~prefix:ec_prefix ~via:v_e1;
  route net local_adversary ~prefix:ec_prefix ~via:a_e1;
  route net remote_consumer ~prefix:ec_prefix ~via:r_e2;
  route net edge1 ~prefix:ec_prefix ~via:e1_c;
  route net edge2 ~prefix:ec_prefix ~via:e2_c;
  route net core ~prefix:ec_prefix ~via:c_p;
  {
    ecnet = net;
    victim;
    local_adversary;
    remote_consumer;
    edge1;
    edge2;
    core;
    ec_producer_host = producer_host;
    ec_prefix;
    ec_producer_key;
  }
