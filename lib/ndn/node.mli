(** An NDN forwarder: Content Store + PIT + FIB wired into the
    discrete-event engine.

    The same type models routers, consumer hosts (with a local
    application face) and producer hosts (with a registered content
    handler).  A host's forwarder has its own Content Store, which is
    what the local-adversary attack of the paper probes (Figure 2 /
    Figure 3d). *)

type t

(** {1 Cache-response strategy}

    The interposition point for the paper's countermeasures: the
    privacy layer decides, per cache hit, whether to respond
    immediately, respond after an artificial delay, or behave exactly
    like a miss. *)

type response_action =
  | Respond  (** Serve the cache hit immediately. *)
  | Respond_after of float
      (** Serve from cache after an artificial delay (milliseconds) —
          bandwidth is preserved, latency mimics a miss. *)
  | Treat_as_miss
      (** Ignore the cache: forward the interest upstream as if the
          content were absent. *)

type strategy = {
  on_cache_hit : now:float -> Interest.t -> Data.t -> response_action;
  should_cache : now:float -> Data.t -> fetch_delay:float -> bool;
      (** Whether to admit arriving content; [fetch_delay] is the
          measured interest-in → data-in delay for this object, which
          the content-specific-delay countermeasure records. *)
  note_miss : now:float -> Interest.t -> unit;
      (** Observation hook fired on every cache miss. *)
  forward_delay : now:float -> Data.t -> fetch_delay:float -> float;
      (** Extra artificial delay (ms) applied before forwarding
          arriving Data downstream — the constant-delay countermeasure
          pads misses here so that hit and miss latencies match. *)
}

val default_strategy : strategy
(** Plain NDN: serve every hit immediately, cache everything. *)

(** {1 Construction} *)

val create :
  Sim.Engine.t ->
  rng:Sim.Rng.t ->
  label:string ->
  ?tracer:Sim.Trace.t ->
  ?cs_capacity:int ->
  ?cs_policy:Eviction.t ->
  ?pit_lifetime_ms:float ->
  ?pit_capacity:int ->
  ?pit_admission:Pit.admission ->
  ?nacks:bool ->
  ?forwarding_delay:Sim.Latency.t ->
  ?honor_scope:bool ->
  ?caching:bool ->
  ?sid:int ->
  ?shard:int ->
  unit ->
  t
(** [sid]/[shard] (defaults [-1]/[0]) put the node in {e shard mode}:
    with [sid >= 0] every event it schedules is keyed with the packed
    [(sid, per-node counter)] pair via {!Sim.Engine.schedule_key}, so
    pop order is invariant under [Sim.Shard] partitioning.  [sid] must
    then be globally unique (creation order) and [shard] names the
    engine's shard.  Legacy networks leave both at their defaults and
    are byte-for-byte unchanged.

    [tracer] (default {!Sim.Trace.disabled}): when enabled the node
    emits [interest.recv]/[interest.fwd]/[interest.collapsed],
    [data.recv]/[data.sent] and [pit.timeout] records tagged with
    [label], and its Content Store emits the [cs.*] family.
    [cs_capacity] defaults to unbounded; [forwarding_delay] (default a
    small constant) models per-packet processing; [honor_scope]
    (default [true]) — routers "are allowed to disregard this field"
    (Section III), so it is switchable.  [caching] (default [true]):
    when [false] the node never admits content into its CS — used for
    consumer hosts in probing experiments, where the adversary bypasses
    its own local cache.

    [pit_capacity]/[pit_admission] bound the PIT (default: unbounded —
    see {!Pit}); [nacks] (default [false]) lets this forwarder
    generate, relay and consume {!Nack.t} packets.  All three default
    to the legacy byte-identical behavior. *)

val set_caching : t -> bool -> unit

val set_pit_limits : t -> ?capacity:int -> ?admission:Pit.admission -> unit -> unit
(** Replace the PIT with a fresh finite table ([admission] defaults to
    {!Pit.Drop_new}; omitting [capacity] returns to unbounded).
    Pending entries are {e discarded} — call this while configuring a
    topology, before traffic runs. *)

val set_nacks_enabled : t -> bool -> unit
(** Switch NACK generation/relay/consumption on this forwarder.  Off
    (the default), arriving NACKs are dropped silently and none are
    produced — the legacy plane. *)

val nacks_enabled : t -> bool

(** {1 Fault injection}

    The crash/restart pair models a router reboot — the perturbation
    the paper's stable-network assumption rules out.  Both are plain
    state transitions executed at the current virtual instant, so they
    compose with the engine's determinism guarantees. *)

val crash : ?preserve_cs:bool -> t -> unit
(** Take the forwarder down, at the current virtual time:

    - every pending local expression fails {e now} — its armed timeout
      is cancelled and its [on_timeout] callback fires exactly once
      (the application died with the forwarder);
    - the PIT is drained (each dropped entry is traced as
      [pit.timeout] with [reason=crash]); downstream consumers learn
      of the loss through their own retransmission timers;
    - the Content Store is flushed (traced as [cs.flush]) unless
      [preserve_cs] (default [false]) — set it to model a persistent
      on-disk cache that survives the reboot;
    - until {!restart}, every arriving packet, locally expressed
      interest and producer invocation is dropped (counted in
      [dropped_down]).

    Idempotent: crashing a crashed node is a no-op. *)

val restart : t -> unit
(** Bring a crashed forwarder back with cold tables (unless the CS was
    preserved).  FIB routes and faces are configuration, not state:
    they survive. *)

val is_alive : t -> bool

val set_producers_enabled : t -> bool -> unit
(** When [false], every producer application on this node returns no
    content: interests for its namespaces die at the app face and time
    out downstream — a producer outage with the forwarder still up. *)

val producers_enabled : t -> bool

val set_production_factor : t -> float -> unit
(** Multiply every producer application's production delay (default
    [1.]) — an overloaded or throttled origin.
    @raise Invalid_argument unless the factor is positive and finite. *)

val production_factor : t -> float

val label : t -> string

val engine : t -> Sim.Engine.t

val tracer : t -> Sim.Trace.t
(** The tracer passed at creation — in shard mode, the node's shard
    tracer, which is where code acting on this node's behalf (link
    delivery, fault application, countermeasure wrappers) must emit so
    records land in the right stitch buffer. *)

val shard : t -> int
(** The shard index passed at creation ([0] for legacy nodes). *)

val fresh_event_key : t -> int
(** Next packed [(sid, counter)] event key, consuming one counter
    step.  For network plumbing that schedules on the node's behalf
    (cross-shard link delivery); application code should use
    {!schedule_app} instead.  Only meaningful in shard mode. *)

val schedule_app : t -> delay:float -> (unit -> unit) -> unit
(** Schedule driver/application work on this node's engine, keyed with
    the node's own event key in shard mode and with the engine's FIFO
    counter otherwise.  Anything a driver wants to run "on a node" in a
    sharded network must go through this (or {!schedule_app_at}) so the
    event order stays shard-count-invariant. *)

val schedule_app_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant of {!schedule_app}. *)

val content_store : t -> unit Content_store.t

val pit : t -> Pit.t

val fib : t -> Fib.t

val set_strategy : t -> strategy -> unit

val strategy : t -> strategy

(** {1 Faces and wiring}

    Faces are dense integer ids.  [Network] connects nodes by
    installing transmit closures; applications attach via dedicated
    face kinds. *)

val add_wire_face : t -> (Packet.t -> unit) -> int
(** Register a point-to-point face; the closure must deliver the packet
    to the peer (typically via {!receive} after a sampled latency). *)

val local_face : t -> int
(** The node's application face (face 0, always present): interests
    expressed locally arrive on it and matching Data is dispatched to
    local callbacks. *)

val add_producer : t -> prefix:Name.t -> ?production_delay_ms:float ->
  (Interest.t -> Data.t option) -> unit
(** Attach a producer application serving a namespace: a FIB route for
    [prefix] pointing at an app face; interests reaching that face
    invoke the handler after [production_delay_ms] (default [0.1]). *)

val receive : t -> face:int -> Packet.t -> unit
(** Entry point for packets arriving from the network at virtual time
    "now". *)

(** {1 Local consumer API} *)

val express_interest :
  t ->
  ?scope:int ->
  ?consumer_private:bool ->
  ?timeout_ms:float ->
  on_data:(rtt_ms:float -> Data.t -> unit) ->
  ?on_timeout:(unit -> unit) ->
  ?on_nack:(Nack.reason -> unit) ->
  Name.t ->
  unit
(** Issue an interest from the local application.  [on_data] fires with
    the measured round-trip time when content arrives; [on_timeout]
    (default: ignore) fires after [timeout_ms] (default the PIT
    lifetime) without a response.  [on_nack]: when given {e and} the
    forwarder has NACKs enabled, an arriving NACK for this name cancels
    the timeout and fires exactly one of the three callbacks — the
    fast-failure signal backoff-aware consumers react to; when omitted
    a NACK leaves the expression waiting for its timeout, exactly as
    before NACKs existed.  The local Content Store is consulted
    first — which is precisely the local-adversary channel. *)

(** {1 Introspection} *)

type counters = {
  interests_received : int;
  interests_forwarded : int;
  interests_collapsed : int;
  data_received : int;
  data_sent : int;
  cache_responses : int;  (** Served from CS (immediate or delayed). *)
  delayed_responses : int;  (** Subset of [cache_responses]. *)
  scope_drops : int;
  no_route_drops : int;
  unsolicited_data : int;
  dropped_down : int;  (** Packets dropped because the node was crashed. *)
  nacks_sent : int;  (** NACKs originated or relayed downstream. *)
  nacks_received : int;  (** NACKs arriving on any face. *)
}

val counters : t -> counters

val pp_counters : Format.formatter -> counters -> unit
