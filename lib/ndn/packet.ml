type t =
  | Interest of Interest.t
  | Data of Data.t
  | Nack of Nack.t

let name = function
  | Interest i -> i.Interest.name
  | Data d -> d.Data.name
  | Nack n -> n.Nack.name

let size_bytes = function
  | Interest i -> String.length (Name.to_string i.Interest.name) + 24
  | Data d -> Data.size_bytes d
  | Nack n -> String.length (Name.to_string n.Nack.name) + 16

let pp ppf = function
  | Interest i -> Interest.pp ppf i
  | Data d -> Data.pp ppf d
  | Nack n -> Nack.pp ppf n
