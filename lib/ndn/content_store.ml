type 'meta entry = {
  data : Data.t;
  inserted_at : float;
  mutable last_access : float;
  mutable access_count : int;
  mutable meta : 'meta;
}

(* Intrusive doubly-linked node: the list head is the most recently
   used/inserted end; eviction for LRU/FIFO takes the tail.  [self] is
   the node's own [Some] cell, allocated once at creation, so relinking
   on an LRU touch writes preallocated options instead of boxing fresh
   ones — the lookup hit path allocates nothing. *)
type 'meta node = {
  entry : 'meta entry;
  mutable prev : 'meta node option;
  mutable next : 'meta node option;
  self : 'meta node option;
}

type counters = {
  lookups : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  expirations : int;
}

type 'meta t = {
  policy : Eviction.t;
  capacity : int; (* 0 = unbounded *)
  rng : Sim.Rng.t option;
  tracer : Sim.Trace.t;
  owner : string; (* label of the node this store belongs to *)
  table : 'meta node Name.Tbl.t;
  index : unit Name_trie.t; (* prefix index for NDN extension matching *)
  mutable head : 'meta node option;
  mutable tail : 'meta node option;
  (* LFU: lazy min-heap of (count-at-push, seq, name). Stale tops are
     re-pushed with their current count. *)
  lfu_heap : Name.t Sim.Heap.t;
  mutable lfu_seq : int;
  (* Random replacement: dense array of cached names + position map. *)
  mutable slots : Name.t array;
  mutable slots_len : int;
  slot_of : int Name.Tbl.t;
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable expirations : int;
}

let create ?(policy = Eviction.Lru) ?rng ?(tracer = Sim.Trace.disabled)
    ?(owner = "") ~capacity () =
  (match (policy, rng) with
  | Eviction.Random_replacement, None ->
    invalid_arg "Content_store.create: random replacement needs an rng"
  | _ -> ());
  {
    policy;
    capacity = (if capacity < 0 then 0 else capacity);
    rng;
    tracer;
    owner;
    table = Name.Tbl.create 256;
    index = Name_trie.create ();
    head = None;
    tail = None;
    lfu_heap = Sim.Heap.create ();
    lfu_seq = 0;
    slots = [||];
    slots_len = 0;
    slot_of = Name.Tbl.create 256;
    lookups = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    expirations = 0;
  }

(* Every CS record carries the owning node's label and the eviction
   policy, so a mixed-policy topology stays attributable in the trace.
   Call sites on hot paths guard with [Sim.Trace.enabled] *before*
   building the attrs list, so a disabled tracer costs one load and one
   branch — and zero allocation. *)
let trace t ~now kind name attrs =
  Sim.Trace.emit t.tracer
    {
      Sim.Trace.time = now;
      node = t.owner;
      kind;
      name = Name.to_string name;
      attrs = ("policy", Eviction.to_string t.policy) :: attrs;
    }

let size t = Name.Tbl.length t.table

let capacity t = t.capacity

let policy t = t.policy

(* --- intrusive list plumbing (allocation-free: only preallocated
   [self] cells and existing option values are ever written) --- *)

let detach t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with
  | Some h -> h.prev <- node.self
  | None -> t.tail <- node.self);
  t.head <- node.self

(* --- random-replacement slot array --- *)

let slots_add t name =
  if t.slots_len = Array.length t.slots then begin
    let ncap = max 16 (2 * Array.length t.slots) in
    let ns = Array.make ncap Name.root in
    Array.blit t.slots 0 ns 0 t.slots_len;
    t.slots <- ns
  end;
  t.slots.(t.slots_len) <- name;
  Name.Tbl.replace t.slot_of name t.slots_len;
  t.slots_len <- t.slots_len + 1

let slots_remove t name =
  match Name.Tbl.find_opt t.slot_of name with
  | None -> ()
  | Some i ->
    let last = t.slots_len - 1 in
    if i <> last then begin
      let moved = t.slots.(last) in
      t.slots.(i) <- moved;
      Name.Tbl.replace t.slot_of moved i
    end;
    t.slots_len <- last;
    Name.Tbl.remove t.slot_of name

(* --- removal core --- *)

let remove_node t node =
  let name = node.entry.data.Data.name in
  Name.Tbl.remove t.table name;
  Name_trie.remove t.index name;
  detach t node;
  if t.policy = Eviction.Random_replacement then slots_remove t name

let remove t name =
  match Name.Tbl.find_opt t.table name with
  | None -> ()
  | Some node -> remove_node t node

(* --- eviction --- *)

let rec pop_lfu_victim t =
  match Sim.Heap.pop_min t.lfu_heap with
  | None -> None
  | Some (pushed_count, _seq, name) -> (
    match Name.Tbl.find_opt t.table name with
    | None -> pop_lfu_victim t (* entry already gone: stale heap item *)
    | Some node ->
      let current = float_of_int node.entry.access_count in
      if current > pushed_count then begin
        (* Count advanced since the push: re-queue at the new priority. *)
        Sim.Heap.add t.lfu_heap ~time:current ~seq:t.lfu_seq name;
        t.lfu_seq <- t.lfu_seq + 1;
        pop_lfu_victim t
      end
      else Some node)

let choose_victim t =
  match t.policy with
  | Eviction.Lru | Eviction.Fifo -> t.tail
  | Eviction.Lfu -> pop_lfu_victim t
  | Eviction.Random_replacement ->
    if t.slots_len = 0 then None
    else
      let rng = Option.get t.rng in
      let name = t.slots.(Sim.Rng.int rng t.slots_len) in
      Name.Tbl.find_opt t.table name

(* Returns whether a victim was actually evicted, so [insert]'s
   make-room loop can stop when the policy has nothing left to offer
   (e.g. a desynchronized LFU heap) instead of spinning forever. *)
let evict_one t ~now =
  match choose_victim t with
  | None -> false
  | Some node ->
    remove_node t node;
    t.evictions <- t.evictions + 1;
    if Sim.Trace.enabled t.tracer then
      trace t ~now Sim.Trace.Cs_evict node.entry.data.Data.name
        [ ("size", string_of_int (Name.Tbl.length t.table)) ];
    true

(* --- public operations --- *)

let insert t ~now data meta =
  let name = data.Data.name in
  (* Refresh rather than duplicate. *)
  (match Name.Tbl.find_opt t.table name with
  | Some node -> remove_node t node
  | None -> ());
  if t.capacity > 0 then begin
    let evictable = ref true in
    while !evictable && Name.Tbl.length t.table >= t.capacity do
      evictable := evict_one t ~now
    done
  end;
  let entry =
    { data; inserted_at = now; last_access = now; access_count = 0; meta }
  in
  let rec node = { entry; prev = None; next = None; self = Some node } in
  Name.Tbl.replace t.table name node;
  Name_trie.add t.index name ();
  push_front t node;
  if t.policy = Eviction.Lfu then begin
    Sim.Heap.add t.lfu_heap ~time:0. ~seq:t.lfu_seq name;
    t.lfu_seq <- t.lfu_seq + 1
  end;
  if t.policy = Eviction.Random_replacement then slots_add t name;
  t.insertions <- t.insertions + 1;
  if Sim.Trace.enabled t.tracer then
    trace t ~now Sim.Trace.Cs_insert name
      [ ("size", string_of_int (Name.Tbl.length t.table)) ]

(* Inline freshness test ([Data.is_fresh] unfolded) so the age stays in
   float registers on the lookup path. *)
(* ndnlint: hot *)
let is_stale e ~now =
  match e.data.Data.freshness_ms with
  | None -> false
  | Some f -> now -. e.inserted_at > f

let expire_node t ~now node =
  remove_node t node;
  t.expirations <- t.expirations + 1;
  if Sim.Trace.enabled t.tracer then
    trace t ~now Sim.Trace.Cs_expire node.entry.data.Data.name
      [ ("age_ms", Printf.sprintf "%.6f" (now -. node.entry.inserted_at)) ]

let expire_if_stale t ~now node =
  if is_stale node.entry ~now then begin
    expire_node t ~now node;
    true
  end
  else false

(* ndnlint: hot *)
let touch t ~now node =
  let e = node.entry in
  e.last_access <- now;
  e.access_count <- e.access_count + 1;
  (* Matching instead of [t.policy = Eviction.Lru]: a generic
     structural compare on the policy variant would call caml_equal on
     every hit. *)
  match t.policy with
  | Eviction.Lru ->
    detach t node;
    push_front t node
  | _ -> ()

(* The counted miss exit, shared by both lookup flavours. *)
(* ndnlint: hot *)
let miss t ~now name =
  t.misses <- t.misses + 1;
  if Sim.Trace.enabled t.tracer then trace t ~now Sim.Trace.Cs_miss name [];
  raise Not_found

(* The counted hit exit: refresh recency, count, trace. *)
(* ndnlint: hot *)
let hit t ~now node =
  touch t ~now node;
  t.hits <- t.hits + 1;
  if Sim.Trace.enabled t.tracer then
    trace t ~now Sim.Trace.Cs_hit node.entry.data.Data.name
      [ ("count", string_of_int node.entry.access_count) ];
  node.entry

(* ndnlint: hot *)
let find_exact t ~now name =
  t.lookups <- t.lookups + 1;
  match Name.Tbl.find t.table name with
  | exception Not_found -> miss t ~now name
  | node ->
    if is_stale node.entry ~now then begin
      expire_node t ~now node;
      miss t ~now name
    end
    else hit t ~now node

let find_matching_node t ~exact name =
  match Name.Tbl.find_opt t.table name with
  | Some node -> Some node
  | None when exact -> None
  | None ->
    (* NDN prefix semantics: any cached extension of the interest name
       can satisfy it — unless the object demands strict matching
       (unpredictable-name content, paper footnote 5). *)
    let candidate =
      Name_trie.fold_subtree t.index name ~init:None ~f:(fun acc n () ->
          match acc with
          | Some _ -> acc
          | None -> (
            match Name.Tbl.find_opt t.table n with
            | Some node when not node.entry.data.Data.strict_match -> Some node
            | _ -> None))
    in
    candidate

let lookup t ~now ?(exact = false) name =
  if exact then
    match find_exact t ~now name with
    | entry -> Some entry
    | exception Not_found -> None
  else begin
    t.lookups <- t.lookups + 1;
    let rec attempt () =
      match find_matching_node t ~exact name with
      | None -> ( try miss t ~now name with Not_found -> None)
      | Some node ->
        if expire_if_stale t ~now node then attempt ()
        else Some (hit t ~now node)
    in
    attempt ()
  end

let peek t name =
  match Name.Tbl.find_opt t.table name with
  | Some node -> Some node.entry
  | None -> None

let mem t name = Name.Tbl.mem t.table name

let set_meta t name meta =
  match Name.Tbl.find_opt t.table name with
  | None -> false
  | Some node ->
    node.entry.meta <- meta;
    true

let clear t =
  Name.Tbl.reset t.table;
  Name_trie.clear t.index;
  t.head <- None;
  t.tail <- None;
  Sim.Heap.clear t.lfu_heap;
  t.slots_len <- 0;
  Name.Tbl.reset t.slot_of

let flush t ~now =
  let dropped = size t in
  clear t;
  if Sim.Trace.enabled t.tracer then
    trace t ~now Sim.Trace.Cs_flush Name.root
      [ ("dropped", string_of_int dropped) ]

let fold t ~init ~f =
  let rec go acc = function
    | None -> acc
    | Some node -> go (f acc node.entry) node.next
  in
  go init t.head

let counters t =
  {
    lookups = t.lookups;
    hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    evictions = t.evictions;
    expirations = t.expirations;
  }

let pp_counters ppf (c : counters) =
  Format.fprintf ppf
    "lookups=%d hits=%d misses=%d insertions=%d evictions=%d expirations=%d"
    c.lookups c.hits c.misses c.insertions c.evictions c.expirations
