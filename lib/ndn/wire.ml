(* TLV layout:
     INTEREST       0x05 [ NAME NONCE SCOPE? FLAGS? ]
     DATA           0x06 [ NAME PRODUCER PAYLOAD SIGNATURE FLAGS?
                           CONTENT_ID? FRESHNESS? ]
     NACK           0x03 [ NAME NONCE REASON ]
     NAME           0x07 [ COMPONENT* ]
     COMPONENT      0x08 bytes
     NONCE          0x0A 8 bytes big-endian
     SCOPE          0x0C 1 byte
     FLAGS          0x0D 1 byte bitmask (bit0 consumer_private /
                                         bit0 producer_private, bit1 strict)
     PRODUCER       0x16 bytes
     PAYLOAD        0x15 bytes
     SIGNATURE      0x17 bytes
     REASON         0x0E 1 byte (0 congested, 1 no_route, 2 pit_full,
                                 3 duplicate)
     CONTENT_ID     0x12 bytes
     FRESHNESS      0x13 8 bytes (float bits, big-endian)

   Signed Data fields are re-verified by the caller via [Data.verify];
   the codec reconstructs the record including the carried signature
   (re-signing would need the producer key, which the wire does not
   carry). *)

type error = { offset : int; reason : string }

let pp_error ppf e = Format.fprintf ppf "wire error at byte %d: %s" e.offset e.reason

let t_interest = 0x05
let t_data = 0x06
let t_nack = 0x03
let t_name = 0x07
let t_component = 0x08
let t_nonce = 0x0A
let t_scope = 0x0C
let t_flags = 0x0D
let t_reason = 0x0E
let t_content_id = 0x12
let t_freshness = 0x13
let t_payload = 0x15
let t_producer = 0x16
let t_signature = 0x17

(* --- encoding --- *)

let add_tlv buf typ value =
  Buffer.add_char buf (Char.chr typ);
  let n = String.length value in
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (n land 0xFF));
  Buffer.add_string buf value

let encode_name name =
  let buf = Buffer.create 64 in
  List.iter (fun c -> add_tlv buf t_component c) (Name.components name);
  Buffer.contents buf

let be64 v =
  String.init 8 (fun i -> Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * (7 - i))) land 0xFF))

let encode_interest_body (i : Interest.t) =
  let buf = Buffer.create 64 in
  add_tlv buf t_name (encode_name i.Interest.name);
  add_tlv buf t_nonce (be64 i.Interest.nonce);
  (match i.Interest.scope with
  | Some s -> add_tlv buf t_scope (String.make 1 (Char.chr (s land 0xFF)))
  | None -> ());
  if i.Interest.consumer_private then add_tlv buf t_flags "\x01";
  Buffer.contents buf

let encode_interest i =
  let buf = Buffer.create 80 in
  add_tlv buf t_interest (encode_interest_body i);
  Buffer.contents buf

let encode_data_body (d : Data.t) =
  let buf = Buffer.create 256 in
  add_tlv buf t_name (encode_name d.Data.name);
  add_tlv buf t_producer d.Data.producer;
  add_tlv buf t_payload d.Data.payload;
  add_tlv buf t_signature d.Data.signature;
  let flags =
    (if d.Data.producer_private then 1 else 0)
    lor if d.Data.strict_match then 2 else 0
  in
  if flags <> 0 then add_tlv buf t_flags (String.make 1 (Char.chr flags));
  (match d.Data.content_id with
  | Some id -> add_tlv buf t_content_id id
  | None -> ());
  (match d.Data.freshness_ms with
  | Some f -> add_tlv buf t_freshness (be64 (Int64.bits_of_float f))
  | None -> ());
  Buffer.contents buf

let encode_data d =
  let buf = Buffer.create 300 in
  add_tlv buf t_data (encode_data_body d);
  Buffer.contents buf

let reason_byte = function
  | Nack.Congested -> 0
  | Nack.No_route -> 1
  | Nack.Pit_full -> 2
  | Nack.Duplicate -> 3

let encode_nack_body (n : Nack.t) =
  let buf = Buffer.create 64 in
  add_tlv buf t_name (encode_name n.Nack.name);
  add_tlv buf t_nonce (be64 n.Nack.nonce);
  add_tlv buf t_reason (String.make 1 (Char.chr (reason_byte n.Nack.reason)));
  Buffer.contents buf

let encode_nack n =
  let buf = Buffer.create 80 in
  add_tlv buf t_nack (encode_nack_body n);
  Buffer.contents buf

let encode_packet = function
  | Packet.Interest i -> encode_interest i
  | Packet.Data d -> encode_data d
  | Packet.Nack n -> encode_nack n

let encoded_size p = String.length (encode_packet p)

(* --- decoding --- *)

exception Fail of error

let fail offset reason = raise (Fail { offset; reason })

(* Read one TLV header at [pos]; returns (type, value_offset, value_len). *)
let read_header s pos =
  if pos + 5 > String.length s then fail pos "truncated TLV header";
  let typ = Char.code s.[pos] in
  let len =
    (Char.code s.[pos + 1] lsl 24)
    lor (Char.code s.[pos + 2] lsl 16)
    lor (Char.code s.[pos + 3] lsl 8)
    lor Char.code s.[pos + 4]
  in
  if pos + 5 + len > String.length s then fail pos "TLV length exceeds input";
  (typ, pos + 5, len)

(* Fold over the TLVs of a region. *)
let fold_tlvs s ~off ~len ~init ~f =
  let stop = off + len in
  let rec go pos acc =
    if pos = stop then acc
    else if pos > stop then fail pos "TLV overruns its container"
    else begin
      let typ, voff, vlen = read_header s pos in
      go (voff + vlen) (f acc ~typ ~voff ~vlen)
    end
  in
  go off init

let decode_name s ~off ~len =
  let comps =
    fold_tlvs s ~off ~len ~init:[] ~f:(fun acc ~typ ~voff ~vlen ->
        if typ <> t_component then fail voff "expected name component";
        String.sub s voff vlen :: acc)
  in
  try Name.of_components (List.rev comps)
  with Invalid_argument m -> fail off ("invalid name: " ^ m)

let decode_be64 s ~off ~len =
  if len <> 8 then fail off "expected 8-byte integer";
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

type interest_acc = {
  mutable i_name : Name.t option;
  mutable i_nonce : int64 option;
  mutable i_scope : int option;
  mutable i_private : bool;
}

let decode_interest_body s ~off ~len =
  let acc = { i_name = None; i_nonce = None; i_scope = None; i_private = false } in
  ignore
    (fold_tlvs s ~off ~len ~init:() ~f:(fun () ~typ ~voff ~vlen ->
         if typ = t_name then acc.i_name <- Some (decode_name s ~off:voff ~len:vlen)
         else if typ = t_nonce then acc.i_nonce <- Some (decode_be64 s ~off:voff ~len:vlen)
         else if typ = t_scope then begin
           if vlen <> 1 then fail voff "scope must be one byte";
           acc.i_scope <- Some (Char.code s.[voff])
         end
         else if typ = t_flags then begin
           if vlen <> 1 then fail voff "flags must be one byte";
           acc.i_private <- Char.code s.[voff] land 1 <> 0
         end
         else fail voff (Printf.sprintf "unknown interest field 0x%02x" typ)));
  match (acc.i_name, acc.i_nonce) with
  | Some name, Some nonce -> (
    try
      Interest.create ?scope:acc.i_scope ~consumer_private:acc.i_private ~nonce name
    with Invalid_argument m -> fail off m)
  | None, _ -> fail off "interest missing name"
  | _, None -> fail off "interest missing nonce"

type data_acc = {
  mutable d_name : Name.t option;
  mutable d_producer : string option;
  mutable d_payload : string option;
  mutable d_signature : string option;
  mutable d_flags : int;
  mutable d_content_id : string option;
  mutable d_freshness : float option;
}

let decode_data_body s ~off ~len =
  let acc =
    {
      d_name = None;
      d_producer = None;
      d_payload = None;
      d_signature = None;
      d_flags = 0;
      d_content_id = None;
      d_freshness = None;
    }
  in
  ignore
    (fold_tlvs s ~off ~len ~init:() ~f:(fun () ~typ ~voff ~vlen ->
         let value () = String.sub s voff vlen in
         if typ = t_name then acc.d_name <- Some (decode_name s ~off:voff ~len:vlen)
         else if typ = t_producer then acc.d_producer <- Some (value ())
         else if typ = t_payload then acc.d_payload <- Some (value ())
         else if typ = t_signature then acc.d_signature <- Some (value ())
         else if typ = t_flags then begin
           if vlen <> 1 then fail voff "flags must be one byte";
           acc.d_flags <- Char.code s.[voff]
         end
         else if typ = t_content_id then acc.d_content_id <- Some (value ())
         else if typ = t_freshness then
           acc.d_freshness <-
             Some (Int64.float_of_bits (decode_be64 s ~off:voff ~len:vlen))
         else fail voff (Printf.sprintf "unknown data field 0x%02x" typ)));
  match (acc.d_name, acc.d_producer, acc.d_payload, acc.d_signature) with
  | Some name, Some producer, Some payload, Some signature ->
    (* Rebuild the record carrying the original signature: [Data.create]
       would re-sign (and we have no key), so construct through the
       same signing path with a scratch key and then splice the carried
       signature via the record-of-truth below. *)
    let producer_private = acc.d_flags land 1 <> 0 in
    let strict_match = acc.d_flags land 2 <> 0 in
    ( name,
      payload,
      producer,
      signature,
      producer_private,
      strict_match,
      acc.d_content_id,
      acc.d_freshness )
  | None, _, _, _ -> fail off "data missing name"
  | _, None, _, _ -> fail off "data missing producer"
  | _, _, None, _ -> fail off "data missing payload"
  | _, _, _, None -> fail off "data missing signature"

(* Data.t is private; rebuilding with the carried signature goes
   through [Data.of_wire]. *)

type nack_acc = {
  mutable n_name : Name.t option;
  mutable n_nonce : int64 option;
  mutable n_reason : Nack.reason option;
}

let decode_nack_body s ~off ~len =
  let acc = { n_name = None; n_nonce = None; n_reason = None } in
  ignore
    (fold_tlvs s ~off ~len ~init:() ~f:(fun () ~typ ~voff ~vlen ->
         if typ = t_name then acc.n_name <- Some (decode_name s ~off:voff ~len:vlen)
         else if typ = t_nonce then acc.n_nonce <- Some (decode_be64 s ~off:voff ~len:vlen)
         else if typ = t_reason then begin
           if vlen <> 1 then fail voff "reason must be one byte";
           acc.n_reason <-
             (match Char.code s.[voff] with
             | 0 -> Some Nack.Congested
             | 1 -> Some Nack.No_route
             | 2 -> Some Nack.Pit_full
             | 3 -> Some Nack.Duplicate
             | b -> fail voff (Printf.sprintf "unknown nack reason %d" b))
         end
         else fail voff (Printf.sprintf "unknown nack field 0x%02x" typ)));
  match (acc.n_name, acc.n_nonce, acc.n_reason) with
  | Some name, Some nonce, Some reason -> Nack.create ~nonce ~reason name
  | None, _, _ -> fail off "nack missing name"
  | _, None, _ -> fail off "nack missing nonce"
  | _, _, None -> fail off "nack missing reason"

let decode_interest s =
  try
    let typ, voff, vlen = read_header s 0 in
    if typ <> t_interest then fail 0 "not an interest packet";
    if voff + vlen <> String.length s then fail (voff + vlen) "trailing bytes";
    Ok (decode_interest_body s ~off:voff ~len:vlen)
  with Fail e -> Error e

let decode_data s =
  try
    let typ, voff, vlen = read_header s 0 in
    if typ <> t_data then fail 0 "not a data packet";
    if voff + vlen <> String.length s then fail (voff + vlen) "trailing bytes";
    let ( name,
          payload,
          producer,
          signature,
          producer_private,
          strict_match,
          content_id,
          freshness_ms ) =
      decode_data_body s ~off:voff ~len:vlen
    in
    Ok
      (Data.of_wire ~name ~payload ~producer ~signature ~producer_private
         ~strict_match ~content_id ~freshness_ms)
  with Fail e -> Error e

let decode_nack s =
  try
    let typ, voff, vlen = read_header s 0 in
    if typ <> t_nack then fail 0 "not a nack packet";
    if voff + vlen <> String.length s then fail (voff + vlen) "trailing bytes";
    Ok (decode_nack_body s ~off:voff ~len:vlen)
  with Fail e -> Error e

let decode_packet s =
  try
    let typ, _, _ = read_header s 0 in
    if typ = t_interest then
      Result.map (fun i -> Packet.Interest i) (decode_interest s)
    else if typ = t_data then Result.map (fun d -> Packet.Data d) (decode_data s)
    else if typ = t_nack then Result.map (fun n -> Packet.Nack n) (decode_nack s)
    else fail 0 (Printf.sprintf "unknown packet type 0x%02x" typ)
  with Fail e -> Error e

(* --- varint helpers (binary trace wire format, DESIGN §16) ---

   The trace pipeline's LEB128/zigzag coding lives in [Sim.Varint];
   these re-exports give packet-level code one door to the same
   primitives, so any future binary packet framing shares the trace
   format's integer coding (and its tests). *)

let add_varint = Sim.Varint.add_uint

let add_signed_varint = Sim.Varint.add_int

let varint_size = Sim.Varint.uint_size

let read_varint s pos =
  match Sim.Varint.read_uint s pos with
  | v -> Ok v
  | exception Sim.Varint.Truncated off ->
    Error { offset = off; reason = "truncated varint" }
  | exception Sim.Varint.Overflow off ->
    Error { offset = off; reason = "varint exceeds 9 bytes" }

let read_signed_varint s pos =
  match read_varint s pos with
  | Ok (v, pos') -> Ok (Sim.Varint.unzigzag v, pos')
  | Error _ as e -> e
