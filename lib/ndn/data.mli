(** Data (content-object) packets.

    Every content object is signed by its producer — which is exactly
    why k-anonymity in a shared cache is weak: the signature identifies
    the producer even when the payload is encrypted (paper, Section
    II). *)

type t = private {
  name : Name.t;
  payload : string;
  producer : string;  (** Signer identity (key locator). *)
  signature : string;  (** HMAC-SHA256 over the signed fields. *)
  producer_private : bool;
      (** Producer-driven privacy bit (Section V): routers must treat
          this content as private regardless of how it is requested. *)
  strict_match : bool;
      (** When [true], only an interest carrying the complete name may
          retrieve this object from a cache — the footnote-5 rule that
          protects unpredictable-name content from prefix probing. *)
  content_id : string option;
      (** Producer-assigned correlation-group id (the "content id
          field" countermeasure the paper sketches in Section VI):
          objects sharing an id are semantically correlated — e.g. the
          segments of one video — and privacy-aware routers key
          Algorithm 1 by the id instead of the name. *)
  freshness_ms : float option;
      (** Cache lifetime; [None] = never stale.  Interactive traffic
          uses short freshness because stale frames are useless. *)
}

val signed_bytes : name:Name.t -> payload:string -> producer:string ->
  producer_private:bool -> strict_match:bool -> content_id:string option ->
  string
(** The canonical byte string covered by the signature. *)

val create :
  ?producer_private:bool ->
  ?strict_match:bool ->
  ?content_id:string ->
  ?freshness_ms:float ->
  producer:string ->
  key:string ->
  payload:string ->
  Name.t ->
  t
(** Build and sign a content object with the producer's HMAC key. *)

val verify : t -> key:string -> bool
(** Check the signature under the purported producer's key. *)

val of_wire :
  name:Name.t ->
  payload:string ->
  producer:string ->
  signature:string ->
  producer_private:bool ->
  strict_match:bool ->
  content_id:string option ->
  freshness_ms:float option ->
  t
(** Reconstruct a decoded object carrying its original (unverified)
    signature — the deserialization path of {!Wire}.  {!verify} remains
    the only way to establish authenticity. *)

val size_bytes : t -> int
(** Wire-size estimate (name + payload + fixed header), for bandwidth
    accounting. *)

val is_fresh : t -> age_ms:float -> bool
(** Freshness check given the time elapsed since the object entered the
    cache. *)

val import : t -> t
(** Re-intern the name in the current domain's hash-cons table
    ({!Name.import}) — applied to packets crossing shards in
    [Sim.Shard] mode.  Semantically the identity; the signature stays
    valid because no signed field changes. *)

val pp : Format.formatter -> t -> unit
