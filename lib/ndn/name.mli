(** Hierarchical NDN content names.

    A name is a sequence of opaque, non-empty components, written
    ["/cnn/news/2013may20"].  Matching in NDN is by prefix: an interest
    for [X] can be satisfied by content named [X'] whenever [X] is a
    prefix of [X'] (paper, Section II, footnote 2). *)

type t
(** Immutable.  Structural equality and comparison are meaningful.

    Values are hash-consed per domain: equal names constructed in the
    same domain share one allocation, so {!equal} is a pointer
    comparison in the common case (with a canonical-key fallback that
    keeps equality correct across domains and for unmarshalled
    values), and {!hash} is a memoized field read.  Every value of
    this type was built through a validating constructor
    ({!of_string}, {!of_components}, {!append}, …), so well-formedness
    — non-empty, NUL-free components — is an invariant of the type
    that derived constructors such as {!concat} rely on instead of
    re-validating. *)

val root : t
(** The empty name ["/"], prefix of every name. *)

val of_string : string -> t
(** Parse ["/a/b/c"].  Leading/trailing/duplicate slashes are tolerated
    (["//a//b/"] reads as ["/a/b"]).
    @raise Invalid_argument if a component contains a NUL byte (reserved
    for internal serialization). *)

val to_string : t -> string
(** Canonical rendering, always starting with ['/']; [root] renders as
    ["/"]. *)

val of_components : string list -> t
(** Build from explicit components.
    @raise Invalid_argument on an empty or NUL-containing component. *)

val components : t -> string list

val length : t -> int
(** Number of components; [length root = 0]. *)

val append : t -> string -> t
(** Add one component at the end.
    @raise Invalid_argument as {!of_components}. *)

val concat : t -> t -> t
(** [concat a b] is [a] followed by [b]'s components.  No re-validation
    happens: both arguments are [t] values, whose components are
    well-formed by construction (the type's invariant — every [t] was
    built through a validating constructor), so the canonical keys can
    be glued directly. *)

val parent : t -> t option
(** Drop the last component; [None] for [root]. *)

val last : t -> string option
(** Last component; [None] for [root]. *)

val prefix : t -> int -> t
(** [prefix t n] is the first [n] components.
    @raise Invalid_argument unless [0 <= n <= length t]. *)

val is_prefix : prefix:t -> t -> bool
(** [is_prefix ~prefix:p t] — does [p] match [t] per NDN prefix
    semantics?  Reflexive: every name is a prefix of itself. *)

val is_strict_prefix : prefix:t -> t -> bool
(** As {!is_prefix} but excluding equality. *)

val namespace : t -> depth:int -> t
(** The grouping key used by the correlated-content countermeasure
    (paper, Section VI): the first [depth] components, or the whole name
    if shorter. *)

val compare : t -> t -> int
(** Total order: lexicographic on components. *)

val equal : t -> t -> bool
(** Physical-equality-first (hash-consed values are shared), falling
    back to a canonical-key comparison. *)

val hash : t -> int
(** Memoized — a field read, independent of the in-memory
    representation. *)

val import : t -> t
(** Re-intern a name in the {e current} domain's hash-cons table: the
    canonical equal copy here if one exists, otherwise [t] itself
    (which becomes canonical).  The marshal path for cross-shard
    deliveries in [Sim.Shard] mode — names crossing domains stay
    [equal] regardless, but importing restores the physical-equality
    fast paths on the receiving shard. *)

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
