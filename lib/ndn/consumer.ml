module Rtt_estimator = struct
  type t = {
    mutable srtt : float option;
    mutable rttvar : float;
    mutable rto : float;
    mutable n : int;
  }

  let min_rto = 10.
  let max_rto = 60_000.

  let create ?(initial_rto_ms = 1000.) () =
    { srtt = None; rttvar = 0.; rto = initial_rto_ms; n = 0 }

  let clamp v = Float.min max_rto (Float.max min_rto v)

  let observe t ~rtt_ms =
    t.n <- t.n + 1;
    (match t.srtt with
    | None ->
      t.srtt <- Some rtt_ms;
      t.rttvar <- rtt_ms /. 2.
    | Some srtt ->
      (* RFC 6298 constants: alpha = 1/8, beta = 1/4. *)
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (srtt -. rtt_ms));
      t.srtt <- Some ((0.875 *. srtt) +. (0.125 *. rtt_ms)));
    t.rto <- clamp (Option.get t.srtt +. (4. *. t.rttvar))

  let srtt t = t.srtt

  let rto t = t.rto

  let backoff t = t.rto <- clamp (t.rto *. 2.)

  let samples t = t.n
end

type outcome = { data : Data.t option; attempts : int; elapsed_ms : float }

let fetch node ?(max_retries = 3) ?estimator ?consumer_private ~on_done name =
  let estimator =
    match estimator with Some e -> e | None -> Rtt_estimator.create ()
  in
  let engine = Node.engine node in
  let started = Sim.Engine.now engine in
  let finished = ref false in
  let rec attempt n =
    if not !finished then
      Node.express_interest node ?consumer_private
        ~timeout_ms:(Rtt_estimator.rto estimator)
        ~on_data:(fun ~rtt_ms data ->
          if not !finished then begin
            finished := true;
            (* Karn's algorithm: a sample taken after a retransmission
               is ambiguous — the data may answer the original interest
               (inflated RTT) or the re-issued one — so it must not
               feed the estimator.  The backed-off RTO is kept. *)
            if n = 1 then Rtt_estimator.observe estimator ~rtt_ms;
            on_done
              {
                data = Some data;
                attempts = n;
                elapsed_ms = Sim.Engine.now engine -. started;
              }
          end)
        ~on_timeout:(fun () ->
          if not !finished then
            if n <= max_retries then begin
              Rtt_estimator.backoff estimator;
              attempt (n + 1)
            end
            else begin
              finished := true;
              on_done
                {
                  data = None;
                  attempts = n;
                  elapsed_ms = Sim.Engine.now engine -. started;
                }
            end)
        name
  in
  attempt 1

let fetch_sequence node ?max_retries ?consumer_private ~names ~on_done () =
  let estimator = Rtt_estimator.create () in
  let rec go acc = function
    | [] -> on_done (List.rev acc)
    | name :: rest ->
      fetch node ?max_retries ~estimator ?consumer_private
        ~on_done:(fun outcome -> go (outcome :: acc) rest)
        name
  in
  go [] names
