module Rtt_estimator = struct
  type t = {
    mutable srtt : float option;
    mutable rttvar : float;
    mutable rto : float;
    mutable n : int;
  }

  let min_rto = 10.
  let max_rto = 60_000.

  let create ?(initial_rto_ms = 1000.) () =
    { srtt = None; rttvar = 0.; rto = initial_rto_ms; n = 0 }

  let clamp v = Float.min max_rto (Float.max min_rto v)

  let observe t ~rtt_ms =
    t.n <- t.n + 1;
    (match t.srtt with
    | None ->
      t.srtt <- Some rtt_ms;
      t.rttvar <- rtt_ms /. 2.
    | Some srtt ->
      (* RFC 6298 constants: alpha = 1/8, beta = 1/4. *)
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (srtt -. rtt_ms));
      t.srtt <- Some ((0.875 *. srtt) +. (0.125 *. rtt_ms)));
    t.rto <- clamp (Option.get t.srtt +. (4. *. t.rttvar))

  let srtt t = t.srtt

  let rto t = t.rto

  let backoff t = t.rto <- clamp (t.rto *. 2.)

  let samples t = t.n
end

type backoff = {
  base_ms : float;
  bo_factor : float;
  jitter : float;
  max_delay_ms : float;
  bo_rng : Sim.Rng.t;
}

let backoff ?(base_ms = 10.) ?(factor = 2.) ?(jitter = 0.1)
    ?(max_delay_ms = 10_000.) rng =
  if not (base_ms > 0. && Float.is_finite base_ms) then
    invalid_arg "Consumer.backoff: base_ms must be positive and finite";
  if not (factor >= 1. && Float.is_finite factor) then
    invalid_arg "Consumer.backoff: factor must be >= 1";
  if not (jitter >= 0. && jitter < 1.) then
    invalid_arg "Consumer.backoff: jitter must be in [0, 1)";
  if not (max_delay_ms >= base_ms) then
    invalid_arg "Consumer.backoff: max_delay_ms must be >= base_ms";
  { base_ms; bo_factor = factor; jitter; max_delay_ms; bo_rng = rng }

(* Delay before re-attempt [n + 1] after attempt [n] (1-based) failed:
   exponential in [n], capped, then spread by at most [+-jitter]
   (drawn from the policy's own generator, so consumers never perturb
   the node or network streams). *)
let backoff_delay b ~attempt =
  let raw = b.base_ms *. (b.bo_factor ** float_of_int (attempt - 1)) in
  let capped = Float.min b.max_delay_ms raw in
  if b.jitter = 0. then capped
  else begin
    let u = Sim.Rng.float b.bo_rng 1.0 in
    capped *. (1. +. (b.jitter *. ((2. *. u) -. 1.)))
  end

type outcome = {
  data : Data.t option;
  attempts : int;
  elapsed_ms : float;
  nacks : int;
}

let fetch node ?(max_retries = 3) ?estimator ?backoff ?consumer_private
    ~on_done name =
  let estimator =
    match estimator with Some e -> e | None -> Rtt_estimator.create ()
  in
  let engine = Node.engine node in
  let started = Sim.Engine.now engine in
  let finished = ref false in
  let nacks = ref 0 in
  let give_up n =
    finished := true;
    (* The give-up record belongs to the robust plane: emitting it from
       a plain (no-backoff) fetch would perturb golden legacy traces. *)
    (match backoff with
    | Some _ ->
      let tr = Node.tracer node in
      if Sim.Trace.enabled tr then
        Sim.Trace.emit tr
          {
            Sim.Trace.time = Sim.Engine.now engine;
            node = Node.label node;
            kind = Sim.Trace.Consumer_give_up;
            name = Name.to_string name;
            attrs =
              [
                ("attempts", string_of_int n);
                ("nacks", string_of_int !nacks);
              ];
          }
    | None -> ());
    on_done
      {
        data = None;
        attempts = n;
        elapsed_ms = Sim.Engine.now engine -. started;
        nacks = !nacks;
      }
  in
  let rec attempt n =
    if not !finished then begin
      let retry_later () =
        match backoff with
        | None -> attempt (n + 1)
        | Some b ->
          Node.schedule_app node ~delay:(backoff_delay b ~attempt:n) (fun () ->
              attempt (n + 1))
      in
      let on_nack =
        match backoff with
        | None -> None
        | Some _ ->
          (* A NACK is a fast negative: the refusal arrives one RTT
             after the interest instead of a full RTO later, so retry
             (or give up) immediately, after only the backoff delay.
             The RTO estimator is left alone — a refusal says nothing
             about the path's round-trip time. *)
          Some
            (fun (_ : Nack.reason) ->
              if not !finished then begin
                incr nacks;
                if n <= max_retries then retry_later () else give_up n
              end)
      in
      Node.express_interest node ?consumer_private
        ~timeout_ms:(Rtt_estimator.rto estimator)
        ~on_data:(fun ~rtt_ms data ->
          if not !finished then begin
            finished := true;
            (* Karn's algorithm: a sample taken after a retransmission
               is ambiguous — the data may answer the original interest
               (inflated RTT) or the re-issued one — so it must not
               feed the estimator.  The backed-off RTO is kept. *)
            if n = 1 then Rtt_estimator.observe estimator ~rtt_ms;
            on_done
              {
                data = Some data;
                attempts = n;
                elapsed_ms = Sim.Engine.now engine -. started;
                nacks = !nacks;
              }
          end)
        ~on_timeout:(fun () ->
          if not !finished then
            if n <= max_retries then begin
              Rtt_estimator.backoff estimator;
              retry_later ()
            end
            else give_up n)
        ?on_nack name
    end
  in
  attempt 1

let fetch_sequence node ?max_retries ?backoff ?consumer_private ~names ~on_done
    () =
  let estimator = Rtt_estimator.create () in
  let rec go acc = function
    | [] -> on_done (List.rev acc)
    | name :: rest ->
      fetch node ?max_retries ~estimator ?backoff ?consumer_private
        ~on_done:(fun outcome -> go (outcome :: acc) rest)
        name
  in
  go [] names
