(** The router Content Store (CS): the shared cache whose observability
    is the subject of the paper.

    The store is parameterized by a metadata type ['meta] so that the
    privacy layer ([Core]) can attach per-entry state — Random-Cache
    counters, privacy markings, measured fetch delays — without this
    substrate knowing about it. *)

type 'meta entry = private {
  data : Data.t;
  inserted_at : float;  (** Virtual time the object entered the cache. *)
  mutable last_access : float;
  mutable access_count : int;  (** Lookup hits on this entry. *)
  mutable meta : 'meta;
}

type 'meta t

val create :
  ?policy:Eviction.t ->
  ?rng:Sim.Rng.t ->
  ?tracer:Sim.Trace.t ->
  ?owner:string ->
  capacity:int ->
  unit ->
  'meta t
(** [capacity <= 0] means unbounded (the paper's "Inf" baseline).
    [policy] defaults to {!Eviction.Lru}.  [rng] is required only for
    {!Eviction.Random_replacement}.  When [tracer] (default
    {!Sim.Trace.disabled}) is enabled, the store emits [cs.hit],
    [cs.miss], [cs.insert], [cs.evict] and [cs.expire] records tagged
    with [owner] (the node label) and the eviction-policy name.
    @raise Invalid_argument if random replacement is requested without
    an [rng]. *)

val insert : 'meta t -> now:float -> Data.t -> 'meta -> unit
(** Cache a content object, evicting per policy when full.  Re-inserting
    an already-cached name refreshes the object, its timestamps and its
    metadata. *)

val lookup : 'meta t -> now:float -> ?exact:bool -> Name.t -> 'meta entry option
(** NDN cache matching for an interest name: an exact-name entry, or —
    unless [exact] — the smallest cached name extending the query whose
    object does not carry {!Data.t.strict_match}.  A successful lookup
    refreshes recency and increments [access_count].  Stale entries
    (per {!Data.t.freshness_ms}) are expired, not returned. *)

val find_exact : 'meta t -> now:float -> Name.t -> 'meta entry
(** Exact-name lookup with the same side effects as
    [lookup ~exact:true] — counters, recency refresh, expiry of a stale
    entry, tracing — but returning the entry directly.
    @raise Not_found on a miss (counted and traced as such).

    This is the hot-path variant: with tracing disabled it performs no
    minor-heap allocation at all (no [option] wrapper, exception-style
    hash-table probe, preallocated intrusive-list links for the LRU
    move-to-front).  The [bench core] CS-hit benchmark asserts this. *)

val peek : 'meta t -> Name.t -> 'meta entry option
(** Exact lookup with no side effects: no recency update, no hit count,
    no expiry. *)

val mem : 'meta t -> Name.t -> bool

val remove : 'meta t -> Name.t -> unit

val set_meta : 'meta t -> Name.t -> 'meta -> bool
(** Update an entry's metadata in place; [false] if not cached. *)

val size : 'meta t -> int

val capacity : 'meta t -> int
(** [0] when unbounded. *)

val policy : 'meta t -> Eviction.t

val clear : 'meta t -> unit

val flush : 'meta t -> now:float -> unit
(** {!clear}, traced: emits one [cs.flush] record carrying the number
    of entries dropped.  The crash path of fault injection — a router
    reboot loses its whole Content Store at once, and the trace should
    say so rather than show [size] silent evictions. *)

val fold : 'meta t -> init:'acc -> f:('acc -> 'meta entry -> 'acc) -> 'acc

type counters = {
  lookups : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  expirations : int;
}

val counters : 'meta t -> counters

val pp_counters : Format.formatter -> counters -> unit
