type response_action = Respond | Respond_after of float | Treat_as_miss

type strategy = {
  on_cache_hit : now:float -> Interest.t -> Data.t -> response_action;
  should_cache : now:float -> Data.t -> fetch_delay:float -> bool;
  note_miss : now:float -> Interest.t -> unit;
  forward_delay : now:float -> Data.t -> fetch_delay:float -> float;
}

let default_strategy =
  {
    on_cache_hit = (fun ~now:_ _ _ -> Respond);
    should_cache = (fun ~now:_ _ ~fetch_delay:_ -> true);
    note_miss = (fun ~now:_ _ -> ());
    forward_delay = (fun ~now:_ _ ~fetch_delay:_ -> 0.);
  }

type face_kind =
  | Local_app
  | Wire of (Packet.t -> unit)
  | Producer_app of { handler : Interest.t -> Data.t option; delay : float }

type pending_expression = {
  issued : float;
  on_data : rtt_ms:float -> Data.t -> unit;
  on_timeout : unit -> unit;
  on_nack : (Nack.reason -> unit) option;
  timeout_handle : Sim.Engine.handle;
}

type mutable_counters = {
  mutable interests_received : int;
  mutable interests_forwarded : int;
  mutable interests_collapsed : int;
  mutable data_received : int;
  mutable data_sent : int;
  mutable cache_responses : int;
  mutable delayed_responses : int;
  mutable scope_drops : int;
  mutable no_route_drops : int;
  mutable unsolicited_data : int;
  mutable dropped_down : int;
  mutable nacks_sent : int;
  mutable nacks_received : int;
}

type counters = {
  interests_received : int;
  interests_forwarded : int;
  interests_collapsed : int;
  data_received : int;
  data_sent : int;
  cache_responses : int;
  delayed_responses : int;
  scope_drops : int;
  no_route_drops : int;
  unsolicited_data : int;
  dropped_down : int;
  nacks_sent : int;
  nacks_received : int;
}

type t = {
  label : string;
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  tracer : Sim.Trace.t;
  (* Shard-mode identity: [sid] is the node's creation-order index
     ([-1] in legacy unsharded networks) and [shard] the engine it was
     assigned to.  In shard mode every event this node schedules is
     keyed with [(sid, kseq++)] packed into one int — a globally unique
     key whose order depends only on node creation order and per-node
     history, never on the partition — which is what makes the heap pop
     order (and thus the whole simulation) shard-count-invariant. *)
  sid : int;
  shard : int;
  mutable kseq : int;
  cs : unit Content_store.t;
  mutable pit : Pit.t;
  fib : Fib.t;
  pit_lifetime_ms : float;
  forwarding_delay : Sim.Latency.t;
  honor_scope : bool;
  mutable nacks : bool;
  mutable caching : bool;
  mutable alive : bool;
  mutable producers_enabled : bool;
  mutable production_factor : float;
  mutable faces : face_kind array;
  mutable n_faces : int;
  pending_local : pending_expression list ref Name_trie.t;
  mutable strat : strategy;
  c : mutable_counters;
}

let trace t kind name attrs =
  if Sim.Trace.enabled t.tracer then
    Sim.Trace.emit t.tracer
      {
        Sim.Trace.time = Sim.Engine.now t.engine;
        node = t.label;
        kind;
        name = Name.to_string name;
        attrs;
      }

(* Replace the PIT with a fresh (empty) finite table.  Pending entries
   are discarded, so callers configure overload limits right after
   construction, before any traffic runs. *)
let set_pit_limits t ?capacity ?admission () =
  let admission = Option.value admission ~default:Pit.Drop_new in
  t.pit <-
    Pit.create ~lifetime_ms:t.pit_lifetime_ms ?capacity ~admission
      ~on_evict:(fun name ->
        trace t Sim.Trace.Pit_drop name
          [ ("policy", Pit.admission_to_string admission); ("reason", "evict") ])
      ()

let create engine ~rng ~label ?(tracer = Sim.Trace.disabled)
    ?(cs_capacity = 0) ?(cs_policy = Eviction.Lru) ?(pit_lifetime_ms = 4000.)
    ?pit_capacity ?pit_admission ?(nacks = false)
    ?(forwarding_delay = Sim.Latency.Constant 0.02) ?(honor_scope = true)
    ?(caching = true) ?(sid = -1) ?(shard = 0) () =
  let cs_rng =
    match cs_policy with Eviction.Random_replacement -> Some (Sim.Rng.split rng) | _ -> None
  in
  let t =
  {
    label;
    engine;
    (* ndnlint: allow G1 -- cs_rng is split off first, unconditionally ordered before any draw from the node's own handle, so keeping the parent here cannot perturb its stream; reordering would change every seeded trace *)
    rng;
    tracer;
    sid;
    shard;
    kseq = 0;
    cs =
      Content_store.create ~policy:cs_policy ?rng:cs_rng ~tracer ~owner:label
        ~capacity:cs_capacity ();
    pit = Pit.create ~lifetime_ms:pit_lifetime_ms ();
    fib = Fib.create ();
    pit_lifetime_ms;
    forwarding_delay;
    honor_scope;
    nacks;
    caching;
    alive = true;
    producers_enabled = true;
    production_factor = 1.;
    faces = [| Local_app |];
    n_faces = 1;
    pending_local = Name_trie.create ();
    strat = default_strategy;
    c =
      {
        interests_received = 0;
        interests_forwarded = 0;
        interests_collapsed = 0;
        data_received = 0;
        data_sent = 0;
        cache_responses = 0;
        delayed_responses = 0;
        scope_drops = 0;
        no_route_drops = 0;
        unsolicited_data = 0;
        dropped_down = 0;
        nacks_sent = 0;
        nacks_received = 0;
      };
  }
  in
  (match pit_capacity with
  | None -> ()
  | Some _ -> set_pit_limits t ?capacity:pit_capacity ?admission:pit_admission ());
  t

let label t = t.label
let engine t = t.engine
let tracer t = t.tracer
let shard t = t.shard

(* Event-key packing: 41 bits of per-node counter under 21+ bits of
   node id keeps keys positive, unique and ordered by (sid, kseq) in a
   63-bit int — ~2M nodes and ~2.2e12 events per node before
   overflow. *)
let key_bits = 41

let fresh_event_key t =
  let k = (t.sid lsl key_bits) lor t.kseq in
  t.kseq <- t.kseq + 1;
  k

(* All of this node's event scheduling funnels through these two: the
   legacy path is byte-for-byte the engine's FIFO counter (pinned by
   the golden traces), the shard path the partition-invariant key. *)
let sched t ~delay f =
  if t.sid < 0 then Sim.Engine.schedule t.engine ~delay f
  else Sim.Engine.schedule_key t.engine ~delay ~key:(fresh_event_key t) f

let sched_at t ~time f =
  if t.sid < 0 then Sim.Engine.schedule_at t.engine ~time f
  else Sim.Engine.schedule_key_at t.engine ~time ~key:(fresh_event_key t) f

let schedule_app t ~delay f = ignore (sched t ~delay f)

let schedule_app_at t ~time f = ignore (sched_at t ~time f)
let content_store t = t.cs
let pit t = t.pit
let fib t = t.fib
let set_strategy t s = t.strat <- s
let strategy t = t.strat
let set_caching t b = t.caching <- b
let set_nacks_enabled t b = t.nacks <- b
let nacks_enabled t = t.nacks
let local_face _t = 0

let add_face t kind =
  if t.n_faces = Array.length t.faces then begin
    let nf = Array.make (max 4 (2 * t.n_faces)) Local_app in
    Array.blit t.faces 0 nf 0 t.n_faces;
    t.faces <- nf
  end;
  t.faces.(t.n_faces) <- kind;
  t.n_faces <- t.n_faces + 1;
  t.n_faces - 1

let add_wire_face t send = add_face t (Wire send)

(* --- local application dispatch --- *)

let dispatch_local t data =
  let now = Sim.Engine.now t.engine in
  let matched =
    Name_trie.fold_prefixes t.pending_local data.Data.name ~init:[]
      ~f:(fun acc name cell -> (name, cell) :: acc)
  in
  List.iter (fun (name, _) -> Name_trie.remove t.pending_local name) matched;
  List.iter
    (fun (_, cell) ->
      List.iter
        (fun p ->
          Sim.Engine.cancel p.timeout_handle;
          p.on_data ~rtt_ms:(now -. p.issued) data)
        (List.rev !cell))
    (List.rev matched)

(* A NACK reaching the application face fails exactly the expressions
   that asked to hear about it ([on_nack]); the rest keep their armed
   timeout, so legacy consumers observe nothing new. *)
let dispatch_local_nack t nack =
  let name = nack.Nack.name in
  match Name_trie.find t.pending_local name with
  | None -> ()
  | Some cell ->
    let notify, keep =
      List.partition (fun p -> Option.is_some p.on_nack) !cell
    in
    cell := keep;
    if keep = [] then Name_trie.remove t.pending_local name;
    List.iter
      (fun p ->
        Sim.Engine.cancel p.timeout_handle;
        match p.on_nack with
        | Some f -> f nack.Nack.reason
        | None -> ())
      (List.rev notify)

(* --- sending --- *)

let proc_delay t = Sim.Latency.sample t.forwarding_delay t.rng

let send_data t ~face data =
  if face >= 0 && face < t.n_faces then
    match t.faces.(face) with
    | Wire send ->
      t.c.data_sent <- t.c.data_sent + 1;
      trace t Sim.Trace.Data_sent data.Data.name
        [ ("face", string_of_int face) ];
      ignore
        (sched t ~delay:(proc_delay t) (fun () ->
             send (Packet.Data data)))
    | Local_app ->
      t.c.data_sent <- t.c.data_sent + 1;
      trace t Sim.Trace.Data_sent data.Data.name [ ("face", "local") ];
      ignore
        (sched t ~delay:(proc_delay t) (fun () ->
             dispatch_local t data))
    | Producer_app _ -> () (* producers do not consume data *)

(* Emit (or relay) a NACK downstream.  Each send — origin or relay hop
   — is traced under the reason's registered [nack.*] kind. *)
let send_nack t ~face nack =
  if t.nacks && face >= 0 && face < t.n_faces then
    match t.faces.(face) with
    | Wire send ->
      t.c.nacks_sent <- t.c.nacks_sent + 1;
      trace t (Nack.trace_kind nack.Nack.reason) nack.Nack.name
        [ ("face", string_of_int face) ];
      ignore
        (sched t ~delay:(proc_delay t) (fun () -> send (Packet.Nack nack)))
    | Local_app ->
      t.c.nacks_sent <- t.c.nacks_sent + 1;
      trace t (Nack.trace_kind nack.Nack.reason) nack.Nack.name
        [ ("face", "local") ];
      ignore
        (sched t ~delay:(proc_delay t) (fun () -> dispatch_local_nack t nack))
    | Producer_app _ -> ()

(* A NACK consumes exactly the refused entry and travels the reverse
   path like Data — but satisfies nothing, so a later retransmission
   re-forwards.  Nodes with the feature off drop NACKs silently. *)
let handle_nack t ~face nack =
  if not t.alive then t.c.dropped_down <- t.c.dropped_down + 1
  else if t.nacks then begin
    t.c.nacks_received <- t.c.nacks_received + 1;
    let faces = Pit.take t.pit nack.Nack.name in
    List.iter (fun f -> if f <> face then send_nack t ~face:f nack) faces
  end

let rec send_interest_on_face t ~face interest =
  match t.faces.(face) with
  | Wire send ->
    (* One hop of scope budget is consumed per wire traversal. *)
    let forwardable =
      if t.honor_scope then Interest.decrement_scope interest
      else Some interest
    in
    (match forwardable with
    | None ->
      t.c.scope_drops <- t.c.scope_drops + 1;
      false
    | Some interest ->
      t.c.interests_forwarded <- t.c.interests_forwarded + 1;
      trace t Sim.Trace.Interest_forwarded interest.Interest.name
        [ ("face", string_of_int face) ];
      ignore
        (sched t ~delay:(proc_delay t) (fun () ->
             send (Packet.Interest interest)));
      true)
  | Producer_app { handler; delay } -> (
    (* An injected outage silences every producer application on this
       node: the interest dies here and the PIT entry times out
       downstream, exactly like an unreachable origin. *)
    if not t.producers_enabled then false
    else begin
      t.c.interests_forwarded <- t.c.interests_forwarded + 1;
      trace t Sim.Trace.Interest_forwarded interest.Interest.name
        [ ("face", string_of_int face); ("producer", "true") ];
      match handler interest with
      | None -> false
      | Some data ->
        ignore
          (sched t
             ~delay:(delay *. t.production_factor)
             (fun () ->
               (* The produced object behaves as data arriving on the
                  producer's app face. *)
               handle_data_internal t ~face data));
        true
    end)
  | Local_app ->
    t.c.no_route_drops <- t.c.no_route_drops + 1;
    false

(* --- data path --- *)

and handle_data_internal t ~face data =
  if not t.alive then t.c.dropped_down <- t.c.dropped_down + 1
  else handle_data_alive t ~face data

and handle_data_alive t ~face data =
  let now = Sim.Engine.now t.engine in
  t.c.data_received <- t.c.data_received + 1;
  trace t Sim.Trace.Data_received data.Data.name
    [ ("face", string_of_int face) ];
  let faces, created = Pit.satisfy_timed t.pit data.Data.name in
  if faces = [] then t.c.unsolicited_data <- t.c.unsolicited_data + 1
  else begin
    let fetch_delay = match created with Some c -> now -. c | None -> 0. in
    if t.caching && t.strat.should_cache ~now data ~fetch_delay then
      Content_store.insert t.cs ~now data ();
    let pad = t.strat.forward_delay ~now data ~fetch_delay in
    if pad <= 0. then
      List.iter (fun f -> if f <> face then send_data t ~face:f data) faces
    else
      ignore
        (sched t ~delay:pad (fun () ->
             List.iter (fun f -> if f <> face then send_data t ~face:f data) faces))
  end

(* --- interest path --- *)

let forward_as_miss t ~face interest =
  let now = Sim.Engine.now t.engine in
  let name = interest.Interest.name in
  match Pit.insert t.pit ~now ~face ~nonce:interest.Interest.nonce name with
  | Pit.Duplicate ->
    if t.nacks then
      send_nack t ~face
        (Nack.create ~nonce:interest.Interest.nonce ~reason:Nack.Duplicate name)
  | Pit.Rejected ->
    (* The admission policy refused the entry: the interest dies here.
       With NACKs on, say so instead of letting downstream time out. *)
    trace t Sim.Trace.Pit_drop name
      [
        ("policy", Pit.admission_to_string (Pit.admission_policy t.pit));
        ("reason", "reject");
        ("face", string_of_int face);
      ];
    if t.nacks then
      send_nack t ~face
        (Nack.create ~nonce:interest.Interest.nonce ~reason:Nack.Pit_full name)
  | Pit.Collapsed ->
    t.c.interests_collapsed <- t.c.interests_collapsed + 1;
    trace t Sim.Trace.Interest_collapsed name [ ("face", string_of_int face) ]
  | Pit.Forward -> (
    (* Arm a sweep so abandoned entries do not linger forever. *)
    ignore
      (sched t ~delay:(t.pit_lifetime_ms +. 1.) (fun () ->
           let dropped = Pit.expire t.pit ~now:(Sim.Engine.now t.engine) in
           List.iter (fun n -> trace t Sim.Trace.Pit_timeout n []) dropped));
    let hops = Fib.next_hops t.fib name in
    let usable = List.filter (fun f -> f <> face) hops in
    match usable with
    | [] ->
      t.c.no_route_drops <- t.c.no_route_drops + 1;
      if t.nacks then begin
        ignore (Pit.take t.pit name);
        send_nack t ~face
          (Nack.create ~nonce:interest.Interest.nonce ~reason:Nack.No_route name)
      end
    | hop :: _ -> ignore (send_interest_on_face t ~face:hop interest))

let handle_interest_alive t ~face interest =
  let now = Sim.Engine.now t.engine in
  t.c.interests_received <- t.c.interests_received + 1;
  trace t Sim.Trace.Interest_received interest.Interest.name
    [ ("face", string_of_int face) ];
  match Content_store.lookup t.cs ~now interest.Interest.name with
  | Some entry -> (
    match t.strat.on_cache_hit ~now interest entry.Content_store.data with
    | Respond ->
      t.c.cache_responses <- t.c.cache_responses + 1;
      send_data t ~face entry.Content_store.data
    | Respond_after delay ->
      t.c.cache_responses <- t.c.cache_responses + 1;
      t.c.delayed_responses <- t.c.delayed_responses + 1;
      let data = entry.Content_store.data in
      ignore
        (sched t ~delay (fun () -> send_data t ~face data))
    | Treat_as_miss -> forward_as_miss t ~face interest)
  | None ->
    t.strat.note_miss ~now interest;
    forward_as_miss t ~face interest

let handle_interest t ~face interest =
  if not t.alive then t.c.dropped_down <- t.c.dropped_down + 1
  else handle_interest_alive t ~face interest

let receive t ~face packet =
  match packet with
  | Packet.Interest i -> handle_interest t ~face i
  | Packet.Data d -> handle_data_internal t ~face d
  | Packet.Nack n -> handle_nack t ~face n

(* --- applications --- *)

let add_producer t ~prefix ?(production_delay_ms = 0.1) handler =
  let face = add_face t (Producer_app { handler; delay = production_delay_ms }) in
  Fib.add_route t.fib ~prefix ~face

let express_interest t ?scope ?(consumer_private = false) ?timeout_ms ~on_data
    ?(on_timeout = fun () -> ()) ?on_nack name =
  (* Shard mode: claim a fresh trace-stitch key for this expression.
     When called from a root context (a driver between runs) this gives
     its emissions their own slot in the cross-shard total order; when
     called from inside an event, overriding the event's key is equally
     shard-count-invariant because it happens at the same point of the
     node's deterministic history either way. *)
  if t.sid >= 0 then Sim.Engine.set_cur_key t.engine (fresh_event_key t);
  let now = Sim.Engine.now t.engine in
  let timeout_ms = Option.value timeout_ms ~default:t.pit_lifetime_ms in
  let cell =
    match Name_trie.find t.pending_local name with
    | Some cell -> cell
    | None ->
      let cell = ref [] in
      Name_trie.add t.pending_local name cell;
      cell
  in
  let rec pending =
    lazy
      {
        issued = now;
        on_data;
        on_timeout;
        on_nack;
        timeout_handle =
          sched t ~delay:timeout_ms (fun () ->
              (* Give up: unregister this expression and notify. *)
              let p = Lazy.force pending in
              (match Name_trie.find t.pending_local name with
              | Some cell ->
                cell := List.filter (fun q -> q != p) !cell;
                if !cell = [] then Name_trie.remove t.pending_local name
              | None -> ());
              on_timeout ());
      }
  in
  let p = Lazy.force pending in
  cell := p :: !cell;
  let interest =
    Interest.create ?scope ~consumer_private ~nonce:(Sim.Rng.bits64 t.rng) name
  in
  (* On a crashed node the expression is still registered (and will
     time out), but the interest itself goes nowhere. *)
  handle_interest t ~face:0 interest

(* --- fault injection: crash and restart --- *)

let is_alive t = t.alive

let crash ?(preserve_cs = false) t =
  if t.alive then begin
    t.alive <- false;
    let now = Sim.Engine.now t.engine in
    (* Local applications die with the forwarder: cancel the armed
       timeouts and fail each pending expression now, exactly once. *)
    let pend = Name_trie.to_list t.pending_local in
    Name_trie.clear t.pending_local;
    List.iter
      (fun (_, cell) ->
        List.iter
          (fun p ->
            Sim.Engine.cancel p.timeout_handle;
            p.on_timeout ())
          (List.rev !cell))
      pend;
    (* The PIT does not survive a reboot; downstream consumers discover
       the loss through their own retransmission timers.  [expire] with
       a far-future clock drains every entry and names them for the
       trace. *)
    let dropped = Pit.expire t.pit ~now:(now +. t.pit_lifetime_ms +. 1.) in
    List.iter
      (fun n -> trace t Sim.Trace.Pit_timeout n [ ("reason", "crash") ])
      dropped;
    if not preserve_cs then Content_store.flush t.cs ~now
  end

let restart t = t.alive <- true

(* --- fault injection: producer applications --- *)

let set_producers_enabled t enabled = t.producers_enabled <- enabled

let producers_enabled t = t.producers_enabled

let set_production_factor t factor =
  if factor <= 0. || not (Float.is_finite factor) then
    invalid_arg "Node.set_production_factor: factor must be positive";
  t.production_factor <- factor

let production_factor t = t.production_factor

(* --- introspection --- *)

let counters t =
  {
    interests_received = t.c.interests_received;
    interests_forwarded = t.c.interests_forwarded;
    interests_collapsed = t.c.interests_collapsed;
    data_received = t.c.data_received;
    data_sent = t.c.data_sent;
    cache_responses = t.c.cache_responses;
    delayed_responses = t.c.delayed_responses;
    scope_drops = t.c.scope_drops;
    no_route_drops = t.c.no_route_drops;
    unsolicited_data = t.c.unsolicited_data;
    dropped_down = t.c.dropped_down;
    nacks_sent = t.c.nacks_sent;
    nacks_received = t.c.nacks_received;
  }

let pp_counters ppf (c : counters) =
  Format.fprintf ppf
    "in=%d fwd=%d collapsed=%d data_in=%d data_out=%d cache=%d delayed=%d \
     scope_drop=%d no_route=%d unsolicited=%d down_drop=%d nack_out=%d \
     nack_in=%d"
    c.interests_received c.interests_forwarded c.interests_collapsed
    c.data_received c.data_sent c.cache_responses c.delayed_responses
    c.scope_drops c.no_route_drops c.unsolicited_data c.dropped_down
    c.nacks_sent c.nacks_received
