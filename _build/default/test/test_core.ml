(* Tests for the paper's core contribution: threshold distributions,
   Algorithm 1, marking rules, delays, grouping, unpredictable names,
   policies, and the privacy-aware router. *)

let name = Ndn.Name.of_string

let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

let output_testable =
  Alcotest.testable Core.Random_cache.pp_output Core.Random_cache.output_equal

(* --- Kdist --- *)

let test_kdist_uniform_bounds () =
  let rng = Sim.Rng.create 1 in
  let kd = Core.Kdist.Uniform 10 in
  for _ = 1 to 1000 do
    let v = Core.Kdist.sample kd rng in
    if v < 0 || v >= 10 then Alcotest.failf "uniform sample out of range: %d" v
  done

let test_kdist_geometric_bounds_and_law () =
  let rng = Sim.Rng.create 2 in
  let kd = Core.Kdist.Truncated_geometric { alpha = 0.8; domain = 12 } in
  let counts = Array.make 12 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Core.Kdist.sample kd rng in
    if v < 0 || v >= 12 then Alcotest.failf "geometric sample out of range: %d" v;
    counts.(v) <- counts.(v) + 1
  done;
  let law = Core.Kdist.to_dist kd in
  Array.iteri
    (fun v c ->
      check_close
        (Printf.sprintf "empirical matches law at %d" v)
        0.01
        (Privacy.Dist.prob law v)
        (float_of_int c /. float_of_int n))
    counts

let test_kdist_constant () =
  let rng = Sim.Rng.create 3 in
  Alcotest.(check int) "constant" 7 (Core.Kdist.sample (Core.Kdist.Constant 7) rng)

let test_kdist_weighted () =
  let rng = Sim.Rng.create 4 in
  let kd = Core.Kdist.Weighted [ (1, 1.); (5, 3.) ] in
  let fives = ref 0 in
  for _ = 1 to 10_000 do
    match Core.Kdist.sample kd rng with
    | 5 -> incr fives
    | 1 -> ()
    | v -> Alcotest.failf "unexpected sample %d" v
  done;
  check_close "weights respected" 0.02 0.75 (float_of_int !fives /. 10_000.)

let test_kdist_constructors_match_theorems () =
  (match Core.Kdist.uniform_for ~k:5 ~delta:0.05 with
  | Core.Kdist.Uniform domain -> Alcotest.(check int) "K = 2k/delta" 200 domain
  | _ -> Alcotest.fail "expected uniform");
  match Core.Kdist.exponential_for ~k:5 ~eps:0.04 ~delta:0.05 with
  | Some (Core.Kdist.Truncated_geometric { alpha; domain }) ->
    check_close "alpha = e^{-eps/k}" 1e-12 (exp (-0.04 /. 5.)) alpha;
    let d = Privacy.Theorems.Exponential.delta ~k:5 ~alpha ~domain in
    Alcotest.(check bool) "delta achieved" true (d <= 0.05 +. 1e-9)
  | _ -> Alcotest.fail "expected truncated geometric"

let test_kdist_exponential_infeasible () =
  (* eps so large that 1 - alpha^k > delta. *)
  Alcotest.(check bool) "infeasible returns None" true
    (Core.Kdist.exponential_for ~k:5 ~eps:2. ~delta:0.05 = None)

let test_kdist_mean () =
  check_close "uniform mean" 1e-9 4.5 (Core.Kdist.mean (Core.Kdist.Uniform 10));
  check_close "constant mean" 1e-9 7. (Core.Kdist.mean (Core.Kdist.Constant 7))

(* --- Random_cache (Algorithm 1) --- *)

let test_rc_first_request_always_miss () =
  let rng = Sim.Rng.create 5 in
  let rc = Core.Random_cache.create ~kdist:(Core.Kdist.Uniform 10) ~rng () in
  for i = 0 to 49 do
    Alcotest.check output_testable "first request misses" Core.Random_cache.Miss
      (Core.Random_cache.on_request rc (name (Printf.sprintf "/c/%d" i)))
  done

let test_rc_output_is_miss_run_then_hits () =
  let rng = Sim.Rng.create 6 in
  let rc = Core.Random_cache.create ~kdist:(Core.Kdist.Uniform 8) ~rng () in
  for content = 0 to 99 do
    let key = name (Printf.sprintf "/c/%d" content) in
    let outputs = List.init 20 (fun _ -> Core.Random_cache.on_request rc key) in
    (* no Miss may follow a Hit *)
    let rec well_formed seen_hit = function
      | [] -> true
      | Core.Random_cache.Hit :: rest -> well_formed true rest
      | Core.Random_cache.Miss :: rest -> (not seen_hit) && well_formed false rest
    in
    Alcotest.(check bool) "miss^j hit^*" true (well_formed false outputs)
  done

let test_rc_threshold_controls_misses () =
  let rng = Sim.Rng.create 7 in
  let rc = Core.Random_cache.create ~kdist:(Core.Kdist.Constant 3) ~rng () in
  let key = name "/c/x" in
  let outputs = List.init 6 (fun _ -> Core.Random_cache.on_request rc key) in
  Alcotest.(check (list output_testable)) "k=3: 4 misses then hits"
    Core.Random_cache.[ Miss; Miss; Miss; Miss; Hit; Hit ]
    outputs;
  Alcotest.(check (option int)) "threshold recorded" (Some 3)
    (Core.Random_cache.threshold rc key);
  Alcotest.(check int) "counter" 5 (Core.Random_cache.request_count rc key)

let test_rc_keys_independent () =
  let rng = Sim.Rng.create 8 in
  let rc = Core.Random_cache.create ~kdist:(Core.Kdist.Constant 0) ~rng () in
  ignore (Core.Random_cache.on_request rc (name "/a"));
  (* /b unaffected by /a's state *)
  Alcotest.check output_testable "fresh key misses" Core.Random_cache.Miss
    (Core.Random_cache.on_request rc (name "/b"));
  Alcotest.check output_testable "warmed key hits" Core.Random_cache.Hit
    (Core.Random_cache.on_request rc (name "/a"));
  Alcotest.(check int) "tracked" 2 (Core.Random_cache.tracked rc)

let test_rc_forget () =
  let rng = Sim.Rng.create 9 in
  let rc = Core.Random_cache.create ~kdist:(Core.Kdist.Constant 0) ~rng () in
  ignore (Core.Random_cache.on_request rc (name "/a"));
  ignore (Core.Random_cache.on_request rc (name "/a"));
  Core.Random_cache.forget rc (name "/a");
  Alcotest.check output_testable "forgotten key restarts at miss"
    Core.Random_cache.Miss
    (Core.Random_cache.on_request rc (name "/a"))

let test_rc_miss_counts_match_theory () =
  (* Empirical E[M(c)] over many contents matches the exact formula. *)
  let rng = Sim.Rng.create 10 in
  let domain = 20 in
  let rc = Core.Random_cache.create ~kdist:(Core.Kdist.Uniform domain) ~rng () in
  let c = 15 in
  let contents = 20_000 in
  let total_misses = ref 0 in
  for i = 0 to contents - 1 do
    let key = name (Printf.sprintf "/c/%d" i) in
    for _ = 1 to c do
      match Core.Random_cache.on_request rc key with
      | Core.Random_cache.Miss -> incr total_misses
      | Core.Random_cache.Hit -> ()
    done
  done;
  check_close "empirical E[M(c)]" 0.05
    (Privacy.Theorems.Uniform.expected_misses_exact ~c ~domain)
    (float_of_int !total_misses /. float_of_int contents)

(* --- Naive scheme + its insecurity --- *)

let test_naive_deterministic_threshold () =
  let naive = Core.Naive_scheme.create ~k:2 in
  let key = name "/c" in
  let outputs = List.init 5 (fun _ -> Core.Naive_scheme.on_request naive key) in
  Alcotest.(check (list output_testable)) "k=2: 3 misses then hits"
    Core.Random_cache.[ Miss; Miss; Miss; Hit; Hit ]
    outputs

let test_naive_rejects_negative_k () =
  Alcotest.check_raises "negative k" (Invalid_argument "Naive_scheme.create: negative k")
    (fun () -> ignore (Core.Naive_scheme.create ~k:(-1)))

(* --- Marking --- *)

let test_marking_producer_dominates () =
  let m = Core.Marking.create () in
  (* producer-private stays private even for non-private interests *)
  Alcotest.(check bool) "private" true
    (Core.Marking.classify m ~name:(name "/a") ~producer_private:true
       ~consumer_private:false
    = Core.Marking.Private);
  (* ... and repeatedly (no trigger) *)
  Alcotest.(check bool) "still private" true
    (Core.Marking.classify m ~name:(name "/a") ~producer_private:true
       ~consumer_private:false
    = Core.Marking.Private)

let test_marking_trigger_rule () =
  let m = Core.Marking.create () in
  let n = name "/content" in
  (* consumer-private first: private *)
  Alcotest.(check bool) "consumer privacy honored" true
    (Core.Marking.classify m ~name:n ~producer_private:false ~consumer_private:true
    = Core.Marking.Private);
  (* first non-private interest triggers *)
  Alcotest.(check bool) "non-private request is public" true
    (Core.Marking.classify m ~name:n ~producer_private:false ~consumer_private:false
    = Core.Marking.Public);
  Alcotest.(check bool) "trigger recorded" true (Core.Marking.is_triggered m n);
  (* after the trigger, even consumer-private requests are public *)
  Alcotest.(check bool) "trigger sticks" true
    (Core.Marking.classify m ~name:n ~producer_private:false ~consumer_private:true
    = Core.Marking.Public)

let test_marking_trigger_cleared_on_eviction () =
  let m = Core.Marking.create () in
  let n = name "/content" in
  ignore (Core.Marking.classify m ~name:n ~producer_private:false ~consumer_private:false);
  Core.Marking.on_evicted m n;
  Alcotest.(check bool) "cleared" false (Core.Marking.is_triggered m n);
  Alcotest.(check bool) "consumer privacy honored again" true
    (Core.Marking.classify m ~name:n ~producer_private:false ~consumer_private:true
    = Core.Marking.Private)

let test_marking_reserved_name_component () =
  Alcotest.(check bool) "/a/b/private marked" true
    (Core.Marking.name_marked_private (name "/a/b/private"));
  Alcotest.(check bool) "/a/private/b not last" false
    (Core.Marking.name_marked_private (name "/a/private/b"));
  let m = Core.Marking.create () in
  Alcotest.(check bool) "reserved name forces private" true
    (Core.Marking.classify m ~name:(name "/a/b/private") ~producer_private:false
       ~consumer_private:false
    = Core.Marking.Private)

(* --- Delay --- *)

let test_delay_constant () =
  let d = Core.Delay.Constant 50. in
  check_close "hit delay" 1e-9 50. (Core.Delay.hit_delay d ~fetch_delay:10. ~hits_so_far:3);
  check_close "miss padding" 1e-9 20. (Core.Delay.miss_padding d ~actual_delay:30.);
  check_close "no negative padding" 1e-9 0. (Core.Delay.miss_padding d ~actual_delay:80.)

let test_delay_content_specific () =
  let d = Core.Delay.Content_specific in
  check_close "replays gamma_C" 1e-9 12.5
    (Core.Delay.hit_delay d ~fetch_delay:12.5 ~hits_so_far:100);
  check_close "no padding" 1e-9 0. (Core.Delay.miss_padding d ~actual_delay:5.)

let test_delay_dynamic () =
  let d = Core.Delay.Dynamic { floor = 2.; half_life_requests = 10. } in
  check_close "starts at gamma_C" 1e-9 40.
    (Core.Delay.hit_delay d ~fetch_delay:40. ~hits_so_far:0);
  check_close "halves per half-life" 1e-9 20.
    (Core.Delay.hit_delay d ~fetch_delay:40. ~hits_so_far:10);
  check_close "never below floor" 1e-9 2.
    (Core.Delay.hit_delay d ~fetch_delay:40. ~hits_so_far:1000)

(* --- Grouping --- *)

let test_grouping_by_content () =
  let registry = Ndn.Name.Tbl.create 4 in
  Alcotest.(check bool) "identity" true
    (Ndn.Name.equal
       (Core.Grouping.key Core.Grouping.By_content ~registry (name "/a/b/c"))
       (name "/a/b/c"))

let test_grouping_by_namespace () =
  let registry = Ndn.Name.Tbl.create 4 in
  let key = Core.Grouping.key (Core.Grouping.By_namespace 2) ~registry in
  Alcotest.(check bool) "same namespace same key" true
    (Ndn.Name.equal (key (name "/yt/alice/v1/s1")) (key (name "/yt/alice/v2/s9")));
  Alcotest.(check bool) "different namespace different key" false
    (Ndn.Name.equal (key (name "/yt/alice/v1")) (key (name "/yt/bob/v1")))

let test_grouping_by_content_id () =
  let registry = Ndn.Name.Tbl.create 4 in
  Core.Grouping.register_id ~registry ~name:(name "/a/1") ~id:"g1";
  Core.Grouping.register_id ~registry ~name:(name "/b/2") ~id:"g1";
  let key = Core.Grouping.key Core.Grouping.By_content_id ~registry in
  Alcotest.(check bool) "registered names share key" true
    (Ndn.Name.equal (key (name "/a/1")) (key (name "/b/2")));
  Alcotest.(check bool) "unregistered falls back to name" true
    (Ndn.Name.equal (key (name "/c/3")) (name "/c/3"))

(* --- Unpredictable names --- *)

let test_unpredictable_names_agree () =
  let mk () =
    Core.Unpredictable_names.create ~secret:"shared" ~prefix:(name "/alice/skype/0")
  in
  let alice = mk () and bob = mk () in
  for seq = 0 to 20 do
    Alcotest.(check bool)
      (Printf.sprintf "seq %d agrees" seq)
      true
      (Ndn.Name.equal
         (Core.Unpredictable_names.name_of_seq alice ~seq)
         (Core.Unpredictable_names.name_of_seq bob ~seq))
  done

let test_unpredictable_names_secret_dependent () =
  let a = Core.Unpredictable_names.create ~secret:"s1" ~prefix:(name "/p") in
  let b = Core.Unpredictable_names.create ~secret:"s2" ~prefix:(name "/p") in
  Alcotest.(check bool) "different secrets differ" false
    (Ndn.Name.equal
       (Core.Unpredictable_names.name_of_seq a ~seq:0)
       (Core.Unpredictable_names.name_of_seq b ~seq:0))

let test_unpredictable_names_verify () =
  let s = Core.Unpredictable_names.create ~secret:"sec" ~prefix:(name "/p/call") in
  let n = Core.Unpredictable_names.name_of_seq s ~seq:5 in
  Alcotest.(check (option int)) "authentic name verifies" (Some 5)
    (Core.Unpredictable_names.verify_name s n);
  Alcotest.(check (option int)) "forged rand rejected" None
    (Core.Unpredictable_names.verify_name s (name "/p/call/5/deadbeefdeadbeefdead"));
  Alcotest.(check (option int)) "wrong shape rejected" None
    (Core.Unpredictable_names.verify_name s (name "/p/call/5"));
  Alcotest.(check (option int)) "other namespace rejected" None
    (Core.Unpredictable_names.verify_name s (name "/q/call/5/abc"))

let test_unpredictable_names_make_data () =
  let s = Core.Unpredictable_names.create ~secret:"sec" ~prefix:(name "/p/call") in
  let d =
    Core.Unpredictable_names.make_data s ~producer:"alice" ~key:"k" ~payload:"frame"
      ~seq:3 ()
  in
  Alcotest.(check bool) "strict match set" true d.Ndn.Data.strict_match;
  Alcotest.(check bool) "short freshness" true (d.Ndn.Data.freshness_ms <> None);
  Alcotest.(check (option int)) "name verifies" (Some 3)
    (Core.Unpredictable_names.verify_name s d.Ndn.Data.name)

let test_unpredictable_entropy () =
  Alcotest.(check bool) "at least 64 bits" true
    (Core.Unpredictable_names.guess_space_bits >= 64)

(* --- Policy (replay semantics) --- *)

let mk_policy kind = Core.Policy.create ~rng:(Sim.Rng.create 11) kind

let test_policy_no_privacy () =
  let p = mk_policy Core.Policy.No_privacy in
  Alcotest.check output_testable "cached -> hit" Core.Random_cache.Hit
    (Core.Policy.on_request p ~name:(name "/c") ~is_private:true ~cached:true);
  Alcotest.check output_testable "uncached -> miss" Core.Random_cache.Miss
    (Core.Policy.on_request p ~name:(name "/c") ~is_private:false ~cached:false)

let test_policy_always_delay () =
  let p = mk_policy Core.Policy.Always_delay in
  Alcotest.check output_testable "private cached looks like miss" Core.Random_cache.Miss
    (Core.Policy.on_request p ~name:(name "/c") ~is_private:true ~cached:true);
  Alcotest.check output_testable "public cached hits" Core.Random_cache.Hit
    (Core.Policy.on_request p ~name:(name "/c") ~is_private:false ~cached:true)

let test_policy_random_cache_private () =
  let p = mk_policy (Core.Policy.Random_cache (Core.Kdist.Constant 1)) in
  let n = name "/c" in
  (* k=1: requests 1 and 2 miss, then hits. *)
  Alcotest.check output_testable "r1" Core.Random_cache.Miss
    (Core.Policy.on_request p ~name:n ~is_private:true ~cached:true);
  Alcotest.check output_testable "r2" Core.Random_cache.Miss
    (Core.Policy.on_request p ~name:n ~is_private:true ~cached:true);
  Alcotest.check output_testable "r3" Core.Random_cache.Hit
    (Core.Policy.on_request p ~name:n ~is_private:true ~cached:true)

let test_policy_random_cache_public_bypasses () =
  let p = mk_policy (Core.Policy.Random_cache (Core.Kdist.Constant 100)) in
  Alcotest.check output_testable "public content unaffected by algorithm"
    Core.Random_cache.Hit
    (Core.Policy.on_request p ~name:(name "/c") ~is_private:false ~cached:true)

let test_policy_real_miss_never_hit () =
  let p = mk_policy (Core.Policy.Random_cache (Core.Kdist.Constant 0)) in
  let n = name "/c" in
  (* advance past threshold *)
  ignore (Core.Policy.on_request p ~name:n ~is_private:true ~cached:true);
  ignore (Core.Policy.on_request p ~name:n ~is_private:true ~cached:true);
  (* evicted now: real miss must show as miss even though c > k *)
  Alcotest.check output_testable "real miss dominates" Core.Random_cache.Miss
    (Core.Policy.on_request p ~name:n ~is_private:true ~cached:false)

let test_policy_grouping_shares_state () =
  let p =
    Core.Policy.create
      ~grouping:(Core.Grouping.By_namespace 1)
      ~rng:(Sim.Rng.create 12)
      (Core.Policy.Random_cache (Core.Kdist.Constant 0))
  in
  (* k=0: second request to the same group hits. *)
  ignore (Core.Policy.on_request p ~name:(name "/g/1") ~is_private:true ~cached:true);
  Alcotest.check output_testable "sibling shares the threshold" Core.Random_cache.Hit
    (Core.Policy.on_request p ~name:(name "/g/2") ~is_private:true ~cached:true)

let test_policy_labels () =
  Alcotest.(check string) "no privacy" "No Privacy"
    (Core.Policy.label (mk_policy Core.Policy.No_privacy));
  Alcotest.(check string) "always delay" "Always Delay Private Content"
    (Core.Policy.label (mk_policy Core.Policy.Always_delay));
  Alcotest.(check string) "uniform" "Uniform-Random-Cache"
    (Core.Policy.label (mk_policy (Core.Policy.Random_cache (Core.Kdist.Uniform 10))));
  Alcotest.(check string) "exponential" "Exponential-Random-Cache"
    (Core.Policy.label
       (mk_policy
          (Core.Policy.Random_cache
             (Core.Kdist.Truncated_geometric { alpha = 0.9; domain = 10 }))))

(* --- Private_router in a live network --- *)

let make_private_lan ?(cm = Core.Private_router.No_countermeasure) () =
  let producer_config =
    { Ndn.Network.default_producer_config with producer_private = true }
  in
  let setup = Ndn.Network.lan ~producer:producer_config () in
  let handle =
    Core.Private_router.attach setup.Ndn.Network.router
      ~rng:(Sim.Rng.create 13) cm
  in
  (setup, handle)

let test_private_router_no_cm_leaks () =
  let setup, _ = make_private_lan () in
  let n = name "/prod/secret" in
  let miss = Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user n in
  let hit = Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.adversary n in
  match (miss, hit) with
  | Some m, Some h -> Alcotest.(check bool) "hit clearly faster" true (h < m -. 2.)
  | _ -> Alcotest.fail "timeout"

let test_private_router_content_specific_delay_hides_hits () =
  let setup, handle =
    make_private_lan ~cm:(Core.Private_router.Delay_private Core.Delay.Content_specific) ()
  in
  let n = name "/prod/secret" in
  let miss = Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user n in
  let hit = Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.adversary n in
  (match (miss, hit) with
  | Some m, Some h ->
    (* The artificial delay replays gamma_C: the hit now looks like a miss. *)
    Alcotest.(check bool)
      (Printf.sprintf "hit %.2f within miss %.2f +/- 2.5ms" h m)
      true
      (Float.abs (h -. m) < 2.5)
  | _ -> Alcotest.fail "timeout");
  let stats = Core.Private_router.stats handle in
  Alcotest.(check int) "hit was hidden" 1 stats.Core.Private_router.private_hits_hidden

let test_private_router_constant_delay_pads_misses () =
  let gamma = 40. in
  let setup, handle =
    make_private_lan ~cm:(Core.Private_router.Delay_private (Core.Delay.Constant gamma)) ()
  in
  let n = name "/prod/secret" in
  (* Private miss: padded up to ~gamma. *)
  (match Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user n with
  | Some rtt -> Alcotest.(check bool) "miss padded to >= gamma" true (rtt >= gamma)
  | None -> Alcotest.fail "timeout");
  (* Private hit: delayed by gamma. *)
  (match Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.adversary n with
  | Some rtt -> Alcotest.(check bool) "hit delayed to >= gamma" true (rtt >= gamma)
  | None -> Alcotest.fail "timeout");
  let stats = Core.Private_router.stats handle in
  Alcotest.(check bool) "padding happened" true (stats.Core.Private_router.misses_padded >= 1)

let test_private_router_public_content_fast () =
  (* Countermeasure on, but content not marked private: hits stay fast. *)
  let setup = Ndn.Network.lan () in
  let handle =
    Core.Private_router.attach setup.Ndn.Network.router ~rng:(Sim.Rng.create 14)
      (Core.Private_router.Delay_private (Core.Delay.Constant 40.))
  in
  let n = name "/prod/public" in
  ignore (Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user n);
  (match Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.adversary n with
  | Some rtt -> Alcotest.(check bool) "public hit fast" true (rtt < 10.)
  | None -> Alcotest.fail "timeout");
  let stats = Core.Private_router.stats handle in
  Alcotest.(check int) "public hit counted" 1 stats.Core.Private_router.public_hits

let test_private_router_random_cache_mimic () =
  let setup, handle =
    make_private_lan
      ~cm:
        (Core.Private_router.Random_cache_mimic
           { kdist = Core.Kdist.Constant 2; grouping = Core.Grouping.By_content })
      ()
  in
  let n = name "/prod/secret" in
  ignore (Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user n);
  (* k_C = 2: Algorithm 1 answers the first 3 requests it sees (the
     cache hits at R) as misses, then reveals. *)
  let rtts =
    List.init 4 (fun _ ->
        Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.adversary n)
  in
  (match rtts with
  | [ Some r2; Some r3; Some r4; Some r5 ] ->
    Alcotest.(check bool) "disguised probes slow" true (r2 > 4. && r3 > 4. && r4 > 4.);
    Alcotest.(check bool) "eventually served fast" true (r5 < 4.)
  | _ -> Alcotest.fail "timeout");
  let stats = Core.Private_router.stats handle in
  Alcotest.(check int) "three hidden" 3 stats.Core.Private_router.private_hits_hidden;
  Alcotest.(check int) "one served" 1 stats.Core.Private_router.private_hits_served

let test_private_router_defeats_scope_oracle () =
  (* Section III's scope=2 probe must learn nothing about hidden hits:
     the defended router treats scope-limited interests for private
     cached content as true misses, which then die at the scope
     boundary. *)
  let setup, _ =
    make_private_lan ~cm:(Core.Private_router.Delay_private Core.Delay.Content_specific) ()
  in
  let n = name "/prod/secret" in
  ignore (Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user n);
  Alcotest.(check bool) "scope probe of hidden hit starves" true
    (Attack.Scope_probe.probe setup n = Attack.Scope_probe.Not_cached);
  (* An unlimited-scope probe still gets the (delayed) content. *)
  Alcotest.(check bool) "normal interest still served" true
    (Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.adversary n
    <> None)

(* --- Interactive sessions (Section V-A traffic class) --- *)

let test_interactive_session_predictable_completes () =
  let setup = Ndn.Network.conversation () in
  let session =
    Core.Interactive_session.start setup ~naming:Core.Interactive_session.Predictable
      ~frames:12 ()
  in
  Ndn.Network.run setup.Ndn.Network.cnet;
  Alcotest.(check bool) "call completed" true (Core.Interactive_session.complete session);
  Alcotest.(check (pair int int)) "both directions" (12, 12)
    (Core.Interactive_session.frames_delivered session);
  Alcotest.(check bool) "plausible frame rtt" true
    (Core.Interactive_session.mean_frame_rtt session > 0.
    && Core.Interactive_session.mean_frame_rtt session < 20.)

let test_interactive_session_unpredictable_completes () =
  let setup = Ndn.Network.conversation () in
  let session =
    Core.Interactive_session.start setup
      ~naming:(Core.Interactive_session.Unpredictable "secret") ~frames:8 ()
  in
  Ndn.Network.run setup.Ndn.Network.cnet;
  Alcotest.(check bool) "call completed" true (Core.Interactive_session.complete session)

let test_interactive_session_directions_use_distinct_names () =
  let setup = Ndn.Network.conversation () in
  let session =
    Core.Interactive_session.start setup
      ~naming:(Core.Interactive_session.Unpredictable "secret") ~frames:1 ()
  in
  let a = Core.Interactive_session.frame_name session `Alice ~seq:0 in
  let b = Core.Interactive_session.frame_name session `Bob ~seq:0 in
  Alcotest.(check bool) "distinct per direction" false (Ndn.Name.equal a b);
  Alcotest.(check bool) "alice's frame under alice's prefix" true
    (Ndn.Name.is_strict_prefix ~prefix:setup.Ndn.Network.alice_prefix a)

let test_interactive_frames_cached_at_router () =
  let setup = Ndn.Network.conversation () in
  let session =
    Core.Interactive_session.start setup ~naming:Core.Interactive_session.Predictable
      ~frames:4 ()
  in
  Ndn.Network.run setup.Ndn.Network.cnet;
  (* Frames of both parties pass through and are cached by R - the very
     state the interaction attack probes. *)
  List.iter
    (fun who ->
      let n = Core.Interactive_session.frame_name session who ~seq:2 in
      Alcotest.(check bool) "frame cached at router" true
        (Ndn.Content_store.mem (Ndn.Node.content_store setup.Ndn.Network.shared_router) n))
    [ `Alice; `Bob ]

(* --- content-id auto-grouping through Private_router --- *)

let test_private_router_auto_registers_content_id () =
  let setup = Ndn.Network.lan () in
  (* Producer marks two distinct names with one content id, private. *)
  let prefix = name "/prod/album" in
  Ndn.Node.add_producer setup.Ndn.Network.producer_host ~prefix (fun interest ->
      Some
        (Ndn.Data.create ~producer_private:true ~content_id:"album-7" ~producer:"P"
           ~key:setup.Ndn.Network.producer_key ~payload:"img"
           interest.Ndn.Interest.name));
  let handle =
    Core.Private_router.attach setup.Ndn.Network.router ~rng:(Sim.Rng.create 5)
      (Core.Private_router.Random_cache_mimic
         {
           kdist = Core.Kdist.Constant 1;
           grouping = Core.Grouping.By_content_id;
         })
  in
  ignore handle;
  let fetch from n = Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from n in
  (* Warm both photos (the producer's content id binds them together). *)
  ignore (fetch setup.Ndn.Network.user (name "/prod/album/photo1"));
  ignore (fetch setup.Ndn.Network.user (name "/prod/album/photo2"));
  (* Adversary probes photo1 twice: group threshold k=1 means the
     group's Algorithm-1 run hides the first TWO tracked requests.
     Probing photo2 afterwards must NOT restart the run - the group
     shares the counter, so its disguise budget is already consumed. *)
  let r1 = Option.get (fetch setup.Ndn.Network.adversary (name "/prod/album/photo1")) in
  let r2 = Option.get (fetch setup.Ndn.Network.adversary (name "/prod/album/photo1")) in
  let r3 = Option.get (fetch setup.Ndn.Network.adversary (name "/prod/album/photo2")) in
  Alcotest.(check bool)
    (Printf.sprintf "first two probes disguised (%.1f, %.1f)" r1 r2)
    true
    (r1 > 4. && r2 > 4.);
  Alcotest.(check bool)
    (Printf.sprintf "sibling shares the exhausted group budget (%.1f)" r3)
    true (r3 < 4.)

(* --- property tests --- *)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"kdist samples live in the law's support" ~count:200
      QCheck.(pair small_int (int_range 1 30))
      (fun (seed, domain) ->
        let rng = Sim.Rng.create seed in
        let kd = Core.Kdist.Truncated_geometric { alpha = 0.85; domain } in
        let v = Core.Kdist.sample kd rng in
        Privacy.Dist.prob (Core.Kdist.to_dist kd) v > 0.);
    QCheck.Test.make ~name:"algorithm 1 outputs are miss-run then hit-run" ~count:200
      QCheck.(triple small_int (int_range 1 20) (int_range 1 30))
      (fun (seed, domain, probes) ->
        let rng = Sim.Rng.create seed in
        let rc = Core.Random_cache.create ~kdist:(Core.Kdist.Uniform domain) ~rng () in
        let key = name "/x" in
        let outputs = List.init probes (fun _ -> Core.Random_cache.on_request rc key) in
        let rec ok seen_hit = function
          | [] -> true
          | Core.Random_cache.Hit :: r -> ok true r
          | Core.Random_cache.Miss :: r -> (not seen_hit) && ok false r
        in
        ok false outputs);
    QCheck.Test.make ~name:"misses = min(k_C+1, probes) for fresh content" ~count:200
      QCheck.(triple small_int (int_range 1 20) (int_range 1 40))
      (fun (seed, domain, probes) ->
        let rng = Sim.Rng.create seed in
        let rc = Core.Random_cache.create ~kdist:(Core.Kdist.Uniform domain) ~rng () in
        let key = name "/x" in
        let misses = ref 0 in
        for _ = 1 to probes do
          if Core.Random_cache.on_request rc key = Core.Random_cache.Miss then incr misses
        done;
        match Core.Random_cache.threshold rc key with
        | Some k -> !misses = min (k + 1) probes
        | None -> false);
    QCheck.Test.make ~name:"marking: producer-private is always private" ~count:200
      QCheck.(pair bool bool)
      (fun (consumer_private, trigger_first) ->
        let m = Core.Marking.create () in
        let n = name "/x" in
        if trigger_first then
          ignore
            (Core.Marking.classify m ~name:n ~producer_private:false
               ~consumer_private:false);
        Core.Marking.classify m ~name:n ~producer_private:true ~consumer_private
        = Core.Marking.Private);
    QCheck.Test.make ~name:"delay: dynamic never below floor" ~count:200
      QCheck.(triple (float_range 0. 100.) (float_range 0.1 100.) (int_bound 10_000))
      (fun (floor, fetch_delay, hits) ->
        Core.Delay.hit_delay
          (Core.Delay.Dynamic { floor; half_life_requests = 10. })
          ~fetch_delay ~hits_so_far:hits
        >= floor -. 1e-9);
    QCheck.Test.make ~name:"unpredictable names verify iff authentic" ~count:200
      QCheck.(pair (string_of_size Gen.(int_range 1 10)) (int_bound 1000))
      (fun (secret, seq) ->
        let s =
          Core.Unpredictable_names.create ~secret ~prefix:(name "/session/a")
        in
        Core.Unpredictable_names.verify_name s
          (Core.Unpredictable_names.name_of_seq s ~seq)
        = Some seq);
    QCheck.Test.make ~name:"policy: uncached requests never report hits" ~count:200
      QCheck.(pair small_int bool)
      (fun (seed, is_private) ->
        let p =
          Core.Policy.create ~rng:(Sim.Rng.create seed)
            (Core.Policy.Random_cache (Core.Kdist.Uniform 5))
        in
        let n = name "/x" in
        (* advance the counter arbitrarily *)
        for _ = 1 to 10 do
          ignore (Core.Policy.on_request p ~name:n ~is_private ~cached:true)
        done;
        Core.Policy.on_request p ~name:n ~is_private ~cached:false
        = Core.Random_cache.Miss);
  ]

let () =
  Alcotest.run "core"
    [
      ( "kdist",
        [
          Alcotest.test_case "uniform bounds" `Quick test_kdist_uniform_bounds;
          Alcotest.test_case "geometric law" `Slow test_kdist_geometric_bounds_and_law;
          Alcotest.test_case "constant" `Quick test_kdist_constant;
          Alcotest.test_case "weighted" `Quick test_kdist_weighted;
          Alcotest.test_case "theorem constructors" `Quick
            test_kdist_constructors_match_theorems;
          Alcotest.test_case "exponential infeasible" `Quick test_kdist_exponential_infeasible;
          Alcotest.test_case "mean" `Quick test_kdist_mean;
        ] );
      ( "random_cache",
        [
          Alcotest.test_case "first request misses" `Quick test_rc_first_request_always_miss;
          Alcotest.test_case "miss run then hits" `Quick test_rc_output_is_miss_run_then_hits;
          Alcotest.test_case "threshold semantics" `Quick test_rc_threshold_controls_misses;
          Alcotest.test_case "keys independent" `Quick test_rc_keys_independent;
          Alcotest.test_case "forget" `Quick test_rc_forget;
          Alcotest.test_case "matches theory" `Slow test_rc_miss_counts_match_theory;
        ] );
      ( "naive",
        [
          Alcotest.test_case "deterministic threshold" `Quick
            test_naive_deterministic_threshold;
          Alcotest.test_case "rejects negative k" `Quick test_naive_rejects_negative_k;
        ] );
      ( "marking",
        [
          Alcotest.test_case "producer dominates" `Quick test_marking_producer_dominates;
          Alcotest.test_case "trigger rule" `Quick test_marking_trigger_rule;
          Alcotest.test_case "trigger cleared on eviction" `Quick
            test_marking_trigger_cleared_on_eviction;
          Alcotest.test_case "reserved component" `Quick test_marking_reserved_name_component;
        ] );
      ( "delay",
        [
          Alcotest.test_case "constant" `Quick test_delay_constant;
          Alcotest.test_case "content specific" `Quick test_delay_content_specific;
          Alcotest.test_case "dynamic" `Quick test_delay_dynamic;
        ] );
      ( "grouping",
        [
          Alcotest.test_case "by content" `Quick test_grouping_by_content;
          Alcotest.test_case "by namespace" `Quick test_grouping_by_namespace;
          Alcotest.test_case "by content id" `Quick test_grouping_by_content_id;
        ] );
      ( "unpredictable_names",
        [
          Alcotest.test_case "parties agree" `Quick test_unpredictable_names_agree;
          Alcotest.test_case "secret dependent" `Quick test_unpredictable_names_secret_dependent;
          Alcotest.test_case "verify" `Quick test_unpredictable_names_verify;
          Alcotest.test_case "make_data" `Quick test_unpredictable_names_make_data;
          Alcotest.test_case "entropy" `Quick test_unpredictable_entropy;
        ] );
      ( "policy",
        [
          Alcotest.test_case "no privacy" `Quick test_policy_no_privacy;
          Alcotest.test_case "always delay" `Quick test_policy_always_delay;
          Alcotest.test_case "random cache private" `Quick test_policy_random_cache_private;
          Alcotest.test_case "public bypasses" `Quick test_policy_random_cache_public_bypasses;
          Alcotest.test_case "real miss dominates" `Quick test_policy_real_miss_never_hit;
          Alcotest.test_case "grouping shares state" `Quick test_policy_grouping_shares_state;
          Alcotest.test_case "labels" `Quick test_policy_labels;
        ] );
      ( "private_router",
        [
          Alcotest.test_case "no countermeasure leaks" `Quick test_private_router_no_cm_leaks;
          Alcotest.test_case "content-specific delay hides hits" `Quick
            test_private_router_content_specific_delay_hides_hits;
          Alcotest.test_case "constant delay pads misses" `Quick
            test_private_router_constant_delay_pads_misses;
          Alcotest.test_case "public content fast" `Quick test_private_router_public_content_fast;
          Alcotest.test_case "random-cache mimic" `Quick test_private_router_random_cache_mimic;
          Alcotest.test_case "defeats scope oracle" `Quick
            test_private_router_defeats_scope_oracle;
        ] );
      ( "interactive_session",
        [
          Alcotest.test_case "predictable completes" `Quick
            test_interactive_session_predictable_completes;
          Alcotest.test_case "unpredictable completes" `Quick
            test_interactive_session_unpredictable_completes;
          Alcotest.test_case "distinct direction names" `Quick
            test_interactive_session_directions_use_distinct_names;
          Alcotest.test_case "frames cached at router" `Quick
            test_interactive_frames_cached_at_router;
          Alcotest.test_case "content-id auto grouping" `Quick
            test_private_router_auto_registers_content_id;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
