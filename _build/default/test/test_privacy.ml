(* Tests for the formal privacy framework: distributions, exact
   (eps, delta)-indistinguishability, output-sequence enumeration, and
   Theorems VI.1-VI.4 confronted with ground truth. *)

open Privacy

let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

(* --- Dist --- *)

let test_dist_normalization () =
  let d = Dist.of_list [ (1, 2.); (2, 6.) ] in
  check_close "p1" 1e-12 0.25 (Dist.prob d 1);
  check_close "p2" 1e-12 0.75 (Dist.prob d 2);
  Alcotest.(check bool) "normalized" true (Dist.check_normalized d)

let test_dist_merges_duplicates () =
  let d = Dist.of_list [ (1, 1.); (1, 1.); (2, 2.) ] in
  check_close "merged" 1e-12 0.5 (Dist.prob d 1);
  Alcotest.(check int) "support size" 2 (Dist.size d)

let test_dist_drops_zero_weight () =
  let d = Dist.of_list [ (1, 1.); (2, 0.) ] in
  Alcotest.(check int) "zero-weight outcome dropped" 1 (Dist.size d)

let test_dist_rejects_bad_weights () =
  Alcotest.check_raises "negative" (Invalid_argument "Dist.of_list: negative weight")
    (fun () -> ignore (Dist.of_list [ (1, -1.); (2, 2.) ]));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Dist.of_list: total weight must be positive") (fun () ->
      ignore (Dist.of_list [ (1, 0.) ]))

let test_dist_uniform () =
  let d = Dist.uniform_int 4 in
  List.iter (fun i -> check_close "uniform prob" 1e-12 0.25 (Dist.prob d i)) [ 0; 1; 2; 3 ];
  check_close "outside support" 1e-12 0. (Dist.prob d 4);
  check_close "mean" 1e-12 1.5 (Dist.mean d)

let test_dist_geometric_truncated () =
  let alpha = 0.5 in
  let d = Dist.geometric_truncated ~alpha ~domain:3 in
  (* weights 1, 0.5, 0.25 -> probs 4/7, 2/7, 1/7 *)
  check_close "p0" 1e-12 (4. /. 7.) (Dist.prob d 0);
  check_close "p1" 1e-12 (2. /. 7.) (Dist.prob d 1);
  check_close "p2" 1e-12 (1. /. 7.) (Dist.prob d 2);
  Alcotest.(check bool) "normalized" true (Dist.check_normalized d)

let test_dist_geometric_alpha1_is_uniform () =
  let d = Dist.geometric_truncated ~alpha:1. ~domain:5 in
  List.iter (fun i -> check_close "uniform limit" 1e-12 0.2 (Dist.prob d i))
    [ 0; 1; 2; 3; 4 ]

let test_dist_map () =
  let d = Dist.uniform_int 4 in
  let d' = Dist.map (fun x -> x / 2) d in
  check_close "collision merged" 1e-12 0.5 (Dist.prob d' 0);
  check_close "collision merged 2" 1e-12 0.5 (Dist.prob d' 1)

let test_dist_expect () =
  let d = Dist.of_list [ (0, 0.5); (10, 0.5) ] in
  check_close "expectation" 1e-12 5. (Dist.expect d ~f:float_of_int)

let test_total_variation () =
  let a = Dist.of_list [ (0, 1.) ] in
  let b = Dist.of_list [ (1, 1.) ] in
  check_close "disjoint TV" 1e-12 1. (Dist.total_variation a b);
  check_close "self TV" 1e-12 0. (Dist.total_variation a a);
  let c = Dist.of_list [ (0, 0.5); (1, 0.5) ] in
  check_close "half TV" 1e-12 0.5 (Dist.total_variation a c)

(* --- Indist --- *)

let test_min_delta_identical () =
  let d = Dist.uniform_int 10 in
  check_close "identical dists need no delta" 1e-12 0. (Indist.min_delta ~eps:0. d d)

let test_min_delta_disjoint () =
  let a = Dist.of_list [ (0, 1.) ] and b = Dist.of_list [ (1, 1.) ] in
  check_close "disjoint: all mass is bad" 1e-12 2. (Indist.min_delta ~eps:10. a b)

let test_min_delta_ratio () =
  let a = Dist.of_list [ (0, 0.5); (1, 0.5) ] in
  let b = Dist.of_list [ (0, 0.25); (1, 0.75) ] in
  (* ratios: 2 and 2/3; ln 2 ~ 0.693, ln 1.5 ~ 0.405 *)
  check_close "eps >= ln2 covers all" 1e-12 0. (Indist.min_delta ~eps:0.7 a b);
  (* eps = 0.5: outcome 0 violates (|ln 2| > 0.5), outcome 1 ok *)
  check_close "partial violation" 1e-12 0.75 (Indist.min_delta ~eps:0.5 a b);
  check_close "eps 0 everything violates" 1e-12 2. (Indist.min_delta ~eps:0. a b)

let test_min_delta_monotone_in_eps () =
  let a = Dist.of_list [ (0, 0.1); (1, 0.4); (2, 0.5) ] in
  let b = Dist.of_list [ (0, 0.3); (1, 0.3); (2, 0.4) ] in
  let deltas = List.map (fun eps -> Indist.min_delta ~eps a b) [ 0.; 0.2; 0.5; 1.; 2. ] in
  let rec non_increasing = function
    | x :: (y :: _ as rest) -> x >= y -. 1e-12 && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "delta non-increasing in eps" true (non_increasing deltas)

let test_min_eps () =
  let a = Dist.of_list [ (0, 0.5); (1, 0.5) ] in
  let b = Dist.of_list [ (0, 0.25); (1, 0.75) ] in
  (* with delta = 0, need eps >= ln 2 *)
  check_close "min eps at delta 0" 1e-9 (log 2.) (Indist.min_eps ~delta:0. a b);
  (* with delta = 0.8 we can discard outcome 0 (mass 0.75) *)
  check_close "min eps with budget" 1e-9 (log (0.75 /. 0.5)) (Indist.min_eps ~delta:0.8 a b)

let test_min_eps_one_sided () =
  let a = Dist.of_list [ (0, 1.) ] in
  let b = Dist.of_list [ (0, 0.9); (1, 0.1) ] in
  (* outcome 1 is one-sided: needs delta >= 0.1 whatever eps *)
  Alcotest.(check bool) "infeasible below one-sided mass" true
    (Indist.min_eps ~delta:0.05 a b = infinity);
  check_close "feasible at the mass" 1e-9 (log (1. /. 0.9))
    (Indist.min_eps ~delta:0.1 a b)

let test_is_indistinguishable () =
  let a = Dist.of_list [ (0, 0.5); (1, 0.5) ] in
  let b = Dist.of_list [ (0, 0.5); (1, 0.5) ] in
  Alcotest.(check bool) "identical" true (Indist.is_indistinguishable ~eps:0. ~delta:0. a b)

let test_distinguishing_advantage () =
  let a = Dist.of_list [ (0, 1.) ] and b = Dist.of_list [ (1, 1.) ] in
  check_close "perfect distinguisher" 1e-12 1. (Indist.distinguishing_advantage a b);
  check_close "coin flip" 1e-12 0.5 (Indist.distinguishing_advantage a a)

(* --- Outputs (Algorithm 1 enumeration) --- *)

let test_misses_observed_fresh () =
  (* prior = 0: first probe always misses; k thresholds bound the rest. *)
  Alcotest.(check int) "k=0: one miss" 1 (Outputs.misses_observed ~k:0 ~prior:0 ~probes:5);
  Alcotest.(check int) "k=3: four misses" 4 (Outputs.misses_observed ~k:3 ~prior:0 ~probes:5);
  Alcotest.(check int) "k huge: all miss" 5
    (Outputs.misses_observed ~k:100 ~prior:0 ~probes:5)

let test_misses_observed_warm () =
  (* prior = 2, k = 3: requests 3,4,... miss while i-1 <= 3, i.e.
     requests 3 and 4 miss -> probes 1..2 miss. *)
  Alcotest.(check int) "partially consumed threshold" 2
    (Outputs.misses_observed ~k:3 ~prior:2 ~probes:5);
  Alcotest.(check int) "fully consumed: all hits" 0
    (Outputs.misses_observed ~k:2 ~prior:5 ~probes:5);
  Alcotest.(check int) "exact boundary" 1
    (Outputs.misses_observed ~k:3 ~prior:3 ~probes:5)

let test_misses_observed_errors () =
  Alcotest.check_raises "bad probes"
    (Invalid_argument "Outputs.misses_observed: probes must be positive") (fun () ->
      ignore (Outputs.misses_observed ~k:1 ~prior:0 ~probes:0))

let test_miss_count_dist_matches_monte_carlo () =
  (* Exhaustive law vs. running actual Algorithm 1 many times. *)
  let kdist = Dist.uniform_int 6 in
  let probes = 8 and prior = 2 in
  let exact = Outputs.miss_count_dist ~k_dist:kdist ~prior ~probes in
  let rng = Sim.Rng.create 42 in
  let trials = 20_000 in
  let counts = Hashtbl.create 8 in
  for _ = 1 to trials do
    let k = Sim.Rng.int rng 6 in
    (* Simulate Algorithm 1 request-by-request. *)
    let misses = ref 0 in
    for i = 1 to prior + probes do
      let is_miss = i = 1 || i - 1 <= k in
      if i > prior && is_miss then incr misses
    done;
    Hashtbl.replace counts !misses
      (1 + Option.value (Hashtbl.find_opt counts !misses) ~default:0)
  done;
  Hashtbl.iter
    (fun m c ->
      let freq = float_of_int c /. float_of_int trials in
      check_close (Printf.sprintf "miss count %d" m) 0.02 (Dist.prob exact m) freq)
    counts

(* --- Theorem VI.1: Uniform-Random-Cache privacy is tight --- *)

let test_theorem_vi1_bound_holds_and_is_tight () =
  List.iter
    (fun (k, domain) ->
      let k_dist = Theorems.Uniform.k_dist ~domain in
      let exact =
        Outputs.achieved_delta ~k_dist ~k ~probes:(domain + k + 2) ~eps:0.
      in
      let bound = Theorems.Uniform.delta ~k ~domain in
      Alcotest.(check bool)
        (Printf.sprintf "bound holds (k=%d K=%d): %.4f <= %.4f" k domain exact bound)
        true
        (exact <= bound +. 1e-9);
      check_close
        (Printf.sprintf "bound tight (k=%d K=%d)" k domain)
        1e-9 bound exact)
    [ (1, 10); (2, 25); (5, 100); (3, 7) ]

let test_theorem_vi1_finite_probe_anomaly () =
  (* Reproduction finding: for probing sequences SHORTER than K, the
     all-miss output aggregates the thresholds r >= t-1 and its
     probability under S0 vs S1 differs by a factor > 1, so the
     (k, 0, 2k/K) guarantee fails.  Concretely K=10, k=1, t=9:
     achieved delta is 0.4 > 0.2.  Pinned so the subtlety stays
     documented. *)
  let k_dist = Theorems.Uniform.k_dist ~domain:10 in
  let short = Outputs.achieved_delta ~k_dist ~k:1 ~probes:9 ~eps:0. in
  check_close "short probing leaks more" 1e-9 0.4 short;
  let saturated = Outputs.achieved_delta ~k_dist ~k:1 ~probes:10 ~eps:0. in
  check_close "saturated probing matches the theorem" 1e-9 0.2 saturated

let test_theorem_vi1_uniform_eps_is_zero () =
  (* With eps = 0 the achieved delta already matches 2k/K, i.e. no
     positive eps is needed: ratios inside Omega_1 are exactly 1. *)
  let k_dist = Theorems.Uniform.k_dist ~domain:50 in
  let d0, d1 = Outputs.state_pair ~k_dist ~x:3 ~probes:60 in
  let delta_at_zero = Indist.min_delta ~eps:0. d0 d1 in
  let delta_at_large = Indist.min_delta ~eps:5. d0 d1 in
  check_close "no ratio violations beyond one-sided outputs" 1e-12 delta_at_large
    delta_at_zero

(* --- Theorem VI.3: Exponential-Random-Cache --- *)

let test_theorem_vi3_bound_holds_and_is_tight () =
  List.iter
    (fun (k, alpha, domain) ->
      let k_dist = Theorems.Exponential.k_dist ~alpha ~domain in
      let eps = Theorems.Exponential.epsilon ~k ~alpha in
      let exact = Outputs.achieved_delta ~k_dist ~k ~probes:(domain + k + 2) ~eps in
      let bound = Theorems.Exponential.delta ~k ~alpha ~domain in
      Alcotest.(check bool)
        (Printf.sprintf "bound holds (k=%d a=%.2f K=%d)" k alpha domain)
        true
        (exact <= bound +. 1e-9);
      check_close "bound tight" 1e-9 bound exact)
    [ (1, 0.9, 20); (2, 0.95, 50); (5, 0.97, 150) ]

let test_theorem_vi3_needs_full_eps () =
  (* At eps' < eps = -k ln alpha, delta must strictly grow. *)
  let k = 3 and alpha = 0.9 and domain = 30 in
  let k_dist = Theorems.Exponential.k_dist ~alpha ~domain in
  let eps = Theorems.Exponential.epsilon ~k ~alpha in
  let tight = Outputs.achieved_delta ~k_dist ~k ~probes:40 ~eps in
  let starved = Outputs.achieved_delta ~k_dist ~k ~probes:40 ~eps:(eps /. 2.) in
  Alcotest.(check bool) "smaller eps costs more delta" true (starved > tight +. 1e-9)

let test_exponential_delta_limit () =
  let k = 4 and alpha = 0.93 in
  check_close "limit formula" 1e-12
    (1. -. (alpha ** 4.))
    (Theorems.Exponential.delta_limit ~k ~alpha);
  (* delta(K) approaches the limit from above as K grows *)
  let d1 = Theorems.Exponential.delta ~k ~alpha ~domain:50 in
  let d2 = Theorems.Exponential.delta ~k ~alpha ~domain:500 in
  let lim = Theorems.Exponential.delta_limit ~k ~alpha in
  Alcotest.(check bool) "decreasing toward limit" true (d1 >= d2 && d2 >= lim -. 1e-9)

let test_domain_solvers () =
  Alcotest.(check int) "uniform: K = 2k/delta" 200
    (Theorems.Uniform.domain_for_delta ~k:5 ~delta:0.05);
  (match Theorems.Exponential.domain_for_delta ~k:5 ~alpha:0.99 ~delta:0.1 with
  | Some domain ->
    let d = Theorems.Exponential.delta ~k:5 ~alpha:0.99 ~domain in
    Alcotest.(check bool) "achieves target" true (d <= 0.1 +. 1e-9);
    (* minimality: one smaller misses the target *)
    if domain > 1 then
      let d' = Theorems.Exponential.delta ~k:5 ~alpha:0.99 ~domain:(domain - 1) in
      Alcotest.(check bool) "minimal" true (d' > 0.1 +. 1e-12)
  | None -> Alcotest.fail "should be feasible");
  (* infeasible when delta below the limit *)
  Alcotest.(check bool) "infeasible detected" true
    (Theorems.Exponential.domain_for_delta ~k:5 ~alpha:0.5 ~delta:0.05 = None)

(* --- Theorems VI.2 / VI.4: utility --- *)

let test_uniform_utility_exact_vs_monte_carlo () =
  let domain = 30 in
  let rng = Sim.Rng.create 7 in
  List.iter
    (fun c ->
      let trials = 20_000 in
      let total_misses = ref 0 in
      for _ = 1 to trials do
        let k = Sim.Rng.int rng domain in
        (* Algorithm 1: request i misses iff i = 1 || i - 1 <= k. *)
        for i = 1 to c do
          if i = 1 || i - 1 <= k then incr total_misses
        done
      done;
      let emp = float_of_int !total_misses /. float_of_int trials in
      check_close
        (Printf.sprintf "exact E[M(%d)]" c)
        0.05
        (Theorems.Uniform.expected_misses_exact ~c ~domain)
        emp)
    [ 1; 5; 15; 30; 60 ]

let test_uniform_paper_vs_exact_discrepancy () =
  (* The printed Theorem VI.2 differs from Algorithm 1 by exactly
     Pr(k_C >= c-1)... bounded by one miss; document and pin it. *)
  let domain = 40 in
  List.iter
    (fun c ->
      let paper = Theorems.Uniform.expected_misses_paper ~c ~domain in
      let exact = Theorems.Uniform.expected_misses_exact ~c ~domain in
      Alcotest.(check bool)
        (Printf.sprintf "paper <= exact <= paper + 1 at c=%d" c)
        true
        (paper <= exact +. 1e-9 && exact <= paper +. 1. +. 1e-9))
    [ 1; 2; 10; 39 ]

let test_uniform_utility_at_c1_physical () =
  (* Algorithm 1's first request is always a miss: exact utility 0. *)
  check_close "u_exact(1) = 0" 1e-12 0. (Theorems.Uniform.utility_exact ~c:1 ~domain:50)

let test_exponential_paper_matches_algorithm () =
  (* Theorem VI.4 as printed IS the Algorithm-1 expectation. *)
  List.iter
    (fun (c, alpha, domain) ->
      check_close
        (Printf.sprintf "VI.4 exact at c=%d" c)
        1e-6
        (Theorems.Exponential.expected_misses_exact ~c ~alpha ~domain)
        (Theorems.Exponential.expected_misses_paper ~c ~alpha ~domain))
    [ (1, 0.9, 20); (5, 0.95, 40); (19, 0.97, 20); (39, 0.8, 40) ]

let test_exponential_unbounded_limit () =
  let alpha = 0.9 and c = 10 in
  let inf_form = Theorems.Exponential.expected_misses_paper_unbounded ~c ~alpha in
  let large_k = Theorems.Exponential.expected_misses_paper ~c ~alpha ~domain:10_000 in
  check_close "K->inf limit" 1e-6 inf_form large_k

let test_utility_monotone_in_requests () =
  (* More requests amortize the random misses: utility grows with c. *)
  let domain = 50 in
  let rec check_mono last c =
    if c > 120 then ()
    else begin
      let u = Theorems.Uniform.utility_exact ~c ~domain in
      Alcotest.(check bool) (Printf.sprintf "monotone at %d" c) true (u >= last -. 1e-9);
      check_mono u (c + 1)
    end
  in
  check_mono 0. 1

let test_exponential_beats_uniform_at_matched_privacy () =
  (* Figure 4's headline: at matched (k, delta), the exponential scheme
     has higher utility for small request counts. *)
  let k = 5 and delta = 0.05 in
  let domain_u = Theorems.Uniform.domain_for_delta ~k ~delta in
  let eps = 0.04 in
  let alpha = Theorems.Exponential.alpha_for_epsilon ~k ~eps in
  match Theorems.Exponential.domain_for_delta ~k ~alpha ~delta with
  | None -> Alcotest.fail "expected feasible"
  | Some domain_e ->
    let better_count = ref 0 in
    for c = 1 to 100 do
      let ue = Theorems.Exponential.utility_paper ~c ~alpha ~domain:domain_e in
      let uu = Theorems.Uniform.utility_paper ~c ~domain:domain_u in
      if ue > uu then incr better_count
    done;
    Alcotest.(check bool) "exponential ahead on most of c=1..100" true (!better_count > 60)


(* --- Bayesian leakage analysis --- *)

let test_bayes_posterior_flat_under_uniform () =
  (* Uniform thresholds give eps = 0: an observation compatible with
     several counts leaves them in the prior ratio (here: flat). *)
  let k_dist = Dist.uniform_int 50 in
  let post =
    Bayes.posterior ~k_dist ~count_prior:(Dist.uniform_int 6) ~probes:60
      ~observed_misses:10
  in
  (* counts 0..5 all compatible with 10 misses: equal posteriors *)
  let p0 = Dist.prob post 0 in
  List.iter
    (fun x ->
      check_close (Printf.sprintf "flat at %d" x) 1e-9 p0 (Dist.prob post x))
    [ 1; 2; 3; 4; 5 ]

let test_bayes_posterior_identifies_naive () =
  (* Constant threshold: the observation pins the count exactly. *)
  let k_dist = Dist.constant 5 in
  (* true count 3: misses observed = k - count + 1 = 3 *)
  let post =
    Bayes.posterior ~k_dist ~count_prior:(Dist.uniform_int 6) ~probes:10
      ~observed_misses:3
  in
  check_close "count fully identified" 1e-9 1. (Dist.prob post 3);
  Alcotest.(check int) "map" 3 (Bayes.map_estimate post)

let test_bayes_posterior_impossible_observation () =
  let k_dist = Dist.constant 2 in
  Alcotest.check_raises "impossible observation"
    (Invalid_argument "Bayes.posterior: observation impossible under the prior")
    (fun () ->
      ignore
        (Bayes.posterior ~k_dist ~count_prior:(Dist.uniform_int 2) ~probes:10
           ~observed_misses:9))

let test_bayes_entropy () =
  check_close "uniform 8 = 3 bits" 1e-9 3. (Bayes.entropy (Dist.uniform_int 8));
  check_close "constant = 0 bits" 1e-9 0. (Bayes.entropy (Dist.constant 1))

let test_mutual_information_bounds () =
  let count_prior = Dist.uniform_int 6 in
  let probes = 60 in
  let mi_uniform =
    Bayes.mutual_information ~k_dist:(Dist.uniform_int 50) ~count_prior ~probes
  in
  let mi_naive =
    Bayes.mutual_information ~k_dist:(Dist.constant 5) ~count_prior ~probes
  in
  let h = Bayes.entropy count_prior in
  Alcotest.(check bool) "uniform leaks little" true (mi_uniform < 0.4);
  check_close "naive leaks everything" 1e-6 h mi_naive;
  Alcotest.(check bool) "bounds" true (mi_uniform >= 0. && mi_uniform <= h)

let test_mutual_information_grows_with_smaller_domain () =
  let count_prior = Dist.uniform_int 6 in
  let mi domain =
    Bayes.mutual_information ~k_dist:(Dist.uniform_int domain) ~count_prior
      ~probes:(domain + 10)
  in
  Alcotest.(check bool) "K=10 leaks more than K=100" true (mi 10 > mi 100)


(* --- Composition --- *)

let test_composition_basic () =
  let eps', delta' = Composition.basic ~eps:0.1 ~delta:0.01 ~n:5 in
  check_close "eps adds" 1e-12 0.5 eps';
  check_close "delta adds" 1e-12 0.05 delta';
  Alcotest.check_raises "n=0" (Invalid_argument "Composition: n must be positive")
    (fun () -> ignore (Composition.basic ~eps:0.1 ~delta:0.01 ~n:0))

let test_composition_advanced_beats_basic_for_large_n () =
  let eps = 0.01 and delta = 1e-6 and n = 10_000 in
  let b_eps, _ = Composition.basic ~eps ~delta ~n in
  let a_eps, _ = Composition.advanced ~eps ~delta ~n ~delta_slack:1e-6 in
  Alcotest.(check bool)
    (Printf.sprintf "advanced %.2f < basic %.2f" a_eps b_eps)
    true (a_eps < b_eps)

let test_composition_exact_within_basic_bound () =
  let k_dist = Theorems.Uniform.k_dist ~domain:20 in
  let single = Outputs.achieved_delta ~k_dist ~k:2 ~probes:22 ~eps:0. in
  List.iter
    (fun n ->
      let joint = Composition.exact_joint_delta ~k_dist ~k:2 ~probes:22 ~eps:0. ~n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: exact %.4f <= basic %.4f" n joint
           (float_of_int n *. single))
        true
        (joint <= (float_of_int n *. single) +. 1e-9);
      (* and the exact joint equals 1 - (1 - delta)^n for eps = 0 with
         one-sided bad outputs on each side *)
      Alcotest.(check bool) "joint grows with n" true (joint >= single -. 1e-9))
    [ 1; 2; 3 ]

let test_dist_product () =
  let a = Dist.uniform_int 2 and b = Dist.uniform_int 3 in
  let p = Dist.product a b in
  Alcotest.(check int) "support size" 6 (Dist.size p);
  check_close "independent prob" 1e-12 (1. /. 6.) (Dist.prob p (1, 2));
  Alcotest.(check bool) "normalized" true (Dist.check_normalized p)

let test_dist_self_product () =
  let d = Dist.of_list [ (0, 0.5); (1, 0.5) ] in
  let j = Dist.self_product d ~n:3 in
  Alcotest.(check int) "2^3 outcomes" 8 (Dist.size j);
  check_close "each outcome 1/8" 1e-12 0.125 (Dist.prob j [ 0; 1; 0 ]);
  Alcotest.check_raises "n=0" (Invalid_argument "Dist.self_product: n must be positive")
    (fun () -> ignore (Dist.self_product d ~n:0))

(* --- property tests --- *)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"dist normalization invariant" ~count:200
      QCheck.(list_of_size Gen.(int_range 1 20) (pair small_int (float_range 0.01 10.)))
      (fun pairs ->
        let d = Dist.of_list pairs in
        Dist.check_normalized d);
    QCheck.Test.make ~name:"TV is symmetric and in [0,1]" ~count:200
      QCheck.(
        pair
          (list_of_size Gen.(int_range 1 8) (pair (int_bound 10) (float_range 0.01 5.)))
          (list_of_size Gen.(int_range 1 8) (pair (int_bound 10) (float_range 0.01 5.))))
      (fun (pa, pb) ->
        let a = Dist.of_list pa and b = Dist.of_list pb in
        let tv = Dist.total_variation a b in
        tv >= -1e-12 && tv <= 1. +. 1e-12
        && Float.abs (tv -. Dist.total_variation b a) < 1e-12);
    QCheck.Test.make ~name:"min_delta decreasing in eps" ~count:200
      QCheck.(
        triple
          (list_of_size Gen.(int_range 1 8) (pair (int_bound 6) (float_range 0.01 5.)))
          (list_of_size Gen.(int_range 1 8) (pair (int_bound 6) (float_range 0.01 5.)))
          (pair (float_range 0. 2.) (float_range 0. 2.)))
      (fun (pa, pb, (e1, e2)) ->
        let a = Dist.of_list pa and b = Dist.of_list pb in
        let lo = Float.min e1 e2 and hi = Float.max e1 e2 in
        Indist.min_delta ~eps:hi a b <= Indist.min_delta ~eps:lo a b +. 1e-12);
    QCheck.Test.make ~name:"min_eps achieves its delta" ~count:200
      QCheck.(
        triple
          (list_of_size Gen.(int_range 1 8) (pair (int_bound 6) (float_range 0.01 5.)))
          (list_of_size Gen.(int_range 1 8) (pair (int_bound 6) (float_range 0.01 5.)))
          (float_range 0. 1.))
      (fun (pa, pb, delta) ->
        let a = Dist.of_list pa and b = Dist.of_list pb in
        let eps = Indist.min_eps ~delta a b in
        eps = infinity || Indist.min_delta ~eps a b <= delta +. 1e-9);
    QCheck.Test.make ~name:"bayes posterior is a distribution" ~count:100
      QCheck.(triple (int_range 2 30) (int_range 1 6) (int_range 0 5))
      (fun (domain, max_count, true_count) ->
        QCheck.assume (true_count <= max_count);
        let k_dist = Dist.uniform_int domain in
        let probes = domain + max_count + 1 in
        (* any observation actually produced by some count is possible *)
        let obs = Outputs.misses_observed ~k:(domain / 2) ~prior:true_count ~probes in
        let post =
          Bayes.posterior ~k_dist ~count_prior:(Dist.uniform_int (max_count + 1))
            ~probes ~observed_misses:obs
        in
        Dist.check_normalized post);
    QCheck.Test.make ~name:"mutual information within [0, H(prior)]" ~count:60
      QCheck.(pair (int_range 2 40) (int_range 1 8))
      (fun (domain, max_count) ->
        let count_prior = Dist.uniform_int (max_count + 1) in
        let mi =
          Bayes.mutual_information ~k_dist:(Dist.uniform_int domain) ~count_prior
            ~probes:(domain + max_count + 1)
        in
        mi >= -1e-9 && mi <= Bayes.entropy count_prior +. 1e-9);
    QCheck.Test.make ~name:"theorem VI.1 holds for random (k, K)" ~count:50
      QCheck.(pair (int_range 1 5) (int_range 6 60))
      (fun (k, domain) ->
        let k_dist = Theorems.Uniform.k_dist ~domain in
        Outputs.achieved_delta ~k_dist ~k ~probes:(domain + k + 2) ~eps:0.
        <= Theorems.Uniform.delta ~k ~domain +. 1e-9);
    QCheck.Test.make ~name:"theorem VI.3 holds for random (k, alpha, K)" ~count:50
      QCheck.(triple (int_range 1 4) (float_range 0.7 0.99) (int_range 10 80))
      (fun (k, alpha, domain) ->
        let k_dist = Theorems.Exponential.k_dist ~alpha ~domain in
        let eps = Theorems.Exponential.epsilon ~k ~alpha in
        Outputs.achieved_delta ~k_dist ~k ~probes:(domain + k + 2) ~eps
        <= Theorems.Exponential.delta ~k ~alpha ~domain +. 1e-9);
    QCheck.Test.make ~name:"utility within [0,1)" ~count:200
      QCheck.(pair (int_range 1 200) (int_range 2 200))
      (fun (c, domain) ->
        let u = Theorems.Uniform.utility_exact ~c ~domain in
        u >= 0. && u < 1.);
    QCheck.Test.make ~name:"VI.1 exact whenever probes >= K" ~count:50
      QCheck.(triple (int_range 1 4) (int_range 5 40) (int_range 0 20))
      (fun (k, domain, extra) ->
        let k_dist = Theorems.Uniform.k_dist ~domain in
        let d = Outputs.achieved_delta ~k_dist ~k ~probes:(domain + extra) ~eps:0. in
        Float.abs (d -. Theorems.Uniform.delta ~k ~domain) < 1e-9);
  ]

let () =
  Alcotest.run "privacy"
    [
      ( "dist",
        [
          Alcotest.test_case "normalization" `Quick test_dist_normalization;
          Alcotest.test_case "merges duplicates" `Quick test_dist_merges_duplicates;
          Alcotest.test_case "drops zero weight" `Quick test_dist_drops_zero_weight;
          Alcotest.test_case "rejects bad weights" `Quick test_dist_rejects_bad_weights;
          Alcotest.test_case "uniform" `Quick test_dist_uniform;
          Alcotest.test_case "truncated geometric" `Quick test_dist_geometric_truncated;
          Alcotest.test_case "alpha=1 uniform limit" `Quick
            test_dist_geometric_alpha1_is_uniform;
          Alcotest.test_case "map" `Quick test_dist_map;
          Alcotest.test_case "expect" `Quick test_dist_expect;
          Alcotest.test_case "total variation" `Quick test_total_variation;
        ] );
      ( "indist",
        [
          Alcotest.test_case "identical" `Quick test_min_delta_identical;
          Alcotest.test_case "disjoint" `Quick test_min_delta_disjoint;
          Alcotest.test_case "ratio accounting" `Quick test_min_delta_ratio;
          Alcotest.test_case "monotone in eps" `Quick test_min_delta_monotone_in_eps;
          Alcotest.test_case "min_eps" `Quick test_min_eps;
          Alcotest.test_case "min_eps one-sided" `Quick test_min_eps_one_sided;
          Alcotest.test_case "is_indistinguishable" `Quick test_is_indistinguishable;
          Alcotest.test_case "distinguishing advantage" `Quick
            test_distinguishing_advantage;
        ] );
      ( "outputs",
        [
          Alcotest.test_case "fresh state misses" `Quick test_misses_observed_fresh;
          Alcotest.test_case "warm state misses" `Quick test_misses_observed_warm;
          Alcotest.test_case "input validation" `Quick test_misses_observed_errors;
          Alcotest.test_case "law matches monte carlo" `Slow
            test_miss_count_dist_matches_monte_carlo;
        ] );
      ( "theorem-vi1",
        [
          Alcotest.test_case "bound holds and is tight" `Quick
            test_theorem_vi1_bound_holds_and_is_tight;
          Alcotest.test_case "finite-probe anomaly pinned" `Quick
            test_theorem_vi1_finite_probe_anomaly;
          Alcotest.test_case "eps is zero" `Quick test_theorem_vi1_uniform_eps_is_zero;
        ] );
      ( "theorem-vi3",
        [
          Alcotest.test_case "bound holds and is tight" `Quick
            test_theorem_vi3_bound_holds_and_is_tight;
          Alcotest.test_case "needs full eps" `Quick test_theorem_vi3_needs_full_eps;
          Alcotest.test_case "delta limit" `Quick test_exponential_delta_limit;
          Alcotest.test_case "domain solvers" `Quick test_domain_solvers;
        ] );
      ( "utility",
        [
          Alcotest.test_case "uniform exact vs monte carlo" `Slow
            test_uniform_utility_exact_vs_monte_carlo;
          Alcotest.test_case "paper-vs-exact discrepancy pinned" `Quick
            test_uniform_paper_vs_exact_discrepancy;
          Alcotest.test_case "u(1) physical" `Quick test_uniform_utility_at_c1_physical;
          Alcotest.test_case "VI.4 matches algorithm" `Quick
            test_exponential_paper_matches_algorithm;
          Alcotest.test_case "unbounded limit" `Quick test_exponential_unbounded_limit;
          Alcotest.test_case "utility monotone" `Quick test_utility_monotone_in_requests;
          Alcotest.test_case "exponential beats uniform" `Quick
            test_exponential_beats_uniform_at_matched_privacy;
        ] );
      ( "bayes",
        [
          Alcotest.test_case "flat posterior under uniform" `Quick
            test_bayes_posterior_flat_under_uniform;
          Alcotest.test_case "identifies naive counts" `Quick
            test_bayes_posterior_identifies_naive;
          Alcotest.test_case "impossible observation" `Quick
            test_bayes_posterior_impossible_observation;
          Alcotest.test_case "entropy" `Quick test_bayes_entropy;
          Alcotest.test_case "mutual information bounds" `Quick
            test_mutual_information_bounds;
          Alcotest.test_case "leak grows as domain shrinks" `Quick
            test_mutual_information_grows_with_smaller_domain;
        ] );
      ( "composition",
        [
          Alcotest.test_case "basic" `Quick test_composition_basic;
          Alcotest.test_case "advanced beats basic" `Quick
            test_composition_advanced_beats_basic_for_large_n;
          Alcotest.test_case "exact within bound" `Quick
            test_composition_exact_within_basic_bound;
          Alcotest.test_case "dist product" `Quick test_dist_product;
          Alcotest.test_case "dist self product" `Quick test_dist_self_product;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
