test/test_workload.ml: Alcotest Array Core Filename Fun Gen List Ndn Printf QCheck QCheck_alcotest Sim String Sys Workload
