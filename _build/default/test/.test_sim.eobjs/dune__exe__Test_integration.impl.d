test/test_integration.ml: Alcotest Array Attack Char Core Format List Ndn Option Printf Privacy Sim String Workload
