test/test_crypto.ml: Alcotest Bytes Char Gen List Ndn_crypto Printf QCheck QCheck_alcotest String
