test/test_attack.ml: Alcotest Array Attack Core Float List Ndn Printf QCheck QCheck_alcotest Sim
