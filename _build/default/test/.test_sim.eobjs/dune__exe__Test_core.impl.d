test/test_core.ml: Alcotest Array Attack Core Float Gen List Ndn Option Printf Privacy QCheck QCheck_alcotest Sim
