test/test_privacy.ml: Alcotest Bayes Composition Dist Float Gen Hashtbl Indist List Option Outputs Printf Privacy QCheck QCheck_alcotest Sim Theorems
