(* Tests for the crypto substrate: SHA-256 against FIPS/NIST vectors,
   HMAC-SHA256 against RFC 4231, hex codecs. *)

let sha = Ndn_crypto.Sha256.hex_digest

let test_sha_empty () =
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" (sha "")

let test_sha_abc () =
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" (sha "abc")

let test_sha_448_bits () =
  Alcotest.(check string) "two-block 448-bit message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (sha "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha_896_bits () =
  Alcotest.(check string) "896-bit message"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (sha
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_sha_million_a () =
  Alcotest.(check string) "one million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (sha (String.make 1_000_000 'a'))

let test_sha_exact_block_boundaries () =
  (* 55/56/63/64/65 bytes straddle the padding edge cases. *)
  let expected =
    [
      (55, sha (String.make 55 'x'));
      (56, sha (String.make 56 'x'));
      (63, sha (String.make 63 'x'));
      (64, sha (String.make 64 'x'));
      (65, sha (String.make 65 'x'));
    ]
  in
  (* Recompute through the streaming interface one byte at a time. *)
  List.iter
    (fun (n, want) ->
      let ctx = Ndn_crypto.Sha256.init () in
      for _ = 1 to n do
        Ndn_crypto.Sha256.feed ctx "x"
      done;
      Alcotest.(check string)
        (Printf.sprintf "streaming %d bytes" n)
        want
        (Ndn_crypto.Hex.encode (Ndn_crypto.Sha256.finalize ctx)))
    expected

let test_sha_streaming_split_invariance () =
  let msg = "the quick brown fox jumps over the lazy dog and keeps running" in
  let whole = sha msg in
  for split = 0 to String.length msg do
    let ctx = Ndn_crypto.Sha256.init () in
    Ndn_crypto.Sha256.feed ctx (String.sub msg 0 split);
    Ndn_crypto.Sha256.feed ctx (String.sub msg split (String.length msg - split));
    Alcotest.(check string)
      (Printf.sprintf "split at %d" split)
      whole
      (Ndn_crypto.Hex.encode (Ndn_crypto.Sha256.finalize ctx))
  done

let test_sha_double_finalize_rejected () =
  let ctx = Ndn_crypto.Sha256.init () in
  Ndn_crypto.Sha256.feed ctx "abc";
  ignore (Ndn_crypto.Sha256.finalize ctx);
  Alcotest.check_raises "double finalize"
    (Invalid_argument "Sha256.finalize: context already finalized") (fun () ->
      ignore (Ndn_crypto.Sha256.finalize ctx))

let test_sha_feed_after_finalize_rejected () =
  let ctx = Ndn_crypto.Sha256.init () in
  ignore (Ndn_crypto.Sha256.finalize ctx);
  Alcotest.check_raises "feed after finalize"
    (Invalid_argument "Sha256.feed: context already finalized") (fun () ->
      Ndn_crypto.Sha256.feed ctx "x")

let test_sha_feed_bytes_bounds () =
  let ctx = Ndn_crypto.Sha256.init () in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Sha256.feed_bytes: out of bounds") (fun () ->
      Ndn_crypto.Sha256.feed_bytes ctx (Bytes.create 4) ~off:2 ~len:3)

let test_sha_digest_size () =
  Alcotest.(check int) "digest size" 32
    (String.length (Ndn_crypto.Sha256.digest "x"));
  Alcotest.(check int) "declared size" 32 Ndn_crypto.Sha256.digest_size;
  Alcotest.(check int) "block size" 64 Ndn_crypto.Sha256.block_size

(* RFC 4231 HMAC-SHA256 test vectors. *)

let hmac ~key msg = Ndn_crypto.Hmac.hex_mac ~key msg

let test_hmac_rfc4231_case1 () =
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hmac ~key:(String.make 20 '\x0b') "Hi There")

let test_hmac_rfc4231_case2 () =
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hmac ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_rfc4231_case3 () =
  Alcotest.(check string) "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (hmac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'))

let test_hmac_rfc4231_case6_long_key () =
  (* 131-byte key: exercises the hash-the-key path. *)
  Alcotest.(check string) "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (hmac
       ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_rfc4231_case7_long_key_long_data () =
  Alcotest.(check string) "case 7"
    "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
    (hmac
       ~key:(String.make 131 '\xaa')
       "This is a test using a larger than block-size key and a larger than \
        block-size data. The key needs to be hashed before being used by the \
        HMAC algorithm.")

let test_hmac_key_sensitivity () =
  Alcotest.(check bool) "different keys, different macs" true
    (hmac ~key:"k1" "msg" <> hmac ~key:"k2" "msg")

let test_hmac_message_sensitivity () =
  Alcotest.(check bool) "different msgs, different macs" true
    (hmac ~key:"k" "msg1" <> hmac ~key:"k" "msg2")

let test_hmac_verify () =
  let key = "secret" and msg = "payload" in
  let tag = Ndn_crypto.Hmac.mac ~key msg in
  Alcotest.(check bool) "valid tag accepted" true
    (Ndn_crypto.Hmac.verify ~key ~msg ~tag);
  Alcotest.(check bool) "wrong key rejected" false
    (Ndn_crypto.Hmac.verify ~key:"other" ~msg ~tag);
  Alcotest.(check bool) "tampered tag rejected" false
    (Ndn_crypto.Hmac.verify ~key ~msg ~tag:(String.map (fun _ -> 'a') tag));
  Alcotest.(check bool) "truncated tag rejected" false
    (Ndn_crypto.Hmac.verify ~key ~msg ~tag:(String.sub tag 0 16))

let test_hex_roundtrip () =
  let all_bytes = String.init 256 Char.chr in
  Alcotest.(check string) "roundtrip" all_bytes
    (Ndn_crypto.Hex.decode (Ndn_crypto.Hex.encode all_bytes))

let test_hex_uppercase_decode () =
  Alcotest.(check string) "uppercase accepted" "\xde\xad\xbe\xef"
    (Ndn_crypto.Hex.decode "DEADBEEF")

let test_hex_errors () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Ndn_crypto.Hex.decode "abc"));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Hex.decode: non-hex character") (fun () ->
      ignore (Ndn_crypto.Hex.decode "zz"))

let qcheck_tests =
  [
    QCheck.Test.make ~name:"hex roundtrip" ~count:300 QCheck.string (fun s ->
        Ndn_crypto.Hex.decode (Ndn_crypto.Hex.encode s) = s);
    QCheck.Test.make ~name:"sha256 deterministic and 32 bytes" ~count:300
      QCheck.string (fun s ->
        let d = Ndn_crypto.Sha256.digest s in
        String.length d = 32 && d = Ndn_crypto.Sha256.digest s);
    QCheck.Test.make ~name:"sha256 concat equals streaming" ~count:300
      QCheck.(pair string string)
      (fun (a, b) ->
        let ctx = Ndn_crypto.Sha256.init () in
        Ndn_crypto.Sha256.feed ctx a;
        Ndn_crypto.Sha256.feed ctx b;
        Ndn_crypto.Sha256.finalize ctx = Ndn_crypto.Sha256.digest (a ^ b));
    QCheck.Test.make ~name:"hmac verify accepts own tag" ~count:300
      QCheck.(pair string string)
      (fun (key, msg) ->
        Ndn_crypto.Hmac.verify ~key ~msg ~tag:(Ndn_crypto.Hmac.mac ~key msg));
    QCheck.Test.make ~name:"hmac differs from plain hash" ~count:100
      QCheck.(string_of_size Gen.(int_range 1 50))
      (fun msg -> Ndn_crypto.Hmac.mac ~key:"k" msg <> Ndn_crypto.Sha256.digest msg);
  ]

let () =
  Alcotest.run "ndn_crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "empty" `Quick test_sha_empty;
          Alcotest.test_case "abc" `Quick test_sha_abc;
          Alcotest.test_case "448 bits" `Quick test_sha_448_bits;
          Alcotest.test_case "896 bits" `Quick test_sha_896_bits;
          Alcotest.test_case "million a" `Slow test_sha_million_a;
          Alcotest.test_case "block boundaries" `Quick test_sha_exact_block_boundaries;
          Alcotest.test_case "streaming splits" `Quick test_sha_streaming_split_invariance;
          Alcotest.test_case "double finalize" `Quick test_sha_double_finalize_rejected;
          Alcotest.test_case "feed after finalize" `Quick
            test_sha_feed_after_finalize_rejected;
          Alcotest.test_case "feed_bytes bounds" `Quick test_sha_feed_bytes_bounds;
          Alcotest.test_case "sizes" `Quick test_sha_digest_size;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 case 1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "rfc4231 case 2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "rfc4231 case 3" `Quick test_hmac_rfc4231_case3;
          Alcotest.test_case "rfc4231 case 6" `Quick test_hmac_rfc4231_case6_long_key;
          Alcotest.test_case "rfc4231 case 7" `Quick
            test_hmac_rfc4231_case7_long_key_long_data;
          Alcotest.test_case "key sensitivity" `Quick test_hmac_key_sensitivity;
          Alcotest.test_case "message sensitivity" `Quick test_hmac_message_sensitivity;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "hex",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "uppercase" `Quick test_hex_uppercase_decode;
          Alcotest.test_case "errors" `Quick test_hex_errors;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
