(* In-text claims of the paper regenerated as tables:
   - Section III: multi-segment amplification Pr[success] = 1-0.41^n;
   - Section III: scope = 2 probing as a delay-free oracle;
   - Section VI: the naive k-threshold scheme leaks exact request
     counts, Random-Cache does not;
   - Section VI: correlation attack and the grouping defence. *)

let run ~scale () =
  Format.printf "@.================ In-text claims ================@.";

  (* --- segment amplification --- *)
  Format.printf
    "@.--- Section III: segment amplification (p = 0.59 per object) ---@.";
  Format.printf "%10s | %18s | %18s@." "segments" "paper 1-0.41^n" "measured (vote)";
  let empirical_at = [ 1; 2; 4; 8 ] in
  let trials = 20 * scale in
  List.iter
    (fun n ->
      let theory = Attack.Segment_attack.paper_example_row ~segments:n in
      let measured =
        if List.mem n empirical_at then
          let r =
            Attack.Segment_attack.run
              ~make_setup:(fun ~seed -> Ndn.Network.wan_producer ~seed ())
              ~segments:n ~trials ()
          in
          Printf.sprintf "%.3f (p=%.2f)" r.Attack.Segment_attack.amplified_success
            r.Attack.Segment_attack.per_object_success
        else "-"
      in
      Format.printf "%10d | %18.4f | %18s@." n theory measured)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Format.printf
    "(measured uses realizable majority voting; the paper's formula assumes the@.";
  Format.printf
    " adversary can recognize its one successful classification)@.";

  (* --- scope probing --- *)
  Format.printf "@.--- Section III: scope = 2 probing oracle ---@.";
  let setup = Ndn.Network.lan () in
  let cached = Ndn.Name.of_string "/prod/seen" in
  let fresh = Ndn.Name.of_string "/prod/unseen" in
  Attack.Probe.warm setup cached;
  let verdict n =
    match Attack.Scope_probe.probe setup n with
    | Attack.Scope_probe.Cached -> "CACHED"
    | Attack.Scope_probe.Not_cached -> "not cached"
  in
  Format.printf "probe %s -> %s@." (Ndn.Name.to_string cached) (verdict cached);
  Format.printf "probe %s -> %s@." (Ndn.Name.to_string fresh) (verdict fresh);

  (* --- naive scheme leak --- *)
  Format.printf "@.--- Section VI: naive k-threshold scheme leaks exact counts ---@.";
  Format.printf "%18s | %18s | %12s@." "prior requests" "recovered (naive)"
    "probes used";
  List.iter
    (fun prior ->
      match Attack.Counter_attack.demonstrate ~k:5 ~prior_requests:prior with
      | Some o ->
        Format.printf "%18d | %18d | %12d@." prior
          o.Attack.Counter_attack.recovered_count o.Attack.Counter_attack.probes_used
      | None -> Format.printf "%18d | %18s | %12s@." prior "none" "-")
    [ 0; 1; 2; 3; 4; 5 ];
  let correct = ref 0 in
  let trials = 100 in
  for seed = 0 to trials - 1 do
    match
      Attack.Counter_attack.random_cache_resists ~kdist:(Core.Kdist.Uniform 60)
        ~prior_requests:3 ~seed
    with
    | Some o -> if o.Attack.Counter_attack.recovered_count = 3 then incr correct
    | None -> ()
  done;
  Format.printf
    "same attack on Uniform-Random-Cache (K=60, 3 prior requests): exact in %d/%d trials@."
    !correct trials;

  (* --- correlation attack --- *)
  Format.printf "@.--- Section VI: correlated content and grouping ---@.";
  Format.printf "%34s | %10s | %12s@." "configuration" "accuracy" "theoretical";
  let m = 30 and prior = 3 in
  let show label grouping kdist =
    let r =
      Attack.Correlation_attack.run ~grouping ~kdist ~related_contents:m
        ~prior_requests:prior ~trials:(200 * scale) ()
    in
    let theory =
      match grouping with
      | Core.Grouping.By_content ->
        Printf.sprintf "%.3f"
          (Attack.Correlation_attack.advantage_theoretical ~kdist
             ~related_contents:m ~prior_requests:prior)
      | _ -> "-"
    in
    Format.printf "%34s | %10.3f | %12s@." label
      r.Attack.Correlation_attack.adversary_accuracy theory
  in
  show "ungrouped, K=200" Core.Grouping.By_content (Core.Kdist.Uniform 200);
  show "grouped (namespace), K=200" (Core.Grouping.By_namespace 2)
    (Core.Kdist.Uniform 200);
  show "grouped (namespace), K=200*M"
    (Core.Grouping.By_namespace 2)
    (Core.Kdist.Uniform (200 * m));
  show "grouped (content-id), K=200*M" Core.Grouping.By_content_id
    (Core.Kdist.Uniform (200 * m));
  Format.printf
    "(grouping needs the threshold domain scaled by group size M to conceal@.";
  Format.printf " whole-set fetches; see DESIGN.md and the attack library docs)@.";

  (* --- two-way interaction detection --- *)
  Format.printf
    "@.--- Section I: detecting two-way interactive communication ---@.";
  Format.printf "%26s | %10s | %6s | %6s@." "naming" "accuracy" "FP" "FN";
  List.iter
    (fun (label, naming) ->
      let r =
        Attack.Interaction_attack.run ~naming ~trials:(6 * scale) ~frames:12 ()
      in
      Format.printf "%26s | %10.2f | %6d | %6d@." label
        r.Attack.Interaction_attack.accuracy
        r.Attack.Interaction_attack.false_positives
        r.Attack.Interaction_attack.false_negatives)
    [
      ("predictable frame names", Core.Interactive_session.Predictable);
      ( "unpredictable (HMAC) names",
        Core.Interactive_session.Unpredictable "dh-secret" );
    ];
  Format.printf
    "(the adversary scope-probes the shared router for both parties' recent@.";
  Format.printf
    " frames; unpredictable naming leaves it nothing to ask for)@."
