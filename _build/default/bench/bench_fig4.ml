(* Figure 4: closed-form utility comparison of Uniform-Random-Cache and
   Exponential-Random-Cache.

   (a) u(c) for c = 1..100 at delta = 0.05, k in {1, 5}, with the
       exponential scheme at eps in {0.03, 0.04, 0.05};
   (b) maximal utility difference (exponential - uniform) when
       eps = -ln(1 - delta) (the K -> infinity point of the
       exponential scheme), for delta in {0.01, 0.03, 0.05}. *)

open Privacy

let cs = [ 1; 5; 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]

let run_a () =
  let delta = 0.05 in
  Format.printf "@.--- Figure 4(a): utility at delta = %.2f ---@." delta;
  List.iter
    (fun k ->
      let domain_u = Theorems.Uniform.domain_for_delta ~k ~delta in
      let expos =
        List.filter_map
          (fun eps ->
            let alpha = Theorems.Exponential.alpha_for_epsilon ~k ~eps in
            match Theorems.Exponential.domain_for_delta ~k ~alpha ~delta with
            | Some domain -> Some (eps, alpha, domain)
            | None -> None)
          [ 0.03; 0.04; 0.05 ]
      in
      Format.printf "@.k = %d   (uniform: K = %d" k domain_u;
      List.iter
        (fun (eps, alpha, domain) ->
          Format.printf "; expo eps=%.2f: alpha=%.5f K=%d" eps alpha domain)
        expos;
      Format.printf ")@.";
      Format.printf "%6s | %10s" "c" "Uniform";
      List.iter (fun (eps, _, _) -> Format.printf " | %s=%.2f" "Expo eps" eps) expos;
      Format.printf "@.";
      List.iter
        (fun c ->
          Format.printf "%6d | %10.4f" c (Theorems.Uniform.utility_paper ~c ~domain:domain_u);
          List.iter
            (fun (_, alpha, domain) ->
              Format.printf " | %13.4f" (Theorems.Exponential.utility_paper ~c ~alpha ~domain))
            expos;
          Format.printf "@.")
        cs)
    [ 1; 5 ]

let run_b () =
  Format.printf
    "@.--- Figure 4(b): utility difference (expo - uniform) at eps = -ln(1-delta) ---@.";
  Format.printf "paper: difference peaks around 0.12 and decays with c@.";
  List.iter
    (fun k ->
      Format.printf "@.k = %d@." k;
      Format.printf "%6s" "c";
      List.iter (fun delta -> Format.printf " | delta=%.2f" delta) [ 0.01; 0.03; 0.05 ];
      Format.printf "@.";
      let max_diff = Hashtbl.create 4 in
      List.iter
        (fun c ->
          Format.printf "%6d" c;
          List.iter
            (fun delta ->
              let domain_u = Theorems.Uniform.domain_for_delta ~k ~delta in
              (* eps = -ln(1-delta) makes alpha^k = 1-delta: the
                 exponential scheme's K -> infinity point. *)
              let eps = -.log (1. -. delta) in
              let alpha = Theorems.Exponential.alpha_for_epsilon ~k ~eps in
              let diff =
                Theorems.Exponential.utility_paper_unbounded ~c ~alpha
                -. Theorems.Uniform.utility_paper ~c ~domain:domain_u
              in
              Hashtbl.replace max_diff delta
                (Float.max diff
                   (Option.value (Hashtbl.find_opt max_diff delta) ~default:neg_infinity));
              Format.printf " | %10.4f" diff)
            [ 0.01; 0.03; 0.05 ];
          Format.printf "@.")
        cs;
      Format.printf "max difference:";
      List.iter
        (fun delta ->
          Format.printf "  delta=%.2f -> %.4f" delta (Hashtbl.find max_diff delta))
        [ 0.01; 0.03; 0.05 ];
      Format.printf "@.")
    [ 1; 5 ]

let run () =
  Format.printf "@.================ Figure 4: privacy-utility trade-off ================@.";
  run_a ();
  run_b ()
