bench/main.mli:
