bench/bench_thms.ml: Attack Bayes Composition Core Dist Format List Outputs Printf Privacy Sim Theorems
