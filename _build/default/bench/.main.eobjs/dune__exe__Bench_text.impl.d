bench/bench_text.ml: Attack Core Format List Ndn Printf
