bench/bench_micro.ml: Analyze Array Bechamel Bechamel_notty Benchmark Core Format Instance Int64 List Measure Ndn Ndn_crypto Notty Notty_unix Printf Sim Staged String Test Time Toolkit Unix Workload
