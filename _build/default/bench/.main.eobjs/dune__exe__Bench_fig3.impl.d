bench/bench_fig3.ml: Attack Format Ndn
