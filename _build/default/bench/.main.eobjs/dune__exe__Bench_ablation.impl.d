bench/bench_ablation.ml: Attack Core Format List Ndn Option Privacy Sim Workload
