bench/bench_fig4.ml: Float Format Hashtbl List Option Privacy Theorems
