bench/bench_fig5.ml: Core Format Printf Workload
