bench/main.ml: Array Bench_ablation Bench_fig3 Bench_fig4 Bench_fig5 Bench_micro Bench_text Bench_thms Format List String Sys
