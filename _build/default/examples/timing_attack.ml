(* Neighbourhood surveillance: the paper's Section III attack as a
   campaign.

     dune exec examples/timing_attack.exe

   The adversary shares a first-hop router with a victim and wants to
   know which of a list of sites the victim visited in the last few
   minutes.  It uses the paper's two-probe procedure (compare d1
   against the always-hit baseline d2), plus the scope=2 oracle as a
   cross-check, then repeats the campaign against a defended router. *)

let sites =
  [
    "/prod/news/frontpage";
    "/prod/health/anxiety-self-test";
    "/prod/jobs/resignation-letter-templates";
    "/prod/sports/scores";
    "/prod/finance/debt-consolidation";
    "/prod/recipes/dinner-ideas";
  ]

let victim_browses = [ 1; 2; 4 ] (* indices of the sites actually visited *)

let run_campaign ~label ~countermeasure =
  Format.printf "@.== %s ==@." label;
  let producer =
    { Ndn.Network.default_producer_config with producer_private = countermeasure <> None }
  in
  let setup = Ndn.Network.lan ~seed:11 ~producer () in
  (match countermeasure with
  | Some cm ->
    ignore (Core.Private_router.attach setup.Ndn.Network.router ~rng:(Sim.Rng.create 2) cm)
  | None -> ());
  (* The victim browses. *)
  List.iteri
    (fun i site ->
      if List.mem i victim_browses then
        ignore
          (Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user
             (Ndn.Name.of_string site)))
    sites;
  (* The adversary sweeps the list with two-probe decisions. *)
  Format.printf "%-45s %-10s %-10s %s@." "site" "timing" "scope=2" "truth";
  let correct = ref 0 in
  List.iteri
    (fun i site ->
      let target = Ndn.Name.of_string site in
      let timing =
        match
          Attack.Probe.two_probe_decision setup ~target
            ~reference:(Ndn.Name.of_string (Printf.sprintf "/prod/ref/%d" i))
            ()
        with
        | Some Attack.Probe.Was_cached -> "VISITED"
        | Some Attack.Probe.Not_cached -> "-"
        | None -> "timeout"
      in
      (* A second adversary instance uses the scope oracle on a fresh
         victim+router (the timing probe above already polluted R). *)
      let truth = List.mem i victim_browses in
      if (timing = "VISITED") = truth then incr correct;
      Format.printf "%-45s %-10s %-10s %s@." site timing "(see below)"
        (if truth then "visited" else "-"))
    sites;
  Format.printf "timing verdicts correct: %d/%d@." !correct (List.length sites);
  (* Scope oracle pass on a fresh, unpolluted router. *)
  let setup2 = Ndn.Network.lan ~seed:12 ~producer () in
  (match countermeasure with
  | Some cm ->
    ignore (Core.Private_router.attach setup2.Ndn.Network.router ~rng:(Sim.Rng.create 3) cm)
  | None -> ());
  List.iteri
    (fun i site ->
      if List.mem i victim_browses then
        ignore
          (Ndn.Network.fetch_rtt setup2.Ndn.Network.net ~from:setup2.Ndn.Network.user
             (Ndn.Name.of_string site)))
    sites;
  let census =
    Attack.Scope_probe.census setup2 (List.map Ndn.Name.of_string sites)
  in
  let correct2 =
    List.fold_left2
      (fun acc (_, verdict) i ->
        let truth = List.mem i victim_browses in
        if (verdict = Attack.Scope_probe.Cached) = truth then acc + 1 else acc)
      0 census
      (List.init (List.length sites) Fun.id)
  in
  Format.printf "scope=2 verdicts correct: %d/%d@." correct2 (List.length sites)

let () =
  Format.printf "== Cache timing attack: browsing surveillance ==@.";
  Format.printf "victim visits sites %s@."
    (String.concat ", " (List.map (fun i -> List.nth sites i) victim_browses));
  run_campaign ~label:"plain NDN router (attack succeeds)" ~countermeasure:None;
  run_campaign ~label:"defended router: content-specific delay"
    ~countermeasure:(Some (Core.Private_router.Delay_private Core.Delay.Content_specific));
  Format.printf
    "@.Note: the defended router also closes the scope=2 oracle — a@.";
  Format.printf
    "scope-limited interest for a hidden hit takes the true miss path@.";
  Format.printf
    "and dies at the scope boundary, exactly as if nothing were cached.@."
