(* Interactive-traffic privacy with unpredictable names (Section V-A).

     dune exec examples/voip_privacy.exe

   Alice (consumer side) and Bob (producer side) run a VoIP-style
   session across the shared router R.  They derive each frame's name
   from a shared secret with HMAC-SHA256, so the adversary — who also
   sits behind R — cannot construct any name to probe R's cache with.
   Meanwhile a lost frame re-requested by Alice is served from R's
   cache, keeping loss recovery fast (the reason interactive traffic
   should not simply disable caching). *)

let () =
  Format.printf "== VoIP session privacy via unpredictable names ==@.@.";
  let producer_cfg =
    { Ndn.Network.default_producer_config with strict_match = true }
  in
  let setup = Ndn.Network.lan ~producer:producer_cfg () in
  let call_prefix = Ndn.Name.of_string "/prod/alice-bob/call-2013may20" in
  let session = Core.Unpredictable_names.create ~secret:"dh-shared-secret" ~prefix:call_prefix in

  (* Bob's side: serve only authentic session names. *)
  Ndn.Node.add_producer setup.Ndn.Network.producer_host ~prefix:call_prefix
    ~production_delay_ms:0.2 (fun interest ->
      match Core.Unpredictable_names.verify_name session interest.Ndn.Interest.name with
      | Some seq ->
        Some
          (Core.Unpredictable_names.make_data session ~producer:"bob"
             ~key:setup.Ndn.Network.producer_key ~freshness_ms:5000.
             ~payload:(Printf.sprintf "voice-frame-%04d" seq) ~seq ())
      | None -> None);

  (* Alice fetches a burst of frames. *)
  Format.printf "Alice fetches frames 0..9:@.";
  for seq = 0 to 9 do
    let frame = Core.Unpredictable_names.name_of_seq session ~seq in
    match Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user frame with
    | Some rtt ->
      if seq < 3 then Format.printf "  frame %d: %a  %.2f ms@." seq Ndn.Name.pp frame rtt
    | None -> Format.printf "  frame %d: LOST@." seq
  done;
  Format.printf "  ... (names end in an HMAC-derived %d-bit component)@.@."
    Core.Unpredictable_names.guess_space_bits;

  (* Packet loss recovery: re-requesting frame 7 hits R's cache. *)
  let frame7 = Core.Unpredictable_names.name_of_seq session ~seq:7 in
  (match Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user frame7 with
  | Some rtt ->
    Format.printf "Alice re-requests frame 7 (simulating loss): %.2f ms — served from R's cache@." rtt
  | None -> Format.printf "re-request failed@.");

  (* The adversary tries everything it can name. *)
  Format.printf "@.The adversary probes R:@.";
  let probe label name =
    match
      Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.adversary
        ~timeout_ms:400. name
    with
    | Some rtt -> Format.printf "  %-48s -> %.2f ms (LEAK!)@." label rtt
    | None -> Format.printf "  %-48s -> timeout (learns nothing)@." label
  in
  probe "prefix /prod/alice-bob/call-2013may20"
    (Ndn.Name.of_string "/prod/alice-bob/call-2013may20");
  probe "guessing frame number /.../7"
    (Ndn.Name.of_string "/prod/alice-bob/call-2013may20/7");
  probe "guessing a rand component"
    (Ndn.Name.append (Ndn.Name.of_string "/prod/alice-bob/call-2013may20/7")
       "0123456789abcdef0123");
  Format.printf
    "@.Strict matching (footnote 5) stops prefix probing; the HMAC-derived@.";
  Format.printf
    "component stops name guessing.  Cache utility for the honest parties@.";
  Format.printf "is retained (loss recovery above), at zero router cost.@."
