(* Quickstart: the paper's problem and solution in ~60 lines.

     dune exec examples/quickstart.exe

   1. Build the paper's LAN topology (user U, adversary Adv, shared
      router R, producer P).
   2. U fetches a content object; R caches it.
   3. Adv probes R by timing its own request — the cache hit gives U's
      activity away.
   4. Attach the content-specific-delay countermeasure to R and watch
      the same probe fail. *)

let () =
  Format.printf "== NDN cache privacy quickstart ==@.@.";

  (* 1. Topology: U --- R --- P, Adv --- R (Figure 1 of the paper). *)
  let setup = Ndn.Network.lan () in
  let secret = Ndn.Name.of_string "/prod/alice/medical-record" in
  let innocuous = Ndn.Name.of_string "/prod/weather/today" in

  (* 2. The honest user fetches some content; R caches it on the way. *)
  (match Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user secret with
  | Some rtt -> Format.printf "U fetches %a: %.2f ms (from producer P)@." Ndn.Name.pp secret rtt
  | None -> failwith "fetch failed");

  (* 3. The adversary probes both names and compares delays. *)
  let probe label name =
    match Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.adversary name with
    | Some rtt ->
      Format.printf "Adv probes %-32s -> %6.2f ms  (%s)@." label rtt
        (if rtt < 5. then "CACHE HIT: someone requested this!" else "cache miss");
      rtt
    | None -> failwith "probe failed"
  in
  Format.printf "@.-- plain NDN router --@.";
  let hit_rtt = probe "the medical record" secret in
  let miss_rtt = probe "the weather page" innocuous in
  Format.printf "difference: %.2f ms -> Adv learns U's activity with near certainty@."
    (miss_rtt -. hit_rtt);

  (* 4. Same experiment with the countermeasure attached to R. *)
  Format.printf "@.-- router with the content-specific-delay countermeasure --@.";
  let producer = { Ndn.Network.default_producer_config with producer_private = true } in
  let setup = Ndn.Network.lan ~seed:7 ~producer () in
  let _router =
    Core.Private_router.attach setup.Ndn.Network.router ~rng:(Sim.Rng.create 1)
      (Core.Private_router.Delay_private Core.Delay.Content_specific)
  in
  let secret = Ndn.Name.of_string "/prod/alice/medical-record" in
  let innocuous = Ndn.Name.of_string "/prod/weather/today" in
  (match Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user secret with
  | Some rtt -> Format.printf "U fetches the medical record: %.2f ms@." rtt
  | None -> failwith "fetch failed");
  let hit_rtt = probe "the medical record" secret in
  let miss_rtt = probe "the weather page" innocuous in
  Format.printf
    "difference: %.2f ms -> the hidden hit is indistinguishable from a miss@."
    (miss_rtt -. hit_rtt);
  Format.printf
    "@.(the response still came from R's cache: bandwidth is preserved,@.";
  Format.printf
    " only the observable latency mimics a miss — Section V-B of the paper)@."
