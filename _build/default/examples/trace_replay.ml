(* Operator's view: what does cache privacy cost on a real workload?

     dune exec examples/trace_replay.exe -- [requests] [private_fraction]

   Generates the synthetic IRCache-like trace (Section VII), replays it
   through each cache-management algorithm at one cache size, and
   reports the observable hit-rate cost of each privacy level — the
   decision an ISP deploying NDN routers would actually face. *)

let () =
  let requests =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 150_000
  in
  let private_fraction =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.2
  in
  Format.printf "== Trace replay: the price of cache privacy ==@.@.";
  let cfg = { Workload.Ircache.default with Workload.Ircache.requests } in
  let trace = Workload.Ircache.generate cfg in
  Format.printf "workload: %a@." Workload.Trace.pp_summary trace;
  Format.printf "private content fraction: %.0f%%@." (100. *. private_fraction);
  let k = 5 and delta = 0.05 in
  let uniform = Core.Kdist.uniform_for ~k ~delta in
  let expo =
    Option.get (Core.Kdist.exponential_for ~k ~eps:0.005 ~delta)
  in
  Format.printf
    "privacy target: conceal up to k=%d requests per content at delta=%.2f@.@."
    k delta;
  let cache_capacity = 8000 in
  Format.printf "cache: %d entries, LRU@.@." cache_capacity;
  Format.printf "%-30s | %12s | %12s | %14s@." "algorithm" "hit rate" "vs baseline"
    "hidden hits";
  let baseline = ref 0. in
  List.iter
    (fun (label, policy) ->
      let outcome =
        Workload.Replay.replay trace
          {
            Workload.Replay.default_config with
            Workload.Replay.cache_capacity;
            policy;
            private_mode = Workload.Replay.Per_content private_fraction;
          }
      in
      let rate = 100. *. Workload.Replay.observable_hit_rate outcome in
      if !baseline = 0. then baseline := rate;
      Format.printf "%-30s | %11.2f%% | %+11.2f%% | %14d@." label rate
        (rate -. !baseline) outcome.Workload.Replay.hidden_hits)
    [
      ("No privacy (leaky)", Core.Policy.No_privacy);
      ("Exponential-Random-Cache", Core.Policy.Random_cache expo);
      ("Uniform-Random-Cache", Core.Policy.Random_cache uniform);
      ("Always delay private", Core.Policy.Always_delay);
    ];
  Format.printf
    "@.Reading: Random-Cache concedes a few hit-rate points for a provable@.";
  Format.printf
    "(k, eps, delta) guarantee; Always-Delay maximizes privacy at the cost@.";
  Format.printf "of every private hit.  Bandwidth is preserved in all cases —@.";
  Format.printf "hidden hits are served from the cache, only slower.@."
