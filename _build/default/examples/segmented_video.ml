(* Segmented content: amplification attack vs grouped defence.

     dune exec examples/segmented_video.exe

   Large NDN content is split into many content objects (Section II).
   That helps the adversary — probing any one segment suffices, and
   probing all of them amplifies a weak distinguisher (Section III) —
   unless the router groups the segments into ONE Algorithm-1 unit via
   the producer-assigned content id (Section VI). *)

let () =
  Format.printf "== Segmented video: amplification and the grouping defence ==@.@.";

  (* A 16-segment "video" published by P, producer-private, all
     segments sharing one content id. *)
  let publish setup =
    let base = setup.Ndn.Network.prefix in
    let base = Ndn.Name.concat base (Ndn.Name.of_string "/movies/holiday.avi") in
    Ndn.Node.add_producer setup.Ndn.Network.producer_host ~prefix:base
      (Ndn.Segmentation.producer_handler ~base ~producer:"P"
         ~key:setup.Ndn.Network.producer_key ~producer_private:true
         ~content_id:"holiday.avi"
         ~payload:(String.init 16_000 (fun i -> Char.chr (32 + (i mod 95))))
         ~segment_size:1000 ());
    base
  in

  (* 1. Undefended router: one viewer watches; the adversary probes a
     single segment and wins on timing. *)
  Format.printf "-- undefended router --@.";
  let setup = Ndn.Network.lan ~seed:21 () in
  let base = publish setup in
  let watched = ref None in
  Ndn.Segmentation.fetch_all setup.Ndn.Network.user ~base
    ~on_complete:(fun r -> watched := r)
    ();
  Ndn.Network.run setup.Ndn.Network.net;
  Format.printf "viewer downloaded the video: %s@."
    (match !watched with Some p -> Printf.sprintf "%d bytes" (String.length p) | None -> "FAILED");
  let probe_segment setup i =
    Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.adversary
      (Ndn.Segmentation.segment_name ~base i)
  in
  (match probe_segment setup 7 with
  | Some rtt ->
    Format.printf "adversary probes segment 7: %.2f ms -> %s@." rtt
      (if rtt < 5. then "CACHE HIT — the video was watched here!" else "miss")
  | None -> Format.printf "probe timed out@.");

  (* 2. Defended router: the video is popular (three viewings), and the
     adversary sweeps all 16 segments.  Ungrouped Random-Cache lets it
     sample 16 independent thresholds; content-id grouping gives it one
     threshold — but ONLY helps when the threshold domain is scaled by
     the group size (16 segments per viewing advance the group counter
     by 16). *)
  let attack_with ~seed ~grouping ~domain ~label =
    let setup = Ndn.Network.lan ~seed () in
    let base = publish setup in
    ignore
      (Core.Private_router.attach setup.Ndn.Network.router
         ~rng:(Sim.Rng.create ((seed * 13) + 1))
         (Core.Private_router.Random_cache_mimic
            { kdist = Core.Kdist.Uniform domain; grouping }));
    for _viewing = 1 to 3 do
      let done_ = ref None in
      Ndn.Segmentation.fetch_all setup.Ndn.Network.user ~base
        ~on_complete:(fun r -> done_ := r)
        ();
      Ndn.Network.run setup.Ndn.Network.net
    done;
    (* The adversary probes every segment once and counts fast replies. *)
    let fast = ref 0 in
    for i = 0 to 15 do
      match probe_segment setup i with
      | Some rtt when rtt < 5. -> incr fast
      | _ -> ()
    done;
    Format.printf "%-58s %2d/16 fast %s@." label !fast
      (if !fast > 0 then "-> watched (LEAK)" else "-> learns nothing")
  in
  Format.printf
    "@.-- defended router, the video viewed 3 times, adversary sweeps all segments --@.";
  attack_with ~seed:22 ~grouping:Core.Grouping.By_content ~domain:24
    ~label:"  ungrouped, K=24 (16 independent thresholds):";
  attack_with ~seed:23 ~grouping:Core.Grouping.By_content_id ~domain:24
    ~label:"  content-id grouped, K=24 (counter >> K: exhausted!):";
  attack_with ~seed:24 ~grouping:Core.Grouping.By_content_id ~domain:(24 * 16)
    ~label:"  content-id grouped, K=24*16 (domain scaled by M):";
  Format.printf
    "@.(The scaled-domain outcome is itself probabilistic: the single group@.";
  Format.printf
    " threshold hides the history unless it was drawn below the accumulated@.";
  Format.printf
    " counter — here ~1/8.  That residual is exactly Theorem VI.1's delta.)@.";
  Format.printf
    "@.Grouping alone is not enough: one viewing advances the shared counter by@.";
  Format.printf
    "all 16 segments, so the threshold domain must scale with the group size@.";
  Format.printf
    "(EXPERIMENTS.md, finding 3).  The producer declared content_id on every@.";
  Format.printf
    "segment and the router built the group automatically as objects flowed by.@."
