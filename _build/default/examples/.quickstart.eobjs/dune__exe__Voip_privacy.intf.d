examples/voip_privacy.mli:
