examples/segmented_video.ml: Char Core Format Ndn Printf Sim String
