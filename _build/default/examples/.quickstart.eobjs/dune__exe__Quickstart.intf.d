examples/quickstart.mli:
