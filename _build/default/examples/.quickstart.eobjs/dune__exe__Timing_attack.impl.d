examples/timing_attack.ml: Attack Core Format Fun List Ndn Printf Sim String
