examples/trace_replay.ml: Array Core Format List Option Sys Workload
