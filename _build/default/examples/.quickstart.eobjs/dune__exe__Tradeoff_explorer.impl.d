examples/tradeoff_explorer.ml: Array Format List Outputs Privacy Sys Theorems
