examples/quickstart.ml: Core Format Ndn Sim
