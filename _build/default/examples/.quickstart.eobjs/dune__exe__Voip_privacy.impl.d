examples/voip_privacy.ml: Core Format Ndn Printf
