examples/timing_attack.mli:
