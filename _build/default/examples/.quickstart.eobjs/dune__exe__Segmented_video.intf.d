examples/segmented_video.mli:
