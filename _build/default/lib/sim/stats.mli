(** Streaming and batch summary statistics. *)

type t
(** A mutable accumulator using Welford's online algorithm, so variance
    is numerically stable even for millions of samples. *)

val create : unit -> t

val add : t -> float -> unit

val add_list : t -> float list -> unit

val count : t -> int

val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val total : t -> float

val merge : t -> t -> t
(** Combine two accumulators (parallel Welford merge). *)

val pp : Format.formatter -> t -> unit

(** Batch helpers over float arrays (these sort a copy; O(n log n)). *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation
    between order statistics.
    @raise Invalid_argument on an empty array or [p] out of range. *)

val median : float array -> float

val mean_of : float array -> float

val stddev_of : float array -> float
