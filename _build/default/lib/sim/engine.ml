type handle = { mutable cancelled : bool; action : unit -> unit }

type t = {
  queue : handle Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
}

let create () = { queue = Heap.create (); clock = 0.; next_seq = 0; processed = 0 }

let now t = t.clock

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  let h = { cancelled = false; action = f } in
  Heap.add t.queue ~time ~seq:t.next_seq h;
  t.next_seq <- t.next_seq + 1;
  h

let schedule t ~delay f =
  let delay = if delay < 0. then 0. else delay in
  schedule_at t ~time:(t.clock +. delay) f

let cancel h = h.cancelled <- true

let is_cancelled h = h.cancelled

let step t =
  match Heap.pop_min t.queue with
  | None -> false
  | Some (time, _seq, h) ->
    t.clock <- time;
    if not h.cancelled then begin
      t.processed <- t.processed + 1;
      h.action ()
    end;
    true

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.peek_min t.queue with
    | None -> continue := false
    | Some (time, _, _) -> (
      match until with
      | Some limit when time > limit ->
        (* Leave future events queued; advance the clock to the limit so
           that a subsequent [run ~until] picks up where we stopped. *)
        t.clock <- limit;
        continue := false
      | _ ->
        ignore (step t);
        decr budget)
  done

let pending t = Heap.length t.queue

let events_processed t = t.processed
