lib/sim/rng.mli:
