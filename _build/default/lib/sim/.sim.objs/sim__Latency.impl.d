lib/sim/latency.ml: Format List Rng
