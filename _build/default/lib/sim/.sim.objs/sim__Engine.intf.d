lib/sim/engine.mli:
