lib/sim/latency.mli: Format Rng
