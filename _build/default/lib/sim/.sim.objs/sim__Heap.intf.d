lib/sim/heap.mli:
