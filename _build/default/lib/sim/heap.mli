(** Binary min-heap keyed by [(float, int)] pairs.

    The event queue of the simulator: the float key is virtual time, the
    integer key is an insertion sequence number used to break ties so
    that events scheduled for the same instant fire in FIFO order
    (a deterministic total order, independent of heap internals). *)

type 'a t

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int
(** Number of queued elements. *)

val is_empty : 'a t -> bool

val add : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert an element with the given priority key. *)

val pop_min : 'a t -> (float * int * 'a) option
(** Remove and return the element with the smallest key, or [None] when
    empty. *)

val peek_min : 'a t -> (float * int * 'a) option
(** Return the smallest-keyed element without removing it. *)

val clear : 'a t -> unit
(** Remove all elements. *)
