(* Splitmix64. Reference: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014. The state is a single
   64-bit counter advanced by the golden-ratio increment; each output is
   a strong 64-bit mix of the counter. *)

type t = {
  mutable state : int64;
  mutable gamma : int64; (* stream increment; odd *)
  mutable spare_gaussian : float option;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Mix used to derive gammas for split generators; must differ from
   [mix64] to avoid correlations between state and gamma streams. *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logor z 1L in
  (* Reject gammas with too few bit transitions, as in the reference
     implementation. *)
  let transitions = Int64.logxor z (Int64.shift_right_logical z 1) in
  let popcount x =
    let rec go acc x = if Int64.equal x 0L then acc else go (acc + 1) (Int64.logand x (Int64.sub x 1L)) in
    go 0 x
  in
  if popcount transitions < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create seed =
  { state = mix64 (Int64.of_int seed); gamma = golden_gamma; spare_gaussian = None }

let copy t = { state = t.state; gamma = t.gamma; spare_gaussian = t.spare_gaussian }

let next_seed t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let bits64 t = mix64 (next_seed t)

let split t =
  let s = bits64 t in
  let g = mix_gamma (next_seed t) in
  { state = s; gamma = g; spare_gaussian = None }

(* Uniform int in [0, bound) by rejection on the top 62 bits (OCaml's
   native int is 63-bit; we keep everything nonnegative). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = max_int in
  let rec draw () =
    let r = Int64.to_int (bits64 t) land mask in
    let v = r mod bound in
    (* Reject the final partial block to remove modulo bias. *)
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random mantissa bits. *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992. *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t 1. < p

let gaussian t ~mean ~stddev =
  match t.spare_gaussian with
  | Some g ->
    t.spare_gaussian <- None;
    mean +. (stddev *. g)
  | None ->
    (* Box–Muller; re-draw u1 until nonzero so log is finite. *)
    let rec nonzero () =
      let u = float t 1. in
      if u > 0. then u else nonzero ()
    in
    let u1 = nonzero () and u2 = float t 1. in
    let r = sqrt (-2. *. log u1) in
    let theta = 2. *. Float.pi *. u2 in
    t.spare_gaussian <- Some (r *. sin theta);
    mean +. (stddev *. r *. cos theta)

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let rec nonzero () =
    let u = float t 1. in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let geometric t ~p =
  if p <= 0. || p > 1. then invalid_arg "Rng.geometric: p must be in (0, 1]";
  if p = 1. then 0
  else
    (* Inverse transform: floor(log U / log (1 - p)). *)
    let rec nonzero () =
      let u = float t 1. in
      if u > 0. then u else nonzero ()
    in
    int_of_float (Float.floor (log (nonzero ()) /. log (1. -. p)))

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t n k =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Selection sampling (Knuth 3.4.2, Algorithm S): one pass, O(n). *)
  let rec go i remaining acc =
    if remaining = 0 then List.rev acc
    else if bernoulli t (float_of_int remaining /. float_of_int (n - i)) then
      go (i + 1) (remaining - 1) (i :: acc)
    else go (i + 1) remaining acc
  in
  go 0 k []
