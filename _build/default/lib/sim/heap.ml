(* Array-backed binary min-heap. Keys are (time, seq); [seq] breaks ties
   deterministically. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let key_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let ndata = Array.make ncap entry in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if key_lt t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && key_lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && key_lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~time ~seq payload =
  let entry = { time; seq; payload } in
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_min t =
  if t.size = 0 then None
  else
    let e = t.data.(0) in
    Some (e.time, e.seq, e.payload)

let pop_min t =
  if t.size = 0 then None
  else begin
    let e = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (e.time, e.seq, e.payload)
  end

let clear t =
  t.data <- [||];
  t.size <- 0
