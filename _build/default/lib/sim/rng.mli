(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator draws from an explicit
    generator so that experiments are reproducible given a seed.  The
    implementation is splitmix64 (Steele, Lea & Flood, OOPSLA 2014): a
    64-bit counter-based generator with excellent statistical quality,
    trivially splittable, and independent of the OCaml stdlib [Random]
    state (so library users cannot perturb experiments by calling
    [Random.self_init]). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator positioned at the same point in
    the stream as [t]; advancing one does not affect the other. *)

val split : t -> t
(** [split t] deterministically derives a new generator whose stream is
    (statistically) independent of the remainder of [t]'s stream.
    Advances [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)]. [bound] must be positive.
    Uses rejection sampling, so the result is exactly uniform.
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via the Box–Muller transform (the spare deviate is
    cached in the generator state). *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1. /. rate]).
    @raise Invalid_argument if [rate <= 0.]. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] counts failures before the first success of a
    Bernoulli([p]) sequence: [Pr(X = k) = (1-p) ^ k * p], [k >= 0].
    @raise Invalid_argument unless [0. < p <= 1.]. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.
    @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t n k] draws [k] distinct integers from
    [\[0, n)], in increasing order.
    @raise Invalid_argument if [k < 0 || k > n]. *)
