let block_size = Sha256.block_size

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key < block_size then
    key ^ String.make (block_size - String.length key) '\000'
  else key

let xor_pad key byte =
  String.init block_size (fun i -> Char.chr (Char.code key.[i] lxor byte))

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.feed inner (xor_pad key 0x36);
  Sha256.feed inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.feed outer (xor_pad key 0x5c);
  Sha256.feed outer inner_digest;
  Sha256.finalize outer

let hex_mac ~key msg = Hex.encode (mac ~key msg)

let verify ~key ~msg ~tag =
  let expected = mac ~key msg in
  if String.length tag <> String.length expected then false
  else begin
    let diff = ref 0 in
    String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code expected.[i])) tag;
    !diff = 0
  end
