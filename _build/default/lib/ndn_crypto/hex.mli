(** Lowercase hexadecimal codecs for raw byte strings. *)

val encode : string -> string
(** [encode s] maps each byte of [s] to two lowercase hex characters. *)

val decode : string -> string
(** Inverse of {!encode}.  Accepts upper- and lowercase digits.
    @raise Invalid_argument on odd length or non-hex characters. *)
