lib/ndn_crypto/hex.mli:
