lib/ndn_crypto/hmac.mli:
