lib/ndn_crypto/sha256.mli:
