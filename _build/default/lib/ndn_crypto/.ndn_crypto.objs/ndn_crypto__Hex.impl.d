lib/ndn_crypto/hex.ml: Bytes Char String
