(** HMAC-SHA256 (RFC 2104).

    The pseudo-random function used by the mutual ("unpredictable
    names") countermeasure: interacting parties derive the random name
    component of each content object as [HMAC(shared_secret, context)]
    (paper, Section V-A). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag.  Keys longer than the
    block size are hashed first, per RFC 2104. *)

val hex_mac : key:string -> string -> string
(** Like {!mac} but hex-encoded (64 chars). *)

val verify : key:string -> msg:string -> tag:string -> bool
(** Constant-time-ish comparison of [tag] against [mac ~key msg].
    (Timing uniformity is best-effort; the simulator's adversary model
    never times this code.) *)
