(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for content-object signatures and as the compression function
    behind {!Hmac}, which in turn drives the unpredictable-name
    countermeasure of the paper (Section V-A).  Performance is adequate
    for simulation workloads; this is not a constant-time
    implementation and must not be used against real adversaries. *)

type ctx
(** Streaming hash context. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb bytes.  May be called repeatedly. *)

val feed_bytes : ctx -> bytes -> off:int -> len:int -> unit

val finalize : ctx -> string
(** Produce the 32-byte digest.  The context must not be reused
    afterwards.
    @raise Invalid_argument on double finalization. *)

val digest : string -> string
(** One-shot hash: 32 raw bytes. *)

val hex_digest : string -> string
(** One-shot hash, lowercase hex (64 chars). *)

val digest_size : int
(** 32. *)

val block_size : int
(** 64 — needed by HMAC. *)
