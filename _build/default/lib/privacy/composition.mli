(** Composition of cache-privacy guarantees.

    The paper analyzes one content in isolation; a real adversary
    probes many.  If each content independently satisfies
    (ε, δ)-indistinguishability, what does the adversary learn from n
    of them jointly?  Standard differential-privacy composition applies
    because Definition IV.1 is the same indistinguishability notion:

    - {b basic}: (nε, nδ) always holds;
    - {b advanced} (Dwork–Rothblum–Vadhan): for any slack δ' > 0,
      (ε√(2n ln(1/δ')) + nε(eᵉ−1), nδ + δ') — sublinear in n for
      small ε;
    - {b exact}: for the finite output laws of Random-Cache we can also
      compute the n-fold product distributions and measure the joint δ
      directly (exponential in n; for small n only).

    The uniform scheme has ε = 0, so its joint guarantee is exactly
    (0, nδ): privacy degrades linearly in the number of probed private
    contents — a deployment sizing K should budget for the adversary's
    whole campaign, not a single content. *)

val basic : eps:float -> delta:float -> n:int -> float * float
(** [(n·eps, n·delta)].
    @raise Invalid_argument if [n <= 0] or arguments are negative. *)

val advanced :
  eps:float -> delta:float -> n:int -> delta_slack:float -> float * float
(** The advanced composition bound; requires [delta_slack > 0]. *)

val best : eps:float -> delta:float -> n:int -> delta_slack:float -> float * float
(** Whichever of {!basic} / {!advanced} gives the smaller ε at total δ
    [n·delta + delta_slack] (basic is reported with the same δ budget
    so the comparison is fair). *)

val exact_joint_delta :
  k_dist:int Dist.t -> k:int -> probes:int -> eps:float -> n:int -> float
(** Exact joint leakage: the adversary probes [n] {e independent}
    contents, all in the same (S0 vs S1) situation; computes
    [min_delta] between the n-fold product output laws at total budget
    [n·eps], maximized over the per-content state gap [x <= k].  Keep
    [n <= 4] (support is [probes^n]). *)
