(** Finite discrete probability distributions.

    The unit of account of the paper's formal framework: states of a
    cache-management algorithm induce distributions over observable
    outputs, and privacy is a statement about pairs of such
    distributions (Definition IV.1). *)

type 'a t
(** Normalized: probabilities are positive and sum to 1 (up to floating
    rounding).  Equal outcomes are merged. *)

val of_list : ('a * float) list -> 'a t
(** Build from weighted outcomes; weights are normalized.  Outcomes
    with non-positive weight are dropped.
    @raise Invalid_argument if the total weight is not positive or any
    weight is negative. *)

val of_fun : n:int -> (int -> float) -> int t
(** [of_fun ~n pmf] over [\[0, n)].
    @raise Invalid_argument as {!of_list}. *)

val constant : 'a -> 'a t

val uniform_int : int -> int t
(** Uniform over [\[0, n)].
    @raise Invalid_argument if [n <= 0]. *)

val geometric_truncated : alpha:float -> domain:int -> int t
(** The paper's G̃(α, 0, K−1):
    [Pr(r) = (1−α)·α^r / (1−α^K)] on [\[0, K)].  [alpha = 1] is the
    uniform limit.
    @raise Invalid_argument unless [0 < alpha <= 1] and [domain > 0]. *)

val support : 'a t -> 'a list
(** Outcomes with positive probability, unspecified order. *)

val prob : 'a t -> 'a -> float
(** [0.] outside the support. *)

val size : 'a t -> int

val map : ('a -> 'b) -> 'a t -> 'b t
(** Pushforward; merges collisions. *)

val expect : 'a t -> f:('a -> float) -> float

val mean : int t -> float

val fold : 'a t -> init:'acc -> f:('acc -> 'a -> float -> 'acc) -> 'acc

val to_list : 'a t -> ('a * float) list

val product : 'a t -> 'b t -> ('a * 'b) t
(** Joint law of two independent draws. *)

val self_product : 'a t -> n:int -> 'a list t
(** Joint law of [n] independent draws (support grows as [size^n]; keep
    [n] small).
    @raise Invalid_argument if [n <= 0]. *)

val total_variation : 'a t -> 'a t -> float
(** [1/2 Σ |p1 − p2|] over the union of supports. *)

val check_normalized : 'a t -> bool
(** Total mass within 1e-9 of 1 — used by property tests. *)
