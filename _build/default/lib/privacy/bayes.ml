let likelihood ~k_dist ~prior_requests ~probes =
  Outputs.miss_count_dist ~k_dist ~prior:prior_requests ~probes

let posterior ~k_dist ~count_prior ~probes ~observed_misses =
  let weighted =
    Dist.fold count_prior ~init:[] ~f:(fun acc count p_count ->
        let p_obs =
          Dist.prob (likelihood ~k_dist ~prior_requests:count ~probes) observed_misses
        in
        (count, p_count *. p_obs) :: acc)
  in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. weighted in
  if total <= 0. then
    invalid_arg "Bayes.posterior: observation impossible under the prior";
  Dist.of_list weighted

let map_estimate d =
  let best =
    Dist.fold d ~init:None ~f:(fun acc x p ->
        match acc with
        | Some (_, bp) when bp > p -> acc
        | Some (bx, bp) when bp = p && bx < x -> acc
        | _ -> Some (x, p))
  in
  match best with
  | Some (x, _) -> x
  | None -> invalid_arg "Bayes.map_estimate: empty distribution"

let log2 x = log x /. log 2.

let entropy d =
  -.Dist.fold d ~init:0. ~f:(fun acc _ p ->
        if p > 0. then acc +. (p *. log2 p) else acc)

let mutual_information ~k_dist ~count_prior ~probes =
  (* I(X; M) = sum_x sum_m P(x) P(m|x) log2 (P(m|x) / P(m)). *)
  let conditionals =
    Dist.fold count_prior ~init:[] ~f:(fun acc x p_x ->
        (x, p_x, likelihood ~k_dist ~prior_requests:x ~probes) :: acc)
  in
  (* Marginal P(m). *)
  let marginal_tbl = Hashtbl.create 16 in
  List.iter
    (fun (_, p_x, cond) ->
      Dist.fold cond ~init:() ~f:(fun () m p ->
          let prev = Option.value (Hashtbl.find_opt marginal_tbl m) ~default:0. in
          Hashtbl.replace marginal_tbl m (prev +. (p_x *. p))))
    conditionals;
  List.fold_left
    (fun acc (_, p_x, cond) ->
      Dist.fold cond ~init:acc ~f:(fun acc m p_m_given_x ->
          if p_m_given_x <= 0. then acc
          else
            let p_m = Hashtbl.find marginal_tbl m in
            acc +. (p_x *. p_m_given_x *. log2 (p_m_given_x /. p_m))))
    0. conditionals
