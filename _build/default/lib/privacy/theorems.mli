(** Closed-form privacy and utility of the paper's two Random-Cache
    instantiations (Theorems VI.1–VI.4), plus the parameter solvers
    used to regenerate Figure 4.

    {b Reproduction note.}  The paper's two utility theorems silently
    use different miss-counting conventions:

    - Theorem VI.2 (uniform) counts [min(k_C, c)] misses, ignoring the
      unconditional first-request miss of Algorithm 1, line 8;
    - Theorem VI.4 (exponential) counts [min(k_C + 1, c)], which is
      exactly what Algorithm 1 produces.

    We therefore expose, for each scheme, the closed form {e as
    printed in the paper} ([expected_misses_paper], used to regenerate
    Figure 4 faithfully) and the {e exact} expectation of Algorithm 1
    computed from the threshold pmf ([expected_misses_exact], validated
    against Monte-Carlo in the test suite).  The two differ by at most
    one miss.  EXPERIMENTS.md quantifies the discrepancy. *)

val utility_of_misses : c:int -> misses:float -> float
(** [u(c) = 1 − E(M(c))/c] (Definition VI.1 via the miss form). *)

val exact_expected_misses : k_dist:int Dist.t -> c:int -> float
(** Ground truth for any Random-Cache instantiation: [E min(k_C+1, c)].
    @raise Invalid_argument if [c <= 0]. *)

module Uniform : sig
  (** Uniform-Random-Cache: K = U(0, K). *)

  val epsilon : float
  (** 0 — uniform thresholds shift outputs without changing ratios. *)

  val delta : k:int -> domain:int -> float
  (** Theorem VI.1: [2k/K] (a mass of "bad" outputs across both
      distributions; can exceed 1 when [K < 2k]).

      {b Reproduction note.}  The bound is exact for probing sequences
      of length [t >= K]; for shorter sequences the all-miss output
      aggregates several thresholds and acquires a probability ratio
      above [e^0], so (k, 0, 2k/K)-privacy can fail — see the pinned
      regression test and EXPERIMENTS.md. *)

  val domain_for_delta : k:int -> delta:float -> int
  (** Smallest K with [2k/K <= delta].
      @raise Invalid_argument if [delta <= 0.] or [k <= 0]. *)

  val expected_misses_paper : c:int -> domain:int -> float
  (** Theorem VI.2 as printed: [c(1 − (c+1)/2K)] for [c < K], else
      [K/2]. *)

  val expected_misses_exact : c:int -> domain:int -> float
  (** Algorithm 1 ground truth: [c(1 − (c−1)/2K)] for [c <= K], else
      [(K+1)/2]. *)

  val utility_paper : c:int -> domain:int -> float

  val utility_exact : c:int -> domain:int -> float

  val k_dist : domain:int -> int Dist.t
end

module Exponential : sig
  (** Exponential-Random-Cache: K = G̃(α, 0, K−1). *)

  val epsilon : k:int -> alpha:float -> float
  (** Theorem VI.3: [−k ln α]. *)

  val alpha_for_epsilon : k:int -> eps:float -> float
  (** Inverse: [exp(−eps/k)]. *)

  val delta : k:int -> alpha:float -> domain:int -> float
  (** Theorem VI.3: [(1 − α^k + α^{K−k} − α^K) / (1 − α^K)]. *)

  val delta_limit : k:int -> alpha:float -> float
  (** [lim K→∞ delta = 1 − α^k] — the smallest achievable δ for a
      given α (paper, "Comparison of Proposed Schemes"). *)

  val domain_for_delta : k:int -> alpha:float -> delta:float -> int option
  (** Smallest K achieving the target δ; [None] when
      [delta < delta_limit] (infeasible at this α). *)

  val expected_misses_paper : c:int -> alpha:float -> domain:int -> float
  (** Theorem VI.4 as printed. *)

  val expected_misses_exact : c:int -> alpha:float -> domain:int -> float
  (** Algorithm 1 ground truth via the truncated-geometric pmf. *)

  val expected_misses_paper_unbounded : c:int -> alpha:float -> float
  (** K = ∞ limit of the printed form: [(1 − α^c)/(1 − α)] — used for
      Figure 4(b), where ε = −ln(1−δ) forces K → ∞. *)

  val utility_paper : c:int -> alpha:float -> domain:int -> float

  val utility_exact : c:int -> alpha:float -> domain:int -> float

  val utility_paper_unbounded : c:int -> alpha:float -> float

  val k_dist : alpha:float -> domain:int -> int Dist.t
end
