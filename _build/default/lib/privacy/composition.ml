let check_args ~eps ~delta ~n =
  if n <= 0 then invalid_arg "Composition: n must be positive";
  if eps < 0. || delta < 0. then invalid_arg "Composition: negative budget"

let basic ~eps ~delta ~n =
  check_args ~eps ~delta ~n;
  (float_of_int n *. eps, float_of_int n *. delta)

let advanced ~eps ~delta ~n ~delta_slack =
  check_args ~eps ~delta ~n;
  if delta_slack <= 0. then invalid_arg "Composition.advanced: slack must be positive";
  let nf = float_of_int n in
  let eps' =
    (eps *. sqrt (2. *. nf *. log (1. /. delta_slack)))
    +. (nf *. eps *. (exp eps -. 1.))
  in
  (eps', (nf *. delta) +. delta_slack)

let best ~eps ~delta ~n ~delta_slack =
  let b_eps, _ = basic ~eps ~delta ~n in
  let a_eps, a_delta = advanced ~eps ~delta ~n ~delta_slack in
  if a_eps < b_eps then (a_eps, a_delta)
  else ((b_eps, (float_of_int n *. delta) +. delta_slack) : float * float)

let exact_joint_delta ~k_dist ~k ~probes ~eps ~n =
  if n <= 0 then invalid_arg "Composition.exact_joint_delta: n must be positive";
  let rec worst x acc =
    if x > k then acc
    else begin
      let d0, d1 = Outputs.state_pair ~k_dist ~x ~probes in
      let j0 = Dist.self_product d0 ~n and j1 = Dist.self_product d1 ~n in
      let joint = Indist.min_delta ~eps:(float_of_int n *. eps) j0 j1 in
      worst (x + 1) (Float.max acc joint)
    end
  in
  worst 1 0.
