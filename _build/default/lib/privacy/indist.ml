let union_outcomes a b =
  let outcomes = Hashtbl.create 16 in
  List.iter (fun x -> Hashtbl.replace outcomes x ()) (Dist.support a);
  List.iter (fun x -> Hashtbl.replace outcomes x ()) (Dist.support b);
  Hashtbl.fold (fun x () acc -> x :: acc) outcomes []

let ratio_ok ~eps p1 p2 =
  (* Both positive here. *)
  let r = log (p1 /. p2) in
  Float.abs r <= eps +. 1e-12

let min_delta ~eps a b =
  if eps < 0. then invalid_arg "Indist.min_delta: negative eps";
  List.fold_left
    (fun acc x ->
      let p1 = Dist.prob a x and p2 = Dist.prob b x in
      if p1 > 0. && p2 > 0. && ratio_ok ~eps p1 p2 then acc else acc +. p1 +. p2)
    0. (union_outcomes a b)

let min_eps ~delta a b =
  if delta < 0. then invalid_arg "Indist.min_eps: negative delta";
  let candidates =
    List.filter_map
      (fun x ->
        let p1 = Dist.prob a x and p2 = Dist.prob b x in
        if p1 > 0. && p2 > 0. then Some (Float.abs (log (p1 /. p2))) else None)
      (union_outcomes a b)
    |> List.sort_uniq compare
  in
  let candidates = 0. :: candidates in
  let rec first_ok = function
    | [] -> infinity
    | eps :: rest ->
      if min_delta ~eps a b <= delta +. 1e-12 then eps else first_ok rest
  in
  first_ok candidates

let is_indistinguishable ~eps ~delta a b = min_delta ~eps a b <= delta +. 1e-12

let distinguishing_advantage a b = 0.5 +. (Dist.total_variation a b /. 2.)
