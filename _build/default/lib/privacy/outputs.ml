let misses_observed ~k ~prior ~probes =
  if k < 0 || prior < 0 then invalid_arg "Outputs.misses_observed: negative argument";
  if probes <= 0 then invalid_arg "Outputs.misses_observed: probes must be positive";
  if prior = 0 then
    (* Probe 1 is the content's first-ever request: an unconditional
       miss (Algorithm 1, line 8).  Probe j >= 2 is request j with
       counter j - 1, a miss iff j - 1 <= k. *)
    min (k + 1) probes
  else
    (* Probe j is request prior + j, a miss iff prior + j - 1 <= k. *)
    let m = k - prior + 1 in
    if m < 0 then 0 else min m probes

let miss_count_dist ~k_dist ~prior ~probes =
  Dist.map (fun k -> misses_observed ~k ~prior ~probes) k_dist

let state_pair ~k_dist ~x ~probes =
  ( miss_count_dist ~k_dist ~prior:0 ~probes,
    miss_count_dist ~k_dist ~prior:x ~probes )

let achieved_delta ~k_dist ~k ~probes ~eps =
  let rec worst x acc =
    if x > k then acc
    else
      let d0, d1 = state_pair ~k_dist ~x ~probes in
      worst (x + 1) (Float.max acc (Indist.min_delta ~eps d0 d1))
  in
  worst 1 0.
