lib/privacy/indist.ml: Dist Float Hashtbl List
