lib/privacy/dist.ml: Float Hashtbl List Option
