lib/privacy/composition.ml: Dist Float Indist Outputs
