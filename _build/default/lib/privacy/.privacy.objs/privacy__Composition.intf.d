lib/privacy/composition.mli: Dist
