lib/privacy/theorems.ml: Dist Float
