lib/privacy/indist.mli: Dist
