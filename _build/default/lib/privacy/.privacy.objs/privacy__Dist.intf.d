lib/privacy/dist.mli:
