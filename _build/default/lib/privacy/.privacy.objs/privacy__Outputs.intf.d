lib/privacy/outputs.mli: Dist
