lib/privacy/outputs.ml: Dist Float Indist
