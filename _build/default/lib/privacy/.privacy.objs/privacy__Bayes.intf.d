lib/privacy/bayes.mli: Dist
