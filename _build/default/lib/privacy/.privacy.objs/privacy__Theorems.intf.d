lib/privacy/theorems.mli: Dist
