lib/privacy/bayes.ml: Dist Hashtbl List Option Outputs
