let utility_of_misses ~c ~misses = 1. -. (misses /. float_of_int c)

let exact_expected_misses ~k_dist ~c =
  if c <= 0 then invalid_arg "Theorems.exact_expected_misses: c must be positive";
  Dist.expect k_dist ~f:(fun r -> float_of_int (min (r + 1) c))

module Uniform = struct
  let epsilon = 0.

  (* Definition IV.1's delta is Pr(D1 in Omega2) + Pr(D2 in Omega2),
     which ranges over [0, 2]; do not clamp at 1. *)
  let delta ~k ~domain =
    if domain <= 0 then invalid_arg "Uniform.delta: empty domain";
    2. *. float_of_int k /. float_of_int domain

  let domain_for_delta ~k ~delta =
    if delta <= 0. then invalid_arg "Uniform.domain_for_delta: delta must be positive";
    if k <= 0 then invalid_arg "Uniform.domain_for_delta: k must be positive";
    int_of_float (Float.ceil (2. *. float_of_int k /. delta))

  let expected_misses_paper ~c ~domain =
    if c <= 0 || domain <= 0 then invalid_arg "Uniform.expected_misses_paper";
    let cf = float_of_int c and kf = float_of_int domain in
    if c < domain then cf *. (1. -. ((cf +. 1.) /. (2. *. kf))) else kf /. 2.

  let expected_misses_exact ~c ~domain =
    if c <= 0 || domain <= 0 then invalid_arg "Uniform.expected_misses_exact";
    let cf = float_of_int c and kf = float_of_int domain in
    if c <= domain then cf *. (1. -. ((cf -. 1.) /. (2. *. kf)))
    else (kf +. 1.) /. 2.

  let utility_paper ~c ~domain =
    utility_of_misses ~c ~misses:(expected_misses_paper ~c ~domain)

  let utility_exact ~c ~domain =
    utility_of_misses ~c ~misses:(expected_misses_exact ~c ~domain)

  let k_dist ~domain = Dist.uniform_int domain
end

module Exponential = struct
  let epsilon ~k ~alpha =
    if alpha <= 0. || alpha > 1. then invalid_arg "Exponential.epsilon: bad alpha";
    -.float_of_int k *. log alpha

  let alpha_for_epsilon ~k ~eps =
    if eps < 0. then invalid_arg "Exponential.alpha_for_epsilon: negative eps";
    exp (-.eps /. float_of_int k)

  let delta ~k ~alpha ~domain =
    if domain <= 0 then invalid_arg "Exponential.delta: empty domain";
    if alpha >= 1. -. 1e-12 then Uniform.delta ~k ~domain (* uniform limit *)
    else
    let kf = float_of_int k and bigk = float_of_int domain in
    let ak = alpha ** kf in
    let abigk = alpha ** bigk in
    let abigk_minus_k = alpha ** (bigk -. kf) in
    (1. -. ak +. abigk_minus_k -. abigk) /. (1. -. abigk)

  let delta_limit ~k ~alpha = 1. -. (alpha ** float_of_int k)

  let domain_for_delta ~k ~alpha ~delta:target =
    if target <= 0. then invalid_arg "Exponential.domain_for_delta";
    if delta_limit ~k ~alpha > target +. 1e-12 then None
    else begin
      (* delta is decreasing in K; exponential search then binary. *)
      let f domain = delta ~k ~alpha ~domain in
      let rec upper domain =
        if f domain <= target +. 1e-12 then domain
        else if domain > 1 lsl 40 then domain (* give up growing; caller gets best effort *)
        else upper (2 * domain)
      in
      let hi = upper (max 2 (2 * k)) in
      let rec bisect lo hi =
        (* invariant: f hi <= target < f lo (roughly) *)
        if hi - lo <= 1 then hi
        else
          let mid = (lo + hi) / 2 in
          if f mid <= target +. 1e-12 then bisect lo mid else bisect mid hi
      in
      let lo = max 1 k in
      Some (if f lo <= target +. 1e-12 then lo else bisect lo hi)
    end

  let expected_misses_paper ~c ~alpha ~domain =
    if c <= 0 || domain <= 0 then invalid_arg "Exponential.expected_misses_paper";
    if alpha >= 1. -. 1e-12 then Uniform.expected_misses_paper ~c ~domain
    else
    let cf = float_of_int c and bigk = float_of_int domain in
    let ac = alpha ** cf in
    let abigk = alpha ** bigk in
    if c < domain then
      ((1. -. ac -. (cf *. abigk)) /. (1. -. abigk))
      +. (alpha *. (1. -. ac) /. ((1. -. abigk) *. (1. -. alpha)))
    else
      ((1. -. ((bigk +. 1.) *. abigk)) /. (1. -. abigk)) +. (alpha /. (1. -. alpha))

  let expected_misses_exact ~c ~alpha ~domain =
    exact_expected_misses ~k_dist:(Dist.geometric_truncated ~alpha ~domain) ~c

  let expected_misses_paper_unbounded ~c ~alpha =
    if c <= 0 then invalid_arg "Exponential.expected_misses_paper_unbounded";
    if alpha >= 1. then float_of_int c
    else (1. -. (alpha ** float_of_int c)) /. (1. -. alpha)

  let utility_paper ~c ~alpha ~domain =
    utility_of_misses ~c ~misses:(expected_misses_paper ~c ~alpha ~domain)

  let utility_exact ~c ~alpha ~domain =
    utility_of_misses ~c ~misses:(expected_misses_exact ~c ~alpha ~domain)

  let utility_paper_unbounded ~c ~alpha =
    utility_of_misses ~c ~misses:(expected_misses_paper_unbounded ~c ~alpha)

  let k_dist ~alpha ~domain = Dist.geometric_truncated ~alpha ~domain
end
