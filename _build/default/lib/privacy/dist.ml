(* Backed by an association list sorted only on demand; supports are
   small (output spaces of probing sequences), so a Hashtbl merge at
   construction is all the cleverness needed. *)

type 'a t = ('a, float) Hashtbl.t

let of_list pairs =
  let tbl = Hashtbl.create (max 8 (List.length pairs)) in
  let total =
    List.fold_left
      (fun acc (_, w) ->
        if w < 0. then invalid_arg "Dist.of_list: negative weight";
        acc +. w)
      0. pairs
  in
  if total <= 0. then invalid_arg "Dist.of_list: total weight must be positive";
  List.iter
    (fun (x, w) ->
      if w > 0. then
        let prev = Option.value (Hashtbl.find_opt tbl x) ~default:0. in
        Hashtbl.replace tbl x (prev +. (w /. total)))
    pairs;
  tbl

let of_fun ~n pmf = of_list (List.init n (fun i -> (i, pmf i)))

let constant x = of_list [ (x, 1.) ]

let uniform_int n =
  if n <= 0 then invalid_arg "Dist.uniform_int: n must be positive";
  of_fun ~n (fun _ -> 1.)

let geometric_truncated ~alpha ~domain =
  if alpha <= 0. || alpha > 1. then
    invalid_arg "Dist.geometric_truncated: alpha must be in (0, 1]";
  if domain <= 0 then invalid_arg "Dist.geometric_truncated: empty domain";
  (* of_list renormalizes, so the raw geometric weights suffice; this
     also gives the alpha = 1 uniform limit for free. *)
  of_fun ~n:domain (fun r -> alpha ** float_of_int r)

let support t = Hashtbl.fold (fun x _ acc -> x :: acc) t []

let prob t x = Option.value (Hashtbl.find_opt t x) ~default:0.

let size t = Hashtbl.length t

let map f t =
  of_list (Hashtbl.fold (fun x p acc -> (f x, p) :: acc) t [])

let expect t ~f = Hashtbl.fold (fun x p acc -> acc +. (p *. f x)) t 0.

let mean t = expect t ~f:float_of_int

let fold t ~init ~f = Hashtbl.fold (fun x p acc -> f acc x p) t init

let to_list t = Hashtbl.fold (fun x p acc -> (x, p) :: acc) t []

let product a b =
  of_list
    (Hashtbl.fold
       (fun x px acc ->
         Hashtbl.fold (fun y py acc -> (((x, y), px *. py)) :: acc) b acc)
       a [])

let self_product t ~n =
  if n <= 0 then invalid_arg "Dist.self_product: n must be positive";
  let rec go n =
    if n = 1 then map (fun x -> [ x ]) t
    else
      let rest = go (n - 1) in
      map (fun (x, xs) -> x :: xs) (product t rest)
  in
  go n

let total_variation a b =
  let outcomes = Hashtbl.create 16 in
  Hashtbl.iter (fun x _ -> Hashtbl.replace outcomes x ()) a;
  Hashtbl.iter (fun x _ -> Hashtbl.replace outcomes x ()) b;
  Hashtbl.fold
    (fun x () acc -> acc +. Float.abs (prob a x -. prob b x))
    outcomes 0.
  /. 2.

let check_normalized t =
  let total = Hashtbl.fold (fun _ p acc -> acc +. p) t 0. in
  Float.abs (total -. 1.) < 1e-9
