(** Exact output distributions of Random-Cache probing sequences.

    An adversary probing one content [t] times through Algorithm 1
    observes a sequence that is always a (possibly empty) run of cache
    misses followed by cache hits, so the observation is fully
    described by the number of misses.  Given the distribution of the
    per-content threshold k_C and the number of *prior* requests for
    the content (the router state the adversary wants to learn), the
    miss-count distribution is exactly computable — this is what the
    proofs of Theorems VI.1 and VI.3 enumerate, and what the property
    tests check those theorems against. *)

val misses_observed : k:int -> prior:int -> probes:int -> int
(** Deterministic core of Algorithm 1: how many of [probes]
    consecutive requests are answered as misses when the content's
    threshold is [k] ([kC]) and [prior] requests happened before the
    probes.  Request number [i] (1-based, across the content's whole
    lifetime) is a miss iff [i = 1] (the object must first be fetched)
    or [i - 1 <= k].
    @raise Invalid_argument on negative arguments or [probes = 0]. *)

val miss_count_dist : k_dist:int Dist.t -> prior:int -> probes:int -> int Dist.t
(** Distribution of {!misses_observed} when [kC] is drawn from
    [k_dist]. *)

val state_pair :
  k_dist:int Dist.t -> x:int -> probes:int -> int Dist.t * int Dist.t
(** The two output distributions compared by Definition IV.3: state S0
    (never requested, [prior = 0]) versus state S1 ([prior = x],
    [1 <= x <= k]). *)

val achieved_delta : k_dist:int Dist.t -> k:int -> probes:int -> eps:float -> float
(** The exact δ achieved by a Random-Cache instantiation at privacy
    budget [eps], against states that differ by up to [k] prior
    requests and adversaries probing [probes] times:
    [max over x in 1..k of Indist.min_delta ~eps (S0, S1 x)].
    (k, eps, ·)-privacy (Definition IV.3) holds with any δ at least
    this value — benches confront Theorems VI.1/VI.3 with it. *)
