(** Bayesian quantification of what the probing adversary learns.

    (ε, δ)-indistinguishability bounds the worst case; this module
    computes the {e actual} information flow: the posterior over the
    hidden request count given an observed probing transcript, and the
    mutual information between router state and observation.  It is
    the quantitative bridge between Definition IV.3 and "how many bits
    does the adversary get?" *)

val likelihood :
  k_dist:int Dist.t -> prior_requests:int -> probes:int -> int Dist.t
(** [P(observed misses | state)] — re-exported from {!Outputs} for
    reading convenience. *)

val posterior :
  k_dist:int Dist.t ->
  count_prior:int Dist.t ->
  probes:int ->
  observed_misses:int ->
  int Dist.t
(** [P(hidden count | m misses observed in t probes)] by Bayes' rule
    over the finite count support.
    @raise Invalid_argument if the observation has zero probability
    under every count in the prior's support. *)

val map_estimate : int Dist.t -> int
(** Maximum-a-posteriori count (ties: smallest). *)

val mutual_information :
  k_dist:int Dist.t -> count_prior:int Dist.t -> probes:int -> float
(** [I(count; observation)] in bits: the average leakage of one
    [probes]-long probing campaign about the hidden request count.
    0 = perfect privacy; [H(count)] = total disclosure. *)

val entropy : int Dist.t -> float
(** Shannon entropy in bits. *)
