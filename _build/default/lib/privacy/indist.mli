(** Exact (ε, δ)-probabilistic indistinguishability (Definition IV.1).

    Two distributions D1, D2 are (ε, δ)-probabilistically
    indistinguishable if the output space can be split into Ω1 — where
    every outcome's probability ratio is within [e^±ε] — and a "bad"
    set Ω2 with [Pr(D1 ∈ Ω2) + Pr(D2 ∈ Ω2) ≤ δ].

    For finite distributions the optimal split is computable exactly:
    put into Ω2 precisely the outcomes violating the ratio bound. *)

val min_delta : eps:float -> 'a Dist.t -> 'a Dist.t -> float
(** The smallest δ for which the pair is (ε, δ)-indistinguishable.
    An outcome with probability 0 in exactly one distribution always
    violates any finite ratio bound and lands in Ω2.
    @raise Invalid_argument if [eps < 0.]. *)

val min_eps : delta:float -> 'a Dist.t -> 'a Dist.t -> float
(** The smallest ε for which the pair is (ε, δ)-indistinguishable —
    exact, by scanning the finitely many candidate log-ratios.
    Returns [infinity] when even ε = ∞ leaves more than δ of one-sided
    mass (cannot happen: one-sided outcomes are the only ones that
    survive ε = ∞, so the result is finite iff their mass is ≤ δ).
    @raise Invalid_argument if [delta < 0.]. *)

val is_indistinguishable : eps:float -> delta:float -> 'a Dist.t -> 'a Dist.t -> bool

val distinguishing_advantage : 'a Dist.t -> 'a Dist.t -> float
(** Success probability of the Bayes-optimal single-observation
    distinguisher with uniform prior:
    [1/2 + TV(D1, D2)/2] — the quantity the timing-attack detector
    realizes empirically. *)
