(** Artificial-delay countermeasures for content-distribution traffic
    (paper, Section V-B).

    A consumer-facing router hides cache hits on private content by
    delaying them so they look like misses.  Three flavours:

    - {b Constant γ}: every private hit waits γ ms; private misses are
      padded so the total interest→data delay is also γ.  Simple, but
      either penalizes nearby content (γ too high) or leaks for
      far-away content (actual delay > γ).
    - {b Content-specific γ_C}: the router remembers the delay it
      originally experienced fetching each object and replays exactly
      that on every hit.  Safest; keeps far-away content slow forever.
    - {b Dynamic}: starts at γ_C and decays as the object becomes
      popular, mimicking the object getting cached at a nearby router —
      never below the two-hop floor required by Definition IV.2. *)

type t =
  | Constant of float  (** γ in milliseconds. *)
  | Content_specific
  | Dynamic of { floor : float; half_life_requests : float }
      (** Delay halves every [half_life_requests] requests, never below
          [floor] (the RTT of content cached two hops away). *)

val hit_delay : t -> fetch_delay:float -> hits_so_far:int -> float
(** Artificial delay to apply to a cache hit on private content.
    [fetch_delay] is the recorded γ_C (for [Constant], ignored);
    [hits_so_far] drives the dynamic decay. *)

val miss_padding : t -> actual_delay:float -> float
(** Extra delay to add when forwarding a fetched private object
    downstream, so the total matches the policy's target ([0] for
    content-specific and dynamic policies, whose target equals the
    actual delay). *)

val pp : Format.formatter -> t -> unit
