type t =
  | Constant of float
  | Content_specific
  | Dynamic of { floor : float; half_life_requests : float }

let hit_delay t ~fetch_delay ~hits_so_far =
  match t with
  | Constant gamma -> gamma
  | Content_specific -> fetch_delay
  | Dynamic { floor; half_life_requests } ->
    let decay = 0.5 ** (float_of_int hits_so_far /. half_life_requests) in
    Float.max floor (fetch_delay *. decay)

let miss_padding t ~actual_delay =
  match t with
  | Constant gamma -> Float.max 0. (gamma -. actual_delay)
  | Content_specific | Dynamic _ -> 0.

let pp ppf = function
  | Constant gamma -> Format.fprintf ppf "constant(%.1fms)" gamma
  | Content_specific -> Format.pp_print_string ppf "content-specific"
  | Dynamic { floor; half_life_requests } ->
    Format.fprintf ppf "dynamic(floor=%.1fms, half-life=%.0f reqs)" floor
      half_life_requests
