type kind = No_privacy | Always_delay | Random_cache of Kdist.t

type t = {
  kind : kind;
  grouping : Grouping.t;
  registry : Ndn.Name.t Ndn.Name.Tbl.t;
  algorithm : Random_cache.t option;
}

let create ?(grouping = Grouping.By_content) ~rng kind =
  let algorithm =
    match kind with
    | Random_cache kdist -> Some (Random_cache.create ~kdist ~rng ())
    | No_privacy | Always_delay -> None
  in
  { kind; grouping; registry = Ndn.Name.Tbl.create 64; algorithm }

let kind t = t.kind

let label t =
  match t.kind with
  | No_privacy -> "No Privacy"
  | Always_delay -> "Always Delay Private Content"
  | Random_cache (Kdist.Uniform _) -> "Uniform-Random-Cache"
  | Random_cache (Kdist.Truncated_geometric _) -> "Exponential-Random-Cache"
  | Random_cache (Kdist.Constant _) -> "Naive-Threshold-Cache"
  | Random_cache (Kdist.Weighted _) -> "Custom-Random-Cache"

let on_request t ~name ~is_private ~cached =
  match t.kind with
  | No_privacy -> if cached then Random_cache.Hit else Random_cache.Miss
  | Always_delay ->
    if cached && not is_private then Random_cache.Hit else Random_cache.Miss
  | Random_cache _ ->
    let algorithm = Option.get t.algorithm in
    if not is_private then
      if cached then Random_cache.Hit else Random_cache.Miss
    else begin
      (* Every request for private content advances Algorithm 1, even
         when the object is momentarily evicted: the router state S
         counts forwarded requests, not cache residency. *)
      let key = Grouping.key t.grouping ~registry:t.registry name in
      let output = Random_cache.on_request algorithm key in
      if cached then output else Random_cache.Miss
    end

let reset t =
  Ndn.Name.Tbl.reset t.registry;
  match t.algorithm with Some a -> Random_cache.reset a | None -> ()
