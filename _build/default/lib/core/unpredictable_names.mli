(** The mutual countermeasure for interactive traffic (paper, Section
    V-A): unpredictable names.

    The two (or more) parties of an interactive session share a secret
    and derive the last component of every content name from it with a
    PRF (HMAC-SHA256 here).  An adversary who cannot eavesdrop cannot
    construct the names, so it cannot probe router caches for them —
    while retransmitted interests from legitimate parties still enjoy
    in-network caching near the loss point.  Content carries
    {!Ndn.Data.t.strict_match} so prefix probing (footnote 5) fails
    too. *)

type session

val create : secret:string -> prefix:Ndn.Name.t -> session
(** A session between parties sharing [secret], exchanging content
    under [prefix] (e.g. ["/alice/skype/0"]). *)

val prefix : session -> Ndn.Name.t

val name_of_seq : session -> seq:int -> Ndn.Name.t
(** The full content name of sequence number [seq]:
    [prefix / seq / rand] where
    [rand = HMAC(secret, prefix || seq)] (hex, truncated).  Both
    parties compute identical names; outsiders cannot.
    @raise Invalid_argument if [seq < 0]. *)

val rand_component : session -> seq:int -> string
(** Just the unpredictable component. *)

val verify_name : session -> Ndn.Name.t -> int option
(** If the name is a well-formed session name, return its sequence
    number; [None] otherwise (wrong prefix, malformed, or forged rand
    component).  Producers use this to answer only authentic
    interests. *)

val guess_space_bits : int
(** Entropy of the rand component in bits (how many names an adversary
    would need to enumerate per sequence number). *)

val make_data :
  session ->
  producer:string ->
  key:string ->
  ?freshness_ms:float ->
  payload:string ->
  seq:int ->
  unit ->
  Ndn.Data.t
(** Produce the content object for a sequence number: named by
    {!name_of_seq}, [strict_match] set, short freshness by default
    (interactive content is useless stale). *)
