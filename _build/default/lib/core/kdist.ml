type t =
  | Uniform of int
  | Truncated_geometric of { alpha : float; domain : int }
  | Constant of int
  | Weighted of (int * float) list

let uniform_for ~k ~delta =
  Uniform (Privacy.Theorems.Uniform.domain_for_delta ~k ~delta)

let exponential_for ~k ~eps ~delta =
  let alpha = Privacy.Theorems.Exponential.alpha_for_epsilon ~k ~eps in
  match Privacy.Theorems.Exponential.domain_for_delta ~k ~alpha ~delta with
  | Some domain -> Some (Truncated_geometric { alpha; domain })
  | None -> None

let sample_weighted rng pairs =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. pairs in
  let u = Sim.Rng.float rng total in
  let rec pick acc = function
    | [] -> invalid_arg "Kdist.sample: empty weighted distribution"
    | [ (v, _) ] -> v
    | (v, w) :: rest -> if acc +. w > u then v else pick (acc +. w) rest
  in
  pick 0. pairs

let sample t rng =
  match t with
  | Uniform domain -> Sim.Rng.int rng domain
  | Truncated_geometric { alpha; domain } ->
    if alpha >= 1. then Sim.Rng.int rng domain
    else
      (* Rejection from the untruncated geometric keeps the exact
         conditional law; acceptance probability is 1 - alpha^domain. *)
      let rec draw () =
        let g = Sim.Rng.geometric rng ~p:(1. -. alpha) in
        if g < domain then g else draw ()
      in
      draw ()
  | Constant k -> k
  | Weighted pairs -> sample_weighted rng pairs

let to_dist = function
  | Uniform domain -> Privacy.Dist.uniform_int domain
  | Truncated_geometric { alpha; domain } ->
    Privacy.Dist.geometric_truncated ~alpha ~domain
  | Constant k -> Privacy.Dist.constant k
  | Weighted pairs -> Privacy.Dist.of_list pairs

let mean t = Privacy.Dist.mean (to_dist t)

let pp ppf = function
  | Uniform domain -> Format.fprintf ppf "U(0,%d)" domain
  | Truncated_geometric { alpha; domain } ->
    Format.fprintf ppf "G~(%.5f,0,%d)" alpha (domain - 1)
  | Constant k -> Format.fprintf ppf "const(%d)" k
  | Weighted pairs -> Format.fprintf ppf "weighted(%d outcomes)" (List.length pairs)
