type t = { k : int; counts : int ref Ndn.Name.Tbl.t }

let create ~k =
  if k < 0 then invalid_arg "Naive_scheme.create: negative k";
  { k; counts = Ndn.Name.Tbl.create 64 }

let k t = t.k

let on_request t key =
  match Ndn.Name.Tbl.find_opt t.counts key with
  | None ->
    Ndn.Name.Tbl.replace t.counts key (ref 0);
    Random_cache.Miss
  | Some c ->
    incr c;
    if !c <= t.k then Random_cache.Miss else Random_cache.Hit

let request_count t key =
  match Ndn.Name.Tbl.find_opt t.counts key with None -> 0 | Some c -> !c

let reset t = Ndn.Name.Tbl.reset t.counts
