(** The non-private naïve scheme of Section VI — an attackable
    baseline, NOT a countermeasure.

    "The algorithm always generates a cache miss iff c_C ≤ k ... a
    cache hit indicates that at least k requests have been generated."
    Because the threshold k is public and deterministic, an adversary
    counting its own probes until the first hit recovers the *exact*
    number of prior requests ({!Attack.Counter_attack} implements the
    recovery). *)

type t

val create : k:int -> t
(** @raise Invalid_argument if [k < 0]. *)

val k : t -> int

val on_request : t -> Ndn.Name.t -> Random_cache.output
(** Deterministic threshold test: request number [c] (1-based) is a
    miss iff [c <= k] — with the same first-request bookkeeping as
    Algorithm 1. *)

val request_count : t -> Ndn.Name.t -> int

val reset : t -> unit
