type session = { secret : string; prefix : Ndn.Name.t }

(* 20 hex chars = 80 bits: far beyond any feasible probing campaign,
   short enough to keep names readable in traces. *)
let rand_hex_len = 20

let guess_space_bits = rand_hex_len * 4

let create ~secret ~prefix = { secret; prefix }

let prefix t = t.prefix

let rand_component t ~seq =
  if seq < 0 then invalid_arg "Unpredictable_names: negative seq";
  let msg = Ndn.Name.to_string t.prefix ^ "|" ^ string_of_int seq in
  String.sub (Ndn_crypto.Hmac.hex_mac ~key:t.secret msg) 0 rand_hex_len

let name_of_seq t ~seq =
  Ndn.Name.append (Ndn.Name.append t.prefix (string_of_int seq)) (rand_component t ~seq)

let verify_name t name =
  if not (Ndn.Name.is_strict_prefix ~prefix:t.prefix name) then None
  else
    let rest =
      (* Components after the session prefix. *)
      let rec drop n xs = if n = 0 then xs else match xs with [] -> [] | _ :: r -> drop (n - 1) r in
      drop (Ndn.Name.length t.prefix) (Ndn.Name.components name)
    in
    match rest with
    | [ seq_str; rand ] -> (
      match int_of_string_opt seq_str with
      | Some seq when seq >= 0 ->
        if String.equal rand (rand_component t ~seq) then Some seq else None
      | Some _ | None -> None)
    | _ -> None

let make_data t ~producer ~key ?(freshness_ms = 250.) ~payload ~seq () =
  Ndn.Data.create ~strict_match:true ~freshness_ms ~producer ~key ~payload
    (name_of_seq t ~seq)
