(** Threshold distributions for Random-Cache (the random variable K of
    Algorithm 1).

    This is the sampling-side twin of the analytic distributions in
    {!Privacy.Dist}: {!sample} draws a concrete per-content threshold
    k_C; {!to_dist} exposes the same law to the formal framework so
    code and analysis can never drift apart. *)

type t =
  | Uniform of int
      (** U(0, K): Uniform-Random-Cache.  Payload is the domain size K. *)
  | Truncated_geometric of { alpha : float; domain : int }
      (** G̃(α, 0, K−1): Exponential-Random-Cache. *)
  | Constant of int
      (** Degenerate threshold — the insecure naïve scheme of Section
          VI, kept as an attackable baseline. *)
  | Weighted of (int * float) list
      (** Arbitrary finite threshold law, for ablations. *)

val uniform_for : k:int -> delta:float -> t
(** The Uniform-Random-Cache instantiation achieving
    (k, 0, δ)-privacy: domain [K = ⌈2k/δ⌉] (Theorem VI.1). *)

val exponential_for : k:int -> eps:float -> delta:float -> t option
(** The Exponential-Random-Cache instantiation achieving
    (k, ε, δ)-privacy: [α = e^{−ε/k}] and the smallest feasible domain
    (Theorem VI.3); [None] when δ < 1 − α^k is unachievable. *)

val sample : t -> Sim.Rng.t -> int
(** Draw a threshold k_C. *)

val to_dist : t -> int Privacy.Dist.t
(** The exact law of {!sample}. *)

val mean : t -> float

val pp : Format.formatter -> t -> unit
