(** Cache-privacy policies at the request/response level — the
    algorithmic layer replayed against traces in the paper's Section
    VII evaluation (our Figure 5).

    A policy sees, for each incoming request: the (group) name, whether
    the content is privacy-sensitive, and whether it is really in the
    cache; it answers with the *observable* outcome — what the
    requesting consumer experiences.  A delayed/hidden hit is
    observationally a miss, which is exactly how the paper accounts
    cache-hit rates. *)

type kind =
  | No_privacy
      (** Baseline: the cache answers truthfully. *)
  | Always_delay
      (** Section V-B basic protocol: every request for cached private
          content is answered like a miss (the response is served from
          the cache but artificially delayed, preserving bandwidth). *)
  | Random_cache of Kdist.t
      (** Algorithm 1 with the given threshold distribution
          ({!Kdist.Uniform} = Uniform-Random-Cache,
          {!Kdist.Truncated_geometric} = Exponential-Random-Cache). *)

type t

val create : ?grouping:Grouping.t -> rng:Sim.Rng.t -> kind -> t
(** [grouping] (default {!Grouping.By_content}) keys Algorithm 1 state
    by content group to resist correlation attacks. *)

val kind : t -> kind

val label : t -> string
(** Display name matching the paper's legend, e.g.
    ["Uniform-Random-Cache"]. *)

val on_request :
  t -> name:Ndn.Name.t -> is_private:bool -> cached:bool -> Random_cache.output
(** Observable outcome of one request.  Real misses ([cached = false])
    are always observable misses — "CM can hide cache hits but cannot
    hide cache misses" (Section IV); Algorithm-1 counters still advance
    on them. *)

val reset : t -> unit
