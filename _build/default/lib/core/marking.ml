type verdict = Private | Public

type t = { triggered : unit Ndn.Name.Tbl.t }

let create () = { triggered = Ndn.Name.Tbl.create 64 }

let reserved_component = "private"

let name_marked_private name =
  match Ndn.Name.last name with
  | Some c -> String.equal c reserved_component
  | None -> false

let classify t ~name ~producer_private ~consumer_private =
  let producer_private = producer_private || name_marked_private name in
  if producer_private then Private
  else if Ndn.Name.Tbl.mem t.triggered name then Public
  else if consumer_private then Private
  else begin
    (* First non-private interest: trigger — the object is non-private
       for the rest of its cache residency. *)
    Ndn.Name.Tbl.replace t.triggered name ();
    Public
  end

let is_triggered t name = Ndn.Name.Tbl.mem t.triggered name

let on_evicted t name = Ndn.Name.Tbl.remove t.triggered name

let reset t = Ndn.Name.Tbl.reset t.triggered
