(** Two-party interactive communication over NDN (Section V-A's traffic
    class, and the victim of Section I's combined attack).

    Both parties continuously play producer and consumer: each serves
    its own outgoing frames under its prefix and pulls the peer's.
    Naming is either {e predictable} ([prefix/<seq>] — the attackable
    default) or {e unpredictable} (HMAC-derived last component from a
    shared secret, which is the paper's countermeasure for this traffic
    class). *)

type naming =
  | Predictable
  | Unpredictable of string  (** Shared secret seeding the PRF. *)

type t

val start :
  Ndn.Network.conversation_setup ->
  naming:naming ->
  frames:int ->
  ?interval_ms:float ->
  ?freshness_ms:float ->
  unit ->
  t
(** Wire producers on both endpoints and schedule the exchange: every
    [interval_ms] (default 20 ms — a voice frame cadence) Alice
    requests Bob's next frame and vice versa, [frames] times each.
    Returns immediately; run the network to let the call happen. *)

val frames_delivered : t -> int * int
(** (frames Alice received, frames Bob received) so far. *)

val complete : t -> bool
(** Both directions delivered every frame. *)

val frame_name : t -> [ `Alice | `Bob ] -> seq:int -> Ndn.Name.t
(** The name of a party's outgoing frame — what the {e peer} requests.
    For unpredictable naming this requires the shared secret, which is
    exactly why the adversary cannot compute it; exposed for tests and
    for the attack's "adversary guesses predictable names" arm. *)

val mean_frame_rtt : t -> float
(** Average frame retrieval latency across both directions ([nan]
    before any delivery). *)
