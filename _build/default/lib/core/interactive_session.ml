type naming = Predictable | Unpredictable of string

type endpoint = {
  node : Ndn.Node.t;
  prefix : Ndn.Name.t;
  key : string;
  session : Unpredictable_names.session option;
  mutable received : int;
}

type t = {
  a : endpoint;
  b : endpoint;
  frames : int;
  rtt_stats : Sim.Stats.t;
}

let name_of endpoint ~seq =
  match endpoint.session with
  | Some session -> Unpredictable_names.name_of_seq session ~seq
  | None -> Ndn.Name.append endpoint.prefix (string_of_int seq)

let install_producer ~freshness_ms endpoint =
  let label = Ndn.Node.label endpoint.node in
  Ndn.Node.add_producer endpoint.node ~prefix:endpoint.prefix
    ~production_delay_ms:0.05 (fun interest ->
      let name = interest.Ndn.Interest.name in
      let payload seq = Printf.sprintf "%s-frame-%06d" label seq in
      match endpoint.session with
      | Some session -> (
        (* Serve only authentic session names, with strict matching so
           prefix probing cannot extract frames from caches. *)
        match Unpredictable_names.verify_name session name with
        | Some seq ->
          Some
            (Unpredictable_names.make_data session ~producer:label
               ~key:endpoint.key ~freshness_ms ~payload:(payload seq) ~seq ())
        | None -> None)
      | None -> (
        match
          if Ndn.Name.is_strict_prefix ~prefix:endpoint.prefix name then
            Option.bind (Ndn.Name.last name) int_of_string_opt
          else None
        with
        | Some seq when seq >= 0 ->
          Some
            (Ndn.Data.create ~freshness_ms ~producer:label ~key:endpoint.key
               ~payload:(payload seq) name)
        | Some _ | None -> None))

let start (setup : Ndn.Network.conversation_setup) ~naming ~frames
    ?(interval_ms = 20.) ?(freshness_ms = 30_000.) () =
  let make_endpoint node prefix key who =
    let session =
      match naming with
      | Predictable -> None
      | Unpredictable secret ->
        Some
          (Unpredictable_names.create
             ~secret:(secret ^ "|" ^ who)
             ~prefix)
    in
    { node; prefix; key; session; received = 0 }
  in
  let a =
    make_endpoint setup.Ndn.Network.alice setup.Ndn.Network.alice_prefix
      setup.Ndn.Network.alice_key "alice"
  in
  let b =
    make_endpoint setup.Ndn.Network.bob setup.Ndn.Network.bob_prefix
      setup.Ndn.Network.bob_key "bob"
  in
  install_producer ~freshness_ms a;
  install_producer ~freshness_ms b;
  let t = { a; b; frames; rtt_stats = Sim.Stats.create () } in
  let engine = Ndn.Network.engine setup.Ndn.Network.cnet in
  (* Schedule the cadence: at tick i, each side pulls the peer's frame
     i.  A real client would retransmit on loss; links here are
     lossless so a single expression suffices. *)
  for seq = 0 to frames - 1 do
    let at = float_of_int (seq + 1) *. interval_ms in
    ignore
      (Sim.Engine.schedule_at engine ~time:at (fun () ->
           Ndn.Node.express_interest a.node
             ~on_data:(fun ~rtt_ms _ ->
               a.received <- a.received + 1;
               Sim.Stats.add t.rtt_stats rtt_ms)
             (name_of b ~seq);
           Ndn.Node.express_interest b.node
             ~on_data:(fun ~rtt_ms _ ->
               b.received <- b.received + 1;
               Sim.Stats.add t.rtt_stats rtt_ms)
             (name_of a ~seq)))
  done;
  t

let frames_delivered t = (t.a.received, t.b.received)

let complete t = t.a.received = t.frames && t.b.received = t.frames

let frame_name t who ~seq =
  match who with `Alice -> name_of t.a ~seq | `Bob -> name_of t.b ~seq

let mean_frame_rtt t = Sim.Stats.mean t.rtt_stats
