(** Private-content marking semantics (paper, Section V).

    Three non-exclusive ways content becomes private:
    producer-driven (a privacy bit or reserved name component set by
    the producer), consumer-driven (a privacy bit in the interest), and
    mutual (unpredictable names — handled by
    {!Unpredictable_names}, invisible to routers).

    The router-side combination rules implemented here:
    - producer-private content is ALWAYS treated as private, whatever
      consumers ask for;
    - content not marked by its producer is private while only
      privacy-requesting consumers have touched it, but the first
      non-private interest for it acts as a TRIGGER: from then on (for
      as long as the object stays cached) it is treated as non-private
      — otherwise an adversary probing twice without the privacy bit
      could detect that someone requested it privately (Section V-B). *)

type t

type verdict = Private | Public

val create : unit -> t

val classify :
  t ->
  name:Ndn.Name.t ->
  producer_private:bool ->
  consumer_private:bool ->
  verdict
(** Apply the combination rules to one interest hitting cached content,
    updating trigger state. *)

val reserved_component : string
(** ["private"] — the reserved name component of the producer-driven
    naming convention. *)

val name_marked_private : Ndn.Name.t -> bool
(** Does the name carry the reserved ["private"] component as its last
    component? *)

val is_triggered : t -> Ndn.Name.t -> bool
(** Has the first-non-private trigger fired for this name? *)

val on_evicted : t -> Ndn.Name.t -> unit
(** Forget trigger state when the object leaves the cache: the
    non-private status only holds "as long as it remains in R's
    cache". *)

val reset : t -> unit
