type output = Hit | Miss

type state = { k_c : int; mutable c_c : int }

type t = { kdist : Kdist.t; rng : Sim.Rng.t; table : state Ndn.Name.Tbl.t }

let create ~kdist ~rng () = { kdist; rng; table = Ndn.Name.Tbl.create 256 }

let kdist t = t.kdist

let on_request t key =
  match Ndn.Name.Tbl.find_opt t.table key with
  | None ->
    (* Algorithm 1, lines 4-8. *)
    let k_c = Kdist.sample t.kdist t.rng in
    Ndn.Name.Tbl.replace t.table key { k_c; c_c = 0 };
    Miss
  | Some st ->
    (* Algorithm 1, lines 10-14. *)
    st.c_c <- st.c_c + 1;
    if st.c_c <= st.k_c then Miss else Hit

let request_count t key =
  match Ndn.Name.Tbl.find_opt t.table key with
  | None -> 0
  | Some st -> st.c_c

let threshold t key =
  match Ndn.Name.Tbl.find_opt t.table key with
  | None -> None
  | Some st -> Some st.k_c

let tracked t = Ndn.Name.Tbl.length t.table

let forget t key = Ndn.Name.Tbl.remove t.table key

let reset t = Ndn.Name.Tbl.reset t.table

let pp_output ppf = function
  | Hit -> Format.pp_print_string ppf "hit"
  | Miss -> Format.pp_print_string ppf "miss"

let output_equal a b =
  match (a, b) with Hit, Hit | Miss, Miss -> true | Hit, Miss | Miss, Hit -> false
