(** Grouping of correlated content (paper, Section VI, "Addressing
    Content Correlation").

    Random-Cache is only private if probed contents are statistically
    independent; contents sharing a namespace (segments of one video,
    pages of one site) are not.  The fix is to run Algorithm 1 on
    *group* keys — one counter and one threshold per group — so that
    probing many related names samples a single threshold instead of
    many. *)

type t =
  | By_content
      (** No grouping: every full name is its own group (the insecure
          default against correlated content). *)
  | By_namespace of int
      (** Group by the first [n] name components, e.g.
          [By_namespace 2] maps [/youtube/alice/video-749.avi/137] to
          [/youtube/alice]. *)
  | By_content_id
      (** Group by a producer-assigned content id carried in a
          registry populated from observed Data packets; names without
          a registered id fall back to their full name. *)

val key : t -> registry:Ndn.Name.t Ndn.Name.Tbl.t -> Ndn.Name.t -> Ndn.Name.t
(** The Algorithm-1 key for a requested name.  [registry] maps names
    to producer content-id groups and is only consulted for
    {!By_content_id}. *)

val register_id : registry:Ndn.Name.t Ndn.Name.Tbl.t -> name:Ndn.Name.t -> id:string -> unit
(** Record that [name] belongs to the producer-declared group [id]
    (the "content id field" extension the paper sketches). *)

val pp : Format.formatter -> t -> unit
