type t = By_content | By_namespace of int | By_content_id

let key t ~registry name =
  match t with
  | By_content -> name
  | By_namespace depth -> Ndn.Name.namespace name ~depth
  | By_content_id -> (
    match Ndn.Name.Tbl.find_opt registry name with
    | Some group -> group
    | None -> name)

let register_id ~registry ~name ~id =
  (* Content-id groups live in a reserved namespace so they can never
     collide with real content names. *)
  Ndn.Name.Tbl.replace registry name
    (Ndn.Name.of_components [ "__content-id"; id ])

let pp ppf = function
  | By_content -> Format.pp_print_string ppf "by-content"
  | By_namespace d -> Format.fprintf ppf "by-namespace(%d)" d
  | By_content_id -> Format.pp_print_string ppf "by-content-id"
