lib/core/grouping.mli: Format Ndn
