lib/core/unpredictable_names.mli: Ndn
