lib/core/interactive_session.ml: Ndn Option Printf Sim Unpredictable_names
