lib/core/delay.ml: Float Format
