lib/core/kdist.ml: Format List Privacy Sim
