lib/core/grouping.ml: Format Ndn
