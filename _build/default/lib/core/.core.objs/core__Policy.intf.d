lib/core/policy.mli: Grouping Kdist Ndn Random_cache Sim
