lib/core/marking.mli: Ndn
