lib/core/private_router.ml: Delay Format Grouping Kdist Marking Ndn Option Random_cache
