lib/core/naive_scheme.ml: Ndn Random_cache
