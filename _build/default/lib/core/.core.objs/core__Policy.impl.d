lib/core/policy.ml: Grouping Kdist Ndn Option Random_cache
