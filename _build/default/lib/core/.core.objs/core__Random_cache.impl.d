lib/core/random_cache.ml: Format Kdist Ndn Sim
