lib/core/kdist.mli: Format Privacy Sim
