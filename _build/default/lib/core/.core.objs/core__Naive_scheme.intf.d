lib/core/naive_scheme.mli: Ndn Random_cache
