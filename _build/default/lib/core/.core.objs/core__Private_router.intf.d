lib/core/private_router.mli: Delay Format Grouping Kdist Marking Ndn Sim
