lib/core/delay.mli: Format
