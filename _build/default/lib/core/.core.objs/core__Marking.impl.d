lib/core/marking.ml: Ndn String
