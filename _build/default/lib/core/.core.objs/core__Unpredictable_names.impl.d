lib/core/unpredictable_names.ml: Ndn Ndn_crypto String
