lib/core/random_cache.mli: Format Kdist Ndn Sim
