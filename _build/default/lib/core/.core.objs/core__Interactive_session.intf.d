lib/core/interactive_session.mli: Ndn
