(** Temporal-locality workload generation (LRU-stack model).

    The synthetic {!Ircache} generator draws requests i.i.d., which
    understates temporal locality: real proxy traffic re-requests
    *recently seen* objects far more often than stationary popularity
    predicts, and LRU caches exploit exactly that.  The classical
    LRU-stack model captures it: each request either introduces a fresh
    object or references the object at stack distance d, where d
    follows a heavy-tailed law; the referenced object moves to the top.

    Used by the ablation bench to show how the Figure 5 curves shift
    when locality is modelled explicitly. *)

type config = {
  requests : int;
  users : int;
  fresh_fraction : float;
      (** Probability a request introduces a brand-new object. *)
  depth_exponent : float;
      (** Stack-distance law: [Pr(d) ∝ d^{-s}] over the reachable
          stack; larger = stronger locality. *)
  max_depth : int;
      (** Truncation of the stack-distance law (bounds per-request
          cost). *)
  duration_s : float;
  seed : int;
}

val default : config
(** 200k requests, 185 users, 35% fresh, s = 1.2, depth ≤ 4096, 24 h. *)

val generate : config -> Trace.t
(** @raise Invalid_argument on non-positive sizes or fractions outside
    [\[0, 1\]]. *)

val pp_config : Format.formatter -> config -> unit
