type t = { n : int; s : float; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: negative exponent";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for r = 1 to n do
    acc := !acc +. (1. /. (float_of_int r ** s));
    cdf.(r - 1) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { n; s; cdf }

let n t = t.n
let s t = t.s

let sample t rng =
  let u = Sim.Rng.float rng 1. in
  (* Smallest index with cdf >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1) + 1

let prob t rank =
  if rank < 1 || rank > t.n then invalid_arg "Zipf.prob: rank out of range";
  if rank = 1 then t.cdf.(0) else t.cdf.(rank - 1) -. t.cdf.(rank - 2)

let head_mass t k =
  if k <= 0 then 0. else if k >= t.n then 1. else t.cdf.(k - 1)
