lib/workload/replay.ml: Core Format Hashtbl Ndn Sim Trace
