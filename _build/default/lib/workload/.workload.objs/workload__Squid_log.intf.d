lib/workload/squid_log.mli: Trace
