lib/workload/ircache.mli: Format Trace
