lib/workload/trace.mli: Format Ndn
