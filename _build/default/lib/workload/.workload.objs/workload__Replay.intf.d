lib/workload/replay.mli: Core Format Ndn Trace
