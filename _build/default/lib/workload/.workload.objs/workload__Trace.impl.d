lib/workload/trace.ml: Array Format Fun Hashtbl List Ndn Printf String
