lib/workload/ircache.ml: Array Float Format Sim Trace Zipf
