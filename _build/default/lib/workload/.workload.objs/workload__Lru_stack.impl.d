lib/workload/lru_stack.ml: Array Format Sim Trace Zipf
