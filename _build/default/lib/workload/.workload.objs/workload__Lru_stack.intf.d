lib/workload/lru_stack.mli: Format Trace
