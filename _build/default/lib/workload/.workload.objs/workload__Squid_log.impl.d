lib/workload/squid_log.ml: Array Fun Hashtbl List String Trace
