lib/workload/metrics.ml: Core Format List Ndn Replay Sim String
