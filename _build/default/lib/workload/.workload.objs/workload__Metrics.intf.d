lib/workload/metrics.mli: Core Format Replay Trace
