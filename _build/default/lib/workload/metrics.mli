(** Parameter sweeps and tabulation for the Figure 5 reproduction. *)

type row = {
  policy_label : string;
  cache_capacity : int;  (** 0 = unbounded. *)
  private_fraction : float;
  outcome : Replay.outcome;
}

val sweep :
  Trace.t ->
  cache_sizes:int list ->
  policies:Core.Policy.kind list ->
  ?private_fraction:float ->
  ?grouping:Core.Grouping.t ->
  ?seed:int ->
  unit ->
  row list
(** Figure 5(a): one replay per (policy, cache size); per-content
    private marking at [private_fraction] (default 0.2). *)

val sweep_private_fraction :
  Trace.t ->
  cache_sizes:int list ->
  policy:Core.Policy.kind ->
  fractions:float list ->
  ?grouping:Core.Grouping.t ->
  ?seed:int ->
  unit ->
  row list
(** Figure 5(b): one policy, varying the private fraction. *)

val pp_table :
  series_of:(row -> string) -> Format.formatter -> row list -> unit
(** Render rows as a cache-size × series table of observable hit rates
    (percent), with series picked by [series_of] (policy label for
    5(a), private fraction for 5(b)). *)

val cache_size_label : int -> string
(** ["Inf"] for 0, the number otherwise. *)
