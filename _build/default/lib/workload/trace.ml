type record = { time_s : float; user : int; content : int }

type t = record array

let create records =
  let ok = ref true in
  for i = 1 to Array.length records - 1 do
    if records.(i).time_s < records.(i - 1).time_s then ok := false
  done;
  if not !ok then invalid_arg "Trace.create: timestamps must be non-decreasing";
  records

let length t = Array.length t

let get t i = t.(i)

let iter t ~f = Array.iter f t

let fold t ~init ~f = Array.fold_left f init t

let duration_s t =
  if Array.length t < 2 then 0.
  else t.(Array.length t - 1).time_s -. t.(0).time_s

let distinct_of field t =
  let seen = Hashtbl.create 1024 in
  Array.iter (fun r -> Hashtbl.replace seen (field r) ()) t;
  Hashtbl.length seen

let users t = distinct_of (fun r -> r.user) t

let distinct_contents t = distinct_of (fun r -> r.content) t

let name_of content =
  Ndn.Name.of_components [ "trace"; "c" ^ string_of_int content ]

let sub t ~pos ~len = Array.sub t pos len

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter
        (fun r -> Printf.fprintf oc "%.6f %d %d\n" r.time_s r.user r.content)
        t)

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let records = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match String.split_on_char ' ' (String.trim line) with
             | [ ts; u; c ] -> (
               match
                 (float_of_string_opt ts, int_of_string_opt u, int_of_string_opt c)
               with
               | Some time_s, Some user, Some content ->
                 records := { time_s; user; content } :: !records
               | _ -> failwith ("Trace.load: malformed line: " ^ line))
             | _ -> failwith ("Trace.load: malformed line: " ^ line)
         done
       with End_of_file -> ());
      create (Array.of_list (List.rev !records)))

let pp_summary ppf t =
  Format.fprintf ppf
    "%d requests, %d users, %d distinct contents, %.1f h span"
    (length t) (users t) (distinct_contents t)
    (duration_s t /. 3600.)
