type config = {
  requests : int;
  users : int;
  fresh_fraction : float;
  depth_exponent : float;
  max_depth : int;
  duration_s : float;
  seed : int;
}

let default =
  {
    requests = 200_000;
    users = 185;
    fresh_fraction = 0.35;
    depth_exponent = 1.2;
    max_depth = 4096;
    duration_s = 86_400.;
    seed = 1977;
  }

let generate cfg =
  if cfg.requests <= 0 || cfg.users <= 0 || cfg.max_depth <= 0 then
    invalid_arg "Lru_stack.generate: non-positive size";
  if cfg.fresh_fraction < 0. || cfg.fresh_fraction > 1. then
    invalid_arg "Lru_stack.generate: fresh_fraction out of range";
  if cfg.duration_s <= 0. then invalid_arg "Lru_stack.generate: non-positive duration";
  let rng = Sim.Rng.create cfg.seed in
  let depth_law = Zipf.create ~n:cfg.max_depth ~s:cfg.depth_exponent in
  (* The stack: most-recent at index [top-1].  Move-to-front via
     shifting; expected depth is small under a heavy-tailed law. *)
  let stack = ref (Array.make 1024 0) in
  let top = ref 0 in
  let next_fresh = ref 0 in
  let push id =
    if !top = Array.length !stack then begin
      let bigger = Array.make (2 * !top) 0 in
      Array.blit !stack 0 bigger 0 !top;
      stack := bigger
    end;
    !stack.(!top) <- id;
    incr top
  in
  let reference_depth d =
    (* d = 1 is the most recent object. *)
    let idx = !top - d in
    let id = !stack.(idx) in
    Array.blit !stack (idx + 1) !stack idx (!top - idx - 1);
    !stack.(!top - 1) <- id;
    id
  in
  let interval = cfg.duration_s /. float_of_int cfg.requests in
  let records =
    Array.init cfg.requests (fun i ->
        let content =
          if !top = 0 || Sim.Rng.bernoulli rng cfg.fresh_fraction then begin
            let id = !next_fresh in
            incr next_fresh;
            push id;
            id
          end
          else begin
            let d = min !top (Zipf.sample depth_law rng) in
            reference_depth d
          end
        in
        {
          Trace.time_s = float_of_int i *. interval;
          user = Sim.Rng.int rng cfg.users;
          content;
        })
  in
  Trace.create records

let pp_config ppf cfg =
  Format.fprintf ppf
    "requests=%d users=%d fresh=%.0f%% depth-exp=%.2f max-depth=%d span=%.0fh seed=%d"
    cfg.requests cfg.users
    (100. *. cfg.fresh_fraction)
    cfg.depth_exponent cfg.max_depth
    (cfg.duration_s /. 3600.)
    cfg.seed
