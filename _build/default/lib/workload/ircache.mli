(** Synthetic stand-in for the IRCache/NLANR proxy trace.

    The paper replays an HTTP trace collected 2007-09-01 at Research
    Triangle Park: 185 users, ~3.2 million requests over 24 hours.
    IRCache traces are no longer distributed, so we generate a
    statistically comparable workload (DESIGN.md §2):

    - object popularity: a Zipf core catalog plus a one-timer tail
      (a large fraction of proxy requests are for never-repeated
      objects — this is what caps the infinite-cache hit rate around
      50%, as in the paper's "Inf" column);
    - user activity: lognormal-ish heterogeneity over 185 users;
    - arrivals: 24-hour span with a diurnal intensity profile.

    Deterministic given the seed. *)

type config = {
  requests : int;
  users : int;
  catalog : int;  (** Size of the repeatedly-requested Zipf catalog. *)
  zipf_exponent : float;
  one_timer_fraction : float;
      (** Probability that a request targets a fresh never-repeated
          object. *)
  duration_s : float;
  seed : int;
}

val default : config
(** Scaled-down default for interactive runs: 400k requests, 185
    users, 24 h.  Matches the paper's user count and duration; use
    {!paper_scale} for the full 3.2M-request replay. *)

val paper_scale : config
(** The full 3.2M-request configuration. *)

val generate : config -> Trace.t
(** @raise Invalid_argument on non-positive [requests], [users],
    [catalog] or [duration_s]. *)

val pp_config : Format.formatter -> config -> unit
