type config = {
  requests : int;
  users : int;
  catalog : int;
  zipf_exponent : float;
  one_timer_fraction : float;
  duration_s : float;
  seed : int;
}

let default =
  {
    requests = 400_000;
    users = 185;
    catalog = 40_000;
    zipf_exponent = 0.85;
    one_timer_fraction = 0.40;
    duration_s = 86_400.;
    seed = 2007_09_01;
  }

let paper_scale = { default with requests = 3_200_000; catalog = 120_000 }

(* Diurnal intensity: a raised cosine with its trough at 4am and peak
   mid-afternoon, never below 15% of peak. *)
let diurnal_weight time_of_day_s =
  let hours = time_of_day_s /. 3600. in
  let phase = (hours -. 16.) /. 24. *. 2. *. Float.pi in
  0.575 +. (0.425 *. cos phase)

let generate cfg =
  if cfg.requests <= 0 || cfg.users <= 0 || cfg.catalog <= 0 then
    invalid_arg "Ircache.generate: non-positive size";
  if cfg.duration_s <= 0. then invalid_arg "Ircache.generate: non-positive duration";
  let rng = Sim.Rng.create cfg.seed in
  let zipf = Zipf.create ~n:cfg.catalog ~s:cfg.zipf_exponent in
  (* Heterogeneous user activity: weight ~ exp(N(0,1)). *)
  let user_weights =
    Array.init cfg.users (fun _ -> exp (Sim.Rng.gaussian rng ~mean:0. ~stddev:1.))
  in
  let user_cdf = Array.make cfg.users 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      user_cdf.(i) <- !acc)
    user_weights;
  let total_user_weight = !acc in
  let pick_user () =
    let u = Sim.Rng.float rng total_user_weight in
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if user_cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    in
    search 0 (cfg.users - 1)
  in
  (* Arrival times: thinned uniform proposals keep the diurnal shape
     and produce a sorted sequence directly via order statistics of a
     non-homogeneous process approximated by inverse-CDF on a grid. *)
  let grid = 288 (* 5-minute buckets *) in
  let bucket_cdf = Array.make grid 0. in
  let wacc = ref 0. in
  for b = 0 to grid - 1 do
    let mid = (float_of_int b +. 0.5) /. float_of_int grid *. cfg.duration_s in
    wacc := !wacc +. diurnal_weight mid;
    bucket_cdf.(b) <- !wacc
  done;
  let wtotal = !wacc in
  let sample_time () =
    let u = Sim.Rng.float rng wtotal in
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if bucket_cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    in
    let b = search 0 (grid - 1) in
    let bucket_width = cfg.duration_s /. float_of_int grid in
    (float_of_int b *. bucket_width) +. Sim.Rng.float rng bucket_width
  in
  let times = Array.init cfg.requests (fun _ -> sample_time ()) in
  Array.sort compare times;
  (* One-timer ids live above the catalog range. *)
  let next_one_timer = ref cfg.catalog in
  let records =
    Array.map
      (fun time_s ->
        let content =
          if Sim.Rng.bernoulli rng cfg.one_timer_fraction then begin
            let id = !next_one_timer in
            incr next_one_timer;
            id
          end
          else Zipf.sample zipf rng - 1
        in
        { Trace.time_s; user = pick_user (); content })
      times
  in
  Trace.create records

let pp_config ppf cfg =
  Format.fprintf ppf
    "requests=%d users=%d catalog=%d zipf=%.2f one-timers=%.0f%% span=%.0fh seed=%d"
    cfg.requests cfg.users cfg.catalog cfg.zipf_exponent
    (100. *. cfg.one_timer_fraction)
    (cfg.duration_s /. 3600.)
    cfg.seed
