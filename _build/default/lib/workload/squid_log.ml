type parse_stats = { parsed : int; skipped : int }

(* Split on runs of whitespace (Squid pads the elapsed field). *)
let fields line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun f -> f <> "")

let parse_line line =
  match fields line with
  | timestamp :: _elapsed :: client :: action :: _size :: _method :: url :: _rest
    -> (
    match float_of_string_opt timestamp with
    | Some ts when ts >= 0. ->
      (* Keep only request records; Squid writes other line kinds too. *)
      if String.length action > 0 && String.length url > 0 then
        Some (ts, client, url)
      else None
    | Some _ | None -> None)
  | _ -> None

let of_lines lines =
  let users : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let contents : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let intern tbl key =
    match Hashtbl.find_opt tbl key with
    | Some id -> id
    | None ->
      let id = Hashtbl.length tbl in
      Hashtbl.add tbl key id;
      id
  in
  let parsed = ref 0 and skipped = ref 0 in
  let records =
    List.filter_map
      (fun line ->
        if String.trim line = "" then None
        else
          match parse_line line with
          | Some (ts, client, url) ->
            incr parsed;
            Some
              {
                Trace.time_s = ts;
                user = intern users client;
                content = intern contents url;
              }
          | None ->
            incr skipped;
            None)
      lines
  in
  let arr = Array.of_list records in
  Array.sort (fun a b -> compare a.Trace.time_s b.Trace.time_s) arr;
  let t0 = if Array.length arr > 0 then arr.(0).Trace.time_s else 0. in
  let arr =
    Array.map (fun r -> { r with Trace.time_s = r.Trace.time_s -. t0 }) arr
  in
  (Trace.create arr, { parsed = !parsed; skipped = !skipped })

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      of_lines (List.rev !lines))
