(** Parser for Squid proxy access logs — the native format of the
    IRCache/NLANR traces the paper replays.

    IRCache distributed sanitized Squid logs; if you hold such a file
    (or any Squid `access.log`), this module turns it into a
    {!Trace.t} replayable through the Figure 5 pipeline, assigning
    dense user ids to client addresses and dense content ids to URLs.

    Recognized line shape (fields beyond the URL are ignored):

    {v timestamp elapsed client action/code size method URL ... v}

    e.g.
    {v 1188936012.445  110 891a2f TCP_MISS/200 4528 GET http://example.org/x - DIRECT/10.1.2.3 text/html v} *)

type parse_stats = {
  parsed : int;
  skipped : int;  (** Malformed or non-request lines. *)
}

val parse_line : string -> (float * string * string) option
(** [(timestamp_s, client, url)] from one log line; [None] when the
    line is unusable. *)

val of_lines : string list -> Trace.t * parse_stats
(** Build a trace from log lines: timestamps are shifted to start at 0
    and the records sorted (Squid logs are written at request
    completion, so they can be slightly out of order). *)

val load : path:string -> Trace.t * parse_stats
(** Parse a log file.
    @raise Sys_error if the file cannot be read. *)
