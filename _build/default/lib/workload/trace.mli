(** Request traces: the replay input of the paper's Section VII.

    A trace is a time-ordered sequence of (timestamp, user, content)
    request records.  Contents are dense integer ids; {!name_of} maps
    them to NDN names for components that need them. *)

type record = { time_s : float; user : int; content : int }

type t

val create : record array -> t
(** Takes ownership of the array.
    @raise Invalid_argument if timestamps are not non-decreasing. *)

val length : t -> int

val get : t -> int -> record

val iter : t -> f:(record -> unit) -> unit

val fold : t -> init:'acc -> f:('acc -> record -> 'acc) -> 'acc

val duration_s : t -> float
(** Last timestamp minus first ([0.] for traces shorter than 2). *)

val users : t -> int
(** Number of distinct users. *)

val distinct_contents : t -> int

val name_of : int -> Ndn.Name.t
(** ["/trace/c<id>"] — stable mapping from content ids to names. *)

val sub : t -> pos:int -> len:int -> t
(** A view-copy of a slice (timestamps keep their values).
    @raise Invalid_argument on out-of-bounds. *)

val save : t -> path:string -> unit
(** Text format, one ["time user content"] line per record. *)

val load : path:string -> t
(** @raise Failure on malformed input. *)

val pp_summary : Format.formatter -> t -> unit
