(** Trace replay through a privacy-aware cache — the engine behind the
    paper's Section VII evaluation (Figure 5).

    Mechanics follow the paper exactly: the router caches everything
    and evicts by LRU; a cache hit refreshes the entry even when the
    response is disguised as a miss; requested content is divided into
    private and non-private; the reported "cache hit rate" counts
    {e observable} hits (a hidden hit costs the consumer a miss-like
    delay, and — in the Always-Delay reading — upstream bandwidth). *)

type private_mode =
  | Per_content of float
      (** Each distinct content is private with the given probability
          (deterministic in the content id and seed) — the paper's
          "randomly divide requested content into private and
          non-private". *)
  | Per_request of float
      (** Each request is independently private — an ablation mode. *)

type config = {
  cache_capacity : int;  (** 0 = unbounded (the paper's "Inf"). *)
  eviction : Ndn.Eviction.t;
  policy : Core.Policy.kind;
  grouping : Core.Grouping.t;
  private_mode : private_mode;
  seed : int;
}

val default_config : config
(** LRU, No_privacy, ungrouped, 20% per-content private, capacity
    8000. *)

type outcome = {
  requests : int;
  observable_hits : int;
      (** Hits as experienced by consumers — the paper's metric. *)
  real_hits : int;  (** Objects actually present in the cache. *)
  hidden_hits : int;  (** Real hits disguised as misses. *)
  private_requests : int;
  evictions : int;
  distinct_contents : int;
}

val observable_hit_rate : outcome -> float

val real_hit_rate : outcome -> float

val replay : Trace.t -> config -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
