type row = {
  policy_label : string;
  cache_capacity : int;
  private_fraction : float;
  outcome : Replay.outcome;
}

let label_of_kind kind =
  (* Build a throwaway policy purely to reuse its display name. *)
  Core.Policy.label (Core.Policy.create ~rng:(Sim.Rng.create 0) kind)

let run_one trace ~kind ~capacity ~fraction ~grouping ~seed =
  let config =
    {
      Replay.cache_capacity = capacity;
      eviction = Ndn.Eviction.Lru;
      policy = kind;
      grouping;
      private_mode = Replay.Per_content fraction;
      seed;
    }
  in
  {
    policy_label = label_of_kind kind;
    cache_capacity = capacity;
    private_fraction = fraction;
    outcome = Replay.replay trace config;
  }

let sweep trace ~cache_sizes ~policies ?(private_fraction = 0.2)
    ?(grouping = Core.Grouping.By_content) ?(seed = 99) () =
  List.concat_map
    (fun kind ->
      List.map
        (fun capacity ->
          run_one trace ~kind ~capacity ~fraction:private_fraction ~grouping
            ~seed)
        cache_sizes)
    policies

let sweep_private_fraction trace ~cache_sizes ~policy ~fractions
    ?(grouping = Core.Grouping.By_content) ?(seed = 99) () =
  List.concat_map
    (fun fraction ->
      List.map
        (fun capacity ->
          run_one trace ~kind:policy ~capacity ~fraction ~grouping ~seed)
        cache_sizes)
    fractions

let cache_size_label = function 0 -> "Inf" | n -> string_of_int n

let pp_table ~series_of ppf rows =
  let series =
    List.fold_left
      (fun acc row ->
        let s = series_of row in
        if List.mem s acc then acc else acc @ [ s ])
      [] rows
  in
  let sizes =
    List.fold_left
      (fun acc row ->
        if List.mem row.cache_capacity acc then acc else acc @ [ row.cache_capacity ])
      [] rows
  in
  let width =
    List.fold_left (fun acc s -> max acc (String.length s)) 10 series
  in
  Format.fprintf ppf "%-10s" "CacheSize";
  List.iter (fun s -> Format.fprintf ppf " | %*s" width s) series;
  Format.fprintf ppf "@.";
  List.iter
    (fun size ->
      Format.fprintf ppf "%-10s" (cache_size_label size);
      List.iter
        (fun s ->
          match
            List.find_opt
              (fun row -> row.cache_capacity = size && series_of row = s)
              rows
          with
          | Some row ->
            Format.fprintf ppf " | %*.2f" width
              (100. *. Replay.observable_hit_rate row.outcome)
          | None -> Format.fprintf ppf " | %*s" width "-")
        series;
      Format.fprintf ppf "@.")
    sizes
