(** Cache replacement policies for the content store.

    The paper's evaluation uses LRU ("a router caches all content and
    removes elements from its cache according to the LRU policy",
    Section VII); the others are provided for ablation benchmarks. *)

type t =
  | Lru  (** Evict the least recently used entry. *)
  | Fifo  (** Evict the oldest entry regardless of use. *)
  | Lfu  (** Evict the least frequently used entry (ties: oldest). *)
  | Random_replacement  (** Evict a uniformly random entry. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val of_string : string -> t option
(** Parses ["lru"], ["fifo"], ["lfu"], ["random"] (case-insensitive). *)

val all : t list
