(** The two NDN packet types.

    "Interest and content are the only types of packets in NDN"
    (paper, Section II). *)

type t =
  | Interest of Interest.t
  | Data of Data.t

val name : t -> Name.t

val size_bytes : t -> int
(** Wire-size estimate for bandwidth accounting (interests are small
    and fixed-cost; Data defers to {!Data.size_bytes}). *)

val pp : Format.formatter -> t -> unit
