(** Forwarding Information Base: name prefixes → outgoing faces.

    Interests are routed by longest-prefix match against announced
    prefixes (paper, Section II). *)

type t

val create : unit -> t

val add_route : t -> prefix:Name.t -> face:int -> unit
(** Announce a prefix via a face.  Multiple faces may be registered for
    the same prefix; their order of registration is the preference
    order. *)

val remove_route : t -> prefix:Name.t -> face:int -> unit
(** Withdraw one announcement.  No-op if absent. *)

val next_hops : t -> Name.t -> int list
(** Faces of the longest announced prefix of the name, preference
    order; [[]] when no route exists. *)

val next_hop : t -> Name.t -> int option
(** First (preferred) element of {!next_hops}. *)

val routes : t -> (Name.t * int list) list
(** All announcements, name order. *)

val size : t -> int
(** Number of announced prefixes. *)

val clear : t -> unit
