type t = { network : Network.t; nodes : (string * Node.t) list }

let node t name = List.assoc name t.nodes

(* --- small parsing helpers --- *)

let ( let* ) = Result.bind

let float_field name s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: expected a number, got %S" name s)

let int_field name s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

let bool_field name s =
  match String.lowercase_ascii s with
  | "true" | "yes" | "1" -> Ok true
  | "false" | "no" | "0" -> Ok false
  | _ -> Error (Printf.sprintf "%s: expected a boolean, got %S" name s)

let rec parse_latency_term s =
  match String.split_on_char ':' s with
  | [ "const"; ms ] ->
    let* ms = float_field "const" ms in
    Ok (Sim.Latency.Constant ms)
  | [ "uniform"; lo; hi ] ->
    let* lo = float_field "uniform lo" lo in
    let* hi = float_field "uniform hi" hi in
    Ok (Sim.Latency.Uniform { lo; hi })
  | [ "normal"; mean; stddev; min ] ->
    let* mean = float_field "normal mean" mean in
    let* stddev = float_field "normal stddev" stddev in
    let* min = float_field "normal min" min in
    Ok (Sim.Latency.Normal { mean; stddev; min })
  | [ "shifted_exp"; shift; rate ] ->
    let* shift = float_field "shifted_exp shift" shift in
    let* rate = float_field "shifted_exp rate" rate in
    Ok (Sim.Latency.Shifted_exponential { shift; rate })
  | _ -> Error (Printf.sprintf "unknown latency model %S" s)

and parse_latency s =
  match String.split_on_char '+' s with
  | [ single ] -> parse_latency_term single
  | parts ->
    let* terms =
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          let* term = parse_latency_term part in
          Ok (term :: acc))
        (Ok []) parts
    in
    Ok (Sim.Latency.Sum (List.rev terms))

(* key=value attribute lists *)
let parse_attrs tokens =
  List.fold_left
    (fun acc token ->
      let* acc = acc in
      match String.index_opt token '=' with
      | Some i ->
        let key = String.sub token 0 i in
        let value = String.sub token (i + 1) (String.length token - i - 1) in
        Ok ((key, value) :: acc)
      | None -> Error (Printf.sprintf "expected key=value, got %S" token))
    (Ok []) tokens

let attr attrs key = List.assoc_opt key attrs

(* --- directive state --- *)

type builder = {
  net : Network.t;
  mutable decls : (string * Node.t) list;
  (* (a, b) -> face id on a toward b *)
  faces : (string * string, int) Hashtbl.t;
}

let find_node b name =
  match List.assoc_opt name b.decls with
  | Some node -> Ok node
  | None -> Error (Printf.sprintf "undeclared node %S" name)

let handle_node b name attrs =
  if List.mem_assoc name b.decls then Error (Printf.sprintf "duplicate node %S" name)
  else begin
    let* cs_capacity =
      match attr attrs "cs" with Some v -> int_field "cs" v | None -> Ok 0
    in
    let* cs_policy =
      match attr attrs "policy" with
      | Some v -> (
        match Eviction.of_string v with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "unknown eviction policy %S" v))
      | None -> Ok Eviction.Lru
    in
    let* forwarding_delay =
      match attr attrs "proc" with
      | Some v -> parse_latency v
      | None -> Ok (Sim.Latency.Constant 0.02)
    in
    let* honor_scope =
      match attr attrs "honor_scope" with
      | Some v -> bool_field "honor_scope" v
      | None -> Ok true
    in
    let* caching =
      match attr attrs "caching" with
      | Some v -> bool_field "caching" v
      | None -> Ok true
    in
    let node =
      Network.add_node b.net ~cs_capacity ~cs_policy ~forwarding_delay
        ~honor_scope ~caching name
    in
    b.decls <- b.decls @ [ (name, node) ];
    Ok ()
  end

let handle_link b a_name b_name attrs =
  let* a = find_node b a_name in
  let* bn = find_node b b_name in
  let* latency =
    match attr attrs "latency" with
    | Some v -> parse_latency v
    | None -> Ok (Sim.Latency.Constant 1.)
  in
  let* latency_ba =
    match attr attrs "latency_back" with
    | Some v ->
      let* l = parse_latency v in
      Ok (Some l)
    | None -> Ok None
  in
  let* loss =
    match attr attrs "loss" with Some v -> float_field "loss" v | None -> Ok 0.
  in
  if Hashtbl.mem b.faces (a_name, b_name) then
    Error (Printf.sprintf "duplicate link %s-%s" a_name b_name)
  else begin
    let fa, fb = Network.connect b.net ~loss ?latency_ba ~latency a bn in
    Hashtbl.replace b.faces (a_name, b_name) fa;
    Hashtbl.replace b.faces (b_name, a_name) fb;
    Ok ()
  end

let handle_route b node_name prefix via_name =
  let* node = find_node b node_name in
  let* _ = find_node b via_name in
  match Hashtbl.find_opt b.faces (node_name, via_name) with
  | Some face ->
    Network.route b.net node ~prefix:(Name.of_string prefix) ~via:face;
    Ok ()
  | None ->
    Error (Printf.sprintf "route %s via %s: no such link" node_name via_name)

let handle_producer b node_name prefix attrs =
  let* node = find_node b node_name in
  let* key =
    match attr attrs "key" with
    | Some k -> Ok k
    | None -> Ok (node_name ^ "-key")
  in
  let* payload_size =
    match attr attrs "payload" with Some v -> int_field "payload" v | None -> Ok 1024
  in
  let* producer_private =
    match attr attrs "private" with
    | Some v -> bool_field "private" v
    | None -> Ok false
  in
  let* production_delay_ms =
    match attr attrs "delay" with Some v -> float_field "delay" v | None -> Ok 0.4
  in
  let prefix = Name.of_string prefix in
  let payload_of name =
    let h = Ndn_crypto.Sha256.hex_digest (Name.to_string name) in
    let buf = Buffer.create payload_size in
    while Buffer.length buf < payload_size do
      Buffer.add_string buf h
    done;
    Buffer.sub buf 0 payload_size
  in
  Node.add_producer node ~prefix ~production_delay_ms (fun interest ->
      let name = interest.Interest.name in
      if Name.is_prefix ~prefix name then
        Some
          (Data.create ~producer_private ~producer:node_name ~key
             ~payload:(payload_of name) name)
      else None);
  Ok ()

let handle_line b line =
  let tokens =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun tok -> tok <> "")
  in
  match tokens with
  | [] -> Ok ()
  | comment :: _ when String.length comment > 0 && comment.[0] = '#' -> Ok ()
  | "node" :: name :: attrs ->
    let* attrs = parse_attrs attrs in
    handle_node b name attrs
  | "link" :: a :: bn :: attrs ->
    let* attrs = parse_attrs attrs in
    handle_link b a bn attrs
  | [ "route"; node; prefix; "via"; via ] -> handle_route b node prefix via
  | "producer" :: node :: prefix :: attrs ->
    let* attrs = parse_attrs attrs in
    handle_producer b node prefix attrs
  | directive :: _ -> Error (Printf.sprintf "unknown directive %S" directive)

let parse ?(seed = 42) text =
  let b =
    { net = Network.create ~seed (); decls = []; faces = Hashtbl.create 16 }
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok { network = b.net; nodes = b.decls }
    | line :: rest -> (
      match handle_line b line with
      | Ok () -> go (lineno + 1) rest
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 lines

let parse_file ?seed ~path () =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      parse ?seed text)

let parse_latency s = parse_latency s
