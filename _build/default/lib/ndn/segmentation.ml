let segment_name ~base i =
  if i < 0 then invalid_arg "Segmentation.segment_name: negative index";
  Name.append base (string_of_int i)

let split ~payload ~segment_size =
  if segment_size <= 0 then invalid_arg "Segmentation.split: segment_size must be positive";
  let n = String.length payload in
  if n = 0 then [ "" ]
  else begin
    let rec go off acc =
      if off >= n then List.rev acc
      else
        let len = min segment_size (n - off) in
        go (off + len) (String.sub payload off len :: acc)
    in
    go 0 []
  end

let segment_count ~payload ~segment_size =
  List.length (split ~payload ~segment_size)

let encode_segment ~total chunk = string_of_int total ^ "\n" ^ chunk

let parse_segment (data : Data.t) =
  match String.index_opt data.Data.payload '\n' with
  | None -> None
  | Some i -> (
    match int_of_string_opt (String.sub data.Data.payload 0 i) with
    | Some total when total > 0 ->
      Some
        ( total,
          String.sub data.Data.payload (i + 1)
            (String.length data.Data.payload - i - 1) )
    | Some _ | None -> None)

let producer_handler ~base ~producer ~key ?(producer_private = false) ?content_id
    ?freshness_ms ~payload ~segment_size () =
  let chunks = Array.of_list (split ~payload ~segment_size) in
  let total = Array.length chunks in
  fun (interest : Interest.t) ->
    let name = interest.Interest.name in
    if not (Name.is_strict_prefix ~prefix:base name) then None
    else
      match Name.last name with
      | Some seg when Name.length name = Name.length base + 1 -> (
        match int_of_string_opt seg with
        | Some i when i >= 0 && i < total ->
          Some
            (Data.create ~producer_private ?content_id ?freshness_ms ~producer
               ~key
               ~payload:(encode_segment ~total chunks.(i))
               name)
        | Some _ | None -> None)
      | Some _ | None -> None

let fetch_all node ~base ?(pipeline = 4) ?timeout_ms ~on_complete () =
  (* State machine over the segment set: fetch segment 0, learn the
     total, keep [pipeline] interests in flight, reassemble. *)
  let chunks : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let total = ref None in
  let next_to_issue = ref 1 in
  let in_flight = ref 0 in
  let failed = ref false in
  let finished = ref false in
  let finish result =
    if not !finished then begin
      finished := true;
      on_complete result
    end
  in
  let assemble () =
    match !total with
    | Some t when Hashtbl.length chunks = t ->
      let buf = Buffer.create 256 in
      let ok = ref true in
      for i = 0 to t - 1 do
        match Hashtbl.find_opt chunks i with
        | Some c -> Buffer.add_string buf c
        | None -> ok := false
      done;
      if !ok then finish (Some (Buffer.contents buf)) else finish None
    | _ -> ()
  in
  let rec issue i =
    incr in_flight;
    Node.express_interest node ?timeout_ms
      ~on_data:(fun ~rtt_ms:_ data -> on_segment i data)
      ~on_timeout:(fun () ->
        decr in_flight;
        failed := true;
        finish None)
      (segment_name ~base i)
  and pump () =
    match !total with
    | None -> ()
    | Some t ->
      while (not !failed) && !next_to_issue < t && !in_flight < pipeline do
        let i = !next_to_issue in
        incr next_to_issue;
        issue i
      done
  and on_segment i data =
    decr in_flight;
    if not !failed then begin
      match parse_segment data with
      | None ->
        failed := true;
        finish None
      | Some (t, chunk) ->
        (match !total with
        | None -> total := Some t
        | Some t' -> if t <> t' then failed := true);
        if !failed then finish None
        else begin
          Hashtbl.replace chunks i chunk;
          pump ();
          assemble ()
        end
    end
  in
  issue 0
