lib/ndn/eviction.ml: Format String
