lib/ndn/packet.mli: Data Format Interest Name
