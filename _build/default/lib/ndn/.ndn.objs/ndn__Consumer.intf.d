lib/ndn/consumer.mli: Data Name Node
