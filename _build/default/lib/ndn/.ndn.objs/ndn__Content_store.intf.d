lib/ndn/content_store.mli: Data Eviction Format Name Sim
