lib/ndn/eviction.mli: Format
