lib/ndn/packet.ml: Data Interest Name String
