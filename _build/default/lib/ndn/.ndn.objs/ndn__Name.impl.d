lib/ndn/name.ml: Format Hashtbl List Map Set String
