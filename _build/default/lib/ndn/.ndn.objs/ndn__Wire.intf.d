lib/ndn/wire.mli: Data Format Interest Packet
