lib/ndn/node.ml: Array Content_store Data Eviction Fib Format Interest Lazy List Name_trie Option Packet Pit Sim
