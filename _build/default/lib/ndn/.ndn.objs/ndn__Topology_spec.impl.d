lib/ndn/topology_spec.ml: Buffer Data Eviction Fun Hashtbl Interest List Name Ndn_crypto Network Node Printf Result Sim String
