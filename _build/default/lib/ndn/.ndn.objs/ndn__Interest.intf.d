lib/ndn/interest.mli: Format Name
