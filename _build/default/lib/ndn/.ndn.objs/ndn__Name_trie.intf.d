lib/ndn/name_trie.mli: Name
