lib/ndn/topology_spec.mli: Network Node Sim
