lib/ndn/content_store.ml: Array Data Eviction Format Name Name_trie Option Sim
