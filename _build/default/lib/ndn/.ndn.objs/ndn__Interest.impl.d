lib/ndn/interest.ml: Format Int64 Name Printf
