lib/ndn/fib.mli: Name
