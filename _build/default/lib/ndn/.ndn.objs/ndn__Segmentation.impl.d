lib/ndn/segmentation.ml: Array Buffer Data Hashtbl Interest List Name Node String
