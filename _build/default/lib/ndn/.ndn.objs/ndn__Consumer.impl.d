lib/ndn/consumer.ml: Data Float List Node Option Sim
