lib/ndn/fib.ml: List Name_trie
