lib/ndn/network.ml: Buffer Data Fib Interest Name Ndn_crypto Node Option Printf Sim
