lib/ndn/pit.ml: Float Hashtbl Int64 List Name_trie
