lib/ndn/segmentation.mli: Data Interest Name Node
