lib/ndn/network.mli: Eviction Name Node Sim
