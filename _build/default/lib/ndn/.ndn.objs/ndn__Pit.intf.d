lib/ndn/pit.mli: Name
