lib/ndn/data.mli: Format Name
