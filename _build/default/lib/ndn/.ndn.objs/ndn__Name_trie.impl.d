lib/ndn/name_trie.ml: List Map Name String
