lib/ndn/node.mli: Content_store Data Eviction Fib Format Interest Name Packet Pit Sim
