lib/ndn/name.mli: Format Hashtbl Map Set
