lib/ndn/wire.ml: Buffer Char Data Format Int64 Interest List Name Packet Printf Result String
