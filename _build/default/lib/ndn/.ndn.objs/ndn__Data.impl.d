lib/ndn/data.ml: Format Name Ndn_crypto Option String
