(** Content segmentation.

    "Large pieces of content must be split into fragments" (Section
    II): a content object carries one segment, named
    [base/<segment-number>].  Segmentation is what powers the paper's
    amplification attack — the adversary probes any one of n segments —
    and what the grouping countermeasure must protect as a unit.

    Wire format: each segment's payload is prefixed with a one-line
    header [total-segments '\n'] so a consumer can pipeline the rest
    after fetching any one segment. *)

val segment_name : base:Name.t -> int -> Name.t
(** [base/<i>].
    @raise Invalid_argument if [i < 0]. *)

val split : payload:string -> segment_size:int -> string list
(** Cut a payload into chunks of at most [segment_size] bytes (the
    final chunk may be shorter; an empty payload yields one empty
    chunk).
    @raise Invalid_argument if [segment_size <= 0]. *)

val segment_count : payload:string -> segment_size:int -> int

val producer_handler :
  base:Name.t ->
  producer:string ->
  key:string ->
  ?producer_private:bool ->
  ?content_id:string ->
  ?freshness_ms:float ->
  payload:string ->
  segment_size:int ->
  unit ->
  Interest.t ->
  Data.t option
(** A {!Node.add_producer}-compatible handler serving the segments of
    one content under [base].  All segments share [content_id] (when
    given) so privacy-aware routers can group them. *)

val parse_segment : Data.t -> (int * string) option
(** Decode a segment object into [(total_segments, chunk)]; [None] if
    the payload is not in segment format. *)

val fetch_all :
  Node.t ->
  base:Name.t ->
  ?pipeline:int ->
  ?timeout_ms:float ->
  on_complete:(string option -> unit) ->
  unit ->
  unit
(** Consumer-side reassembly: fetch segment 0, learn the total, issue
    up to [pipeline] (default 4) concurrent interests for the rest, and
    deliver the reassembled payload ([None] if any segment times out).
    Drive the engine to completion to observe the callback. *)
