(** A prefix tree keyed by {!Name.t}.

    Shared index structure behind the FIB (longest-prefix match of an
    interest name against routed prefixes), the content store
    (does any cached name extend this interest name?) and the PIT
    (which pending interest names are prefixes of an arriving Data
    name?). *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
(** Number of bound names. *)

val is_empty : 'a t -> bool

val add : 'a t -> Name.t -> 'a -> unit
(** Bind a value to a name, replacing any previous binding. *)

val remove : 'a t -> Name.t -> unit
(** Unbind; prunes empty branches.  No-op if unbound. *)

val find : 'a t -> Name.t -> 'a option
(** Exact-name lookup. *)

val mem : 'a t -> Name.t -> bool

val longest_prefix : 'a t -> Name.t -> (Name.t * 'a) option
(** The bound name that is the longest prefix of the query (used by FIB
    forwarding). *)

val fold_prefixes : 'a t -> Name.t -> init:'acc -> f:('acc -> Name.t -> 'a -> 'acc) -> 'acc
(** Fold over every bound name that is a prefix of the query, shortest
    first (used to satisfy all PIT entries matched by a Data packet). *)

val first_extension : 'a t -> Name.t -> (Name.t * 'a) option
(** The smallest (in {!Name.compare} order) bound name of which the
    query is a prefix — NDN content-store matching, where an interest
    for [/a/b] can be satisfied by cached [/a/b/c]. *)

val fold_subtree : 'a t -> Name.t -> init:'acc -> f:('acc -> Name.t -> 'a -> 'acc) -> 'acc
(** Fold over all bound names extending the query (including the query
    itself if bound), in {!Name.compare} order. *)

val iter : 'a t -> f:(Name.t -> 'a -> unit) -> unit

val to_list : 'a t -> (Name.t * 'a) list
(** All bindings in name order. *)

val clear : 'a t -> unit
