type t = Lru | Fifo | Lfu | Random_replacement

let to_string = function
  | Lru -> "lru"
  | Fifo -> "fifo"
  | Lfu -> "lfu"
  | Random_replacement -> "random"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  match String.lowercase_ascii s with
  | "lru" -> Some Lru
  | "fifo" -> Some Fifo
  | "lfu" -> Some Lfu
  | "random" -> Some Random_replacement
  | _ -> None

let all = [ Lru; Fifo; Lfu; Random_replacement ]
