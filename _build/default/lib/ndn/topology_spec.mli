(** Text format for describing experiment topologies.

    Lets studies beyond the paper's built-in setups be defined in a
    file instead of OCaml:

    {v
    # nodes first; attributes are optional
    node R  cs=10000 policy=lru proc=normal:0.55:0.12:0.15
    node U  caching=false
    node P

    # bidirectional links
    link U R latency=normal:0.25:0.06:0.05
    link R P latency=const:1.8 loss=0.01

    # interest routing (via a directly linked neighbour)
    route U /prod via R
    route R /prod via P

    # a producer application serving a namespace
    producer P /prod key=pkey payload=1024 private=false delay=0.4
    v}

    Latency grammar: [const:MS], [uniform:LO:HI],
    [normal:MEAN:SD:MIN], [shifted_exp:SHIFT:RATE], or a [+]-joined sum
    of those. *)

type t = {
  network : Network.t;
  nodes : (string * Node.t) list;  (** Declaration order. *)
}

val node : t -> string -> Node.t
(** @raise Not_found for undeclared names. *)

val parse : ?seed:int -> string -> (t, string) result
(** Build a network from a specification text.  Errors carry the line
    number and a description. *)

val parse_file : ?seed:int -> path:string -> unit -> (t, string) result

val parse_latency : string -> (Sim.Latency.t, string) result
(** The latency sub-grammar, exposed for reuse and tests. *)
