type t = { trie : int list ref Name_trie.t }

let create () = { trie = Name_trie.create () }

let add_route t ~prefix ~face =
  match Name_trie.find t.trie prefix with
  | Some faces -> if not (List.mem face !faces) then faces := !faces @ [ face ]
  | None -> Name_trie.add t.trie prefix (ref [ face ])

let remove_route t ~prefix ~face =
  match Name_trie.find t.trie prefix with
  | None -> ()
  | Some faces ->
    faces := List.filter (fun f -> f <> face) !faces;
    if !faces = [] then Name_trie.remove t.trie prefix

let next_hops t name =
  match Name_trie.longest_prefix t.trie name with
  | Some (_, faces) -> !faces
  | None -> []

let next_hop t name = match next_hops t name with [] -> None | f :: _ -> Some f

let routes t = List.map (fun (n, faces) -> (n, !faces)) (Name_trie.to_list t.trie)

let size t = Name_trie.size t.trie

let clear t = Name_trie.clear t.trie
