(** Popularity estimation through Random-Cache.

    Beyond the binary "was it requested?" question, an adversary may
    want the request {e count} (local popularity) of a content.
    Against the naive scheme the count is recovered exactly
    ({!Counter_attack}); against Random-Cache the best the adversary
    can do is Bayesian inference over the random threshold — this
    module mounts that optimal attack, so the measured estimation error
    is a tight empirical reading of the scheme's leakage. *)

type result = {
  trials : int;
  exact_rate : float;  (** Fraction of trials with MAP estimate = truth. *)
  mean_abs_error : float;
  mean_posterior_entropy_bits : float;
      (** Residual uncertainty after the attack. *)
}

val estimate :
  kdist:Core.Kdist.t ->
  max_count:int ->
  probes:int ->
  observed_misses:int ->
  int Privacy.Dist.t
(** Posterior over the hidden prior-request count (uniform prior on
    [0..max_count]) given the adversary's transcript. *)

val run :
  kdist:Core.Kdist.t ->
  true_count:int ->
  max_count:int ->
  ?probes:int ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  result
(** Monte-Carlo: per trial, a fresh Random-Cache instance receives
    [true_count] honest requests; the adversary probes [probes] times
    (default: enough to saturate), computes the posterior, and answers
    its MAP estimate. *)

val information_leak_bits :
  kdist:Core.Kdist.t -> max_count:int -> probes:int -> float
(** Exact expected leakage (mutual information) of the campaign — what
    {!result.mean_posterior_entropy_bits} converges to being subtracted
    from the prior entropy. *)
