(** Exact request-count recovery against the naïve k-threshold scheme
    (Section VI, "A Non-Private Naïve Approach").

    Because the naïve scheme's threshold k is public and deterministic,
    the adversary issues probes until the first cache hit and solves
    for the number of prior requests: if the first hit arrives on probe
    j*, then exactly [x = k + 2 − j*] requests preceded the probing
    (with x = 0 and "never requested" coinciding at j* = k + 2). *)

type outcome = {
  probes_used : int;  (** j* — index of the adversary's first hit. *)
  recovered_count : int;  (** The inferred number of prior requests. *)
}

val run : naive:Core.Naive_scheme.t -> Ndn.Name.t -> max_probes:int -> outcome option
(** Probe through the naïve scheme until the first hit ([None] if none
    within [max_probes] — the content is fresh and k is larger than the
    probe budget allows distinguishing). *)

val demonstrate :
  k:int -> prior_requests:int -> outcome option
(** Self-contained demonstration: build a naïve scheme with threshold
    [k], feed it [prior_requests] honest requests, run the attack and
    return what the adversary learns.  Used by tests to verify
    [recovered_count = prior_requests] for all [prior_requests <= k+1]. *)

val random_cache_resists :
  kdist:Core.Kdist.t -> prior_requests:int -> seed:int -> outcome option
(** The same attack mounted on Random-Cache: the recovered "count" is
    wrong except by luck, because the threshold is secret and random.
    Returns the attacker's (deluded) outcome for comparison. *)
