lib/attack/interaction_attack.mli: Core Ndn
