lib/attack/deployment_experiment.ml: Array Core Detector Format List Ndn Printf Sim
