lib/attack/scope_probe.ml: List Ndn
