lib/attack/popularity_attack.mli: Core Privacy
