lib/attack/counter_attack.mli: Core Ndn
