lib/attack/deployment_experiment.mli: Format
