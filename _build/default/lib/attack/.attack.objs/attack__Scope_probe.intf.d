lib/attack/scope_probe.mli: Ndn
