lib/attack/detector.ml: Array
