lib/attack/interaction_attack.ml: Core Ndn
