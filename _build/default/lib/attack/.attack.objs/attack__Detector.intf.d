lib/attack/detector.mli:
