lib/attack/probe.ml: Ndn Network Option
