lib/attack/correlation_attack.mli: Core
