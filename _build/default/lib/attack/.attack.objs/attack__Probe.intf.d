lib/attack/probe.mli: Ndn
