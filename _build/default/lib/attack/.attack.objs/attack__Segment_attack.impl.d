lib/attack/segment_attack.ml: Array Detector List Ndn Printf Probe
