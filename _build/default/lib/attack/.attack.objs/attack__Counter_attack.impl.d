lib/attack/counter_attack.ml: Core Ndn Sim
