lib/attack/popularity_attack.ml: Core List Ndn Option Privacy Sim
