lib/attack/correlation_attack.ml: Core Ndn Printf Privacy Sim
