lib/attack/timing_experiment.mli: Format Ndn Sim
