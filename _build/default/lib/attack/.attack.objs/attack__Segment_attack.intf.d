lib/attack/segment_attack.mli: Ndn
