lib/attack/timing_experiment.ml: Array Detector Float Format List Ndn Printf Probe Sim
