type result = {
  trials : int;
  exact_rate : float;
  mean_abs_error : float;
  mean_posterior_entropy_bits : float;
}

let count_prior ~max_count = Privacy.Dist.uniform_int (max_count + 1)

let estimate ~kdist ~max_count ~probes ~observed_misses =
  Privacy.Bayes.posterior ~k_dist:(Core.Kdist.to_dist kdist)
    ~count_prior:(count_prior ~max_count) ~probes ~observed_misses

let default_probes kdist =
  match kdist with
  | Core.Kdist.Uniform domain -> domain + 2
  | Core.Kdist.Truncated_geometric { domain; _ } -> domain + 2
  | Core.Kdist.Constant k -> k + 2
  | Core.Kdist.Weighted pairs ->
    2 + List.fold_left (fun acc (k, _) -> max acc k) 0 pairs

let run ~kdist ~true_count ~max_count ?probes ?(trials = 500) ?(seed = 5) () =
  let probes = Option.value probes ~default:(default_probes kdist) in
  let rng = Sim.Rng.create seed in
  let name = Ndn.Name.of_string "/victim/content" in
  let exact = ref 0 and abs_err = ref 0 and entropy_acc = ref 0. in
  for _ = 1 to trials do
    let rc = Core.Random_cache.create ~kdist ~rng:(Sim.Rng.split rng) () in
    for _ = 1 to true_count do
      ignore (Core.Random_cache.on_request rc name)
    done;
    let misses = ref 0 in
    for _ = 1 to probes do
      match Core.Random_cache.on_request rc name with
      | Core.Random_cache.Miss -> incr misses
      | Core.Random_cache.Hit -> ()
    done;
    let posterior = estimate ~kdist ~max_count ~probes ~observed_misses:!misses in
    let guess = Privacy.Bayes.map_estimate posterior in
    if guess = true_count then incr exact;
    abs_err := !abs_err + abs (guess - true_count);
    entropy_acc := !entropy_acc +. Privacy.Bayes.entropy posterior
  done;
  {
    trials;
    exact_rate = float_of_int !exact /. float_of_int trials;
    mean_abs_error = float_of_int !abs_err /. float_of_int trials;
    mean_posterior_entropy_bits = !entropy_acc /. float_of_int trials;
  }

let information_leak_bits ~kdist ~max_count ~probes =
  Privacy.Bayes.mutual_information ~k_dist:(Core.Kdist.to_dist kdist)
    ~count_prior:(count_prior ~max_count) ~probes
