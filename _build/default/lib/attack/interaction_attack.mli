(** Detecting two-way interactive communication (Section I).

    "A combination of these two attacks can be used to learn whether
    two parties (Alice and Bob) have been recently, or still are,
    involved in a two-way interactive communication, e.g., voice or
    SSH."

    The adversary shares a router with both parties, guesses recent
    frame names under each party's namespace ([prefix/<seq>] is
    predictable for ordinary sessions), and probes the router's cache
    with scope-limited interests.  Fresh frames from BOTH namespaces
    imply an ongoing conversation.  Unpredictable naming removes the
    adversary's ability to construct any probe name. *)

type verdict = Talking | Not_talking

type result = {
  trials : int;
  accuracy : float;  (** Probability of the correct verdict; 0.5 = blind. *)
  false_positives : int;
  false_negatives : int;
}

val probe_conversation :
  Ndn.Network.conversation_setup ->
  ?max_seq:int ->
  unit ->
  verdict
(** One campaign against a (possibly silent) conversation topology:
    probe sequence numbers [0 .. max_seq) (default 32) under both
    parties' predictable namespaces with scope-2 interests and declare
    {!Talking} iff both sides show a cached frame. *)

val run :
  naming:Core.Interactive_session.naming ->
  ?trials:int ->
  ?frames:int ->
  ?seed:int ->
  unit ->
  result
(** Full experiment: per trial, a conversation happens (or not, 50/50);
    the adversary then runs {!probe_conversation}.  With [Predictable]
    naming the accuracy should be ~1; with [Unpredictable _] it must
    collapse to ~0.5 (the adversary cannot name anything to probe). *)
