(** Correlation attack on Random-Cache and the grouping defence
    (Section VI, "Addressing Content Correlation").

    Random-Cache assumes statistically independent content.  When M
    related contents (segments of one video, pages of one site) are
    always requested together, each carries an independent threshold —
    so by probing all M once, the adversary effectively samples M
    thresholds and succeeds if {e any} of them reveals a hit:
    advantage ≈ 1 − (1 − q)^M, overwhelming for large M.  Grouping
    collapses the set to a single threshold and restores the
    single-content guarantee. *)

type result = {
  related_contents : int;
  trials : int;
  adversary_accuracy : float;
      (** Probability of correctly deciding "was this related set
          requested before?"; 0.5 = no advantage. *)
}

val run :
  grouping:Core.Grouping.t ->
  kdist:Core.Kdist.t ->
  related_contents:int ->
  prior_requests:int ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  result
(** Per trial: a fresh Random-Cache instance keyed by [grouping]; with
    probability 1/2 each of the M related contents (one namespace,
    [prior_requests] requests each, interleaved) was requested before.
    The adversary probes each content once and answers "requested"
    iff it observes at least one hit. *)

val advantage_theoretical :
  kdist:Core.Kdist.t -> related_contents:int -> prior_requests:int -> float
(** Closed-form accuracy of that adversary against ungrouped
    Random-Cache: [1/2 + (1 − (1 − q)^M)/2] with
    [q = Pr(k_C < prior_requests)] (a probe of a warmed content is
    request [prior+1], a hit iff [prior + 1 > k_C + 1]). *)
