(** Probing primitives shared by the attacks of Section III. *)

val measure :
  Ndn.Network.probe_setup ->
  from:Ndn.Node.t ->
  ?scope:int ->
  ?consumer_private:bool ->
  Ndn.Name.t ->
  float option
(** One probe: express an interest, run the simulation to completion,
    return the observed RTT ([None] on timeout). *)

val warm : Ndn.Network.probe_setup -> Ndn.Name.t -> unit
(** Make the honest user U fetch a content, populating every cache on
    U's path — in particular the shared router R. *)

val baseline_hit_rtt : Ndn.Network.probe_setup -> Ndn.Name.t -> float option
(** The adversary's d2 reference (Section III): request an existing
    content twice in succession; the second response is certainly
    served from R's cache.  Returns the second RTT. *)

type decision = Was_cached | Not_cached

val two_probe_decision :
  Ndn.Network.probe_setup ->
  target:Ndn.Name.t ->
  reference:Ndn.Name.t ->
  ?margin_ms:float ->
  unit ->
  decision option
(** The full online attack: measure d1 for the target, establish the d2
    cache-hit baseline with a throwaway reference content, and decide
    [Was_cached] iff [d1 <= d2 + margin] (default margin 25% of d2).
    [None] if any probe times out.  Note this consumes the target: the
    probe itself caches it at R. *)
