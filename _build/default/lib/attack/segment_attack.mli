(** Multi-segment amplification (Section III).

    Large NDN content is split into many content objects; the
    per-object distinguisher need only succeed once.  With per-object
    success probability p and n independent segments, the paper
    computes [Pr(SUCCESS) = 1 − (1 − p)^n] — e.g. p = 0.59, n = 8
    gives ≈ 0.999. *)

val theoretical_success : p:float -> segments:int -> float
(** The paper's formula [1 − (1 − p)^n].
    @raise Invalid_argument unless [0 <= p <= 1] and [segments >= 1]. *)

val paper_example_row : segments:int -> float
(** The in-text example with p = 0.59 (so failure 0.41). *)

type result = {
  segments : int;
  per_object_success : float;  (** Measured single-probe success. *)
  amplified_success : float;  (** Measured majority-vote success over all segments. *)
  predicted : float;  (** [theoretical_success] at the measured p. *)
}

val run :
  make_setup:(seed:int -> Ndn.Network.probe_setup) ->
  segments:int ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  result
(** Empirical check in a live topology: per trial, a multi-segment
    content is (or is not) pre-fetched by the honest user; the
    adversary probes every segment, classifies each RTT with a
    {!Detector} trained on reference segments, and votes.  Majority
    voting is the realizable analogue of the paper's idealized
    "one success suffices" argument (the adversary cannot tell which
    individual classifications were correct). *)
