type verdict = Hit | Miss

type t = {
  threshold : float;
  hits_below : bool; (* are hits on the fast (below-threshold) side? *)
  training_accuracy : float;
}

let threshold t = t.threshold
let training_accuracy t = t.training_accuracy

(* Scan every candidate boundary (midpoints between adjacent distinct
   observations in the pooled sorted samples) and keep the one with the
   best balanced accuracy.  O(n log n) via prefix counts. *)
let train ~hit_samples ~miss_samples =
  let nh = Array.length hit_samples and nm = Array.length miss_samples in
  if nh = 0 || nm = 0 then invalid_arg "Detector.train: empty sample set";
  let tagged =
    Array.append
      (Array.map (fun x -> (x, true)) hit_samples)
      (Array.map (fun x -> (x, false)) miss_samples)
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) tagged;
  let nhf = float_of_int nh and nmf = float_of_int nm in
  (* Accuracy of the rule "hit iff sample <= boundary after index i"
     (boundary between tagged.(i) and tagged.(i+1)); i = -1 means
     "nothing classified as hit". *)
  let best_acc = ref 0. and best_idx = ref (-1) and best_flip = ref false in
  let hits_seen = ref 0 and misses_seen = ref 0 in
  let consider i =
    let h = float_of_int !hits_seen and m = float_of_int !misses_seen in
    (* hits below boundary: correct hits = h, correct misses = nm - m *)
    let acc_below = ((h /. nhf) +. ((nmf -. m) /. nmf)) /. 2. in
    let acc_above = (((nhf -. h) /. nhf) +. (m /. nmf)) /. 2. in
    if acc_below > !best_acc then begin
      best_acc := acc_below;
      best_idx := i;
      best_flip := false
    end;
    if acc_above > !best_acc then begin
      best_acc := acc_above;
      best_idx := i;
      best_flip := true
    end
  in
  consider (-1);
  Array.iteri
    (fun i (x, is_hit) ->
      if is_hit then incr hits_seen else incr misses_seen;
      (* Only place boundaries between distinct values. *)
      if i = Array.length tagged - 1 || fst tagged.(i + 1) > x then consider i)
    tagged;
  let boundary =
    if !best_idx < 0 then fst tagged.(0) -. 1.
    else if !best_idx = Array.length tagged - 1 then fst tagged.(!best_idx) +. 1.
    else (fst tagged.(!best_idx) +. fst tagged.(!best_idx + 1)) /. 2.
  in
  { threshold = boundary; hits_below = not !best_flip; training_accuracy = !best_acc }

let classify t x =
  let below = x <= t.threshold in
  if below = t.hits_below then Hit else Miss

let evaluate t ~hit_samples ~miss_samples =
  let count pred arr =
    Array.fold_left (fun acc x -> if pred x then acc + 1 else acc) 0 arr
  in
  let correct_hits = count (fun x -> classify t x = Hit) hit_samples in
  let correct_misses = count (fun x -> classify t x = Miss) miss_samples in
  let frac n d = if d = 0 then 0. else float_of_int n /. float_of_int d in
  (frac correct_hits (Array.length hit_samples)
  +. frac correct_misses (Array.length miss_samples))
  /. 2.

let split fraction arr =
  let n = Array.length arr in
  let k = max 1 (min (n - 1) (int_of_float (fraction *. float_of_int n))) in
  (Array.sub arr 0 k, Array.sub arr k (n - k))

let success_rate ?(train_fraction = 0.5) ?bins ~hit_samples ~miss_samples () =
  ignore bins;
  let h_train, h_test = split train_fraction hit_samples in
  let m_train, m_test = split train_fraction miss_samples in
  let t = train ~hit_samples:h_train ~miss_samples:m_train in
  evaluate t ~hit_samples:h_test ~miss_samples:m_test
