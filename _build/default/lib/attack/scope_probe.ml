type verdict = Cached | Not_cached

let probe (setup : Ndn.Network.probe_setup) ?(timeout_ms = 500.) name =
  match
    Ndn.Network.fetch_rtt setup.Ndn.Network.net
      ~from:setup.Ndn.Network.adversary ~scope:2 ~timeout_ms name
  with
  | Some _ -> Cached
  | None -> Not_cached

let census setup names = List.map (fun n -> (n, probe setup n)) names
