type placement = No_defence | Edge_only | Core_only | Everywhere

let placement_label = function
  | No_defence -> "no defence"
  | Edge_only -> "edge routers only"
  | Core_only -> "core router only"
  | Everywhere -> "every router"

let all_placements = [ No_defence; Edge_only; Core_only; Everywhere ]

type result = {
  placement : placement;
  attack_success : float;
  remote_hit_latency_ms : float;
  remote_miss_latency_ms : float;
}

let defend node ~seed =
  ignore
    (Core.Private_router.attach node ~rng:(Sim.Rng.create seed)
       (Core.Private_router.Delay_private Core.Delay.Content_specific))

let make_setup placement ~seed =
  let producer =
    { Ndn.Network.default_producer_config with producer_private = true }
  in
  let setup = Ndn.Network.edge_core ~seed ~producer () in
  let edges = [ setup.Ndn.Network.edge1; setup.Ndn.Network.edge2 ] in
  (match placement with
  | No_defence -> ()
  | Edge_only -> List.iteri (fun i e -> defend e ~seed:(seed + 100 + i)) edges
  | Core_only -> defend setup.Ndn.Network.core ~seed:(seed + 200)
  | Everywhere ->
    List.iteri (fun i e -> defend e ~seed:(seed + 100 + i)) edges;
    defend setup.Ndn.Network.core ~seed:(seed + 200));
  setup

let fetch setup ~from name =
  Ndn.Network.fetch_rtt setup.Ndn.Network.ecnet ~from name

let run placement ?(trials = 40) ?(seed = 17) () =
  let hit_samples = ref [] and miss_samples = ref [] in
  let remote_hits = Sim.Stats.create () and remote_misses = Sim.Stats.create () in
  for trial = 0 to trials - 1 do
    let setup = make_setup placement ~seed:(seed + trial) in
    let name kind = Ndn.Name.of_string (Printf.sprintf "/prod/%s/%d" kind trial) in
    (* Victim activity the local adversary wants to detect. *)
    ignore (fetch setup ~from:setup.Ndn.Network.victim (name "warm"));
    (* Adversary probes through edge1. *)
    (match fetch setup ~from:setup.Ndn.Network.local_adversary (name "warm") with
    | Some rtt -> hit_samples := rtt :: !hit_samples
    | None -> ());
    (match fetch setup ~from:setup.Ndn.Network.local_adversary (name "cold") with
    | Some rtt -> miss_samples := rtt :: !miss_samples
    | None -> ());
    (* Honest remote consumer: content cached at the core (warmed by
       the victim's fetch) vs a genuinely cold object. *)
    (match fetch setup ~from:setup.Ndn.Network.remote_consumer (name "warm") with
    | Some rtt -> Sim.Stats.add remote_hits rtt
    | None -> ());
    match fetch setup ~from:setup.Ndn.Network.remote_consumer (name "fresh") with
    | Some rtt -> Sim.Stats.add remote_misses rtt
    | None -> ()
  done;
  let attack_success =
    Detector.success_rate
      ~hit_samples:(Array.of_list !hit_samples)
      ~miss_samples:(Array.of_list !miss_samples)
      ()
  in
  {
    placement;
    attack_success;
    remote_hit_latency_ms = Sim.Stats.mean remote_hits;
    remote_miss_latency_ms = Sim.Stats.mean remote_misses;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%-18s attack=%5.1f%%  remote core-hit=%6.2fms  remote miss=%6.2fms"
    (placement_label r.placement)
    (100. *. r.attack_success)
    r.remote_hit_latency_ms r.remote_miss_latency_ms
