(** Where should the countermeasure run? (paper, footnote 6)

    "A sensible approach is to involve only consumer-facing routers,
    i.e., those that are most likely to be probed by Adv" — deferred by
    the paper to future work; measured here.

    In the {!Ndn.Network.edge_core} topology the adversary shares
    consumer-facing [edge1] with the victim, while an honest remote
    consumer benefits from the [core] cache.  Deploying the
    content-specific-delay countermeasure at different router sets
    trades attack resistance against remote-consumer latency:

    - edge-only: defeats the local adversary, keeps core hits fast;
    - core-only: the adversary probes the undefended edge cache and
      wins anyway, while remote consumers lose the core cache's latency
      benefit — the worst of both;
    - everywhere: safe but penalizes every honest consumer of private
      content by the full producer RTT. *)

type placement = No_defence | Edge_only | Core_only | Everywhere

val placement_label : placement -> string

val all_placements : placement list

type result = {
  placement : placement;
  attack_success : float;
      (** Distinguisher accuracy of the edge-sharing adversary against
          the victim's requests. *)
  remote_hit_latency_ms : float;
      (** Honest remote consumer fetching content already cached at the
          core. *)
  remote_miss_latency_ms : float;
      (** Same consumer fetching cold content (baseline). *)
}

val run : placement -> ?trials:int -> ?seed:int -> unit -> result
(** [trials] (default 40) independent contents per measurement. *)

val pp_result : Format.formatter -> result -> unit
