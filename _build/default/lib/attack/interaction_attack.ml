type verdict = Talking | Not_talking

type result = {
  trials : int;
  accuracy : float;
  false_positives : int;
  false_negatives : int;
}

let scope_probe_hit (setup : Ndn.Network.conversation_setup) name =
  match
    Ndn.Network.fetch_rtt setup.Ndn.Network.cnet
      ~from:setup.Ndn.Network.eavesdropper ~scope:2 ~timeout_ms:200. name
  with
  | Some _ -> true
  | None -> false

let probe_conversation (setup : Ndn.Network.conversation_setup) ?(max_seq = 32)
    () =
  (* Predictable frame names: prefix/<seq>. The adversary sweeps recent
     sequence numbers on both sides. *)
  let side_active prefix =
    let rec go seq =
      if seq >= max_seq then false
      else if scope_probe_hit setup (Ndn.Name.append prefix (string_of_int seq))
      then true
      else go (seq + 1)
    in
    go 0
  in
  if
    side_active setup.Ndn.Network.alice_prefix
    && side_active setup.Ndn.Network.bob_prefix
  then Talking
  else Not_talking

let run ~naming ?(trials = 20) ?(frames = 16) ?(seed = 31) () =
  let correct = ref 0 and fp = ref 0 and fn = ref 0 in
  for trial = 0 to trials - 1 do
    let setup = Ndn.Network.conversation ~seed:(seed + trial) () in
    let talking = trial mod 2 = 0 in
    if talking then begin
      let session = Core.Interactive_session.start setup ~naming ~frames () in
      Ndn.Network.run setup.Ndn.Network.cnet;
      (* The call must actually have happened for the ground truth to
         mean anything. *)
      assert (Core.Interactive_session.complete session)
    end;
    let verdict = probe_conversation setup () in
    (match (verdict, talking) with
    | Talking, true | Not_talking, false -> incr correct
    | Talking, false -> incr fp
    | Not_talking, true -> incr fn);
    ()
  done;
  {
    trials;
    accuracy = float_of_int !correct /. float_of_int trials;
    false_positives = !fp;
    false_negatives = !fn;
  }
