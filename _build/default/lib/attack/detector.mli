(** Hit/miss distinguisher from timing samples.

    The adversary of Section III reduces to a binary classifier over
    round-trip times: given reference distributions of "served from the
    probed cache" and "served from farther away", classify a fresh
    observation.  For the unimodal, ordered delay distributions of the
    paper a threshold test is Bayes-optimal; the threshold is learned
    by maximizing empirical accuracy over the training samples. *)

type t

val train : hit_samples:float array -> miss_samples:float array -> t
(** Learn the optimal decision threshold.  Hits are expected to be
    faster than misses; the classifier still works (by flipping) if
    they are not.
    @raise Invalid_argument if either sample set is empty. *)

type verdict = Hit | Miss

val classify : t -> float -> verdict

val threshold : t -> float
(** The learned decision boundary (milliseconds). *)

val training_accuracy : t -> float

val evaluate : t -> hit_samples:float array -> miss_samples:float array -> float
(** Balanced accuracy on held-out samples:
    [(P(correct | hit) + P(correct | miss)) / 2] — the paper's
    "probability of determining whether C is retrieved from R's
    cache". *)

val success_rate :
  ?train_fraction:float ->
  ?bins:int ->
  hit_samples:float array ->
  miss_samples:float array ->
  unit ->
  float
(** One-call experiment: split each sample set (first
    [train_fraction], default 0.5, for training), train, and report
    held-out balanced accuracy.  [bins] is accepted for API stability
    but unused by the threshold classifier. *)
