let theoretical_success ~p ~segments =
  if p < 0. || p > 1. then invalid_arg "Segment_attack: p out of range";
  if segments < 1 then invalid_arg "Segment_attack: segments must be >= 1";
  1. -. ((1. -. p) ** float_of_int segments)

let paper_example_row ~segments = theoretical_success ~p:0.59 ~segments

type result = {
  segments : int;
  per_object_success : float;
  amplified_success : float;
  predicted : float;
}

let segment_name ~trial ~kind ~seg =
  Ndn.Name.of_string (Printf.sprintf "/prod/seg%d/%s/%d" trial kind seg)

let run ~make_setup ~segments ?(trials = 60) ?(seed = 11) () =
  (* Phase 1: train the per-segment detector on reference content in a
     dedicated setup. *)
  let train_setup = make_setup ~seed in
  let n_train = 60 in
  let hit_ref = Array.make n_train 0. and miss_ref = Array.make n_train 0. in
  for i = 0 to n_train - 1 do
    let w = segment_name ~trial:(-1) ~kind:"warm" ~seg:i in
    let c = segment_name ~trial:(-1) ~kind:"cold" ~seg:i in
    Probe.warm train_setup w;
    (match Probe.measure train_setup ~from:train_setup.Ndn.Network.adversary w with
    | Some r -> hit_ref.(i) <- r
    | None -> ());
    match Probe.measure train_setup ~from:train_setup.Ndn.Network.adversary c with
    | Some r -> miss_ref.(i) <- r
    | None -> ()
  done;
  let detector = Detector.train ~hit_samples:hit_ref ~miss_samples:miss_ref in
  (* Phase 2: per trial, flip whether U fetched the multi-segment
     content; adversary probes each segment and votes. *)
  let single_correct = ref 0 and single_total = ref 0 in
  let vote_correct = ref 0 in
  for trial = 0 to trials - 1 do
    let setup = make_setup ~seed:(seed + 1 + trial) in
    let was_fetched = trial mod 2 = 0 in
    let names =
      List.init segments (fun seg -> segment_name ~trial ~kind:"target" ~seg)
    in
    if was_fetched then List.iter (Probe.warm setup) names;
    let votes_hit = ref 0 and votes_miss = ref 0 in
    List.iter
      (fun name ->
        match Probe.measure setup ~from:setup.Ndn.Network.adversary name with
        | Some rtt ->
          let v = Detector.classify detector rtt in
          incr single_total;
          let correct = (v = Detector.Hit) = was_fetched in
          if correct then incr single_correct;
          if v = Detector.Hit then incr votes_hit else incr votes_miss
        | None -> incr votes_miss)
      names;
    let guess_fetched = !votes_hit > !votes_miss in
    if guess_fetched = was_fetched then incr vote_correct
  done;
  let per_object_success =
    if !single_total = 0 then 0.
    else float_of_int !single_correct /. float_of_int !single_total
  in
  {
    segments;
    per_object_success;
    amplified_success = float_of_int !vote_correct /. float_of_int trials;
    predicted = theoretical_success ~p:per_object_success ~segments;
  }
