type outcome = { probes_used : int; recovered_count : int }

let run ~naive name ~max_probes =
  let k = Core.Naive_scheme.k naive in
  let rec probe j =
    if j > max_probes then None
    else
      match Core.Naive_scheme.on_request naive name with
      | Core.Random_cache.Hit -> Some { probes_used = j; recovered_count = k + 2 - j }
      | Core.Random_cache.Miss -> probe (j + 1)
  in
  probe 1

let demonstrate ~k ~prior_requests =
  let naive = Core.Naive_scheme.create ~k in
  let name = Ndn.Name.of_string "/victim/secret/document" in
  for _ = 1 to prior_requests do
    ignore (Core.Naive_scheme.on_request naive name)
  done;
  run ~naive name ~max_probes:(k + 3)

let random_cache_resists ~kdist ~prior_requests ~seed =
  let rng = Sim.Rng.create seed in
  let rc = Core.Random_cache.create ~kdist ~rng () in
  let name = Ndn.Name.of_string "/victim/secret/document" in
  for _ = 1 to prior_requests do
    ignore (Core.Random_cache.on_request rc name)
  done;
  (* The adversary wrongly assumes threshold = E[K]. *)
  let assumed_k = int_of_float (Core.Kdist.mean kdist) in
  let rec probe j limit =
    if j > limit then None
    else
      match Core.Random_cache.on_request rc name with
      | Core.Random_cache.Hit ->
        Some { probes_used = j; recovered_count = assumed_k + 2 - j }
      | Core.Random_cache.Miss -> probe (j + 1) limit
  in
  probe 1 (assumed_k * 4 + 8)
