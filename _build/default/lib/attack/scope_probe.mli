(** Scope-limited probing (Section III).

    An interest with [scope = 2] may traverse at most two NDN entities
    including the source, so if the adversary receives content at all,
    it {e must} have come from its first-hop router's cache — no timing
    needed.  Routers may legitimately ignore the scope field, which
    turns the answer into [Inconclusive]. *)

type verdict =
  | Cached  (** Content returned: it was in the first-hop cache. *)
  | Not_cached  (** Timeout: not in the first-hop cache (or dropped). *)

val probe :
  Ndn.Network.probe_setup -> ?timeout_ms:float -> Ndn.Name.t -> verdict
(** Issue a scope-2 interest from the adversary and wait it out.
    Deterministic — no distinguisher involved. *)

val census :
  Ndn.Network.probe_setup -> Ndn.Name.t list -> (Ndn.Name.t * verdict) list
(** Probe a list of names in order — the "oracle" enumeration of a
    neighbour's recent traffic. *)
