open Ndn

let measure (setup : Network.probe_setup) ~from ?scope ?consumer_private name =
  Network.fetch_rtt setup.Network.net ~from ?scope ?consumer_private name

let warm (setup : Network.probe_setup) name =
  ignore (measure setup ~from:setup.Network.user name)

let baseline_hit_rtt (setup : Network.probe_setup) name =
  let adv = setup.Network.adversary in
  ignore (measure setup ~from:adv name);
  measure setup ~from:adv name

type decision = Was_cached | Not_cached

let two_probe_decision (setup : Network.probe_setup) ~target ~reference
    ?margin_ms () =
  let d1 = measure setup ~from:setup.Network.adversary target in
  let d2 = baseline_hit_rtt setup reference in
  match (d1, d2) with
  | Some d1, Some d2 ->
    let margin = Option.value margin_ms ~default:(0.25 *. d2) in
    Some (if d1 <= d2 +. margin then Was_cached else Not_cached)
  | _ -> None
