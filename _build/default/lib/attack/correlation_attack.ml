type result = {
  related_contents : int;
  trials : int;
  adversary_accuracy : float;
}

let related_name i = Ndn.Name.of_string (Printf.sprintf "/site/album/photo-%d" i)

let run ~grouping ~kdist ~related_contents ~prior_requests ?(trials = 400)
    ?(seed = 23) () =
  let rng = Sim.Rng.create seed in
  let registry = Ndn.Name.Tbl.create 16 in
  (* All related contents belong to one producer-declared group for
     the By_content_id case. *)
  for i = 0 to related_contents - 1 do
    Core.Grouping.register_id ~registry ~name:(related_name i) ~id:"album-1"
  done;
  let correct = ref 0 in
  for trial = 0 to trials - 1 do
    let rc = Core.Random_cache.create ~kdist ~rng:(Sim.Rng.split rng) () in
    let requested = trial mod 2 = 0 in
    if requested then
      (* Honest consumers fetched the whole set, [prior_requests]
         times each, interleaved (the correlated access pattern). *)
      for _round = 1 to prior_requests do
        for i = 0 to related_contents - 1 do
          let key = Core.Grouping.key grouping ~registry (related_name i) in
          ignore (Core.Random_cache.on_request rc key)
        done
      done;
    let saw_hit = ref false in
    for i = 0 to related_contents - 1 do
      let key = Core.Grouping.key grouping ~registry (related_name i) in
      match Core.Random_cache.on_request rc key with
      | Core.Random_cache.Hit -> saw_hit := true
      | Core.Random_cache.Miss -> ()
    done;
    if !saw_hit = requested then incr correct
  done;
  {
    related_contents;
    trials;
    adversary_accuracy = float_of_int !correct /. float_of_int trials;
  }

let advantage_theoretical ~kdist ~related_contents ~prior_requests =
  if prior_requests <= 0 then 0.5
  else begin
    let dist = Core.Kdist.to_dist kdist in
    (* Probe of a warmed content is its (prior+1)-th request with
       counter value prior; hit iff prior > k_C. *)
    let q =
      Privacy.Dist.fold dist ~init:0. ~f:(fun acc k p ->
          if k < prior_requests then acc +. p else acc)
    in
    let p_any = 1. -. ((1. -. q) ** float_of_int related_contents) in
    (* When the set was never requested, every probe is a first
       request: always a miss, so that side is classified perfectly. *)
    0.5 +. (p_any /. 2.)
  end
