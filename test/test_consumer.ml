(* Tests for Ndn.Consumer: the retransmitting fetch loop, the RTT
   estimator it drives, Karn's algorithm (retransmitted samples must
   not feed the estimator) and the estimator-threading fetch_sequence.

   The loop runs over a real two-node topology so timeouts, losses and
   link repairs happen through the engine, not through mocks. *)

let prefix = Ndn.Name.of_string "/s"

(* consumer --[latency, loss]-- producer; the consumer does not cache,
   so every attempt traverses the link. *)
let make_pair ?(loss = 0.) ?(latency = Sim.Latency.Constant 5.) () =
  let net = Ndn.Network.create ~seed:3 () in
  let c = Ndn.Network.add_node net ~caching:false "C" in
  let p = Ndn.Network.add_node net "P" in
  let cf, _ = Ndn.Network.connect net ~loss ~latency c p in
  Ndn.Network.route net c ~prefix ~via:cf;
  Ndn.Node.add_producer p ~prefix (fun i ->
      Some
        (Ndn.Data.create ~producer:"P" ~key:"k" ~payload:"v"
           i.Ndn.Interest.name));
  (net, c)

let fetch_sync ?max_retries ?estimator net c name =
  let result = ref None in
  Ndn.Consumer.fetch c ?max_retries ?estimator
    ~on_done:(fun o ->
      (match !result with
      | Some _ -> Alcotest.fail "on_done fired more than once"
      | None -> ());
      result := Some o)
    name;
  Ndn.Network.run net;
  match !result with
  | Some o -> o
  | None -> Alcotest.fail "on_done never fired"

(* --- total loss: retries, backoff, exactly one on_done --- *)

let test_lossy_exhausts_retries () =
  let net, c = make_pair ~loss:1.0 () in
  let estimator = Ndn.Consumer.Rtt_estimator.create ~initial_rto_ms:50. () in
  let o = fetch_sync ~max_retries:3 ~estimator net c (Ndn.Name.of_string "/s/x") in
  Alcotest.(check bool) "no data" true (o.Ndn.Consumer.data = None);
  Alcotest.(check int) "initial attempt + 3 retries" 4 o.Ndn.Consumer.attempts;
  (* Timeouts back off exponentially from the initial RTO: the four
     attempts wait 50 + 100 + 200 + 400 virtual ms. *)
  Alcotest.(check (float 1e-9)) "elapsed = sum of backed-off RTOs" 750.
    o.Ndn.Consumer.elapsed_ms;
  (* Backoff fires when scheduling a retry, not after the final
     failure, so three backoffs total. *)
  Alcotest.(check (float 1e-9)) "RTO left at the last backoff" 400.
    (Ndn.Consumer.Rtt_estimator.rto estimator);
  Alcotest.(check int) "lost attempts feed no samples" 0
    (Ndn.Consumer.Rtt_estimator.samples estimator)

let test_backoff_monotone () =
  let e = Ndn.Consumer.Rtt_estimator.create ~initial_rto_ms:50. () in
  let rtos =
    List.init 6 (fun _ ->
        let r = Ndn.Consumer.Rtt_estimator.rto e in
        Ndn.Consumer.Rtt_estimator.backoff e;
        r)
  in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "rto %g < %g" a b)
        true (a < b))
    (List.filteri (fun i _ -> i < 5) rtos)
    (List.tl rtos);
  (* ... up to the clamp. *)
  let e = Ndn.Consumer.Rtt_estimator.create ~initial_rto_ms:50_000. () in
  Ndn.Consumer.Rtt_estimator.backoff e;
  Ndn.Consumer.Rtt_estimator.backoff e;
  Alcotest.(check (float 1e-9)) "clamped at 60 s" 60_000.
    (Ndn.Consumer.Rtt_estimator.rto e)

(* --- clean link: one attempt, one sample --- *)

let test_clean_fetch_observes () =
  let net, c = make_pair () in
  let estimator = Ndn.Consumer.Rtt_estimator.create () in
  let o = fetch_sync ~estimator net c (Ndn.Name.of_string "/s/y") in
  Alcotest.(check bool) "data arrived" true (o.Ndn.Consumer.data <> None);
  Alcotest.(check int) "single attempt" 1 o.Ndn.Consumer.attempts;
  Alcotest.(check int) "one RTT sample" 1
    (Ndn.Consumer.Rtt_estimator.samples estimator);
  match Ndn.Consumer.Rtt_estimator.srtt estimator with
  | None -> Alcotest.fail "srtt unset after a first-attempt success"
  | Some srtt ->
    Alcotest.(check bool) "srtt is the measured RTT" true (srtt > 0.)

(* --- Karn's algorithm: a post-retransmission sample is discarded --- *)

let test_karn_skips_retransmitted_sample () =
  let net, c = make_pair () in
  let down up =
    match Ndn.Network.set_link_state net ~a:"C" ~b:"P" ~up () with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg
  in
  down false;
  (* Repair the link while the first attempt's timeout is pending: the
     retry (attempt 2) then succeeds. *)
  ignore
    (Sim.Engine.schedule_at
       (Ndn.Network.engine net)
       ~time:50. (fun () -> down true));
  let estimator = Ndn.Consumer.Rtt_estimator.create ~initial_rto_ms:100. () in
  let o = fetch_sync ~estimator net c (Ndn.Name.of_string "/s/z") in
  Alcotest.(check bool) "data arrived on the retry" true
    (o.Ndn.Consumer.data <> None);
  Alcotest.(check int) "two attempts" 2 o.Ndn.Consumer.attempts;
  Alcotest.(check int) "ambiguous sample discarded" 0
    (Ndn.Consumer.Rtt_estimator.samples estimator);
  Alcotest.(check bool) "srtt still unset" true
    (Ndn.Consumer.Rtt_estimator.srtt estimator = None);
  Alcotest.(check (float 1e-9)) "backed-off RTO retained" 200.
    (Ndn.Consumer.Rtt_estimator.rto estimator)

(* --- fetch_sequence threads one estimator through the stream --- *)

let test_fetch_sequence () =
  let net, c = make_pair () in
  let names =
    List.init 4 (fun i -> Ndn.Name.of_string (Printf.sprintf "/s/seq/%d" i))
  in
  let result = ref None in
  Ndn.Consumer.fetch_sequence c ~names
    ~on_done:(fun outcomes -> result := Some outcomes)
    ();
  Ndn.Network.run net;
  match !result with
  | None -> Alcotest.fail "sequence never completed"
  | Some outcomes ->
    Alcotest.(check int) "one outcome per name" 4 (List.length outcomes);
    List.iter2
      (fun name o ->
        match o.Ndn.Consumer.data with
        | None -> Alcotest.fail "sequence fetch failed"
        | Some d ->
          Alcotest.(check string) "outcomes in request order"
            (Ndn.Name.to_string name)
            (Ndn.Name.to_string d.Ndn.Data.name))
      names outcomes;
    (* The shared estimator converges: later fetches run with an RTO
       derived from measured RTTs, far below the 1 s initial default —
       observable as total elapsed time, which would otherwise admit
       no successful retry. *)
    List.iteri
      (fun i o ->
        Alcotest.(check int)
          (Printf.sprintf "fetch %d needs no retry" i)
          1 o.Ndn.Consumer.attempts)
      outcomes

let () =
  Alcotest.run "consumer"
    [
      ( "fetch",
        [
          Alcotest.test_case "lossy link exhausts retries" `Quick
            test_lossy_exhausts_retries;
          Alcotest.test_case "backoff monotone until clamp" `Quick
            test_backoff_monotone;
          Alcotest.test_case "clean fetch feeds estimator" `Quick
            test_clean_fetch_observes;
          Alcotest.test_case "karn: retransmitted sample discarded" `Quick
            test_karn_skips_retransmitted_sample;
          Alcotest.test_case "fetch_sequence threads estimator" `Quick
            test_fetch_sequence;
        ] );
    ]
