(* Model-based property test: Ndn.Content_store under random op
   sequences (insert / exact lookup / clock advance) must agree with a
   naive list-based reference model.

   For LRU and FIFO the model predicts the cache contents exactly:
   both policies evict from the tail of a recency/insertion list, so a
   handful of list operations specify the whole observable behavior
   (including freshness expiry, which removes stale entries on lookup).

   Random replacement picks its victim from the store's RNG, which a
   black-box model cannot predict; there the model keeps an insertion
   shadow and checks every property that holds for *any* victim choice:
   size bounds, presence of the most recent insert, misses on
   never-inserted or stale names, and counter consistency. *)

(* --- operation language --- *)

type op =
  | Insert of int * float option  (* name index, freshness_ms *)
  | Lookup of int
  | Advance of float  (* move the virtual clock forward, ms *)

let pp_op = function
  | Insert (i, None) -> Printf.sprintf "insert %d" i
  | Insert (i, Some f) -> Printf.sprintf "insert %d (fresh %.0fms)" i f
  | Lookup i -> Printf.sprintf "lookup %d" i
  | Advance dt -> Printf.sprintf "advance %.0fms" dt

let universe = 8
let capacity = 3

let name_of i = Ndn.Name.of_string (Printf.sprintf "/model/content/%d" i)

let names = Array.init universe name_of

(* Signing on every insert is wasteful inside a property test: intern
   one data object per (name, freshness) pair. *)
let data_cache = Hashtbl.create 32

let data_of i freshness =
  match Hashtbl.find_opt data_cache (i, freshness) with
  | Some d -> d
  | None ->
    let d =
      Ndn.Data.create ?freshness_ms:freshness ~producer:"model" ~key:"model-key"
        ~payload:"x" names.(i)
    in
    Hashtbl.add data_cache (i, freshness) d;
    d

let gen_op =
  QCheck.Gen.(
    frequency
      [
        ( 5,
          map2
            (fun i f -> Insert (i, f))
            (int_bound (universe - 1))
            (frequency
               [ (3, return None); (1, return (Some 5.)); (1, return (Some 20.)) ])
        );
        (5, map (fun i -> Lookup i) (int_bound (universe - 1)));
        (2, map (fun dt -> Advance (float_of_int dt)) (int_range 1 12));
      ])

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 60) gen_op)

(* --- exact reference model for LRU / FIFO --- *)

(* Head of the list = most recently used (LRU) / most recently inserted
   (FIFO); eviction takes the last element, mirroring the store's
   intrusive list. *)
type model_entry = { idx : int; inserted_at : float; freshness : float option }

let model_fresh now e =
  match e.freshness with None -> true | Some f -> now -. e.inserted_at <= f

let model_insert model ~now idx freshness =
  let model = List.filter (fun e -> e.idx <> idx) model in
  let rec trim m =
    if capacity > 0 && List.length m >= capacity then
      trim (List.filteri (fun i _ -> i < List.length m - 1) m)
    else m
  in
  { idx; inserted_at = now; freshness } :: trim model

let model_lookup ~policy model ~now idx =
  match List.find_opt (fun e -> e.idx = idx) model with
  | None -> (false, model)
  | Some e ->
    if not (model_fresh now e) then
      (* Stale entries are expired by the lookup, not returned. *)
      (false, List.filter (fun e' -> e'.idx <> idx) model)
    else
      let model =
        match policy with
        | Ndn.Eviction.Lru ->
          e :: List.filter (fun e' -> e'.idx <> idx) model
        | _ -> model (* FIFO: hits do not reorder *)
      in
      (true, model)

let store_contents cs =
  Ndn.Content_store.fold cs ~init:[] ~f:(fun acc e ->
      Ndn.Name.to_string e.Ndn.Content_store.data.Ndn.Data.name :: acc)
  |> List.sort compare

let model_contents model =
  List.map (fun e -> Ndn.Name.to_string names.(e.idx)) model |> List.sort compare

let exact_model_agrees policy ops =
  let cs = Ndn.Content_store.create ~policy ~capacity () in
  let rec go model now = function
    | [] -> true
    | op :: rest ->
      let model, now =
        match op with
        | Insert (idx, freshness) ->
          Ndn.Content_store.insert cs ~now (data_of idx freshness) ();
          (model_insert model ~now idx freshness, now)
        | Lookup idx ->
          let store_hit =
            Ndn.Content_store.lookup cs ~now ~exact:true names.(idx)
            |> Option.is_some
          in
          let model_hit, model = model_lookup ~policy model ~now idx in
          if store_hit <> model_hit then
            QCheck.Test.fail_reportf "%s: lookup %d store=%b model=%b"
              (Ndn.Eviction.to_string policy) idx store_hit model_hit;
          (model, now)
        | Advance dt -> (model, now +. dt)
      in
      if Ndn.Content_store.size cs <> List.length model then
        QCheck.Test.fail_reportf "%s after %s: size store=%d model=%d"
          (Ndn.Eviction.to_string policy) (pp_op op)
          (Ndn.Content_store.size cs) (List.length model);
      if store_contents cs <> model_contents model then
        QCheck.Test.fail_reportf "%s after %s: contents diverge"
          (Ndn.Eviction.to_string policy) (pp_op op);
      go model now rest
  in
  go [] 0. ops

(* --- invariant shadow for Random_replacement --- *)

let random_invariants_hold seed ops =
  let cs =
    Ndn.Content_store.create ~policy:Ndn.Eviction.Random_replacement
      ~rng:(Sim.Rng.create seed) ~capacity ()
  in
  (* Shadow: last insertion time and freshness per name, eviction
     ignored — an upper bound on what can still be cached. *)
  let shadow = Hashtbl.create 16 in
  let rec go now = function
    | [] -> true
    | op :: rest ->
      let now =
        match op with
        | Insert (idx, freshness) ->
          Ndn.Content_store.insert cs ~now (data_of idx freshness) ();
          Hashtbl.replace shadow idx (now, freshness);
          if not (Ndn.Content_store.mem cs names.(idx)) then
            QCheck.Test.fail_reportf "inserted %d not present" idx;
          now
        | Lookup idx ->
          let hit =
            Ndn.Content_store.lookup cs ~now ~exact:true names.(idx)
            |> Option.is_some
          in
          (match (hit, Hashtbl.find_opt shadow idx) with
          | true, None -> QCheck.Test.fail_reportf "hit on never-inserted %d" idx
          | true, Some (at, freshness) ->
            let fresh =
              match freshness with None -> true | Some f -> now -. at <= f
            in
            if not fresh then
              QCheck.Test.fail_reportf "hit on stale %d (age %.0f)" idx (now -. at)
          | false, _ -> ());
          now
        | Advance dt -> now +. dt
      in
      if Ndn.Content_store.size cs > capacity then
        QCheck.Test.fail_reportf "size %d exceeds capacity %d"
          (Ndn.Content_store.size cs) capacity;
      go now rest
  in
  let ok = go 0. ops in
  let c = Ndn.Content_store.counters cs in
  ok
  && c.Ndn.Content_store.hits + c.Ndn.Content_store.misses
     = c.Ndn.Content_store.lookups

let qcheck_tests =
  [
    QCheck.Test.make ~name:"content store agrees with list model (LRU)" ~count:400
      arb_ops
      (exact_model_agrees Ndn.Eviction.Lru);
    QCheck.Test.make ~name:"content store agrees with list model (FIFO)" ~count:400
      arb_ops
      (exact_model_agrees Ndn.Eviction.Fifo);
    QCheck.Test.make ~name:"random replacement invariants" ~count:400
      QCheck.(pair (make Gen.(int_bound 1_000_000) ~print:string_of_int) arb_ops)
      (fun (seed, ops) -> random_invariants_hold seed ops);
  ]

let () =
  Alcotest.run "content_store_model"
    [ ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
