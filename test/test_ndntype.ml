(* ndntype test suite: the typed (.cmt-based) pass over the planted
   fixtures in test/typedlint_fixtures/ — a compiled library whose cmts
   the ordinary build produces — plus, via the library API, the check
   that the real repository tree passes the typed rules with every
   suppression justified.

   Runs from _build/default/test, where ".." is the one directory that
   holds both the sources and their .cmt files. *)

let fixture_cfg =
  Ndntype.config ~root:".."
    ~paths:[ "test/typedlint_fixtures" ]
    ~excludes:[]
    ~lib_prefixes:[ "test/typedlint_fixtures/" ]
    ()

let run_exn cfg =
  match Ndntype.run cfg with
  | Ok r -> r
  | Error msg -> Alcotest.failf "ndntype error: %s" msg

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let in_file file f = f.Ndnlint.file = file

let rule r f = f.Ndnlint.rule = r

(* Every finding the planted fixtures must produce, in output order —
   the typed counterpart of test_ndnlint's golden list. *)
let golden_jsonl =
  [
    {|{"rule":"A1","severity":"error","file":"test/typedlint_fixtures/planted_boxing.ml","line":9,"col":19,"message":"closure allocation in hot function `centroid`","status":"active"}|};
    {|{"rule":"A1","severity":"error","file":"test/typedlint_fixtures/planted_boxing.ml","line":9,"col":33,"message":"closure allocation in hot function `centroid`","status":"active"}|};
    {|{"rule":"A1","severity":"error","file":"test/typedlint_fixtures/planted_boxing.ml","line":9,"col":38,"message":"tuple allocation in hot function `centroid`","status":"active"}|};
    {|{"rule":"A1","severity":"error","file":"test/typedlint_fixtures/planted_boxing.ml","line":9,"col":62,"message":"tuple allocation in hot function `centroid`","status":"active"}|};
    {|{"rule":"A1","severity":"error","file":"test/typedlint_fixtures/planted_boxing.ml","line":11,"col":2,"message":"tuple allocation in hot function `centroid`","status":"active"}|};
    {|{"rule":"A2","severity":"error","file":"test/typedlint_fixtures/planted_boxing.ml","line":14,"col":31,"message":"generic structural (=) at point; the compiler specializes comparisons only at immediate scalar types — use a monomorphic compare in hot function `same_point`","status":"active"}|};
    {|{"rule":"R1","severity":"error","file":"test/typedlint_fixtures/planted_race.ml","line":6,"col":0,"message":"module-level mutable state `shared_hits` (Stdlib.Hashtbl.t) in a domain-shared unit; shard domains can reach it concurrently — confine it with Domain.DLS, thread it through explicit state, or allowlist with an ownership justification","status":"active"}|};
    {|{"rule":"G1","severity":"error","file":"test/typedlint_fixtures/rng_misuse.ml","line":8,"col":25,"message":"RNG handle `parent` was split at line 7 and is used again here; after a split, draw only from the children (or suppress with a stream-layout justification)","status":"active"}|};
  ]

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let test_golden_jsonl () =
  let report = run_exn fixture_cfg in
  Alcotest.(check (list string))
    "golden typed JSONL findings" golden_jsonl
    (lines (Ndnlint.render Ndnlint.Jsonl report.Ndntype.findings));
  Alcotest.(check int)
    "planted fixtures fail the lint" 1
    (Ndnlint.exit_code report.Ndntype.findings)

(* R1: a module-level Hashtbl in a unit that imports Sim.Engine — the
   callback it schedules would race on the table under Sim.Shard. *)
let test_planted_race () =
  let report = run_exn fixture_cfg in
  let r1 =
    List.filter
      (fun f -> rule "R1" f && in_file "test/typedlint_fixtures/planted_race.ml" f)
      report.Ndntype.findings
  in
  (match r1 with
  | [ f ] ->
    Alcotest.(check bool)
      "R1 names the shared table" true
      (contains ~sub:"shared_hits" f.Ndnlint.message);
    Alcotest.(check bool)
      "R1 is active" true
      (f.Ndnlint.status = Ndnlint.Active)
  | fs -> Alcotest.failf "expected exactly one R1 finding, got %d" (List.length fs));
  (* The unit entered the closure because it imports a spawn unit. *)
  Alcotest.(check bool)
    "fixture unit is in the shared closure" true
    (List.exists
       (fun u -> contains ~sub:"Planted_race" u)
       report.Ndntype.shared_units)

(* A1/A2: a hot-annotated function that builds closures and tuples, and
   one that compares records structurally. *)
let test_planted_boxing () =
  let report = run_exn fixture_cfg in
  let boxing = "test/typedlint_fixtures/planted_boxing.ml" in
  let a1 = List.filter (fun f -> rule "A1" f && in_file boxing f) report.Ndntype.findings in
  Alcotest.(check bool)
    "A1 flags the closure in centroid" true
    (List.exists
       (fun f ->
         contains ~sub:"closure" f.Ndnlint.message
         && contains ~sub:"centroid" f.Ndnlint.message)
       a1);
  Alcotest.(check bool)
    "A1 flags tuple allocation in centroid" true
    (List.exists (fun f -> contains ~sub:"tuple" f.Ndnlint.message) a1);
  let a2 = List.filter (fun f -> rule "A2" f && in_file boxing f) report.Ndntype.findings in
  Alcotest.(check bool)
    "A2 flags the structural compare in same_point" true
    (List.exists (fun f -> contains ~sub:"same_point" f.Ndnlint.message) a2);
  (* Both hot annotations attached to their bindings. *)
  let hot_in_boxing =
    List.filter
      (fun h -> h.Ndntype.hf_file = boxing)
      report.Ndntype.hot_functions
  in
  Alcotest.(check (list string))
    "hot inventory for the fixture" [ "centroid"; "same_point" ]
    (List.sort compare (List.map (fun h -> h.Ndntype.hf_name) hot_in_boxing))

(* G1: drawing from the parent handle after splitting it is flagged;
   feeding the parent back into split (resplit_ok) is exempt. *)
let test_rng_misuse () =
  let report = run_exn fixture_cfg in
  let g1 =
    List.filter
      (fun f -> rule "G1" f && in_file "test/typedlint_fixtures/rng_misuse.ml" f)
      report.Ndntype.findings
  in
  match g1 with
  | [ f ] ->
    Alcotest.(check bool)
      "G1 names the split handle" true
      (contains ~sub:"parent" f.Ndnlint.message);
    Alcotest.(check int) "flagged at the post-split draw" 8 f.Ndnlint.line
  | fs ->
    Alcotest.failf "expected exactly one G1 finding (resplit is exempt), got %d"
      (List.length fs)

(* `dune build @typedlint` equivalent, via the library API: the shipped
   tree has no active typed finding. *)
let real_tree_cfg =
  Ndntype.config ~root:".." ~allowlist_file:"tools/ndnlint/allowlist.txt" ()

let test_real_tree_passes () =
  let report = run_exn real_tree_cfg in
  Alcotest.(check (list string))
    "no active typed findings on the shipped tree" []
    (List.map Ndnlint.finding_to_text (Ndnlint.active report.Ndntype.findings));
  Alcotest.(check bool)
    "the R1 closure is seeded" true
    (List.mem "Sim__Engine" report.Ndntype.shared_units)

(* The PR-5 hot paths carry their annotations: the dynamic alloc/op
   ceiling in bench now has a static sibling, and this inventory pins
   the annotations to the bindings they cover. *)
let test_hot_inventory () =
  let report = run_exn real_tree_cfg in
  let names = List.map (fun h -> h.Ndntype.hf_name) report.Ndntype.hot_functions in
  Alcotest.(check bool)
    "at least ten hot functions on the real tree" true
    (List.length names >= 10);
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "%s is annotated hot" expected)
        true (List.mem expected names))
    [ "find_exact"; "pop_min_elt"; "run"; "expire"; "touch" ]

(* Merged-universe staleness: with both passes' findings in hand, every
   pragma and allowlist entry in the shipped tree — typed rules and
   "all" tokens included — must still suppress something. *)
let test_merged_stale_clean () =
  let typed = run_exn real_tree_cfg in
  let syntactic_cfg =
    Ndnlint.config ~root:".."
      ~allowlist_file:"tools/ndnlint/allowlist.txt"
      ~registry_file:"lib/sim/trace_kinds.txt" ()
  in
  match Ndnlint.lint_full syntactic_cfg with
  | Error msg -> Alcotest.failf "ndnlint error: %s" msg
  | Ok (syntactic, inventory) ->
    let merged = Ndnlint.sort_findings (typed.Ndntype.findings @ syntactic) in
    let all_rule_ids = List.map (fun r -> r.Ndnlint.id) Ndnlint.all_rules in
    Alcotest.(check (list string))
      "no stale suppressions over the merged universe" []
      (List.map Ndnlint.finding_to_text
         (Ndnlint.stale_findings ~checked_rules:all_rule_ids inventory merged))

(* The static checker complements the dynamic ceiling, it does not
   replace it: the benched alloc/op bound on the traced CS hit path
   must not have been loosened to make the hot paths "pass". *)
let test_bench_ceiling_unchanged () =
  let json =
    In_channel.with_open_bin "../BENCH_core.json" In_channel.input_all
  in
  let key = {|"cs_hit_alloc_ceiling":|} in
  let rec find i =
    if i + String.length key > String.length json then
      Alcotest.fail "cs_hit_alloc_ceiling missing from BENCH_core.json"
    else if String.sub json i (String.length key) = key then i
    else find (i + 1)
  in
  let start = find 0 + String.length key in
  let stop = String.index_from json start ',' in
  let value = float_of_string (String.trim (String.sub json start (stop - start))) in
  Alcotest.(check bool)
    (Printf.sprintf "ceiling %.6f is at most 0.01" value)
    true (value <= 0.01)

let () =
  Alcotest.run "ndntype"
    [
      ( "planted",
        [
          Alcotest.test_case "golden typed jsonl" `Quick test_golden_jsonl;
          Alcotest.test_case "R1 planted race" `Quick test_planted_race;
          Alcotest.test_case "A1/A2 planted boxing" `Quick test_planted_boxing;
          Alcotest.test_case "G1 use-after-split" `Quick test_rng_misuse;
        ] );
      ( "real-tree",
        [
          Alcotest.test_case "typed rules pass" `Quick test_real_tree_passes;
          Alcotest.test_case "hot-path inventory" `Quick test_hot_inventory;
          Alcotest.test_case "merged universe has no stale suppression" `Quick
            test_merged_stale_clean;
          Alcotest.test_case "bench alloc ceiling unchanged" `Quick
            test_bench_ceiling_unchanged;
        ] );
    ]
