(* Tests for the fault-injection subsystem: Sim.Fault scheduling and
   generators, the Ndn.Network embedding (link state, crash/restart,
   producer outages), the no-dangling-events guarantee, and the
   determinism acceptance criteria — empty schedule is byte-identical
   to no schedule, and a faulted campaign is byte-identical for any
   --jobs. *)

let prefix = Ndn.Name.of_string "/s"

(* consumer C -- router R -- producer P, every link Constant 5 ms. *)
let make_chain ?tracer () =
  let net = Ndn.Network.create ~seed:9 ?tracer () in
  let c = Ndn.Network.add_node net ~caching:false "C" in
  let r = Ndn.Network.add_node net "R" in
  let p = Ndn.Network.add_node net "P" in
  let lat = Sim.Latency.Constant 5. in
  let cf, _ = Ndn.Network.connect net ~latency:lat c r in
  let rf, _ = Ndn.Network.connect net ~latency:lat r p in
  Ndn.Network.route net c ~prefix ~via:cf;
  Ndn.Network.route net r ~prefix ~via:rf;
  Ndn.Node.add_producer p ~prefix (fun i ->
      Some
        (Ndn.Data.create ~producer:"P" ~key:"k" ~payload:"v"
           i.Ndn.Interest.name));
  (net, c, r, p)

let install_exn net schedule =
  match Ndn.Network.install_faults net schedule with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let at time kind = { Sim.Fault.at = time; kind }

(* --- node crash / restart ------------------------------------------- *)

let test_crash_fails_pending_once () =
  let net, c, _, _ = make_chain () in
  let timeouts = ref 0 and datas = ref 0 in
  Ndn.Node.express_interest c
    ~on_data:(fun ~rtt_ms:_ _ -> incr datas)
    ~on_timeout:(fun () -> incr timeouts)
    (Ndn.Name.of_string "/s/a");
  Ndn.Node.crash c;
  Alcotest.(check int) "on_timeout fired at crash time" 1 !timeouts;
  Ndn.Network.run net;
  Alcotest.(check int) "on_timeout fired exactly once" 1 !timeouts;
  Alcotest.(check int) "no data on a crashed node" 0 !datas;
  Alcotest.(check int) "no dangling engine events" 0
    (Sim.Engine.pending (Ndn.Network.engine net))

let test_crash_flushes_cs_and_pit () =
  let net, c, r, _ = make_chain () in
  ignore (Ndn.Network.fetch_rtt net ~from:c (Ndn.Name.of_string "/s/a"));
  ignore (Ndn.Network.fetch_rtt net ~from:c (Ndn.Name.of_string "/s/b"));
  Alcotest.(check bool) "router cached the traffic" true
    (Ndn.Content_store.size (Ndn.Node.content_store r) > 0);
  Ndn.Node.crash r;
  Alcotest.(check int) "CS flushed" 0
    (Ndn.Content_store.size (Ndn.Node.content_store r));
  Alcotest.(check int) "PIT drained" 0 (Ndn.Pit.size (Ndn.Node.pit r));
  Alcotest.(check bool) "down" false (Ndn.Node.is_alive r)

let test_crash_preserve_cs () =
  let net, c, r, _ = make_chain () in
  ignore (Ndn.Network.fetch_rtt net ~from:c (Ndn.Name.of_string "/s/a"));
  let size = Ndn.Content_store.size (Ndn.Node.content_store r) in
  Alcotest.(check bool) "cache warm" true (size > 0);
  Ndn.Node.crash ~preserve_cs:true r;
  Alcotest.(check int) "persistent cache survives the crash" size
    (Ndn.Content_store.size (Ndn.Node.content_store r))

let test_restart_recovers () =
  let net, c, r, _ = make_chain () in
  Ndn.Node.crash r;
  Alcotest.(check bool) "fetch through a dead router fails" true
    (Ndn.Network.fetch_rtt net ~from:c ~timeout_ms:100.
       (Ndn.Name.of_string "/s/a")
    = None);
  Ndn.Node.restart r;
  Alcotest.(check bool) "FIB survives: fetch succeeds after restart" true
    (Ndn.Network.fetch_rtt net ~from:c (Ndn.Name.of_string "/s/a") <> None)

(* --- scheduled link faults ------------------------------------------ *)

let test_link_down_up_window () =
  let net, c, _, _ = make_chain () in
  install_exn net
    [
      at 0. (Sim.Fault.Link_down { a = "C"; b = "R"; dir = Sim.Fault.Both });
      at 100. (Sim.Fault.Link_up { a = "C"; b = "R"; dir = Sim.Fault.Both });
    ];
  let engine = Ndn.Network.engine net in
  let during = ref (Some 0.) and after = ref (Some 0.) in
  let probe result name =
    Ndn.Node.express_interest c ~timeout_ms:50.
      ~on_data:(fun ~rtt_ms _ -> result := Some rtt_ms)
      ~on_timeout:(fun () -> result := None)
      (Ndn.Name.of_string name)
  in
  ignore
    (Sim.Engine.schedule_at engine ~time:10. (fun () ->
         probe during "/s/down"));
  ignore
    (Sim.Engine.schedule_at engine ~time:200. (fun () ->
         probe after "/s/up"));
  Ndn.Network.run net;
  Alcotest.(check bool) "probe during outage times out" true (!during = None);
  Alcotest.(check bool) "probe after repair succeeds" true (!after <> None)

let test_degrade_inflates_latency () =
  let net, c, _, _ = make_chain () in
  install_exn net
    [
      at 0.
        (Sim.Fault.Link_degrade
           {
             a = "C";
             b = "R";
             dir = Sim.Fault.Both;
             loss = 0.;
             latency_factor = 4.;
             until = 100.;
           });
    ];
  let engine = Ndn.Network.engine net in
  let during = ref None and after = ref None in
  let probe result name =
    Ndn.Node.express_interest c
      ~on_data:(fun ~rtt_ms _ -> result := Some rtt_ms)
      (Ndn.Name.of_string name)
  in
  ignore
    (Sim.Engine.schedule_at engine ~time:1. (fun () -> probe during "/s/d"));
  ignore
    (Sim.Engine.schedule_at engine ~time:200. (fun () -> probe after "/s/e"));
  Ndn.Network.run net;
  match (!during, !after) with
  | Some slow, Some fast ->
    (* The C–R hop contributes 4×5 ms each way while degraded vs 5 ms
       after the window's own restore event. *)
    Alcotest.(check bool)
      (Printf.sprintf "degraded RTT %g well above restored %g" slow fast)
      true
      (slow > fast +. 25.)
  | _ -> Alcotest.fail "a probe was lost"

let test_producer_outage_window () =
  let net, c, _, _ = make_chain () in
  install_exn net
    [ at 0. (Sim.Fault.Producer_outage { node = "P"; until = 100. }) ];
  let engine = Ndn.Network.engine net in
  let during = ref (Some 0.) and after = ref (Some 0.) in
  let probe result name =
    Ndn.Node.express_interest c ~timeout_ms:60.
      ~on_data:(fun ~rtt_ms _ -> result := Some rtt_ms)
      ~on_timeout:(fun () -> result := None)
      (Ndn.Name.of_string name)
  in
  ignore
    (Sim.Engine.schedule_at engine ~time:10. (fun () -> probe during "/s/o"));
  ignore
    (Sim.Engine.schedule_at engine ~time:200. (fun () -> probe after "/s/p"));
  Ndn.Network.run net;
  Alcotest.(check bool) "silent producer: probe times out" true
    (!during = None);
  Alcotest.(check bool) "production resumes after the window" true
    (!after <> None)

let test_install_rejects_unknown_target () =
  let net, _, _, _ = make_chain () in
  (match
     Ndn.Network.install_faults net
       [ at 5. (Sim.Fault.Node_crash { node = "ghost"; preserve_cs = false }) ]
   with
  | Ok () -> Alcotest.fail "unknown node accepted"
  | Error msg ->
    Alcotest.(check bool) "names the node" true
      (let contains s sub =
         let n = String.length sub and h = String.length s in
         let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
         go 0
       in
       contains msg "ghost"));
  match
    Ndn.Network.install_faults net
      [ at 5. (Sim.Fault.Link_down { a = "C"; b = "P"; dir = Sim.Fault.Both }) ]
  with
  | Ok () -> Alcotest.fail "nonexistent link accepted"
  | Error _ -> ()

(* --- determinism ----------------------------------------------------- *)

(* A fixed workload exercising caches and links, run to completion. *)
let traced_workload ~schedule () =
  let tracer = Sim.Trace.create () in
  let net, c, _, _ = make_chain ~tracer () in
  (match schedule with
  | None -> ()
  | Some s -> install_exn net s);
  let engine = Ndn.Network.engine net in
  for i = 0 to 9 do
    ignore
      (Sim.Engine.schedule_at engine
         ~time:(float_of_int i *. 20.)
         (fun () ->
           Ndn.Node.express_interest c
             ~on_data:(fun ~rtt_ms:_ _ -> ())
             (Ndn.Name.of_string (Printf.sprintf "/s/w/%d" (i mod 4)))))
  done;
  Ndn.Network.run net;
  Sim.Trace.render Sim.Trace.Jsonl tracer

let test_empty_schedule_byte_identical () =
  Alcotest.(check string) "install [] changes nothing"
    (traced_workload ~schedule:None ())
    (traced_workload ~schedule:(Some []) ())

let churn_schedule =
  Sim.Fault.sort
    [
      at 40. (Sim.Fault.Node_crash { node = "R"; preserve_cs = false });
      at 90. (Sim.Fault.Node_restart { node = "R" });
      at 120.
        (Sim.Fault.Link_degrade
           {
             a = "U";
             b = "R";
             dir = Sim.Fault.Ab;
             loss = 0.2;
             latency_factor = 2.;
             until = 160.;
           });
    ]

let faulted_campaign ~jobs ~seed =
  let r =
    Attack.Timing_experiment.run
      ~make_setup:(fun ~seed ~tracer -> Ndn.Network.lan ~seed ~tracer ())
      ~contents:6 ~runs:3 ~seed ~jobs ~trace:true ~faults:churn_schedule ()
  in
  ( r.Attack.Timing_experiment.hit_samples,
    r.Attack.Timing_experiment.miss_samples,
    Sim.Trace.render Sim.Trace.Jsonl r.Attack.Timing_experiment.trace )

let test_faulted_jobs_byte_identical () =
  let h1, m1, t1 = faulted_campaign ~jobs:1 ~seed:13 in
  let h4, m4, t4 = faulted_campaign ~jobs:4 ~seed:13 in
  Alcotest.(check bool) "hit samples identical" true (h1 = h4);
  Alcotest.(check bool) "miss samples identical" true (m1 = m4);
  Alcotest.(check string) "trace bytes identical" t1 t4;
  Alcotest.(check bool) "trace non-trivial" true (String.length t1 > 0);
  Alcotest.(check bool) "fault events present in trace" true
    (let contains s sub =
       let n = String.length sub and h = String.length s in
       let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     contains t1 "fault.crash" && contains t1 "fault.restart")

(* --- properties ------------------------------------------------------ *)

let dir_gen =
  QCheck.Gen.oneofl [ Sim.Fault.Ab; Sim.Fault.Ba; Sim.Fault.Both ]

let label_gen = QCheck.Gen.oneofl [ "A"; "B"; "C" ]

let time_gen = QCheck.Gen.float_range 0. 10_000.

let event_gen =
  let open QCheck.Gen in
  let* time = time_gen in
  let* k = int_range 0 6 in
  let+ kind =
    match k with
    | 0 ->
      let* a = label_gen and* b = label_gen and* dir = dir_gen in
      return (Sim.Fault.Link_down { a; b; dir })
    | 1 ->
      let* a = label_gen and* b = label_gen and* dir = dir_gen in
      return (Sim.Fault.Link_up { a; b; dir })
    | 2 ->
      let* a = label_gen and* b = label_gen and* dir = dir_gen in
      let* loss = float_range 0. 1. in
      let* latency_factor = float_range 0.25 8. in
      let* window = float_range 0.001 5_000. in
      return
        (Sim.Fault.Link_degrade
           { a; b; dir; loss; latency_factor; until = time +. window })
    | 3 ->
      let* node = label_gen and* preserve_cs = bool in
      return (Sim.Fault.Node_crash { node; preserve_cs })
    | 4 ->
      let* node = label_gen in
      return (Sim.Fault.Node_restart { node })
    | 5 ->
      let* node = label_gen and* window = float_range 0.001 5_000. in
      return (Sim.Fault.Producer_outage { node; until = time +. window })
    | _ ->
      let* node = label_gen in
      let* factor = float_range 0.25 16. in
      let* window = float_range 0.001 5_000. in
      return
        (Sim.Fault.Producer_slowdown { node; factor; until = time +. window })
  in
  { Sim.Fault.at = time; kind }

let schedule_arb =
  QCheck.make
    ~print:(fun s -> Sim.Fault.print (Sim.Fault.sort s))
    QCheck.Gen.(list_size (int_range 0 12) event_gen)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"generated events pass validate" ~count:200
      schedule_arb
      (fun events ->
        List.for_all (fun e -> Sim.Fault.validate e = Ok ()) events);
    QCheck.Test.make ~name:"install fires in sorted order" ~count:100
      schedule_arb
      (fun events ->
        let schedule = Sim.Fault.sort events in
        let engine = Sim.Engine.create () in
        let fired = ref [] in
        Sim.Fault.install ~engine ~apply:(fun e -> fired := e :: !fired)
          schedule;
        Sim.Engine.run engine;
        List.rev !fired = schedule);
    QCheck.Test.make ~name:"print/parse is a fixpoint" ~count:200 schedule_arb
      (fun events ->
        let schedule = Sim.Fault.sort events in
        Sim.Fault.parse (Sim.Fault.print schedule) = Ok schedule);
    QCheck.Test.make ~name:"random_restarts brackets every crash" ~count:100
      QCheck.(
        quad (int_range 0 1000) (float_range 50. 5_000.)
          (float_range 1. 500.) (float_range 100. 20_000.))
      (fun (seed, mean_uptime_ms, downtime_ms, horizon_ms) ->
        let nodes = [ "A"; "B" ] in
        let schedule =
          Sim.Fault.random_restarts ~rng:(Sim.Rng.create seed) ~nodes
            ~mean_uptime_ms ~downtime_ms ~horizon_ms ()
        in
        let per_node n =
          List.filter_map
            (fun e ->
              match e.Sim.Fault.kind with
              | Sim.Fault.Node_crash { node; _ } when node = n ->
                Some (`Crash e.Sim.Fault.at)
              | Sim.Fault.Node_restart { node } when node = n ->
                Some (`Restart e.Sim.Fault.at)
              | _ -> None)
            schedule
        in
        (* Per node: strict crash/restart alternation starting with a
           crash, every restart exactly downtime after its crash, every
           crash inside the horizon. *)
        List.for_all
          (fun n ->
            let rec check = function
              | [] -> true
              | `Crash c :: `Restart r :: rest ->
                c <= horizon_ms
                && Float.abs (r -. (c +. downtime_ms)) < 1e-6
                && check rest
              | _ -> false
            in
            (* Events come time-sorted; per-node alternation must
               survive the global sort. *)
            check (per_node n))
          nodes);
  ]

let () =
  Alcotest.run "fault"
    [
      ( "crash",
        [
          Alcotest.test_case "pending expression fails once" `Quick
            test_crash_fails_pending_once;
          Alcotest.test_case "flushes CS and PIT" `Quick
            test_crash_flushes_cs_and_pit;
          Alcotest.test_case "preserve_cs keeps the cache" `Quick
            test_crash_preserve_cs;
          Alcotest.test_case "restart recovers" `Quick test_restart_recovers;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "link down/up window" `Quick
            test_link_down_up_window;
          Alcotest.test_case "degrade inflates latency" `Quick
            test_degrade_inflates_latency;
          Alcotest.test_case "producer outage window" `Quick
            test_producer_outage_window;
          Alcotest.test_case "unknown targets rejected" `Quick
            test_install_rejects_unknown_target;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "empty schedule is byte-identical" `Quick
            test_empty_schedule_byte_identical;
          Alcotest.test_case "faulted campaign jobs-invariant" `Quick
            test_faulted_jobs_byte_identical;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
