(* Tests for the workload substrate: Zipf sampling, traces, the
   synthetic IRCache generator, replay, and sweeps. *)

let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

(* --- Zipf --- *)

let test_zipf_probabilities_sum () =
  let z = Workload.Zipf.create ~n:100 ~s:1. in
  let total = ref 0. in
  for r = 1 to 100 do
    total := !total +. Workload.Zipf.prob z r
  done;
  check_close "pmf sums to 1" 1e-9 1. !total

let test_zipf_rank_ordering () =
  let z = Workload.Zipf.create ~n:50 ~s:0.9 in
  for r = 1 to 49 do
    Alcotest.(check bool)
      (Printf.sprintf "rank %d more popular than %d" r (r + 1))
      true
      (Workload.Zipf.prob z r >= Workload.Zipf.prob z (r + 1))
  done

let test_zipf_s0_uniform () =
  let z = Workload.Zipf.create ~n:10 ~s:0. in
  for r = 1 to 10 do
    check_close "uniform when s=0" 1e-9 0.1 (Workload.Zipf.prob z r)
  done

let test_zipf_sampling_matches_pmf () =
  let z = Workload.Zipf.create ~n:20 ~s:1. in
  let rng = Sim.Rng.create 5 in
  let counts = Array.make 21 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let r = Workload.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  for r = 1 to 20 do
    check_close
      (Printf.sprintf "rank %d frequency" r)
      0.01
      (Workload.Zipf.prob z r)
      (float_of_int counts.(r) /. float_of_int n)
  done

let test_zipf_head_mass () =
  let z = Workload.Zipf.create ~n:100 ~s:1. in
  check_close "head 0" 1e-9 0. (Workload.Zipf.head_mass z 0);
  check_close "full head" 1e-9 1. (Workload.Zipf.head_mass z 100);
  Alcotest.(check bool) "head grows" true
    (Workload.Zipf.head_mass z 10 < Workload.Zipf.head_mass z 50)

let test_zipf_rejects_bad_args () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Workload.Zipf.create ~n:0 ~s:1.));
  Alcotest.check_raises "negative s" (Invalid_argument "Zipf.create: negative exponent")
    (fun () -> ignore (Workload.Zipf.create ~n:5 ~s:(-1.)))

(* --- Trace --- *)

let mk_trace records = Workload.Trace.create (Array.of_list records)

let rec_ t u c = { Workload.Trace.time_s = t; user = u; content = c }

let test_trace_basics () =
  let t = mk_trace [ rec_ 0. 0 1; rec_ 1. 1 2; rec_ 2. 0 1 ] in
  Alcotest.(check int) "length" 3 (Workload.Trace.length t);
  Alcotest.(check int) "users" 2 (Workload.Trace.users t);
  Alcotest.(check int) "distinct" 2 (Workload.Trace.distinct_contents t);
  check_close "duration" 1e-9 2. (Workload.Trace.duration_s t)

let test_trace_rejects_disorder () =
  Alcotest.check_raises "out of order"
    (Invalid_argument "Trace.create: timestamps must be non-decreasing") (fun () ->
      ignore (mk_trace [ rec_ 5. 0 0; rec_ 1. 0 1 ]))

let test_trace_save_load_roundtrip () =
  let t = mk_trace [ rec_ 0.5 3 7; rec_ 1.25 1 9; rec_ 2. 3 7 ] in
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Trace.save t ~path;
      let t' = Workload.Trace.load ~path in
      Alcotest.(check int) "length" (Workload.Trace.length t) (Workload.Trace.length t');
      for i = 0 to Workload.Trace.length t - 1 do
        let a = Workload.Trace.get t i and b = Workload.Trace.get t' i in
        Alcotest.(check int) "user" a.Workload.Trace.user b.Workload.Trace.user;
        Alcotest.(check int) "content" a.Workload.Trace.content b.Workload.Trace.content;
        check_close "time" 1e-5 a.Workload.Trace.time_s b.Workload.Trace.time_s
      done)

let test_trace_sub () =
  let t = mk_trace [ rec_ 0. 0 0; rec_ 1. 0 1; rec_ 2. 0 2; rec_ 3. 0 3 ] in
  let s = Workload.Trace.sub t ~pos:1 ~len:2 in
  Alcotest.(check int) "sub length" 2 (Workload.Trace.length s);
  Alcotest.(check int) "sub first" 1 (Workload.Trace.get s 0).Workload.Trace.content

let test_trace_name_mapping () =
  Alcotest.(check string) "stable name" "/trace/c42"
    (Ndn.Name.to_string (Workload.Trace.name_of 42));
  Alcotest.(check bool) "distinct ids distinct names" false
    (Ndn.Name.equal (Workload.Trace.name_of 1) (Workload.Trace.name_of 2))

(* --- Ircache generator --- *)

let small_cfg =
  { Workload.Ircache.default with Workload.Ircache.requests = 20_000; seed = 3 }

let test_ircache_shape () =
  let t = Workload.Ircache.generate small_cfg in
  Alcotest.(check int) "request count" 20_000 (Workload.Trace.length t);
  Alcotest.(check int) "user population" 185 (Workload.Trace.users t);
  Alcotest.(check bool) "spans most of 24h" true
    (Workload.Trace.duration_s t > 0.9 *. 86_400.);
  let distinct = Workload.Trace.distinct_contents t in
  (* ~40% one-timers plus catalog hits *)
  Alcotest.(check bool)
    (Printf.sprintf "distinct contents plausible (%d)" distinct)
    true
    (distinct > 8_000 && distinct < 16_000)

let test_ircache_deterministic () =
  let a = Workload.Ircache.generate small_cfg in
  let b = Workload.Ircache.generate small_cfg in
  Alcotest.(check int) "same length" (Workload.Trace.length a) (Workload.Trace.length b);
  for i = 0 to 200 do
    let ra = Workload.Trace.get a i and rb = Workload.Trace.get b i in
    Alcotest.(check int) "same content" ra.Workload.Trace.content rb.Workload.Trace.content;
    Alcotest.(check int) "same user" ra.Workload.Trace.user rb.Workload.Trace.user
  done

let test_ircache_seed_changes_trace () =
  let a = Workload.Ircache.generate small_cfg in
  let b = Workload.Ircache.generate { small_cfg with Workload.Ircache.seed = 4 } in
  let differs = ref false in
  for i = 0 to 200 do
    if
      (Workload.Trace.get a i).Workload.Trace.content
      <> (Workload.Trace.get b i).Workload.Trace.content
    then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_ircache_diurnal_variation () =
  let t = Workload.Ircache.generate { small_cfg with Workload.Ircache.requests = 50_000 } in
  (* Count requests in the busiest vs quietest 4-hour window. *)
  let buckets = Array.make 6 0 in
  Workload.Trace.iter t ~f:(fun r ->
      let b = int_of_float (r.Workload.Trace.time_s /. (4. *. 3600.)) in
      let b = min 5 (max 0 b) in
      buckets.(b) <- buckets.(b) + 1);
  let mx = Array.fold_left max 0 buckets and mn = Array.fold_left min max_int buckets in
  Alcotest.(check bool)
    (Printf.sprintf "diurnal swing (min %d max %d)" mn mx)
    true
    (float_of_int mx > 1.5 *. float_of_int mn)

(* --- Replay --- *)

let tiny_trace () =
  (* contents: 1 repeated heavily, 2 moderately, 3.. one-timers *)
  let records =
    List.concat_map
      (fun i ->
        [ rec_ (float_of_int i) 0 1; rec_ (float_of_int i +. 0.1) 1 (100 + i) ])
      (List.init 50 Fun.id)
  in
  Workload.Trace.create
    (Array.of_list (List.sort (fun a b -> compare a.Workload.Trace.time_s b.Workload.Trace.time_s) records))

let test_replay_no_privacy_counts_real_hits () =
  let t = tiny_trace () in
  let o =
    Workload.Replay.replay t
      {
        Workload.Replay.default_config with
        Workload.Replay.policy = Core.Policy.No_privacy;
        private_mode = Workload.Replay.Per_content 0.;
        cache_capacity = 0;
      }
  in
  (* content 1 requested 50 times -> 49 hits; one-timers -> 0 hits *)
  Alcotest.(check int) "real hits" 49 o.Workload.Replay.real_hits;
  Alcotest.(check int) "observable = real under no-privacy" 49
    o.Workload.Replay.observable_hits;
  Alcotest.(check int) "no hidden hits" 0 o.Workload.Replay.hidden_hits

let test_replay_always_delay_hides_private () =
  let t = tiny_trace () in
  let o =
    Workload.Replay.replay t
      {
        Workload.Replay.default_config with
        Workload.Replay.policy = Core.Policy.Always_delay;
        private_mode = Workload.Replay.Per_content 1.;
        cache_capacity = 0;
      }
  in
  Alcotest.(check int) "everything private: zero observable hits" 0
    o.Workload.Replay.observable_hits;
  Alcotest.(check int) "real hits unchanged" 49 o.Workload.Replay.real_hits;
  Alcotest.(check int) "hidden = real" 49 o.Workload.Replay.hidden_hits

let test_replay_random_cache_between () =
  let t = tiny_trace () in
  let run policy =
    Workload.Replay.observable_hit_rate
      (Workload.Replay.replay t
         {
           Workload.Replay.default_config with
           Workload.Replay.policy;
           private_mode = Workload.Replay.Per_content 1.;
           cache_capacity = 0;
         })
  in
  let no_privacy = run Core.Policy.No_privacy in
  let always = run Core.Policy.Always_delay in
  let rc = run (Core.Policy.Random_cache (Core.Kdist.Uniform 20)) in
  Alcotest.(check bool)
    (Printf.sprintf "always (%.2f) <= rc (%.2f) <= no-privacy (%.2f)" always rc no_privacy)
    true
    (always <= rc +. 1e-9 && rc <= no_privacy +. 1e-9)

let test_replay_capacity_monotone () =
  let t = Workload.Ircache.generate { small_cfg with Workload.Ircache.requests = 30_000 } in
  let rate cap =
    Workload.Replay.observable_hit_rate
      (Workload.Replay.replay t
         {
           Workload.Replay.default_config with
           Workload.Replay.cache_capacity = cap;
           policy = Core.Policy.No_privacy;
         })
  in
  let r500 = rate 500 and r2000 = rate 2000 and rinf = rate 0 in
  Alcotest.(check bool)
    (Printf.sprintf "hit rate grows with capacity (%.3f <= %.3f <= %.3f)" r500 r2000 rinf)
    true
    (r500 <= r2000 +. 0.01 && r2000 <= rinf +. 0.01);
  let bounded =
    Workload.Replay.replay t
      {
        Workload.Replay.default_config with
        Workload.Replay.cache_capacity = 500;
        policy = Core.Policy.No_privacy;
      }
  in
  Alcotest.(check bool) "bounded cache evicts" true
    (bounded.Workload.Replay.evictions > 0)

let test_replay_per_content_privacy_deterministic () =
  let t = tiny_trace () in
  let cfg =
    {
      Workload.Replay.default_config with
      Workload.Replay.private_mode = Workload.Replay.Per_content 0.5;
      policy = Core.Policy.Always_delay;
    }
  in
  let a = Workload.Replay.replay t cfg and b = Workload.Replay.replay t cfg in
  Alcotest.(check int) "same private count" a.Workload.Replay.private_requests
    b.Workload.Replay.private_requests;
  Alcotest.(check int) "same observable hits" a.Workload.Replay.observable_hits
    b.Workload.Replay.observable_hits

let test_replay_private_fraction_effect () =
  let t = Workload.Ircache.generate { small_cfg with Workload.Ircache.requests = 30_000 } in
  let rate fraction =
    Workload.Replay.observable_hit_rate
      (Workload.Replay.replay t
         {
           Workload.Replay.default_config with
           Workload.Replay.policy = Core.Policy.Always_delay;
           private_mode = Workload.Replay.Per_content fraction;
           cache_capacity = 4000;
         })
  in
  let r5 = rate 0.05 and r40 = rate 0.4 in
  Alcotest.(check bool)
    (Printf.sprintf "more private content, fewer observable hits (%.3f > %.3f)" r5 r40)
    true (r5 > r40)

(* --- Metrics sweeps --- *)

let test_sweep_structure () =
  let t = Workload.Ircache.generate { small_cfg with Workload.Ircache.requests = 5_000 } in
  let rows =
    Workload.Metrics.sweep t ~cache_sizes:[ 100; 0 ]
      ~policies:[ Core.Policy.No_privacy; Core.Policy.Always_delay ]
      ()
  in
  Alcotest.(check int) "rows = sizes x policies" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int) "all requests processed" 5_000
        r.Workload.Metrics.outcome.Workload.Replay.requests)
    rows

let test_sweep_private_fraction_structure () =
  let t = Workload.Ircache.generate { small_cfg with Workload.Ircache.requests = 5_000 } in
  let rows =
    Workload.Metrics.sweep_private_fraction t ~cache_sizes:[ 100 ]
      ~policy:Core.Policy.Always_delay ~fractions:[ 0.05; 0.4 ] ()
  in
  Alcotest.(check int) "rows" 2 (List.length rows);
  match rows with
  | [ a; b ] ->
    Alcotest.(check bool) "fractions recorded" true
      (a.Workload.Metrics.private_fraction = 0.05
      && b.Workload.Metrics.private_fraction = 0.4)
  | _ -> Alcotest.fail "unexpected row count"

let test_cache_size_label () =
  Alcotest.(check string) "inf" "Inf" (Workload.Metrics.cache_size_label 0);
  Alcotest.(check string) "number" "8000" (Workload.Metrics.cache_size_label 8000)


(* --- Squid log parsing --- *)

let squid_lines =
  [
    "1189036512.145  124 client-a TCP_MISS/200 4122 GET http://example.com/one - DIRECT/1.2.3.4 text/html";
    "1189036513.001   17 client-b TCP_HIT/200 412 GET http://example.com/two - NONE/- image/png";
    "1189036514.500   80 client-a TCP_MISS/200 999 GET http://example.com/one - DIRECT/1.2.3.4 text/html";
  ]

let test_squid_parse_line () =
  (match Workload.Squid_log.parse_line (List.hd squid_lines) with
  | Some (ts, client, url) ->
    Alcotest.(check (float 1e-6)) "timestamp" 1189036512.145 ts;
    Alcotest.(check string) "client" "client-a" client;
    Alcotest.(check string) "url" "http://example.com/one" url
  | None -> Alcotest.fail "line should parse");
  Alcotest.(check bool) "garbage rejected" true
    (Workload.Squid_log.parse_line "not a log line" = None);
  Alcotest.(check bool) "negative timestamp rejected" true
    (Workload.Squid_log.parse_line
       "-5.0 1 c TCP_MISS/200 1 GET http://x - D/1 t"
    = None)

let test_squid_of_lines () =
  let trace, stats = Workload.Squid_log.of_lines ("" :: "junk" :: squid_lines) in
  Alcotest.(check int) "parsed" 3 stats.Workload.Squid_log.parsed;
  Alcotest.(check int) "skipped" 1 stats.Workload.Squid_log.skipped;
  Alcotest.(check int) "records" 3 (Workload.Trace.length trace);
  Alcotest.(check int) "users interned" 2 (Workload.Trace.users trace);
  Alcotest.(check int) "contents interned" 2 (Workload.Trace.distinct_contents trace);
  (* timestamps normalized to start at 0 *)
  Alcotest.(check (float 1e-6)) "starts at zero" 0.
    (Workload.Trace.get trace 0).Workload.Trace.time_s;
  (* same URL -> same content id *)
  let c0 = (Workload.Trace.get trace 0).Workload.Trace.content in
  let c2 = (Workload.Trace.get trace 2).Workload.Trace.content in
  Alcotest.(check int) "repeat URL shares id" c0 c2

let test_squid_out_of_order_sorted () =
  let lines =
    [
      "200.0 1 c TCP_MISS/200 1 GET http://x/2 - D/1 t";
      "100.0 1 c TCP_MISS/200 1 GET http://x/1 - D/1 t";
    ]
  in
  let trace, _ = Workload.Squid_log.of_lines lines in
  Alcotest.(check (float 1e-6)) "sorted" 0.
    (Workload.Trace.get trace 0).Workload.Trace.time_s;
  Alcotest.(check (float 1e-6)) "gap preserved" 100.
    (Workload.Trace.get trace 1).Workload.Trace.time_s

let test_squid_replayable () =
  let trace, _ = Workload.Squid_log.of_lines squid_lines in
  let o =
    Workload.Replay.replay trace
      {
        Workload.Replay.default_config with
        Workload.Replay.policy = Core.Policy.No_privacy;
        private_mode = Workload.Replay.Per_content 0.;
        cache_capacity = 0;
      }
  in
  (* URL /one requested twice -> 1 real hit. *)
  Alcotest.(check int) "hits" 1 o.Workload.Replay.real_hits


(* --- LRU-stack temporal-locality generator --- *)

let test_lru_stack_shape () =
  let t =
    Workload.Lru_stack.generate
      { Workload.Lru_stack.default with Workload.Lru_stack.requests = 10_000; seed = 6 }
  in
  Alcotest.(check int) "length" 10_000 (Workload.Trace.length t);
  Alcotest.(check bool) "users bounded" true (Workload.Trace.users t <= 185);
  Alcotest.(check bool) "has repeats" true
    (Workload.Trace.distinct_contents t < 10_000)

let test_lru_stack_deterministic () =
  let cfg = { Workload.Lru_stack.default with Workload.Lru_stack.requests = 2_000 } in
  let a = Workload.Lru_stack.generate cfg and b = Workload.Lru_stack.generate cfg in
  for i = 0 to 100 do
    Alcotest.(check int) "same content"
      (Workload.Trace.get a i).Workload.Trace.content
      (Workload.Trace.get b i).Workload.Trace.content
  done

let test_lru_stack_locality_beats_iid () =
  (* The point of the model: an LRU cache does far better under
     stack-model traffic than under i.i.d. Zipf at equal cache size. *)
  let rate trace =
    Workload.Replay.observable_hit_rate
      (Workload.Replay.replay trace
         {
           Workload.Replay.default_config with
           Workload.Replay.cache_capacity = 500;
           policy = Core.Policy.No_privacy;
           private_mode = Workload.Replay.Per_content 0.;
         })
  in
  let local =
    rate
      (Workload.Lru_stack.generate
         { Workload.Lru_stack.default with Workload.Lru_stack.requests = 20_000 })
  in
  let iid =
    rate
      (Workload.Ircache.generate
         { Workload.Ircache.default with Workload.Ircache.requests = 20_000 })
  in
  Alcotest.(check bool)
    (Printf.sprintf "locality %.2f >> iid %.2f" local iid)
    true
    (local > iid +. 0.15)

let test_lru_stack_validation () =
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Lru_stack.generate: fresh_fraction out of range") (fun () ->
      ignore
        (Workload.Lru_stack.generate
           { Workload.Lru_stack.default with Workload.Lru_stack.fresh_fraction = 1.5 }))

(* --- property tests --- *)

(* --- Zipf memoized normalizer (regression for the per-(n,s) memo) --- *)

(* Pinned sampler output: the memo must never change what the sampler
   draws.  If this fails, the CDF (or the splitmix64 stream) changed —
   a reviewed decision, not a drift. *)
let test_zipf_pinned_sampler () =
  let z = Workload.Zipf.create ~n:1000 ~s:0.85 in
  let rng = Sim.Rng.create 123 in
  let samples = List.init 10 (fun _ -> Workload.Zipf.sample z rng) in
  Alcotest.(check (list int))
    "pinned samples for seed 123"
    [ 11; 180; 711; 45; 38; 1; 545; 33; 1; 40 ]
    samples

let test_zipf_memo_consistent () =
  let a = Workload.Zipf.create ~n:400 ~s:0.7 in
  let b = Workload.Zipf.create ~n:400 ~s:0.7 in
  for r = 1 to 400 do
    check_close
      (Printf.sprintf "memoized prob at rank %d" r)
      1e-15 (Workload.Zipf.prob a r) (Workload.Zipf.prob b r)
  done;
  let r1 = Sim.Rng.create 5 and r2 = Sim.Rng.create 5 in
  for i = 1 to 200 do
    Alcotest.(check int)
      (Printf.sprintf "sample %d identical" i)
      (Workload.Zipf.sample a r1) (Workload.Zipf.sample b r2)
  done;
  (* Churn past the memo capacity so the table resets, then recreate:
     the law must be unchanged. *)
  let p1 = Workload.Zipf.prob a 1 in
  for i = 1 to 80 do
    ignore (Workload.Zipf.create ~n:(10 + i) ~s:0.5)
  done;
  let c = Workload.Zipf.create ~n:400 ~s:0.7 in
  check_close "law survives a memo reset" 1e-15 p1 (Workload.Zipf.prob c 1)

(* --- Aggregate consumers: statistical properties --------------------- *)

(* One caching node that also hosts the producer: requests resolve
   locally, so these tests exercise only the arrival/rank process. *)
let aggregate_net () =
  let net = Ndn.Network.create ~seed:4 () in
  let n = Ndn.Network.add_node net ~cs_capacity:8 "n" in
  let prefix = Ndn.Name.of_string "/agg" in
  Ndn.Node.add_producer n ~prefix (fun i ->
      Some
        (Ndn.Data.create ~producer:"n" ~key:"k" ~payload:"v"
           i.Ndn.Interest.name));
  (net, n, prefix)

(* Chi-squared goodness of fit of the emitted ranks against the Zipf
   pmf.  Fixed seed, so the statistic is deterministic — the threshold
   is the df=49 critical value at p ≈ 0.001 with headroom, not a
   tolerance that can flake. *)
let test_aggregate_zipf_gof () =
  let net, n, prefix = aggregate_net () in
  let rng = Sim.Rng.create 77 in
  let config =
    {
      Workload.Aggregate.default with
      users = 2_000;
      req_per_user_per_hour = 90.;
      catalog = 50;
      zipf_s = 0.85;
      diurnal_period_ms = 30_000.;
      record_ranks = true;
    }
  in
  let agg =
    Workload.Aggregate.attach config ~node:n ~prefix ~rng ~until:60_000. ()
  in
  Ndn.Network.run net;
  let counts =
    match Workload.Aggregate.rank_counts agg with
    | Some c -> c
    | None -> Alcotest.fail "record_ranks lost the histogram"
  in
  let total = Array.fold_left ( + ) 0 counts in
  Alcotest.(check int) "histogram covers every request"
    (Workload.Aggregate.requests_issued agg)
    total;
  Alcotest.(check bool) "enough samples for the test" true (total > 2_000);
  let z = Workload.Zipf.create ~n:config.catalog ~s:config.zipf_s in
  (* Merge trailing ranks until every bin expects >= 5. *)
  let chi2 = ref 0. and df = ref (-1) in
  let obs = ref 0. and expd = ref 0. in
  for r = 1 to config.catalog do
    obs := !obs +. float_of_int counts.(r - 1);
    expd := !expd +. (float_of_int total *. Workload.Zipf.prob z r);
    if !expd >= 5. then begin
      let d = !obs -. !expd in
      chi2 := !chi2 +. (d *. d /. !expd);
      incr df;
      obs := 0.;
      expd := 0.
    end
  done;
  if !expd > 0. then chi2 := !chi2 +. ((!obs -. !expd) ** 2. /. !expd);
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.1f within critical range for df %d" !chi2 !df)
    true
    (!chi2 < 90.)

(* Diurnal modulation: with phase 0 the sine is positive over the first
   half period and negative over the second, so the first-half request
   count must clearly dominate.  Fixed seed: deterministic. *)
let test_aggregate_diurnal_modulation () =
  let net, n, prefix = aggregate_net () in
  let rng = Sim.Rng.create 13 in
  let period = 40_000. in
  let config =
    {
      Workload.Aggregate.default with
      users = 2_000;
      req_per_user_per_hour = 90.;
      catalog = 20;
      diurnal_amplitude = 0.9;
      diurnal_period_ms = period;
      diurnal_phase_ms = 0.;
    }
  in
  let agg =
    Workload.Aggregate.attach config ~node:n ~prefix ~rng ~until:period ()
  in
  Ndn.Network.run net ~until:(period /. 2.);
  let peak = Workload.Aggregate.requests_issued agg in
  Ndn.Network.run net;
  let trough = Workload.Aggregate.requests_issued agg - peak in
  Alcotest.(check bool)
    (Printf.sprintf "peak half (%d) >> trough half (%d)" peak trough)
    true
    (peak > 2 * trough && trough > 0)

let test_aggregate_validation () =
  let _net, n, prefix = aggregate_net () in
  let attach config =
    ignore
      (Workload.Aggregate.attach config ~node:n ~prefix
         ~rng:(Sim.Rng.create 1)
         ~until:10. ())
  in
  Alcotest.check_raises "users" (Invalid_argument "Aggregate: users must be positive")
    (fun () -> attach { Workload.Aggregate.default with users = 0 });
  Alcotest.check_raises "amplitude"
    (Invalid_argument "Aggregate: diurnal_amplitude must lie in [0, 1]")
    (fun () ->
      attach { Workload.Aggregate.default with diurnal_amplitude = 1.5 });
  Alcotest.check_raises "rate"
    (Invalid_argument "Aggregate: req_per_user_per_hour must be positive")
    (fun () ->
      attach { Workload.Aggregate.default with req_per_user_per_hour = 0. })

let qcheck_tests =
  [
    QCheck.Test.make ~name:"zipf samples within range" ~count:200
      QCheck.(triple small_int (int_range 1 100) (float_range 0. 2.))
      (fun (seed, n, s) ->
        let z = Workload.Zipf.create ~n ~s in
        let rng = Sim.Rng.create seed in
        let r = Workload.Zipf.sample z rng in
        r >= 1 && r <= n);
    QCheck.Test.make ~name:"head_mass monotone" ~count:200
      QCheck.(triple (int_range 2 100) (float_range 0. 2.) (pair small_nat small_nat))
      (fun (n, s, (a, b)) ->
        let z = Workload.Zipf.create ~n ~s in
        let lo = min a b and hi = max a b in
        Workload.Zipf.head_mass z lo <= Workload.Zipf.head_mass z hi +. 1e-12);
    QCheck.Test.make ~name:"squid parser never raises" ~count:300
      QCheck.(string) (fun line ->
        ignore (Workload.Squid_log.parse_line line);
        true);
    QCheck.Test.make ~name:"squid of_lines accounts every line" ~count:100
      QCheck.(list (string_of_size Gen.(int_range 0 80)))
      (fun lines ->
        let _, stats = Workload.Squid_log.of_lines lines in
        let non_blank =
          List.length (List.filter (fun l -> String.trim l <> "") lines)
        in
        stats.Workload.Squid_log.parsed + stats.Workload.Squid_log.skipped
        = non_blank);
    QCheck.Test.make ~name:"replay hit counts bounded by requests" ~count:20
      QCheck.(pair (int_range 100 2000) (int_range 0 100))
      (fun (n, cap) ->
        let t =
          Workload.Ircache.generate
            { small_cfg with Workload.Ircache.requests = n; seed = n }
        in
        let o =
          Workload.Replay.replay t
            {
              Workload.Replay.default_config with
              Workload.Replay.cache_capacity = cap;
              policy = Core.Policy.Random_cache (Core.Kdist.Uniform 10);
              private_mode = Workload.Replay.Per_content 0.3;
            }
        in
        o.Workload.Replay.observable_hits <= o.Workload.Replay.real_hits
        && o.Workload.Replay.real_hits <= n
        && o.Workload.Replay.observable_hits + o.Workload.Replay.hidden_hits
           = o.Workload.Replay.real_hits);
    QCheck.Test.make ~name:"observable rate <= real rate" ~count:20
      QCheck.(int_range 0 1000)
      (fun seed ->
        let t =
          Workload.Ircache.generate
            { small_cfg with Workload.Ircache.requests = 1000; seed }
        in
        let o =
          Workload.Replay.replay t
            {
              Workload.Replay.default_config with
              Workload.Replay.policy = Core.Policy.Always_delay;
              private_mode = Workload.Replay.Per_content 0.5;
            }
        in
        Workload.Replay.observable_hit_rate o <= Workload.Replay.real_hit_rate o +. 1e-12);
  ]

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "pmf sums" `Quick test_zipf_probabilities_sum;
          Alcotest.test_case "rank ordering" `Quick test_zipf_rank_ordering;
          Alcotest.test_case "s=0 uniform" `Quick test_zipf_s0_uniform;
          Alcotest.test_case "sampling matches pmf" `Slow test_zipf_sampling_matches_pmf;
          Alcotest.test_case "head mass" `Quick test_zipf_head_mass;
          Alcotest.test_case "argument validation" `Quick test_zipf_rejects_bad_args;
          Alcotest.test_case "pinned sampler" `Quick test_zipf_pinned_sampler;
          Alcotest.test_case "memo consistent" `Quick test_zipf_memo_consistent;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_trace_basics;
          Alcotest.test_case "rejects disorder" `Quick test_trace_rejects_disorder;
          Alcotest.test_case "save/load" `Quick test_trace_save_load_roundtrip;
          Alcotest.test_case "sub" `Quick test_trace_sub;
          Alcotest.test_case "name mapping" `Quick test_trace_name_mapping;
        ] );
      ( "ircache",
        [
          Alcotest.test_case "shape" `Quick test_ircache_shape;
          Alcotest.test_case "deterministic" `Quick test_ircache_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_ircache_seed_changes_trace;
          Alcotest.test_case "diurnal variation" `Quick test_ircache_diurnal_variation;
        ] );
      ( "replay",
        [
          Alcotest.test_case "no-privacy real hits" `Quick
            test_replay_no_privacy_counts_real_hits;
          Alcotest.test_case "always-delay hides" `Quick test_replay_always_delay_hides_private;
          Alcotest.test_case "random-cache between" `Quick test_replay_random_cache_between;
          Alcotest.test_case "capacity monotone" `Slow test_replay_capacity_monotone;
          Alcotest.test_case "per-content deterministic" `Quick
            test_replay_per_content_privacy_deterministic;
          Alcotest.test_case "private fraction effect" `Slow test_replay_private_fraction_effect;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "sweep structure" `Quick test_sweep_structure;
          Alcotest.test_case "fraction sweep" `Quick test_sweep_private_fraction_structure;
          Alcotest.test_case "labels" `Quick test_cache_size_label;
        ] );
      ( "squid",
        [
          Alcotest.test_case "parse line" `Quick test_squid_parse_line;
          Alcotest.test_case "of_lines" `Quick test_squid_of_lines;
          Alcotest.test_case "out-of-order sorted" `Quick test_squid_out_of_order_sorted;
          Alcotest.test_case "replayable" `Quick test_squid_replayable;
        ] );
      ( "lru_stack",
        [
          Alcotest.test_case "shape" `Quick test_lru_stack_shape;
          Alcotest.test_case "deterministic" `Quick test_lru_stack_deterministic;
          Alcotest.test_case "locality beats iid" `Slow test_lru_stack_locality_beats_iid;
          Alcotest.test_case "validation" `Quick test_lru_stack_validation;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "zipf goodness of fit" `Quick test_aggregate_zipf_gof;
          Alcotest.test_case "diurnal modulation" `Quick
            test_aggregate_diurnal_modulation;
          Alcotest.test_case "validation" `Quick test_aggregate_validation;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
