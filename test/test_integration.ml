(* Cross-library integration tests: the paper's attack/defence stories
   played end-to-end through the full stack. *)

let name = Ndn.Name.of_string

(* Story 1 (Section III): the consumer-privacy attack works against
   plain NDN in every topology. *)
let test_attack_succeeds_everywhere () =
  List.iter
    (fun (label, make, floor) ->
      let r =
        Attack.Timing_experiment.run
          ~make_setup:(fun ~seed ~tracer:_ -> make ~seed)
          ~contents:25 ~runs:2 ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s success %.3f above %.2f" label
           r.Attack.Timing_experiment.success_rate floor)
        true
        (r.Attack.Timing_experiment.success_rate > floor))
    [
      ("LAN", (fun ~seed -> Ndn.Network.lan ~seed ()), 0.97);
      ("WAN", (fun ~seed -> Ndn.Network.wan ~seed ()), 0.95);
      ("local host", (fun ~seed -> Ndn.Network.local_host ~seed ()), 0.97);
    ]

(* Story 2 (Section V-A): unpredictable names end-to-end — the honest
   parties communicate through router caches, the adversary cannot
   probe, and retransmission still benefits from caching. *)
let test_unpredictable_names_end_to_end () =
  let producer_cfg =
    { Ndn.Network.default_producer_config with strict_match = true }
  in
  let setup = Ndn.Network.lan ~producer:producer_cfg () in
  let session =
    Core.Unpredictable_names.create ~secret:"alice-bob"
      ~prefix:(name "/prod/call/7")
  in
  (* Bob (the producer host) serves only authentic session names. *)
  let bob_key = setup.Ndn.Network.producer_key in
  Ndn.Node.add_producer setup.Ndn.Network.producer_host
    ~prefix:(name "/prod/call/7") (fun interest ->
      match Core.Unpredictable_names.verify_name session interest.Ndn.Interest.name with
      | Some seq ->
        (* Generous freshness: virtual time advances by whole probe
           timeouts between the fetches in this test. *)
        Some
          (Core.Unpredictable_names.make_data session ~producer:"bob" ~key:bob_key
             ~freshness_ms:120_000. ~payload:(Printf.sprintf "frame-%d" seq) ~seq ())
      | None -> None)
  |> ignore;
  (* Alice fetches frame 3 by its unpredictable name. *)
  let frame3 = Core.Unpredictable_names.name_of_seq session ~seq:3 in
  (match Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user frame3 with
  | Some _ -> ()
  | None -> Alcotest.fail "Alice could not fetch through the session");
  (* The adversary cannot construct the name; prefix probing returns
     nothing because the content demands strict matching. *)
  Alcotest.(check bool) "prefix probe starves" true
    (Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.adversary
       ~timeout_ms:500. (name "/prod/call/7/3")
    = None);
  Alcotest.(check bool) "guessed rand starves" true
    (Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.adversary
       ~timeout_ms:500. (name "/prod/call/7/3/0123456789abcdef0123")
    = None);
  (* Retransmission: Alice re-requests frame 3 and is served from R's
     cache, faster than the original fetch. *)
  match
    Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.user frame3
  with
  | Some rtt -> Alcotest.(check bool) "retransmission hits cache" true (rtt < 6.)
  | None -> Alcotest.fail "retransmission failed"

(* Story 3 (Section V-B + VI): the same probing campaign measured
   against each countermeasure — distinguisher accuracy collapses. *)
let test_countermeasures_degrade_attack () =
  let run cm =
    let make_setup ~seed ~tracer:_ =
      let producer =
        { Ndn.Network.default_producer_config with producer_private = true }
      in
      let setup = Ndn.Network.lan ~seed ~producer () in
      (match cm with
      | None -> ()
      | Some cm ->
        ignore
          (Core.Private_router.attach setup.Ndn.Network.router
             ~rng:(Sim.Rng.create (seed * 7)) cm));
      setup
    in
    (Attack.Timing_experiment.run ~make_setup ~contents:25 ~runs:2 ())
      .Attack.Timing_experiment.success_rate
  in
  let baseline = run None in
  let delayed = run (Some (Core.Private_router.Delay_private Core.Delay.Content_specific)) in
  Alcotest.(check bool)
    (Printf.sprintf "baseline broken (%.3f)" baseline)
    true (baseline > 0.97);
  Alcotest.(check bool)
    (Printf.sprintf "content-specific delay restores privacy (%.3f)" delayed)
    true (delayed < 0.62)

(* Random-Cache in-network: the adversary probing the SAME content
   repeatedly sees a random-length miss run, matching Algorithm 1's
   law. *)
let test_random_cache_mimic_matches_law () =
  let domain = 6 in
  let miss_runs = ref [] in
  for seed = 0 to 39 do
    let producer =
      { Ndn.Network.default_producer_config with producer_private = true }
    in
    let setup = Ndn.Network.lan ~seed ~producer () in
    ignore
      (Core.Private_router.attach setup.Ndn.Network.router
         ~rng:(Sim.Rng.create (seed + 500))
         (Core.Private_router.Random_cache_mimic
            { kdist = Core.Kdist.Uniform domain; grouping = Core.Grouping.By_content }));
    let n = name "/prod/target" in
    (* First fetch (real miss) then probe until served fast. *)
    let threshold = 5. (* ms: hit-vs-miss boundary in this LAN *) in
    let rec probe i misses =
      if i > domain + 3 then misses
      else
        match Ndn.Network.fetch_rtt setup.Ndn.Network.net ~from:setup.Ndn.Network.adversary n with
        | Some rtt when rtt < threshold -> misses
        | Some _ -> probe (i + 1) (misses + 1)
        | None -> misses
    in
    miss_runs := probe 1 0 :: !miss_runs
  done;
  (* Every run is: 1 real miss + (k_C + 1) mimicked misses (Algorithm
     1's first tracked request plus k_C thresholded ones), so run
     lengths lie in [2, domain + 1] for k_C uniform on [0, domain). *)
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "run %d in range" m)
        true
        (m >= 2 && m <= domain + 1))
    !miss_runs;
  let distinct = List.sort_uniq compare !miss_runs in
  Alcotest.(check bool)
    (Printf.sprintf "thresholds vary across routers (%d distinct)" (List.length distinct))
    true
    (List.length distinct >= 3)

(* Story 4 (Section VI + VII): formal guarantee meets trace replay —
   a Uniform-Random-Cache parameterized for (k, 0, delta)-privacy
   keeps its guarantee (checked exactly) while costing a bounded hit
   rate on a real workload. *)
let test_guarantee_and_utility_together () =
  let k = 5 and delta = 0.05 in
  let kdist = Core.Kdist.uniform_for ~k ~delta in
  (* (a) formal: exact achieved delta within budget *)
  let k_dist = Core.Kdist.to_dist kdist in
  let domain = match kdist with Core.Kdist.Uniform d -> d | _ -> assert false in
  let achieved =
    Privacy.Outputs.achieved_delta ~k_dist ~k ~probes:(domain + k + 2) ~eps:0.
  in
  Alcotest.(check bool)
    (Printf.sprintf "guarantee met: %.4f <= %.4f" achieved delta)
    true
    (achieved <= delta +. 1e-9);
  (* (b) utility: replay cost vs no-privacy bounded *)
  let trace =
    Workload.Ircache.generate
      { Workload.Ircache.default with Workload.Ircache.requests = 30_000; seed = 8 }
  in
  let rate policy =
    Workload.Replay.observable_hit_rate
      (Workload.Replay.replay trace
         {
           Workload.Replay.default_config with
           Workload.Replay.policy;
           cache_capacity = 4000;
           private_mode = Workload.Replay.Per_content 0.2;
         })
  in
  let base = rate Core.Policy.No_privacy in
  let rc = rate (Core.Policy.Random_cache kdist) in
  let always = rate Core.Policy.Always_delay in
  Alcotest.(check bool)
    (Printf.sprintf "ordering always %.3f <= rc %.3f <= base %.3f" always rc base)
    true
    (always <= rc +. 0.005 && rc <= base +. 0.005)

(* Failure injection: cache eviction between probes makes Algorithm 1
   and the real cache disagree gracefully (observable miss, never a
   phantom hit). *)
let test_eviction_between_probes () =
  let trace_records =
    (* Request content 1, flood the cache, request content 1 again. *)
    Array.of_list
      (List.concat
         [
           [ { Workload.Trace.time_s = 0.; user = 0; content = 1 } ];
           List.init 50 (fun i ->
               { Workload.Trace.time_s = 1. +. float_of_int i; user = 0; content = 100 + i });
           [ { Workload.Trace.time_s = 100.; user = 0; content = 1 } ];
         ])
  in
  let trace = Workload.Trace.create trace_records in
  let o =
    Workload.Replay.replay trace
      {
        Workload.Replay.default_config with
        Workload.Replay.cache_capacity = 10;
        policy = Core.Policy.Random_cache (Core.Kdist.Constant 0);
        private_mode = Workload.Replay.Per_content 1.;
      }
  in
  (* content 1 evicted before its second request: no observable hit
     even though its counter passed the threshold *)
  Alcotest.(check int) "no phantom hits" 0 o.Workload.Replay.observable_hits

(* The naive scheme leaks exact counts while Uniform-Random-Cache
   does not, demonstrated through the same attack code path. *)
let test_naive_vs_random_cache_leakage () =
  (match Attack.Counter_attack.demonstrate ~k:5 ~prior_requests:4 with
  | Some o -> Alcotest.(check int) "naive leaks exact count" 4 o.Attack.Counter_attack.recovered_count
  | None -> Alcotest.fail "attack should find a hit");
  let correct = ref 0 in
  let trials = 60 in
  for seed = 0 to trials - 1 do
    match
      Attack.Counter_attack.random_cache_resists ~kdist:(Core.Kdist.Uniform 60)
        ~prior_requests:4 ~seed
    with
    | Some o -> if o.Attack.Counter_attack.recovered_count = 4 then incr correct
    | None -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "random cache: only %d/%d exact" !correct trials)
    true
    (!correct < trials / 3)

(* Story 5: the full VoIP narrative — conversation, detection, defence —
   through the public API only. *)
let test_conversation_story () =
  (* Plain naming: detected. *)
  let setup = Ndn.Network.conversation ~seed:81 () in
  let session =
    Core.Interactive_session.start setup
      ~naming:Core.Interactive_session.Predictable ~frames:10 ()
  in
  Ndn.Network.run setup.Ndn.Network.cnet;
  Alcotest.(check bool) "call completed" true (Core.Interactive_session.complete session);
  Alcotest.(check bool) "eavesdropper detects the call" true
    (Attack.Interaction_attack.probe_conversation setup ()
    = Attack.Interaction_attack.Talking);
  (* Unpredictable naming: silent to the eavesdropper, same service. *)
  let setup2 = Ndn.Network.conversation ~seed:82 () in
  let session2 =
    Core.Interactive_session.start setup2
      ~naming:(Core.Interactive_session.Unpredictable "dh") ~frames:10 ()
  in
  Ndn.Network.run setup2.Ndn.Network.cnet;
  Alcotest.(check bool) "protected call also completed" true
    (Core.Interactive_session.complete session2);
  Alcotest.(check bool) "comparable latency" true
    (Core.Interactive_session.mean_frame_rtt session2
    < 2. *. Core.Interactive_session.mean_frame_rtt session +. 1.);
  Alcotest.(check bool) "eavesdropper blind" true
    (Attack.Interaction_attack.probe_conversation setup2 ()
    = Attack.Interaction_attack.Not_talking)

(* Story 6: a topology defined in the text format behaves identically to
   the built-in one for the headline attack. *)
let test_topology_spec_attack_story () =
  let spec = {spec|
node U caching=false proc=normal:0.9:0.18:0.3
node Adv caching=false proc=normal:0.9:0.18:0.3
node R proc=normal:0.9:0.18:0.3
node P proc=normal:0.9:0.18:0.3
link U R latency=normal:0.25:0.06:0.05
link Adv R latency=normal:0.25:0.06:0.05
link R P latency=normal:1.8:0.35:0.5
route U /prod via R
route Adv /prod via R
route R /prod via P
producer P /prod payload=512
|spec}
  in
  match Ndn.Topology_spec.parse ~seed:91 spec with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok topo ->
    let net = topo.Ndn.Topology_spec.network in
    let u = Ndn.Topology_spec.node topo "U" in
    let adv = Ndn.Topology_spec.node topo "Adv" in
    let warm = name "/prod/visited" and cold = name "/prod/not-visited" in
    ignore (Ndn.Network.fetch_rtt net ~from:u warm);
    let hit = Option.get (Ndn.Network.fetch_rtt net ~from:adv warm) in
    let miss = Option.get (Ndn.Network.fetch_rtt net ~from:adv cold) in
    Alcotest.(check bool)
      (Printf.sprintf "attack works in spec-defined topology (%.2f < %.2f)" hit miss)
      true
      (hit < miss -. 2.)

(* Story 7: wire-level round trip through a cache — what a real
   forwarder implementation would do with these packet bytes. *)
let test_wire_through_cache_story () =
  let d =
    Ndn.Data.create ~producer_private:true ~content_id:"album"
      ~producer:"P" ~key:"k" ~payload:(String.make 512 'v')
      (name "/prod/photo/1")
  in
  let bytes = Ndn.Wire.encode_data d in
  match Ndn.Wire.decode_data bytes with
  | Error e -> Alcotest.failf "decode: %s" (Format.asprintf "%a" Ndn.Wire.pp_error e)
  | Ok d' ->
    Alcotest.(check bool) "signature still verifies" true (Ndn.Data.verify d' ~key:"k");
    let cs = Ndn.Content_store.create ~capacity:4 () in
    Ndn.Content_store.insert cs ~now:0. d' ();
    (match Ndn.Content_store.lookup cs ~now:1. (name "/prod/photo/1") with
    | Some e ->
      Alcotest.(check (option string)) "content id survived the wire"
        (Some "album") e.Ndn.Content_store.data.Ndn.Data.content_id
    | None -> Alcotest.fail "cache miss after insert")

(* Story 8: popularity estimation across the naive/random divide using
   only public APIs. *)
let test_popularity_story () =
  let naive =
    Attack.Popularity_attack.run ~kdist:(Core.Kdist.Constant 8) ~true_count:5
      ~max_count:9 ~trials:40 ()
  in
  let random =
    Attack.Popularity_attack.run ~kdist:(Core.Kdist.uniform_for ~k:5 ~delta:0.05)
      ~true_count:5 ~max_count:9 ~trials:40 ()
  in
  Alcotest.(check bool) "naive: count disclosed" true
    (naive.Attack.Popularity_attack.exact_rate > 0.95);
  Alcotest.(check bool)
    (Printf.sprintf "random-cache: estimator degraded (%.2f exact, %.2f err)"
       random.Attack.Popularity_attack.exact_rate
       random.Attack.Popularity_attack.mean_abs_error)
    true
    (random.Attack.Popularity_attack.exact_rate < 0.5
    && random.Attack.Popularity_attack.mean_abs_error > 1.)

(* Story 9: reliable segmented transfer across a lossy WAN link with
   the retransmitting consumer underneath. *)
let test_lossy_segmented_transfer_story () =
  let net = Ndn.Network.create ~seed:93 () in
  let a = Ndn.Network.add_node net ~caching:false "A" in
  let r = Ndn.Network.add_node net "R" in
  let p = Ndn.Network.add_node net "P" in
  let base = name "/prod/iso" in
  let payload = String.init 4096 (fun i -> Char.chr (48 + (i mod 75))) in
  Ndn.Node.add_producer p ~prefix:base
    (Ndn.Segmentation.producer_handler ~base ~producer:"P" ~key:"k" ~payload
       ~segment_size:512 ());
  let fa, _ = Ndn.Network.connect net ~loss:0.25 ~latency:(Sim.Latency.Constant 2.) a r in
  let fr, _ = Ndn.Network.connect net ~latency:(Sim.Latency.Constant 2.) r p in
  Ndn.Network.route net a ~prefix:base ~via:fa;
  Ndn.Network.route net r ~prefix:base ~via:fr;
  (* Fetch each segment with the retransmitting consumer, then check
     the payload reassembles. *)
  let chunks = Array.make 8 None in
  let remaining = ref 8 in
  let rec fetch_seg i =
    Ndn.Consumer.fetch a ~max_retries:25
      ~on_done:(fun o ->
        match o.Ndn.Consumer.data with
        | Some d ->
          (match Ndn.Segmentation.parse_segment d with
          | Some (_, chunk) -> chunks.(i) <- Some chunk
          | None -> ());
          decr remaining
        | None -> fetch_seg i)
      (Ndn.Segmentation.segment_name ~base i)
  in
  for i = 0 to 7 do
    fetch_seg i
  done;
  Ndn.Network.run net;
  Alcotest.(check int) "all segments arrived" 0 !remaining;
  let reassembled =
    String.concat "" (Array.to_list (Array.map (Option.value ~default:"") chunks))
  in
  Alcotest.(check string) "payload intact across loss" payload reassembled

let () =
  Alcotest.run "integration"
    [
      ( "stories",
        [
          Alcotest.test_case "attack succeeds everywhere" `Slow
            test_attack_succeeds_everywhere;
          Alcotest.test_case "unpredictable names end-to-end" `Quick
            test_unpredictable_names_end_to_end;
          Alcotest.test_case "countermeasures degrade attack" `Slow
            test_countermeasures_degrade_attack;
          Alcotest.test_case "random-cache mimic law" `Slow
            test_random_cache_mimic_matches_law;
          Alcotest.test_case "guarantee + utility" `Slow
            test_guarantee_and_utility_together;
          Alcotest.test_case "eviction between probes" `Quick test_eviction_between_probes;
          Alcotest.test_case "naive vs random-cache leakage" `Quick
            test_naive_vs_random_cache_leakage;
          Alcotest.test_case "conversation story" `Quick test_conversation_story;
          Alcotest.test_case "topology-spec attack story" `Quick
            test_topology_spec_attack_story;
          Alcotest.test_case "wire through cache" `Quick test_wire_through_cache_story;
          Alcotest.test_case "popularity story" `Quick test_popularity_story;
          Alcotest.test_case "lossy segmented transfer" `Quick
            test_lossy_segmented_transfer_story;
        ] );
    ]
