(* Fixture for path-scoped severities: wall-clock reads in bench/ are
   skipped by the default scoped table and demoted by a custom one. *)
let now_s () = Unix.gettimeofday ()
