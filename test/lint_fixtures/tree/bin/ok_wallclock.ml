let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
