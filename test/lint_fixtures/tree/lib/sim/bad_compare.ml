let sort_keys ks = List.sort compare ks
let same_hash a b = Hashtbl.hash a = Hashtbl.hash b
let is_probe n = n = Name.of_string "/probe"
