let seed () = Random.self_init ()
let draw () = Random.int 10
let state () = Random.State.make_self_init ()
