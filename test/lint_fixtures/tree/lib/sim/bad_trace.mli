type kind = Step | Sneaky

val kind_to_string : kind -> string
