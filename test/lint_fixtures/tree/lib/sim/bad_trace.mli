type kind = Step | Sneaky | Nacky

val kind_to_string : kind -> string
