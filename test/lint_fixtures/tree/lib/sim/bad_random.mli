val seed : unit -> unit
val draw : unit -> int
val state : unit -> Random.State.t
