type kind = Step | Sneaky | Nacky | Quiet

let kind_to_string = function
  | Step -> "engine.step"
  | Sneaky -> "cs.sneaky"
  | Nacky -> "nack.congested"
  | Quiet -> "cs.quiet"

let kind_id = function
  | Step -> 0
  | Nacky -> 1
