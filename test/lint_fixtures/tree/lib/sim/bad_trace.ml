type kind = Step | Sneaky

let kind_to_string = function
  | Step -> "engine.step"
  | Sneaky -> "cs.sneaky"
