type kind = Step | Sneaky | Nacky

let kind_to_string = function
  | Step -> "engine.step"
  | Sneaky -> "cs.sneaky"
  | Nacky -> "nack.congested"
