let broken = =
