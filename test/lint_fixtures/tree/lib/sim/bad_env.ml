let home () = Sys.getenv "HOME"
let debug () = Sys.getenv_opt "NDN_DEBUG"
