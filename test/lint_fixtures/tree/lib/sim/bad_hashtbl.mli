val dump : ('a, 'b) Hashtbl.t -> unit
val sorted : (string, 'b) Hashtbl.t -> string list
