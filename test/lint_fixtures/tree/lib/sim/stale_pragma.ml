(* Fixture for stale-suppression detection and multi-rule pragmas.

   The D1 pragma below is stale: the covered line never seeds an RNG,
   so [stale_findings] must flag the site.  The D3, D4 pragma covers
   two different rules with one comment.  The trailing "all" pragma is
   also stale, but only a pass that checks the whole rule table may say
   so. *)

(* ndnlint: allow D1 -- fixture: stale, the line below never self-seeds *)
let quiet = 0

(* ndnlint: allow D3, D4 -- fixture: one comment suppresses two rules *)
let both () = (Unix.gettimeofday (), Sys.getenv "NDN_FIXTURE")

(* ndnlint: allow all -- fixture: judged stale only by a full-universe pass *)
let tail = 1
