val now : unit -> float
val cpu : unit -> float
