val banner : unit -> unit
val report : int -> unit
val finish : unit -> unit
