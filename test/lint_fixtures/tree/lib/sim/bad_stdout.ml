let banner () = print_endline "ndn"
let report n = Printf.printf "%d\n" n
let finish () = Format.printf "done@."
