let dump tbl = Hashtbl.iter (fun k v -> ignore (k, v)) tbl

let sorted tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare
