let d = Domain.spawn (fun () -> 0)
let m = Mutex.create ()
let a = Atomic.make 0
