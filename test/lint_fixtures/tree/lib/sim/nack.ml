type reason = Congested | Sneaky_reason
