val h : int
val d : unit -> bool
