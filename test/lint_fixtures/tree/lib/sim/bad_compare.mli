val sort_keys : 'a list -> 'a list
val same_hash : 'a -> 'b -> bool
