val home : unit -> string
val debug : unit -> string option
