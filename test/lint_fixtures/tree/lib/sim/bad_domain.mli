val d : int Domain.t
val m : Mutex.t
val a : int Atomic.t
