let lonely = 1
