val quiet : int
val both : unit -> float * string
val tail : int
