let h = Hashtbl.hash 42 (* ndnlint: allow D5 -- fixture: hashing an int literal is stable *)

(* ndnlint: allow D2 -- fixture: pragma on its own line covers the draw below *)
let d () = Random.bool ()
