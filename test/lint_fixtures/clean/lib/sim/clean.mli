val compare_times : float -> float -> int
val tally : string list -> string list
