let compare_times = Float.compare

let tally xs = List.sort String.compare xs
