(* Sim.Shard determinism battery: the tentpole guarantee is that
   sharding a network over K engine domains changes wall-clock only —
   traces, counters and attack metrics are byte-identical for every K.

   - bare-Shard unit tests: the lookahead window protocol (a
     cross-shard message never lands in a window its destination
     already executed), the disconnected fast path, and the
     non-positive-lookahead refusal;
   - campaign identity: the paper's LAN timing attack (clean and under
     a fault schedule covering every fault kind) renders byte-identical
     JSONL traces and identical accuracy/timeout/FNR metrics for
     K in {1, 2, 3, 8};
   - generated topologies: tree / Watts-Strogatz / Barabasi-Albert
     graphs driven by aggregate consumers, byte-identical across shard
     counts (qcheck randomizes the graph parameters);
   - domain budgeting: Sim.Parallel.check_domains and the
     Timing_experiment front door reject trials x shards
     over-subscription. *)

let render = Sim.Trace.render Sim.Trace.Jsonl

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* --- bare Sim.Shard: window protocol --- *)

(* Shard 0 sends a message at t=5 for delivery at t=15; shard 1's only
   local event sits at t=100.  A correct conservative runtime must
   deliver the message before shard 1 executes t=100 — if the lookahead
   barrier under-synchronized, shard 1 (whose first window would
   otherwise start at 100) could run past 15 before the message exists.
   Both closures execute on shard 1's engine, so the plain ref is
   race-free. *)
let test_lookahead_barrier () =
  let t = Sim.Shard.create ~shards:2 () in
  Sim.Shard.note_min_link_delay t 10.;
  let order = ref [] in
  ignore
    (Sim.Engine.schedule_at (Sim.Shard.engine t 0) ~time:5. (fun () ->
         Sim.Shard.send t ~src:0 ~dst:1 ~time:15. ~key:1 (fun () ->
             order := "msg@15" :: !order)));
  ignore
    (Sim.Engine.schedule_at (Sim.Shard.engine t 1) ~time:100. (fun () ->
         order := "local@100" :: !order));
  Sim.Shard.run t;
  Alcotest.(check (list string))
    "cross-shard delivery ordered before the later local event"
    [ "msg@15"; "local@100" ] (List.rev !order);
  Alcotest.(check (float 0.)) "aligned finish clock" 100. (Sim.Shard.now t);
  Alcotest.(check int) "all three events ran" 3 (Sim.Shard.events_processed t)

(* No registered cross-shard link: the shards are independent streams
   and run sequentially on the calling domain. *)
let test_disconnected_fallback () =
  let t = Sim.Shard.create ~shards:3 () in
  let fired = Array.make 3 nan in
  for i = 0 to 2 do
    let time = 10. *. float_of_int (i + 1) in
    ignore
      (Sim.Engine.schedule_at (Sim.Shard.engine t i) ~time (fun () ->
           fired.(i) <- time))
  done;
  Sim.Shard.run t;
  Alcotest.(check (array (float 0.))) "every shard drained"
    [| 10.; 20.; 30. |] fired;
  Alcotest.(check (float 0.)) "clock = global max" 30. (Sim.Shard.now t)

let test_nonpositive_lookahead_refused () =
  let t = Sim.Shard.create ~shards:2 () in
  Sim.Shard.note_min_link_delay t 5.;
  (* A fault schedule degrading the only cross-shard link to zero
     latency would make the window width zero: refuse to run. *)
  Sim.Shard.note_latency_factor t 0.;
  ignore (Sim.Engine.schedule_at (Sim.Shard.engine t 0) ~time:1. ignore);
  match Sim.Shard.run t with
  | () -> Alcotest.fail "zero lookahead must be refused"
  | exception Failure msg ->
    Alcotest.(check bool) "error names the lookahead" true
      (contains_sub ~sub:"lookahead" msg)

(* An exception inside one shard's event poisons the run: every domain
   stops and the exception resurfaces on the caller. *)
let test_exception_propagates () =
  let t = Sim.Shard.create ~shards:2 () in
  Sim.Shard.note_min_link_delay t 10.;
  ignore
    (Sim.Engine.schedule_at (Sim.Shard.engine t 0) ~time:1. (fun () ->
         failwith "boom"));
  ignore (Sim.Engine.schedule_at (Sim.Shard.engine t 1) ~time:2. ignore);
  match Sim.Shard.run t with
  | () -> Alcotest.fail "the event's exception must re-raise"
  | exception Failure msg ->
    Alcotest.(check string) "original exception resurfaces" "boom" msg

(* --- the LAN timing attack, byte-identical across shard counts --- *)

let lan_campaign ?faults ~shards () =
  Attack.Timing_experiment.run
    ~make_setup:(fun ~seed ~tracer -> Ndn.Network.lan ~seed ~tracer ~shards ())
    ~contents:6 ~runs:2 ~seed:11 ~jobs:1 ~shards ?faults ~trace:true ()

let check_campaigns_equal label base other =
  let open Attack.Timing_experiment in
  Alcotest.(check string)
    (label ^ ": byte-identical JSONL trace")
    (render base.trace) (render other.trace);
  Alcotest.(check (float 0.))
    (label ^ ": success rate") base.success_rate other.success_rate;
  Alcotest.(check int) (label ^ ": timeouts") base.timeouts other.timeouts;
  Alcotest.(check int)
    (label ^ ": phase count")
    (List.length base.phases)
    (List.length other.phases);
  let fnr r =
    let f = false_negative_rate r in
    if Float.is_nan f then -1. else f
  in
  Alcotest.(check (float 0.)) (label ^ ": FNR") (fnr base) (fnr other)

let test_lan_identity () =
  let base = lan_campaign ~shards:1 () in
  Alcotest.(check bool) "trace is non-trivial" true
    (String.length (render base.Attack.Timing_experiment.trace) > 1000);
  List.iter
    (fun k ->
      check_campaigns_equal
        (Printf.sprintf "shards %d vs 1" k)
        base
        (lan_campaign ~shards:k ()))
    [ 2; 3; 8 ]

(* Every fault kind in one schedule, including a latency_factor < 1
   Link_degrade — the case that must shrink the lookahead window to
   stay conservative. *)
let fault_schedule =
  let open Sim.Fault in
  sort
    [
      { at = 20.; kind = Link_down { a = "U"; b = "R"; dir = Ab } };
      { at = 35.; kind = Link_up { a = "U"; b = "R"; dir = Ab } };
      {
        at = 40.;
        kind =
          Link_degrade
            {
              a = "R";
              b = "P";
              dir = Both;
              loss = 0.1;
              latency_factor = 0.5;
              until = 160.;
            };
      };
      { at = 80.; kind = Node_crash { node = "R"; preserve_cs = false } };
      { at = 120.; kind = Node_restart { node = "R" } };
      { at = 200.; kind = Producer_outage { node = "P"; until = 260. } };
      {
        at = 300.;
        kind = Producer_slowdown { node = "P"; factor = 3.; until = 380. };
      };
    ]

let test_faulted_identity () =
  let base = lan_campaign ~faults:fault_schedule ~shards:1 () in
  Alcotest.(check bool) "faulted campaign has phases" true
    (base.Attack.Timing_experiment.phases <> []);
  List.iter
    (fun k ->
      check_campaigns_equal
        (Printf.sprintf "faulted, shards %d vs 1" k)
        base
        (lan_campaign ~faults:fault_schedule ~shards:k ()))
    [ 2; 4 ]

(* --- generated topologies with aggregate consumers --- *)

let agg_config =
  {
    Workload.Aggregate.default with
    users = 2_000;
    catalog = 50;
    zipf_s = 0.9;
    diurnal_amplitude = 0.5;
    diurnal_period_ms = 1_500.;
    max_retries = 1;
  }

(* Build the generated graph, hang one aggregate consumer off every
   edge router, run to quiescence; return the rendered trace and the
   (shard-count-invariant) processed-event total. *)
let generated_run spec_text ~shards =
  let module TS = Ndn.Topology_spec in
  let spec =
    match TS.parse_spec spec_text with
    | Ok s -> s
    | Error e -> Alcotest.failf "spec does not parse: %s" e
  in
  let decl =
    match
      List.find_map (function _, TS.Generate_decl d -> Some d | _ -> None) spec
    with
    | Some d -> d
    | None -> Alcotest.fail "no generate directive"
  in
  let tracer = Sim.Trace.create () in
  let topo =
    match TS.build ~seed:5 ~tracer ~shards spec with
    | Ok t -> t
    | Error e -> Alcotest.failf "spec does not build: %s" e
  in
  let net = topo.TS.network in
  let g = TS.Gen.graph_of decl in
  let prefix = TS.Gen.prefix decl in
  let master = Sim.Rng.create 99 in
  List.iter
    (fun i ->
      let rng = Sim.Rng.split master in
      let node =
        match Ndn.Network.node net (TS.Gen.node_label decl g i) with
        | Some n -> n
        | None -> Alcotest.fail "edge router missing"
      in
      ignore
        (Workload.Aggregate.attach agg_config ~node ~prefix ~rng ~until:1_500.
           ()))
    g.TS.Gen.edge_routers;
  Ndn.Network.run net;
  (render tracer, Ndn.Network.events_processed net)

let generated_specs =
  [
    ( "tree",
      "generate tree name=t arity=3 tiers=3 cs=64,32,16 \
       latency=const:2,const:1,const:1 payload=16 seed=9" );
    ("ws", "generate ws name=w n=16 k=4 beta=0.3 cs=32 latency=const:1 seed=9");
    ("ba", "generate ba name=b n=14 m=2 cs=32 latency=const:1 seed=9");
  ]

let test_generated_identity () =
  List.iter
    (fun (label, spec) ->
      let t1, e1 = generated_run spec ~shards:1 in
      Alcotest.(check bool)
        (label ^ ": aggregates generated traffic")
        true
        (String.length t1 > 1000);
      List.iter
        (fun k ->
          let tk, ek = generated_run spec ~shards:k in
          Alcotest.(check string)
            (Printf.sprintf "%s: shards %d trace" label k)
            t1 tk;
          Alcotest.(check int)
            (Printf.sprintf "%s: shards %d events processed" label k)
            e1 ek)
        [ 2; 3; 8 ])
    generated_specs

(* qcheck: random small graphs and shard counts, same invariant.  The
   generator stays tiny (n <= 24) because every case runs the full
   simulation twice. *)
let qcheck_generated_identity =
  let gen =
    QCheck.Gen.(
      let* model = oneofl [ `Tree; `Ws; `Ba ] in
      let* seed = int_range 1 1000 in
      let* k = int_range 2 6 in
      let+ n = int_range 8 24 in
      (model, seed, k, n))
  in
  let print (model, seed, k, n) =
    Printf.sprintf "(%s, seed=%d, shards=%d, n=%d)"
      (match model with `Tree -> "tree" | `Ws -> "ws" | `Ba -> "ba")
      seed k n
  in
  QCheck.Test.make ~count:5 ~name:"generated topology is shard-count-invariant"
    (QCheck.make ~print gen)
    (fun (model, seed, k, n) ->
      let spec =
        match model with
        | `Tree ->
          Printf.sprintf
            "generate tree name=q arity=%d tiers=3 cs=32 latency=const:1 \
             seed=%d"
            (2 + (n mod 3))
            seed
        | `Ws ->
          Printf.sprintf
            "generate ws name=q n=%d k=4 beta=0.2 cs=32 latency=const:1 \
             seed=%d"
            n seed
        | `Ba ->
          Printf.sprintf
            "generate ba name=q n=%d m=2 cs=32 latency=const:1 seed=%d" n seed
      in
      let t1, e1 = generated_run spec ~shards:1 in
      let tk, ek = generated_run spec ~shards:k in
      if t1 <> tk then QCheck.Test.fail_reportf "%s: trace differs" spec;
      if e1 <> ek then
        QCheck.Test.fail_reportf "%s: events %d vs %d" spec e1 ek;
      true)

(* --- domain budgeting: trials x shards --- *)

let test_check_domains () =
  let avail = Sim.Parallel.default_jobs () in
  (match Sim.Parallel.check_domains ~jobs:(2 * avail) ~shards:2 with
  | Error msg ->
    Alcotest.(check bool) "error mentions the budget" true
      (contains_sub ~sub:"domain budget exceeded" msg)
  | Ok () -> Alcotest.fail "jobs x shards over-subscription must be rejected");
  (match Sim.Parallel.check_domains ~jobs:avail ~shards:1 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "jobs alone at the hardware count: %s" msg);
  (* A single axis may exceed the hardware count when asked for
     explicitly — only the product is capped. *)
  (match Sim.Parallel.check_domains ~jobs:1 ~shards:(8 * avail) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "shards alone must be allowed: %s" msg);
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Parallel.check_domains: jobs < 1") (fun () ->
      ignore (Sim.Parallel.check_domains ~jobs:0 ~shards:1))

let test_experiment_rejects_oversubscription () =
  let avail = Sim.Parallel.default_jobs () in
  match
    Attack.Timing_experiment.run
      ~make_setup:(fun ~seed ~tracer ->
        Ndn.Network.lan ~seed ~tracer ~shards:2 ())
      ~contents:2 ~runs:2 ~seed:3 ~jobs:(2 * avail) ~shards:2 ()
  with
  | _ -> Alcotest.fail "over-subscribed campaign must be rejected"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "front door names Timing_experiment" true
      (contains_sub ~sub:"Timing_experiment" msg)

(* Omitting jobs derates it to default_jobs / shards: never raises. *)
let test_experiment_derates_jobs () =
  let r =
    Attack.Timing_experiment.run
      ~make_setup:(fun ~seed ~tracer ->
        Ndn.Network.lan ~seed ~tracer ~shards:2 ())
      ~contents:2 ~runs:2 ~seed:3 ~shards:2 ()
  in
  Alcotest.(check bool) "campaign ran" true
    (Array.length r.Attack.Timing_experiment.hit_samples > 0)

let () =
  Alcotest.run "shard"
    [
      ( "window protocol",
        [
          Alcotest.test_case "lookahead barrier" `Quick test_lookahead_barrier;
          Alcotest.test_case "disconnected fallback" `Quick
            test_disconnected_fallback;
          Alcotest.test_case "non-positive lookahead refused" `Quick
            test_nonpositive_lookahead_refused;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
        ] );
      ( "campaign identity",
        [
          Alcotest.test_case "lan attack across K" `Slow test_lan_identity;
          Alcotest.test_case "faulted lan attack across K" `Slow
            test_faulted_identity;
        ] );
      ( "generated topologies",
        [
          Alcotest.test_case "tree/ws/ba across K" `Slow
            test_generated_identity;
          QCheck_alcotest.to_alcotest qcheck_generated_identity;
        ] );
      ( "domain budget",
        [
          Alcotest.test_case "check_domains" `Quick test_check_domains;
          Alcotest.test_case "experiment rejects over-subscription" `Quick
            test_experiment_rejects_oversubscription;
          Alcotest.test_case "experiment derates jobs" `Quick
            test_experiment_derates_jobs;
        ] );
    ]
