(* Tests for the NDN substrate: names, trie, packets, content store,
   PIT, FIB, node forwarding, network topologies. *)

open Ndn

let name = Name.of_string

let name_testable = Alcotest.testable Name.pp Name.equal

(* --- Name --- *)

let test_name_parsing () =
  Alcotest.(check (list string)) "components"
    [ "cnn"; "news"; "2013may20" ]
    (Name.components (name "/cnn/news/2013may20"));
  Alcotest.check name_testable "redundant slashes" (name "/a/b")
    (name "//a//b/");
  Alcotest.check name_testable "root" Name.root (name "/");
  Alcotest.check name_testable "empty string is root" Name.root (name "")

let test_name_to_string () =
  Alcotest.(check string) "roundtrip" "/a/b/c" (Name.to_string (name "/a/b/c"));
  Alcotest.(check string) "root prints /" "/" (Name.to_string Name.root)

let test_name_invalid_component () =
  Alcotest.check_raises "NUL rejected" (Invalid_argument "Name: NUL byte in component")
    (fun () -> ignore (Name.of_components [ "a\000b" ]));
  Alcotest.check_raises "empty rejected" (Invalid_argument "Name: empty component")
    (fun () -> ignore (Name.of_components [ "" ]))

let test_name_append_parent_last () =
  let n = name "/youtube/alice" in
  let n' = Name.append n "video-749.avi" in
  Alcotest.(check int) "length" 3 (Name.length n');
  Alcotest.(check (option string)) "last" (Some "video-749.avi") (Name.last n');
  Alcotest.(check (option name_testable)) "parent" (Some n) (Name.parent n');
  Alcotest.(check (option name_testable)) "root parent" None (Name.parent Name.root)

let test_name_prefix_semantics () =
  let full = name "/cnn/news/2013may20" in
  Alcotest.(check bool) "/cnn/news matches" true
    (Name.is_prefix ~prefix:(name "/cnn/news") full);
  Alcotest.(check bool) "reflexive" true (Name.is_prefix ~prefix:full full);
  Alcotest.(check bool) "root matches everything" true
    (Name.is_prefix ~prefix:Name.root full);
  Alcotest.(check bool) "sibling does not match" false
    (Name.is_prefix ~prefix:(name "/cnn/sports") full);
  Alcotest.(check bool) "longer does not match shorter" false
    (Name.is_prefix ~prefix:full (name "/cnn/news"));
  Alcotest.(check bool) "component boundary honored" false
    (Name.is_prefix ~prefix:(name "/cn") full);
  Alcotest.(check bool) "strict excludes equality" false
    (Name.is_strict_prefix ~prefix:full full);
  Alcotest.(check bool) "strict on real prefix" true
    (Name.is_strict_prefix ~prefix:(name "/cnn") full)

let test_name_prefix_extraction () =
  let full = name "/a/b/c/d" in
  Alcotest.check name_testable "prefix 2" (name "/a/b") (Name.prefix full 2);
  Alcotest.check name_testable "prefix 0" Name.root (Name.prefix full 0);
  Alcotest.check name_testable "prefix full" full (Name.prefix full 4);
  Alcotest.check_raises "negative" (Invalid_argument "Name.prefix: bad length")
    (fun () -> ignore (Name.prefix full (-1)))

let test_name_namespace () =
  let full = name "/youtube/alice/video/137" in
  Alcotest.check name_testable "depth 2" (name "/youtube/alice")
    (Name.namespace full ~depth:2);
  Alcotest.check name_testable "depth beyond length" full
    (Name.namespace full ~depth:10)

let test_name_ordering_and_hash () =
  let a = name "/a/b" and b = name "/a/c" in
  Alcotest.(check bool) "order" true (Name.compare a b < 0);
  Alcotest.(check bool) "equal hash" true (Name.hash a = Name.hash (name "/a/b"));
  Alcotest.(check bool) "equal" true (Name.equal a (name "/a/b"))

let test_name_concat () =
  Alcotest.check name_testable "concat" (name "/a/b/c/d")
    (Name.concat (name "/a/b") (name "/c/d"));
  Alcotest.check name_testable "concat root left" (name "/x")
    (Name.concat Name.root (name "/x"));
  Alcotest.check name_testable "concat root right" (name "/x")
    (Name.concat (name "/x") Name.root)

let test_name_containers () =
  let s = Name.Set.of_list [ name "/a"; name "/b"; name "/a" ] in
  Alcotest.(check int) "set dedups" 2 (Name.Set.cardinal s);
  let m = Name.Map.singleton (name "/a/b") 1 in
  Alcotest.(check (option int)) "map lookup" (Some 1)
    (Name.Map.find_opt (name "/a/b") m)

(* --- Name_trie --- *)

let trie_of bindings =
  let t = Name_trie.create () in
  List.iter (fun (n, v) -> Name_trie.add t (name n) v) bindings;
  t

let test_trie_find_exact () =
  let t = trie_of [ ("/a/b", 1); ("/a", 2); ("/c", 3) ] in
  Alcotest.(check (option int)) "find /a/b" (Some 1) (Name_trie.find t (name "/a/b"));
  Alcotest.(check (option int)) "find /a" (Some 2) (Name_trie.find t (name "/a"));
  Alcotest.(check (option int)) "miss" None (Name_trie.find t (name "/a/b/c"));
  Alcotest.(check int) "size" 3 (Name_trie.size t)

let test_trie_replace () =
  let t = trie_of [ ("/a", 1) ] in
  Name_trie.add t (name "/a") 9;
  Alcotest.(check (option int)) "replaced" (Some 9) (Name_trie.find t (name "/a"));
  Alcotest.(check int) "size unchanged" 1 (Name_trie.size t)

let test_trie_remove_prunes () =
  let t = trie_of [ ("/a/b/c", 1) ] in
  Name_trie.remove t (name "/a/b/c");
  Alcotest.(check int) "empty" 0 (Name_trie.size t);
  Alcotest.(check bool) "is_empty" true (Name_trie.is_empty t);
  (* removing a non-existent binding is a no-op *)
  Name_trie.remove t (name "/zz");
  Alcotest.(check int) "still empty" 0 (Name_trie.size t)

let test_trie_remove_keeps_descendants () =
  let t = trie_of [ ("/a", 1); ("/a/b", 2) ] in
  Name_trie.remove t (name "/a");
  Alcotest.(check (option int)) "child survives" (Some 2)
    (Name_trie.find t (name "/a/b"));
  Alcotest.(check int) "size" 1 (Name_trie.size t)

let test_trie_longest_prefix () =
  let t = trie_of [ ("/a", 1); ("/a/b", 2); ("/c", 3) ] in
  (match Name_trie.longest_prefix t (name "/a/b/c/d") with
  | Some (n, v) ->
    Alcotest.check name_testable "longest name" (name "/a/b") n;
    Alcotest.(check int) "value" 2 v
  | None -> Alcotest.fail "expected match");
  (match Name_trie.longest_prefix t (name "/a/x") with
  | Some (n, _) -> Alcotest.check name_testable "falls back to /a" (name "/a") n
  | None -> Alcotest.fail "expected match");
  Alcotest.(check bool) "no match" true
    (Name_trie.longest_prefix t (name "/zzz") = None)

let test_trie_root_binding () =
  let t = trie_of [ ("/", 0); ("/a", 1) ] in
  (match Name_trie.longest_prefix t (name "/x/y") with
  | Some (n, v) ->
    Alcotest.check name_testable "root is default route" Name.root n;
    Alcotest.(check int) "value" 0 v
  | None -> Alcotest.fail "root should match");
  Alcotest.(check int) "size counts root" 2 (Name_trie.size t)

let test_trie_fold_prefixes () =
  let t = trie_of [ ("/a", 1); ("/a/b", 2); ("/a/b/c", 3); ("/x", 9) ] in
  let hits =
    Name_trie.fold_prefixes t (name "/a/b/c/d") ~init:[] ~f:(fun acc n v ->
        (Name.to_string n, v) :: acc)
  in
  Alcotest.(check (list (pair string int)))
    "all prefixes shortest-first"
    [ ("/a/b/c", 3); ("/a/b", 2); ("/a", 1) ]
    hits

let test_trie_first_extension () =
  let t = trie_of [ ("/a/b/z", 26); ("/a/b/c", 3); ("/a/q", 17) ] in
  (match Name_trie.first_extension t (name "/a/b") with
  | Some (n, v) ->
    Alcotest.check name_testable "smallest extension" (name "/a/b/c") n;
    Alcotest.(check int) "value" 3 v
  | None -> Alcotest.fail "expected extension");
  Alcotest.(check bool) "no extension" true
    (Name_trie.first_extension t (name "/zzz") = None);
  (* exact binding counts as its own extension *)
  (match Name_trie.first_extension t (name "/a/b/c") with
  | Some (n, _) -> Alcotest.check name_testable "self" (name "/a/b/c") n
  | None -> Alcotest.fail "self should match")

let test_trie_fold_subtree_order () =
  let t = trie_of [ ("/a/c", 2); ("/a/b", 1); ("/a/b/x", 3) ] in
  let names =
    Name_trie.fold_subtree t (name "/a") ~init:[] ~f:(fun acc n _ ->
        Name.to_string n :: acc)
  in
  Alcotest.(check (list string)) "canonical order"
    [ "/a/c"; "/a/b/x"; "/a/b" ]
    names

let test_trie_to_list_and_clear () =
  let t = trie_of [ ("/b", 2); ("/a", 1) ] in
  Alcotest.(check (list (pair string int)))
    "sorted bindings"
    [ ("/a", 1); ("/b", 2) ]
    (List.map (fun (n, v) -> (Name.to_string n, v)) (Name_trie.to_list t));
  Name_trie.clear t;
  Alcotest.(check int) "cleared" 0 (Name_trie.size t)

(* --- Interest / Data / Packet --- *)

let test_interest_scope () =
  let i = Interest.create ~scope:2 ~nonce:1L (name "/a") in
  (match Interest.decrement_scope i with
  | Some i' -> Alcotest.(check (option int)) "2 -> 1" (Some 1) i'.Interest.scope
  | None -> Alcotest.fail "should still forward");
  let i1 = Interest.create ~scope:1 ~nonce:1L (name "/a") in
  Alcotest.(check bool) "scope 1 exhausted" true (Interest.decrement_scope i1 = None);
  let unlimited = Interest.create ~nonce:1L (name "/a") in
  (match Interest.decrement_scope unlimited with
  | Some i' -> Alcotest.(check (option int)) "unlimited unchanged" None i'.Interest.scope
  | None -> Alcotest.fail "unlimited must pass")

let test_interest_rejects_zero_scope () =
  Alcotest.check_raises "scope 0" (Invalid_argument "Interest.create: scope must be >= 1")
    (fun () -> ignore (Interest.create ~scope:0 ~nonce:1L (name "/a")))

let test_data_signature () =
  let d =
    Data.create ~producer:"P" ~key:"pkey" ~payload:"hello" (name "/prod/x")
  in
  Alcotest.(check bool) "verifies under signer key" true (Data.verify d ~key:"pkey");
  Alcotest.(check bool) "rejects wrong key" false (Data.verify d ~key:"other")

let test_data_signature_covers_flags () =
  let plain =
    Data.create ~producer:"P" ~key:"k" ~payload:"x" (name "/prod/x")
  in
  let private_ =
    Data.create ~producer_private:true ~producer:"P" ~key:"k" ~payload:"x"
      (name "/prod/x")
  in
  Alcotest.(check bool) "privacy bit changes signature" true
    (plain.Data.signature <> private_.Data.signature)

let test_data_freshness () =
  let d =
    Data.create ~freshness_ms:100. ~producer:"P" ~key:"k" ~payload:"" (name "/a")
  in
  Alcotest.(check bool) "fresh" true (Data.is_fresh d ~age_ms:50.);
  Alcotest.(check bool) "stale" false (Data.is_fresh d ~age_ms:150.);
  let forever = Data.create ~producer:"P" ~key:"k" ~payload:"" (name "/a") in
  Alcotest.(check bool) "no freshness = always fresh" true
    (Data.is_fresh forever ~age_ms:1e12)

let test_packet_accessors () =
  let i = Interest.create ~nonce:7L (name "/a/b") in
  let d = Data.create ~producer:"P" ~key:"k" ~payload:"xyz" (name "/c") in
  Alcotest.check name_testable "interest name" (name "/a/b")
    (Packet.name (Packet.Interest i));
  Alcotest.check name_testable "data name" (name "/c") (Packet.name (Packet.Data d));
  Alcotest.(check bool) "data bigger than interest" true
    (Packet.size_bytes (Packet.Data d) > Packet.size_bytes (Packet.Interest i))

(* --- Content_store --- *)

let mk_data ?(producer_private = false) ?(strict_match = false) ?freshness_ms n =
  Data.create ~producer_private ~strict_match ?freshness_ms ~producer:"P"
    ~key:"k" ~payload:"payload" (name n)

let test_cs_insert_lookup () =
  let cs = Content_store.create ~capacity:10 () in
  Content_store.insert cs ~now:0. (mk_data "/a/1") ();
  (match Content_store.lookup cs ~now:1. (name "/a/1") with
  | Some e -> Alcotest.check name_testable "hit" (name "/a/1") e.Content_store.data.Data.name
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "miss" true (Content_store.lookup cs ~now:1. (name "/a/2") = None);
  let c = Content_store.counters cs in
  Alcotest.(check int) "hits" 1 c.Content_store.hits;
  Alcotest.(check int) "misses" 1 c.Content_store.misses

let test_cs_lru_eviction () =
  let cs = Content_store.create ~capacity:3 () in
  List.iteri (fun i n -> Content_store.insert cs ~now:(float_of_int i) (mk_data n) ())
    [ "/a"; "/b"; "/c" ];
  (* touch /a so /b becomes LRU *)
  ignore (Content_store.lookup cs ~now:10. (name "/a"));
  Content_store.insert cs ~now:11. (mk_data "/d") ();
  Alcotest.(check bool) "/b evicted" false (Content_store.mem cs (name "/b"));
  Alcotest.(check bool) "/a kept" true (Content_store.mem cs (name "/a"));
  Alcotest.(check int) "size at capacity" 3 (Content_store.size cs);
  Alcotest.(check int) "one eviction" 1 (Content_store.counters cs).Content_store.evictions

let test_cs_fifo_eviction () =
  let cs = Content_store.create ~policy:Eviction.Fifo ~capacity:3 () in
  List.iteri (fun i n -> Content_store.insert cs ~now:(float_of_int i) (mk_data n) ())
    [ "/a"; "/b"; "/c" ];
  (* touching /a must NOT save it under FIFO *)
  ignore (Content_store.lookup cs ~now:10. (name "/a"));
  Content_store.insert cs ~now:11. (mk_data "/d") ();
  Alcotest.(check bool) "/a evicted despite recent use" false
    (Content_store.mem cs (name "/a"))

let test_cs_lfu_eviction () =
  let cs = Content_store.create ~policy:Eviction.Lfu ~capacity:3 () in
  List.iteri (fun i n -> Content_store.insert cs ~now:(float_of_int i) (mk_data n) ())
    [ "/a"; "/b"; "/c" ];
  (* /a twice, /c once, /b never *)
  ignore (Content_store.lookup cs ~now:10. (name "/a"));
  ignore (Content_store.lookup cs ~now:11. (name "/a"));
  ignore (Content_store.lookup cs ~now:12. (name "/c"));
  Content_store.insert cs ~now:13. (mk_data "/d") ();
  Alcotest.(check bool) "least frequent (/b) evicted" false
    (Content_store.mem cs (name "/b"));
  Alcotest.(check bool) "/a kept" true (Content_store.mem cs (name "/a"));
  Alcotest.(check bool) "/c kept" true (Content_store.mem cs (name "/c"))

let test_cs_random_eviction_needs_rng () =
  Alcotest.check_raises "missing rng"
    (Invalid_argument "Content_store.create: random replacement needs an rng")
    (fun () ->
      ignore (Content_store.create ~policy:Eviction.Random_replacement ~capacity:2 ()))

let test_cs_random_eviction () =
  let rng = Sim.Rng.create 3 in
  let cs =
    Content_store.create ~policy:Eviction.Random_replacement ~rng ~capacity:5 ()
  in
  for i = 0 to 49 do
    Content_store.insert cs ~now:(float_of_int i) (mk_data (Printf.sprintf "/n/%d" i)) ()
  done;
  Alcotest.(check int) "capacity respected" 5 (Content_store.size cs);
  Alcotest.(check int) "evictions" 45 (Content_store.counters cs).Content_store.evictions

let test_cs_unbounded () =
  let cs = Content_store.create ~capacity:0 () in
  for i = 0 to 999 do
    Content_store.insert cs ~now:0. (mk_data (Printf.sprintf "/n/%d" i)) ()
  done;
  Alcotest.(check int) "all retained" 1000 (Content_store.size cs);
  Alcotest.(check int) "no evictions" 0 (Content_store.counters cs).Content_store.evictions

let test_cs_reinsert_refreshes () =
  let cs = Content_store.create ~capacity:10 () in
  Content_store.insert cs ~now:0. (mk_data "/a") ();
  Content_store.insert cs ~now:5. (mk_data "/a") ();
  Alcotest.(check int) "no duplicate" 1 (Content_store.size cs);
  match Content_store.peek cs (name "/a") with
  | Some e -> Alcotest.(check (float 1e-9)) "inserted_at refreshed" 5. e.Content_store.inserted_at
  | None -> Alcotest.fail "expected entry"

let test_cs_prefix_matching () =
  let cs = Content_store.create ~capacity:10 () in
  Content_store.insert cs ~now:0. (mk_data "/a/b/2") ();
  Content_store.insert cs ~now:0. (mk_data "/a/b/1") ();
  (match Content_store.lookup cs ~now:1. (name "/a/b") with
  | Some e ->
    Alcotest.check name_testable "smallest extension wins" (name "/a/b/1")
      e.Content_store.data.Data.name
  | None -> Alcotest.fail "prefix should match");
  Alcotest.(check bool) "exact-only mode misses" true
    (Content_store.lookup cs ~now:1. ~exact:true (name "/a/b") = None)

let test_cs_strict_match_blocks_prefix_probing () =
  (* Footnote 5: rand-named content must not answer prefix interests. *)
  let cs = Content_store.create ~capacity:10 () in
  Content_store.insert cs ~now:0. (mk_data ~strict_match:true "/alice/skype/0/rand123") ();
  Alcotest.(check bool) "prefix probe fails" true
    (Content_store.lookup cs ~now:1. (name "/alice/skype/0") = None);
  Alcotest.(check bool) "full name still works" true
    (Content_store.lookup cs ~now:1. (name "/alice/skype/0/rand123") <> None)

let test_cs_freshness_expiry () =
  let cs = Content_store.create ~capacity:10 () in
  Content_store.insert cs ~now:0. (mk_data ~freshness_ms:100. "/a") ();
  Alcotest.(check bool) "fresh hit" true
    (Content_store.lookup cs ~now:50. (name "/a") <> None);
  Alcotest.(check bool) "stale entries expire on lookup" true
    (Content_store.lookup cs ~now:200. (name "/a") = None);
  Alcotest.(check int) "expiration counted" 1
    (Content_store.counters cs).Content_store.expirations;
  Alcotest.(check int) "gone from store" 0 (Content_store.size cs)

let test_cs_peek_no_side_effects () =
  let cs = Content_store.create ~capacity:10 () in
  Content_store.insert cs ~now:0. (mk_data "/a") ();
  (match Content_store.peek cs (name "/a") with
  | Some e -> Alcotest.(check int) "no hit recorded" 0 e.Content_store.access_count
  | None -> Alcotest.fail "expected entry");
  let c = Content_store.counters cs in
  Alcotest.(check int) "no lookup counted" 0 c.Content_store.lookups

let test_cs_meta () =
  let cs = Content_store.create ~capacity:10 () in
  Content_store.insert cs ~now:0. (mk_data "/a") 41;
  Alcotest.(check bool) "set_meta" true (Content_store.set_meta cs (name "/a") 42);
  (match Content_store.peek cs (name "/a") with
  | Some e -> Alcotest.(check int) "meta updated" 42 e.Content_store.meta
  | None -> Alcotest.fail "expected entry");
  Alcotest.(check bool) "set_meta on absent" false
    (Content_store.set_meta cs (name "/zz") 0)

let test_cs_remove_and_clear () =
  let cs = Content_store.create ~capacity:10 () in
  Content_store.insert cs ~now:0. (mk_data "/a") ();
  Content_store.insert cs ~now:0. (mk_data "/b") ();
  Content_store.remove cs (name "/a");
  Alcotest.(check bool) "removed" false (Content_store.mem cs (name "/a"));
  Content_store.clear cs;
  Alcotest.(check int) "cleared" 0 (Content_store.size cs)

let test_cs_access_count_and_recency () =
  let cs = Content_store.create ~capacity:10 () in
  Content_store.insert cs ~now:0. (mk_data "/a") ();
  ignore (Content_store.lookup cs ~now:1. (name "/a"));
  ignore (Content_store.lookup cs ~now:2. (name "/a"));
  match Content_store.peek cs (name "/a") with
  | Some e ->
    Alcotest.(check int) "access_count" 2 e.Content_store.access_count;
    Alcotest.(check (float 1e-9)) "last_access" 2. e.Content_store.last_access
  | None -> Alcotest.fail "expected entry"

(* --- PIT --- *)

let test_pit_insert_collapse () =
  let pit = Pit.create () in
  Alcotest.(check bool) "first is Forward" true
    (Pit.insert pit ~now:0. ~face:1 ~nonce:1L (name "/a") = Pit.Forward);
  Alcotest.(check bool) "second face is Collapsed" true
    (Pit.insert pit ~now:1. ~face:2 ~nonce:2L (name "/a") = Pit.Collapsed);
  Alcotest.(check bool) "same face+nonce is Duplicate" true
    (Pit.insert pit ~now:2. ~face:1 ~nonce:1L (name "/a") = Pit.Duplicate);
  Alcotest.(check (list int)) "faces in order" [ 1; 2 ] (Pit.faces pit (name "/a"))

let test_pit_satisfy () =
  let pit = Pit.create () in
  ignore (Pit.insert pit ~now:0. ~face:1 ~nonce:1L (name "/a"));
  ignore (Pit.insert pit ~now:0. ~face:2 ~nonce:2L (name "/a"));
  Alcotest.(check (list int)) "both faces" [ 1; 2 ] (Pit.satisfy pit (name "/a"));
  Alcotest.(check bool) "entry flushed" false (Pit.pending pit (name "/a"));
  Alcotest.(check (list int)) "second satisfy empty" [] (Pit.satisfy pit (name "/a"))

let test_pit_satisfy_by_extension () =
  (* Data named /a/b/c satisfies pending interests for /a/b and /a/b/c. *)
  let pit = Pit.create () in
  ignore (Pit.insert pit ~now:0. ~face:1 ~nonce:1L (name "/a/b"));
  ignore (Pit.insert pit ~now:0. ~face:2 ~nonce:2L (name "/a/b/c"));
  ignore (Pit.insert pit ~now:0. ~face:3 ~nonce:3L (name "/a/x"));
  let faces = Pit.satisfy pit (name "/a/b/c") in
  Alcotest.(check (list int)) "prefix entries satisfied" [ 1; 2 ] faces;
  Alcotest.(check bool) "unrelated survives" true (Pit.pending pit (name "/a/x"))

let test_pit_satisfy_dedups_faces () =
  let pit = Pit.create () in
  ignore (Pit.insert pit ~now:0. ~face:1 ~nonce:1L (name "/a"));
  ignore (Pit.insert pit ~now:0. ~face:1 ~nonce:2L (name "/a/b"));
  Alcotest.(check (list int)) "face listed once" [ 1 ] (Pit.satisfy pit (name "/a/b"))

let test_pit_satisfy_timed () =
  let pit = Pit.create () in
  ignore (Pit.insert pit ~now:3. ~face:1 ~nonce:1L (name "/a"));
  let faces, created = Pit.satisfy_timed pit (name "/a") in
  Alcotest.(check (list int)) "faces" [ 1 ] faces;
  Alcotest.(check (option (float 1e-9))) "created" (Some 3.) created;
  let faces2, created2 = Pit.satisfy_timed pit (name "/zzz") in
  Alcotest.(check (list int)) "no faces" [] faces2;
  Alcotest.(check (option (float 1e-9))) "no created" None created2

let test_pit_expire () =
  let pit = Pit.create ~lifetime_ms:100. () in
  ignore (Pit.insert pit ~now:0. ~face:1 ~nonce:1L (name "/old"));
  ignore (Pit.insert pit ~now:90. ~face:1 ~nonce:2L (name "/new"));
  let expired = Pit.expire pit ~now:150. in
  Alcotest.(check (list name_testable)) "only the old one" [ name "/old" ] expired;
  Alcotest.(check bool) "new entry survives" true (Pit.pending pit (name "/new"));
  Alcotest.(check int) "size" 1 (Pit.size pit)

(* --- FIB --- *)

let test_fib_longest_prefix () =
  let fib = Fib.create () in
  Fib.add_route fib ~prefix:(name "/") ~face:0;
  Fib.add_route fib ~prefix:(name "/prod") ~face:1;
  Fib.add_route fib ~prefix:(name "/prod/videos") ~face:2;
  Alcotest.(check (option int)) "most specific" (Some 2)
    (Fib.next_hop fib (name "/prod/videos/1"));
  Alcotest.(check (option int)) "mid" (Some 1) (Fib.next_hop fib (name "/prod/news"));
  Alcotest.(check (option int)) "default" (Some 0) (Fib.next_hop fib (name "/other"))

let test_fib_multiple_faces () =
  let fib = Fib.create () in
  Fib.add_route fib ~prefix:(name "/p") ~face:1;
  Fib.add_route fib ~prefix:(name "/p") ~face:2;
  Fib.add_route fib ~prefix:(name "/p") ~face:1 (* duplicate ignored *);
  Alcotest.(check (list int)) "preference order" [ 1; 2 ] (Fib.next_hops fib (name "/p/x"))

let test_fib_remove () =
  let fib = Fib.create () in
  Fib.add_route fib ~prefix:(name "/p") ~face:1;
  Fib.add_route fib ~prefix:(name "/p") ~face:2;
  Fib.remove_route fib ~prefix:(name "/p") ~face:1;
  Alcotest.(check (list int)) "face removed" [ 2 ] (Fib.next_hops fib (name "/p/x"));
  Fib.remove_route fib ~prefix:(name "/p") ~face:2;
  Alcotest.(check (list int)) "prefix withdrawn" [] (Fib.next_hops fib (name "/p/x"));
  Alcotest.(check int) "size 0" 0 (Fib.size fib)

let test_fib_no_route () =
  let fib = Fib.create () in
  Alcotest.(check (option int)) "empty fib" None (Fib.next_hop fib (name "/x"))

(* --- Node / Network end-to-end --- *)

let test_end_to_end_fetch () =
  let setup = Network.lan () in
  let n = name "/prod/file/1" in
  (match Network.fetch_rtt setup.Network.net ~from:setup.Network.user n with
  | Some rtt -> Alcotest.(check bool) "positive rtt" true (rtt > 0.)
  | None -> Alcotest.fail "fetch timed out");
  Alcotest.(check bool) "content cached at router" true
    (Content_store.mem (Node.content_store setup.Network.router) n)

let test_cache_hit_faster_than_miss () =
  let setup = Network.lan () in
  let n = name "/prod/file/2" in
  let miss = Network.fetch_rtt setup.Network.net ~from:setup.Network.user n in
  let hit = Network.fetch_rtt setup.Network.net ~from:setup.Network.adversary n in
  match (miss, hit) with
  | Some m, Some h -> Alcotest.(check bool) "hit < miss" true (h < m)
  | _ -> Alcotest.fail "timeout"

let test_interest_collapsing_at_router () =
  (* Two consumers ask for the same content near-simultaneously: the
     router must forward one interest upstream and answer both. *)
  let setup = Network.lan () in
  let n = name "/prod/file/collapse" in
  let got = ref 0 in
  Node.express_interest setup.Network.user n ~on_data:(fun ~rtt_ms:_ _ -> incr got);
  Node.express_interest setup.Network.adversary n ~on_data:(fun ~rtt_ms:_ _ -> incr got);
  Network.run setup.Network.net;
  Alcotest.(check int) "both consumers served" 2 !got;
  let pc = Node.counters setup.Network.producer_host in
  Alcotest.(check int) "producer produced once" 1 pc.Node.interests_forwarded

let test_scope_2_hit_vs_miss () =
  let setup = Network.lan () in
  let cached = name "/prod/file/cached" and fresh = name "/prod/file/fresh" in
  ignore (Network.fetch_rtt setup.Network.net ~from:setup.Network.user cached);
  Alcotest.(check bool) "scope-2 returns cached content" true
    (Network.fetch_rtt setup.Network.net ~from:setup.Network.adversary ~scope:2 cached
    <> None);
  Alcotest.(check bool) "scope-2 starves on uncached content" true
    (Network.fetch_rtt setup.Network.net ~from:setup.Network.adversary ~scope:2
       ~timeout_ms:500. fresh
    = None);
  Alcotest.(check bool) "router recorded scope drop" true
    ((Node.counters setup.Network.router).Node.scope_drops >= 1)

let test_scope_ignored_when_disabled () =
  (* honor_scope=false routers forward regardless. *)
  let net = Network.create ~seed:5 () in
  let a = Network.add_node net ~caching:false "A" in
  let r = Network.add_node net ~honor_scope:false "R" in
  let p = Network.add_node net "P" in
  let prefix = name "/prod" in
  Node.add_producer p ~prefix (fun i ->
      Some (Data.create ~producer:"P" ~key:"k" ~payload:"d" i.Interest.name));
  let fa, _ = Network.connect net ~latency:(Sim.Latency.Constant 1.) a r in
  let fr, _ = Network.connect net ~latency:(Sim.Latency.Constant 1.) r p in
  Network.route net a ~prefix ~via:fa;
  Network.route net r ~prefix ~via:fr;
  (* A honors scope (scope 2 -> 1 on first hop), but R ignores it. *)
  Alcotest.(check bool) "content fetched despite scope 2" true
    (Network.fetch_rtt net ~from:a ~scope:2 (name "/prod/x") <> None)

let test_pit_timeout_no_route () =
  let net = Network.create () in
  let a = Network.add_node net "A" in
  (* No route at all: interest dies, timeout callback fires. *)
  let timed_out = ref false in
  Node.express_interest a (name "/nowhere") ~timeout_ms:100.
    ~on_data:(fun ~rtt_ms:_ _ -> ())
    ~on_timeout:(fun () -> timed_out := true);
  Network.run net;
  Alcotest.(check bool) "timeout fired" true !timed_out;
  Alcotest.(check int) "no-route counted" 1 (Node.counters a).Node.no_route_drops

let test_packet_loss_and_retransmission () =
  (* With a lossy link, a retransmitted interest is satisfied from the
     closest cache that already holds the content. *)
  let net = Network.create ~seed:77 () in
  let a = Network.add_node net ~caching:false "A" in
  let r = Network.add_node net "R" in
  let p = Network.add_node net "P" in
  let prefix = name "/prod" in
  Node.add_producer p ~prefix (fun i ->
      Some (Data.create ~producer:"P" ~key:"k" ~payload:"d" i.Interest.name));
  (* loss only between A and R *)
  let fa, _ = Network.connect net ~loss:0.3 ~latency:(Sim.Latency.Constant 1.) a r in
  let fr, _ = Network.connect net ~latency:(Sim.Latency.Constant 1.) r p in
  Network.route net a ~prefix ~via:fa;
  Network.route net r ~prefix ~via:fr;
  (* Retransmit until success. *)
  let attempts = ref 0 and got = ref false in
  let n = name "/prod/lossy" in
  let rec try_fetch () =
    if (not !got) && !attempts < 20 then begin
      incr attempts;
      Node.express_interest a n ~timeout_ms:300.
        ~on_data:(fun ~rtt_ms:_ _ -> got := true)
        ~on_timeout:try_fetch
    end
  in
  try_fetch ();
  Network.run net;
  Alcotest.(check bool) "eventually fetched despite loss" true !got

let test_producer_only_serves_its_prefix () =
  let setup = Network.lan () in
  Alcotest.(check bool) "unknown namespace times out" true
    (Network.fetch_rtt setup.Network.net ~from:setup.Network.user ~timeout_ms:500.
       (name "/prod2/foo")
    = None)

let test_local_host_probing () =
  (* The local-adversary topology: the host's own CS answers instantly. *)
  let setup = Network.local_host () in
  let n = name "/prod/app-secret" in
  let miss = Network.fetch_rtt setup.Network.net ~from:setup.Network.user n in
  let hit = Network.fetch_rtt setup.Network.net ~from:setup.Network.adversary n in
  match (miss, hit) with
  | Some m, Some h ->
    Alcotest.(check bool) "local hit is much faster" true (h < m /. 2.);
    Alcotest.(check bool) "hit under 1ms" true (h < 1.5)
  | _ -> Alcotest.fail "timeout"

let test_node_caching_disabled () =
  let setup = Network.lan () in
  let n = name "/prod/file/nocache" in
  ignore (Network.fetch_rtt setup.Network.net ~from:setup.Network.adversary n);
  Alcotest.(check bool) "consumer host did not cache" false
    (Content_store.mem (Node.content_store setup.Network.adversary) n);
  Alcotest.(check bool) "router cached" true
    (Content_store.mem (Node.content_store setup.Network.router) n)

let test_data_flows_only_where_requested () =
  let setup = Network.lan () in
  let n = name "/prod/file/directed" in
  ignore (Network.fetch_rtt setup.Network.net ~from:setup.Network.user n);
  (* Adversary host never saw the data. *)
  Alcotest.(check int) "no data at adversary" 0
    (Node.counters setup.Network.adversary).Node.data_received

(* --- Segmentation --- *)

let test_segmentation_split () =
  let chunks = Segmentation.split ~payload:"abcdefghij" ~segment_size:4 in
  Alcotest.(check (list string)) "chunks" [ "abcd"; "efgh"; "ij" ] chunks;
  Alcotest.(check (list string)) "empty payload has one empty chunk" [ "" ]
    (Segmentation.split ~payload:"" ~segment_size:4);
  Alcotest.(check int) "count" 3
    (Segmentation.segment_count ~payload:"abcdefghij" ~segment_size:4);
  Alcotest.check_raises "bad size"
    (Invalid_argument "Segmentation.split: segment_size must be positive")
    (fun () -> ignore (Segmentation.split ~payload:"x" ~segment_size:0))

let test_segmentation_names () =
  let base = name "/prod/video" in
  Alcotest.check name_testable "segment 3" (name "/prod/video/3")
    (Segmentation.segment_name ~base 3);
  Alcotest.check_raises "negative"
    (Invalid_argument "Segmentation.segment_name: negative index") (fun () ->
      ignore (Segmentation.segment_name ~base (-1)))

let test_segmentation_handler () =
  let base = name "/prod/file" in
  let handler =
    Segmentation.producer_handler ~base ~producer:"P" ~key:"k"
      ~content_id:"file-1" ~payload:"0123456789" ~segment_size:4 ()
  in
  let ask n = handler (Interest.create ~nonce:1L (name n)) in
  (match ask "/prod/file/0" with
  | Some d -> (
    Alcotest.(check (option string)) "content id" (Some "file-1") d.Data.content_id;
    match Segmentation.parse_segment d with
    | Some (total, chunk) ->
      Alcotest.(check int) "total" 3 total;
      Alcotest.(check string) "chunk" "0123" chunk
    | None -> Alcotest.fail "segment should parse")
  | None -> Alcotest.fail "segment 0 should exist");
  Alcotest.(check bool) "out of range" true (ask "/prod/file/3" = None);
  Alcotest.(check bool) "not a segment name" true (ask "/prod/file/x" = None);
  Alcotest.(check bool) "too deep" true (ask "/prod/file/0/extra" = None);
  Alcotest.(check bool) "bare base" true (ask "/prod/file" = None)

let test_segmentation_fetch_all () =
  let setup = Network.lan () in
  let base = name "/prod/movie" in
  let payload = String.init 3000 (fun i -> Char.chr (97 + (i mod 26))) in
  Node.add_producer setup.Network.producer_host ~prefix:base
    (Segmentation.producer_handler ~base ~producer:"P"
       ~key:setup.Network.producer_key ~payload ~segment_size:512 ());
  let result = ref None in
  Segmentation.fetch_all setup.Network.user ~base
    ~on_complete:(fun r -> result := Some r)
    ();
  Network.run setup.Network.net;
  match !result with
  | Some (Some reassembled) ->
    Alcotest.(check string) "payload reassembled" payload reassembled
  | Some None -> Alcotest.fail "fetch_all reported failure"
  | None -> Alcotest.fail "fetch_all never completed"

let test_segmentation_fetch_all_missing_segment () =
  (* Producer refuses segment 2: the fetch must fail, not hang. *)
  let setup = Network.lan () in
  let base = name "/prod/broken" in
  let handler =
    Segmentation.producer_handler ~base ~producer:"P"
      ~key:setup.Network.producer_key ~payload:(String.make 2000 'z')
      ~segment_size:512 ()
  in
  Node.add_producer setup.Network.producer_host ~prefix:base (fun interest ->
      if Name.equal interest.Interest.name (name "/prod/broken/2") then None
      else handler interest);
  let result = ref None in
  Segmentation.fetch_all setup.Network.user ~base ~timeout_ms:300.
    ~on_complete:(fun r -> result := Some r)
    ();
  Network.run setup.Network.net;
  Alcotest.(check bool) "failure reported" true (!result = Some None)

let test_segmentation_second_fetch_from_cache () =
  let setup = Network.lan () in
  let base = name "/prod/popular" in
  let payload = String.make 2048 'q' in
  Node.add_producer setup.Network.producer_host ~prefix:base
    (Segmentation.producer_handler ~base ~producer:"P"
       ~key:setup.Network.producer_key ~payload ~segment_size:512 ());
  let fetch_once () =
    let t0 = Sim.Engine.now (Network.engine setup.Network.net) in
    let result = ref None in
    Segmentation.fetch_all setup.Network.user ~base
      ~on_complete:(fun r -> result := Some r)
      ();
    Network.run setup.Network.net;
    (Sim.Engine.now (Network.engine setup.Network.net) -. t0, !result)
  in
  let _, first = fetch_once () in
  Alcotest.(check bool) "first fetch ok" true (first = Some (Some payload));
  (* All four segments are now in R's cache. *)
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "segment %d cached at R" i)
        true
        (Content_store.mem
           (Node.content_store setup.Network.router)
           (Segmentation.segment_name ~base i)))
    [ 0; 1; 2; 3 ]

(* --- Wire codec --- *)

let test_wire_interest_roundtrip () =
  let cases =
    [
      Interest.create ~nonce:0L (name "/a");
      Interest.create ~scope:2 ~nonce:123456789L (name "/a/b/c");
      Interest.create ~consumer_private:true ~nonce:(-1L) (name "/x");
      Interest.create ~scope:255 ~consumer_private:true ~nonce:42L Name.root;
    ]
  in
  List.iter
    (fun i ->
      match Wire.decode_interest (Wire.encode_interest i) with
      | Ok i' -> Alcotest.(check bool) "roundtrip" true (Interest.equal i i')
      | Error e -> Alcotest.failf "decode failed: %s" (Format.asprintf "%a" Wire.pp_error e))
    cases

let test_wire_data_roundtrip () =
  let d =
    Data.create ~producer_private:true ~strict_match:true ~content_id:"grp-9"
      ~freshness_ms:123.5 ~producer:"P" ~key:"secret" ~payload:"payload bytes \x00\xff"
      (name "/prod/file/7")
  in
  match Wire.decode_data (Wire.encode_data d) with
  | Ok d' ->
    Alcotest.(check bool) "name" true (Name.equal d.Data.name d'.Data.name);
    Alcotest.(check string) "payload" d.Data.payload d'.Data.payload;
    Alcotest.(check string) "producer" d.Data.producer d'.Data.producer;
    Alcotest.(check bool) "producer_private" d.Data.producer_private d'.Data.producer_private;
    Alcotest.(check bool) "strict" d.Data.strict_match d'.Data.strict_match;
    Alcotest.(check (option string)) "content id" d.Data.content_id d'.Data.content_id;
    Alcotest.(check (option (float 1e-9))) "freshness" d.Data.freshness_ms d'.Data.freshness_ms;
    Alcotest.(check bool) "signature verifies after roundtrip" true
      (Data.verify d' ~key:"secret")
  | Error e -> Alcotest.failf "decode failed: %s" (Format.asprintf "%a" Wire.pp_error e)

let test_wire_packet_dispatch () =
  let i = Interest.create ~nonce:1L (name "/a") in
  let d = Data.create ~producer:"P" ~key:"k" ~payload:"x" (name "/b") in
  (match Wire.decode_packet (Wire.encode_packet (Packet.Interest i)) with
  | Ok (Packet.Interest _) -> ()
  | Ok (Packet.Data _ | Packet.Nack _) -> Alcotest.fail "wrong branch"
  | Error e -> Alcotest.failf "%s" (Format.asprintf "%a" Wire.pp_error e));
  (match Wire.decode_packet (Wire.encode_packet (Packet.Data d)) with
  | Ok (Packet.Data _) -> ()
  | Ok (Packet.Interest _ | Packet.Nack _) -> Alcotest.fail "wrong branch"
  | Error e -> Alcotest.failf "%s" (Format.asprintf "%a" Wire.pp_error e));
  let nk =
    Nack.create ~nonce:7L ~reason:Nack.Pit_full (name "/a/b")
  in
  match Wire.decode_packet (Wire.encode_packet (Packet.Nack nk)) with
  | Ok (Packet.Nack nk') -> Alcotest.(check bool) "nack roundtrips" true (Nack.equal nk nk')
  | Ok (Packet.Interest _ | Packet.Data _) -> Alcotest.fail "wrong branch"
  | Error e -> Alcotest.failf "%s" (Format.asprintf "%a" Wire.pp_error e)

let test_wire_rejects_garbage () =
  (match Wire.decode_packet "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty input must fail");
  (match Wire.decode_packet "\x99\x00\x00\x00\x00" with
  | Error e -> Alcotest.(check bool) "unknown type reported" true
      (String.length e.Wire.reason > 0)
  | Ok _ -> Alcotest.fail "unknown type must fail");
  (* truncate a valid encoding at every length: must never raise *)
  let enc =
    Wire.encode_packet
      (Packet.Data (Data.create ~producer:"P" ~key:"k" ~payload:"x" (name "/a/b")))
  in
  for cut = 0 to String.length enc - 1 do
    match Wire.decode_packet (String.sub enc 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation at %d must fail" cut
  done

let test_wire_trailing_bytes_rejected () =
  let enc = Wire.encode_interest (Interest.create ~nonce:1L (name "/a")) in
  match Wire.decode_interest (enc ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes must fail"

let test_wire_encoded_size () =
  let p = Packet.Interest (Interest.create ~nonce:1L (name "/a/b")) in
  Alcotest.(check int) "size matches encoding" (String.length (Wire.encode_packet p))
    (Wire.encoded_size p)

(* --- Consumer --- *)

let lossy_chain ~loss ~seed =
  let net = Network.create ~seed () in
  let a = Network.add_node net ~caching:false "A" in
  let r = Network.add_node net "R" in
  let p = Network.add_node net "P" in
  let prefix = name "/prod" in
  Node.add_producer p ~prefix (fun i ->
      Some (Data.create ~producer:"P" ~key:"k" ~payload:"d" i.Interest.name));
  let fa, _ = Network.connect net ~loss ~latency:(Sim.Latency.Constant 1.) a r in
  let fr, _ = Network.connect net ~latency:(Sim.Latency.Constant 1.) r p in
  Network.route net a ~prefix ~via:fa;
  Network.route net r ~prefix ~via:fr;
  (net, a)

let test_consumer_fetch_clean_link () =
  let net, a = lossy_chain ~loss:0. ~seed:3 in
  let outcome = ref None in
  Consumer.fetch a ~on_done:(fun o -> outcome := Some o) (name "/prod/x");
  Network.run net;
  match !outcome with
  | Some o ->
    Alcotest.(check bool) "delivered" true (o.Consumer.data <> None);
    Alcotest.(check int) "single attempt" 1 o.Consumer.attempts
  | None -> Alcotest.fail "no completion"

let test_consumer_retransmits_through_loss () =
  let net, a = lossy_chain ~loss:0.4 ~seed:4 in
  let delivered = ref 0 and total_attempts = ref 0 in
  for i = 0 to 14 do
    Consumer.fetch a ~max_retries:20
      ~on_done:(fun o ->
        if o.Consumer.data <> None then incr delivered;
        total_attempts := !total_attempts + o.Consumer.attempts)
      (name (Printf.sprintf "/prod/%d" i));
    Network.run net
  done;
  Alcotest.(check int) "all delivered despite 40% loss" 15 !delivered;
  Alcotest.(check bool) "retransmissions happened" true (!total_attempts > 15)

let test_consumer_gives_up () =
  (* No route: every attempt times out; bounded retries then failure. *)
  let net = Network.create ~seed:5 () in
  let a = Network.add_node net "A" in
  let outcome = ref None in
  Consumer.fetch a ~max_retries:2 ~on_done:(fun o -> outcome := Some o)
    (name "/nowhere");
  Network.run net;
  match !outcome with
  | Some o ->
    Alcotest.(check bool) "failed" true (o.Consumer.data = None);
    Alcotest.(check int) "initial + 2 retries" 3 o.Consumer.attempts
  | None -> Alcotest.fail "no completion"

let test_consumer_fetch_sequence () =
  let net, a = lossy_chain ~loss:0.2 ~seed:6 in
  let results = ref None in
  let names = List.init 8 (fun i -> name (Printf.sprintf "/prod/seq/%d" i)) in
  Consumer.fetch_sequence a ~max_retries:10 ~names
    ~on_done:(fun os -> results := Some os)
    ();
  Network.run net;
  match !results with
  | Some os ->
    Alcotest.(check int) "all outcomes" 8 (List.length os);
    List.iter
      (fun o -> Alcotest.(check bool) "delivered" true (o.Consumer.data <> None))
      os
  | None -> Alcotest.fail "sequence never completed"

let test_rtt_estimator () =
  let e = Consumer.Rtt_estimator.create () in
  Alcotest.(check (option (float 1e-9))) "no samples" None (Consumer.Rtt_estimator.srtt e);
  Alcotest.(check (float 1e-9)) "initial rto" 1000. (Consumer.Rtt_estimator.rto e);
  Consumer.Rtt_estimator.observe e ~rtt_ms:100.;
  Alcotest.(check (option (float 1e-9))) "first sample" (Some 100.)
    (Consumer.Rtt_estimator.srtt e);
  (* RFC 6298 first sample: rto = srtt + 4 * (srtt/2) = 300 *)
  Alcotest.(check (float 1e-9)) "rto after first sample" 300.
    (Consumer.Rtt_estimator.rto e);
  Consumer.Rtt_estimator.backoff e;
  Alcotest.(check (float 1e-9)) "backoff doubles" 600. (Consumer.Rtt_estimator.rto e);
  for _ = 1 to 50 do
    Consumer.Rtt_estimator.observe e ~rtt_ms:100.
  done;
  Alcotest.(check bool) "converges near srtt" true (Consumer.Rtt_estimator.rto e < 150.);
  Alcotest.(check int) "sample count" 51 (Consumer.Rtt_estimator.samples e)

(* --- Topology_spec --- *)

let demo_spec = {spec|
# the paper's Figure 1 in four lines of spec
node U caching=false proc=normal:0.9:0.18:0.3
node Adv caching=false proc=normal:0.9:0.18:0.3
node R cs=10000 policy=lru proc=normal:0.9:0.18:0.3
node P proc=normal:0.9:0.18:0.3
link U R latency=normal:0.25:0.06:0.05
link Adv R latency=normal:0.25:0.06:0.05
link R P latency=normal:1.8:0.35:0.5
route U /prod via R
route Adv /prod via R
route R /prod via P
producer P /prod key=pk payload=256
|spec}

let test_topology_spec_end_to_end () =
  match Topology_spec.parse demo_spec with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok topo ->
    let u = Topology_spec.node topo "U" in
    let adv = Topology_spec.node topo "Adv" in
    let r = Topology_spec.node topo "R" in
    let n = name "/prod/file" in
    let miss = Network.fetch_rtt topo.Topology_spec.network ~from:u n in
    let hit = Network.fetch_rtt topo.Topology_spec.network ~from:adv n in
    (match (miss, hit) with
    | Some m, Some h ->
      Alcotest.(check bool)
        (Printf.sprintf "behaves like the built-in LAN (%.2f vs %.2f)" m h)
        true (h < m)
    | _ -> Alcotest.fail "fetch failed");
    Alcotest.(check bool) "content cached at R" true
      (Content_store.mem (Node.content_store r) n);
    Alcotest.(check int) "node count" 4 (List.length topo.Topology_spec.nodes)

let test_topology_spec_errors () =
  let expect_error spec fragment =
    match Topology_spec.parse spec with
    | Ok _ -> Alcotest.failf "expected failure for %S" spec
    | Error msg ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        m = 0 || go 0
      in
      if not (contains msg fragment) then
        Alcotest.failf "error %S does not mention %S" msg fragment
  in
  expect_error "link A B" "undeclared node";
  expect_error "node A\nnode A" "duplicate node";
  expect_error "node A\nnode B\nroute A /p via B" "no such link";
  expect_error "frobnicate" "unknown directive";
  expect_error "node A cs=lots" "expected an integer";
  expect_error "node A\nnode B\nlink A B latency=warp:9" "unknown latency model"

let test_topology_spec_latency_grammar () =
  (match Topology_spec.parse_latency "const:3.5" with
  | Ok (Sim.Latency.Constant c) -> Alcotest.(check (float 1e-9)) "const" 3.5 c
  | _ -> Alcotest.fail "const parse");
  (match Topology_spec.parse_latency "normal:1:0.2:0.1+const:2" with
  | Ok (Sim.Latency.Sum [ Sim.Latency.Normal _; Sim.Latency.Constant _ ]) -> ()
  | _ -> Alcotest.fail "sum parse");
  match Topology_spec.parse_latency "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus must fail"

let test_topology_spec_comments_and_blanks () =
  match Topology_spec.parse "\n# just comments\n\n   \n" with
  | Ok topo -> Alcotest.(check int) "empty topology" 0 (List.length topo.Topology_spec.nodes)
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* --- interest loops --- *)

let test_interest_loop_suppressed () =
  (* Triangle A-B-C with deliberately circular routes for /loop: the
     nonce-based Duplicate detection in the PIT must stop the cycle. *)
  let net = Network.create ~seed:33 () in
  let a = Network.add_node net "A" in
  let b = Network.add_node net "B" in
  let c = Network.add_node net "C" in
  let fab, _fba = Network.connect net ~latency:(Sim.Latency.Constant 1.) a b in
  let fbc, _fcb = Network.connect net ~latency:(Sim.Latency.Constant 1.) b c in
  let fca, _fac = Network.connect net ~latency:(Sim.Latency.Constant 1.) c a in
  let prefix = name "/loop" in
  Network.route net a ~prefix ~via:fab;
  Network.route net b ~prefix ~via:fbc;
  Network.route net c ~prefix ~via:fca;
  Node.express_interest a (name "/loop/x")
    ~on_data:(fun ~rtt_ms:_ _ -> Alcotest.fail "no data exists")
    ~on_timeout:(fun () -> ());
  (* Run with a generous event bound: without loop suppression this
     would spin forever (max_events would be exhausted). *)
  Sim.Engine.run ~max_events:5_000 (Network.engine net);
  Alcotest.(check bool) "simulation quiesced" true
    (Sim.Engine.events_processed (Network.engine net) < 5_000);
  (* The interest circulated at most once around the triangle. *)
  Alcotest.(check bool) "A forwarded a bounded number of interests" true
    ((Node.counters a).Node.interests_forwarded <= 2)

let qcheck_tests =
  let name_gen =
    QCheck.Gen.(
      map
        (fun comps -> Name.of_components comps)
        (list_size (int_range 1 5)
           (string_size ~gen:(char_range 'a' 'f') (int_range 1 3))))
  in
  let arb_name = QCheck.make ~print:Name.to_string name_gen in
  [
    QCheck.Test.make ~name:"of_string/to_string roundtrip" ~count:300 arb_name
      (fun n -> Name.equal n (Name.of_string (Name.to_string n)));
    QCheck.Test.make ~name:"is_prefix of self" ~count:300 arb_name (fun n ->
        Name.is_prefix ~prefix:n n);
    QCheck.Test.make ~name:"parent is prefix" ~count:300 arb_name (fun n ->
        match Name.parent n with
        | Some p -> Name.is_strict_prefix ~prefix:p n
        | None -> Name.equal n Name.root);
    QCheck.Test.make ~name:"append extends by one" ~count:300 arb_name (fun n ->
        Name.length (Name.append n "x") = Name.length n + 1);
    QCheck.Test.make ~name:"concat length additive" ~count:300
      (QCheck.pair arb_name arb_name)
      (fun (a, b) -> Name.length (Name.concat a b) = Name.length a + Name.length b);
    QCheck.Test.make ~name:"compare consistent with equal" ~count:300
      (QCheck.pair arb_name arb_name)
      (fun (a, b) -> Name.compare a b = 0 = Name.equal a b);
    QCheck.Test.make ~name:"trie find = add" ~count:200
      (QCheck.list (QCheck.pair arb_name QCheck.small_int))
      (fun bindings ->
        let t = Name_trie.create () in
        List.iter (fun (n, v) -> Name_trie.add t n v) bindings;
        (* last binding for each name wins *)
        let expected = Hashtbl.create 16 in
        List.iter (fun (n, v) -> Hashtbl.replace expected (Name.to_string n) v) bindings;
        Hashtbl.fold
          (fun ns v acc -> acc && Name_trie.find t (Name.of_string ns) = Some v)
          expected true);
    QCheck.Test.make ~name:"trie longest_prefix returns a true prefix" ~count:200
      (QCheck.pair (QCheck.list (QCheck.pair arb_name QCheck.small_int)) arb_name)
      (fun (bindings, query) ->
        let t = Name_trie.create () in
        List.iter (fun (n, v) -> Name_trie.add t n v) bindings;
        match Name_trie.longest_prefix t query with
        | None -> true
        | Some (p, _) -> Name.is_prefix ~prefix:p query);
    QCheck.Test.make ~name:"cs never exceeds capacity" ~count:100
      (QCheck.pair (QCheck.int_range 1 20) (QCheck.list_of_size (QCheck.Gen.int_range 0 80) QCheck.small_int))
      (fun (cap, inserts) ->
        let cs = Content_store.create ~capacity:cap () in
        List.iteri
          (fun i id ->
            Content_store.insert cs ~now:(float_of_int i)
              (mk_data (Printf.sprintf "/x/%d" id)) ())
          inserts;
        Content_store.size cs <= cap);
    QCheck.Test.make ~name:"wire roundtrip for random packets" ~count:200
      (QCheck.pair arb_name (QCheck.pair QCheck.string QCheck.bool))
      (fun (n, (payload, priv)) ->
        let d =
          Data.create ~producer_private:priv ~producer:"P" ~key:"k" ~payload n
        in
        match Wire.decode_packet (Wire.encode_packet (Packet.Data d)) with
        | Ok (Packet.Data d') ->
          Name.equal d.Data.name d'.Data.name
          && d.Data.payload = d'.Data.payload
          && Data.verify d' ~key:"k"
        | Ok (Packet.Interest _ | Packet.Nack _) | Error _ -> false);
    QCheck.Test.make ~name:"segmentation split/concat roundtrip" ~count:200
      (QCheck.pair QCheck.string (QCheck.int_range 1 64))
      (fun (payload, segment_size) ->
        String.concat "" (Segmentation.split ~payload ~segment_size) = payload);
    QCheck.Test.make ~name:"segmentation chunk sizes bounded" ~count:200
      (QCheck.pair QCheck.string (QCheck.int_range 1 64))
      (fun (payload, segment_size) ->
        List.for_all
          (fun c -> String.length c <= segment_size)
          (Segmentation.split ~payload ~segment_size));
    QCheck.Test.make ~name:"rtt estimator rto bounded" ~count:200
      (QCheck.list (QCheck.float_range 0.1 10_000.))
      (fun samples ->
        let e = Consumer.Rtt_estimator.create () in
        List.iter (fun rtt_ms -> Consumer.Rtt_estimator.observe e ~rtt_ms) samples;
        let rto = Consumer.Rtt_estimator.rto e in
        rto >= 10. && rto <= 60_000.);
    QCheck.Test.make ~name:"pit satisfy clears pending" ~count:200
      (QCheck.list_of_size (QCheck.Gen.int_range 1 20) (QCheck.pair arb_name QCheck.small_int))
      (fun inserts ->
        let pit = Pit.create () in
        List.iteri
          (fun i (n, face) ->
            ignore (Pit.insert pit ~now:0. ~face ~nonce:(Int64.of_int i) n))
          inserts;
        List.for_all
          (fun (n, _) ->
            ignore (Pit.satisfy pit n);
            not (Pit.pending pit n))
          inserts);
  ]

let () =
  Alcotest.run "ndn"
    [
      ( "name",
        [
          Alcotest.test_case "parsing" `Quick test_name_parsing;
          Alcotest.test_case "to_string" `Quick test_name_to_string;
          Alcotest.test_case "invalid components" `Quick test_name_invalid_component;
          Alcotest.test_case "append/parent/last" `Quick test_name_append_parent_last;
          Alcotest.test_case "prefix semantics" `Quick test_name_prefix_semantics;
          Alcotest.test_case "prefix extraction" `Quick test_name_prefix_extraction;
          Alcotest.test_case "namespace" `Quick test_name_namespace;
          Alcotest.test_case "ordering & hash" `Quick test_name_ordering_and_hash;
          Alcotest.test_case "concat" `Quick test_name_concat;
          Alcotest.test_case "containers" `Quick test_name_containers;
        ] );
      ( "trie",
        [
          Alcotest.test_case "find exact" `Quick test_trie_find_exact;
          Alcotest.test_case "replace" `Quick test_trie_replace;
          Alcotest.test_case "remove prunes" `Quick test_trie_remove_prunes;
          Alcotest.test_case "remove keeps descendants" `Quick
            test_trie_remove_keeps_descendants;
          Alcotest.test_case "longest prefix" `Quick test_trie_longest_prefix;
          Alcotest.test_case "root binding" `Quick test_trie_root_binding;
          Alcotest.test_case "fold prefixes" `Quick test_trie_fold_prefixes;
          Alcotest.test_case "first extension" `Quick test_trie_first_extension;
          Alcotest.test_case "subtree order" `Quick test_trie_fold_subtree_order;
          Alcotest.test_case "to_list & clear" `Quick test_trie_to_list_and_clear;
        ] );
      ( "packets",
        [
          Alcotest.test_case "interest scope" `Quick test_interest_scope;
          Alcotest.test_case "zero scope rejected" `Quick test_interest_rejects_zero_scope;
          Alcotest.test_case "data signature" `Quick test_data_signature;
          Alcotest.test_case "signature covers flags" `Quick
            test_data_signature_covers_flags;
          Alcotest.test_case "freshness" `Quick test_data_freshness;
          Alcotest.test_case "packet accessors" `Quick test_packet_accessors;
        ] );
      ( "content_store",
        [
          Alcotest.test_case "insert/lookup" `Quick test_cs_insert_lookup;
          Alcotest.test_case "lru eviction" `Quick test_cs_lru_eviction;
          Alcotest.test_case "fifo eviction" `Quick test_cs_fifo_eviction;
          Alcotest.test_case "lfu eviction" `Quick test_cs_lfu_eviction;
          Alcotest.test_case "random needs rng" `Quick test_cs_random_eviction_needs_rng;
          Alcotest.test_case "random eviction" `Quick test_cs_random_eviction;
          Alcotest.test_case "unbounded" `Quick test_cs_unbounded;
          Alcotest.test_case "reinsert refreshes" `Quick test_cs_reinsert_refreshes;
          Alcotest.test_case "prefix matching" `Quick test_cs_prefix_matching;
          Alcotest.test_case "strict match blocks prefix probe" `Quick
            test_cs_strict_match_blocks_prefix_probing;
          Alcotest.test_case "freshness expiry" `Quick test_cs_freshness_expiry;
          Alcotest.test_case "peek side-effect free" `Quick test_cs_peek_no_side_effects;
          Alcotest.test_case "meta" `Quick test_cs_meta;
          Alcotest.test_case "remove & clear" `Quick test_cs_remove_and_clear;
          Alcotest.test_case "access counts" `Quick test_cs_access_count_and_recency;
        ] );
      ( "pit",
        [
          Alcotest.test_case "insert & collapse" `Quick test_pit_insert_collapse;
          Alcotest.test_case "satisfy" `Quick test_pit_satisfy;
          Alcotest.test_case "satisfy by extension" `Quick test_pit_satisfy_by_extension;
          Alcotest.test_case "satisfy dedups faces" `Quick test_pit_satisfy_dedups_faces;
          Alcotest.test_case "satisfy timed" `Quick test_pit_satisfy_timed;
          Alcotest.test_case "expire" `Quick test_pit_expire;
        ] );
      ( "fib",
        [
          Alcotest.test_case "longest prefix" `Quick test_fib_longest_prefix;
          Alcotest.test_case "multiple faces" `Quick test_fib_multiple_faces;
          Alcotest.test_case "remove" `Quick test_fib_remove;
          Alcotest.test_case "no route" `Quick test_fib_no_route;
        ] );
      ( "forwarding",
        [
          Alcotest.test_case "end-to-end fetch" `Quick test_end_to_end_fetch;
          Alcotest.test_case "hit faster than miss" `Quick test_cache_hit_faster_than_miss;
          Alcotest.test_case "interest collapsing" `Quick test_interest_collapsing_at_router;
          Alcotest.test_case "scope 2 probing" `Quick test_scope_2_hit_vs_miss;
          Alcotest.test_case "scope ignorable" `Quick test_scope_ignored_when_disabled;
          Alcotest.test_case "timeout & no route" `Quick test_pit_timeout_no_route;
          Alcotest.test_case "loss & retransmission" `Quick
            test_packet_loss_and_retransmission;
          Alcotest.test_case "unknown namespace" `Quick test_producer_only_serves_its_prefix;
          Alcotest.test_case "local host probing" `Quick test_local_host_probing;
          Alcotest.test_case "caching disabled" `Quick test_node_caching_disabled;
          Alcotest.test_case "data directed by PIT" `Quick
            test_data_flows_only_where_requested;
        ] );
      ( "wire",
        [
          Alcotest.test_case "interest roundtrip" `Quick test_wire_interest_roundtrip;
          Alcotest.test_case "data roundtrip" `Quick test_wire_data_roundtrip;
          Alcotest.test_case "packet dispatch" `Quick test_wire_packet_dispatch;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
          Alcotest.test_case "trailing bytes" `Quick test_wire_trailing_bytes_rejected;
          Alcotest.test_case "encoded size" `Quick test_wire_encoded_size;
        ] );
      ( "consumer",
        [
          Alcotest.test_case "clean link" `Quick test_consumer_fetch_clean_link;
          Alcotest.test_case "retransmits through loss" `Quick
            test_consumer_retransmits_through_loss;
          Alcotest.test_case "gives up" `Quick test_consumer_gives_up;
          Alcotest.test_case "fetch sequence" `Quick test_consumer_fetch_sequence;
          Alcotest.test_case "rtt estimator" `Quick test_rtt_estimator;
        ] );
      ( "topology_spec",
        [
          Alcotest.test_case "end to end" `Quick test_topology_spec_end_to_end;
          Alcotest.test_case "errors" `Quick test_topology_spec_errors;
          Alcotest.test_case "latency grammar" `Quick test_topology_spec_latency_grammar;
          Alcotest.test_case "comments and blanks" `Quick
            test_topology_spec_comments_and_blanks;
          Alcotest.test_case "interest loop suppressed" `Quick
            test_interest_loop_suppressed;
        ] );
      ( "segmentation",
        [
          Alcotest.test_case "split" `Quick test_segmentation_split;
          Alcotest.test_case "names" `Quick test_segmentation_names;
          Alcotest.test_case "producer handler" `Quick test_segmentation_handler;
          Alcotest.test_case "fetch_all" `Quick test_segmentation_fetch_all;
          Alcotest.test_case "missing segment" `Quick
            test_segmentation_fetch_all_missing_segment;
          Alcotest.test_case "segments cached" `Quick
            test_segmentation_second_fetch_from_cache;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
