(* The overload-robustness plane: consumer backoff, finite PIT
   admission, bounded link queues, NACKs, the flooding adversary — and
   the invariant that none of it breaks determinism.

   - backoff policy: qcheck monotonicity/cap with jitter off, jitter
     determinism and bounds, parameter validation;
   - Ndn.Pit admission: Drop_new / Evict_oldest / Per_face_fair
     semantics and the FIFO expiry index (stale-slot skip, canonical
     order);
   - graceful degradation end-to-end: retry-budget exhaustion emits
     consumer.give_up, a No_route NACK recovers faster than the RTO
     path, a saturated link queue answers with Congested NACKs, and an
     interest flood against a finite PIT bounces off as Pit_full;
   - identity: one flooded, faulted, queue-limited network renders
     byte-identical traces for --shards 1/2/4 (watchdog armed or not)
     and for --jobs 1 vs 4 trial fan-out. *)

let render = Sim.Trace.render Sim.Trace.Jsonl

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let name = Ndn.Name.of_string

(* --- backoff policy --- *)

let qcheck_backoff_monotone_capped =
  let gen =
    QCheck.Gen.(
      let* base = float_range 0.5 50. in
      let* factor = float_range 1. 4. in
      let+ cap = float_range 60. 500. in
      (base, factor, cap))
  in
  let print (b, f, c) = Printf.sprintf "(base=%g, factor=%g, cap=%g)" b f c in
  QCheck.Test.make ~count:50
    ~name:"jitter-free backoff is monotone and capped"
    (QCheck.make ~print gen)
    (fun (base_ms, factor, max_delay_ms) ->
      let b =
        Ndn.Consumer.backoff ~base_ms ~factor ~jitter:0. ~max_delay_ms
          (Sim.Rng.create 1)
      in
      let delays =
        List.init 12 (fun i -> Ndn.Consumer.backoff_delay b ~attempt:(i + 1))
      in
      (match delays with
      | first :: _ when Float.abs (first -. base_ms) > 1e-9 ->
        QCheck.Test.fail_reportf "first delay %g <> base %g" first base_ms
      | _ -> ());
      List.iteri
        (fun i d ->
          if d > max_delay_ms +. 1e-9 then
            QCheck.Test.fail_reportf "delay %d = %g over cap %g" i d
              max_delay_ms;
          if i > 0 && d +. 1e-9 < List.nth delays (i - 1) then
            QCheck.Test.fail_reportf "delay %d = %g shrank" i d)
        delays;
      true)

let qcheck_backoff_jitter =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 1 10_000 in
      let+ jitter = float_range 0.01 0.9 in
      (seed, jitter))
  in
  let print (s, j) = Printf.sprintf "(seed=%d, jitter=%g)" s j in
  QCheck.Test.make ~count:50
    ~name:"jittered backoff is seed-deterministic and bounded"
    (QCheck.make ~print gen)
    (fun (seed, jitter) ->
      let delays s =
        let b =
          Ndn.Consumer.backoff ~base_ms:10. ~factor:2. ~jitter
            ~max_delay_ms:1000. (Sim.Rng.create s)
        in
        List.init 10 (fun i -> Ndn.Consumer.backoff_delay b ~attempt:(i + 1))
      in
      if delays seed <> delays seed then
        QCheck.Test.fail_report "same seed, different delays";
      List.iteri
        (fun i d ->
          let ideal = Float.min 1000. (10. *. (2. ** float_of_int i)) in
          let lo = ideal *. (1. -. jitter) -. 1e-9
          and hi = ideal *. (1. +. jitter) +. 1e-9 in
          if d < lo || d > hi then
            QCheck.Test.fail_reportf "attempt %d: %g outside [%g, %g]" (i + 1)
              d lo hi)
        (delays seed);
      true)

let test_backoff_validation () =
  let rng () = Sim.Rng.create 1 in
  let expect_invalid label f =
    match f () with
    | (_ : Ndn.Consumer.backoff) ->
      Alcotest.failf "%s: Invalid_argument expected" label
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "base <= 0" (fun () ->
      Ndn.Consumer.backoff ~base_ms:0. (rng ()));
  expect_invalid "factor < 1" (fun () ->
      Ndn.Consumer.backoff ~factor:0.5 (rng ()));
  expect_invalid "jitter >= 1" (fun () ->
      Ndn.Consumer.backoff ~jitter:1. (rng ()));
  expect_invalid "cap below base" (fun () ->
      Ndn.Consumer.backoff ~base_ms:100. ~max_delay_ms:50. (rng ()));
  ignore (Ndn.Consumer.backoff (rng ()))

(* --- Pit admission policies and the expiry index --- *)

let ins pit ~now ~face n =
  Ndn.Pit.insert pit ~now ~face ~nonce:(Int64.of_int (Hashtbl.hash (now, face, n)))
    (name n)

let result =
  Alcotest.testable
    (fun fmt r ->
      Format.pp_print_string fmt
        (match r with
        | Ndn.Pit.Forward -> "Forward"
        | Ndn.Pit.Collapsed -> "Collapsed"
        | Ndn.Pit.Duplicate -> "Duplicate"
        | Ndn.Pit.Rejected -> "Rejected"))
    ( = )

let test_pit_drop_new () =
  let pit = Ndn.Pit.create ~capacity:2 ~admission:Ndn.Pit.Drop_new () in
  Alcotest.check result "first admitted" Ndn.Pit.Forward
    (ins pit ~now:0. ~face:1 "/a");
  Alcotest.check result "second admitted" Ndn.Pit.Forward
    (ins pit ~now:1. ~face:1 "/b");
  Alcotest.check result "newcomer over capacity rejected" Ndn.Pit.Rejected
    (ins pit ~now:2. ~face:1 "/c");
  (* Established entries are untouched by the full table: collapsing
     and retransmission still work. *)
  Alcotest.check result "collapse on a full table" Ndn.Pit.Collapsed
    (ins pit ~now:3. ~face:2 "/a");
  Alcotest.(check int) "rejection counted" 1 (Ndn.Pit.rejections pit);
  Alcotest.(check int) "size holds at capacity" 2 (Ndn.Pit.size pit)

let test_pit_evict_oldest () =
  let evicted = ref [] in
  let pit =
    Ndn.Pit.create ~capacity:2 ~admission:Ndn.Pit.Evict_oldest
      ~on_evict:(fun n -> evicted := Ndn.Name.to_string n :: !evicted)
      ()
  in
  ignore (ins pit ~now:0. ~face:1 "/a");
  ignore (ins pit ~now:1. ~face:1 "/b");
  Alcotest.check result "newcomer displaces the oldest" Ndn.Pit.Forward
    (ins pit ~now:2. ~face:1 "/c");
  Alcotest.(check (list string)) "the oldest was the victim" [ "/a" ]
    !evicted;
  Alcotest.(check bool) "victim gone" false (Ndn.Pit.pending pit (name "/a"));
  Alcotest.(check bool) "newcomer live" true (Ndn.Pit.pending pit (name "/c"));
  Alcotest.(check int) "eviction counted" 1 (Ndn.Pit.evictions pit)

let test_pit_per_face_fair () =
  let pit = Ndn.Pit.create ~capacity:4 ~admission:Ndn.Pit.Per_face_fair () in
  (* The flooder (face 1) claims three slots while alone... *)
  List.iter
    (fun n -> Alcotest.check result n Ndn.Pit.Forward (ins pit ~now:0. ~face:1 n))
    [ "/f/1"; "/f/2"; "/f/3" ];
  (* ...an honest face still gets in... *)
  Alcotest.check result "honest face admitted" Ndn.Pit.Forward
    (ins pit ~now:1. ~face:2 "/h/1");
  (* ...and once the honest entry drains, the flooder — over its
     post-split quota of capacity/2 — stays rejected while the honest
     face keeps its share. *)
  Alcotest.(check (list int)) "honest entry drains" [ 2 ]
    (Ndn.Pit.satisfy pit (name "/h/1"));
  Alcotest.check result "flooder over quota rejected" Ndn.Pit.Rejected
    (ins pit ~now:2. ~face:1 "/f/4");
  Alcotest.check result "honest face keeps its share" Ndn.Pit.Forward
    (ins pit ~now:2. ~face:2 "/h/2");
  Alcotest.(check int) "one rejection" 1 (Ndn.Pit.rejections pit)

let test_pit_expiry_index () =
  let pit = Ndn.Pit.create ~lifetime_ms:100. () in
  ignore (ins pit ~now:0. ~face:1 "/b");
  ignore (ins pit ~now:0. ~face:1 "/a");
  ignore (ins pit ~now:10. ~face:1 "/mid");
  ignore (ins pit ~now:20. ~face:1 "/late");
  (* Early removal leaves a stale index slot behind: expire must skip
     it, not resurrect the entry. *)
  Alcotest.(check (list int)) "satisfied early" [ 1 ]
    (Ndn.Pit.satisfy pit (name "/mid"));
  Alcotest.(check (list string))
    "only the old cohort expires, in canonical order" [ "/a"; "/b" ]
    (List.map Ndn.Name.to_string (Ndn.Pit.expire pit ~now:105.))
    ;
  Alcotest.(check int) "survivor remains" 1 (Ndn.Pit.size pit);
  Alcotest.(check (list string)) "second sweep takes the rest" [ "/late" ]
    (List.map Ndn.Name.to_string (Ndn.Pit.expire pit ~now:200.));
  Alcotest.(check (list string)) "idempotent once empty" []
    (List.map Ndn.Name.to_string (Ndn.Pit.expire pit ~now:300.))

(* --- graceful degradation, end-to-end --- *)

let prefix = name "/s"

let add_producer p =
  Ndn.Node.add_producer p ~prefix (fun i ->
      Some
        (Ndn.Data.create ~producer:"P" ~key:"k" ~payload:"v"
           i.Ndn.Interest.name))

let make_pair ?(loss = 0.) ?tracer () =
  let net = Ndn.Network.create ~seed:3 ?tracer () in
  let c = Ndn.Network.add_node net ~caching:false "C" in
  let p = Ndn.Network.add_node net "P" in
  let cf, _ = Ndn.Network.connect net ~loss ~latency:(Sim.Latency.Constant 1.) c p in
  Ndn.Network.route net c ~prefix ~via:cf;
  add_producer p;
  (net, c)

let fetch_sync ?max_retries ?estimator ?backoff net c n =
  let result = ref None in
  Ndn.Consumer.fetch c ?max_retries ?estimator ?backoff
    ~on_done:(fun o -> result := Some o)
    n;
  Ndn.Network.run net;
  match !result with
  | Some o -> o
  | None -> Alcotest.fail "on_done never fired"

(* Total loss with the backoff policy armed: the budget burns down
   through jittered waits and the give-up is traced. *)
let test_budget_exhaustion_traced () =
  let tracer = Sim.Trace.create () in
  let net, c = make_pair ~loss:1.0 ~tracer () in
  let estimator = Ndn.Consumer.Rtt_estimator.create ~initial_rto_ms:50. () in
  let backoff =
    Ndn.Consumer.backoff ~base_ms:10. ~factor:2. ~jitter:0. (Sim.Rng.create 1)
  in
  let o = fetch_sync ~max_retries:2 ~estimator ~backoff net c (name "/s/x") in
  Alcotest.(check bool) "no data" true (o.Ndn.Consumer.data = None);
  Alcotest.(check int) "budget spent exactly" 3 o.Ndn.Consumer.attempts;
  Alcotest.(check int) "no NACKs on a silent path" 0 o.Ndn.Consumer.nacks;
  (* Timeouts at the backed-off RTOs (50, 100, 200) interleaved with
     the policy's waits (10, 20): 50 + 10 + 100 + 20 + 200. *)
  Alcotest.(check (float 1e-9)) "elapsed = RTOs plus backoff waits" 380.
    o.Ndn.Consumer.elapsed_ms;
  let tr = render tracer in
  Alcotest.(check bool) "give-up is traced" true
    (contains_sub ~sub:"consumer.give_up" tr);
  Alcotest.(check bool) "trace carries the attempt count" true
    (contains_sub ~sub:"attempts" tr)

(* C -- R with no route beyond R: with NACKs on, the No_route refusal
   arrives one RTT after each interest and the fetch fails in tens of
   virtual ms; with NACKs off the same fetch must wait out every RTO. *)
let no_route_fetch ~nacks =
  let tracer = Sim.Trace.create () in
  let net = Ndn.Network.create ~seed:3 ~tracer () in
  let c = Ndn.Network.add_node net ~caching:false "C" in
  let r = Ndn.Network.add_node net "R" in
  let cf, _ =
    Ndn.Network.connect net ~latency:(Sim.Latency.Constant 5.) c r
  in
  Ndn.Network.route net c ~prefix:(name "/nr") ~via:cf;
  Ndn.Node.set_nacks_enabled c nacks;
  Ndn.Node.set_nacks_enabled r nacks;
  let estimator = Ndn.Consumer.Rtt_estimator.create ~initial_rto_ms:500. () in
  let backoff =
    Ndn.Consumer.backoff ~base_ms:10. ~factor:2. ~jitter:0. (Sim.Rng.create 1)
  in
  let o = fetch_sync ~max_retries:1 ~estimator ~backoff net c (name "/nr/x") in
  (o, render tracer)

let test_nack_beats_timeout () =
  let fast, fast_trace = no_route_fetch ~nacks:true in
  let slow, _ = no_route_fetch ~nacks:false in
  Alcotest.(check bool) "both give up" true
    (fast.Ndn.Consumer.data = None && slow.Ndn.Consumer.data = None);
  Alcotest.(check int) "every attempt answered by a NACK" 2
    fast.Ndn.Consumer.nacks;
  Alcotest.(check int) "silent path saw no NACK" 0 slow.Ndn.Consumer.nacks;
  Alcotest.(check bool) "NACK recovery well under one RTO" true
    (fast.Ndn.Consumer.elapsed_ms < 100.);
  Alcotest.(check bool) "timeout path waits out the RTOs" true
    (slow.Ndn.Consumer.elapsed_ms >= 500.);
  Alcotest.(check bool) "refusal is traced" true
    (contains_sub ~sub:"nack.no_route" fast_trace)

(* A depth-1 transmission queue on C->P: of three simultaneous
   interests one serializes, the other two are dropped at the tail and
   answered with Congested NACKs. *)
let test_queue_congestion_nacks () =
  let tracer = Sim.Trace.create () in
  let net, c = make_pair ~tracer () in
  Ndn.Node.set_nacks_enabled c true;
  (match
     Ndn.Network.set_link_queue net ~a:"C" ~b:"P" ~dir:Sim.Fault.Ab
       ~rate_mbps:0.008 ~depth:1 ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let outcomes = Array.make 3 None in
  Array.iteri
    (fun i _ ->
      let backoff =
        Ndn.Consumer.backoff ~base_ms:10. ~jitter:0. (Sim.Rng.create (i + 1))
      in
      Ndn.Consumer.fetch c ~max_retries:0 ~backoff
        ~on_done:(fun o -> outcomes.(i) <- Some o)
        (name (Printf.sprintf "/s/q%d" i)))
    outcomes;
  Ndn.Network.run net;
  let get i =
    match outcomes.(i) with
    | Some o -> o
    | None -> Alcotest.failf "fetch %d never completed" i
  in
  Alcotest.(check bool) "head of line is served" true
    ((get 0).Ndn.Consumer.data <> None);
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "fetch %d dropped" i)
        true
        ((get i).Ndn.Consumer.data = None);
      Alcotest.(check int)
        (Printf.sprintf "fetch %d failed by NACK" i)
        1 (get i).Ndn.Consumer.nacks)
    [ 1; 2 ];
  let tr = render tracer in
  Alcotest.(check bool) "drop is traced" true
    (contains_sub ~sub:"queue.drop" tr);
  Alcotest.(check bool) "congestion NACK is traced" true
    (contains_sub ~sub:"nack.congested" tr)

(* F -- R -- D: unsatisfiable flood through a capacity-4 PIT at R.  D
   (NACKs off) swallows what R forwards, so four entries pin R's table
   for their full lifetime and everything after bounces as Pit_full. *)
let test_flood_bounces_off_finite_pit () =
  let tracer = Sim.Trace.create () in
  let net = Ndn.Network.create ~seed:3 ~tracer () in
  let f = Ndn.Network.add_node net ~caching:false "F" in
  let r = Ndn.Network.add_node net "R" in
  let d = Ndn.Network.add_node net "D" in
  let boom = name "/boom" in
  let ff, _ = Ndn.Network.connect net ~latency:(Sim.Latency.Constant 1.) f r in
  let rf, _ = Ndn.Network.connect net ~latency:(Sim.Latency.Constant 1.) r d in
  Ndn.Network.route net f ~prefix:boom ~via:ff;
  Ndn.Network.route net r ~prefix:boom ~via:rf;
  Ndn.Node.set_nacks_enabled f true;
  Ndn.Node.set_nacks_enabled r true;
  Ndn.Node.set_pit_limits r ~capacity:4 ~admission:Ndn.Pit.Drop_new ();
  let flood =
    Workload.Flood.attach
      { Workload.Flood.default with timeout_ms = Some 500. }
      ~node:f ~prefix:boom ~rng:(Sim.Rng.create 9) ~until:60. ()
  in
  Ndn.Network.run net;
  let issued = Workload.Flood.interests_issued flood in
  let nacked = Workload.Flood.nacks_received flood in
  let timed_out = Workload.Flood.timeouts flood in
  Alcotest.(check bool) "flood ran at roughly the configured rate" true
    (issued >= 30);
  Alcotest.(check int) "every interest is accounted for" issued
    (nacked + timed_out);
  Alcotest.(check int) "exactly the pinned entries time out" 4 timed_out;
  Alcotest.(check bool) "the rest bounce as NACKs" true (nacked >= issued - 4);
  let tr = render tracer in
  Alcotest.(check bool) "admission drop is traced" true
    (contains_sub ~sub:"pit.drop" tr);
  Alcotest.(check bool) "refusal reason is traced" true
    (contains_sub ~sub:"nack.pit_full" tr)

(* --- identity: the whole robust plane is deterministic --- *)

let agg_config =
  {
    Workload.Aggregate.default with
    users = 50_000;
    req_per_user_per_hour = 60.;
    catalog = 20;
    zipf_s = 0.9;
    diurnal_amplitude = 0.4;
    diurnal_period_ms = 600.;
    max_retries = 1;
  }

let fault_schedule =
  let open Sim.Fault in
  sort
    [
      { at = 30.;
        kind =
          Link_degrade
            { a = "R1"; b = "R2"; dir = Both; loss = 0.05;
              latency_factor = 0.5; until = 120. } };
      { at = 40.; kind = Link_down { a = "U"; b = "R1"; dir = Both } };
      { at = 70.; kind = Link_up { a = "U"; b = "R1"; dir = Both } };
      { at = 90.; kind = Node_crash { node = "R2"; preserve_cs = false } };
      { at = 110.; kind = Node_restart { node = "R2" } };
    ]

(* Flood at F and aggregate consumers at U, converging on the
   queue-limited R1--R2 link, finite PITs at both routers, NACKs on
   everywhere, a fault schedule on top — the kitchen sink.  Returns
   the rendered trace and the processed-event total. *)
let overload_run ?shards ?(watchdog = false) ~seed () =
  let tracer = Sim.Trace.create () in
  let net =
    match shards with
    | None -> Ndn.Network.create ~seed ~tracer ()
    | Some k -> Ndn.Network.create ~seed ~tracer ~shards:k ()
  in
  if watchdog then
    Ndn.Network.set_stall_watchdog net ~stall_ms:300_000.
      ~clock_ms:(fun () -> 0.)
      ();
  let f = Ndn.Network.add_node net ~caching:false "F" in
  let u = Ndn.Network.add_node net ~caching:false "U" in
  let r1 = Ndn.Network.add_node net ~cs_capacity:16 "R1" in
  let r2 = Ndn.Network.add_node net ~cs_capacity:16 "R2" in
  let p = Ndn.Network.add_node net "P" in
  let lat ms = Sim.Latency.Constant ms in
  let ff, _ = Ndn.Network.connect net ~latency:(lat 2.) f r1 in
  let uf, _ = Ndn.Network.connect net ~latency:(lat 2.) u r1 in
  let r1f, _ = Ndn.Network.connect net ~latency:(lat 3.) r1 r2 in
  let r2f, _ = Ndn.Network.connect net ~latency:(lat 4.) r2 p in
  let boom = name "/boom" in
  Ndn.Network.route net f ~prefix:boom ~via:ff;
  Ndn.Network.route net r1 ~prefix:boom ~via:r1f;
  Ndn.Network.route net u ~prefix ~via:uf;
  Ndn.Network.route net r1 ~prefix ~via:r1f;
  Ndn.Network.route net r2 ~prefix ~via:r2f;
  add_producer p;
  List.iter (fun n -> Ndn.Node.set_nacks_enabled n true) [ f; u; r1; r2 ];
  Ndn.Node.set_pit_limits r1 ~capacity:6 ~admission:Ndn.Pit.Evict_oldest ();
  Ndn.Node.set_pit_limits r2 ~capacity:8 ~admission:Ndn.Pit.Drop_new ();
  (match
     Ndn.Network.set_link_queue net ~a:"R1" ~b:"R2" ~rate_mbps:0.5 ~depth:4
       ~policy:Ndn.Network.Early_drop ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Ndn.Network.install_faults net fault_schedule with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore
    (Workload.Flood.attach
       { Workload.Flood.default with
         rate_per_ms = 0.5; timeout_ms = Some 400. }
       ~node:f ~prefix:boom ~rng:(Sim.Rng.create 33) ~until:150. ());
  ignore
    (Workload.Aggregate.attach agg_config ~node:u ~prefix
       ~rng:(Sim.Rng.create 77) ~until:150. ());
  Ndn.Consumer.fetch_sequence u ~max_retries:2
    ~backoff:(Ndn.Consumer.backoff ~jitter:0.2 (Sim.Rng.create 5))
    ~names:[ name "/s/a"; name "/s/b"; name "/s/c" ]
    ~on_done:(fun _ -> ())
    ();
  Ndn.Network.run net;
  (render tracer, Ndn.Network.events_processed net)

let test_shard_identity_under_overload () =
  let t1, e1 = overload_run ~shards:1 ~seed:7 () in
  Alcotest.(check bool) "overloaded run is non-trivial" true
    (String.length t1 > 1000);
  Alcotest.(check bool) "the robust plane is exercised" true
    (contains_sub ~sub:"queue.drop" t1 || contains_sub ~sub:"nack." t1);
  List.iter
    (fun k ->
      let tk, ek = overload_run ~shards:k ~seed:7 () in
      Alcotest.(check string)
        (Printf.sprintf "shards %d vs 1: trace" k)
        t1 tk;
      Alcotest.(check int)
        (Printf.sprintf "shards %d vs 1: events" k)
        e1 ek)
    [ 2; 4 ];
  (* The armed watchdog only watches: byte-identical output. *)
  let tw, ew = overload_run ~shards:4 ~watchdog:true ~seed:7 () in
  Alcotest.(check string) "watchdog does not perturb the trace" t1 tw;
  Alcotest.(check int) "watchdog does not perturb event totals" e1 ew

let test_jobs_identity_under_overload () =
  let trial i =
    let trace, events = overload_run ~seed:(60 + i) () in
    Printf.sprintf "%s#%d" trace events
  in
  let jobs = min 4 (Sim.Parallel.default_jobs ()) in
  let serial = Sim.Parallel.map ~jobs:1 3 trial in
  let parallel = Sim.Parallel.map ~jobs 3 trial in
  Alcotest.(check int) "same trial count" (Array.length serial)
    (Array.length parallel);
  Array.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "trial %d non-trivial" i)
        true
        (String.length s > 1000);
      Alcotest.(check string)
        (Printf.sprintf "trial %d: jobs %d vs 1" i jobs)
        s parallel.(i))
    serial

(* --- stall watchdog plumbing --- *)

let test_watchdog_validation () =
  let t = Sim.Shard.create ~shards:2 () in
  List.iter
    (fun bad ->
      match Sim.Shard.set_watchdog t ~stall_ms:bad ~clock_ms:(fun () -> 0.) () with
      | () -> Alcotest.failf "stall_ms %g must be rejected" bad
      | exception Invalid_argument _ -> ())
    [ 0.; -5.; Float.infinity; Float.nan ];
  Sim.Shard.set_watchdog t ~clock_ms:(fun () -> 0.) ();
  Sim.Shard.clear_watchdog t;
  let net = Ndn.Network.create ~seed:1 () in
  (* Legacy mode: arming is a documented no-op. *)
  Ndn.Network.set_stall_watchdog net ~clock_ms:(fun () -> 0.) ()

let () =
  Alcotest.run "overload"
    [
      ( "backoff",
        [
          QCheck_alcotest.to_alcotest qcheck_backoff_monotone_capped;
          QCheck_alcotest.to_alcotest qcheck_backoff_jitter;
          Alcotest.test_case "parameter validation" `Quick
            test_backoff_validation;
        ] );
      ( "pit admission",
        [
          Alcotest.test_case "drop-new" `Quick test_pit_drop_new;
          Alcotest.test_case "evict-oldest" `Quick test_pit_evict_oldest;
          Alcotest.test_case "per-face-fair" `Quick test_pit_per_face_fair;
          Alcotest.test_case "expiry index" `Quick test_pit_expiry_index;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "budget exhaustion traced" `Quick
            test_budget_exhaustion_traced;
          Alcotest.test_case "NACK beats timeout" `Quick
            test_nack_beats_timeout;
          Alcotest.test_case "queue congestion NACKs" `Quick
            test_queue_congestion_nacks;
          Alcotest.test_case "flood bounces off finite PIT" `Quick
            test_flood_bounces_off_finite_pit;
        ] );
      ( "identity",
        [
          Alcotest.test_case "shards 1/2/4 under overload" `Slow
            test_shard_identity_under_overload;
          Alcotest.test_case "jobs 1 vs 4 under overload" `Slow
            test_jobs_identity_under_overload;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "arming and validation" `Quick
            test_watchdog_validation;
        ] );
    ]
