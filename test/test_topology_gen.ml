(* Tests for the topology generator layer (Ndn.Topology_spec.Gen and
   the [generate] directive) and the aggregate-consumer determinism
   acceptance criteria:

   - qcheck structural invariants: every generated graph (all three
     models, arbitrary seeds and sizes) is connected, self-loop-free
     and duplicate-edge-free with canonically ordered edges; WS
     preserves node count and mean degree; trees give every non-root
     exactly one parent;
   - heavy-tailed BA degree distributions (max degree grows with n);
   - determinism: equal decls yield structurally equal graphs and
     byte-identical canonical prints; generate directives round-trip
     through parse/print as a fixpoint;
   - build: a generated tree serves fetches end-to-end, sibling probes
     hit shared ancestor caches (the paper's attack, at generated
     scale), node/link counts match the graph;
   - aggregate-consumer runs are byte-identical for --jobs 1 vs 4 and
     under an empty Sim.Fault schedule. *)

module TS = Ndn.Topology_spec

let lat ms = Sim.Latency.Constant ms

let tree_decl ?(name = "t") ?(seed = 42) ~arity ~ntiers () =
  {
    TS.gen_name = name;
    gen_model =
      TS.Gen_tree
        {
          arity;
          tiers =
            List.init ntiers (fun t ->
                { TS.tier_cs = 64 * (ntiers - t); tier_latency = lat 1. });
        };
    gen_seed = seed;
    gen_policy = Ndn.Eviction.Lru;
    gen_payload = 64;
  }

let ws_decl ?(name = "w") ?(seed = 42) ~n ~k ~beta () =
  {
    TS.gen_name = name;
    gen_model = TS.Gen_ws { ws_n = n; ws_k = k; ws_beta = beta; ws_cs = 64; ws_latency = lat 1. };
    gen_seed = seed;
    gen_policy = Ndn.Eviction.Lru;
    gen_payload = 64;
  }

let ba_decl ?(name = "b") ?(seed = 42) ~n ~m () =
  {
    TS.gen_name = name;
    gen_model = TS.Gen_ba { ba_n = n; ba_m = m; ba_cs = 64; ba_latency = lat 1. };
    gen_seed = seed;
    gen_policy = Ndn.Eviction.Lru;
    gen_payload = 64;
  }

(* Independent connectivity check (does not trust Gen's own BFS). *)
let connected g =
  let n = g.TS.Gen.node_count in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    g.TS.Gen.edges;
  let seen = Array.make n false in
  let rec visit stack =
    match stack with
    | [] -> ()
    | v :: rest ->
      let push =
        List.filter
          (fun u ->
            if seen.(u) then false
            else begin
              seen.(u) <- true;
              true
            end)
          adj.(v)
      in
      visit (push @ rest)
  in
  seen.(0) <- true;
  visit [ 0 ];
  Array.for_all (fun b -> b) seen

let degrees g =
  let deg = Array.make g.TS.Gen.node_count 0 in
  List.iter
    (fun (a, b) ->
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1)
    g.TS.Gen.edges;
  deg

let well_formed_edges g =
  let sorted =
    List.sort_uniq
      (fun (a1, b1) (a2, b2) ->
        match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)
      g.TS.Gen.edges
  in
  List.for_all
    (fun (a, b) -> a < b && a >= 0 && b < g.TS.Gen.node_count)
    g.TS.Gen.edges
  && List.length sorted = List.length g.TS.Gen.edges
  && sorted = g.TS.Gen.edges

(* --- qcheck structural invariants ----------------------------------- *)

let seed_gen = QCheck.Gen.int_range 0 10_000

let tree_arb =
  QCheck.make
    ~print:(fun (arity, ntiers, seed) ->
      Printf.sprintf "tree arity=%d tiers=%d seed=%d" arity ntiers seed)
    QCheck.Gen.(triple (int_range 2 5) (int_range 2 4) seed_gen)

let ws_arb =
  QCheck.make
    ~print:(fun (n, half_k, beta, seed) ->
      Printf.sprintf "ws n=%d k=%d beta=%g seed=%d" n (2 * half_k) beta seed)
    QCheck.Gen.(
      quad (int_range 8 80) (int_range 1 3) (float_range 0. 1.) seed_gen)

let ba_arb =
  QCheck.make
    ~print:(fun (n, m, seed) -> Printf.sprintf "ba n=%d m=%d seed=%d" n m seed)
    QCheck.Gen.(triple (int_range 6 120) (int_range 1 3) seed_gen)

let graph_invariants g =
  well_formed_edges g && connected g
  && Array.length g.TS.Gen.tier = g.TS.Gen.node_count
  && g.TS.Gen.root >= 0
  && g.TS.Gen.root < g.TS.Gen.node_count
  && List.for_all
       (fun i -> i >= 0 && i < g.TS.Gen.node_count)
       g.TS.Gen.edge_routers

let qcheck_tests =
  [
    QCheck.Test.make ~name:"tree graphs are well-formed trees" ~count:100
      tree_arb (fun (arity, ntiers, seed) ->
        let d = tree_decl ~seed ~arity ~ntiers () in
        let g = TS.Gen.graph_of d in
        let parent = TS.Gen.parents g in
        graph_invariants g
        && List.length g.TS.Gen.edges = g.TS.Gen.node_count - 1
        && g.TS.Gen.root = 0
        && g.TS.Gen.diameter = 2 * (ntiers - 1)
        (* exactly one parent per non-root, one tier up *)
        && Array.for_all (fun p -> p >= -1) parent
        &&
        let ok = ref true in
        Array.iteri
          (fun i p ->
            if i = g.TS.Gen.root then (if p <> -1 then ok := false)
            else if p < 0 || g.TS.Gen.tier.(p) <> g.TS.Gen.tier.(i) - 1 then
              ok := false)
          parent;
        !ok);
    QCheck.Test.make ~name:"ws graphs connected, mean degree preserved"
      ~count:100 ws_arb (fun (n, half_k, beta, seed) ->
        let k = 2 * half_k in
        QCheck.assume (k < n);
        let d = ws_decl ~seed ~n ~k ~beta () in
        let g = TS.Gen.graph_of d in
        graph_invariants g
        && g.TS.Gen.node_count = n
        (* rewiring moves chords, never changes the edge count *)
        && List.length g.TS.Gen.edges = n * k / 2);
    QCheck.Test.make ~name:"ba graphs connected, correct edge count"
      ~count:100 ba_arb (fun (n, m, seed) ->
        QCheck.assume (n > m + 1);
        let d = ba_decl ~seed ~n ~m () in
        let g = TS.Gen.graph_of d in
        let m0 = m + 1 in
        graph_invariants g
        && g.TS.Gen.node_count = n
        && List.length g.TS.Gen.edges = (m0 * (m0 - 1) / 2) + ((n - m0) * m));
    QCheck.Test.make ~name:"graphs are deterministic in the decl" ~count:50
      ba_arb (fun (n, m, seed) ->
        QCheck.assume (n > m + 1);
        let d = ba_decl ~seed ~n ~m () in
        TS.Gen.graph_of d = TS.Gen.graph_of d);
    QCheck.Test.make ~name:"generate directives round-trip parse/print"
      ~count:100
      (QCheck.make
         ~print:(fun dir -> TS.print [ (1, dir) ])
         QCheck.Gen.(
           map
             (fun (which, seed, a, b, beta) ->
               match which with
               | 0 ->
                 TS.Generate_decl
                   (tree_decl ~seed ~arity:(2 + (a mod 4))
                      ~ntiers:(2 + (b mod 3)) ())
               | 1 ->
                 let n = 8 + a and k = 2 * (1 + (b mod 3)) in
                 let k = if k >= n then 2 else k in
                 TS.Generate_decl (ws_decl ~seed ~n ~k ~beta ())
               | _ ->
                 TS.Generate_decl
                   (ba_decl ~seed ~n:(6 + a) ~m:(1 + (b mod 3)) ()))
             (tup5 (int_range 0 2) seed_gen (int_range 0 60) (int_range 0 8)
                (float_range 0. 1.))))
      (fun dir ->
        let spec = [ (1, dir) ] in
        match TS.parse_spec (TS.print spec) with
        | Ok spec' -> TS.directives spec' = TS.directives spec
        | Error _ -> false);
  ]

(* --- heavy-tailed BA degrees (fixed seeds: deterministic) ------------ *)

let test_ba_heavy_tail () =
  List.iter
    (fun seed ->
      let max_deg n =
        let g = TS.Gen.graph_of (ba_decl ~seed ~n ~m:2 ()) in
        Array.fold_left max 0 (degrees g)
      in
      let small = max_deg 100 and big = max_deg 1600 in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: hub degree far above the mean 4" seed)
        true (big >= 20);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: max degree grows with n (%d -> %d)" seed
           small big)
        true
        (big > small))
    [ 1; 2; 3; 4; 5 ]

(* --- canonical-print determinism ------------------------------------ *)

let spec_text =
  "generate tree name=isp arity=3 cs=128,64,32 \
   latency=const:4,const:2,const:1 policy=lru payload=64 seed=9\n"

let test_same_seed_byte_identical_print () =
  let print_of text =
    match TS.parse_spec text with
    | Ok spec -> TS.print spec
    | Error e -> Alcotest.fail e
  in
  let p1 = print_of spec_text and p2 = print_of spec_text in
  Alcotest.(check string) "same text, byte-identical canonical print" p1 p2;
  (* The canonical print is itself a fixpoint. *)
  Alcotest.(check string) "print is a fixpoint" p1 (print_of p1)

let test_ws_seed_changes_graph () =
  (* Sanity that the seed actually feeds the generator: two seeds give
     different rewirings (fixed inputs, deterministic outcome). *)
  let edges seed =
    (TS.Gen.graph_of (ws_decl ~seed ~n:40 ~k:4 ~beta:0.5 ())).TS.Gen.edges
  in
  Alcotest.(check bool) "seeds 1 and 2 rewire differently" true
    (edges 1 <> edges 2)

(* --- building a generated topology ---------------------------------- *)

let build_exn text =
  match TS.parse_spec text with
  | Error e -> Alcotest.fail e
  | Ok spec -> (
    match TS.build ~seed:7 spec with
    | Error e -> Alcotest.fail e
    | Ok t -> (t, spec))

let test_generated_tree_end_to_end () =
  let topo, spec = build_exn spec_text in
  let decl =
    match TS.directives spec with
    | [ TS.Generate_decl d ] -> d
    | _ -> Alcotest.fail "expected one generate directive"
  in
  let g = TS.Gen.graph_of decl in
  (* every graph node plus the producer host *)
  Alcotest.(check int) "node count" (g.TS.Gen.node_count + 1)
    (List.length topo.TS.nodes);
  let net = topo.TS.network in
  let leaf i = TS.node topo (TS.Gen.node_label decl g (List.nth g.TS.Gen.edge_routers i)) in
  let name = Ndn.Name.of_string "/isp/content" in
  let rtt1 =
    match Ndn.Network.fetch_rtt net ~from:(leaf 0) name with
    | Some r -> r
    | None -> Alcotest.fail "first fetch timed out"
  in
  (* A sibling leaf shares the tier-1 ancestor: its probe must be served
     from that cache, strictly faster than the full path to the
     producer — the paper's attack signal, on a generated graph. *)
  let rtt2 =
    match Ndn.Network.fetch_rtt net ~from:(leaf 1) name with
    | Some r -> r
    | None -> Alcotest.fail "sibling probe timed out"
  in
  Alcotest.(check bool)
    (Printf.sprintf "cache hit faster (%.2f < %.2f)" rtt2 rtt1)
    true (rtt2 < rtt1)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  go 0

let test_generated_name_clash_rejected () =
  let text = "node isp-P cs=1\n" ^ spec_text in
  match TS.parse_spec text with
  | Error e -> Alcotest.fail e
  | Ok spec -> (
    match TS.build spec with
    | Ok _ -> Alcotest.fail "expected a clash error"
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "mentions the clash: %s" msg)
        true
        (contains_substring msg "already declared"))

(* --- aggregate runs: byte identity ---------------------------------- *)

(* One self-contained trial: build a generated tree, drive every access
   router with an aggregate consumer, return a summary string capturing
   request counts, responses, engine events and the final clock — any
   divergence in event order or RNG consumption shows up here. *)
let aggregate_trial ~trial ~rng =
  let text =
    "generate tree name=s arity=3 cs=32 latency=const:1 payload=16 seed="
    ^ string_of_int (trial + 3)
  in
  let topo, spec = build_exn text in
  let decl =
    match TS.directives spec with
    | [ TS.Generate_decl d ] -> d
    | _ -> assert false
  in
  let g = TS.Gen.graph_of decl in
  let net = topo.TS.network in
  let engine = Ndn.Network.engine net in
  let prefix = TS.Gen.prefix decl in
  let config =
    {
      Workload.Aggregate.default with
      users = 500;
      req_per_user_per_hour = 72.;
      catalog = 40;
      diurnal_period_ms = 20_000.;
    }
  in
  let aggs =
    List.map
      (fun i ->
        let r = Sim.Rng.split rng in
        Workload.Aggregate.attach config
          ~node:(TS.node topo (TS.Gen.node_label decl g i))
          ~prefix ~rng:r ~until:20_000. ())
      g.TS.Gen.edge_routers
  in
  Ndn.Network.run net;
  Printf.sprintf "trial=%d reqs=%s resp=%s to=%s events=%d now=%.6f" trial
    (String.concat ","
       (List.map
          (fun a -> string_of_int (Workload.Aggregate.requests_issued a))
          aggs))
    (String.concat ","
       (List.map (fun a -> string_of_int (Workload.Aggregate.responses a)) aggs))
    (String.concat ","
       (List.map (fun a -> string_of_int (Workload.Aggregate.timeouts a)) aggs))
    (Sim.Engine.events_processed engine)
    (Sim.Engine.now engine)

let test_aggregate_jobs_byte_identical () =
  let run jobs =
    Sim.Parallel.run ~jobs ~seed:99 ~trials:4 aggregate_trial
    |> Array.to_list |> String.concat "\n"
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool) "aggregate trials produced traffic" true
    (String.length r1 > 0);
  Alcotest.(check string) "--jobs 1 and --jobs 4 byte-identical" r1 r4

let test_aggregate_empty_fault_schedule_identical () =
  let run with_faults =
    let rng = Sim.Rng.create 31 in
    let text = "generate tree name=s arity=3 cs=32 latency=const:1 payload=16 seed=3" in
    let topo, spec = build_exn text in
    let decl =
      match TS.directives spec with
      | [ TS.Generate_decl d ] -> d
      | _ -> assert false
    in
    let g = TS.Gen.graph_of decl in
    let net = topo.TS.network in
    if with_faults then (
      match Ndn.Network.install_faults net [] with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
    let engine = Ndn.Network.engine net in
    let agg =
      Workload.Aggregate.attach
        { Workload.Aggregate.default with users = 500; req_per_user_per_hour = 72.; catalog = 40 }
        ~node:(TS.node topo (TS.Gen.node_label decl g (List.hd g.TS.Gen.edge_routers)))
        ~prefix:(TS.Gen.prefix decl) ~rng ~until:30_000. ()
    in
    Ndn.Network.run net;
    Printf.sprintf "reqs=%d resp=%d to=%d events=%d now=%.6f"
      (Workload.Aggregate.requests_issued agg)
      (Workload.Aggregate.responses agg)
      (Workload.Aggregate.timeouts agg)
      (Sim.Engine.events_processed engine)
      (Sim.Engine.now engine)
  in
  Alcotest.(check string) "empty schedule is byte-identical to none"
    (run false) (run true)

let () =
  Alcotest.run "topology_gen"
    [
      ( "invariants",
        List.map QCheck_alcotest.to_alcotest qcheck_tests
        @ [ Alcotest.test_case "ba heavy tail" `Quick test_ba_heavy_tail ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed byte-identical print" `Quick
            test_same_seed_byte_identical_print;
          Alcotest.test_case "ws seed changes graph" `Quick
            test_ws_seed_changes_graph;
        ] );
      ( "build",
        [
          Alcotest.test_case "generated tree end to end" `Quick
            test_generated_tree_end_to_end;
          Alcotest.test_case "name clash rejected" `Quick
            test_generated_name_clash_rejected;
        ] );
      ( "aggregate determinism",
        [
          Alcotest.test_case "jobs 1 vs 4 byte-identical" `Slow
            test_aggregate_jobs_byte_identical;
          Alcotest.test_case "empty fault schedule identical" `Quick
            test_aggregate_empty_fault_schedule_identical;
        ] );
    ]
