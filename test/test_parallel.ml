(* Determinism regression tests for Sim.Parallel: the runner must give
   bit-identical results for any domain count and reproduce exactly
   under a fixed seed — the property every parallelized bench
   (fig3/fig5/thms/ablation) relies on. *)

let check_floats = Alcotest.(check (array (float 0.)))

(* --- map --- *)

let test_map_order () =
  let expected = Array.init 100 (fun i -> i * i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Sim.Parallel.map ~jobs 100 (fun i -> i * i)))
    [ 1; 2; 4; 7; 100; 1000 ]

let test_map_empty () =
  Alcotest.(check (array int)) "n=0" [||] (Sim.Parallel.map ~jobs:4 0 (fun i -> i))

let test_map_exception () =
  Alcotest.check_raises "trial failure propagates" (Failure "trial 3") (fun () ->
      ignore
        (Sim.Parallel.map ~jobs:4 8 (fun i ->
             if i = 3 then failwith "trial 3" else i)))

(* --- run: per-trial RNG streams --- *)

let trial_samples ~trial:_ ~rng = Array.init 16 (fun _ -> Sim.Rng.float rng 1.)

let test_run_jobs_invariant () =
  let reference = Sim.Parallel.run ~jobs:1 ~seed:42 ~trials:24 trial_samples in
  List.iter
    (fun jobs ->
      let got = Sim.Parallel.run ~jobs ~seed:42 ~trials:24 trial_samples in
      Array.iteri
        (fun i expected ->
          check_floats (Printf.sprintf "jobs=%d trial %d" jobs i) expected got.(i))
        reference)
    [ 2; 3; 4; 8 ]

let test_run_seed_reproducible () =
  let a = Sim.Parallel.run ~jobs:4 ~seed:7 ~trials:12 trial_samples in
  let b = Sim.Parallel.run ~jobs:4 ~seed:7 ~trials:12 trial_samples in
  Array.iteri (fun i xs -> check_floats (Printf.sprintf "trial %d" i) xs b.(i)) a;
  let c = Sim.Parallel.run ~jobs:4 ~seed:8 ~trials:12 trial_samples in
  Alcotest.(check bool) "different seed differs" true (a.(0) <> c.(0))

let test_run_reduce_matches_fold () =
  let merge acc x = (2 * acc) + x in
  let direct =
    Array.fold_left merge 1
      (Sim.Parallel.run ~jobs:3 ~seed:5 ~trials:9 (fun ~trial ~rng ->
           trial + Sim.Rng.int rng 10))
  in
  let reduced =
    Sim.Parallel.run_reduce ~jobs:3 ~seed:5 ~trials:9 ~merge ~init:1
      (fun ~trial ~rng -> trial + Sim.Rng.int rng 10)
  in
  (* The merge is deliberately non-commutative: only an in-order fold
     can match. *)
  Alcotest.(check int) "non-commutative fold in trial order" direct reduced

(* --- merged histograms and stats for a fig3-style workload --- *)

(* A miniature Figure-3 campaign: per trial, measure warm (hit) and
   cold (miss) RTTs on a fresh LAN setup and histogram them. *)
let fig3_style_trial ~trial ~rng:_ =
  let setup = Ndn.Network.lan ~seed:(1000 + trial) () in
  let hist = Sim.Histogram.create ~lo:0. ~hi:50. ~bins:25 in
  let stats = Sim.Stats.create () in
  for i = 0 to 9 do
    let warm = Ndn.Name.of_string (Printf.sprintf "/prod/t%d/warm/%d" trial i) in
    let cold = Ndn.Name.of_string (Printf.sprintf "/prod/t%d/cold/%d" trial i) in
    Attack.Probe.warm setup warm;
    List.iter
      (fun name ->
        match Attack.Probe.measure setup ~from:setup.Ndn.Network.adversary name with
        | Some rtt ->
          Sim.Histogram.add hist rtt;
          Sim.Stats.add stats rtt
        | None -> ())
      [ warm; cold ]
  done;
  (hist, stats)

let merged_campaign ~jobs =
  Sim.Parallel.run_reduce ~jobs ~seed:3 ~trials:6
    ~merge:(fun (h, s) (h', s') -> (Sim.Histogram.merge h h', Sim.Stats.merge s s'))
    ~init:(Sim.Histogram.create ~lo:0. ~hi:50. ~bins:25, Sim.Stats.create ())
    fig3_style_trial

let test_fig3_style_jobs_invariant () =
  let h1, s1 = merged_campaign ~jobs:1 in
  let h4, s4 = merged_campaign ~jobs:4 in
  Alcotest.(check bool) "merged histograms identical" true (Sim.Histogram.equal h1 h4);
  Alcotest.(check int) "sample counts" (Sim.Stats.count s1) (Sim.Stats.count s4);
  Alcotest.(check (float 0.)) "means bit-identical" (Sim.Stats.mean s1)
    (Sim.Stats.mean s4);
  Alcotest.(check (float 0.)) "stddev bit-identical" (Sim.Stats.stddev s1)
    (Sim.Stats.stddev s4)

let test_timing_experiment_jobs_invariant () =
  let campaign jobs =
    Attack.Timing_experiment.run
      ~make_setup:(fun ~seed ~tracer -> Ndn.Network.lan ~seed ~tracer ())
      ~contents:8 ~runs:4 ~seed:11 ~bins:16 ~jobs ()
  in
  let a = campaign 1 and b = campaign 4 in
  check_floats "hit samples" a.Attack.Timing_experiment.hit_samples
    b.Attack.Timing_experiment.hit_samples;
  check_floats "miss samples" a.Attack.Timing_experiment.miss_samples
    b.Attack.Timing_experiment.miss_samples;
  Alcotest.(check bool) "hit histograms" true
    (Sim.Histogram.equal a.Attack.Timing_experiment.hit_hist
       b.Attack.Timing_experiment.hit_hist);
  Alcotest.(check (float 0.)) "success rate" a.Attack.Timing_experiment.success_rate
    b.Attack.Timing_experiment.success_rate;
  Alcotest.(check int) "timeouts" a.Attack.Timing_experiment.timeouts
    b.Attack.Timing_experiment.timeouts

(* --- Workload.Metrics aggregates --- *)

let small_trace =
  lazy
    (Workload.Ircache.generate
       { Workload.Ircache.default with Workload.Ircache.requests = 3_000 })

let outcome seed =
  Workload.Replay.replay (Lazy.force small_trace)
    { Workload.Replay.default_config with Workload.Replay.seed }

let test_metrics_merge_splits () =
  let outcomes = List.init 6 (fun i -> outcome (100 + i)) in
  let aggregate os =
    List.fold_left
      (fun acc o -> Workload.Metrics.merge acc (Workload.Metrics.agg_of_outcome o))
      (Workload.Metrics.agg_empty ()) os
  in
  let whole = aggregate outcomes in
  let left = aggregate (List.filteri (fun i _ -> i < 2) outcomes) in
  let right = aggregate (List.filteri (fun i _ -> i >= 2) outcomes) in
  let merged = Workload.Metrics.merge left right in
  Alcotest.(check int) "trials" whole.Workload.Metrics.trials
    merged.Workload.Metrics.trials;
  Alcotest.(check int) "requests" whole.Workload.Metrics.requests
    merged.Workload.Metrics.requests;
  Alcotest.(check int) "observable hits" whole.Workload.Metrics.observable_hits
    merged.Workload.Metrics.observable_hits;
  Alcotest.(check int) "evictions" whole.Workload.Metrics.agg_evictions
    merged.Workload.Metrics.agg_evictions;
  Alcotest.(check (float 1e-9)) "hit-rate mean (Chan)"
    (Sim.Stats.mean whole.Workload.Metrics.hit_rate_stats)
    (Sim.Stats.mean merged.Workload.Metrics.hit_rate_stats);
  Alcotest.(check (float 1e-9)) "hit-rate variance (Chan)"
    (Sim.Stats.variance whole.Workload.Metrics.hit_rate_stats)
    (Sim.Stats.variance merged.Workload.Metrics.hit_rate_stats)

let test_replay_trials_jobs_invariant () =
  let ensemble jobs =
    Workload.Metrics.replay_trials (Lazy.force small_trace)
      Workload.Replay.default_config ~trials:5 ~jobs ()
  in
  let a = ensemble 1 and b = ensemble 3 in
  Alcotest.(check int) "requests" a.Workload.Metrics.requests
    b.Workload.Metrics.requests;
  Alcotest.(check int) "observable hits" a.Workload.Metrics.observable_hits
    b.Workload.Metrics.observable_hits;
  Alcotest.(check (float 0.)) "per-trial mean bit-identical"
    (Sim.Stats.mean a.Workload.Metrics.hit_rate_stats)
    (Sim.Stats.mean b.Workload.Metrics.hit_rate_stats)

let test_sweep_jobs_invariant () =
  let sweep jobs =
    Workload.Metrics.sweep (Lazy.force small_trace) ~cache_sizes:[ 200; 0 ]
      ~policies:[ Core.Policy.No_privacy; Core.Policy.Always_delay ]
      ~jobs ()
  in
  let a = sweep 1 and b = sweep 4 in
  Alcotest.(check int) "row count" (List.length a) (List.length b);
  List.iter2
    (fun (x : Workload.Metrics.row) (y : Workload.Metrics.row) ->
      Alcotest.(check string) "row order" x.Workload.Metrics.policy_label
        y.Workload.Metrics.policy_label;
      Alcotest.(check int) "capacity" x.Workload.Metrics.cache_capacity
        y.Workload.Metrics.cache_capacity;
      Alcotest.(check (float 0.)) "hit rate bit-identical"
        (Workload.Replay.observable_hit_rate x.Workload.Metrics.outcome)
        (Workload.Replay.observable_hit_rate y.Workload.Metrics.outcome))
    a b

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "order" `Quick test_map_order;
          Alcotest.test_case "empty" `Quick test_map_empty;
          Alcotest.test_case "exception" `Quick test_map_exception;
        ] );
      ( "run determinism",
        [
          Alcotest.test_case "jobs invariant" `Quick test_run_jobs_invariant;
          Alcotest.test_case "seed reproducible" `Quick test_run_seed_reproducible;
          Alcotest.test_case "run_reduce order" `Quick test_run_reduce_matches_fold;
        ] );
      ( "fig3-style campaign",
        [
          Alcotest.test_case "merged hist/stats jobs invariant" `Quick
            test_fig3_style_jobs_invariant;
          Alcotest.test_case "timing experiment jobs invariant" `Quick
            test_timing_experiment_jobs_invariant;
        ] );
      ( "metrics aggregates",
        [
          Alcotest.test_case "merge of splits" `Quick test_metrics_merge_splits;
          Alcotest.test_case "replay_trials jobs invariant" `Quick
            test_replay_trials_jobs_invariant;
          Alcotest.test_case "sweep jobs invariant" `Quick test_sweep_jobs_invariant;
        ] );
    ]
