(* Tests for the adversary suite: detector, probing, scope probing,
   segment amplification, counter recovery, correlation attacks. *)

let name = Ndn.Name.of_string

let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

(* --- Detector --- *)

let test_detector_separable () =
  let hit = Array.init 100 (fun i -> 1. +. (0.01 *. float_of_int i)) in
  let miss = Array.init 100 (fun i -> 10. +. (0.01 *. float_of_int i)) in
  let d = Attack.Detector.train ~hit_samples:hit ~miss_samples:miss in
  check_close "perfect training accuracy" 1e-9 1. (Attack.Detector.training_accuracy d);
  Alcotest.(check bool) "threshold between clusters" true
    (Attack.Detector.threshold d > 2. && Attack.Detector.threshold d < 10.);
  Alcotest.(check bool) "classifies fast as hit" true
    (Attack.Detector.classify d 1.5 = Attack.Detector.Hit);
  Alcotest.(check bool) "classifies slow as miss" true
    (Attack.Detector.classify d 11. = Attack.Detector.Miss);
  check_close "perfect evaluation" 1e-9 1.
    (Attack.Detector.evaluate d ~hit_samples:hit ~miss_samples:miss)

let test_detector_flipped_order () =
  (* If "hits" are slower, the detector flips its rule. *)
  let hit = [| 10.; 11.; 12. |] and miss = [| 1.; 2.; 3. |] in
  let d = Attack.Detector.train ~hit_samples:hit ~miss_samples:miss in
  Alcotest.(check bool) "flipped classification works" true
    (Attack.Detector.classify d 11. = Attack.Detector.Hit
    && Attack.Detector.classify d 2. = Attack.Detector.Miss)

let test_detector_overlapping_accuracy_half () =
  (* Identical distributions: accuracy must hover near 1/2 on held-out
     data. *)
  let rng = Sim.Rng.create 3 in
  let gen () = Array.init 2000 (fun _ -> Sim.Rng.gaussian rng ~mean:5. ~stddev:1.) in
  let rate =
    Attack.Detector.success_rate ~hit_samples:(gen ()) ~miss_samples:(gen ()) ()
  in
  Alcotest.(check bool) (Printf.sprintf "no advantage (%.3f)" rate) true
    (rate > 0.45 && rate < 0.58)

let test_detector_gaussian_overlap_matches_bayes () =
  (* Two unit gaussians Delta apart: optimal accuracy = Phi(Delta/2). *)
  let rng = Sim.Rng.create 4 in
  let gen mean = Array.init 4000 (fun _ -> Sim.Rng.gaussian rng ~mean ~stddev:1.) in
  let rate = Attack.Detector.success_rate ~hit_samples:(gen 0.) ~miss_samples:(gen 1.) () in
  (* Phi(0.5) ~ 0.691 *)
  check_close "matches analytic Bayes accuracy" 0.03 0.691 rate

let test_detector_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Detector.train: empty sample set")
    (fun () -> ignore (Attack.Detector.train ~hit_samples:[||] ~miss_samples:[| 1. |]))

(* --- Probe primitives --- *)

let test_probe_baseline_is_cache_hit () =
  let setup = Ndn.Network.lan () in
  let reference = name "/prod/ref" in
  match Attack.Probe.baseline_hit_rtt setup reference with
  | Some d2 ->
    (* d2 must look like a hit: well under the miss RTT (~9ms). *)
    Alcotest.(check bool) (Printf.sprintf "baseline %.2f is hit-like" d2) true (d2 < 6.)
  | None -> Alcotest.fail "baseline timed out"

let test_two_probe_decision () =
  let setup = Ndn.Network.lan () in
  let target_warm = name "/prod/warm" and target_cold = name "/prod/cold" in
  Attack.Probe.warm setup target_warm;
  (match
     Attack.Probe.two_probe_decision setup ~target:target_warm
       ~reference:(name "/prod/ref1") ()
   with
  | Some d -> Alcotest.(check bool) "warm detected" true (d = Attack.Probe.Was_cached)
  | None -> Alcotest.fail "timeout");
  match
    Attack.Probe.two_probe_decision setup ~target:target_cold
      ~reference:(name "/prod/ref2") ()
  with
  | Some d -> Alcotest.(check bool) "cold detected" true (d = Attack.Probe.Not_cached)
  | None -> Alcotest.fail "timeout"

(* --- Timing experiments (scaled-down Figure 3) --- *)

let test_timing_experiment_lan () =
  let r =
    Attack.Timing_experiment.run
      ~make_setup:(fun ~seed ~tracer -> Ndn.Network.lan ~seed ~tracer ())
      ~contents:30 ~runs:2 ()
  in
  Alcotest.(check int) "no timeouts" 0 r.Attack.Timing_experiment.timeouts;
  Alcotest.(check bool)
    (Printf.sprintf "LAN distinguisher near-perfect (%.3f)"
       r.Attack.Timing_experiment.success_rate)
    true
    (r.Attack.Timing_experiment.success_rate > 0.97);
  Alcotest.(check bool) "hit mean below miss mean" true
    (Sim.Stats.mean_of r.Attack.Timing_experiment.hit_samples
    < Sim.Stats.mean_of r.Attack.Timing_experiment.miss_samples)

let test_timing_experiment_producer_overlap () =
  let r =
    Attack.Timing_experiment.run_producer_privacy
      ~make_setup:(fun ~seed ~tracer:_ -> Ndn.Network.wan_producer ~seed ())
      ~contents:40 ~runs:2 ()
  in
  let s = r.Attack.Timing_experiment.success_rate in
  Alcotest.(check bool)
    (Printf.sprintf "producer-privacy success modest (%.3f)" s)
    true
    (s > 0.5 && s < 0.75)

let test_timing_experiment_defeated_by_content_specific_delay () =
  (* With the countermeasure attached to R, the distributions merge. *)
  let make_setup ~seed ~tracer:_ =
    let producer =
      { Ndn.Network.default_producer_config with producer_private = true }
    in
    let setup = Ndn.Network.lan ~seed ~producer () in
    ignore
      (Core.Private_router.attach setup.Ndn.Network.router
         ~rng:(Sim.Rng.create (seed + 1000))
         (Core.Private_router.Delay_private Core.Delay.Content_specific));
    setup
  in
  let r = Attack.Timing_experiment.run ~make_setup ~contents:30 ~runs:2 () in
  let s = r.Attack.Timing_experiment.success_rate in
  Alcotest.(check bool)
    (Printf.sprintf "countermeasure kills the distinguisher (%.3f)" s)
    true (s < 0.62)

(* --- Scope probe --- *)

let test_scope_probe () =
  let setup = Ndn.Network.lan () in
  let cached = name "/prod/cached" and fresh = name "/prod/fresh" in
  Attack.Probe.warm setup cached;
  Alcotest.(check bool) "cached detected" true
    (Attack.Scope_probe.probe setup cached = Attack.Scope_probe.Cached);
  Alcotest.(check bool) "fresh detected" true
    (Attack.Scope_probe.probe setup fresh = Attack.Scope_probe.Not_cached)

let test_scope_census () =
  let setup = Ndn.Network.lan () in
  let names = List.init 6 (fun i -> name (Printf.sprintf "/prod/n%d" i)) in
  (* warm the even ones *)
  List.iteri (fun i n -> if i mod 2 = 0 then Attack.Probe.warm setup n) names;
  let census = Attack.Scope_probe.census setup names in
  List.iteri
    (fun i (_, verdict) ->
      let expected =
        if i mod 2 = 0 then Attack.Scope_probe.Cached else Attack.Scope_probe.Not_cached
      in
      Alcotest.(check bool) (Printf.sprintf "name %d" i) true (verdict = expected))
    census

(* --- Segment amplification --- *)

let test_segment_formula () =
  check_close "n=1" 1e-12 0.59 (Attack.Segment_attack.theoretical_success ~p:0.59 ~segments:1);
  check_close "n=8 paper value" 1e-3 0.999
    (Attack.Segment_attack.theoretical_success ~p:0.59 ~segments:8);
  check_close "paper example row" 1e-12
    (1. -. (0.41 ** 4.))
    (Attack.Segment_attack.paper_example_row ~segments:4)

let test_segment_formula_monotone () =
  let rec go last n =
    if n > 20 then ()
    else begin
      let v = Attack.Segment_attack.theoretical_success ~p:0.3 ~segments:n in
      Alcotest.(check bool) "monotone in n" true (v >= last);
      go v (n + 1)
    end
  in
  go 0. 1

let test_segment_formula_errors () =
  Alcotest.check_raises "bad p" (Invalid_argument "Segment_attack: p out of range")
    (fun () -> ignore (Attack.Segment_attack.theoretical_success ~p:1.5 ~segments:2));
  Alcotest.check_raises "bad n" (Invalid_argument "Segment_attack: segments must be >= 1")
    (fun () -> ignore (Attack.Segment_attack.theoretical_success ~p:0.5 ~segments:0))

let test_segment_amplification_empirical () =
  (* In the overlapping producer-privacy topology, more segments help. *)
  let make_setup ~seed = Ndn.Network.wan_producer ~seed () in
  let r1 = Attack.Segment_attack.run ~make_setup ~segments:1 ~trials:30 () in
  let r8 = Attack.Segment_attack.run ~make_setup ~segments:8 ~trials:30 () in
  (* Majority voting is weaker than the paper's idealized
     "one success suffices" amplification (the adversary cannot tell
     WHICH classifications succeeded), so expect improvement over the
     single-segment attack, not the 0.999 of the closed form. *)
  Alcotest.(check bool)
    (Printf.sprintf "amplified (1 seg %.2f -> 8 segs %.2f)"
       r1.Attack.Segment_attack.amplified_success r8.Attack.Segment_attack.amplified_success)
    true
    (r8.Attack.Segment_attack.amplified_success
    >= r1.Attack.Segment_attack.amplified_success -. 0.1);
  Alcotest.(check bool) "8-segment vote beats coin flip" true
    (r8.Attack.Segment_attack.amplified_success > 0.55);
  Alcotest.(check bool) "closed form predicts near-certainty" true
    (r8.Attack.Segment_attack.predicted > 0.97)

(* --- Counter attack on the naive scheme --- *)

let test_counter_attack_exact_recovery () =
  for prior = 0 to 6 do
    match Attack.Counter_attack.demonstrate ~k:5 ~prior_requests:prior with
    | Some o ->
      Alcotest.(check int)
        (Printf.sprintf "recovers %d prior requests" prior)
        prior o.Attack.Counter_attack.recovered_count
    | None -> Alcotest.failf "attack found no hit for prior=%d" prior
  done

let test_counter_attack_budget () =
  let naive = Core.Naive_scheme.create ~k:50 in
  Alcotest.(check bool) "insufficient budget returns None" true
    (Attack.Counter_attack.run ~naive (name "/x") ~max_probes:10 = None)

let test_counter_attack_fails_on_random_cache () =
  (* Against Random-Cache the recovered count is wrong most of the time. *)
  let trials = 100 in
  let wrong = ref 0 in
  for seed = 0 to trials - 1 do
    let prior = 3 in
    match
      Attack.Counter_attack.random_cache_resists
        ~kdist:(Core.Kdist.Uniform 40) ~prior_requests:prior ~seed
    with
    | Some o -> if o.Attack.Counter_attack.recovered_count <> prior then incr wrong
    | None -> incr wrong
  done;
  Alcotest.(check bool)
    (Printf.sprintf "wrong in %d/%d trials" !wrong trials)
    true
    (!wrong > trials / 2)

(* --- Correlation attack --- *)

let test_correlation_ungrouped_breaks () =
  let r =
    Attack.Correlation_attack.run ~grouping:Core.Grouping.By_content
      ~kdist:(Core.Kdist.Uniform 20) ~related_contents:30 ~prior_requests:3 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "ungrouped adversary near-certain (%.3f)"
       r.Attack.Correlation_attack.adversary_accuracy)
    true
    (r.Attack.Correlation_attack.adversary_accuracy > 0.9)

let test_correlation_grouped_resists () =
  (* Grouping collapses the M related contents to ONE counter — but
     that counter now sees M requests per honest fetch, so the
     threshold domain must scale by M to conceal the same number of
     honest fetches (see Correlation_attack's doc).  With the scaled
     domain the adversary's advantage collapses; with the unscaled one
     it does not — both facts are pinned. *)
  let m = 30 in
  let ungrouped =
    Attack.Correlation_attack.run ~grouping:Core.Grouping.By_content
      ~kdist:(Core.Kdist.Uniform 200) ~related_contents:m ~prior_requests:3 ()
  in
  let grouped_scaled =
    Attack.Correlation_attack.run
      ~grouping:(Core.Grouping.By_namespace 2)
      ~kdist:(Core.Kdist.Uniform (200 * m))
      ~related_contents:m ~prior_requests:3 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "scaled grouping resists (%.3f -> %.3f)"
       ungrouped.Attack.Correlation_attack.adversary_accuracy
       grouped_scaled.Attack.Correlation_attack.adversary_accuracy)
    true
    (grouped_scaled.Attack.Correlation_attack.adversary_accuracy
    < ungrouped.Attack.Correlation_attack.adversary_accuracy -. 0.1
    && grouped_scaled.Attack.Correlation_attack.adversary_accuracy < 0.6)

let test_correlation_content_id_grouping_equivalent () =
  let m = 30 in
  let by_id =
    Attack.Correlation_attack.run ~grouping:Core.Grouping.By_content_id
      ~kdist:(Core.Kdist.Uniform (200 * m))
      ~related_contents:m ~prior_requests:3 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "content-id grouping also resists (%.3f)"
       by_id.Attack.Correlation_attack.adversary_accuracy)
    true
    (by_id.Attack.Correlation_attack.adversary_accuracy < 0.6)

let test_correlation_theoretical_matches_empirical () =
  let kdist = Core.Kdist.Uniform 20 in
  let theoretical =
    Attack.Correlation_attack.advantage_theoretical ~kdist ~related_contents:10
      ~prior_requests:3
  in
  let empirical =
    Attack.Correlation_attack.run ~grouping:Core.Grouping.By_content ~kdist
      ~related_contents:10 ~prior_requests:3 ~trials:2000 ()
  in
  check_close "closed form matches simulation" 0.03 theoretical
    empirical.Attack.Correlation_attack.adversary_accuracy

(* --- Interaction (conversation-detection) attack --- *)

let test_interaction_attack_predictable_names () =
  let r =
    Attack.Interaction_attack.run ~naming:Core.Interactive_session.Predictable
      ~trials:10 ~frames:8 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "conversation detected reliably (%.2f)" r.Attack.Interaction_attack.accuracy)
    true
    (r.Attack.Interaction_attack.accuracy > 0.9)

let test_interaction_attack_defeated_by_unpredictable_names () =
  let r =
    Attack.Interaction_attack.run
      ~naming:(Core.Interactive_session.Unpredictable "dh-secret")
      ~trials:10 ~frames:8 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "no advantage (%.2f)" r.Attack.Interaction_attack.accuracy)
    true
    (r.Attack.Interaction_attack.accuracy <= 0.6);
  (* The failure mode is symmetric blindness: the adversary can never
     name a frame, so it always answers Not_talking. *)
  Alcotest.(check int) "no false positives" 0 r.Attack.Interaction_attack.false_positives

let test_probe_conversation_silent () =
  let setup = Ndn.Network.conversation () in
  Alcotest.(check bool) "silent pair reads Not_talking" true
    (Attack.Interaction_attack.probe_conversation setup ()
    = Attack.Interaction_attack.Not_talking)

(* --- Countermeasure deployment (paper footnote 6) --- *)

let test_deployment_edge_defence_works () =
  let undefended = Attack.Deployment_experiment.run Attack.Deployment_experiment.No_defence ~trials:20 () in
  let edge = Attack.Deployment_experiment.run Attack.Deployment_experiment.Edge_only ~trials:20 () in
  Alcotest.(check bool)
    (Printf.sprintf "undefended broken (%.2f)" undefended.Attack.Deployment_experiment.attack_success)
    true
    (undefended.Attack.Deployment_experiment.attack_success > 0.95);
  Alcotest.(check bool)
    (Printf.sprintf "edge defence collapses the attack (%.2f)" edge.Attack.Deployment_experiment.attack_success)
    true
    (edge.Attack.Deployment_experiment.attack_success < 0.75);
  (* Edge deployment leaves the remote consumer's core-cache benefit intact. *)
  Alcotest.(check bool) "remote hit latency unchanged" true
    (Float.abs
       (edge.Attack.Deployment_experiment.remote_hit_latency_ms
       -. undefended.Attack.Deployment_experiment.remote_hit_latency_ms)
    < 2.)

let test_deployment_core_only_is_worst_of_both () =
  let core = Attack.Deployment_experiment.run Attack.Deployment_experiment.Core_only ~trials:20 () in
  Alcotest.(check bool)
    (Printf.sprintf "attack still succeeds (%.2f)" core.Attack.Deployment_experiment.attack_success)
    true
    (core.Attack.Deployment_experiment.attack_success > 0.95);
  Alcotest.(check bool) "remote consumers lose the core cache" true
    (core.Attack.Deployment_experiment.remote_hit_latency_ms
    > 0.8 *. core.Attack.Deployment_experiment.remote_miss_latency_ms)

let test_deployment_everywhere_latency_cost () =
  let everywhere = Attack.Deployment_experiment.run Attack.Deployment_experiment.Everywhere ~trials:20 () in
  Alcotest.(check bool)
    (Printf.sprintf "attack collapsed (%.2f)" everywhere.Attack.Deployment_experiment.attack_success)
    true
    (everywhere.Attack.Deployment_experiment.attack_success < 0.75);
  Alcotest.(check bool) "but remote hits cost like misses" true
    (everywhere.Attack.Deployment_experiment.remote_hit_latency_ms
    > 0.8 *. everywhere.Attack.Deployment_experiment.remote_miss_latency_ms)


(* --- Popularity estimation attack --- *)

let test_popularity_exact_against_naive_like () =
  (* Constant threshold behaves like the naive scheme: count recovered. *)
  let r =
    Attack.Popularity_attack.run ~kdist:(Core.Kdist.Constant 6) ~true_count:4
      ~max_count:7 ~trials:50 ()
  in
  check_close "exact recovery" 1e-9 1. r.Attack.Popularity_attack.exact_rate;
  check_close "zero error" 1e-9 0. r.Attack.Popularity_attack.mean_abs_error

let test_popularity_blind_against_uniform () =
  let r =
    Attack.Popularity_attack.run ~kdist:(Core.Kdist.Uniform 60) ~true_count:4
      ~max_count:8 ~trials:100 ()
  in
  (* Residual uncertainty stays near the prior's 3.17 bits. *)
  Alcotest.(check bool)
    (Printf.sprintf "high residual entropy (%.2f bits)"
       r.Attack.Popularity_attack.mean_posterior_entropy_bits)
    true
    (r.Attack.Popularity_attack.mean_posterior_entropy_bits > 2.5);
  Alcotest.(check bool)
    (Printf.sprintf "substantial estimation error (%.2f)"
       r.Attack.Popularity_attack.mean_abs_error)
    true
    (r.Attack.Popularity_attack.mean_abs_error > 2.)

let test_popularity_leak_ordering () =
  let leak kdist =
    Attack.Popularity_attack.information_leak_bits ~kdist ~max_count:8 ~probes:70
  in
  let naive = leak (Core.Kdist.Constant 6) in
  let uniform = leak (Core.Kdist.Uniform 60) in
  let expo = leak (Core.Kdist.Truncated_geometric { alpha = 0.95; domain = 60 }) in
  Alcotest.(check bool)
    (Printf.sprintf "naive (%.2f) >> expo (%.2f) >= uniform-ish (%.2f)" naive expo uniform)
    true
    (naive > 2.5 && expo < 1.5 && uniform < 0.5)

(* --- property tests --- *)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"detector threshold separates training clusters" ~count:100
      QCheck.(pair (float_range 0. 5.) (float_range 10. 20.))
      (fun (lo, hi) ->
        let hit = Array.init 20 (fun i -> lo +. (0.01 *. float_of_int i)) in
        let miss = Array.init 20 (fun i -> hi +. (0.01 *. float_of_int i)) in
        let d = Attack.Detector.train ~hit_samples:hit ~miss_samples:miss in
        Attack.Detector.training_accuracy d >= 1. -. 1e-9);
    QCheck.Test.make ~name:"amplification formula in [p, 1]" ~count:200
      QCheck.(pair (float_range 0. 1.) (int_range 1 50))
      (fun (p, n) ->
        let v = Attack.Segment_attack.theoretical_success ~p ~segments:n in
        v >= p -. 1e-12 && v <= 1. +. 1e-12);
    QCheck.Test.make ~name:"counter attack exact for all priors <= k" ~count:100
      QCheck.(pair (int_range 0 12) (int_range 0 12))
      (fun (k, prior) ->
        QCheck.assume (prior <= k + 1);
        match Attack.Counter_attack.demonstrate ~k ~prior_requests:prior with
        | Some o -> o.Attack.Counter_attack.recovered_count = prior
        | None -> false);
    QCheck.Test.make ~name:"theoretical correlation advantage within [0.5, 1]" ~count:200
      QCheck.(triple (int_range 1 20) (int_range 1 50) (int_range 0 10))
      (fun (domain, m, prior) ->
        let v =
          Attack.Correlation_attack.advantage_theoretical
            ~kdist:(Core.Kdist.Uniform domain) ~related_contents:m
            ~prior_requests:prior
        in
        v >= 0.5 -. 1e-12 && v <= 1. +. 1e-12);
  ]

let () =
  Alcotest.run "attack"
    [
      ( "detector",
        [
          Alcotest.test_case "separable" `Quick test_detector_separable;
          Alcotest.test_case "flipped order" `Quick test_detector_flipped_order;
          Alcotest.test_case "no advantage on identical" `Slow
            test_detector_overlapping_accuracy_half;
          Alcotest.test_case "matches Bayes on gaussians" `Slow
            test_detector_gaussian_overlap_matches_bayes;
          Alcotest.test_case "empty rejected" `Quick test_detector_empty_rejected;
        ] );
      ( "probe",
        [
          Alcotest.test_case "baseline is hit" `Quick test_probe_baseline_is_cache_hit;
          Alcotest.test_case "two-probe decision" `Quick test_two_probe_decision;
        ] );
      ( "timing",
        [
          Alcotest.test_case "LAN distinguisher" `Slow test_timing_experiment_lan;
          Alcotest.test_case "producer overlap" `Slow test_timing_experiment_producer_overlap;
          Alcotest.test_case "countermeasure defeats it" `Slow
            test_timing_experiment_defeated_by_content_specific_delay;
        ] );
      ( "scope",
        [
          Alcotest.test_case "probe" `Quick test_scope_probe;
          Alcotest.test_case "census" `Quick test_scope_census;
        ] );
      ( "segments",
        [
          Alcotest.test_case "formula" `Quick test_segment_formula;
          Alcotest.test_case "monotone" `Quick test_segment_formula_monotone;
          Alcotest.test_case "errors" `Quick test_segment_formula_errors;
          Alcotest.test_case "empirical amplification" `Slow
            test_segment_amplification_empirical;
        ] );
      ( "counter",
        [
          Alcotest.test_case "exact recovery" `Quick test_counter_attack_exact_recovery;
          Alcotest.test_case "budget" `Quick test_counter_attack_budget;
          Alcotest.test_case "random-cache resists" `Quick
            test_counter_attack_fails_on_random_cache;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "ungrouped breaks" `Quick test_correlation_ungrouped_breaks;
          Alcotest.test_case "grouped resists" `Quick test_correlation_grouped_resists;
          Alcotest.test_case "content-id grouping" `Quick
            test_correlation_content_id_grouping_equivalent;
          Alcotest.test_case "theory matches empirics" `Quick
            test_correlation_theoretical_matches_empirical;
        ] );
      ( "interaction",
        [
          Alcotest.test_case "predictable names detected" `Slow
            test_interaction_attack_predictable_names;
          Alcotest.test_case "unpredictable names blind" `Slow
            test_interaction_attack_defeated_by_unpredictable_names;
          Alcotest.test_case "silent pair" `Quick test_probe_conversation_silent;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "edge defence works" `Slow test_deployment_edge_defence_works;
          Alcotest.test_case "core-only worst of both" `Slow
            test_deployment_core_only_is_worst_of_both;
          Alcotest.test_case "everywhere latency cost" `Slow
            test_deployment_everywhere_latency_cost;
        ] );
      ( "popularity",
        [
          Alcotest.test_case "exact against naive" `Quick
            test_popularity_exact_against_naive_like;
          Alcotest.test_case "blind against uniform" `Quick
            test_popularity_blind_against_uniform;
          Alcotest.test_case "leak ordering" `Quick test_popularity_leak_ordering;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
